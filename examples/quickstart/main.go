// Quickstart: run MEGsim on a built-in benchmark and compare against a
// full simulation.
//
//	go run ./examples/quickstart
//
// This exercises the complete public API in ~10 seconds: synthesize the
// "Hill Climb Racing" workload, characterize it with the functional
// simulator, cluster the frames, simulate only the representatives on
// the cycle-level TBR GPU model, and validate the extrapolated
// statistics against the full simulation.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/megsim"
)

func main() {
	// The full 2000-frame hcr sequence at the standard reduced scale.
	trace := megsim.MustGenerateBenchmark("hcr", megsim.DefaultScale())
	fmt.Printf("workload %q: %d frames, %d vertex shaders, %d fragment shaders\n",
		trace.Name, trace.NumFrames(), len(trace.VertexShaders), len(trace.FragmentShaders))

	// MEGsim: characterize -> cluster -> simulate representatives.
	start := time.Now()
	run, err := megsim.Sample(trace, megsim.DefaultConfig(), megsim.DefaultGPUConfig())
	if err != nil {
		log.Fatal(err)
	}
	sampledTime := time.Since(start)
	fmt.Printf("MEGsim picked %d representative frames (%.0fx reduction) in %v\n",
		len(run.Representatives()), run.ReductionFactor(), sampledTime.Round(time.Millisecond))

	// Validate against the expensive full simulation.
	start = time.Now()
	full, err := megsim.SimulateFull(trace, megsim.DefaultGPUConfig())
	if err != nil {
		log.Fatal(err)
	}
	fullTime := time.Since(start)
	actual := megsim.SumStats(full)
	acc := megsim.CompareAccuracy(&run.Estimate, &actual)

	fmt.Printf("full simulation took %v (%.0fx slower)\n",
		fullTime.Round(time.Millisecond), float64(fullTime)/float64(sampledTime))
	fmt.Printf("%-12s %15s %15s %8s\n", "metric", "estimated", "actual", "error")
	show := func(name string, est, act uint64, m megsim.Metric) {
		fmt.Printf("%-12s %15d %15d %7.2f%%\n", name, est, act, acc.Percent(m))
	}
	show("cycles", run.Estimate.Cycles, actual.Cycles, megsim.MetricCycles)
	show("dram", run.Estimate.DRAM.Accesses, actual.DRAM.Accesses, megsim.MetricDRAM)
	show("l2", run.Estimate.L2.Accesses, actual.L2.Accesses, megsim.MetricL2)
	show("tile-cache", run.Estimate.TileCache.Accesses, actual.TileCache.Accesses, megsim.MetricTileCache)
}
