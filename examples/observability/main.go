// Observability: collect per-stage pipeline metrics and a Chrome-trace
// timeline while simulating a workload.
//
//	go run ./examples/observability
//
// The simulator is silent by default — a nil registry disables the
// whole observability layer at near-zero cost. Attaching a registry to
// GPUConfig.Obs turns on atomic counters (cache hits, queue stalls,
// shaded fragments...), bounded histograms (queue occupancy, frame
// cycles) and per-frame pipeline spans (geometry, tiling, raster,
// fragment). Parallel drivers keep this race-free by giving each worker
// its own local registry and merging at join, so the snapshot below is
// identical however many cores simulate.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/megsim"
)

func main() {
	// A short sequence keeps the example quick.
	scale := megsim.DefaultScale()
	scale.FrameDivisor = 100
	trace := megsim.MustGenerateBenchmark("hcr", scale)

	// An enabled registry with the default timeline capacity (pass a
	// negative capacity for metrics-only, no timeline).
	reg := megsim.NewObsRegistry(0)
	gpu := megsim.DefaultGPUConfig()
	gpu.Obs = reg

	// Simulate every frame in parallel; worker-local registries merge
	// into reg when the pool joins.
	stats, err := megsim.SimulateFullParallel(trace, gpu, 0)
	if err != nil {
		log.Fatal(err)
	}
	total := megsim.SumStats(stats)
	fmt.Printf("simulated %d frames of %q: %d cycles\n", len(stats), trace.Name, total.Cycles)

	// A snapshot is plain data: counters, histograms, timeline events.
	snap := reg.Snapshot()
	fmt.Printf("\n%d counters collected, e.g.:\n", len(snap.Counters))
	for _, name := range []string{
		"tbr.frames", "tbr.fragment.busy_cycles",
		"mem.l2.hits", "mem.l2.misses", "mem.dram.row_hits",
		"queue.vertex.admitted", "queue.fragment.stall_cycles",
	} {
		fmt.Printf("  %-26s %d\n", name, snap.Counters[name])
	}
	for _, name := range snap.HistogramNames() {
		h := snap.Histograms[name]
		fmt.Printf("histogram %-28s count=%-6d mean=%.1f min=%d max=%d\n",
			name, h.Count, h.Mean(), h.Min, h.Max)
	}

	// The timeline holds one span per pipeline stage per frame; export
	// it in the Chrome trace format and load the file in
	// chrome://tracing or https://ui.perfetto.dev.
	out, err := os.Create("observability_trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := snap.WriteChromeTrace(out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %d timeline events to observability_trace.json\n", len(snap.Events))
}
