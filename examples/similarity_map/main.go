// Similarity map: reproduce Fig. 5 and Fig. 6 of the paper for any
// benchmark — the frame similarity matrix as a grayscale PGM image, and
// the same matrix with the chosen k-means clusters drawn along the
// diagonal as a color PPM image.
//
//	go run ./examples/similarity_map            # bbr1, 900 frames
//	go run ./examples/similarity_map asp 500
//
// View the results with any image viewer that reads PGM/PPM.
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/megsim"
)

func main() {
	alias := "bbr1"
	frames := 900 // Fig. 5 analyzes 900 bbr frames
	if len(os.Args) > 1 {
		alias = os.Args[1]
	}
	if len(os.Args) > 2 {
		n, err := strconv.Atoi(os.Args[2])
		if err != nil {
			log.Fatalf("bad frame count %q: %v", os.Args[2], err)
		}
		frames = n
	}

	trace := megsim.MustGenerateBenchmark(alias, megsim.DefaultScale())
	ch, err := megsim.Characterize(trace)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := megsim.SelectFrames(ch, megsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d frames, %d clusters\n", alias, trace.NumFrames(), sel.Clusters.K)

	m := megsim.SimilarityMatrix(sel.Features)
	if frames > m.N() {
		frames = m.N()
	}

	// Fig. 5: plain similarity matrix over the first `frames` frames.
	// (Rebuild over the truncated window so the gray scale matches the
	// window's own distance range, as the paper's figure does.)
	window := sel.Features.Vectors[:frames]
	sub := megsim.SimilarityMatrix(&megsim.FeatureSet{
		Vectors: window,
		NumVS:   sel.Features.NumVS,
		NumFS:   sel.Features.NumFS,
		HasPrim: sel.Features.HasPrim,
	})
	fig5 := fmt.Sprintf("fig5_%s.pgm", alias)
	f, err := os.Create(fig5)
	if err != nil {
		log.Fatal(err)
	}
	if err := sub.WritePGM(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("wrote %s (%dx%d, darker = more similar)\n", fig5, frames, frames)

	// Fig. 6: clusters along the diagonal.
	fig6 := fmt.Sprintf("fig6_%s.ppm", alias)
	f, err = os.Create(fig6)
	if err != nil {
		log.Fatal(err)
	}
	band := frames/100 + 1
	if err := sub.WritePPM(f, sel.Clusters.Assign[:frames], band); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("wrote %s (cluster colors on the diagonal)\n", fig6)
}
