// Design-space exploration: the use case that motivates MEGsim. The
// paper's intro observes that cycle-accurate simulation becomes
// prohibitive "when hundreds of simulations have to be carried out to
// explore a desired design space". Because MEGsim's characterization is
// architecture-independent, the SAME representative frames can be
// reused for every configuration: select once, then sweep.
//
// This example sweeps the L2 cache size from 32 KiB to 1 MiB on one
// benchmark, simulating only ~30 representatives per point, and
// validates the sweep's first point against a full simulation.
//
//	go run ./examples/design_space
package main

import (
	"fmt"
	"log"
	"time"

	"repro/megsim"
)

func main() {
	trace := megsim.MustGenerateBenchmark("jjo", megsim.DefaultScale())

	// Select representatives ONCE (architecture-independent).
	ch, err := megsim.Characterize(trace)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := megsim.SelectFrames(ch, megsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d representatives out of %d frames (%.0fx)\n\n",
		sel.NumRepresentatives(), trace.NumFrames(), sel.ReductionFactor())

	fmt.Printf("%-8s %15s %15s %12s %10s\n", "L2", "est. cycles", "est. dram", "l2 hit-rate", "sim time")
	sweep := []int{32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20}
	var firstEstimate megsim.FrameStats
	for i, l2 := range sweep {
		gpu := megsim.DefaultGPUConfig()
		gpu.L2.SizeBytes = l2

		start := time.Now()
		sim, err := megsim.NewSimulator(gpu, trace)
		if err != nil {
			log.Fatal(err)
		}
		repStats := make(map[int]megsim.FrameStats, sel.NumRepresentatives())
		for _, f := range sel.Representatives {
			repStats[f] = sim.SimulateFrame(f)
		}
		est, err := sel.Estimate(repStats)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-8s %15d %15d %11.1f%% %10v\n",
			fmt.Sprintf("%dKiB", l2>>10), est.Cycles, est.DRAM.Accesses,
			est.L2.HitRate()*100, elapsed.Round(time.Millisecond))
		if i == 0 {
			firstEstimate = est
		}
	}

	// Validate the smallest-L2 point against ground truth.
	fmt.Println("\nvalidating the 32KiB point against a full simulation...")
	gpu := megsim.DefaultGPUConfig()
	gpu.L2.SizeBytes = 32 << 10
	start := time.Now()
	full, err := megsim.SimulateFull(trace, gpu)
	if err != nil {
		log.Fatal(err)
	}
	actual := megsim.SumStats(full)
	acc := megsim.CompareAccuracy(&firstEstimate, &actual)
	fmt.Printf("full simulation: %v; relative error: cycles %.2f%%, dram %.2f%%\n",
		time.Since(start).Round(time.Millisecond),
		acc.Percent(megsim.MetricCycles), acc.Percent(megsim.MetricDRAM))
}
