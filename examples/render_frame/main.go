// Render frame: rasterize sample frames of the synthetic benchmarks to
// PNG images so the workloads can be inspected visually — layers,
// overdraw, animation, 2D vs 3D structure.
//
//	go run ./examples/render_frame            # bbr1 and jjo, 3 frames each
//	go run ./examples/render_frame asp 2000   # one specific frame
package main

import (
	"fmt"
	"image/png"
	"log"
	"os"
	"strconv"

	"repro/internal/funcsim"
	"repro/megsim"
)

func main() {
	type job struct {
		alias  string
		frames []int
	}
	var jobs []job
	switch {
	case len(os.Args) >= 3:
		f, err := strconv.Atoi(os.Args[2])
		if err != nil {
			log.Fatalf("bad frame %q: %v", os.Args[2], err)
		}
		jobs = []job{{os.Args[1], []int{f}}}
	case len(os.Args) == 2:
		jobs = []job{{os.Args[1], nil}}
	default:
		jobs = []job{{"bbr1", nil}, {"jjo", nil}}
	}

	for _, j := range jobs {
		trace, err := megsim.GenerateBenchmark(j.alias, megsim.DefaultScale())
		if err != nil {
			log.Fatal(err)
		}
		frames := j.frames
		if frames == nil {
			n := trace.NumFrames()
			frames = []int{n / 10, n / 2, n * 9 / 10} // menu-ish, gameplay, late
		}
		for _, f := range frames {
			img, err := funcsim.RenderFrame(trace, f)
			if err != nil {
				log.Fatal(err)
			}
			name := fmt.Sprintf("frame_%s_%04d.png", j.alias, f)
			out, err := os.Create(name)
			if err != nil {
				log.Fatal(err)
			}
			if err := png.Encode(out, img); err != nil {
				log.Fatal(err)
			}
			out.Close()
			fmt.Printf("wrote %s (%dx%d)\n", name, img.Bounds().Dx(), img.Bounds().Dy())
		}
	}
}
