// DVFS sweep: use MEGsim to study frequency scaling — how frames per
// second and cycle counts respond to the GPU core clock when main
// memory timing stays fixed in wall-clock terms. A classic
// design-space-exploration question, answered by re-simulating only
// MEGsim's representative frames per frequency point.
//
//	go run ./examples/dvfs_sweep
package main

import (
	"fmt"
	"log"

	"repro/megsim"
)

func main() {
	trace := megsim.MustGenerateBenchmark("hwh", megsim.DefaultScale())

	// Select representatives once; the characterization is independent
	// of the GPU configuration, including its clock.
	ch, err := megsim.Characterize(trace)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := megsim.SelectFrames(ch, megsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d frames, %d representatives (%.0fx)\n\n",
		trace.Name, trace.NumFrames(), sel.NumRepresentatives(), sel.ReductionFactor())

	fmt.Printf("%-8s %16s %14s %12s %14s\n",
		"clock", "cycles (total)", "ms/frame", "est. fps", "speedup")
	var baseline float64
	for _, mhz := range []int{300, 450, 600, 900, 1200} {
		gpu := megsim.DefaultGPUConfig()
		gpu.FrequencyMHz = mhz

		sim, err := megsim.NewSimulator(gpu, trace)
		if err != nil {
			log.Fatal(err)
		}
		repStats := make(map[int]megsim.FrameStats, sel.NumRepresentatives())
		for _, f := range sel.Representatives {
			repStats[f] = sim.SimulateFrame(f)
		}
		est, err := sel.Estimate(repStats)
		if err != nil {
			log.Fatal(err)
		}
		secondsPerFrame := gpu.FrameSeconds(est.Cycles) / float64(trace.NumFrames())
		fps := 1 / secondsPerFrame
		if mhz == 300 {
			baseline = fps
		}
		fmt.Printf("%-8s %16d %14.3f %12.1f %13.2fx\n",
			fmt.Sprintf("%dMHz", mhz), est.Cycles, secondsPerFrame*1e3, fps, fps/baseline)
	}
	fmt.Println("\nSpeedup is sublinear in clock: memory latency is fixed in wall-clock")
	fmt.Println("terms, so higher core clocks spend more cycles waiting on DRAM.")
}
