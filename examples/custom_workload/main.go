// Custom workload: author a synthetic game profile from scratch — a
// top-down shoot-em-up with waves, boss fights and shop screens — and
// run MEGsim on it. This is what a user does when their workload is not
// one of the eight Table II benchmarks.
//
//	go run ./examples/custom_workload
package main

import (
	"fmt"
	"log"

	"repro/internal/workload"
	"repro/megsim"
)

func main() {
	shmup := workload.Profile{
		Alias:  "shmup",
		Title:  "Neon Swarm (custom)",
		Genre:  "Top-down shoot-em-up",
		Type:   workload.Game2D,
		Frames: 1800,
		NumVS:  6,
		NumFS:  8,
		Seed:   0xbee5,
		Detail: 0.9,
		Phases: []workload.Phase{
			{Name: "title", Weight: 0.08, Layers: []workload.Layer{
				{Name: "backdrop", Mesh: workload.MeshQuad, Material: 0, BaseCount: 1, SizeMin: 1, SizeMax: 1, Depth: 0.9},
				{Name: "logo", Mesh: workload.MeshQuad, Material: 1, BaseCount: 3, Spread: 0.4, SizeMin: 0.2, SizeMax: 0.4, Anim: workload.AnimBob, Depth: 0.3},
			}},
			{Name: "wave", Weight: 0.5, Repeat: 4, EventRate: 0.04, Layers: []workload.Layer{
				{Name: "starfield", Mesh: workload.MeshQuad, Material: 0, BaseCount: 1, SizeMin: 1, SizeMax: 1, Depth: 0.95},
				{Name: "enemies", Mesh: workload.MeshQuad, Material: -1, BaseCount: 14, CountAmp: 8, CountFreq: 2, Spread: 0.9, SizeMin: 0.05, SizeMax: 0.1, Anim: workload.AnimScroll, Depth: 0.5},
				{Name: "bullets", Mesh: workload.MeshQuad, Material: 2, BaseCount: 20, CountAmp: 15, CountFreq: 9, Spread: 0.9, SizeMin: 0.01, SizeMax: 0.03, Anim: workload.AnimScroll, Depth: 0.4},
				{Name: "ship", Mesh: workload.MeshQuad, Material: 3, BaseCount: 1, Spread: 0.1, SizeMin: 0.08, SizeMax: 0.08, Anim: workload.AnimBob, Depth: 0.3},
			}},
			{Name: "boss", Weight: 0.3, Repeat: 2, EventRate: 0.08, Layers: []workload.Layer{
				{Name: "starfield", Mesh: workload.MeshQuad, Material: 0, BaseCount: 1, SizeMin: 1, SizeMax: 1, Depth: 0.95},
				{Name: "boss", Mesh: workload.MeshQuad, Material: 4, BaseCount: 4, Spread: 0.3, SizeMin: 0.2, SizeMax: 0.35, Anim: workload.AnimBob, Depth: 0.45},
				{Name: "barrage", Mesh: workload.MeshQuad, Material: 2, BaseCount: 30, CountAmp: 20, CountFreq: 12, Spread: 0.9, SizeMin: 0.01, SizeMax: 0.04, Anim: workload.AnimScroll, Depth: 0.4},
				{Name: "ship", Mesh: workload.MeshQuad, Material: 3, BaseCount: 1, Spread: 0.1, SizeMin: 0.08, SizeMax: 0.08, Anim: workload.AnimBob, Depth: 0.3},
			}},
			{Name: "shop", Weight: 0.12, Layers: []workload.Layer{
				{Name: "panel", Mesh: workload.MeshQuad, Material: 1, BaseCount: 10, Spread: 0.7, SizeMin: 0.08, SizeMax: 0.25, Depth: 0.4},
			}},
		},
	}

	trace, err := megsim.GenerateTrace(shmup, megsim.DefaultScale())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom workload %q: %d frames, %d draw commands in frame 900\n",
		trace.Name, trace.NumFrames(), trace.Frames[900].DrawCount())

	run, err := megsim.Sample(trace, megsim.DefaultConfig(), megsim.DefaultGPUConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clusters: %d, representatives: %v\n", run.Selection.Clusters.K, run.Representatives())
	fmt.Printf("reduction: %.0fx fewer frames to simulate\n", run.ReductionFactor())

	// Sanity-check the estimate against the ground truth (cheap here:
	// the custom sequence is short).
	full, err := megsim.SimulateFull(trace, megsim.DefaultGPUConfig())
	if err != nil {
		log.Fatal(err)
	}
	actual := megsim.SumStats(full)
	acc := megsim.CompareAccuracy(&run.Estimate, &actual)
	fmt.Printf("relative error: cycles %.2f%%, dram %.2f%%, l2 %.2f%%, tile %.2f%%\n",
		acc.Percent(megsim.MetricCycles), acc.Percent(megsim.MetricDRAM),
		acc.Percent(megsim.MetricL2), acc.Percent(megsim.MetricTileCache))
}
