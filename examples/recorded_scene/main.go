// Recorded scene: author a workload through the immediate-mode Recorder
// API — the programmatic alternative to the workload profile DSL — then
// run MEGsim on the captured trace. The scene is a little orbit demo
// with two visually distinct phases (calm orbit, then a dense swarm),
// which MEGsim should separate into clusters.
//
//	go run ./examples/recorded_scene
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/geom"
	"repro/internal/scene"
	"repro/internal/shader"
	"repro/internal/xmath/stats"
	"repro/megsim"
)

func main() {
	rec := megsim.NewRecorder("orbit-demo", 256, 128)

	// Resources.
	sphere := rec.AddMesh(scene.Sphere("planet", 6, 8))
	box := rec.AddMesh(scene.Box("satellite"))
	ground := rec.AddMesh(scene.Grid("ground", 8, 8, nil))
	tex := rec.AddTexture(megsim.Texture{Name: "albedo", Width: 128, Height: 128, BytesPerTexel: 4})

	gen := shader.NewGenerator(stats.NewRNG(42))
	solid, err := rec.AddProgram(gen.Vertex(shader.ComplexVertex), gen.Fragment(shader.ComplexFragment))
	if err != nil {
		log.Fatal(err)
	}
	simple, err := rec.AddProgram(gen.Vertex(shader.SimpleVertex), gen.Fragment(shader.SimpleFragment))
	if err != nil {
		log.Fatal(err)
	}

	const frames = 600
	proj := geom.Perspective(math.Pi/3, 2, 0.1, 100)
	for f := 0; f < frames; f++ {
		t := float64(f) / 60
		eye := geom.Vec3{X: 6 * math.Cos(t/4), Y: 3, Z: 6 * math.Sin(t/4)}
		view := geom.LookAt(eye, geom.Vec3{}, geom.Vec3{Y: 1})
		vp := proj.Mul(view)

		rec.BeginFrame()
		rec.UseProgram(simple)
		rec.BindTexture(0, tex)
		rec.Draw(ground, vp.Mul(geom.Translate(geom.Vec3{Y: -1}).Mul(geom.ScaleUniform(12))))

		rec.UseProgram(solid)
		rec.Draw(sphere, vp.Mul(geom.RotateY(t).Mul(geom.ScaleUniform(2))))

		// Phase 2 (second half): a swarm of satellites appears.
		satellites := 3
		if f >= frames/2 {
			satellites = 14
		}
		for s := 0; s < satellites; s++ {
			angle := t*0.8 + float64(s)*2*math.Pi/float64(satellites)
			pos := geom.Vec3{X: 3 * math.Cos(angle), Y: 0.5 * math.Sin(t+float64(s)), Z: 3 * math.Sin(angle)}
			rec.Draw(box, vp.Mul(geom.Translate(pos).Mul(geom.ScaleUniform(0.3))))
		}
		rec.EndFrame()
	}

	trace, err := rec.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %q: %d frames, %d primitives total\n",
		trace.Name, trace.NumFrames(), trace.TotalPrimitives())

	run, err := megsim.Sample(trace, megsim.DefaultConfig(), megsim.DefaultGPUConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MEGsim: %d clusters, representatives %v (%.0fx reduction)\n",
		run.Selection.Clusters.K, run.Representatives(), run.ReductionFactor())

	// The two authored phases should land in different clusters:
	// compare the dominant cluster of each half.
	first := dominantCluster(run.Selection, 0, frames/2)
	second := dominantCluster(run.Selection, frames/2, frames)
	fmt.Printf("dominant cluster: first half %d, second half %d\n", first, second)
	if first == second {
		fmt.Println("warning: phases were not separated")
	} else {
		fmt.Println("the calm-orbit and swarm phases were separated, as expected")
	}
}

func dominantCluster(sel *megsim.Selection, lo, hi int) int {
	counts := map[int]int{}
	for f := lo; f < hi; f++ {
		counts[sel.ClusterOf(f)]++
	}
	best, bestN := -1, 0
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}
