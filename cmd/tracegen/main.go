// Command tracegen synthesizes a benchmark workload trace and writes it
// to a file, playing the role of TEAPOT's OpenGL trace generator.
//
// Usage:
//
//	tracegen -benchmark bbr1 -out bbr1.trace [-width 320 -height 160]
//	         [-frame-div 1] [-detail-div 1] [-list]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/megsim"
)

func main() {
	var (
		benchmark = flag.String("benchmark", "", "benchmark alias (see -list)")
		out       = flag.String("out", "", "output trace file")
		width     = flag.Int("width", 320, "render target width in pixels")
		height    = flag.Int("height", 160, "render target height in pixels")
		frameDiv  = flag.Int("frame-div", 1, "divide the Table II frame count by this factor")
		detailDiv = flag.Int("detail-div", 1, "divide per-frame instance counts by this factor")
		list      = flag.Bool("list", false, "list available benchmarks and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("Available benchmarks (Table II of the paper):")
		for _, a := range megsim.Benchmarks() {
			p, _ := megsim.GetBenchmark(a)
			fmt.Printf("  %-5s %-22s %s, %d frames, %d VS, %d FS\n",
				a, p.Title, p.Type, p.Frames, p.NumVS, p.NumFS)
		}
		return
	}
	if *benchmark == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: tracegen -benchmark <alias> -out <file> (or -list)")
		os.Exit(2)
	}

	sc := megsim.Scale{Width: *width, Height: *height, FrameDivisor: *frameDiv, DetailDivisor: *detailDiv}
	tr, err := megsim.GenerateBenchmark(*benchmark, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if err := tr.SaveFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d frames, %d primitives, %d vertex shaders, %d fragment shaders\n",
		*out, tr.NumFrames(), tr.TotalPrimitives(), len(tr.VertexShaders), len(tr.FragmentShaders))
}
