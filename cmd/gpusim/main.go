// Command gpusim runs the cycle-level TBR GPU simulator over a trace
// (from a file or generated on the fly) and prints the simulation
// statistics — the expensive baseline that MEGsim accelerates.
//
// SIGINT/SIGTERM cancel the run at the next frame boundary; the
// observability outputs are still flushed and, when -checkpoint is set,
// a final checkpoint is written so the run resumes with -resume and
// produces byte-identical statistics to an uninterrupted run. With
// -checkpoint the frame loop runs under the resilience supervisor:
// frames that fail are retried with capped backoff and quarantined when
// they keep failing, and the summary reports the loss loudly.
//
// Usage:
//
//	gpusim -trace bbr1.trace            # simulate a saved trace
//	gpusim -benchmark hcr               # generate + simulate
//	gpusim -benchmark hcr -frames 0:100 # a frame range only
//	gpusim -benchmark hcr -tile-workers 4
//	gpusim -benchmark hcr -checkpoint run.ckpt          # interrupt freely…
//	gpusim -benchmark hcr -checkpoint run.ckpt -resume  # …and pick up here
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/power"
	"repro/internal/report"
	"repro/megsim"
)

func main() {
	// SIGINT/SIGTERM cancel the run context: the frame loop stops at the
	// next boundary, the deferred obs flush and (when enabled) the final
	// checkpoint still happen, and the process exits non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gpusim:", err)
		os.Exit(1)
	}
}

// run is the whole command behind a single error return, so every exit
// path — including mid-run simulator failures and cancellation — goes
// through the same deferred observability flush instead of an os.Exit
// that would skip it.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gpusim", flag.ContinueOnError)
	var (
		tracePath    = fs.String("trace", "", "trace file produced by tracegen")
		benchmark    = fs.String("benchmark", "", "generate this benchmark instead of loading a trace")
		frames       = fs.String("frames", "", "frame range lo:hi (default: all)")
		frameDiv     = fs.Int("frame-div", 1, "frame divisor when generating")
		perFrame     = fs.Bool("per-frame", false, "print one line per frame")
		tbdr         = fs.Bool("tbdr", false, "simulate a TBDR GPU (hidden surface removal)")
		tileWorkers  = fs.Int("tile-workers", 0, "tile-parallel raster workers per frame (0 = serial raster stage)")
		csvPath      = fs.String("csv", "", "write per-frame statistics as CSV to this file")
		watts        = fs.Bool("watts", false, "report estimated average power (1 energy unit = 1 pJ)")
		metricsOut   = fs.String("metrics-out", "", "write observability metrics (counters/histograms) as JSON to this file")
		traceOut     = fs.String("trace-out", "", "write a Chrome-trace JSON timeline (chrome://tracing, Perfetto) to this file")
		checkpoint   = fs.String("checkpoint", "", "checkpoint progress at frame granularity to this file (enables the supervised frame loop)")
		resume       = fs.Bool("resume", false, "resume completed frames from -checkpoint instead of re-simulating")
		retries      = fs.Int("retries", 0, "attempts per frame before quarantine under -checkpoint (0 = default)")
		workers      = fs.Int("workers", 1, "supervised frame-loop workers under -checkpoint (frame isolation keeps results identical)")
		runTimeout   = fs.Duration("run-timeout", 0, "overall wall-clock deadline for the run (0 = none)")
		stallTimeout = fs.Duration("stall-timeout", 0, "flag a worker stuck on one frame longer than this (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *runTimeout)
		defer cancel()
	}
	if (*resume || *retries > 0) && *checkpoint == "" {
		return fmt.Errorf("-resume and -retries require -checkpoint")
	}

	tr, err := loadTrace(*tracePath, *benchmark, *frameDiv)
	if err != nil {
		return err
	}
	lo, hi := 0, tr.NumFrames()
	if *frames != "" {
		if lo, hi, err = parseRange(*frames, tr.NumFrames()); err != nil {
			return err
		}
	}

	gpu := megsim.DefaultGPUConfig()
	gpu.DeferredShading = *tbdr
	gpu.TileWorkers = *tileWorkers
	var reg *megsim.ObsRegistry
	if *metricsOut != "" || *traceOut != "" {
		reg = megsim.NewObsRegistry(0)
		gpu.Obs = reg
	}
	// Flush the requested observability outputs exactly once on EVERY
	// exit path: a failure or cancellation mid-run still writes whatever
	// was recorded up to that point (the partial timeline is precisely
	// what debugging needs), and the atomic writer cleans up after a
	// failed write.
	flushed := false
	flush := func() error {
		if reg == nil || flushed {
			return nil
		}
		flushed = true
		return report.WriteObsFiles(reg.Snapshot(), *metricsOut, *traceOut)
	}
	defer flush()

	var (
		series      []megsim.FrameStats
		quarantined []megsim.QuarantineRecord
		resumed     int
		start       = time.Now()
	)
	if *checkpoint != "" {
		series, quarantined, resumed, err = runSupervised(ctx, tr, gpu, lo, hi, supervisedOpts{
			checkpoint: *checkpoint, resume: *resume, retries: *retries,
			workers: *workers, stallTimeout: *stallTimeout, log: stdout,
		})
		if err != nil {
			return fmt.Errorf("%w (progress checkpointed to %s; rerun with -resume)", err, *checkpoint)
		}
	} else {
		sim, err := megsim.NewSimulator(gpu, tr)
		if err != nil {
			return err
		}
		for f := lo; f < hi; f++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("%w after %d of %d frames (use -checkpoint to make runs resumable)", err, f-lo, hi-lo)
			}
			series = append(series, sim.SimulateFrame(f))
		}
	}
	elapsed := time.Since(start)

	var total megsim.FrameStats
	for _, st := range series {
		if *perFrame {
			fmt.Fprintf(stdout, "frame %5d: cycles=%d dram=%d l2=%d tile=%d fragments=%d\n",
				st.Frame, st.Cycles, st.DRAM.Accesses, st.L2.Accesses, st.TileCache.Accesses, st.FragmentsShaded)
		}
		total.Add(&st)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := harness.WriteFrameStatsCSV(f, series); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	var snap *megsim.ObsSnapshot
	if reg != nil {
		snap = reg.Snapshot()
		if err := flush(); err != nil {
			return err
		}
	}

	model := power.DefaultEnergyModel()
	b := model.FrameEnergy(&total)
	g, ti, ra := b.Fractions()

	fmt.Fprintf(stdout, "workload:          %s (%d frames simulated in %v)\n", tr.Name, len(series), elapsed.Round(time.Millisecond))
	if resumed > 0 {
		fmt.Fprintf(stdout, "resumed:           %d frames from checkpoint\n", resumed)
	}
	if len(quarantined) > 0 {
		fmt.Fprintf(stdout, "PARTIAL RESULT: %d of %d frames quarantined — totals below exclude them\n",
			len(quarantined), hi-lo)
		for _, q := range quarantined {
			fmt.Fprintf(stdout, "  %s\n", q.String())
		}
	}
	fmt.Fprintf(stdout, "cycles:            %d (geometry %d, raster %d)\n", total.Cycles, total.GeometryCycles, total.RasterCycles)
	fmt.Fprintf(stdout, "ipc:               %.2f\n", total.IPC())
	fmt.Fprintf(stdout, "vertices shaded:   %d\n", total.VerticesShaded)
	fmt.Fprintf(stdout, "primitives:        %d in, %d visible\n", total.PrimsIn, total.PrimsVisible)
	fmt.Fprintf(stdout, "fragments shaded:  %d (%d occluded by early-Z)\n", total.FragmentsShaded, total.FragmentsOccluded)
	fmt.Fprintf(stdout, "dram accesses:     %d\n", total.DRAM.Accesses)
	fmt.Fprintf(stdout, "l2 accesses:       %d (%.1f%% hit)\n", total.L2.Accesses, total.L2.HitRate()*100)
	fmt.Fprintf(stdout, "tile cache:        %d accesses (%.1f%% hit)\n", total.TileCache.Accesses, total.TileCache.HitRate()*100)
	fmt.Fprintf(stdout, "texture caches:    %d accesses (%.1f%% hit)\n", total.TextureCache.Accesses, total.TextureCache.HitRate()*100)
	fmt.Fprintf(stdout, "utilization:       VP %.1f%%, FP %.1f%%\n",
		total.VPUtilization(gpu.NumVertexProcessors)*100, total.FPUtilization(gpu.NumFragmentProcessors)*100)
	fmt.Fprintf(stdout, "power fractions:   geometry %.1f%%, tiling %.1f%%, raster %.1f%%\n", g*100, ti*100, ra*100)
	if *watts {
		w := power.AveragePowerWatts(b, total.Cycles, 1.0, 600)
		fmt.Fprintf(stdout, "avg power:         %.3f W (at 600 MHz, 1 pJ/unit)\n", w)
	}
	if snap != nil {
		fmt.Fprintln(stdout)
		if err := report.ObsCounterTable(snap).Render(stdout); err != nil {
			return err
		}
	}
	return nil
}

type supervisedOpts struct {
	checkpoint   string
	resume       bool
	retries      int
	workers      int
	stallTimeout time.Duration
	log          io.Writer
}

// runSupervised runs the frame loop under the resilience supervisor:
// retry + quarantine per frame, frame-granularity checkpointing, resume,
// watchdog. Frame isolation makes each frame a pure function of its
// index, so the returned per-frame series is byte-identical to the
// serial loop whatever the worker count, retry history or resume point.
func runSupervised(ctx context.Context, tr *megsim.Trace, gpu megsim.GPUConfig, lo, hi int, o supervisedOpts) (series []megsim.FrameStats, quarantined []megsim.QuarantineRecord, resumed int, err error) {
	frames := make([]int, 0, hi-lo)
	for f := lo; f < hi; f++ {
		frames = append(frames, f)
	}
	rcfg := megsim.ResilienceConfig{
		Workers:        o.workers,
		MaxAttempts:    o.retries,
		CheckpointPath: o.checkpoint,
		Fingerprint:    megsim.RunFingerprint(tr, gpu),
		Resume:         o.resume,
		StallTimeout:   o.stallTimeout,
		Obs:            gpu.Obs,
	}
	res, err := megsim.Supervise(ctx, frames, megsim.FrameRunner(tr, gpu), rcfg)
	if res != nil && res.ResumeErr != nil {
		fmt.Fprintf(o.log, "WARNING: resume failed, started fresh: %v\n", res.ResumeErr)
	}
	if err != nil {
		return nil, nil, 0, err
	}
	// Ascending frame order, exactly like the serial loop; quarantined
	// frames are absent from Stats and reported separately.
	for _, f := range frames {
		if st, ok := res.Stats[f]; ok {
			series = append(series, st)
		}
	}
	if len(res.StalledWorkers) > 0 {
		fmt.Fprintf(o.log, "WARNING: watchdog flagged stalled workers %v\n", res.StalledWorkers)
	}
	return series, res.Quarantined, len(res.Resumed), nil
}

func loadTrace(path, benchmark string, frameDiv int) (*megsim.Trace, error) {
	switch {
	case path != "" && benchmark != "":
		return nil, fmt.Errorf("use either -trace or -benchmark, not both")
	case path != "":
		return megsim.LoadTrace(path)
	case benchmark != "":
		sc := megsim.DefaultScale()
		sc.FrameDivisor = frameDiv
		return megsim.GenerateBenchmark(benchmark, sc)
	default:
		return nil, fmt.Errorf("need -trace or -benchmark")
	}
}

func parseRange(s string, n int) (lo, hi int, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad range %q (want lo:hi)", s)
	}
	if lo, err = strconv.Atoi(parts[0]); err != nil {
		return 0, 0, fmt.Errorf("bad range %q: %v", s, err)
	}
	if hi, err = strconv.Atoi(parts[1]); err != nil {
		return 0, 0, fmt.Errorf("bad range %q: %v", s, err)
	}
	if lo < 0 || hi > n || lo >= hi {
		return 0, 0, fmt.Errorf("range %q out of [0,%d)", s, n)
	}
	return lo, hi, nil
}
