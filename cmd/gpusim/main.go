// Command gpusim runs the cycle-level TBR GPU simulator over a trace
// (from a file or generated on the fly) and prints the simulation
// statistics — the expensive baseline that MEGsim accelerates.
//
// Usage:
//
//	gpusim -trace bbr1.trace            # simulate a saved trace
//	gpusim -benchmark hcr               # generate + simulate
//	gpusim -benchmark hcr -frames 0:100 # a frame range only
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/power"
	"repro/internal/report"
	"repro/megsim"
)

func main() {
	var (
		tracePath  = flag.String("trace", "", "trace file produced by tracegen")
		benchmark  = flag.String("benchmark", "", "generate this benchmark instead of loading a trace")
		frames     = flag.String("frames", "", "frame range lo:hi (default: all)")
		frameDiv   = flag.Int("frame-div", 1, "frame divisor when generating")
		perFrame   = flag.Bool("per-frame", false, "print one line per frame")
		tbdr       = flag.Bool("tbdr", false, "simulate a TBDR GPU (hidden surface removal)")
		csvPath    = flag.String("csv", "", "write per-frame statistics as CSV to this file")
		watts      = flag.Bool("watts", false, "report estimated average power (1 energy unit = 1 pJ)")
		metricsOut = flag.String("metrics-out", "", "write observability metrics (counters/histograms) as JSON to this file")
		traceOut   = flag.String("trace-out", "", "write a Chrome-trace JSON timeline (chrome://tracing, Perfetto) to this file")
	)
	flag.Parse()

	tr, err := loadTrace(*tracePath, *benchmark, *frameDiv)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpusim:", err)
		os.Exit(1)
	}
	lo, hi := 0, tr.NumFrames()
	if *frames != "" {
		if lo, hi, err = parseRange(*frames, tr.NumFrames()); err != nil {
			fmt.Fprintln(os.Stderr, "gpusim:", err)
			os.Exit(2)
		}
	}

	gpu := megsim.DefaultGPUConfig()
	gpu.DeferredShading = *tbdr
	var reg *megsim.ObsRegistry
	if *metricsOut != "" || *traceOut != "" {
		reg = megsim.NewObsRegistry(0)
		gpu.Obs = reg
	}
	sim, err := megsim.NewSimulator(gpu, tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpusim:", err)
		os.Exit(1)
	}
	var total megsim.FrameStats
	var series []megsim.FrameStats
	start := time.Now()
	for f := lo; f < hi; f++ {
		st := sim.SimulateFrame(f)
		if *perFrame {
			fmt.Printf("frame %5d: cycles=%d dram=%d l2=%d tile=%d fragments=%d\n",
				f, st.Cycles, st.DRAM.Accesses, st.L2.Accesses, st.TileCache.Accesses, st.FragmentsShaded)
		}
		if *csvPath != "" {
			series = append(series, st)
		}
		total.Add(&st)
	}
	elapsed := time.Since(start)

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpusim:", err)
			os.Exit(1)
		}
		if err := harness.WriteFrameStatsCSV(f, series); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "gpusim:", err)
			os.Exit(1)
		}
		f.Close()
	}

	var snap *megsim.ObsSnapshot
	if reg != nil {
		snap = reg.Snapshot()
		if err := writeObsOutputs(snap, *metricsOut, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "gpusim:", err)
			os.Exit(1)
		}
	}

	model := power.DefaultEnergyModel()
	b := model.FrameEnergy(&total)
	g, ti, ra := b.Fractions()

	fmt.Printf("workload:          %s (%d frames simulated in %v)\n", tr.Name, hi-lo, elapsed.Round(time.Millisecond))
	fmt.Printf("cycles:            %d (geometry %d, raster %d)\n", total.Cycles, total.GeometryCycles, total.RasterCycles)
	fmt.Printf("ipc:               %.2f\n", total.IPC())
	fmt.Printf("vertices shaded:   %d\n", total.VerticesShaded)
	fmt.Printf("primitives:        %d in, %d visible\n", total.PrimsIn, total.PrimsVisible)
	fmt.Printf("fragments shaded:  %d (%d occluded by early-Z)\n", total.FragmentsShaded, total.FragmentsOccluded)
	fmt.Printf("dram accesses:     %d\n", total.DRAM.Accesses)
	fmt.Printf("l2 accesses:       %d (%.1f%% hit)\n", total.L2.Accesses, total.L2.HitRate()*100)
	fmt.Printf("tile cache:        %d accesses (%.1f%% hit)\n", total.TileCache.Accesses, total.TileCache.HitRate()*100)
	fmt.Printf("texture caches:    %d accesses (%.1f%% hit)\n", total.TextureCache.Accesses, total.TextureCache.HitRate()*100)
	fmt.Printf("utilization:       VP %.1f%%, FP %.1f%%\n",
		total.VPUtilization(gpu.NumVertexProcessors)*100, total.FPUtilization(gpu.NumFragmentProcessors)*100)
	fmt.Printf("power fractions:   geometry %.1f%%, tiling %.1f%%, raster %.1f%%\n", g*100, ti*100, ra*100)
	if *watts {
		w := power.AveragePowerWatts(b, total.Cycles, 1.0, 600)
		fmt.Printf("avg power:         %.3f W (at 600 MHz, 1 pJ/unit)\n", w)
	}
	if snap != nil {
		fmt.Println()
		if err := report.ObsCounterTable(snap).Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "gpusim:", err)
			os.Exit(1)
		}
	}
}

// writeObsOutputs writes the observability snapshot to the requested
// files: metrics as JSON, the timeline as Chrome trace-format JSON.
func writeObsOutputs(snap *megsim.ObsSnapshot, metricsPath, tracePath string) error {
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := snap.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := snap.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func loadTrace(path, benchmark string, frameDiv int) (*megsim.Trace, error) {
	switch {
	case path != "" && benchmark != "":
		return nil, fmt.Errorf("use either -trace or -benchmark, not both")
	case path != "":
		return megsim.LoadTrace(path)
	case benchmark != "":
		sc := megsim.DefaultScale()
		sc.FrameDivisor = frameDiv
		return megsim.GenerateBenchmark(benchmark, sc)
	default:
		return nil, fmt.Errorf("need -trace or -benchmark")
	}
}

func parseRange(s string, n int) (lo, hi int, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad range %q (want lo:hi)", s)
	}
	if lo, err = strconv.Atoi(parts[0]); err != nil {
		return 0, 0, fmt.Errorf("bad range %q: %v", s, err)
	}
	if hi, err = strconv.Atoi(parts[1]); err != nil {
		return 0, 0, fmt.Errorf("bad range %q: %v", s, err)
	}
	if lo < 0 || hi > n || lo >= hi {
		return 0, 0, fmt.Errorf("range %q out of [0,%d)", s, n)
	}
	return lo, hi, nil
}
