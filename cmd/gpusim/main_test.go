package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseRange(t *testing.T) {
	cases := []struct {
		in      string
		n       int
		lo, hi  int
		wantErr bool
	}{
		{"0:10", 100, 0, 10, false},
		{"5:100", 100, 5, 100, false},
		{"10:5", 100, 0, 0, true},
		{"0:101", 100, 0, 0, true},
		{"-1:5", 100, 0, 0, true},
		{"abc", 100, 0, 0, true},
		{"1:x", 100, 0, 0, true},
		{"", 100, 0, 0, true},
	}
	for _, c := range cases {
		lo, hi, err := parseRange(c.in, c.n)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseRange(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseRange(%q): %v", c.in, err)
			continue
		}
		if lo != c.lo || hi != c.hi {
			t.Errorf("parseRange(%q) = %d:%d, want %d:%d", c.in, lo, hi, c.lo, c.hi)
		}
	}
}

func TestLoadTraceValidation(t *testing.T) {
	if _, err := loadTrace("", "", 1); err == nil {
		t.Fatal("accepted neither -trace nor -benchmark")
	}
	if _, err := loadTrace("a", "b", 1); err == nil {
		t.Fatal("accepted both -trace and -benchmark")
	}
	if _, err := loadTrace("", "not-a-benchmark", 1); err == nil {
		t.Fatal("accepted unknown benchmark")
	}
}

// mustValidJSON fails the test unless path holds well-formed JSON.
func mustValidJSON(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("obs output missing: %v", err)
	}
	if !json.Valid(data) {
		t.Fatalf("%s is not valid JSON (%d bytes)", path, len(data))
	}
}

// TestRunWritesObsOutputs exercises the happy path end to end: a tiny
// generated benchmark with the tile-parallel raster stage enabled must
// leave well-formed metrics and Chrome-trace files behind.
func TestRunWritesObsOutputs(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	trace := filepath.Join(dir, "trace.json")
	var out strings.Builder
	err := run([]string{
		"-benchmark", "hcr", "-frame-div", "100", "-frames", "0:2",
		"-tile-workers", "2",
		"-metrics-out", metrics, "-trace-out", trace,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	mustValidJSON(t, metrics)
	mustValidJSON(t, trace)
	if !strings.Contains(out.String(), "cycles:") {
		t.Fatalf("summary missing from output:\n%s", out.String())
	}
}

// TestRunFlushesObsOnError: a failure after the registry is attached
// (here: an invalid tile-worker count rejected by config validation)
// used to os.Exit past the flush, losing the -metrics-out/-trace-out
// files entirely. The error must surface AND the files must exist.
func TestRunFlushesObsOnError(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	trace := filepath.Join(dir, "trace.json")
	err := run([]string{
		"-benchmark", "hcr", "-frame-div", "100",
		"-tile-workers", "-1",
		"-metrics-out", metrics, "-trace-out", trace,
	}, io.Discard)
	if err == nil {
		t.Fatal("invalid -tile-workers accepted")
	}
	if !strings.Contains(err.Error(), "TileWorkers") {
		t.Fatalf("error lost the cause: %v", err)
	}
	mustValidJSON(t, metrics)
	mustValidJSON(t, trace)
}

// TestRunCleansUpFailedObsWrite: when the obs flush itself cannot
// complete (unwritable destination), the run must fail and leave no
// partial or temporary files behind.
func TestRunCleansUpFailedObsWrite(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "no-such-subdir", "metrics.json")
	err := run([]string{
		"-benchmark", "hcr", "-frame-div", "100", "-frames", "0:1",
		"-metrics-out", metrics,
	}, io.Discard)
	if err == nil {
		t.Fatal("unwritable -metrics-out accepted")
	}
	entries, rdErr := os.ReadDir(dir)
	if rdErr != nil {
		t.Fatal(rdErr)
	}
	for _, e := range entries {
		t.Fatalf("leftover file after failed flush: %s", e.Name())
	}
}
