package main

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseRange(t *testing.T) {
	cases := []struct {
		in      string
		n       int
		lo, hi  int
		wantErr bool
	}{
		{"0:10", 100, 0, 10, false},
		{"5:100", 100, 5, 100, false},
		{"10:5", 100, 0, 0, true},
		{"0:101", 100, 0, 0, true},
		{"-1:5", 100, 0, 0, true},
		{"abc", 100, 0, 0, true},
		{"1:x", 100, 0, 0, true},
		{"", 100, 0, 0, true},
	}
	for _, c := range cases {
		lo, hi, err := parseRange(c.in, c.n)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseRange(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseRange(%q): %v", c.in, err)
			continue
		}
		if lo != c.lo || hi != c.hi {
			t.Errorf("parseRange(%q) = %d:%d, want %d:%d", c.in, lo, hi, c.lo, c.hi)
		}
	}
}

func TestLoadTraceValidation(t *testing.T) {
	if _, err := loadTrace("", "", 1); err == nil {
		t.Fatal("accepted neither -trace nor -benchmark")
	}
	if _, err := loadTrace("a", "b", 1); err == nil {
		t.Fatal("accepted both -trace and -benchmark")
	}
	if _, err := loadTrace("", "not-a-benchmark", 1); err == nil {
		t.Fatal("accepted unknown benchmark")
	}
}

// mustValidJSON fails the test unless path holds well-formed JSON.
func mustValidJSON(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("obs output missing: %v", err)
	}
	if !json.Valid(data) {
		t.Fatalf("%s is not valid JSON (%d bytes)", path, len(data))
	}
}

// TestRunWritesObsOutputs exercises the happy path end to end: a tiny
// generated benchmark with the tile-parallel raster stage enabled must
// leave well-formed metrics and Chrome-trace files behind.
func TestRunWritesObsOutputs(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	trace := filepath.Join(dir, "trace.json")
	var out strings.Builder
	err := run(context.Background(), []string{
		"-benchmark", "hcr", "-frame-div", "100", "-frames", "0:2",
		"-tile-workers", "2",
		"-metrics-out", metrics, "-trace-out", trace,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	mustValidJSON(t, metrics)
	mustValidJSON(t, trace)
	if !strings.Contains(out.String(), "cycles:") {
		t.Fatalf("summary missing from output:\n%s", out.String())
	}
}

// TestRunFlushesObsOnError: a failure after the registry is attached
// (here: an invalid tile-worker count rejected by config validation)
// used to os.Exit past the flush, losing the -metrics-out/-trace-out
// files entirely. The error must surface AND the files must exist.
func TestRunFlushesObsOnError(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	trace := filepath.Join(dir, "trace.json")
	err := run(context.Background(), []string{
		"-benchmark", "hcr", "-frame-div", "100",
		"-tile-workers", "-1",
		"-metrics-out", metrics, "-trace-out", trace,
	}, io.Discard)
	if err == nil {
		t.Fatal("invalid -tile-workers accepted")
	}
	if !strings.Contains(err.Error(), "TileWorkers") {
		t.Fatalf("error lost the cause: %v", err)
	}
	mustValidJSON(t, metrics)
	mustValidJSON(t, trace)
}

// TestRunCleansUpFailedObsWrite: when the obs flush itself cannot
// complete (unwritable destination), the run must fail and leave no
// partial or temporary files behind.
func TestRunCleansUpFailedObsWrite(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "no-such-subdir", "metrics.json")
	err := run(context.Background(), []string{
		"-benchmark", "hcr", "-frame-div", "100", "-frames", "0:1",
		"-metrics-out", metrics,
	}, io.Discard)
	if err == nil {
		t.Fatal("unwritable -metrics-out accepted")
	}
	entries, rdErr := os.ReadDir(dir)
	if rdErr != nil {
		t.Fatal(rdErr)
	}
	for _, e := range entries {
		t.Fatalf("leftover file after failed flush: %s", e.Name())
	}
}

// statLines extracts the deterministic statistics lines from a summary
// (drops the "workload:" header, whose elapsed time varies run to run,
// and the resume accounting line).
func statLines(out string) string {
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "workload:") || strings.HasPrefix(line, "resumed:") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestRunCheckpointResumeByteIdentical is the CLI half of the headline
// guarantee: a partial checkpointed run, resumed over a wider frame
// range, produces byte-identical per-frame CSV and summary statistics
// to an uninterrupted run — with the adopted frames reported.
func TestRunCheckpointResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-benchmark", "hcr", "-frame-div", "100"}

	// Uninterrupted reference over frames 0:4.
	refCSV := filepath.Join(dir, "ref.csv")
	var refOut strings.Builder
	args := append(append([]string{}, base...),
		"-frames", "0:4", "-csv", refCSV, "-checkpoint", filepath.Join(dir, "ref.ckpt"))
	if err := run(context.Background(), args, &refOut); err != nil {
		t.Fatalf("reference run: %v\n%s", err, refOut.String())
	}

	// "Interrupted" run: only the first two frames, checkpointed.
	ckpt := filepath.Join(dir, "run.ckpt")
	args = append(append([]string{}, base...), "-frames", "0:2", "-checkpoint", ckpt)
	if err := run(context.Background(), args, io.Discard); err != nil {
		t.Fatalf("partial run: %v", err)
	}

	// Resume over the full range: frames 0 and 1 come from the
	// checkpoint, 2 and 3 are simulated, results are identical.
	resCSV := filepath.Join(dir, "res.csv")
	var resOut strings.Builder
	args = append(append([]string{}, base...),
		"-frames", "0:4", "-csv", resCSV, "-checkpoint", ckpt, "-resume", "-workers", "2")
	if err := run(context.Background(), args, &resOut); err != nil {
		t.Fatalf("resumed run: %v\n%s", err, resOut.String())
	}
	if !strings.Contains(resOut.String(), "resumed:           2 frames") {
		t.Fatalf("resume accounting missing:\n%s", resOut.String())
	}

	ref, err := os.ReadFile(refCSV)
	if err != nil {
		t.Fatal(err)
	}
	res, err := os.ReadFile(resCSV)
	if err != nil {
		t.Fatal(err)
	}
	if string(ref) != string(res) {
		t.Fatalf("per-frame CSV differs between resumed and uninterrupted runs:\n%s\nvs\n%s", res, ref)
	}
	if statLines(refOut.String()) != statLines(resOut.String()) {
		t.Fatalf("summaries differ:\n%s\nvs\n%s", resOut.String(), refOut.String())
	}
}

// TestRunCorruptCheckpointFallsBack: garbage in the checkpoint file must
// be reported, never trusted — the run warns, starts fresh, succeeds,
// and repairs the file.
func TestRunCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	if err := os.WriteFile(ckpt, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run(context.Background(), []string{
		"-benchmark", "hcr", "-frame-div", "100", "-frames", "0:2",
		"-checkpoint", ckpt, "-resume",
	}, &out)
	if err != nil {
		t.Fatalf("corrupt checkpoint aborted the run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "WARNING: resume failed") {
		t.Fatalf("corruption not reported:\n%s", out.String())
	}

	// The file was rewritten; a second resume must now adopt cleanly.
	var out2 strings.Builder
	err = run(context.Background(), []string{
		"-benchmark", "hcr", "-frame-div", "100", "-frames", "0:2",
		"-checkpoint", ckpt, "-resume",
	}, &out2)
	if err != nil {
		t.Fatalf("resume from repaired checkpoint: %v", err)
	}
	if !strings.Contains(out2.String(), "resumed:           2 frames") {
		t.Fatalf("repaired checkpoint not adopted:\n%s", out2.String())
	}
}

// TestRunTimeoutIsResumable: a deadline that fires before the first
// frame completes must fail with a resume hint, and the serial loop
// (no -checkpoint) must point at -checkpoint instead.
func TestRunTimeoutIsResumable(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	err := run(context.Background(), []string{
		"-benchmark", "hcr", "-frame-div", "100",
		"-checkpoint", ckpt, "-run-timeout", "1ns",
	}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("supervised timeout error has no resume hint: %v", err)
	}

	err = run(context.Background(), []string{
		"-benchmark", "hcr", "-frame-div", "100", "-run-timeout", "1ns",
	}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-checkpoint") {
		t.Fatalf("serial timeout error has no checkpoint hint: %v", err)
	}
}

func TestSupervisedFlagsRequireCheckpoint(t *testing.T) {
	if err := run(context.Background(), []string{"-benchmark", "hcr", "-resume"}, io.Discard); err == nil {
		t.Fatal("-resume without -checkpoint accepted")
	}
	if err := run(context.Background(), []string{"-benchmark", "hcr", "-retries", "5"}, io.Discard); err == nil {
		t.Fatal("-retries without -checkpoint accepted")
	}
}
