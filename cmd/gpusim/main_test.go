package main

import "testing"

func TestParseRange(t *testing.T) {
	cases := []struct {
		in      string
		n       int
		lo, hi  int
		wantErr bool
	}{
		{"0:10", 100, 0, 10, false},
		{"5:100", 100, 5, 100, false},
		{"10:5", 100, 0, 0, true},
		{"0:101", 100, 0, 0, true},
		{"-1:5", 100, 0, 0, true},
		{"abc", 100, 0, 0, true},
		{"1:x", 100, 0, 0, true},
		{"", 100, 0, 0, true},
	}
	for _, c := range cases {
		lo, hi, err := parseRange(c.in, c.n)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseRange(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseRange(%q): %v", c.in, err)
			continue
		}
		if lo != c.lo || hi != c.hi {
			t.Errorf("parseRange(%q) = %d:%d, want %d:%d", c.in, lo, hi, c.lo, c.hi)
		}
	}
}

func TestLoadTraceValidation(t *testing.T) {
	if _, err := loadTrace("", "", 1); err == nil {
		t.Fatal("accepted neither -trace nor -benchmark")
	}
	if _, err := loadTrace("a", "b", 1); err == nil {
		t.Fatal("accepted both -trace and -benchmark")
	}
	if _, err := loadTrace("", "not-a-benchmark", 1); err == nil {
		t.Fatal("accepted unknown benchmark")
	}
}
