package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/check"
	"repro/internal/tbr"
)

// runValidate is the `experiments validate` subcommand: the
// differential oracle of internal/check over N randomized workload
// seeds, emitting the JSON accuracy report `make validate` gates CI on.
func runValidate(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments validate", flag.ContinueOnError)
	var (
		seeds       = fs.String("seeds", "1,2,3", "comma-separated workload seeds")
		out         = fs.String("out", "", "write the JSON accuracy report to this file")
		frameDiv    = fs.Int("frame-div", 0, "override the oracle scale's frame divisor")
		workers     = fs.Int("workers", 0, "simulation worker goroutines (0 = all cores)")
		tileWorkers = fs.Int("tile-workers", 0, "tile-parallel raster workers per frame")
		tolScale    = fs.Float64("tol", 1, "scale factor on the default tolerance bands")
		quiet       = fs.Bool("quiet", false, "suppress progress logging")

		// Fault injection: perturb the simulated microarchitecture to
		// measure graceful degradation (see internal/check).
		faultDrop        = fs.Float64("fault-drop", 0, "per-tile drop probability")
		faultDup         = fs.Float64("fault-dup", 0, "per-tile duplicate probability")
		faultFlush       = fs.Float64("fault-flush", 0, "per-tile cache-flush probability")
		faultStallRate   = fs.Float64("fault-stall-rate", 0, "per-tile stall probability")
		faultStallCycles = fs.Uint64("fault-stall-cycles", 0, "stall length in cycles")
		faultDRAMScale   = fs.Float64("fault-dram-scale", 0, "DRAM latency scale (0 = off, 1 = identity)")
		faultCorrupt     = fs.Bool("fault-corrupt", false, "corrupt frame statistics (must trip the invariant layer)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := check.OracleConfig{
		Workers:     *workers,
		TileWorkers: *tileWorkers,
		Tolerance:   check.DefaultTolerance().Scaled(*tolScale),
		Faults: tbr.FaultConfig{
			DropTileRate:      *faultDrop,
			DuplicateTileRate: *faultDup,
			CacheFlushRate:    *faultFlush,
			StallRate:         *faultStallRate,
			StallCycles:       *faultStallCycles,
			DRAMLatencyScale:  *faultDRAMScale,
			CorruptStats:      *faultCorrupt,
		},
	}
	if *frameDiv > 0 {
		cfg.Scale = check.DefaultOracleScale
		cfg.Scale.FrameDivisor = *frameDiv
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	var err error
	if cfg.Seeds, err = parseSeeds(*seeds); err != nil {
		return err
	}

	rep, err := check.RunOracle(cfg)
	if err != nil {
		return err
	}

	for _, sr := range rep.Seeds {
		fmt.Fprintf(stdout, "seed %-4d %-14s %4d frames, %3d reps (%.0fx), isolation=%v invariance=%v violations=%d\n",
			sr.Seed, sr.Alias, sr.Frames, sr.Representatives, sr.Reduction,
			sr.RepIsolation, sr.WorkerInvariance, len(sr.Violations))
		for _, m := range sr.Metrics {
			verdict := "ok"
			if !m.Pass {
				verdict = "OUT OF BAND"
			}
			fmt.Fprintf(stdout, "  %-22s err %6.3f%% (band %4.1f%%) %s\n",
				m.Name, m.RelErr*100, m.Tolerance*100, verdict)
		}
	}

	if *out != "" {
		if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
			return err
		}
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}

	if !rep.Pass {
		return fmt.Errorf("validation gate failed: accuracy out of band or invariants violated")
	}
	fmt.Fprintf(stdout, "validation gate passed: %d seeds within tolerance\n", len(rep.Seeds))
	return nil
}

func parseSeeds(s string) ([]uint64, error) {
	var seeds []uint64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", part, err)
		}
		seeds = append(seeds, v)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no seeds given")
	}
	return seeds, nil
}
