// Command experiments regenerates every table and figure of the paper's
// evaluation (Tables II-IV, Figs. 3-7) on the synthetic benchmark suite,
// writing text tables to stdout, CSVs and images to -outdir.
//
// A full run over all eight benchmarks at the default scale takes a few
// minutes; use -benchmarks and -frame-div to iterate faster.
//
// Usage:
//
//	experiments                      # everything, default scale
//	experiments -benchmarks hcr,jjo  # a subset
//	experiments -frame-div 10        # 10x shorter sequences
//	experiments -outdir results      # also write CSV/PGM/PPM artifacts
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/report"
	"repro/megsim"
)

func main() {
	// Subcommand dispatch: `experiments validate` runs the differential
	// oracle instead of the paper's tables.
	if len(os.Args) > 1 && os.Args[1] == "validate" {
		if err := runValidate(os.Args[2:], os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	var (
		benchmarks = flag.String("benchmarks", "", "comma-separated subset of benchmarks (default: all)")
		frameDiv   = flag.Int("frame-div", 1, "divide frame counts for faster runs")
		outdir     = flag.String("outdir", "", "directory for CSV and image artifacts (optional)")
		skipIV     = flag.Bool("skip-table4", false, "skip the random sub-sampling study (Table IV)")
		ablations  = flag.String("ablations", "", "also run the methodology ablation table on this benchmark (e.g. bbr1)")
		assi       = flag.String("assi", "", "also run the warm-vs-cold cache (ASSI) study on this benchmark")
		presets    = flag.String("presets", "", "also compare GPU presets on this benchmark")
		quiet      = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	opts := harness.DefaultOptions()
	opts.Scale.FrameDivisor = *frameDiv
	if !*quiet {
		opts.Log = os.Stderr
	}
	study := harness.NewStudy(opts)
	if *benchmarks != "" {
		study.Aliases = strings.Split(*benchmarks, ",")
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	tables := []struct {
		name string
		fn   func() (*report.Table, error)
	}{
		{"table2", study.TableII},
		{"table3", study.TableIII},
		{"fig3", study.Fig3},
		{"fig4", study.Fig4},
		{"fig7", study.Fig7},
		{"speedup", study.SpeedupTable},
	}
	for _, tb := range tables {
		t, err := tb.fn()
		if err != nil {
			fatal(err)
		}
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		writeCSV(*outdir, tb.name, t)
	}

	if !*skipIV {
		t4, _, err := study.TableIV(harness.DefaultTableIVConfig())
		if err != nil {
			fatal(err)
		}
		if err := t4.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		writeCSV(*outdir, "table4", t4)
	}

	// Fig. 5/6: similarity matrix images for bbr1 (the paper's example),
	// 900 frames as in Fig. 5.
	if *outdir != "" && hasAlias(study, "bbr1") {
		writeImage(*outdir, "fig5_bbr1.pgm", func(f *os.File) error { return study.Fig5("bbr1", 900, f) })
		writeImage(*outdir, "fig6_bbr1.ppm", func(f *os.File) error { return study.Fig6("bbr1", 900, f) })
	}

	if *ablations != "" {
		t, _, err := study.AblationTable(*ablations)
		if err != nil {
			fatal(err)
		}
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		writeCSV(*outdir, "ablations_"+*ablations, t)
	}
	if *assi != "" {
		t, err := study.ASSIStudy(*assi, 500)
		if err != nil {
			fatal(err)
		}
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		writeCSV(*outdir, "assi_"+*assi, t)
	}

	if *presets != "" {
		t, err := study.PresetTable(*presets)
		if err != nil {
			fatal(err)
		}
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		writeCSV(*outdir, "presets_"+*presets, t)
	}

	if g, err := study.GeoMeanReduction(); err == nil {
		fmt.Printf("geometric-mean frame reduction: %.0fx\n", g)
	}
	fmt.Printf("total experiment time: %v\n", time.Since(start).Round(time.Second))
}

func hasAlias(s *harness.Study, alias string) bool {
	if len(s.Aliases) == 0 {
		for _, a := range megsim.Benchmarks() {
			if a == alias {
				return true
			}
		}
		return false
	}
	for _, a := range s.Aliases {
		if a == alias {
			return true
		}
	}
	return false
}

func writeCSV(dir, name string, t *report.Table) {
	if dir == "" {
		return
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		fatal(err)
	}
}

func writeImage(dir, name string, write func(*os.File) error) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", filepath.Join(dir, name))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
