package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseSeeds(t *testing.T) {
	got, err := parseSeeds("1, 2,3")
	if err != nil {
		t.Fatalf("parseSeeds: %v", err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("parseSeeds = %v", got)
	}
	for _, bad := range []string{"", ",,", "x", "1,-2"} {
		if _, err := parseSeeds(bad); err == nil {
			t.Errorf("parseSeeds(%q) accepted", bad)
		}
	}
}

func TestValidateSubcommand(t *testing.T) {
	out := filepath.Join(t.TempDir(), "validate.json")
	var buf bytes.Buffer
	err := runValidate([]string{"-seeds", "1", "-frame-div", "16", "-quiet", "-out", out}, &buf)
	if err != nil {
		t.Fatalf("runValidate: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "validation gate passed") {
		t.Errorf("missing pass line:\n%s", buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep struct {
		Pass  bool `json:"pass"`
		Seeds []struct {
			Seed    uint64 `json:"seed"`
			Metrics []struct {
				Name string `json:"name"`
			} `json:"metrics"`
		} `json:"seeds"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	if !rep.Pass || len(rep.Seeds) != 1 || len(rep.Seeds[0].Metrics) != 12 {
		t.Errorf("unexpected report: %s", data)
	}
}

// TestValidateSubcommandCorruptFaultFails drives the invariant layer
// end to end through the CLI: statistics corruption must fail the gate.
func TestValidateSubcommandCorruptFaultFails(t *testing.T) {
	var buf bytes.Buffer
	err := runValidate([]string{"-seeds", "1", "-frame-div", "16", "-quiet", "-fault-corrupt"}, &buf)
	if err == nil {
		t.Fatalf("gate passed despite corrupted statistics:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "violations=") {
		t.Errorf("output does not surface violations:\n%s", buf.String())
	}
}

func TestValidateSubcommandBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := runValidate([]string{"-seeds", "nope"}, &buf); err == nil {
		t.Fatal("accepted unparseable seeds")
	}
	if err := runValidate([]string{"-fault-drop", "7"}, &buf); err == nil {
		t.Fatal("accepted out-of-range fault rate")
	}
}
