package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe log sink: the daemon's workers write
// job lifecycle lines concurrently with the test reading them.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listeningLine = regexp.MustCompile(`listening on (http://[^\s]+)`)

// TestDaemonLifecycle boots the daemon on an ephemeral port, runs one
// campaign through the HTTP API, checks the metrics endpoint, and
// shuts down via context cancellation (the SIGINT/SIGTERM path).
func TestDaemonLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	args := []string{
		"-addr", "127.0.0.1:0", "-workers", "1", "-queue", "4",
		"-checkpoint-dir", t.TempDir(), "-drain-timeout", "2m",
	}
	go func() { done <- run(ctx, args, out) }()

	base, err := waitListening(out)
	if err != nil {
		t.Fatal(err)
	}

	resp, body, err := get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v %s", err, resp, body)
	}

	campaign := `{"workload":{"benchmark":"hcr","width":128,"height":64,"frame_div":20,"detail_div":2},"gpu":{"tile_workers":2}}`
	resp, body, err = post(base+"/api/v1/campaigns", campaign)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s %s", resp.Status, body)
	}
	var sub struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("submit response: %v in %s", err, body)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, body, err = get(base + "/api/v1/jobs/" + sub.JobID)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: %v %s", err, body)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "succeeded" {
			break
		}
		if st.State == "failed" || st.State == "interrupted" {
			t.Fatalf("job %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp, body, err = get(base + "/api/v1/jobs/" + sub.JobID + "/result")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %v %s", err, body)
	}
	var rep struct {
		Workload string `json:"workload"`
		Cycles   uint64 `json:"estimated_cycles"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "hcr" || rep.Cycles == 0 {
		t.Fatalf("implausible report: %s", body)
	}

	resp, body, err = get(base + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %v %s", err, body)
	}
	for _, want := range []string{"serve_jobs_completed 1", "megsimd_queue_capacity 4"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("daemon did not drain")
	}
	log := out.String()
	for _, want := range []string{"draining", "drained cleanly"} {
		if !strings.Contains(log, want) {
			t.Errorf("daemon log missing %q:\n%s", want, log)
		}
	}
}

// TestDaemonBadFlags exercises the error paths that must fail before
// the daemon binds a socket.
func TestDaemonBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &buf); err == nil {
		t.Error("unlistenable address accepted")
	}
	for _, flags := range [][]string{
		{"-audit-fraction", "0.5"},
		{"-hedge-after", "100ms"},
		{"-chaos-seed", "7"},
	} {
		if err := run(context.Background(), flags, &buf); err == nil {
			t.Errorf("%v accepted without -coordinator", flags)
		}
	}
	if err := run(context.Background(), []string{"-coordinator", "http://localhost:1", "-audit-fraction", "1.5"}, &buf); err == nil {
		t.Error("out-of-range -audit-fraction accepted")
	}
}

func waitListening(out *syncBuffer) (string, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listeningLine.FindStringSubmatch(out.String()); m != nil {
			return m[1], nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("daemon never reported its address:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func get(url string) (*http.Response, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp, body, err
}

func post(url, body string) (*http.Response, []byte, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	return resp, payload, err
}
