package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestClusterDaemonLifecycle boots two worker daemons and one
// coordinator daemon, runs a campaign through the coordinator's
// campaign API, verifies fleet metrics, and drains all three via
// context cancellation.
func TestClusterDaemonLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Two simulation workers on ephemeral ports.
	workerURLs := make([]string, 2)
	workerDone := make([]chan error, 2)
	for i := range workerURLs {
		out := &syncBuffer{}
		done := make(chan error, 1)
		go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-worker"}, out) }()
		base, err := waitListening(out)
		if err != nil {
			t.Fatal(err)
		}
		workerURLs[i] = base
		workerDone[i] = done
	}

	// The coordinator: the ordinary campaign API over the fleet.
	out := &syncBuffer{}
	done := make(chan error, 1)
	args := []string{
		"-addr", "127.0.0.1:0", "-workers", "1", "-queue", "4",
		"-checkpoint-dir", t.TempDir(),
		"-coordinator", strings.Join(workerURLs, ","),
		"-policy", "round-robin", // spread frames across both workers
		"-tenant-rate", "100",
	}
	go func() { done <- run(ctx, args, out) }()
	base, err := waitListening(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "coordinating 2 workers (round-robin routing)") {
		t.Fatalf("coordinator did not report its fleet:\n%s", out.String())
	}

	campaign := `{"workload":{"benchmark":"hcr","width":128,"height":64,"frame_div":20,"detail_div":2},"gpu":{"tile_workers":2}}`
	resp, body, err := post(base+"/api/v1/campaigns", campaign)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s %s", resp.Status, body)
	}
	var sub struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("submit response: %v in %s", err, body)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for {
		_, body, err = get(base + "/api/v1/jobs/" + sub.JobID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct{ State, Error string }
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "succeeded" {
			break
		}
		if st.State == "failed" || st.State == "interrupted" {
			t.Fatalf("job %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	_, body, err = get(base + "/api/v1/jobs/" + sub.JobID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Workload string `json:"workload"`
		Cycles   uint64 `json:"estimated_cycles"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "hcr" || rep.Cycles == 0 {
		t.Fatalf("implausible report: %s", body)
	}

	// The coordinator's /metrics carries the fleet state; the workers
	// actually simulated the frames (the coordinator ran none itself).
	_, metrics, err := get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fabric_workers_live 2", "fabric_dispatch_sent", "serve_jobs_completed 1"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("coordinator metrics missing %q", want)
		}
	}
	var served uint64
	for _, wu := range workerURLs {
		_, wm, err := get(wu + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(wm), "\n") {
			var n uint64
			if _, err := fmt.Sscanf(line, "fabric_frames_served %d", &n); err == nil {
				served += n
			}
		}
	}
	if served == 0 {
		t.Fatal("no worker reports served frames")
	}

	cancel()
	for _, done := range append(workerDone, done) {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon exit: %v", err)
			}
		case <-time.After(time.Minute):
			t.Fatal("a daemon did not drain")
		}
	}
	if log := out.String(); !strings.Contains(log, "drained cleanly") {
		t.Errorf("coordinator log missing drain:\n%s", log)
	}
}

// TestClusterBadFlags: the mode flags must refuse contradictory
// combinations before binding a socket.
func TestClusterBadFlags(t *testing.T) {
	cases := [][]string{
		{"-worker", "-coordinator", "http://x"},
		{"-worker", "-checkpoint-dir", "/tmp/x"},
		{"-worker", "-tenant-rate", "5"},
		{"-worker", "-policy", "affinity"},
		{"-policy", "affinity"}, // without -coordinator
		{"-coordinator", "http://x", "-policy", "no-such-policy"},
		{"-coordinator", " , "}, // no usable worker URLs
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(context.Background(), args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
