// Command megsimd serves MEGsim sampling campaigns over HTTP/JSON:
// clients POST a campaign (workload + methodology + GPU + resilience
// spec), get back a job ID, and poll for the result. The daemon
// deduplicates identical campaigns through a content-addressed result
// cache at trace, characterization, and per-representative frame
// granularity, bounds admission with backpressure (429 + Retry-After),
// exposes live Prometheus metrics on /metrics, and drains gracefully on
// SIGINT/SIGTERM — in-flight jobs checkpoint at the next frame boundary
// when -checkpoint-dir is set, so resubmitting the same campaign after
// a restart resumes instead of recomputing.
//
// The daemon also runs as either half of a cluster: -worker turns it
// into a stateless simulation worker serving single frames over the
// fabric protocol, and -coordinator turns it into the cluster's
// coordinator — the same campaign API, with representative frames
// dispatched across the worker fleet (affinity-routed by default) and
// worker failures absorbed by the resilience supervisor's requeue path.
//
// Usage:
//
//	megsimd -addr :8350
//	megsimd -addr :8350 -workers 4 -queue 128 -checkpoint-dir /var/lib/megsimd
//	megsimd -addr :8351 -worker                              # simulation worker
//	megsimd -addr :8350 -coordinator http://a:8351,http://b:8351 -checkpoint-dir /var/lib/megsimd
//	megsim -server localhost:8350 -benchmark hcr             # submit from the CLI
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	// SIGINT/SIGTERM trigger the graceful drain: stop admitting, cancel
	// queued jobs, let running jobs checkpoint, then exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "megsimd:", err)
		os.Exit(1)
	}
}

// run is the whole daemon behind a single error return, mirroring the
// megsim CLI's structure so the lifecycle is testable in-process.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("megsimd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8350", "listen address")
		queue        = fs.Int("queue", serve.DefaultQueueCapacity, "admission queue capacity (submissions beyond it get 429)")
		workers      = fs.Int("workers", 0, "campaign worker pool size (0 = GOMAXPROCS)")
		ckptDir      = fs.String("checkpoint-dir", "", "checkpoint jobs at frame granularity under this directory (enables resume across restarts)")
		frameCache   = fs.Int("frame-cache", 0, "per-representative frame results kept in the cache (0 = default)")
		drainTimeout = fs.Duration("drain-timeout", time.Minute, "max wait for in-flight jobs to reach a frame boundary on shutdown")
		workerMode   = fs.Bool("worker", false, "run as a cluster simulation worker (serves single frames, not campaigns)")
		coordinator  = fs.String("coordinator", "", "comma-separated worker URLs; run as the cluster coordinator dispatching frames to this fleet")
		policy       = fs.String("policy", "", "coordinator frame routing: affinity (default), round-robin or least-loaded")
		heartbeat    = fs.Duration("heartbeat", 0, "coordinator worker-probe cadence (0 = default)")
		auditFrac    = fs.Float64("audit-fraction", 0, "fraction of frames the coordinator re-dispatches to a second worker and digest-checks (byzantine defense; 0 = off, 1 = every frame)")
		hedgeAfter   = fs.Duration("hedge-after", 0, "hedge a frame to the next worker after max(this, 2x fleet latency EWMA) (0 = hedging off)")
		chaosSeed    = fs.Uint64("chaos-seed", 0, "arm the deterministic chaos transport on the coordinator's worker client with this seed (staging fault-injection profile; 0 = off)")
		tenantRate   = fs.Float64("tenant-rate", 0, "per-tenant submissions per second via the X-Megsim-Tenant header (0 = tenant throttling off)")
		tenantBurst  = fs.Int("tenant-burst", 0, "per-tenant submission burst (0 = default)")
		streamIdle   = fs.Duration("stream-idle", 0, "expire open stream sessions after this much ingest inactivity (0 = default; negative = never)")
		streamKeep   = fs.Duration("stream-retention", 0, "evict closed stream sessions' status this long after they close (0 = default; negative = forever)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workerMode {
		switch {
		case *coordinator != "":
			return errors.New("-worker and -coordinator are mutually exclusive")
		case *ckptDir != "" || *tenantRate != 0 || *policy != "":
			return errors.New("-worker mode takes no campaign-service flags (-checkpoint-dir, -tenant-rate, -policy)")
		}
		return runWorker(ctx, *addr, *drainTimeout, stdout)
	}
	if *policy != "" && *coordinator == "" {
		return errors.New("-policy requires -coordinator")
	}
	if (*auditFrac != 0 || *hedgeAfter != 0 || *chaosSeed != 0) && *coordinator == "" {
		return errors.New("-audit-fraction, -hedge-after and -chaos-seed require -coordinator")
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
	}

	cfg := serve.Config{
		QueueCapacity:     *queue,
		Workers:           *workers,
		CheckpointDir:     *ckptDir,
		MaxCachedFrames:   *frameCache,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		StreamIdleTimeout: *streamIdle,
		StreamRetention:   *streamKeep,
		Log:               stdout,
	}
	if *coordinator != "" {
		pol, err := fabric.PolicyByName(*policy)
		if err != nil {
			return err
		}
		// Coordinator and campaign service share one registry, so
		// /metrics exports the per-worker fleet gauges alongside the
		// job counters.
		reg := obs.NewWith(obs.Options{TraceCapacity: -1})
		var client *http.Client
		if *chaosSeed != 0 {
			tr, err := chaos.NewTransport(chaos.StagingProfile(*chaosSeed), nil)
			if err != nil {
				return err
			}
			client = &http.Client{Transport: tr, Timeout: 5 * time.Minute}
			fmt.Fprintf(stdout, "megsimd: CHAOS armed on the worker client (seed %d) — staging only\n", *chaosSeed)
		}
		coord, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
			Workers:           strings.Split(*coordinator, ","),
			Policy:            pol,
			Obs:               reg,
			Client:            client,
			HeartbeatInterval: *heartbeat,
			AuditFraction:     *auditFrac,
			AuditSeed:         *chaosSeed,
			HedgeAfter:        *hedgeAfter,
			Log:               stdout,
		})
		if err != nil {
			return err
		}
		defer coord.Close()
		cfg.Obs = reg
		cfg.Dispatcher = coord
		fmt.Fprintf(stdout, "megsimd: coordinating %d workers (%s routing)\n", len(coord.Workers()), pol.Name())
	}
	srv := serve.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Report the resolved address (the test listens on port 0).
	fmt.Fprintf(stdout, "megsimd: listening on http://%s\n", ln.Addr())

	// ReadHeaderTimeout bounds how long a connection may dribble its
	// request headers (slowloris); IdleTimeout reclaims keep-alive
	// connections that went quiet. Request bodies and long polls are
	// governed by the handlers, not here.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "megsimd: draining (in-flight jobs checkpoint at the next frame boundary)")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		hs.Close()
		return fmt.Errorf("drain: %w", err)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "megsimd: drained cleanly")
	return nil
}

// runWorker is the daemon's -worker mode: a stateless fabric simulation
// worker. On SIGINT/SIGTERM it drains — new frames get 503 (the
// coordinator fails over without burying the worker) while in-flight
// frames finish inside the HTTP server's shutdown wait.
func runWorker(ctx context.Context, addr string, drainTimeout time.Duration, stdout io.Writer) error {
	w := fabric.NewWorker(fabric.WorkerConfig{Log: stdout})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "megsimd: worker listening on http://%s\n", ln.Addr())

	hs := &http.Server{
		Handler:           w.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	w.Drain()
	fmt.Fprintln(stdout, "megsimd: worker draining (in-flight frames finish)")
	sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "megsimd: drained cleanly")
	return nil
}
