// Command megsimd serves MEGsim sampling campaigns over HTTP/JSON:
// clients POST a campaign (workload + methodology + GPU + resilience
// spec), get back a job ID, and poll for the result. The daemon
// deduplicates identical campaigns through a content-addressed result
// cache at trace, characterization, and per-representative frame
// granularity, bounds admission with backpressure (429 + Retry-After),
// exposes live Prometheus metrics on /metrics, and drains gracefully on
// SIGINT/SIGTERM — in-flight jobs checkpoint at the next frame boundary
// when -checkpoint-dir is set, so resubmitting the same campaign after
// a restart resumes instead of recomputing.
//
// Usage:
//
//	megsimd -addr :8350
//	megsimd -addr :8350 -workers 4 -queue 128 -checkpoint-dir /var/lib/megsimd
//	megsim -server localhost:8350 -benchmark hcr     # submit from the CLI
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	// SIGINT/SIGTERM trigger the graceful drain: stop admitting, cancel
	// queued jobs, let running jobs checkpoint, then exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "megsimd:", err)
		os.Exit(1)
	}
}

// run is the whole daemon behind a single error return, mirroring the
// megsim CLI's structure so the lifecycle is testable in-process.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("megsimd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8350", "listen address")
		queue        = fs.Int("queue", serve.DefaultQueueCapacity, "admission queue capacity (submissions beyond it get 429)")
		workers      = fs.Int("workers", 0, "campaign worker pool size (0 = GOMAXPROCS)")
		ckptDir      = fs.String("checkpoint-dir", "", "checkpoint jobs at frame granularity under this directory (enables resume across restarts)")
		frameCache   = fs.Int("frame-cache", 0, "per-representative frame results kept in the cache (0 = default)")
		drainTimeout = fs.Duration("drain-timeout", time.Minute, "max wait for in-flight jobs to reach a frame boundary on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
	}

	srv := serve.New(serve.Config{
		QueueCapacity:   *queue,
		Workers:         *workers,
		CheckpointDir:   *ckptDir,
		MaxCachedFrames: *frameCache,
		Log:             stdout,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Report the resolved address (the test listens on port 0).
	fmt.Fprintf(stdout, "megsimd: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "megsimd: draining (in-flight jobs checkpoint at the next frame boundary)")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		hs.Close()
		return fmt.Errorf("drain: %w", err)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "megsimd: drained cleanly")
	return nil
}
