package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Regression-check mode (-check): compare a fresh benchmark run against
// a committed JSON baseline and fail on hot-path slowdowns.
//
// Wall-clock numbers on shared CI hosts are noisy — the same binary has
// been observed to swing close to 2x between runs with no local load —
// so the gate layers three checks from most to least trustworthy:
//
//  1. allocs/op: allocation counts are deterministic, so the tightest
//     tolerance applies. A reintroduced per-tile allocation fails here
//     immediately, regardless of host noise.
//  2. ratio pairs (-ratio num:den): the ratio of two benchmarks from
//     the SAME run (e.g. tile-workers=4 over serial) cancels host-speed
//     variation, because both sides see the same machine weather. This
//     is the primary wall-clock gate.
//  3. absolute ns/op: a deliberately generous factor that only catches
//     gross regressions (an accidentally quadratic loop), not noise.
//
// Every comparison uses the median across -count repetitions, the same
// robust center benchstat uses.

// ratioList collects repeatable -ratio num:den flag values.
type ratioList []ratioPair

type ratioPair struct{ num, den string }

func (r *ratioList) String() string {
	parts := make([]string, len(*r))
	for i, p := range *r {
		parts[i] = p.num + ":" + p.den
	}
	return strings.Join(parts, ",")
}

func (r *ratioList) Set(v string) error {
	num, den, ok := strings.Cut(v, ":")
	if !ok || num == "" || den == "" {
		return fmt.Errorf("ratio must be <numerator>:<denominator>, got %q", v)
	}
	*r = append(*r, ratioPair{num: num, den: den})
	return nil
}

// checkLimits holds the gate tolerances.
type checkLimits struct {
	// maxSlowdown is the absolute per-benchmark ns/op factor.
	maxSlowdown float64
	// maxRatioGrowth bounds how much a -ratio pair may grow relative to
	// the baseline's ratio.
	maxRatioGrowth float64
	// maxAllocGrowth is the allocs/op factor (plus one alloc of slack
	// for go test's rounding of the per-op mean).
	maxAllocGrowth float64
}

// medians reduces repeated benchmark lines (from -count N) to one
// median value per benchmark name for the given metric. Names missing
// the metric are absent from the result.
func medians(f *File, metric string) map[string]float64 {
	byName := map[string][]float64{}
	for _, b := range f.Benchmarks {
		if v, ok := b.Metrics[metric]; ok {
			byName[b.Name] = append(byName[b.Name], v)
		}
	}
	out := make(map[string]float64, len(byName))
	for name, vs := range byName {
		sort.Float64s(vs)
		n := len(vs)
		if n%2 == 1 {
			out[name] = vs[n/2]
		} else {
			out[name] = (vs[n/2-1] + vs[n/2]) / 2
		}
	}
	return out
}

// runCheck compares fresh against the baseline file under limits,
// writing one line per comparison to w. It returns an error naming
// every failed gate, or nil if all pass.
func runCheck(baselinePath string, fresh *File, pairs []ratioPair, lim checkLimits, w io.Writer) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base File
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}

	baseNS := medians(&base, "ns/op")
	freshNS := medians(fresh, "ns/op")
	baseAllocs := medians(&base, "allocs/op")
	freshAllocs := medians(fresh, "allocs/op")

	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	// Deterministic gate first: allocation counts.
	for _, name := range sortedKeys(baseAllocs) {
		b := baseAllocs[name]
		f, ok := freshAllocs[name]
		if !ok {
			continue // absence handled by the ns/op walk below
		}
		limit := b*lim.maxAllocGrowth + 1
		status := "ok"
		if f > limit {
			status = "FAIL"
			fail("%s: allocs/op %.0f exceeds limit %.1f (baseline %.0f)", name, f, limit, b)
		}
		fmt.Fprintf(w, "%-4s %s: allocs/op %.0f (baseline %.0f, limit %.1f)\n", status, name, f, b, limit)
	}

	// Absolute wall-clock gate, generous by design.
	for _, name := range sortedKeys(baseNS) {
		b := baseNS[name]
		f, ok := freshNS[name]
		if !ok {
			fail("%s: present in baseline but missing from fresh run (renamed or deleted? refresh the baseline)", name)
			fmt.Fprintf(w, "FAIL %s: missing from fresh run\n", name)
			continue
		}
		limit := b * lim.maxSlowdown
		status := "ok"
		if f > limit {
			status = "FAIL"
			fail("%s: %.0f ns/op exceeds %.2fx baseline (%.0f ns/op)", name, f, lim.maxSlowdown, b)
		}
		fmt.Fprintf(w, "%-4s %s: %.0f ns/op (baseline %.0f, %.2fx of limit)\n", status, name, f, b, f/limit)
	}

	// Same-run ratio gate: host speed cancels.
	for _, p := range pairs {
		fNum, fDen := freshNS[p.num], freshNS[p.den]
		bNum, bDen := baseNS[p.num], baseNS[p.den]
		if fNum == 0 || fDen == 0 || bNum == 0 || bDen == 0 {
			fail("ratio %s:%s: benchmark missing from fresh run or baseline", p.num, p.den)
			fmt.Fprintf(w, "FAIL ratio %s / %s: missing data\n", p.num, p.den)
			continue
		}
		fr, br := fNum/fDen, bNum/bDen
		limit := br * lim.maxRatioGrowth
		status := "ok"
		if fr > limit {
			status = "FAIL"
			fail("ratio %s / %s: %.3f exceeds limit %.3f (baseline %.3f)", p.num, p.den, fr, limit, br)
		}
		fmt.Fprintf(w, "%-4s ratio %s / %s: %.3f (baseline %.3f, limit %.3f)\n", status, p.num, p.den, fr, br, limit)
	}

	if len(failures) > 0 {
		return fmt.Errorf("bench regression check failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
