package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/cluster
cpu: Example CPU @ 2.40GHz
BenchmarkKMeans-8   	     100	    123456 ns/op	    2048 B/op	      12 allocs/op
BenchmarkSearch-8   	      10	   9876543 ns/op
BenchmarkCustom     	       5	     11.5 ns/op	     3.25 frames/op
PASS
ok  	repro/internal/cluster	2.345s
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.Goos != "linux" || f.Goarch != "amd64" || f.CPU != "Example CPU @ 2.40GHz" {
		t.Errorf("config = %q/%q/%q", f.Goos, f.Goarch, f.CPU)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(f.Benchmarks))
	}

	km := f.Benchmarks[0]
	if km.Name != "BenchmarkKMeans" || km.Procs != 8 || km.Iterations != 100 {
		t.Errorf("kmeans = %+v", km)
	}
	if km.Pkg != "repro/internal/cluster" {
		t.Errorf("pkg = %q", km.Pkg)
	}
	if km.Metrics["ns/op"] != 123456 || km.Metrics["B/op"] != 2048 || km.Metrics["allocs/op"] != 12 {
		t.Errorf("metrics = %v", km.Metrics)
	}

	custom := f.Benchmarks[2]
	if custom.Name != "BenchmarkCustom" || custom.Procs != 1 {
		t.Errorf("custom = %+v", custom)
	}
	if custom.Metrics["frames/op"] != 3.25 {
		t.Errorf("custom metrics = %v", custom.Metrics)
	}

	// Raw must reconstruct a benchstat-consumable file: every config
	// and benchmark line, in order, nothing else.
	want := []string{
		"goos: linux", "goarch: amd64", "pkg: repro/internal/cluster",
		"cpu: Example CPU @ 2.40GHz",
	}
	if len(f.Raw) != len(want)+3 {
		t.Fatalf("raw has %d lines: %q", len(f.Raw), f.Raw)
	}
	for i, w := range want {
		if f.Raw[i] != w {
			t.Errorf("raw[%d] = %q, want %q", i, f.Raw[i], w)
		}
	}
	for _, line := range f.Raw[len(want):] {
		if !strings.HasPrefix(line, "Benchmark") {
			t.Errorf("unexpected raw line %q", line)
		}
	}
}

func TestParseRejectsMalformedLines(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX-8\t12",                 // no metrics
		"BenchmarkX-8\tabc\t100 ns/op",     // non-numeric iterations
		"BenchmarkX-8\t10\tfast ns/op",     // non-numeric metric
		"BenchmarkX-8\t10\t100 ns/op\t999", // dangling value
	} {
		if _, err := Parse(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseEmptyInput(t *testing.T) {
	f, err := Parse(strings.NewReader("PASS\nok example 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 0 || len(f.Raw) != 0 {
		t.Errorf("parsed something from non-benchmark input: %+v", f)
	}
}
