package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchFile builds a File from (name, ns/op, allocs/op) triples, with
// one line per repetition value so medians are exercised.
func benchFile(t *testing.T, entries map[string]struct {
	ns     []float64
	allocs float64
}) *File {
	t.Helper()
	f := &File{}
	for name, e := range entries {
		for _, ns := range e.ns {
			f.Benchmarks = append(f.Benchmarks, Result{
				Name:    name,
				Procs:   1,
				Metrics: map[string]float64{"ns/op": ns, "allocs/op": e.allocs},
			})
		}
	}
	return f
}

func writeBaseline(t *testing.T, f *File) string {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

type entry = struct {
	ns     []float64
	allocs float64
}

var defaultLimits = checkLimits{maxSlowdown: 2.5, maxRatioGrowth: 1.25, maxAllocGrowth: 1.10}

func TestCheckPassesIdenticalRun(t *testing.T) {
	base := benchFile(t, map[string]entry{
		"BenchmarkA/serial": {ns: []float64{1000, 1100, 1050}, allocs: 40},
		"BenchmarkA/par":    {ns: []float64{500, 520, 510}, allocs: 40},
	})
	path := writeBaseline(t, base)
	var out bytes.Buffer
	pairs := []ratioPair{{num: "BenchmarkA/par", den: "BenchmarkA/serial"}}
	if err := runCheck(path, base, pairs, defaultLimits, &out); err != nil {
		t.Fatalf("identical run failed check: %v\n%s", err, out.String())
	}
}

// A uniformly slower host must pass: both sides of the ratio pair see
// the same slowdown, and 2x is inside the generous absolute gate.
func TestCheckRatioGateCancelsHostNoise(t *testing.T) {
	base := benchFile(t, map[string]entry{
		"BenchmarkA/serial": {ns: []float64{1000}, allocs: 40},
		"BenchmarkA/par":    {ns: []float64{500}, allocs: 40},
	})
	fresh := benchFile(t, map[string]entry{
		"BenchmarkA/serial": {ns: []float64{2000}, allocs: 40},
		"BenchmarkA/par":    {ns: []float64{1000}, allocs: 40},
	})
	path := writeBaseline(t, base)
	pairs := []ratioPair{{num: "BenchmarkA/par", den: "BenchmarkA/serial"}}
	if err := runCheck(path, fresh, pairs, defaultLimits, &bytes.Buffer{}); err != nil {
		t.Fatalf("uniform 2x host slowdown should pass: %v", err)
	}
}

// The parallel path regressing while serial holds shifts the ratio and
// must fail even though the absolute numbers stay under the 2.5x gate.
func TestCheckRatioGateCatchesHotPathRegression(t *testing.T) {
	base := benchFile(t, map[string]entry{
		"BenchmarkA/serial": {ns: []float64{1000}, allocs: 40},
		"BenchmarkA/par":    {ns: []float64{500}, allocs: 40},
	})
	fresh := benchFile(t, map[string]entry{
		"BenchmarkA/serial": {ns: []float64{1000}, allocs: 40},
		"BenchmarkA/par":    {ns: []float64{900}, allocs: 40}, // 1.8x slower, ratio 0.9 vs 0.5
	})
	path := writeBaseline(t, base)
	pairs := []ratioPair{{num: "BenchmarkA/par", den: "BenchmarkA/serial"}}
	err := runCheck(path, fresh, pairs, defaultLimits, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "ratio") {
		t.Fatalf("want ratio failure, got %v", err)
	}
}

func TestCheckAbsoluteGateCatchesGrossSlowdown(t *testing.T) {
	base := benchFile(t, map[string]entry{
		"BenchmarkA": {ns: []float64{1000}, allocs: 0},
	})
	fresh := benchFile(t, map[string]entry{
		"BenchmarkA": {ns: []float64{3000}, allocs: 0},
	})
	path := writeBaseline(t, base)
	err := runCheck(path, fresh, nil, defaultLimits, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "ns/op exceeds") {
		t.Fatalf("want absolute ns/op failure, got %v", err)
	}
}

// Allocation counts are deterministic, so the alloc gate fires well
// before wall-clock gates would: a reintroduced per-tile allocation is
// caught regardless of host speed.
func TestCheckAllocGateIsTight(t *testing.T) {
	base := benchFile(t, map[string]entry{
		"BenchmarkA": {ns: []float64{1000}, allocs: 40},
	})
	fresh := benchFile(t, map[string]entry{
		"BenchmarkA": {ns: []float64{1000}, allocs: 60},
	})
	path := writeBaseline(t, base)
	err := runCheck(path, fresh, nil, defaultLimits, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("want allocs/op failure, got %v", err)
	}

	// One alloc of slack: 40 -> 45 stays inside 40*1.10+1.
	ok := benchFile(t, map[string]entry{
		"BenchmarkA": {ns: []float64{1000}, allocs: 45},
	})
	if err := runCheck(path, ok, nil, defaultLimits, &bytes.Buffer{}); err != nil {
		t.Fatalf("45 allocs within 1.10x+1 of 40 should pass: %v", err)
	}
}

func TestCheckMissingBenchmarkFails(t *testing.T) {
	base := benchFile(t, map[string]entry{
		"BenchmarkA": {ns: []float64{1000}, allocs: 0},
		"BenchmarkB": {ns: []float64{1000}, allocs: 0},
	})
	fresh := benchFile(t, map[string]entry{
		"BenchmarkA": {ns: []float64{1000}, allocs: 0},
	})
	path := writeBaseline(t, base)
	err := runCheck(path, fresh, nil, defaultLimits, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "missing from fresh run") {
		t.Fatalf("want missing-benchmark failure, got %v", err)
	}
}

func TestCheckUsesMedianNotMean(t *testing.T) {
	base := benchFile(t, map[string]entry{
		"BenchmarkA": {ns: []float64{1000, 1000, 1000}, allocs: 0},
	})
	// One wild outlier among the repetitions must not trip the gate:
	// median of {900, 1000, 100000} is 1000.
	fresh := benchFile(t, map[string]entry{
		"BenchmarkA": {ns: []float64{900, 1000, 100000}, allocs: 0},
	})
	path := writeBaseline(t, base)
	if err := runCheck(path, fresh, nil, defaultLimits, &bytes.Buffer{}); err != nil {
		t.Fatalf("outlier repetition should be absorbed by the median: %v", err)
	}
}

func TestRatioListParsing(t *testing.T) {
	var r ratioList
	if err := r.Set("BenchmarkA/par:BenchmarkA/serial"); err != nil {
		t.Fatal(err)
	}
	if len(r) != 1 || r[0].num != "BenchmarkA/par" || r[0].den != "BenchmarkA/serial" {
		t.Fatalf("parsed %+v", r)
	}
	for _, bad := range []string{"", "noseparator", ":den", "num:"} {
		var r2 ratioList
		if err := r2.Set(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
