// Command benchjson converts `go test -bench` text output into a
// benchstat-compatible JSON baseline. The JSON keeps every raw
// benchmark and config line verbatim under "raw", so a stored baseline
// can be compared against a fresh run with benchstat without loss:
//
//	go test -run '^$' -bench . -count 5 ./internal/tbr/... > new.txt
//	jq -r '.raw[]' results/BENCH_tbr.json > old.txt
//	benchstat old.txt new.txt
//
// while the parsed "benchmarks" array makes the numbers scriptable
// (regression gates, plots) without re-parsing the text format.
//
// Usage:
//
//	go test -run '^$' -bench . ./internal/cluster | benchjson -out BENCH_cluster.json
//	benchjson -in bench.txt -out BENCH_tbr.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name without the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Pkg is the import path from the most recent "pkg:" config line.
	Pkg string `json:"pkg,omitempty"`
	// Iterations is b.N for this run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value: "ns/op", "B/op", "allocs/op" and any
	// custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
	// Raw is the verbatim line.
	Raw string `json:"raw"`
}

// File is the whole converted run.
type File struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
	// Raw holds every config and benchmark line verbatim, in order —
	// feed to benchstat to reproduce the original input.
	Raw []string `json:"raw"`
}

func main() {
	var (
		in       = flag.String("in", "", "read benchmark text from this file (default stdin)")
		out      = flag.String("out", "", "write JSON to this file (default stdout)")
		check    = flag.Bool("check", false, "regression-check mode: compare the input run against -baseline and exit nonzero on failure")
		baseline = flag.String("baseline", "", "committed JSON baseline to compare against (required with -check)")

		maxSlowdown    = flag.Float64("max-slowdown", 2.5, "absolute ns/op gate: fail a benchmark above this factor of its baseline (generous: shared hosts are noisy)")
		maxRatioGrowth = flag.Float64("max-ratio-growth", 1.25, "ratio gate: fail a -ratio pair whose same-run ratio grows above this factor of the baseline ratio")
		maxAllocGrowth = flag.Float64("max-alloc-growth", 1.10, "allocs/op gate: fail a benchmark above this factor of its baseline (+1 alloc slack)")
		ratios         ratioList
	)
	flag.Var(&ratios, "ratio", "hot-path ratio pair <numerator>:<denominator> checked against the baseline's ratio (repeatable; noise-immune primary gate)")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	file, err := Parse(r)
	if err != nil {
		fatal(err)
	}
	if len(file.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *check {
		if *baseline == "" {
			fatal(fmt.Errorf("-check requires -baseline"))
		}
		lim := checkLimits{
			maxSlowdown:    *maxSlowdown,
			maxRatioGrowth: *maxRatioGrowth,
			maxAllocGrowth: *maxAllocGrowth,
		}
		if err := runCheck(*baseline, file, ratios, lim, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(file); err != nil {
		fatal(err)
	}
}

// Parse reads `go test -bench` output and extracts config and result
// lines. Unrecognized lines (test framework chatter, PASS/ok) are
// skipped.
func Parse(r io.Reader) (*File, error) {
	file := &File{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			file.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			file.Raw = append(file.Raw, line)
		case strings.HasPrefix(line, "goarch:"):
			file.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			file.Raw = append(file.Raw, line)
		case strings.HasPrefix(line, "cpu:"):
			file.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			file.Raw = append(file.Raw, line)
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			file.Raw = append(file.Raw, line)
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseResult(line, pkg)
			if err != nil {
				return nil, err
			}
			file.Benchmarks = append(file.Benchmarks, res)
			file.Raw = append(file.Raw, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return file, nil
}

func parseResult(line, pkg string) (Result, error) {
	fields := strings.Fields(line)
	// Name, iterations, then (value, unit) pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, fmt.Errorf("malformed benchmark line: %q", line)
	}
	res := Result{Pkg: pkg, Procs: 1, Metrics: map[string]float64{}, Raw: line}
	res.Name = fields[0]
	if i := strings.LastIndex(res.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(res.Name[i+1:]); err == nil && p > 0 {
			res.Procs = p
			res.Name = res.Name[:i]
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	res.Iterations = n
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("bad metric value in %q: %w", line, err)
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
