// Command megsim runs the MEGsim methodology end to end on one
// workload: functional characterization, frame clustering, and
// cycle-level simulation of only the representative frames, printing the
// extrapolated full-sequence statistics. With -validate it additionally
// simulates the whole sequence (with invariant checking armed) and
// reports per-metric relative error against configurable tolerance
// bands, exiting non-zero when the accuracy gate fails (the paper's
// Fig. 7 evaluation for a single benchmark).
//
// Usage:
//
//	megsim -benchmark bbr1
//	megsim -trace bbr1.trace -validate
//	megsim -benchmark hcr -validate -tol 2 -validate-out report.json
//	megsim -benchmark jjo -threshold 0.95 -seed 7
//	megsim -benchmark hcr -tile-workers 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/check"
	"repro/internal/harness"
	"repro/megsim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "megsim:", err)
		os.Exit(1)
	}
}

// run is the whole command behind a single error return so every exit
// path is uniform (and testable) instead of scattering os.Exit calls.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("megsim", flag.ContinueOnError)
	var (
		tracePath   = fs.String("trace", "", "trace file produced by tracegen")
		benchmark   = fs.String("benchmark", "", "generate this benchmark instead of loading a trace")
		frameDiv    = fs.Int("frame-div", 1, "frame divisor when generating")
		threshold   = fs.Float64("threshold", 0.85, "BIC spread threshold T")
		seed        = fs.Uint64("seed", 1, "k-means initialization seed")
		validate    = fs.Bool("validate", false, "also run the full simulation and report relative errors")
		tbdr        = fs.Bool("tbdr", false, "simulate a TBDR GPU (hidden surface removal)")
		tileWorkers = fs.Int("tile-workers", 0, "tile-parallel raster workers per frame (0 = serial raster stage)")
		jsonOut     = fs.Bool("json", false, "print machine-readable JSON instead of text")
		saveSel     = fs.String("save-selection", "", "write the frame selection as JSON to this file")
		tolScale    = fs.Float64("tol", 1, "scale factor on the default -validate tolerance bands")
		valOut      = fs.String("validate-out", "", "write the -validate accuracy report as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	tr, err := loadTrace(*tracePath, *benchmark, *frameDiv)
	if err != nil {
		return err
	}

	cfg := megsim.DefaultConfig()
	cfg.Search.Threshold = *threshold
	cfg.Seed = *seed
	gpu := megsim.DefaultGPUConfig()
	gpu.DeferredShading = *tbdr
	gpu.TileWorkers = *tileWorkers

	start := time.Now()
	run, err := megsim.Sample(tr, cfg, gpu)
	if err != nil {
		return err
	}
	sampledTime := time.Since(start)

	if *saveSel != "" {
		if err := writeSelection(*saveSel, tr.Name, run); err != nil {
			return err
		}
	}

	var val *validation
	if *validate {
		val, err = validateRun(tr, run, gpu, *tolScale)
		if err != nil {
			return err
		}
		if *valOut != "" {
			if err := writeValidation(*valOut, tr.Name, val); err != nil {
				return err
			}
		}
	}

	if *jsonOut {
		if err := printJSON(stdout, tr, run, sampledTime, val); err != nil {
			return err
		}
		return val.gateErr()
	}

	fmt.Fprintf(stdout, "workload:        %s (%d frames)\n", tr.Name, tr.NumFrames())
	fmt.Fprintf(stdout, "clusters:        %d (explored k=1..%d)\n", run.Selection.Clusters.K, len(run.Selection.BICScores))
	fmt.Fprintf(stdout, "representatives: %v\n", run.Representatives())
	fmt.Fprintf(stdout, "reduction:       %.0fx fewer frames\n", run.ReductionFactor())
	fmt.Fprintf(stdout, "sampled run:     %v total\n", sampledTime.Round(time.Millisecond))
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "estimated cycles:      %d\n", run.Estimate.Cycles)
	fmt.Fprintf(stdout, "estimated dram:        %d\n", run.Estimate.DRAM.Accesses)
	fmt.Fprintf(stdout, "estimated l2:          %d\n", run.Estimate.L2.Accesses)
	fmt.Fprintf(stdout, "estimated tile cache:  %d\n", run.Estimate.TileCache.Accesses)

	if val != nil {
		fmt.Fprintln(stdout)
		fmt.Fprintf(stdout, "full simulation:  %v (%.0fx slower than the sampled run)\n",
			val.FullSimTime.Round(time.Millisecond), float64(val.FullSimTime)/float64(sampledTime))
		for _, m := range val.Metrics {
			verdict := "ok"
			if !m.Pass {
				verdict = "OUT OF BAND"
			}
			fmt.Fprintf(stdout, "relative error %-22s %.2f%% (band %.1f%%) %s\n",
				m.Name+":", m.RelErr*100, m.Tolerance*100, verdict)
		}
		for _, v := range val.Violations {
			fmt.Fprintf(stdout, "invariant violation: %s\n", v)
		}
	}
	return val.gateErr()
}

// validation is the -validate accuracy report: the sampled estimate
// judged against a fully simulated ground truth with invariant checks
// armed, per tolerance band.
type validation struct {
	Metrics    []check.MetricError `json:"metrics"`
	Violations []check.Violation   `json:"violations,omitempty"`
	Pass       bool                `json:"pass"`

	FullSimTime time.Duration `json:"-"`
}

// gateErr converts a failed report into the command's exit error. A nil
// receiver (no -validate) passes.
func (v *validation) gateErr() error {
	if v == nil || v.Pass {
		return nil
	}
	return fmt.Errorf("validation failed: accuracy out of band or invariants violated")
}

func validateRun(tr *megsim.Trace, run *megsim.Run, gpu megsim.GPUConfig, tolScale float64) (*validation, error) {
	inv := check.NewInvariants(gpu)
	gpu.Check = inv
	start := time.Now()
	var full []megsim.FrameStats
	var err error
	if gpu.FlushCachesPerFrame {
		full, err = megsim.SimulateFullParallel(tr, gpu, 0)
	} else {
		full, err = megsim.SimulateFull(tr, gpu)
	}
	if err != nil {
		return nil, err
	}
	val := &validation{FullSimTime: time.Since(start)}
	actual := megsim.SumStats(full)
	val.Metrics = check.CompareRows(&run.Estimate, &actual, check.DefaultTolerance().Scaled(tolScale))
	val.Violations = inv.Violations()
	val.Pass = len(val.Violations) == 0
	for _, m := range val.Metrics {
		if !m.Pass {
			val.Pass = false
		}
	}
	return val, nil
}

func writeValidation(path, workload string, val *validation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	out := struct {
		Workload string `json:"workload"`
		*validation
	}{workload, val}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadTrace(path, benchmark string, frameDiv int) (*megsim.Trace, error) {
	switch {
	case path != "" && benchmark != "":
		return nil, fmt.Errorf("use either -trace or -benchmark, not both")
	case path != "":
		return megsim.LoadTrace(path)
	case benchmark != "":
		sc := megsim.DefaultScale()
		sc.FrameDivisor = frameDiv
		return megsim.GenerateBenchmark(benchmark, sc)
	default:
		return nil, fmt.Errorf("need -trace or -benchmark")
	}
}

// printJSON emits a machine-readable run summary.
func printJSON(w io.Writer, tr *megsim.Trace, run *megsim.Run, sampled time.Duration, val *validation) error {
	out := struct {
		Workload        string      `json:"workload"`
		Frames          int         `json:"frames"`
		Clusters        int         `json:"clusters"`
		Representatives []int       `json:"representatives"`
		Reduction       float64     `json:"reduction_factor"`
		SampledMillis   int64       `json:"sampled_run_ms"`
		Cycles          uint64      `json:"estimated_cycles"`
		DRAMAccesses    uint64      `json:"estimated_dram_accesses"`
		L2Accesses      uint64      `json:"estimated_l2_accesses"`
		TileAccesses    uint64      `json:"estimated_tile_cache_accesses"`
		Validation      *validation `json:"validation,omitempty"`
	}{
		Workload:        tr.Name,
		Frames:          tr.NumFrames(),
		Clusters:        run.Selection.Clusters.K,
		Representatives: run.Representatives(),
		Reduction:       run.ReductionFactor(),
		SampledMillis:   sampled.Milliseconds(),
		Cycles:          run.Estimate.Cycles,
		DRAMAccesses:    run.Estimate.DRAM.Accesses,
		L2Accesses:      run.Estimate.L2.Accesses,
		TileAccesses:    run.Estimate.TileCache.Accesses,
		Validation:      val,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeSelection persists the selection so later runs (e.g. a design-
// space sweep on another machine) can re-simulate the representatives
// without redoing characterization.
func writeSelection(path, workload string, run *megsim.Run) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	sum := harness.NewSelectionSummary(workload, run.Selection, false)
	if err := sum.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
