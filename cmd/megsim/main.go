// Command megsim runs the MEGsim methodology end to end on one
// workload: functional characterization, frame clustering, and
// cycle-level simulation of only the representative frames, printing the
// extrapolated full-sequence statistics. With -validate it additionally
// simulates the whole sequence (with invariant checking armed) and
// reports per-metric relative error against configurable tolerance
// bands, exiting non-zero when the accuracy gate fails (the paper's
// Fig. 7 evaluation for a single benchmark).
//
// Every run executes under the resilience supervisor: frames that fail
// or panic are retried with capped backoff and quarantined when they
// keep failing, quarantined representatives degrade gracefully (the
// next-closest in-cluster frame substitutes, weights rescale, the
// degradation is reported loudly), and SIGINT/SIGTERM cancel the run at
// the next frame boundary. With -checkpoint, progress is snapshotted at
// frame granularity so an interrupted run resumes with -resume and
// produces byte-identical results to an uninterrupted one.
//
// Usage:
//
//	megsim -benchmark bbr1
//	megsim -trace bbr1.trace -validate
//	megsim -benchmark hcr -validate -tol 2 -validate-out report.json
//	megsim -benchmark jjo -threshold 0.95 -seed 7
//	megsim -benchmark hcr -tile-workers 4
//	megsim -benchmark hcr -checkpoint run.ckpt          # interrupt freely…
//	megsim -benchmark hcr -checkpoint run.ckpt -resume  # …and pick up here
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/check"
	"repro/internal/harness"
	"repro/megsim"
)

func main() {
	// SIGINT/SIGTERM cancel the run context: workers stop at the next
	// frame boundary, the final checkpoint is flushed, and the process
	// exits non-zero with a resume hint instead of losing the run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "megsim:", err)
		os.Exit(1)
	}
}

// run is the whole command behind a single error return so every exit
// path is uniform (and testable) instead of scattering os.Exit calls.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("megsim", flag.ContinueOnError)
	var (
		tracePath    = fs.String("trace", "", "trace file produced by tracegen")
		benchmark    = fs.String("benchmark", "", "generate this benchmark instead of loading a trace")
		frameDiv     = fs.Int("frame-div", 1, "frame divisor when generating")
		threshold    = fs.Float64("threshold", 0.85, "BIC spread threshold T")
		seed         = fs.Uint64("seed", 1, "k-means initialization seed")
		validate     = fs.Bool("validate", false, "also run the full simulation and report relative errors")
		tbdr         = fs.Bool("tbdr", false, "simulate a TBDR GPU (hidden surface removal)")
		tileWorkers  = fs.Int("tile-workers", 0, "tile-parallel raster workers per frame (0 = serial raster stage)")
		jsonOut      = fs.Bool("json", false, "print machine-readable JSON instead of text")
		saveSel      = fs.String("save-selection", "", "write the frame selection as JSON to this file")
		tolScale     = fs.Float64("tol", 1, "scale factor on the default -validate tolerance bands")
		valOut       = fs.String("validate-out", "", "write the -validate accuracy report as JSON to this file")
		checkpoint   = fs.String("checkpoint", "", "checkpoint progress at frame granularity to this file")
		resume       = fs.Bool("resume", false, "resume completed frames from -checkpoint instead of re-simulating")
		retries      = fs.Int("retries", 0, "attempts per frame before quarantine (0 = default)")
		quarantine   = fs.String("quarantine", "", "comma-separated frames to pre-quarantine (route around known-bad frames)")
		runTimeout   = fs.Duration("run-timeout", 0, "overall wall-clock deadline for the run (0 = none)")
		stallTimeout = fs.Duration("stall-timeout", 0, "flag a worker stuck on one frame longer than this (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *runTimeout)
		defer cancel()
	}
	preQuarantine, err := parseFrameList(*quarantine)
	if err != nil {
		return fmt.Errorf("-quarantine: %w", err)
	}

	tr, err := loadTrace(*tracePath, *benchmark, *frameDiv)
	if err != nil {
		return err
	}

	cfg := megsim.DefaultConfig()
	cfg.Search.Threshold = *threshold
	cfg.Seed = *seed
	gpu := megsim.DefaultGPUConfig()
	gpu.DeferredShading = *tbdr
	gpu.TileWorkers = *tileWorkers
	rcfg := megsim.ResilienceConfig{
		MaxAttempts:    *retries,
		CheckpointPath: *checkpoint,
		Resume:         *resume,
		Quarantine:     preQuarantine,
		StallTimeout:   *stallTimeout,
	}

	start := time.Now()
	rrun, err := megsim.SampleResilient(ctx, tr, cfg, gpu, rcfg)
	if err != nil {
		if *checkpoint != "" {
			return fmt.Errorf("%w (progress checkpointed to %s; rerun with -resume)", err, *checkpoint)
		}
		return err
	}
	run := rrun.Run
	sampledTime := time.Since(start)

	if *saveSel != "" {
		if err := writeSelection(*saveSel, tr.Name, run); err != nil {
			return err
		}
	}

	var val *validation
	if *validate {
		// A degraded run cannot be held to the healthy-run accuracy
		// bands: substituted representatives and rescaled weights are a
		// best-effort estimate. Widen the bands 3x (mirroring the
		// degraded-mode oracle gate) and say so, rather than failing a
		// gate the methodology no longer promises, or silently passing.
		effTol := *tolScale
		if rrun.Degraded() {
			effTol *= 3
		}
		val, err = validateRun(ctx, tr, run, gpu, effTol)
		if err != nil {
			return err
		}
		val.Degraded = rrun.Degraded()
		if *valOut != "" {
			if err := writeValidation(*valOut, tr.Name, val); err != nil {
				return err
			}
		}
	}

	if *jsonOut {
		if err := printJSON(stdout, tr, rrun, sampledTime, val); err != nil {
			return err
		}
		return val.gateErr()
	}

	fmt.Fprintf(stdout, "workload:        %s (%d frames)\n", tr.Name, tr.NumFrames())
	fmt.Fprintf(stdout, "clusters:        %d (explored k=1..%d)\n", run.Selection.Clusters.K, len(run.Selection.BICScores))
	fmt.Fprintf(stdout, "representatives: %v\n", run.Representatives())
	fmt.Fprintf(stdout, "reduction:       %.0fx fewer frames\n", run.ReductionFactor())
	fmt.Fprintf(stdout, "sampled run:     %v total\n", sampledTime.Round(time.Millisecond))
	printSupervision(stdout, rrun, tr.NumFrames())
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "estimated cycles:      %d\n", run.Estimate.Cycles)
	fmt.Fprintf(stdout, "estimated dram:        %d\n", run.Estimate.DRAM.Accesses)
	fmt.Fprintf(stdout, "estimated l2:          %d\n", run.Estimate.L2.Accesses)
	fmt.Fprintf(stdout, "estimated tile cache:  %d\n", run.Estimate.TileCache.Accesses)

	if val != nil {
		fmt.Fprintln(stdout)
		if val.Degraded {
			fmt.Fprintln(stdout, "validation bands widened 3x: degraded run")
		}
		fmt.Fprintf(stdout, "full simulation:  %v (%.0fx slower than the sampled run)\n",
			val.FullSimTime.Round(time.Millisecond), float64(val.FullSimTime)/float64(sampledTime))
		for _, m := range val.Metrics {
			verdict := "ok"
			if !m.Pass {
				verdict = "OUT OF BAND"
			}
			fmt.Fprintf(stdout, "relative error %-22s %.2f%% (band %.1f%%) %s\n",
				m.Name+":", m.RelErr*100, m.Tolerance*100, verdict)
		}
		for _, v := range val.Violations {
			fmt.Fprintf(stdout, "invariant violation: %s\n", v)
		}
	}
	return val.gateErr()
}

// printSupervision reports everything the supervisor did that an
// operator must know about: resume accounting, retries, watchdog flags,
// and — loudest — degradation. A healthy, fresh run prints nothing.
func printSupervision(w io.Writer, rrun *megsim.ResilientRun, numFrames int) {
	sup := rrun.Supervision
	if sup == nil {
		return
	}
	if sup.ResumeErr != nil {
		fmt.Fprintf(w, "WARNING: resume failed, started fresh: %v\n", sup.ResumeErr)
	}
	if len(sup.Resumed) > 0 {
		fmt.Fprintf(w, "resumed:         %d frames from checkpoint %v\n", len(sup.Resumed), sup.Resumed)
	}
	if sup.Retried > 0 {
		fmt.Fprintf(w, "retried:         %d frames needed more than one attempt\n", sup.Retried)
	}
	if len(sup.StalledWorkers) > 0 {
		fmt.Fprintf(w, "WARNING: watchdog flagged stalled workers %v\n", sup.StalledWorkers)
	}
	if !rrun.Degraded() {
		return
	}
	d := rrun.Degradation
	fmt.Fprintf(w, "DEGRADED: %d frames quarantined, coverage %.1f%% of %d frames\n",
		len(sup.Quarantined), d.Coverage()*100, numFrames)
	for _, q := range sup.Quarantined {
		fmt.Fprintf(w, "  %s\n", q.String())
	}
	for _, s := range d.Substitutions {
		fmt.Fprintf(w, "  substitute: cluster %d representative %d -> %d\n", s.Cluster, s.Original, s.Substitute)
	}
	for _, c := range d.LostClusters {
		fmt.Fprintf(w, "  lost: cluster %d entirely quarantined, weights rescaled\n", c)
	}
}

// validation is the -validate accuracy report: the sampled estimate
// judged against a fully simulated ground truth with invariant checks
// armed, per tolerance band.
type validation struct {
	Metrics    []check.MetricError `json:"metrics"`
	Violations []check.Violation   `json:"violations,omitempty"`
	// Degraded records that the estimate came from a degraded selection
	// and the bands were widened 3x accordingly.
	Degraded bool `json:"degraded,omitempty"`
	Pass     bool `json:"pass"`

	FullSimTime time.Duration `json:"-"`
}

// gateErr converts a failed report into the command's exit error. A nil
// receiver (no -validate) passes.
func (v *validation) gateErr() error {
	if v == nil || v.Pass {
		return nil
	}
	return fmt.Errorf("validation failed: accuracy out of band or invariants violated")
}

func validateRun(ctx context.Context, tr *megsim.Trace, run *megsim.Run, gpu megsim.GPUConfig, tolScale float64) (*validation, error) {
	inv := check.NewInvariants(gpu)
	gpu.Check = inv
	start := time.Now()
	var full []megsim.FrameStats
	var err error
	if gpu.FlushCachesPerFrame {
		full, err = megsim.SimulateFullParallelCtx(ctx, tr, gpu, 0)
	} else {
		full, err = megsim.SimulateFull(tr, gpu)
	}
	if err != nil {
		return nil, err
	}
	val := &validation{FullSimTime: time.Since(start)}
	actual := megsim.SumStats(full)
	val.Metrics = check.CompareRows(&run.Estimate, &actual, check.DefaultTolerance().Scaled(tolScale))
	val.Violations = inv.Violations()
	val.Pass = len(val.Violations) == 0
	for _, m := range val.Metrics {
		if !m.Pass {
			val.Pass = false
		}
	}
	return val, nil
}

func writeValidation(path, workload string, val *validation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	out := struct {
		Workload string `json:"workload"`
		*validation
	}{workload, val}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadTrace(path, benchmark string, frameDiv int) (*megsim.Trace, error) {
	switch {
	case path != "" && benchmark != "":
		return nil, fmt.Errorf("use either -trace or -benchmark, not both")
	case path != "":
		return megsim.LoadTrace(path)
	case benchmark != "":
		sc := megsim.DefaultScale()
		sc.FrameDivisor = frameDiv
		return megsim.GenerateBenchmark(benchmark, sc)
	default:
		return nil, fmt.Errorf("need -trace or -benchmark")
	}
}

// parseFrameList parses a comma-separated list of frame indices.
func parseFrameList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad frame %q", part)
		}
		out = append(out, f)
	}
	return out, nil
}

// resilienceReport is the machine-readable supervision summary.
type resilienceReport struct {
	Degraded      bool                       `json:"degraded"`
	Coverage      float64                    `json:"coverage"`
	Quarantined   []megsim.QuarantineRecord  `json:"quarantined,omitempty"`
	Substitutions []megsim.Substitution      `json:"substitutions,omitempty"`
	LostClusters  []int                      `json:"lost_clusters,omitempty"`
	Resumed       []int                      `json:"resumed_frames,omitempty"`
	Retried       int                        `json:"retried_frames,omitempty"`
	Stalled       []int                      `json:"stalled_workers,omitempty"`
	ResumeError   string                     `json:"resume_error,omitempty"`
}

func newResilienceReport(rrun *megsim.ResilientRun) *resilienceReport {
	sup := rrun.Supervision
	if sup == nil {
		return nil
	}
	rep := &resilienceReport{
		Degraded:    rrun.Degraded(),
		Coverage:    1.0,
		Quarantined: sup.Quarantined,
		Resumed:     sup.Resumed,
		Retried:     sup.Retried,
		Stalled:     sup.StalledWorkers,
	}
	if d := rrun.Degradation; d != nil {
		rep.Coverage = d.Coverage()
		rep.Substitutions = d.Substitutions
		rep.LostClusters = d.LostClusters
	}
	if sup.ResumeErr != nil {
		rep.ResumeError = sup.ResumeErr.Error()
	}
	return rep
}

// printJSON emits a machine-readable run summary.
func printJSON(w io.Writer, tr *megsim.Trace, rrun *megsim.ResilientRun, sampled time.Duration, val *validation) error {
	run := rrun.Run
	out := struct {
		Workload        string            `json:"workload"`
		Frames          int               `json:"frames"`
		Clusters        int               `json:"clusters"`
		Representatives []int             `json:"representatives"`
		Reduction       float64           `json:"reduction_factor"`
		SampledMillis   int64             `json:"sampled_run_ms"`
		Cycles          uint64            `json:"estimated_cycles"`
		DRAMAccesses    uint64            `json:"estimated_dram_accesses"`
		L2Accesses      uint64            `json:"estimated_l2_accesses"`
		TileAccesses    uint64            `json:"estimated_tile_cache_accesses"`
		Resilience      *resilienceReport `json:"resilience,omitempty"`
		Validation      *validation       `json:"validation,omitempty"`
	}{
		Workload:        tr.Name,
		Frames:          tr.NumFrames(),
		Clusters:        run.Selection.Clusters.K,
		Representatives: run.Representatives(),
		Reduction:       run.ReductionFactor(),
		SampledMillis:   sampled.Milliseconds(),
		Cycles:          run.Estimate.Cycles,
		DRAMAccesses:    run.Estimate.DRAM.Accesses,
		L2Accesses:      run.Estimate.L2.Accesses,
		TileAccesses:    run.Estimate.TileCache.Accesses,
		Resilience:      newResilienceReport(rrun),
		Validation:      val,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeSelection persists the selection so later runs (e.g. a design-
// space sweep on another machine) can re-simulate the representatives
// without redoing characterization.
func writeSelection(path, workload string, run *megsim.Run) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	sum := harness.NewSelectionSummary(workload, run.Selection, false)
	if err := sum.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
