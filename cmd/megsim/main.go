// Command megsim runs the MEGsim methodology end to end on one
// workload: functional characterization, frame clustering, and
// cycle-level simulation of only the representative frames, printing the
// extrapolated full-sequence statistics. With -validate it additionally
// simulates the whole sequence and reports the relative errors (the
// paper's Fig. 7 evaluation for a single benchmark).
//
// Usage:
//
//	megsim -benchmark bbr1
//	megsim -trace bbr1.trace -validate
//	megsim -benchmark jjo -threshold 0.95 -seed 7
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/megsim"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file produced by tracegen")
		benchmark = flag.String("benchmark", "", "generate this benchmark instead of loading a trace")
		frameDiv  = flag.Int("frame-div", 1, "frame divisor when generating")
		threshold = flag.Float64("threshold", 0.85, "BIC spread threshold T")
		seed      = flag.Uint64("seed", 1, "k-means initialization seed")
		validate  = flag.Bool("validate", false, "also run the full simulation and report relative errors")
		tbdr      = flag.Bool("tbdr", false, "simulate a TBDR GPU (hidden surface removal)")
		jsonOut   = flag.Bool("json", false, "print machine-readable JSON instead of text")
		saveSel   = flag.String("save-selection", "", "write the frame selection as JSON to this file")
	)
	flag.Parse()

	tr, err := loadTrace(*tracePath, *benchmark, *frameDiv)
	if err != nil {
		fmt.Fprintln(os.Stderr, "megsim:", err)
		os.Exit(1)
	}

	cfg := megsim.DefaultConfig()
	cfg.Search.Threshold = *threshold
	cfg.Seed = *seed
	gpu := megsim.DefaultGPUConfig()
	gpu.DeferredShading = *tbdr

	start := time.Now()
	run, err := megsim.Sample(tr, cfg, gpu)
	if err != nil {
		fmt.Fprintln(os.Stderr, "megsim:", err)
		os.Exit(1)
	}
	sampledTime := time.Since(start)

	if *saveSel != "" {
		if err := writeSelection(*saveSel, tr.Name, run); err != nil {
			fmt.Fprintln(os.Stderr, "megsim:", err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		printJSON(tr, run, sampledTime)
		return
	}

	fmt.Printf("workload:        %s (%d frames)\n", tr.Name, tr.NumFrames())
	fmt.Printf("clusters:        %d (explored k=1..%d)\n", run.Selection.Clusters.K, len(run.Selection.BICScores))
	fmt.Printf("representatives: %v\n", run.Representatives())
	fmt.Printf("reduction:       %.0fx fewer frames\n", run.ReductionFactor())
	fmt.Printf("sampled run:     %v total\n", sampledTime.Round(time.Millisecond))
	fmt.Println()
	fmt.Printf("estimated cycles:      %d\n", run.Estimate.Cycles)
	fmt.Printf("estimated dram:        %d\n", run.Estimate.DRAM.Accesses)
	fmt.Printf("estimated l2:          %d\n", run.Estimate.L2.Accesses)
	fmt.Printf("estimated tile cache:  %d\n", run.Estimate.TileCache.Accesses)

	if *validate {
		fmt.Println()
		fmt.Println("validating against full simulation...")
		start = time.Now()
		full, err := megsim.SimulateFull(tr, gpu)
		if err != nil {
			fmt.Fprintln(os.Stderr, "megsim:", err)
			os.Exit(1)
		}
		fullTime := time.Since(start)
		actual := megsim.SumStats(full)
		acc := megsim.CompareAccuracy(&run.Estimate, &actual)
		fmt.Printf("full simulation:  %v (%.0fx slower than the sampled run)\n",
			fullTime.Round(time.Millisecond), float64(fullTime)/float64(sampledTime))
		for _, m := range core.Metrics() {
			fmt.Printf("relative error %-22s %.2f%%\n", m.String()+":", acc.Percent(m))
		}
	}
}

func loadTrace(path, benchmark string, frameDiv int) (*megsim.Trace, error) {
	switch {
	case path != "" && benchmark != "":
		return nil, fmt.Errorf("use either -trace or -benchmark, not both")
	case path != "":
		return megsim.LoadTrace(path)
	case benchmark != "":
		sc := megsim.DefaultScale()
		sc.FrameDivisor = frameDiv
		return megsim.GenerateBenchmark(benchmark, sc)
	default:
		return nil, fmt.Errorf("need -trace or -benchmark")
	}
}

// printJSON emits a machine-readable run summary.
func printJSON(tr *megsim.Trace, run *megsim.Run, sampled time.Duration) {
	out := struct {
		Workload        string  `json:"workload"`
		Frames          int     `json:"frames"`
		Clusters        int     `json:"clusters"`
		Representatives []int   `json:"representatives"`
		Reduction       float64 `json:"reduction_factor"`
		SampledMillis   int64   `json:"sampled_run_ms"`
		Cycles          uint64  `json:"estimated_cycles"`
		DRAMAccesses    uint64  `json:"estimated_dram_accesses"`
		L2Accesses      uint64  `json:"estimated_l2_accesses"`
		TileAccesses    uint64  `json:"estimated_tile_cache_accesses"`
	}{
		Workload:        tr.Name,
		Frames:          tr.NumFrames(),
		Clusters:        run.Selection.Clusters.K,
		Representatives: run.Representatives(),
		Reduction:       run.ReductionFactor(),
		SampledMillis:   sampled.Milliseconds(),
		Cycles:          run.Estimate.Cycles,
		DRAMAccesses:    run.Estimate.DRAM.Accesses,
		L2Accesses:      run.Estimate.L2.Accesses,
		TileAccesses:    run.Estimate.TileCache.Accesses,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "megsim:", err)
		os.Exit(1)
	}
}

// writeSelection persists the selection so later runs (e.g. a design-
// space sweep on another machine) can re-simulate the representatives
// without redoing characterization.
func writeSelection(path, workload string, run *megsim.Run) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	sum := harness.NewSelectionSummary(workload, run.Selection, false)
	if err := sum.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
