// Command megsim runs the MEGsim methodology end to end on one
// workload: functional characterization, frame clustering, and
// cycle-level simulation of only the representative frames, printing the
// extrapolated full-sequence statistics. With -validate it additionally
// simulates the whole sequence (with invariant checking armed) and
// reports per-metric relative error against configurable tolerance
// bands, exiting non-zero when the accuracy gate fails (the paper's
// Fig. 7 evaluation for a single benchmark).
//
// Every run executes under the resilience supervisor: frames that fail
// or panic are retried with capped backoff and quarantined when they
// keep failing, quarantined representatives degrade gracefully (the
// next-closest in-cluster frame substitutes, weights rescale, the
// degradation is reported loudly), and SIGINT/SIGTERM cancel the run at
// the next frame boundary. With -checkpoint, progress is snapshotted at
// frame granularity so an interrupted run resumes with -resume and
// produces byte-identical results to an uninterrupted one.
//
// Usage:
//
//	megsim -benchmark bbr1
//	megsim -trace bbr1.trace -validate
//	megsim -benchmark hcr -validate -tol 2 -validate-out report.json
//	megsim -benchmark jjo -threshold 0.95 -seed 7
//	megsim -benchmark hcr -tile-workers 4
//	megsim -benchmark hcr -checkpoint run.ckpt          # interrupt freely…
//	megsim -benchmark hcr -checkpoint run.ckpt -resume  # …and pick up here
//	megsim -benchmark hcr -stream                       # bounded-memory streaming mode
//	megsim -benchmark hcr -stream -strata 48 -validate
//
// With -stream the batch pipeline (characterize everything, then
// cluster) is replaced by the streaming one: frames are characterized
// and folded into an online stratifier one at a time, so memory stays
// O(strata · reservoir) however long the trace is, and only each
// stratum's representative is ever simulated. -validate, -checkpoint,
// -resume, retry/quarantine and -server all compose with it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/check"
	"repro/internal/harness"
	"repro/internal/serve"
	"repro/megsim"
)

func main() {
	// SIGINT/SIGTERM cancel the run context: workers stop at the next
	// frame boundary, the final checkpoint is flushed, and the process
	// exits non-zero with a resume hint instead of losing the run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "megsim:", err)
		os.Exit(1)
	}
}

// run is the whole command behind a single error return so every exit
// path is uniform (and testable) instead of scattering os.Exit calls.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("megsim", flag.ContinueOnError)
	var (
		tracePath    = fs.String("trace", "", "trace file produced by tracegen")
		benchmark    = fs.String("benchmark", "", "generate this benchmark instead of loading a trace")
		frameDiv     = fs.Int("frame-div", 1, "frame divisor when generating")
		threshold    = fs.Float64("threshold", 0.85, "BIC spread threshold T")
		seed         = fs.Uint64("seed", 1, "k-means initialization seed")
		validate     = fs.Bool("validate", false, "also run the full simulation and report relative errors")
		tbdr         = fs.Bool("tbdr", false, "simulate a TBDR GPU (hidden surface removal)")
		tileWorkers  = fs.Int("tile-workers", 0, "tile-parallel raster workers per frame (0 = serial raster stage)")
		jsonOut      = fs.Bool("json", false, "print machine-readable JSON instead of text")
		saveSel      = fs.String("save-selection", "", "write the frame selection as JSON to this file")
		tolScale     = fs.Float64("tol", 1, "scale factor on the default -validate tolerance bands")
		valOut       = fs.String("validate-out", "", "write the -validate accuracy report as JSON to this file")
		checkpoint   = fs.String("checkpoint", "", "checkpoint progress at frame granularity to this file")
		resume       = fs.Bool("resume", false, "resume completed frames from -checkpoint instead of re-simulating")
		retries      = fs.Int("retries", 0, "attempts per frame before quarantine (0 = default)")
		quarantine   = fs.String("quarantine", "", "comma-separated frames to pre-quarantine (route around known-bad frames)")
		runTimeout   = fs.Duration("run-timeout", 0, "overall wall-clock deadline for the run (0 = none)")
		stallTimeout = fs.Duration("stall-timeout", 0, "flag a worker stuck on one frame longer than this (0 = off)")
		server       = fs.String("server", "", "submit the campaign to a megsimd daemon at this address instead of simulating locally")
		streamMode   = fs.Bool("stream", false, "streaming mode: online stratification with bounded memory instead of batch clustering")
		strata       = fs.Int("strata", 0, "streaming stratum budget (0 = default; needs -stream)")
		reservoir    = fs.Int("reservoir", 0, "streaming per-stratum reservoir capacity (0 = default; needs -stream)")
		eagerEvery   = fs.Int("stream-eager", 0, "launch representative simulations every N streamed frames (0 = at stream end; needs -stream)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *runTimeout)
		defer cancel()
	}
	preQuarantine, err := parseFrameList(*quarantine)
	if err != nil {
		return fmt.Errorf("-quarantine: %w", err)
	}
	if !*streamMode {
		var needStream []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "strata", "reservoir", "stream-eager":
				needStream = append(needStream, "-"+f.Name)
			}
		})
		if len(needStream) > 0 {
			return fmt.Errorf("%s need -stream", strings.Join(needStream, ", "))
		}
	}

	if *server != "" {
		// Local-only flags make no sense against a daemon: validation is
		// a local ground-truth pass, and the daemon owns checkpointing
		// (one file per campaign fingerprint under its -checkpoint-dir).
		var bad []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "trace", "validate", "tol", "validate-out", "save-selection", "checkpoint", "resume":
				bad = append(bad, "-"+f.Name)
			}
		})
		if len(bad) > 0 {
			return fmt.Errorf("%s cannot be combined with -server", strings.Join(bad, ", "))
		}
		if *benchmark == "" {
			return fmt.Errorf("-server needs -benchmark (traces are generated daemon-side)")
		}
		req := &serve.CampaignRequest{
			Workload:  serve.WorkloadSpec{Benchmark: *benchmark, FrameDiv: *frameDiv},
			Threshold: *threshold,
			Seed:      *seed,
			GPU:       serve.GPUSpec{TBDR: *tbdr, TileWorkers: *tileWorkers},
			Resilience: serve.ResilienceSpec{
				Retries:        *retries,
				Quarantine:     preQuarantine,
				StallTimeoutMS: stallTimeout.Milliseconds(),
			},
		}
		if *streamMode {
			req.Stream = &serve.StreamSpec{MaxStrata: *strata, ReservoirCap: *reservoir, EagerEvery: *eagerEvery}
		}
		return runRemote(ctx, *server, req, *jsonOut, stdout)
	}

	tr, err := loadTrace(*tracePath, *benchmark, *frameDiv)
	if err != nil {
		return err
	}

	cfg := megsim.DefaultConfig()
	cfg.Search.Threshold = *threshold
	cfg.Seed = *seed
	gpu := megsim.DefaultGPUConfig()
	gpu.DeferredShading = *tbdr
	gpu.TileWorkers = *tileWorkers
	rcfg := megsim.ResilienceConfig{
		MaxAttempts:    *retries,
		CheckpointPath: *checkpoint,
		Resume:         *resume,
		Quarantine:     preQuarantine,
		StallTimeout:   *stallTimeout,
	}

	if *streamMode {
		if *saveSel != "" {
			return fmt.Errorf("-save-selection records a batch clustering; it cannot be combined with -stream")
		}
		scfg := megsim.DefaultStreamConfig()
		scfg.Seed = *seed
		if *strata > 0 {
			scfg.MaxStrata = *strata
		}
		if *reservoir > 0 {
			scfg.ReservoirCap = *reservoir
		}
		opts := megsim.StreamingOptions{Stream: scfg, Resilience: rcfg, EagerEvery: *eagerEvery}
		start := time.Now()
		srun, err := megsim.SampleStreaming(ctx, tr, opts, gpu)
		if err != nil {
			if *checkpoint != "" {
				return fmt.Errorf("%w (progress checkpointed to %s; rerun with -resume)", err, *checkpoint)
			}
			return err
		}
		sampledTime := time.Since(start)
		var val *validation
		if *validate {
			effTol := *tolScale
			if srun.Degraded() {
				effTol *= 3
			}
			val, err = validateEstimate(ctx, tr, &srun.Estimate, gpu, effTol)
			if err != nil {
				return err
			}
			val.Degraded = srun.Degraded()
			if *valOut != "" {
				if err := writeValidation(*valOut, tr.Name, val); err != nil {
					return err
				}
			}
		}
		rep := serve.NewStreamingCampaignReport(srun, sampledTime)
		return renderReport(stdout, rep, val, sampledTime, *jsonOut)
	}

	start := time.Now()
	rrun, err := megsim.SampleResilient(ctx, tr, cfg, gpu, rcfg)
	if err != nil {
		if *checkpoint != "" {
			return fmt.Errorf("%w (progress checkpointed to %s; rerun with -resume)", err, *checkpoint)
		}
		return err
	}
	run := rrun.Run
	sampledTime := time.Since(start)

	if *saveSel != "" {
		if err := writeSelection(*saveSel, tr.Name, run); err != nil {
			return err
		}
	}

	var val *validation
	if *validate {
		// A degraded run cannot be held to the healthy-run accuracy
		// bands: substituted representatives and rescaled weights are a
		// best-effort estimate. Widen the bands 3x (mirroring the
		// degraded-mode oracle gate) and say so, rather than failing a
		// gate the methodology no longer promises, or silently passing.
		effTol := *tolScale
		if rrun.Degraded() {
			effTol *= 3
		}
		val, err = validateEstimate(ctx, tr, &run.Estimate, gpu, effTol)
		if err != nil {
			return err
		}
		val.Degraded = rrun.Degraded()
		if *valOut != "" {
			if err := writeValidation(*valOut, tr.Name, val); err != nil {
				return err
			}
		}
	}

	rep := serve.NewCampaignReport(rrun, sampledTime)
	return renderReport(stdout, rep, val, sampledTime, *jsonOut)
}

// renderReport renders batch and streaming runs through the one shared
// report type: -json here is byte-identical to the daemon's stored
// result payload (modulo sampled_run_ms wall-clock), and the text block
// is the same renderer megsim -server uses on fetched results.
func renderReport(stdout io.Writer, rep *serve.CampaignReport, val *validation, sampledTime time.Duration, jsonOut bool) error {
	if jsonOut {
		if err := printJSON(stdout, rep, val); err != nil {
			return err
		}
		return val.gateErr()
	}

	rep.WriteText(stdout)

	if val != nil {
		fmt.Fprintln(stdout)
		if val.Degraded {
			fmt.Fprintln(stdout, "validation bands widened 3x: degraded run")
		}
		fmt.Fprintf(stdout, "full simulation:  %v (%.0fx slower than the sampled run)\n",
			val.FullSimTime.Round(time.Millisecond), float64(val.FullSimTime)/float64(sampledTime))
		for _, m := range val.Metrics {
			verdict := "ok"
			if !m.Pass {
				verdict = "OUT OF BAND"
			}
			fmt.Fprintf(stdout, "relative error %-22s %.2f%% (band %.1f%%) %s\n",
				m.Name+":", m.RelErr*100, m.Tolerance*100, verdict)
		}
		for _, v := range val.Violations {
			fmt.Fprintf(stdout, "invariant violation: %s\n", v)
		}
	}
	return val.gateErr()
}

// validation is the -validate accuracy report: the sampled estimate
// judged against a fully simulated ground truth with invariant checks
// armed, per tolerance band.
type validation struct {
	Metrics    []check.MetricError `json:"metrics"`
	Violations []check.Violation   `json:"violations,omitempty"`
	// Degraded records that the estimate came from a degraded selection
	// and the bands were widened 3x accordingly.
	Degraded bool `json:"degraded,omitempty"`
	Pass     bool `json:"pass"`

	FullSimTime time.Duration `json:"-"`
}

// gateErr converts a failed report into the command's exit error. A nil
// receiver (no -validate) passes.
func (v *validation) gateErr() error {
	if v == nil || v.Pass {
		return nil
	}
	return fmt.Errorf("validation failed: accuracy out of band or invariants violated")
}

func validateEstimate(ctx context.Context, tr *megsim.Trace, est *megsim.FrameStats, gpu megsim.GPUConfig, tolScale float64) (*validation, error) {
	inv := check.NewInvariants(gpu)
	gpu.Check = inv
	start := time.Now()
	var full []megsim.FrameStats
	var err error
	if gpu.FlushCachesPerFrame {
		full, err = megsim.SimulateFullParallelCtx(ctx, tr, gpu, 0)
	} else {
		full, err = megsim.SimulateFull(tr, gpu)
	}
	if err != nil {
		return nil, err
	}
	val := &validation{FullSimTime: time.Since(start)}
	actual := megsim.SumStats(full)
	val.Metrics = check.CompareRows(est, &actual, check.DefaultTolerance().Scaled(tolScale))
	val.Violations = inv.Violations()
	val.Pass = len(val.Violations) == 0
	for _, m := range val.Metrics {
		if !m.Pass {
			val.Pass = false
		}
	}
	return val, nil
}

func writeValidation(path, workload string, val *validation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	out := struct {
		Workload string `json:"workload"`
		*validation
	}{workload, val}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadTrace(path, benchmark string, frameDiv int) (*megsim.Trace, error) {
	switch {
	case path != "" && benchmark != "":
		return nil, fmt.Errorf("use either -trace or -benchmark, not both")
	case path != "":
		return megsim.LoadTrace(path)
	case benchmark != "":
		sc := megsim.DefaultScale()
		sc.FrameDivisor = frameDiv
		return megsim.GenerateBenchmark(benchmark, sc)
	default:
		return nil, fmt.Errorf("need -trace or -benchmark")
	}
}

// parseFrameList parses a comma-separated list of frame indices.
func parseFrameList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad frame %q", part)
		}
		out = append(out, f)
	}
	return out, nil
}

// printJSON emits a machine-readable run summary: the shared campaign
// report, plus the local-only validation block when -validate ran. With
// no validation attached the bytes match the daemon's result payload
// exactly.
func printJSON(w io.Writer, rep *serve.CampaignReport, val *validation) error {
	out := struct {
		*serve.CampaignReport
		Validation *validation `json:"validation,omitempty"`
	}{rep, val}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeSelection persists the selection so later runs (e.g. a design-
// space sweep on another machine) can re-simulate the representatives
// without redoing characterization.
func writeSelection(path, workload string, run *megsim.Run) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	sum := harness.NewSelectionSummary(workload, run.Selection, false)
	if err := sum.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
