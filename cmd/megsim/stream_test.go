package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// TestStreamValidateWithinBand is the streaming half of the acceptance
// gate: `megsim -stream -validate` must land every metric inside the
// same tolerance bands the batch path is held to, across the oracle
// seeds and both raster-stage modes.
func TestStreamValidateWithinBand(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		var buf bytes.Buffer
		args := []string{
			"-benchmark", "hcr", "-frame-div", "40",
			"-stream", "-validate", "-seed", strconv.FormatUint(seed, 10),
		}
		if seed == 2 {
			args = append(args, "-tile-workers", "4")
		}
		if err := run(context.Background(), args, &buf); err != nil {
			t.Fatalf("seed %d: %v\noutput:\n%s", seed, err, buf.String())
		}
		out := buf.String()
		if strings.Contains(out, "OUT OF BAND") {
			t.Errorf("seed %d: streaming accuracy out of band:\n%s", seed, out)
		}
		if !strings.Contains(out, "strata:") {
			t.Errorf("seed %d: report does not mention strata:\n%s", seed, out)
		}
	}
}

// TestStreamJSONReport: -stream -json emits the streaming block with a
// positive stratum count and a reduction factor.
func TestStreamJSONReport(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-benchmark", "hcr", "-frame-div", "40", "-stream", "-strata", "12", "-reservoir", "4", "-json"}
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	var out struct {
		Frames    int     `json:"frames"`
		Reduction float64 `json:"reduction_factor"`
		Streaming *struct {
			Strata int `json:"strata"`
		} `json:"streaming"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if out.Streaming == nil || out.Streaming.Strata == 0 || out.Streaming.Strata > 12 {
		t.Fatalf("streaming block: %s", buf.String())
	}
	if out.Reduction <= 1 {
		t.Fatalf("reduction %v", out.Reduction)
	}
}

// TestStreamFlagValidation: streaming knobs demand -stream, and a
// streaming run cannot save a batch clustering selection.
func TestStreamFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-benchmark", "hcr", "-strata", "8"},
		{"-benchmark", "hcr", "-reservoir", "4"},
		{"-benchmark", "hcr", "-stream-eager", "16"},
		{"-benchmark", "hcr", "-stream", "-save-selection", "sel.json"},
	} {
		var buf bytes.Buffer
		if err := run(context.Background(), args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
