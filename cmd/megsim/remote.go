package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/serve"
)

// pollInterval is how often -server mode re-checks a submitted job.
// Campaigns at real scale take seconds to minutes, so a coarse poll
// keeps the daemon's handler load negligible.
const pollInterval = 250 * time.Millisecond

// runRemote submits the campaign to a megsimd daemon, waits for the job
// to finish, and renders the result with the same renderers a local run
// uses — so apart from wall-clock timing the output is identical either
// way. Backpressure (429) is retried after the daemon's advertised
// delay; a draining daemon (503) is a hard error.
func runRemote(ctx context.Context, addr string, req *serve.CampaignRequest, jsonOut bool, stdout io.Writer) error {
	if err := req.Validate(); err != nil {
		return err
	}
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}

	sub, err := submitCampaign(ctx, base, body)
	if err != nil {
		return err
	}

	status, err := awaitJob(ctx, base, sub.JobID)
	if err != nil {
		return err
	}
	if status.State != serve.JobSucceeded {
		return fmt.Errorf("job %s %s: %s", sub.JobID, status.State, status.Error)
	}

	raw, err := fetchResult(ctx, base, sub.JobID)
	if err != nil {
		return err
	}
	if jsonOut {
		// The daemon renders each result exactly once; relaying the raw
		// bytes preserves its byte-identity guarantee end to end.
		_, err := stdout.Write(raw)
		return err
	}
	var rep serve.CampaignReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("malformed result from %s: %w", base, err)
	}
	rep.WriteText(stdout)
	return nil
}

// submitCampaign POSTs the campaign, retrying on 429 for as long as the
// run context allows.
func submitCampaign(ctx context.Context, base string, body []byte) (*serve.SubmitResponse, error) {
	for {
		resp, payload, err := doRequest(ctx, http.MethodPost, base+"/api/v1/campaigns", body)
		if err != nil {
			return nil, err
		}
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			var sub serve.SubmitResponse
			if err := json.Unmarshal(payload, &sub); err != nil {
				return nil, fmt.Errorf("malformed submit response: %w", err)
			}
			return &sub, nil
		case http.StatusTooManyRequests:
			delay := time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
					delay = time.Duration(secs) * time.Second
				}
			}
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("daemon backpressured and deadline hit: %s", remoteError(payload))
			case <-time.After(delay):
			}
		default:
			return nil, fmt.Errorf("submit rejected (%s): %s", resp.Status, remoteError(payload))
		}
	}
}

// awaitJob polls until the job reaches a terminal state.
func awaitJob(ctx context.Context, base, jobID string) (*serve.JobStatus, error) {
	for {
		resp, payload, err := doRequest(ctx, http.MethodGet, base+"/api/v1/jobs/"+jobID, nil)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("poll failed (%s): %s", resp.Status, remoteError(payload))
		}
		var status serve.JobStatus
		if err := json.Unmarshal(payload, &status); err != nil {
			return nil, fmt.Errorf("malformed job status: %w", err)
		}
		switch status.State {
		case serve.JobSucceeded, serve.JobFailed, serve.JobInterrupted:
			return &status, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("gave up waiting for job %s (still %s): %w", jobID, status.State, ctx.Err())
		case <-time.After(pollInterval):
		}
	}
}

// fetchResult retrieves the stored result bytes verbatim.
func fetchResult(ctx context.Context, base, jobID string) ([]byte, error) {
	resp, payload, err := doRequest(ctx, http.MethodGet, base+"/api/v1/jobs/"+jobID+"/result", nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("result fetch failed (%s): %s", resp.Status, remoteError(payload))
	}
	return payload, nil
}

func doRequest(ctx context.Context, method, url string, body []byte) (*http.Response, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, payload, nil
}

// remoteError extracts the service's {"error": ...} message, falling
// back to the raw payload for anything unexpected.
func remoteError(payload []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(payload, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(payload))
}
