package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestValidateWithinBandAcrossSeeds is the CLI half of the acceptance
// gate: `megsim -validate` on three fixed clustering seeds must report
// every metric's sampled-vs-full relative error within the configured
// band, for both raster-stage modes.
func TestValidateWithinBandAcrossSeeds(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "report.json")
	for _, seed := range []uint64{1, 2, 3} {
		var buf bytes.Buffer
		args := []string{
			"-benchmark", "hcr", "-frame-div", "40",
			"-validate", "-seed", strconv.FormatUint(seed, 10),
			"-validate-out", outPath,
		}
		if seed == 2 {
			args = append(args, "-tile-workers", "2")
		}
		if err := run(context.Background(), args, &buf); err != nil {
			t.Fatalf("seed %d: %v\noutput:\n%s", seed, err, buf.String())
		}
		out := buf.String()
		if strings.Contains(out, "OUT OF BAND") {
			t.Errorf("seed %d: accuracy out of band:\n%s", seed, out)
		}
		if !strings.Contains(out, "relative error cycles:") {
			t.Errorf("seed %d: missing per-metric error report:\n%s", seed, out)
		}

		data, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatalf("seed %d: report not written: %v", seed, err)
		}
		var rep struct {
			Workload string `json:"workload"`
			Metrics  []struct {
				Name   string  `json:"name"`
				RelErr float64 `json:"rel_err"`
				Pass   bool    `json:"pass"`
			} `json:"metrics"`
			Pass bool `json:"pass"`
		}
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatalf("seed %d: bad report JSON: %v", seed, err)
		}
		if !rep.Pass || len(rep.Metrics) != 4 {
			t.Errorf("seed %d: report = %+v, want 4 passing metrics", seed, rep)
		}
	}
}

func TestValidateJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-benchmark", "hcr", "-frame-div", "40", "-validate", "-json"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	var out struct {
		Workload   string `json:"workload"`
		Validation *struct {
			Pass bool `json:"pass"`
		} `json:"validation"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if out.Validation == nil || !out.Validation.Pass {
		t.Errorf("JSON output missing passing validation block: %s", buf.String())
	}
}

func TestValidateGateFailsOnImpossibleBand(t *testing.T) {
	// A tolerance scale of 0 makes every band 0%: the gate must fail
	// with a non-zero exit (an error from run).
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-benchmark", "hcr", "-frame-div", "40", "-validate", "-tol", "0"}, &buf)
	if err == nil {
		t.Fatalf("run passed with zero-width tolerance bands:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "OUT OF BAND") {
		t.Errorf("failing report does not mark metrics out of band:\n%s", buf.String())
	}
}

func TestTraceAndBenchmarkAreExclusive(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-trace", "x.trace", "-benchmark", "hcr"}, &buf); err == nil {
		t.Fatal("accepted both -trace and -benchmark")
	}
	if err := run(context.Background(), []string{}, &buf); err == nil {
		t.Fatal("accepted neither -trace nor -benchmark")
	}
}

// sampleJSON runs megsim -json with extra args and parses the summary.
type sampleSummary struct {
	Representatives []int  `json:"representatives"`
	Cycles          uint64 `json:"estimated_cycles"`
	DRAM            uint64 `json:"estimated_dram_accesses"`
	L2              uint64 `json:"estimated_l2_accesses"`
	Tile            uint64 `json:"estimated_tile_cache_accesses"`
	Resilience      *struct {
		Degraded      bool  `json:"degraded"`
		Resumed       []int `json:"resumed_frames"`
		Substitutions []struct {
			Cluster    int `json:"cluster"`
			Original   int `json:"original"`
			Substitute int `json:"substitute"`
		} `json:"substitutions"`
		ResumeError string `json:"resume_error"`
	} `json:"resilience"`
}

func sampleJSON(t *testing.T, extra ...string) sampleSummary {
	t.Helper()
	var buf bytes.Buffer
	args := append([]string{"-benchmark", "hcr", "-frame-div", "40", "-json"}, extra...)
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatalf("run %v: %v\n%s", extra, err, buf.String())
	}
	var out sampleSummary
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	return out
}

// TestResumeProducesIdenticalEstimates: a checkpointed run, resumed,
// must adopt every representative from the checkpoint and report the
// exact same estimates — and a corrupted checkpoint must fall back to a
// fresh (still identical) run with the failure reported, never trusted.
func TestResumeProducesIdenticalEstimates(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")

	fresh := sampleJSON(t, "-checkpoint", ckpt)
	if fresh.Resilience == nil {
		t.Fatal("resilience block missing from JSON output")
	}
	if len(fresh.Resilience.Resumed) != 0 {
		t.Fatalf("fresh run resumed frames: %v", fresh.Resilience.Resumed)
	}

	resumed := sampleJSON(t, "-checkpoint", ckpt, "-resume")
	if resumed.Resilience == nil || len(resumed.Resilience.Resumed) == 0 {
		t.Fatalf("resume adopted nothing: %+v", resumed.Resilience)
	}
	if resumed.Cycles != fresh.Cycles || resumed.DRAM != fresh.DRAM ||
		resumed.L2 != fresh.L2 || resumed.Tile != fresh.Tile {
		t.Fatalf("resumed estimates differ:\nfresh   %+v\nresumed %+v", fresh, resumed)
	}

	// Corrupt the checkpoint: the run must warn, start fresh, and still
	// land on the same estimates.
	if err := os.WriteFile(ckpt, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	repaired := sampleJSON(t, "-checkpoint", ckpt, "-resume")
	if repaired.Resilience == nil || repaired.Resilience.ResumeError == "" {
		t.Fatalf("corrupt checkpoint not reported: %+v", repaired.Resilience)
	}
	if len(repaired.Resilience.Resumed) != 0 {
		t.Fatalf("corrupt checkpoint partially trusted: %+v", repaired.Resilience)
	}
	if repaired.Cycles != fresh.Cycles {
		t.Fatalf("post-corruption run cycles = %d, want %d", repaired.Cycles, fresh.Cycles)
	}
}

// TestQuarantineDegradesLoudly: pre-quarantining a representative must
// substitute the next-closest in-cluster frame, mark the run degraded in
// both output formats, and widen the -validate bands 3x — degradation is
// reported, never silent, and never gated against healthy-run bands.
func TestQuarantineDegradesLoudly(t *testing.T) {
	healthy := sampleJSON(t)
	if len(healthy.Representatives) == 0 {
		t.Fatal("no representatives")
	}
	rep := strconv.Itoa(healthy.Representatives[0])

	degraded := sampleJSON(t, "-quarantine", rep)
	if degraded.Resilience == nil || !degraded.Resilience.Degraded {
		t.Fatalf("quarantined representative not reported as degraded: %+v", degraded.Resilience)
	}
	if len(degraded.Resilience.Substitutions) == 0 {
		t.Fatalf("no substitution recorded: %+v", degraded.Resilience)
	}
	s := degraded.Resilience.Substitutions[0]
	if s.Original != healthy.Representatives[0] || s.Substitute == s.Original {
		t.Fatalf("substitution %+v for quarantined rep %s", s, rep)
	}

	// Text mode: the degradation block and the widened-validation note.
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-benchmark", "hcr", "-frame-div", "40",
		"-quarantine", rep, "-validate", "-tol", "3",
	}, &buf)
	if err != nil {
		t.Fatalf("degraded validate run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"DEGRADED:", "substitute: cluster", "validation bands widened 3x"} {
		if !strings.Contains(out, want) {
			t.Errorf("degraded output missing %q:\n%s", want, out)
		}
	}
}

// TestRunTimeoutIsResumable: a run killed by -run-timeout before any
// frame completes must fail with a resume hint and leave a loadable
// checkpoint behind.
func TestRunTimeoutIsResumable(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-benchmark", "hcr", "-frame-div", "40",
		"-checkpoint", ckpt, "-run-timeout", "1ns",
	}, &buf)
	if err == nil {
		t.Fatal("1ns -run-timeout completed")
	}
	if !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("timeout error has no resume hint: %v", err)
	}
}
