package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestValidateWithinBandAcrossSeeds is the CLI half of the acceptance
// gate: `megsim -validate` on three fixed clustering seeds must report
// every metric's sampled-vs-full relative error within the configured
// band, for both raster-stage modes.
func TestValidateWithinBandAcrossSeeds(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "report.json")
	for _, seed := range []uint64{1, 2, 3} {
		var buf bytes.Buffer
		args := []string{
			"-benchmark", "hcr", "-frame-div", "40",
			"-validate", "-seed", strconv.FormatUint(seed, 10),
			"-validate-out", outPath,
		}
		if seed == 2 {
			args = append(args, "-tile-workers", "2")
		}
		if err := run(args, &buf); err != nil {
			t.Fatalf("seed %d: %v\noutput:\n%s", seed, err, buf.String())
		}
		out := buf.String()
		if strings.Contains(out, "OUT OF BAND") {
			t.Errorf("seed %d: accuracy out of band:\n%s", seed, out)
		}
		if !strings.Contains(out, "relative error cycles:") {
			t.Errorf("seed %d: missing per-metric error report:\n%s", seed, out)
		}

		data, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatalf("seed %d: report not written: %v", seed, err)
		}
		var rep struct {
			Workload string `json:"workload"`
			Metrics  []struct {
				Name   string  `json:"name"`
				RelErr float64 `json:"rel_err"`
				Pass   bool    `json:"pass"`
			} `json:"metrics"`
			Pass bool `json:"pass"`
		}
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatalf("seed %d: bad report JSON: %v", seed, err)
		}
		if !rep.Pass || len(rep.Metrics) != 4 {
			t.Errorf("seed %d: report = %+v, want 4 passing metrics", seed, rep)
		}
	}
}

func TestValidateJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-benchmark", "hcr", "-frame-div", "40", "-validate", "-json"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	var out struct {
		Workload   string `json:"workload"`
		Validation *struct {
			Pass bool `json:"pass"`
		} `json:"validation"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if out.Validation == nil || !out.Validation.Pass {
		t.Errorf("JSON output missing passing validation block: %s", buf.String())
	}
}

func TestValidateGateFailsOnImpossibleBand(t *testing.T) {
	// A tolerance scale of 0 makes every band 0%: the gate must fail
	// with a non-zero exit (an error from run).
	var buf bytes.Buffer
	err := run([]string{"-benchmark", "hcr", "-frame-div", "40", "-validate", "-tol", "0"}, &buf)
	if err == nil {
		t.Fatalf("run passed with zero-width tolerance bands:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "OUT OF BAND") {
		t.Errorf("failing report does not mark metrics out of band:\n%s", buf.String())
	}
}

func TestTraceAndBenchmarkAreExclusive(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-trace", "x.trace", "-benchmark", "hcr"}, &buf); err == nil {
		t.Fatal("accepted both -trace and -benchmark")
	}
	if err := run([]string{}, &buf); err == nil {
		t.Fatal("accepted neither -trace nor -benchmark")
	}
}
