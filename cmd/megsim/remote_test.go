package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// startDaemon runs an in-process campaign service behind httptest so
// -server mode exercises the real HTTP path end to end.
func startDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	srv := serve.New(serve.Config{QueueCapacity: 8})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		ts.Close()
	})
	return ts
}

var (
	sampledJSONLine = regexp.MustCompile(`"sampled_run_ms": \d+`)
	sampledTextLine = regexp.MustCompile(`sampled run: .*`)
)

// TestServerModeMatchesLocal is the satellite acceptance test: the same
// flags submitted to a daemon must render the identical report a local
// run prints, in both -json and text mode, with only the wall-clock
// sampled-run field allowed to differ.
func TestServerModeMatchesLocal(t *testing.T) {
	ts := startDaemon(t)
	base := []string{"-benchmark", "hcr", "-frame-div", "40", "-tile-workers", "2", "-retries", "2"}
	ctx := context.Background()

	localArgs := append([]string{}, base...)
	remoteArgs := append([]string{"-server", ts.URL}, base...)

	var localJSON, remoteJSON bytes.Buffer
	if err := run(ctx, append(append([]string{}, localArgs...), "-json"), &localJSON); err != nil {
		t.Fatalf("local -json run: %v", err)
	}
	if err := run(ctx, append(append([]string{}, remoteArgs...), "-json"), &remoteJSON); err != nil {
		t.Fatalf("remote -json run: %v", err)
	}
	lj := sampledJSONLine.ReplaceAllString(localJSON.String(), `"sampled_run_ms": 0`)
	rj := sampledJSONLine.ReplaceAllString(remoteJSON.String(), `"sampled_run_ms": 0`)
	if lj != rj {
		t.Errorf("local and remote JSON reports differ:\n--- local ---\n%s\n--- remote ---\n%s", lj, rj)
	}

	// The text rendering goes through the same shared report type; the
	// second remote submission also exercises the dedup path client-side.
	var localText, remoteText bytes.Buffer
	if err := run(ctx, localArgs, &localText); err != nil {
		t.Fatalf("local text run: %v", err)
	}
	if err := run(ctx, remoteArgs, &remoteText); err != nil {
		t.Fatalf("remote text run: %v", err)
	}
	lt := sampledTextLine.ReplaceAllString(localText.String(), "sampled run: X")
	rt := sampledTextLine.ReplaceAllString(remoteText.String(), "sampled run: X")
	if lt != rt {
		t.Errorf("local and remote text reports differ:\n--- local ---\n%s\n--- remote ---\n%s", lt, rt)
	}
	if !strings.Contains(lt, "workload:        hcr") {
		t.Errorf("text report missing workload line:\n%s", lt)
	}
}

// TestServerModeJobFailure surfaces a daemon-side job failure as a CLI
// error naming the job and its state.
func TestServerModeJobFailure(t *testing.T) {
	ts := startDaemon(t)
	// Pre-quarantining every frame leaves no cluster coverage, so the
	// campaign deterministically fails server-side.
	quarantine := make([]string, 2000)
	for f := range quarantine {
		quarantine[f] = strconv.Itoa(f)
	}
	args := []string{
		"-server", ts.URL, "-benchmark", "hcr", "-frame-div", "40",
		"-quarantine", strings.Join(quarantine, ","),
	}
	var buf bytes.Buffer
	err := run(context.Background(), args, &buf)
	if err == nil {
		t.Fatal("all-quarantined campaign did not fail")
	}
	if !strings.Contains(err.Error(), "failed") || !strings.Contains(err.Error(), "quarantine") {
		t.Fatalf("failure error lacks job state and cause: %v", err)
	}
}

// TestServerModeFlagErrors rejects flag combinations that only make
// sense locally, before touching the network.
func TestServerModeFlagErrors(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-server", "127.0.0.1:1", "-benchmark", "hcr", "-validate"}, "-validate"},
		{[]string{"-server", "127.0.0.1:1", "-benchmark", "hcr", "-checkpoint", "x.ckpt"}, "-checkpoint"},
		{[]string{"-server", "127.0.0.1:1", "-benchmark", "hcr", "-resume"}, "-resume"},
		{[]string{"-server", "127.0.0.1:1", "-benchmark", "hcr", "-save-selection", "sel.json"}, "-save-selection"},
		{[]string{"-server", "127.0.0.1:1", "-trace", "x.trace"}, "-trace"},
		{[]string{"-server", "127.0.0.1:1"}, "-benchmark"},
		{[]string{"-server", "127.0.0.1:1", "-benchmark", "no-such-benchmark"}, "benchmark"},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		err := run(context.Background(), tc.args, &buf)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("args %v: error %v, want mention of %q", tc.args, err, tc.want)
		}
	}
}
