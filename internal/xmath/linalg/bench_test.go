package linalg

import (
	"testing"

	"repro/internal/xmath/stats"
)

func randomDominantMatrix(n int, seed uint64) *Matrix {
	rng := stats.NewRNG(seed)
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				v := rng.Norm(0, 1)
				m.Set(i, j, v)
				if v < 0 {
					rowSum -= v
				} else {
					rowSum += v
				}
			}
		}
		m.Set(i, i, rowSum+1)
	}
	return m
}

func BenchmarkInverse64(b *testing.B) {
	m := randomDominantMatrix(64, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Inverse(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultipleCorrelation(b *testing.B) {
	rng := stats.NewRNG(5)
	const n, preds = 2000, 40
	xs := make([][]float64, preds)
	for p := range xs {
		xs[p] = make([]float64, n)
		for i := range xs[p] {
			xs[p][i] = rng.Norm(0, 3)
		}
	}
	y := make([]float64, n)
	for i := range y {
		y[i] = xs[0][i]*2 + xs[1][i] + rng.Norm(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MultipleCorrelation(xs, y); err != nil {
			b.Fatal(err)
		}
	}
}
