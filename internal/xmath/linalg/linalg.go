// Package linalg implements the small amount of dense linear algebra the
// MEGsim methodology needs: vectors, matrices, Gauss-Jordan inversion, and
// the coefficient of multiple correlation (Eq. 2-3 in the paper), which
// requires inverting the predictor autocorrelation matrix.
package linalg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/xmath/stats"
)

// ErrSingular is returned when a matrix cannot be inverted.
var ErrSingular = errors.New("linalg: matrix is singular")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices. All rows must have the same
// length; it panics otherwise.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of bounds for %dx%d matrix", i, j, m.Rows, m.Cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns m transposed.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m * other. It panics on dimension
// mismatch.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch: %dx%d * %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < other.Cols; j++ {
				out.Data[i*out.Cols+j] += a * other.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m * v. It panics on dimension
// mismatch.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for j := 0; j < m.Cols; j++ {
			s += m.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out
}

// Inverse returns the inverse of m computed by Gauss-Jordan elimination
// with partial pivoting. It returns ErrSingular when a pivot underflows.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: cannot invert non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivoting: pick the largest-magnitude pivot in this column.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a.At(r, col)) > math.Abs(a.At(pivot, col)) {
				pivot = r
			}
		}
		pv := a.At(pivot, col)
		if math.Abs(pv) < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			a.swapRows(pivot, col)
			inv.swapRows(pivot, col)
		}
		// Scale pivot row.
		invPv := 1 / a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)*invPv)
			inv.Set(col, j, inv.At(col, j)*invPv)
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

func (m *Matrix) swapRows(i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Dot returns the dot product of a and b. It panics on length mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// EuclideanDistance returns the L2 distance between a and b. It panics on
// length mismatch.
func EuclideanDistance(a, b []float64) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}

// SquaredDistance returns the squared L2 distance between a and b. It
// panics on length mismatch.
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: SquaredDistance length mismatch")
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// MultipleCorrelation computes the coefficient of multiple correlation R^2
// between a set of predictor variables and a target variable, following
// Eq. (2)-(3) of the paper:
//
//	R^2 = c^T * Rxx^-1 * c
//
// predictors[i] is the i-th predictor's sample vector (all the same length
// as target). c holds the Pearson correlations between each predictor and
// the target; Rxx is the predictor autocorrelation matrix.
//
// Predictors with zero variance carry no information and are dropped before
// the computation (their correlation with anything is undefined). If no
// informative predictor remains, R^2 = 0. Because Rxx can be numerically
// singular when predictors are collinear (common for shader count vectors:
// several shaders fire once per frame and are perfectly correlated),
// ridge regularization is applied progressively until inversion succeeds.
// The result is clamped to [0, 1].
func MultipleCorrelation(predictors [][]float64, target []float64) (float64, error) {
	kept := make([][]float64, 0, len(predictors))
	for _, p := range predictors {
		if len(p) != len(target) {
			return 0, fmt.Errorf("linalg: predictor length %d != target length %d", len(p), len(target))
		}
		if stats.StdDev(p) > 0 {
			kept = append(kept, p)
		}
	}
	if len(kept) == 0 || stats.StdDev(target) == 0 {
		return 0, nil
	}
	n := len(kept)
	c := make([]float64, n)
	for i, p := range kept {
		c[i] = stats.Pearson(p, target)
	}
	rxx := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		rxx.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			r := stats.Pearson(kept[i], kept[j])
			rxx.Set(i, j, r)
			rxx.Set(j, i, r)
		}
	}
	inv, err := rxx.Inverse()
	for ridge := 1e-8; err != nil && ridge <= 1e-1; ridge *= 10 {
		reg := rxx.Clone()
		for i := 0; i < n; i++ {
			reg.Set(i, i, reg.At(i, i)+ridge)
		}
		inv, err = reg.Inverse()
	}
	if err != nil {
		return 0, err
	}
	r2 := Dot(c, inv.MulVec(c))
	if r2 < 0 {
		r2 = 0
	}
	if r2 > 1 {
		r2 = 1
	}
	return r2, nil
}
