package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xmath/stats"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func matricesAlmostEqual(a, b *Matrix, eps float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if !almostEqual(a.Data[i], b.Data[i], eps) {
			return false
		}
	}
	return true
}

func TestIdentityInverse(t *testing.T) {
	id := Identity(5)
	inv, err := id.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !matricesAlmostEqual(id, inv, 1e-12) {
		t.Fatal("inverse of identity is not identity")
	}
}

func TestInverseKnown(t *testing.T) {
	m := FromRows([][]float64{
		{4, 7},
		{2, 6},
	})
	inv, err := m.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{
		{0.6, -0.7},
		{-0.2, 0.4},
	})
	if !matricesAlmostEqual(inv, want, 1e-12) {
		t.Fatalf("inverse = %v, want %v", inv.Data, want.Data)
	}
}

func TestInverseSingular(t *testing.T) {
	m := FromRows([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := m.Inverse(); err == nil {
		t.Fatal("expected singular matrix error")
	}
}

func TestInverseNonSquare(t *testing.T) {
	m := NewMatrix(2, 3)
	if _, err := m.Inverse(); err == nil {
		t.Fatal("expected error inverting non-square matrix")
	}
}

func TestInverseRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 2 + r.Intn(6)
		m := NewMatrix(n, n)
		// Diagonally dominant matrices are always invertible.
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					v := r.Norm(0, 1)
					m.Set(i, j, v)
					rowSum += math.Abs(v)
				}
			}
			m.Set(i, i, rowSum+1+r.Float64())
		}
		inv, err := m.Inverse()
		if err != nil {
			return false
		}
		prod := m.Mul(inv)
		return matricesAlmostEqual(prod, Identity(n), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
	})
	b := FromRows([][]float64{
		{7, 8},
		{9, 10},
		{11, 12},
	})
	got := a.Mul(b)
	want := FromRows([][]float64{
		{58, 64},
		{139, 154},
	})
	if !matricesAlmostEqual(got, want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got.Data, want.Data)
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{
		{1, 2},
		{3, 4},
	})
	got := m.MulVec([]float64{5, 6})
	if got[0] != 17 || got[1] != 39 {
		t.Fatalf("MulVec = %v, want [17 39]", got)
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
	})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims %dx%d, want 3x2", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatal("transpose values wrong")
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.Norm(0, 10)
		}
		return matricesAlmostEqual(m.Transpose().Transpose(), m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDotAndDistances(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if d := Dot(a, b); d != 32 {
		t.Fatalf("Dot = %v, want 32", d)
	}
	if d := SquaredDistance(a, b); d != 27 {
		t.Fatalf("SquaredDistance = %v, want 27", d)
	}
	if d := EuclideanDistance(a, b); !almostEqual(d, math.Sqrt(27), 1e-12) {
		t.Fatalf("EuclideanDistance = %v, want sqrt(27)", d)
	}
	if d := EuclideanDistance(a, a); d != 0 {
		t.Fatalf("self-distance = %v, want 0", d)
	}
}

func TestDistanceTriangleInequalityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 1 + r.Intn(10)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = r.Norm(0, 5), r.Norm(0, 5), r.Norm(0, 5)
		}
		return EuclideanDistance(a, c) <= EuclideanDistance(a, b)+EuclideanDistance(b, c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleCorrelationSinglePredictor(t *testing.T) {
	// With one predictor, R^2 must equal the squared Pearson correlation.
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{2.1, 3.9, 6.2, 8.1, 9.8, 12.2}
	r2, err := MultipleCorrelation([][]float64{x}, y)
	if err != nil {
		t.Fatal(err)
	}
	p := stats.Pearson(x, y)
	if !almostEqual(r2, p*p, 1e-9) {
		t.Fatalf("R^2 = %v, want Pearson^2 = %v", r2, p*p)
	}
}

func TestMultipleCorrelationPerfectFit(t *testing.T) {
	// y is an exact linear function of the two predictors: R^2 ~ 1.
	x1 := []float64{1, 2, 3, 4, 5, 6, 7}
	x2 := []float64{3, 1, 4, 1, 5, 9, 2}
	y := make([]float64, len(x1))
	for i := range y {
		y[i] = 2*x1[i] - 3*x2[i] + 7
	}
	r2, err := MultipleCorrelation([][]float64{x1, x2}, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r2, 1, 1e-6) {
		t.Fatalf("R^2 = %v, want ~1", r2)
	}
}

func TestMultipleCorrelationConstantPredictorsDropped(t *testing.T) {
	// Constant predictors carry no information and must not break R^2.
	x := []float64{1, 2, 3, 4, 5}
	constant := []float64{7, 7, 7, 7, 7}
	y := []float64{2, 4, 6, 8, 10}
	r2, err := MultipleCorrelation([][]float64{constant, x, constant}, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r2, 1, 1e-9) {
		t.Fatalf("R^2 = %v, want 1", r2)
	}
}

func TestMultipleCorrelationAllConstant(t *testing.T) {
	c := []float64{1, 1, 1}
	r2, err := MultipleCorrelation([][]float64{c}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r2 != 0 {
		t.Fatalf("R^2 = %v, want 0 for all-constant predictors", r2)
	}
}

func TestMultipleCorrelationCollinearPredictors(t *testing.T) {
	// Perfectly collinear predictors make Rxx singular; the ridge fallback
	// must still produce a valid, high R^2.
	x := []float64{1, 2, 3, 4, 5, 6}
	x2 := make([]float64, len(x))
	for i := range x {
		x2[i] = 2 * x[i]
	}
	y := []float64{1.1, 2.2, 2.9, 4.2, 5.1, 5.9}
	r2, err := MultipleCorrelation([][]float64{x, x2}, y)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.9 || r2 > 1 {
		t.Fatalf("R^2 = %v, want in (0.9, 1]", r2)
	}
}

func TestMultipleCorrelationLengthMismatch(t *testing.T) {
	_, err := MultipleCorrelation([][]float64{{1, 2}}, []float64{1, 2, 3})
	if err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestMultipleCorrelationBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 8 + r.Intn(30)
		nPred := 1 + r.Intn(4)
		preds := make([][]float64, nPred)
		for p := range preds {
			preds[p] = make([]float64, n)
			for i := range preds[p] {
				preds[p][i] = r.Norm(0, 3)
			}
		}
		y := make([]float64, n)
		for i := range y {
			y[i] = r.Norm(0, 3)
		}
		r2, err := MultipleCorrelation(preds, y)
		if err != nil {
			return false
		}
		return r2 >= 0 && r2 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowColClone(t *testing.T) {
	m := FromRows([][]float64{
		{1, 2},
		{3, 4},
	})
	r := m.Row(1)
	c := m.Col(0)
	if r[0] != 3 || r[1] != 4 || c[0] != 1 || c[1] != 3 {
		t.Fatal("Row/Col wrong")
	}
	cl := m.Clone()
	cl.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original storage")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}
