package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 agree on %d/100 draws; streams should differ", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGFloat64Uniformity(t *testing.T) {
	r := NewRNG(9)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if !almostEqual(mean, 0.5, 0.01) {
		t.Fatalf("mean of uniform draws = %v, want ~0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) returned %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNorm(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Norm(5, 2)
	}
	if m := Mean(xs); !almostEqual(m, 5, 0.05) {
		t.Fatalf("Norm mean = %v, want ~5", m)
	}
	if s := StdDev(xs); !almostEqual(s, 2, 0.05) {
		t.Fatalf("Norm stddev = %v, want ~2", s)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGSampleDistinct(t *testing.T) {
	r := NewRNG(17)
	s := r.Sample(100, 30)
	if len(s) != 30 {
		t.Fatalf("Sample length = %d, want 30", len(s))
	}
	seen := make(map[int]bool)
	for _, v := range s {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Sample not distinct/in-range: %v", s)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(23)
	child := parent.Split()
	// Drawing from child must not change the parent's subsequent stream.
	ref := NewRNG(23)
	ref.Uint64() // account for the draw consumed by Split
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	for i := 0; i < 100; i++ {
		if parent.Uint64() != ref.Uint64() {
			t.Fatal("child draws perturbed parent stream")
		}
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Sum(nil) != 0 {
		t.Fatal("empty-slice statistics should be 0")
	}
}

func TestSampleVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := 32.0 / 7.0
	if v := SampleVariance(xs); !almostEqual(v, want, 1e-12) {
		t.Fatalf("SampleVariance = %v, want %v", v, want)
	}
	if v := SampleVariance([]float64{1}); v != 0 {
		t.Fatalf("SampleVariance of one element = %v, want 0", v)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); !almostEqual(r, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); !almostEqual(r, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", r)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	if r := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Fatalf("Pearson with constant variable = %v, want 0", r)
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 5 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.Norm(0, 10)
			ys[i] = r.Norm(0, 10)
		}
		p := Pearson(xs, ys)
		return p >= -1-1e-9 && p <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeError(t *testing.T) {
	if e := RelativeError(101, 100); !almostEqual(e, 0.01, 1e-12) {
		t.Fatalf("RelativeError = %v, want 0.01", e)
	}
	if e := RelativeError(99, 100); !almostEqual(e, 0.01, 1e-12) {
		t.Fatalf("RelativeError = %v, want 0.01", e)
	}
	if e := RelativeError(0, 0); e != 0 {
		t.Fatalf("RelativeError(0,0) = %v, want 0", e)
	}
	if e := RelativeError(1, 0); !math.IsInf(e, 1) {
		t.Fatalf("RelativeError(1,0) = %v, want +Inf", e)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("P0 = %v, want 1", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Fatalf("P100 = %v, want 10", p)
	}
	if p := Percentile(xs, 50); !almostEqual(p, 5.5, 1e-12) {
		t.Fatalf("P50 = %v, want 5.5", p)
	}
}

func TestPercentileSingle(t *testing.T) {
	if p := Percentile([]float64{42}, 95); p != 42 {
		t.Fatalf("P95 of single = %v, want 42", p)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestMaxAtConfidence(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	got := MaxAtConfidence(xs, 0.95)
	if !almostEqual(got, 95.05, 1e-9) {
		t.Fatalf("MaxAtConfidence(0.95) = %v, want 95.05", got)
	}
}

func TestMinMaxArg(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if Min(xs) != 1 || Max(xs) != 9 {
		t.Fatal("Min/Max wrong")
	}
	if ArgMin(xs) != 1 {
		t.Fatalf("ArgMin = %d, want 1 (first tie)", ArgMin(xs))
	}
	if ArgMax(xs) != 5 {
		t.Fatalf("ArgMax = %d, want 5", ArgMax(xs))
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); !almostEqual(g, 10, 1e-9) {
		t.Fatalf("GeoMean = %v, want 10", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %v, want 0", g)
	}
}

func TestCovarianceSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 3 + r.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.Norm(0, 5)
			ys[i] = r.Norm(0, 5)
		}
		return almostEqual(Covariance(xs, ys), Covariance(ys, xs), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Norm(0, 100)
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
