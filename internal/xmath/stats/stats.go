package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Variance returns the population variance of xs (dividing by N, not N-1),
// or 0 for slices with fewer than one element. The population form is what
// the BIC likelihood of Eq. (6) in the paper uses.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (dividing by N-1),
// or 0 for slices with fewer than two elements.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Covariance returns the population covariance of xs and ys. It panics if
// the slices have different lengths; it returns 0 for empty input.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Covariance called with mismatched lengths")
	}
	if len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs))
}

// Pearson returns the Pearson correlation coefficient between xs and ys
// (Eq. 1 in the paper). If either variable has zero variance the
// correlation is undefined and 0 is returned.
func Pearson(xs, ys []float64) float64 {
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0
	}
	return Covariance(xs, ys) / (sx * sy)
}

// RelativeError returns |estimate-actual| / |actual| (as a fraction, not a
// percentage). When actual is zero it returns 0 if estimate is also zero
// and +Inf otherwise.
func RelativeError(estimate, actual float64) float64 {
	if actual == 0 {
		if estimate == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(estimate-actual) / math.Abs(actual)
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using linear
// interpolation between closest ranks. It panics on empty input or p out of
// range.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("stats: Percentile p out of [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MaxAtConfidence returns the maximum of xs after discarding the worst
// (1-confidence) fraction of values, i.e. the `confidence`-quantile. This
// is how the paper reports "maximum relative error in an interval of
// confidence of 95%" in Table IV.
func MaxAtConfidence(xs []float64, confidence float64) float64 {
	return Percentile(xs, confidence*100)
}

// Min returns the minimum of xs. It panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMin returns the index of the smallest element of xs. It panics on
// empty input. Ties resolve to the lowest index.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		panic("stats: ArgMin of empty slice")
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest element of xs. It panics on
// empty input. Ties resolve to the lowest index.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		panic("stats: ArgMax of empty slice")
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// it panics otherwise and returns 0 for empty input.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean requires positive values")
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
