// Package stats provides the small statistical toolkit used throughout the
// MEGsim reproduction: descriptive statistics, relative-error helpers,
// percentiles and confidence bounds, and a deterministic random number
// generator.
//
// Everything in this package is deterministic given explicit seeds; no
// global random state is used anywhere in the repository so that every
// experiment is reproducible bit-for-bit.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator based
// on splitmix64. It is intentionally not math/rand: the stream must be
// stable across Go releases because workload generation, k-means seeding and
// the random sub-sampling baseline all derive from it.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators constructed
// with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 bits of the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniformly distributed float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns k distinct indices drawn uniformly from [0, n) in
// selection order. It panics if k > n or k < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("stats: Sample called with k out of range")
	}
	return r.Perm(n)[:k]
}

// Split derives an independent child generator. The child stream is a
// deterministic function of the parent state, and advancing the child does
// not affect the parent (beyond the single draw consumed here).
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}
