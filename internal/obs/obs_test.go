package obs

import (
	"bytes"
	"math"
	"reflect"
	"sync"
	"testing"
)

func TestNilRegistryIsFreeNoOp(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	// Every operation must be a safe no-op.
	r.Counter("x").Add(5)
	r.Counter("x").Inc()
	r.Histogram("h").Observe(1)
	r.Span("s", 0, 0, 10, nil)
	r.Instant("i", 0, 0, nil)
	r.Merge(New())
	r.SetEnabled(true) // nil stays nil; must not panic
	if r.NewLocal() != nil {
		t.Fatal("nil registry produced a non-nil local")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Events) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestDisabledRegistryRecordsNothing(t *testing.T) {
	r := New()
	r.SetEnabled(false)
	if c := r.Counter("x"); c != nil {
		t.Fatal("disabled registry handed out a live counter")
	}
	r.Span("s", 0, 0, 10, nil)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Events) != 0 {
		t.Fatalf("disabled registry recorded: %+v", snap)
	}
}

func TestCounterAndHistogramBasics(t *testing.T) {
	r := New()
	c := r.Counter("hits")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("hits") != c {
		t.Fatal("same name resolved to a different counter")
	}

	h := r.Histogram("lat")
	for _, v := range []uint64{0, 1, 2, 3, 1024, math.MaxUint64} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Min != 0 || s.Max != math.MaxUint64 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	// 0 -> bucket 0; 1 -> 1; 2,3 -> 2; 1024 -> 11; MaxUint64 -> 64.
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 11: 1, 64: 1}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
}

func TestMergeSemantics(t *testing.T) {
	parent := New()
	parent.Counter("shared").Add(10)
	parent.Histogram("h").Observe(100)
	parent.Span("p", 1, 50, 5, nil)

	a := parent.NewLocal()
	a.Counter("shared").Add(7)
	a.Counter("only_a").Add(1)
	a.Histogram("h").Observe(1)
	a.Span("a", 2, 10, 3, nil)

	b := parent.NewLocal()
	b.Counter("shared").Add(5)
	b.Histogram("h").Observe(200)
	b.Histogram("only_b").Observe(4)
	b.Span("b", 3, 20, 2, nil)

	parent.Merge(a)
	parent.Merge(b)
	s := parent.Snapshot()

	if s.Counters["shared"] != 22 || s.Counters["only_a"] != 1 {
		t.Fatalf("merged counters wrong: %v", s.Counters)
	}
	h := s.Histograms["h"]
	if h.Count != 3 || h.Sum != 301 || h.Min != 1 || h.Max != 200 {
		t.Fatalf("merged histogram wrong: %+v", h)
	}
	if hb := s.Histograms["only_b"]; hb.Count != 1 || hb.Min != 4 || hb.Max != 4 {
		t.Fatalf("only_b histogram wrong: %+v", hb)
	}
	// Events sort canonically by timestamp.
	var names []string
	for _, e := range s.Events {
		names = append(names, e.Name)
	}
	if !reflect.DeepEqual(names, []string{"a", "b", "p"}) {
		t.Fatalf("event order = %v, want [a b p]", names)
	}
}

// TestMergeOrderIndependence verifies the determinism property the
// parallel drivers rely on: merging the same worker-local registries in
// any order yields identical snapshots.
func TestMergeOrderIndependence(t *testing.T) {
	build := func(order []int) *Snapshot {
		parent := New()
		locals := make([]*Registry, 3)
		for i := range locals {
			l := parent.NewLocal()
			l.Counter("c").Add(uint64(i + 1))
			l.Histogram("h").Observe(uint64(10 * (i + 1)))
			l.Span("s", uint64(i), uint64(100*i), 7, nil)
			locals[i] = l
		}
		for _, i := range order {
			parent.Merge(locals[i])
		}
		return parent.Snapshot()
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshots differ by merge order:\n%+v\nvs\n%+v", a, b)
	}
}

func TestRingBufferWraparound(t *testing.T) {
	r := NewWith(Options{TraceCapacity: 4})
	for i := 0; i < 10; i++ {
		r.Span("e", 0, uint64(i), 1, nil)
	}
	s := r.Snapshot()
	if len(s.Events) != 4 {
		t.Fatalf("retained %d events, want 4", len(s.Events))
	}
	if s.DroppedEvents != 6 {
		t.Fatalf("dropped = %d, want 6", s.DroppedEvents)
	}
	// The oldest events are overwritten: timestamps 6..9 remain.
	for i, e := range s.Events {
		if want := uint64(6 + i); e.TS != want {
			t.Fatalf("event %d has ts %d, want %d", i, e.TS, want)
		}
	}
}

func TestRingBufferDisabledTimeline(t *testing.T) {
	r := NewWith(Options{TraceCapacity: -1})
	r.Span("e", 0, 0, 1, nil)
	s := r.Snapshot()
	if len(s.Events) != 0 || s.DroppedEvents != 1 {
		t.Fatalf("timeline-off snapshot: %d events, %d dropped", len(s.Events), s.DroppedEvents)
	}
	// A local of a timeline-off registry is also timeline-off.
	l := r.NewLocal()
	l.Span("e", 0, 0, 1, nil)
	if ls := l.Snapshot(); len(ls.Events) != 0 {
		t.Fatal("local of timeline-off registry retained events")
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	r := New()
	r.Span("geometry", 3, 100, 42, map[string]uint64{"vertices": 7})
	r.Instant("marker", 3, 150, nil)
	snap := r.Snapshot()

	var buf bytes.Buffer
	if err := snap.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap.Events) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", got, snap.Events)
	}
	if got[0].Phase != "X" || got[0].Dur != 42 || got[0].Args["vertices"] != 7 {
		t.Fatalf("span fields lost: %+v", got[0])
	}
	if got[1].Phase != "i" || got[1].TS != 150 {
		t.Fatalf("instant fields lost: %+v", got[1])
	}
}

func TestSnapshotJSONHasStableShape(t *testing.T) {
	r := New()
	r.Counter("a").Add(1)
	r.Histogram("h").Observe(3)
	var b1, b2 bytes.Buffer
	if err := r.Snapshot().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("identical snapshots serialized differently")
	}
}

// TestConcurrentSharedRegistry hammers one shared registry from many
// goroutines; it exists to fail under -race if any path is unsafe, and
// checks the totals so lost updates are caught even without -race.
func TestConcurrentSharedRegistry(t *testing.T) {
	const goroutines = 8
	const perG = 2000
	r := NewWith(Options{TraceCapacity: 64}) // small: force wraparound under contention
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("hist")
			for i := 0; i < perG; i++ {
				c.Inc()
				r.Counter("named").Add(2) // exercise the map path too
				h.Observe(uint64(i))
				r.Span("s", uint64(g), uint64(i), 1, nil)
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["shared"] != goroutines*perG {
		t.Fatalf("shared = %d, want %d", s.Counters["shared"], goroutines*perG)
	}
	if s.Counters["named"] != 2*goroutines*perG {
		t.Fatalf("named = %d, want %d", s.Counters["named"], 2*goroutines*perG)
	}
	h := s.Histograms["hist"]
	if h.Count != goroutines*perG || h.Min != 0 || h.Max != perG-1 {
		t.Fatalf("hist = %+v", h)
	}
	if len(s.Events)+int(s.DroppedEvents) != goroutines*perG {
		t.Fatalf("events %d + dropped %d != emitted %d", len(s.Events), s.DroppedEvents, goroutines*perG)
	}
}

// TestConcurrentLocalMerge is the share-nothing pattern the parallel
// drivers use: worker-local registries, merged after join. Designed to
// fail under -race if merge reads worker state unsafely, and checks
// exact totals.
func TestConcurrentLocalMerge(t *testing.T) {
	const workers = 8
	const perW = 5000
	parent := New()
	locals := make([]*Registry, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		locals[w] = parent.NewLocal()
		wg.Add(1)
		go func(l *Registry, w int) {
			defer wg.Done()
			c := l.Counter("work")
			h := l.Histogram("lat")
			for i := 0; i < perW; i++ {
				c.Inc()
				h.Observe(uint64(w*perW + i))
				l.Span("item", uint64(w), uint64(i), 1, nil)
			}
		}(locals[w], w)
	}
	wg.Wait()
	for _, l := range locals {
		parent.Merge(l)
	}
	s := parent.Snapshot()
	if s.Counters["work"] != workers*perW {
		t.Fatalf("work = %d, want %d", s.Counters["work"], workers*perW)
	}
	h := s.Histograms["lat"]
	if h.Count != workers*perW || h.Min != 0 || h.Max != workers*perW-1 {
		t.Fatalf("lat = %+v", h)
	}
	var sum uint64
	for _, b := range h.Buckets {
		sum += b
	}
	if sum != workers*perW {
		t.Fatalf("bucket total %d, want %d", sum, workers*perW)
	}
}
