package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestGaugeBasics(t *testing.T) {
	r := New()
	g := r.Gauge("pool.inflight")
	if g == nil {
		t.Fatal("enabled registry returned nil gauge")
	}
	g.Set(5)
	g.Add(3)
	g.Add(-2)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge value = %d, want 6", got)
	}
	if again := r.Gauge("pool.inflight"); again != g {
		t.Fatal("same name resolved to a different gauge")
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("gauge holds %d, want -7 (gauges are signed)", got)
	}
}

func TestGaugeNilSafety(t *testing.T) {
	var r *Registry
	g := r.Gauge("anything")
	if g != nil {
		t.Fatal("nil registry returned non-nil gauge")
	}
	// All no-ops, no panics.
	g.Set(1)
	g.Add(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	disabled := New()
	disabled.SetEnabled(false)
	if disabled.Gauge("x") != nil {
		t.Fatal("disabled registry returned non-nil gauge")
	}
}

func TestGaugeSnapshotAndMerge(t *testing.T) {
	a := New()
	a.Gauge("worker.0.inflight").Set(2)
	a.Gauge("workers.live").Set(1)
	b := New()
	b.Gauge("worker.1.inflight").Set(3)
	b.Gauge("workers.live").Set(1)

	// Merge sums gauge levels recorded by disjoint owners.
	a.Merge(b)
	s := a.Snapshot()
	want := map[string]int64{"worker.0.inflight": 2, "worker.1.inflight": 3, "workers.live": 2}
	for name, v := range want {
		if got := s.Gauges[name]; got != v {
			t.Errorf("merged gauge %s = %d, want %d", name, got, v)
		}
	}
	if names := s.GaugeNames(); len(names) != 3 || names[0] != "worker.0.inflight" {
		t.Fatalf("GaugeNames() = %v", names)
	}

	// MergeSnapshot is the plain-data equivalent.
	c := New()
	c.Gauge("workers.live").Set(4)
	c.MergeSnapshot(s)
	if got := c.Gauge("workers.live").Value(); got != 6 {
		t.Fatalf("MergeSnapshot gauge = %d, want 6", got)
	}
}

// TestGaugeSnapshotOmittedWhenAbsent pins the compatibility contract:
// a registry with no gauges snapshots to exactly the JSON it produced
// before gauges existed, so checkpoint and determinism goldens are
// unaffected.
func TestGaugeSnapshotOmittedWhenAbsent(t *testing.T) {
	r := New()
	r.Counter("c").Inc()
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "gauges") {
		t.Fatalf("gauge-free snapshot mentions gauges:\n%s", buf.String())
	}
}

func TestGaugePrometheus(t *testing.T) {
	r := New()
	r.Gauge("fabric.worker.0.up").Set(1)
	r.Counter("fabric.dispatch.ok").Add(2)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE fabric_worker_0_up gauge\nfabric_worker_0_up 1\n",
		"# TYPE fabric_dispatch_ok counter\nfabric_dispatch_ok 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
