package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestWritePrometheusCounters: counters expose as sanitized `counter`
// series in sorted, deterministic order.
func TestWritePrometheusCounters(t *testing.T) {
	r := New()
	r.Counter("tbr.raster.cycles").Add(42)
	r.Counter("serve.jobs.completed").Add(7)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	want := "# TYPE serve_jobs_completed counter\nserve_jobs_completed 7\n" +
		"# TYPE tbr_raster_cycles counter\ntbr_raster_cycles 42\n"
	if out != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

// TestWritePrometheusHistogram: power-of-two buckets expose as
// cumulative `_bucket` series with inclusive 2^i-1 upper bounds plus
// `_sum`/`_count` and the mandatory +Inf bucket.
func TestWritePrometheusHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("frame.cycles")
	h.Observe(0) // bucket 0, le="0"
	h.Observe(1) // bucket 1, le="1"
	h.Observe(1)
	h.Observe(5) // bucket 3, le="7"
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	want := strings.Join([]string{
		"# TYPE frame_cycles histogram",
		`frame_cycles_bucket{le="0"} 1`,
		`frame_cycles_bucket{le="1"} 3`,
		`frame_cycles_bucket{le="3"} 3`,
		`frame_cycles_bucket{le="7"} 4`,
		`frame_cycles_bucket{le="+Inf"} 4`,
		"frame_cycles_sum 7",
		"frame_cycles_count 4",
		"",
	}, "\n")
	if out != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

// TestWritePrometheusEmptyHistogram: a histogram with no samples still
// exposes a well-formed series (just +Inf, sum and count at zero).
func TestWritePrometheusEmptyHistogram(t *testing.T) {
	var buf bytes.Buffer
	s := &Snapshot{Histograms: map[string]HistogramSnapshot{"empty": {}}}
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := "# TYPE empty histogram\n" +
		`empty_bucket{le="+Inf"} 0` + "\nempty_sum 0\nempty_count 0\n"
	if buf.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestPrometheusName: the sanitizer maps the registry namespace onto
// the Prometheus charset without collapsing information it can keep.
func TestPrometheusName(t *testing.T) {
	cases := map[string]string{
		"tbr.raster.cycles": "tbr_raster_cycles",
		"already_legal:ns":  "already_legal:ns",
		"2fast":             "_2fast",
		"spaß":              "spa_",
		"":                  "_",
	}
	for in, want := range cases {
		if got := PrometheusName(in); got != want {
			t.Errorf("PrometheusName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusWriterError: a failing writer surfaces its error
// instead of being swallowed.
func TestWritePrometheusWriterError(t *testing.T) {
	r := New()
	r.Counter("a").Inc()
	if err := r.Snapshot().WritePrometheus(failWriter{}); err == nil {
		t.Fatal("want error from failing writer")
	}
	s := &Snapshot{Histograms: map[string]HistogramSnapshot{"h": {Count: 1, Sum: 1, Buckets: map[int]uint64{1: 1}}}}
	if err := s.WritePrometheus(failWriter{}); err == nil {
		t.Fatal("want error from failing writer (histogram)")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "write refused" }
