// Package obs is the pipeline observability layer: allocation-conscious
// metrics (atomic counters, bounded histograms) and a span/event
// timeline backed by a ring buffer, exportable in the Chrome trace
// format (chrome://tracing, Perfetto).
//
// The layer is disabled by default and costs the hot path almost
// nothing when off: a nil *Registry is a fully functional no-op — every
// method on a nil Registry, Counter or Histogram returns immediately,
// so instrumentation points pay one predictable branch (at most one
// atomic load) per event. Instrumented components resolve their
// *Counter/*Histogram handles once at construction; when the registry
// is nil or disabled the handles are nil and the per-access cost is a
// nil check.
//
// Concurrency model: a Registry is safe for concurrent use (counters
// and histogram buckets are atomic; the timeline is mutex-guarded), but
// the intended high-throughput pattern is share-nothing: each worker
// goroutine records into its own local registry (NewLocal) and the
// parent merges them after the workers join (Merge). Merging is
// order-independent for counters and histograms, and Snapshot sorts
// timeline events into a canonical order, so parallel runs produce
// byte-identical snapshots as long as the ring buffer did not overflow.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver (no-ops), which is how disabled instrumentation
// stays free.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable signed value — a level, not an accumulation:
// queue depths, in-flight counts, worker liveness. All methods are safe
// on a nil receiver (no-ops), like Counter.
//
// Gauges merge by summation (Merge/MergeSnapshot add the other side's
// value), which composes level metrics recorded by disjoint owners —
// per-worker in-flight gauges sum to the fleet's in-flight level. A
// gauge shared between registries should live in exactly one of them.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of a Histogram: bucket i holds
// values whose bit length is i (bucket 0 holds only zero), i.e. buckets
// are exponential with base 2 and cover the full uint64 range.
const histBuckets = 65

// Histogram is a bounded histogram over uint64 samples with fixed
// power-of-two buckets plus count/sum/min/max. All updates are atomic;
// all methods are safe on a nil receiver.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // stored as ^value so zero means "no samples"
	max     atomic.Uint64
}

// bucketOf returns the bucket index of a sample.
func bucketOf(v uint64) int { return bits.Len64(v) }

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if ^cur <= v || h.min.CompareAndSwap(cur, ^v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= v || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// merge adds o's samples into h.
func (h *Histogram) merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	n := o.count.Load()
	if n == 0 {
		return
	}
	h.count.Add(n)
	h.sum.Add(o.sum.Load())
	omin, omax := ^o.min.Load(), o.max.Load()
	for {
		cur := h.min.Load()
		if ^cur <= omin || h.min.CompareAndSwap(cur, ^omin) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= omax || h.max.CompareAndSwap(cur, omax) {
			break
		}
	}
}

// snapshot copies the histogram into plain data.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if s.Count > 0 {
		s.Min = ^h.min.Load()
		s.Max = h.max.Load()
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]uint64)
			}
			s.Buckets[i] = n
		}
	}
	return s
}

// Options configures a Registry.
type Options struct {
	// TraceCapacity bounds the span/event ring buffer. Once full, new
	// events overwrite the oldest and Snapshot reports the drop count.
	// 0 selects DefaultTraceCapacity; negative disables the timeline.
	TraceCapacity int
}

// DefaultTraceCapacity is the default ring-buffer size (events).
const DefaultTraceCapacity = 1 << 16

// Registry holds named counters, histograms and the event timeline. The
// zero value is not useful; use New or NewWith. A nil *Registry is the
// disabled implementation: every method no-ops.
type Registry struct {
	enabled  atomic.Bool
	traceCap int

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	trace    traceRing
}

// New returns an enabled registry with default options.
func New() *Registry { return NewWith(Options{}) }

// NewWith returns an enabled registry with the given options.
func NewWith(o Options) *Registry {
	cap := o.TraceCapacity
	switch {
	case cap == 0:
		cap = DefaultTraceCapacity
	case cap < 0:
		cap = 0
	}
	r := &Registry{
		traceCap: cap,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		trace:    traceRing{cap: cap},
	}
	r.enabled.Store(true)
	return r
}

// Enabled reports whether the registry records anything. It is the
// single hot-path gate: one nil check plus one atomic load.
func (r *Registry) Enabled() bool { return r != nil && r.enabled.Load() }

// SetEnabled toggles recording. Handles resolved while disabled are nil
// and stay no-ops; resolve handles after enabling.
func (r *Registry) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op counter) when the registry is nil or disabled.
func (r *Registry) Counter(name string) *Counter {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a no-op gauge) when the registry is nil or disabled.
func (r *Registry) Gauge(name string) *Gauge {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil (a no-op histogram) when the registry is nil or disabled.
func (r *Registry) Histogram(name string) *Histogram {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// NewLocal returns a fresh registry with the same configuration, for a
// worker goroutine to record into without sharing. Returns nil when the
// parent is nil or disabled, so the worker's instrumentation is free.
func (r *Registry) NewLocal() *Registry {
	if !r.Enabled() {
		return nil
	}
	return NewWith(Options{TraceCapacity: traceCapOpt(r.traceCap)})
}

// traceCapOpt maps an internal capacity back to an Options value.
func traceCapOpt(cap int) int {
	if cap == 0 {
		return -1
	}
	return cap
}

// Merge folds a worker-local registry into r: counter values add,
// histograms combine bucket-wise, and timeline events append in o's
// chronological order. Safe when either side is nil.
func (r *Registry) Merge(o *Registry) {
	if !r.Enabled() || o == nil {
		return
	}
	o.mu.Lock()
	counters := make(map[string]uint64, len(o.counters))
	for name, c := range o.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(o.gauges))
	for name, g := range o.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]*Histogram, len(o.hists))
	for name, h := range o.hists {
		hists[name] = h
	}
	events := o.trace.ordered()
	dropped := o.trace.dropped
	o.mu.Unlock()

	// Zero-valued counters are copied too: merging preserves the metric
	// namespace, so serial and parallel runs snapshot identical key sets.
	for name, v := range counters {
		r.Counter(name).Add(v)
	}
	for name, v := range gauges {
		r.Gauge(name).Add(v)
	}
	for name, h := range hists {
		r.Histogram(name).merge(h)
	}
	r.mu.Lock()
	for i := range events {
		r.trace.push(events[i])
	}
	r.trace.dropped += dropped
	r.mu.Unlock()
}

// MergeSnapshot folds a plain-data snapshot back into the registry:
// counter values add, histogram summaries combine bucket-wise, and
// timeline events append in the snapshot's canonical order. It is the
// inverse direction of Snapshot and is equivalent to merging the
// registry the snapshot was taken from: checkpoint/resume restores
// persisted per-frame observability deltas through this, and because
// counters and histograms are additive and Snapshot sorts events
// canonically, replaying deltas in any order reproduces the
// uninterrupted registry byte-for-byte. Zero-valued counters merge too,
// preserving the metric namespace. Safe when either side is nil.
func (r *Registry) MergeSnapshot(s *Snapshot) {
	if !r.Enabled() || s == nil {
		return
	}
	for name, v := range s.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Add(v)
	}
	for name, hs := range s.Histograms {
		r.Histogram(name).mergeSnapshot(hs)
	}
	r.mu.Lock()
	for i := range s.Events {
		r.trace.push(s.Events[i])
	}
	r.trace.dropped += s.DroppedEvents
	r.mu.Unlock()
}

// mergeSnapshot adds a plain-data histogram summary into h.
func (h *Histogram) mergeSnapshot(s HistogramSnapshot) {
	if h == nil {
		return
	}
	for i, n := range s.Buckets {
		if i >= 0 && i < histBuckets {
			h.buckets[i].Add(n)
		}
	}
	if s.Count == 0 {
		return
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	for {
		cur := h.min.Load()
		if ^cur <= s.Min || h.min.CompareAndSwap(cur, ^s.Min) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= s.Max || h.max.CompareAndSwap(cur, s.Max) {
			break
		}
	}
}

// Snapshot copies the registry into plain, JSON-serializable data.
// Timeline events are sorted into a canonical order (timestamp, tid,
// name) so snapshots from differently-partitioned parallel runs compare
// equal when nothing was dropped.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Counters: map[string]uint64{}, Histograms: map[string]HistogramSnapshot{}}
	if !r.Enabled() {
		return s
	}
	r.mu.Lock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		if s.Gauges == nil {
			s.Gauges = map[string]int64{}
		}
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	s.Events = r.trace.ordered()
	s.DroppedEvents = r.trace.dropped
	r.mu.Unlock()
	sort.SliceStable(s.Events, func(i, j int) bool {
		a, b := &s.Events[i], &s.Events[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Dur < b.Dur
	})
	return s
}
