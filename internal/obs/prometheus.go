package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): every counter as a `counter` metric, every
// gauge as a `gauge`, and every histogram as a `histogram` with
// cumulative `_bucket` series plus
// `_sum` and `_count`. Metric names are sanitized to the Prometheus
// charset (dots and other separators become underscores), and series
// are emitted in sorted name order so the output is deterministic.
//
// The histogram buckets are the registry's power-of-two buckets: bucket
// i holds samples whose bit length is i, i.e. values in [2^(i-1), 2^i),
// so the inclusive Prometheus upper bound of bucket i is 2^i - 1.
// Buckets are emitted up to the highest non-empty one, followed by the
// mandatory `+Inf` bucket.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range s.CounterNames() {
		pn := PrometheusName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range s.GaugeNames() {
		pn := PrometheusName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range s.HistogramNames() {
		if err := writePrometheusHistogram(w, PrometheusName(name), s.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

func writePrometheusHistogram(w io.Writer, pn string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	top := -1
	for i := range h.Buckets {
		if i > top {
			top = i
		}
	}
	cum := uint64(0)
	for i := 0; i <= top; i++ {
		cum += h.Buckets[i]
		// Inclusive upper bound of bucket i: values of bit length i are
		// at most 2^i - 1 (bucket 0 holds only zero).
		le := uint64(0)
		if i > 0 {
			le = 1<<uint(i) - 1
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		pn, h.Count, pn, h.Sum, pn, h.Count)
	return err
}

// PrometheusName sanitizes a registry metric name into the Prometheus
// metric-name charset [a-zA-Z_:][a-zA-Z0-9_:]*. The registry's
// dot-separated namespaces become underscore-separated; any other
// illegal rune also maps to an underscore, and a leading digit gets an
// underscore prefix.
func PrometheusName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
