package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// HistogramSnapshot is the plain-data copy of a Histogram. Buckets maps
// bucket index (the bit length of the sample, so bucket i covers
// [2^(i-1), 2^i)) to its count; empty buckets are omitted.
type HistogramSnapshot struct {
	Count   uint64         `json:"count"`
	Sum     uint64         `json:"sum"`
	Min     uint64         `json:"min"`
	Max     uint64         `json:"max"`
	Buckets map[int]uint64 `json:"buckets,omitempty"`
}

// Mean returns the average sample (0 with no samples).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a plain-data copy of a Registry: counter values,
// histogram summaries and the retained timeline. It marshals to stable
// JSON (map keys sort) and is what flows into reports and files.
type Snapshot struct {
	Counters      map[string]uint64            `json:"counters"`
	Gauges        map[string]int64             `json:"gauges,omitempty"`
	Histograms    map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Events        []Event                      `json:"events,omitempty"`
	DroppedEvents uint64                       `json:"dropped_events,omitempty"`
}

// CounterNames returns the counter names in sorted order.
func (s *Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns the gauge names in sorted order.
func (s *Snapshot) GaugeNames() []string {
	names := make([]string, 0, len(s.Gauges))
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the histogram names in sorted order.
func (s *Snapshot) HistogramNames() []string {
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
