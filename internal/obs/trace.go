package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// Event is one timeline entry in (a subset of) the Chrome trace event
// format. Phase "X" is a complete span at TS lasting Dur; phase "i" is
// an instant. Timestamps are in the producer's own timebase — the GPU
// simulator emits simulated cycles, which trace viewers display as
// microseconds.
type Event struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	Cat   string            `json:"cat,omitempty"`
	PID   uint64            `json:"pid"`
	TID   uint64            `json:"tid"`
	TS    uint64            `json:"ts"`
	Dur   uint64            `json:"dur,omitempty"`
	Args  map[string]uint64 `json:"args,omitempty"`
}

// traceRing is a bounded ring of events; when full, new events
// overwrite the oldest. Callers must hold the registry mutex.
type traceRing struct {
	cap     int
	buf     []Event
	head    int // next overwrite position once len(buf) == cap
	dropped uint64
}

func (t *traceRing) push(e Event) {
	if t.cap <= 0 {
		t.dropped++
		return
	}
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, e)
		return
	}
	t.buf[t.head] = e
	t.head++
	if t.head == t.cap {
		t.head = 0
	}
	t.dropped++
}

// ordered returns the retained events oldest-first.
func (t *traceRing) ordered() []Event {
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.head:]...)
	out = append(out, t.buf[:t.head]...)
	return out
}

// Span records a complete span: name, timeline tid, start timestamp and
// duration, with optional arguments. No-op when disabled.
func (r *Registry) Span(name string, tid, ts, dur uint64, args map[string]uint64) {
	r.emit(Event{Name: name, Phase: "X", PID: 1, TID: tid, TS: ts, Dur: dur, Args: args})
}

// Instant records an instantaneous event. No-op when disabled.
func (r *Registry) Instant(name string, tid, ts uint64, args map[string]uint64) {
	r.emit(Event{Name: name, Phase: "i", PID: 1, TID: tid, TS: ts, Args: args})
}

func (r *Registry) emit(e Event) {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	r.trace.push(e)
	r.mu.Unlock()
}

// chromeTrace is the JSON object trace viewers load.
type chromeTrace struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the snapshot's timeline as a Chrome
// trace-format JSON object loadable in chrome://tracing or Perfetto.
// Timestamps (simulated cycles) map to the viewer's microseconds.
func (s *Snapshot) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	events := s.Events
	if events == nil {
		events = []Event{}
	}
	if err := enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadChromeTrace parses a Chrome trace-format JSON object back into
// its event list — the inverse of WriteChromeTrace, used by tests and
// external tooling.
func ReadChromeTrace(rd io.Reader) ([]Event, error) {
	var ct chromeTrace
	if err := json.NewDecoder(rd).Decode(&ct); err != nil {
		return nil, err
	}
	return ct.TraceEvents, nil
}
