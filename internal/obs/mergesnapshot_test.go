package obs

import (
	"reflect"
	"testing"
)

// TestMergeSnapshotEquivalentToMerge is the contract checkpoint/resume
// rests on: folding Snapshot(x) into a registry must be
// indistinguishable from folding x itself, so deltas persisted as plain
// data and replayed later reproduce the uninterrupted registry.
func TestMergeSnapshotEquivalentToMerge(t *testing.T) {
	build := func() *Registry {
		r := New()
		r.Counter("a").Add(3)
		r.Counter("zero") // namespace-only counter
		r.Histogram("h").Observe(7)
		r.Histogram("h").Observe(900)
		r.Span("frame", 2, 100, 50, map[string]uint64{"cycles": 50})
		r.Instant("mark", 1, 10, nil)
		return r
	}

	viaMerge := New()
	viaMerge.Merge(build())
	viaSnapshot := New()
	viaSnapshot.MergeSnapshot(build().Snapshot())

	a, b := viaMerge.Snapshot(), viaSnapshot.Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("MergeSnapshot diverged from Merge:\n%+v\nvs\n%+v", a, b)
	}
	if _, ok := b.Counters["zero"]; !ok {
		t.Fatal("zero-valued counter lost: namespace not preserved")
	}
	if h := b.Histograms["h"]; h.Count != 2 || h.Min != 7 || h.Max != 900 || h.Sum != 907 {
		t.Fatalf("histogram summary wrong after MergeSnapshot: %+v", h)
	}
}

// TestMergeSnapshotOrderIndependent: replaying per-frame deltas in any
// order must converge to the same snapshot (after canonical sorting) —
// what makes resumed runs byte-identical regardless of the kill point.
func TestMergeSnapshotOrderIndependent(t *testing.T) {
	delta := func(frame uint64) *Snapshot {
		r := New()
		r.Counter("frames").Inc()
		r.Histogram("cycles").Observe(100 * frame)
		r.Span("frame", frame, frame*1000, 100, nil)
		return r.Snapshot()
	}

	fwd, rev := New(), New()
	for f := uint64(0); f < 5; f++ {
		fwd.MergeSnapshot(delta(f))
	}
	for f := uint64(5); f > 0; f-- {
		rev.MergeSnapshot(delta(f - 1))
	}
	if !reflect.DeepEqual(fwd.Snapshot(), rev.Snapshot()) {
		t.Fatal("delta replay order changed the merged snapshot")
	}
}

// TestMergeSnapshotNilSafety: nil receivers and nil snapshots no-op.
func TestMergeSnapshotNilSafety(t *testing.T) {
	var nilReg *Registry
	nilReg.MergeSnapshot(New().Snapshot()) // must not panic
	r := New()
	r.MergeSnapshot(nil)
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Events) != 0 {
		t.Fatalf("nil snapshot merged data: %+v", s)
	}
}
