package simmatrix

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xmath/stats"
)

func randomVectors(rng *stats.RNG, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
		for j := range out[i] {
			out[i][j] = rng.Norm(0, 5)
		}
	}
	return out
}

func TestDiagonalIsZero(t *testing.T) {
	m := New(randomVectors(stats.NewRNG(1), 20, 4))
	for i := 0; i < m.N(); i++ {
		if m.At(i, i) != 0 {
			t.Fatalf("At(%d,%d) = %v", i, i, m.At(i, i))
		}
	}
}

func TestSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(30)
		m := New(randomVectors(rng, n, 3))
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if m.At(x, y) != m.At(y, x) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestKnownDistances(t *testing.T) {
	m := New([][]float64{{0, 0}, {3, 4}, {0, 0}})
	if m.At(0, 1) != 5 {
		t.Fatalf("At(0,1) = %v, want 5", m.At(0, 1))
	}
	if m.At(0, 2) != 0 {
		t.Fatalf("At(0,2) = %v, want 0 (identical frames)", m.At(0, 2))
	}
	if m.MaxDistance() != 5 {
		t.Fatalf("MaxDistance = %v", m.MaxDistance())
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := New([][]float64{{1}, {2}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.At(0, 2)
}

func TestWritePGMFormat(t *testing.T) {
	m := New([][]float64{{0}, {1}, {2}})
	var buf bytes.Buffer
	if err := m.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if !bytes.HasPrefix(b, []byte("P5\n3 3\n255\n")) {
		t.Fatalf("bad header: %q", b[:12])
	}
	pixels := b[len("P5\n3 3\n255\n"):]
	if len(pixels) != 9 {
		t.Fatalf("pixel count = %d, want 9", len(pixels))
	}
	// Diagonal black, extremes white.
	if pixels[0] != 0 || pixels[4] != 0 || pixels[8] != 0 {
		t.Fatal("diagonal not black")
	}
	if pixels[2] != 255 || pixels[6] != 255 {
		t.Fatalf("max-distance cell = %d, want 255", pixels[2])
	}
}

func TestWritePPMOverlaysClusters(t *testing.T) {
	m := New([][]float64{{0}, {0.1}, {5}, {5.1}})
	var buf bytes.Buffer
	assign := []int{0, 0, 1, 1}
	if err := m.WritePPM(&buf, assign, 1); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	header := []byte("P6\n4 4\n255\n")
	if !bytes.HasPrefix(b, header) {
		t.Fatalf("bad header: %q", b[:11])
	}
	px := b[len(header):]
	if len(px) != 4*4*3 {
		t.Fatalf("pixel bytes = %d", len(px))
	}
	// Diagonal (0,0) painted with cluster 0 color, (2,2) with cluster 1.
	c0 := px[0:3]
	c2 := px[(2*4+2)*3 : (2*4+2)*3+3]
	if bytes.Equal(c0, c2) {
		t.Fatal("different clusters share a diagonal color")
	}
	// Off-diagonal stays grayscale (r==g==b).
	off := px[(0*4+3)*3 : (0*4+3)*3+3]
	if off[0] != off[1] || off[1] != off[2] {
		t.Fatalf("off-diagonal pixel not gray: %v", off)
	}
}

func TestWritePPMValidatesAssignLength(t *testing.T) {
	m := New([][]float64{{0}, {1}})
	if err := m.WritePPM(&bytes.Buffer{}, []int{0}, 1); err == nil {
		t.Fatal("accepted short assignment")
	}
}

func TestUniformVectorsZeroMatrix(t *testing.T) {
	vecs := [][]float64{{2, 2}, {2, 2}, {2, 2}}
	m := New(vecs)
	if m.MaxDistance() != 0 {
		t.Fatal("identical vectors should give zero matrix")
	}
	var buf bytes.Buffer
	if err := m.WritePGM(&buf); err != nil {
		t.Fatal(err) // must not divide by zero
	}
}

func TestTriangleIndexCoversAllPairs(t *testing.T) {
	// Every (x, y) pair must map to a distinct slot for x <= y.
	n := 17
	vecs := randomVectors(stats.NewRNG(3), n, 2)
	m := New(vecs)
	for x := 0; x < n; x++ {
		for y := x; y < n; y++ {
			want := math.Sqrt(sq(vecs[x], vecs[y]))
			if math.Abs(m.At(x, y)-want) > 1e-12 {
				t.Fatalf("At(%d,%d) = %v, want %v", x, y, m.At(x, y), want)
			}
		}
	}
}

func sq(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
