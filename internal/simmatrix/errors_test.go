package simmatrix

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestEmptyMatrix(t *testing.T) {
	m := New(nil)
	if m.N() != 0 || m.MaxDistance() != 0 {
		t.Fatalf("empty matrix: N=%d max=%v", m.N(), m.MaxDistance())
	}
	var pgm bytes.Buffer
	if err := m.WritePGM(&pgm); err != nil {
		t.Fatalf("WritePGM on empty matrix: %v", err)
	}
	if !strings.HasPrefix(pgm.String(), "P5\n0 0\n255\n") {
		t.Errorf("empty PGM header = %q", pgm.String())
	}
	var ppm bytes.Buffer
	if err := m.WritePPM(&ppm, nil, 1); err != nil {
		t.Fatalf("WritePPM on empty matrix: %v", err)
	}
	if !strings.HasPrefix(ppm.String(), "P6\n0 0\n255\n") {
		t.Errorf("empty PPM header = %q", ppm.String())
	}
}

func TestSingleFrameMatrix(t *testing.T) {
	m := New([][]float64{{1, 2, 3}})
	if m.N() != 1 || m.At(0, 0) != 0 || m.MaxDistance() != 0 {
		t.Fatalf("single-frame matrix: N=%d At=%v max=%v", m.N(), m.At(0, 0), m.MaxDistance())
	}
	var buf bytes.Buffer
	if err := m.WritePGM(&buf); err != nil {
		t.Fatalf("WritePGM: %v", err)
	}
}

// TestNewPanicsOnMismatchedDimensions: frame vectors of different
// lengths are a caller bug and must fail loudly (via the distance
// kernel), not silently truncate.
func TestNewPanicsOnMismatchedDimensions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted ragged vectors")
		}
	}()
	New([][]float64{{1, 2, 3}, {1, 2}})
}

// failWriter errors on every write, after passing through the first
// `allow` bytes, to exercise both header- and body-write failures.
type failWriter struct {
	allow int
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.allow >= len(p) {
		w.allow -= len(p)
		return len(p), nil
	}
	n := w.allow
	w.allow = 0
	return n, errors.New("writer failed")
}

func TestWritePGMPropagatesWriterError(t *testing.T) {
	m := New([][]float64{{0}, {1}, {2}})
	for _, allow := range []int{0, 5} {
		if err := m.WritePGM(&failWriter{allow: allow}); err == nil {
			t.Errorf("WritePGM(allow=%d) swallowed the write error", allow)
		}
	}
}

func TestWritePPMPropagatesWriterError(t *testing.T) {
	m := New([][]float64{{0}, {1}, {2}})
	assign := []int{0, 1, 0}
	for _, allow := range []int{0, 5} {
		if err := m.WritePPM(&failWriter{allow: allow}, assign, 1); err == nil {
			t.Errorf("WritePPM(allow=%d) swallowed the write error", allow)
		}
	}
}

func TestWritePPMRejectsShortAndLongAssignments(t *testing.T) {
	m := New([][]float64{{0}, {1}, {2}})
	var buf bytes.Buffer
	for _, assign := range [][]int{nil, {0}, {0, 1}, {0, 1, 2, 3}} {
		if err := m.WritePPM(&buf, assign, 1); err == nil {
			t.Errorf("WritePPM accepted assignment of length %d for 3 frames", len(assign))
		}
	}
}
