// Package simmatrix builds and renders the frame Similarity Matrix of
// Section III-D: an upper-triangular N x N matrix whose (x, y) cell is
// the Euclidean distance between the vectors of characteristics of
// frames x and y. Rendered as an image (Fig. 5), darker means more
// similar; cluster assignments can be overlaid along the diagonal
// (Fig. 6).
package simmatrix

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/xmath/linalg"
)

// Matrix is a symmetric distance matrix stored as its upper triangle.
type Matrix struct {
	n    int
	data []float64 // row-major upper triangle including diagonal
	max  float64
}

// New computes the similarity matrix of the given frame vectors.
func New(vectors [][]float64) *Matrix {
	n := len(vectors)
	m := &Matrix{n: n, data: make([]float64, n*(n+1)/2)}
	for x := 0; x < n; x++ {
		for y := x; y < n; y++ {
			d := linalg.EuclideanDistance(vectors[x], vectors[y])
			m.data[m.index(x, y)] = d
			if d > m.max {
				m.max = d
			}
		}
	}
	return m
}

// N returns the number of frames.
func (m *Matrix) N() int { return m.n }

// MaxDistance returns the largest pairwise distance.
func (m *Matrix) MaxDistance() float64 { return m.max }

func (m *Matrix) index(x, y int) int {
	if y < x {
		x, y = y, x
	}
	// Row x of the upper triangle starts after rows 0..x-1, which hold
	// n, n-1, ..., n-x+1 entries.
	return x*m.n - x*(x-1)/2 + (y - x)
}

// At returns the distance between frames x and y (symmetric).
func (m *Matrix) At(x, y int) float64 {
	if x < 0 || y < 0 || x >= m.n || y >= m.n {
		panic(fmt.Sprintf("simmatrix: index (%d,%d) out of range for %d frames", x, y, m.n))
	}
	return m.data[m.index(x, y)]
}

// WritePGM renders the matrix as a binary PGM image (grayscale): darker
// pixels mean more similar frames, with the diagonal black — matching
// the presentation of Fig. 5.
func (m *Matrix) WritePGM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", m.n, m.n); err != nil {
		return fmt.Errorf("simmatrix: writing PGM header: %w", err)
	}
	scale := 0.0
	if m.max > 0 {
		scale = 255 / m.max
	}
	for y := 0; y < m.n; y++ {
		for x := 0; x < m.n; x++ {
			v := byte(m.At(x, y) * scale)
			if err := bw.WriteByte(v); err != nil {
				return fmt.Errorf("simmatrix: writing PGM data: %w", err)
			}
		}
	}
	return bw.Flush()
}

// clusterPalette holds distinguishable RGB colors for cluster overlays.
var clusterPalette = [][3]byte{
	{230, 25, 75}, {60, 180, 75}, {255, 225, 25}, {0, 130, 200},
	{245, 130, 48}, {145, 30, 180}, {70, 240, 240}, {240, 50, 230},
	{210, 245, 60}, {250, 190, 212}, {0, 128, 128}, {220, 190, 255},
	{170, 110, 40}, {255, 250, 200}, {128, 0, 0}, {170, 255, 195},
}

// WritePPM renders the matrix with the given cluster assignment drawn
// along the diagonal in per-cluster colors (Fig. 6). assign must have
// length N; the band is diagBand pixels wide (>= 1).
func (m *Matrix) WritePPM(w io.Writer, assign []int, diagBand int) error {
	if len(assign) != m.n {
		return fmt.Errorf("simmatrix: assignment length %d != %d frames", len(assign), m.n)
	}
	if diagBand < 1 {
		diagBand = 1
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", m.n, m.n); err != nil {
		return fmt.Errorf("simmatrix: writing PPM header: %w", err)
	}
	scale := 0.0
	if m.max > 0 {
		scale = 255 / m.max
	}
	for y := 0; y < m.n; y++ {
		for x := 0; x < m.n; x++ {
			var px [3]byte
			if abs(x-y) < diagBand {
				c := clusterPalette[assign[min(x, y)]%len(clusterPalette)]
				px = c
			} else {
				v := byte(m.At(x, y) * scale)
				px = [3]byte{v, v, v}
			}
			if _, err := bw.Write(px[:]); err != nil {
				return fmt.Errorf("simmatrix: writing PPM data: %w", err)
			}
		}
	}
	return bw.Flush()
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
