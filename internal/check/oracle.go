package check

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"

	"repro/internal/core"
	"repro/internal/funcsim"
	"repro/internal/gltrace"
	"repro/internal/power"
	"repro/internal/stream"
	"repro/internal/tbr"
	"repro/internal/workload"
)

// Tolerance is the per-metric acceptance band for the differential
// oracle: the maximum sampled-vs-full relative error (a fraction, not
// percent) accepted for each reported metric.
type Tolerance struct {
	Cycles    float64 `json:"cycles"`
	DRAM      float64 `json:"dram"`
	L2        float64 `json:"l2"`
	TileCache float64 `json:"tile_cache"`
	// Energy bounds each of the three per-phase energy errors and the
	// total-energy error.
	Energy float64 `json:"energy"`
}

// DefaultTolerance returns the acceptance bands used by `make
// validate`. The paper reports sampled-simulation error under ~1.6% on
// the Table II workloads at full sequence length; the oracle's
// randomized workloads run at reduced frame counts where each cluster
// holds fewer frames, so the bands are set wider — they gate against
// methodology regressions, not against the paper's headline number.
func DefaultTolerance() Tolerance {
	return Tolerance{Cycles: 0.08, DRAM: 0.10, L2: 0.10, TileCache: 0.10, Energy: 0.10}
}

// Scaled returns the tolerance with every band multiplied by f — how
// fault-injection runs express "error may degrade, but gracefully".
func (t Tolerance) Scaled(f float64) Tolerance {
	return Tolerance{
		Cycles:    t.Cycles * f,
		DRAM:      t.DRAM * f,
		L2:        t.L2 * f,
		TileCache: t.TileCache * f,
		Energy:    t.Energy * f,
	}
}

// OracleConfig configures a differential-oracle run.
type OracleConfig struct {
	// Seeds are the workload-generator seeds; one SeedResult per seed.
	Seeds []uint64
	// GPU is the timing-simulator configuration. Zero value means
	// tbr.DefaultConfig(). FlushCachesPerFrame must stay enabled — the
	// oracle's rep-isolation check depends on it.
	GPU tbr.Config
	// MEGsim is the methodology configuration. Zero value means
	// core.DefaultConfig().
	MEGsim core.Config
	// Scale sizes the generated traces. Zero value means
	// DefaultOracleScale.
	Scale workload.Scale
	// Workers bounds goroutines for the simulation passes (0 =
	// GOMAXPROCS). Never affects results.
	Workers int
	// TileWorkers enables the tile-parallel raster stage (0 = serial).
	TileWorkers int
	// Faults, when enabled, perturbs the simulated microarchitecture
	// identically in the full and sampled passes (the injection is
	// keyed by frame and tile, not execution order). Faults.Seed is
	// overridden per workload seed so each seed sees its own faults.
	Faults tbr.FaultConfig
	// Tolerance is the acceptance band. Zero value means
	// DefaultTolerance.
	Tolerance Tolerance
	// SkipInvarianceProbe disables the cross-worker determinism probe
	// (a re-simulation of one representative under different worker
	// counts); the probe is cheap but not free.
	SkipInvarianceProbe bool
	// SkipStreamProbe disables the streaming-selection probe: by
	// default every seed also runs the bounded-memory online stratifier
	// (internal/stream) over the same characterization, estimates from
	// its strata, and judges the result against the same tolerance
	// bands ("stream-*" rows), reporting the Rand-index agreement
	// between the streaming and batch partitions.
	SkipStreamProbe bool
	// Stream configures the streaming probe (zero value =
	// stream.DefaultConfig with the seed and feature config aligned to
	// the oracle's).
	Stream stream.Config
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// DefaultOracleScale keeps oracle runs CI-sized: reduced resolution and
// roughly 75-200 frames per randomized workload.
var DefaultOracleScale = workload.Scale{Width: 160, Height: 96, FrameDivisor: 8, DetailDivisor: 2}

// MetricError is one row of the accuracy report: a metric's full-run
// value, its MEGsim estimate, their relative error, and the verdict
// against the tolerance band.
type MetricError struct {
	Name      string  `json:"name"`
	Estimate  float64 `json:"estimate"`
	Actual    float64 `json:"actual"`
	RelErr    float64 `json:"rel_err"`
	Tolerance float64 `json:"tolerance"`
	Pass      bool    `json:"pass"`
}

// SeedResult is the oracle's verdict for one randomized workload.
type SeedResult struct {
	Seed            uint64 `json:"seed"`
	Alias           string `json:"alias"`
	Frames          int    `json:"frames"`
	Representatives int    `json:"representatives"`
	// Reduction is the frames-simulated reduction factor (Table III).
	Reduction float64 `json:"reduction"`
	// Metrics holds the per-metric error rows: the four Fig. 7 metrics
	// plus per-stage and total energy.
	Metrics []MetricError `json:"metrics"`
	// RepIsolation reports whether every representative simulated
	// standalone was bit-identical to the same frame inside the full
	// run — the frame-isolation property the methodology rests on.
	RepIsolation bool `json:"rep_isolation"`
	// WorkerInvariance reports whether a probe frame's stats were
	// identical across tile-worker and frame-worker counts (true when
	// the probe is skipped).
	WorkerInvariance bool `json:"worker_invariance"`
	// StreamStrata is the streaming probe's stratum count (0 when the
	// probe is skipped); its estimate rows appear in Metrics with a
	// "stream-" prefix, judged against the same bands as batch.
	StreamStrata int `json:"stream_strata,omitempty"`
	// StreamReduction is the streaming frames/strata reduction factor.
	StreamReduction float64 `json:"stream_reduction,omitempty"`
	// StreamAgreement is the Rand index between the streaming and batch
	// frame partitions (1 = identical pair structure). Reported, not
	// gated: the methodologies legitimately choose different granularity;
	// accuracy is what the bands gate.
	StreamAgreement float64 `json:"stream_agreement,omitempty"`
	// Violations are the invariant violations recorded during the full
	// run (empty unless faults corrupt statistics or the simulator is
	// broken).
	Violations []Violation `json:"violations,omitempty"`
	// Pass is the seed's aggregate verdict: all metric rows in band,
	// isolation and invariance held, no invariant violations.
	Pass bool `json:"pass"`
}

// Report is the oracle's JSON accuracy report.
type Report struct {
	Tolerance Tolerance `json:"tolerance"`
	// FaultsEnabled records whether the run perturbed the
	// microarchitecture (fault runs measure graceful degradation, not
	// baseline accuracy).
	FaultsEnabled bool         `json:"faults_enabled"`
	Seeds         []SeedResult `json:"seeds"`
	// Pass is the statistical acceptance gate: every seed passed.
	Pass bool `json:"pass"`
}

// WriteJSON writes the indented report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// MaxRelErr returns the largest relative error across all seeds for
// the named metric row (0 if the metric is absent).
func (r *Report) MaxRelErr(name string) float64 {
	max := 0.0
	for _, s := range r.Seeds {
		for _, m := range s.Metrics {
			if m.Name == name && m.RelErr > max {
				max = m.RelErr
			}
		}
	}
	return max
}

func (c *OracleConfig) withDefaults() OracleConfig {
	out := *c
	if reflect.DeepEqual(out.GPU, tbr.Config{}) {
		out.GPU = tbr.DefaultConfig()
	}
	if reflect.DeepEqual(out.MEGsim, core.Config{}) {
		out.MEGsim = core.DefaultConfig()
	}
	if out.Scale == (workload.Scale{}) {
		out.Scale = DefaultOracleScale
	}
	if out.Tolerance == (Tolerance{}) {
		out.Tolerance = DefaultTolerance()
	}
	if len(out.Seeds) == 0 {
		out.Seeds = []uint64{1, 2, 3}
	}
	return out
}

// RunOracle executes the differential oracle: for every seed it builds
// a randomized workload, runs the full cycle-level simulation (with
// invariant checking armed) and the MEGsim-sampled simulation, and
// reports per-metric relative error against the tolerance bands. The
// returned report's Pass field is the statistical acceptance gate
// `make validate` enforces.
//
// An error return means a run could not complete (generation or
// simulation failure); out-of-band accuracy is not an error, it is a
// failed report.
func RunOracle(cfg OracleConfig) (*Report, error) {
	c := cfg.withDefaults()
	if !c.GPU.FlushCachesPerFrame {
		return nil, fmt.Errorf("check: oracle requires GPU.FlushCachesPerFrame (frame isolation)")
	}
	if c.TileWorkers > 0 && c.GPU.TileWorkers == 0 {
		c.GPU.TileWorkers = c.TileWorkers
	}
	rep := &Report{Tolerance: c.Tolerance, FaultsEnabled: c.Faults.Enabled(), Pass: true}
	for _, seed := range c.Seeds {
		sr, err := c.runSeed(seed)
		if err != nil {
			return nil, fmt.Errorf("check: seed %d: %w", seed, err)
		}
		rep.Seeds = append(rep.Seeds, *sr)
		if !sr.Pass {
			rep.Pass = false
		}
	}
	return rep, nil
}

func (c *OracleConfig) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

func (c *OracleConfig) runSeed(seed uint64) (*SeedResult, error) {
	p := workload.RandomProfile(seed)
	tr, err := workload.Generate(p, c.Scale)
	if err != nil {
		return nil, err
	}
	c.logf("[%s] %d frames, %d VS / %d FS (%s)", p.Alias, tr.NumFrames(), p.NumVS, p.NumFS, p.Type)

	fr, err := funcsim.Run(tr)
	if err != nil {
		return nil, err
	}
	fs, err := core.BuildFeatures(fr, c.MEGsim.Feature)
	if err != nil {
		return nil, err
	}
	sel, err := core.Select(fs, c.MEGsim)
	if err != nil {
		return nil, err
	}

	gpu := c.GPU
	gpu.Faults = c.Faults
	gpu.Faults.Seed = seed
	inv := NewInvariants(gpu)
	gpu.Check = inv

	full, err := tbr.SimulateAllParallel(gpu, tr, c.Workers, nil)
	if err != nil {
		return nil, err
	}
	fullTotals := core.SumStats(full)

	// Sampled pass: representatives standalone, exactly as a MEGsim
	// user runs them. Frame isolation must make each bit-identical to
	// the same frame inside the full run.
	repFrames, err := tbr.SimulateFramesParallel(gpu, tr, sel.Representatives, c.Workers)
	if err != nil {
		return nil, err
	}
	repStats := make(map[int]tbr.FrameStats, len(sel.Representatives))
	isolation := true
	for i, f := range sel.Representatives {
		repStats[f] = repFrames[i]
		if repFrames[i] != full[f] {
			isolation = false
		}
	}
	estimate, err := sel.Estimate(repStats)
	if err != nil {
		return nil, err
	}

	sr := &SeedResult{
		Seed:             seed,
		Alias:            p.Alias,
		Frames:           tr.NumFrames(),
		Representatives:  sel.NumRepresentatives(),
		Reduction:        sel.ReductionFactor(),
		RepIsolation:     isolation,
		WorkerInvariance: true,
		Violations:       inv.Violations(),
	}

	sr.Metrics = append(sr.Metrics, CompareRows(&estimate, &fullTotals, c.Tolerance)...)

	// Per-stage energy: full-run sum vs the cluster-scaled estimate.
	model := power.DefaultEnergyModel()
	fullE := model.SequenceEnergy(full)
	estE := estimateEnergy(model, sel, repStats)
	for _, row := range []struct {
		name     string
		est, act float64
	}{
		{"energy-geometry", estE.Geometry, fullE.Geometry},
		{"energy-tiling", estE.Tiling, fullE.Tiling},
		{"energy-raster", estE.Raster, fullE.Raster},
		{"energy-total", estE.Total(), fullE.Total()},
	} {
		sr.Metrics = append(sr.Metrics, metricRow(row.name, row.est, row.act, relErr(row.est, row.act), c.Tolerance.Energy))
	}

	if !c.SkipStreamProbe {
		if err := c.probeStreaming(seed, tr, fr, sel, full, fullTotals, sr); err != nil {
			return nil, err
		}
	}

	if !c.SkipInvarianceProbe && len(sel.Representatives) > 0 {
		ok, err := c.probeWorkerInvariance(gpu, tr, sel.Representatives[0])
		if err != nil {
			return nil, err
		}
		sr.WorkerInvariance = ok
	}

	sr.Pass = sr.RepIsolation && sr.WorkerInvariance && len(sr.Violations) == 0
	for _, m := range sr.Metrics {
		if !m.Pass {
			sr.Pass = false
		}
	}
	c.logf("[%s] reps %d/%d, max err %.2f%%, pass=%v",
		p.Alias, sr.Representatives, sr.Frames, maxErrPct(sr.Metrics), sr.Pass)
	return sr, nil
}

// probeStreaming runs the bounded-memory online stratifier over the
// same characterization the batch pipeline clustered, estimates
// full-sequence statistics from its strata (representative stats taken
// from the full run — valid by the frame-isolation property the
// rep-isolation probe just verified), and appends "stream-*" accuracy
// rows judged against the same tolerance bands. It also reports the
// Rand-index agreement between the streaming and batch partitions.
func (c *OracleConfig) probeStreaming(seed uint64, tr *gltrace.Trace, fr *funcsim.Result, sel *core.Selection, full []tbr.FrameStats, fullTotals tbr.FrameStats, sr *SeedResult) error {
	scfg := c.Stream
	if scfg.MaxStrata == 0 && scfg.ReservoirCap == 0 && scfg.Seed == 0 {
		scfg = stream.DefaultConfig()
		scfg.Seed = seed
		scfg.Feature = c.MEGsim.Feature
	}
	scfg.TrackAssignments = true
	ing := stream.NewIngestor(tr.Name, fr.VSStatic, fr.FSStatic, scfg)
	if err := ing.AddChunk(fr.Profiles); err != nil {
		return err
	}
	ssel, err := ing.Finalize()
	if err != nil {
		return err
	}
	repStats := make(map[int]tbr.FrameStats, len(ssel.Strata))
	for _, st := range ssel.Strata {
		repStats[st.Representative] = full[st.Representative]
	}
	est, err := ssel.Estimate(repStats)
	if err != nil {
		return err
	}
	sr.StreamStrata = ssel.NumStrata()
	sr.StreamReduction = ssel.ReductionFactor()
	for _, row := range CompareRows(&est, &fullTotals, c.Tolerance) {
		row.Name = "stream-" + row.Name
		sr.Metrics = append(sr.Metrics, row)
	}
	assign, err := ing.Assignments()
	if err != nil {
		return err
	}
	sr.StreamAgreement = randIndex(sel.Clusters.Assign, assign)
	c.logf("[%s] stream: %d strata, agreement %.3f", sr.Alias, sr.StreamStrata, sr.StreamAgreement)
	return nil
}

// randIndex is the Rand index of two partitions of the same frame
// sequence: the fraction of frame pairs on whose co-membership the two
// partitions agree.
func randIndex(a, b []int) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 1
	}
	agree, pairs := 0, 0
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			pairs++
			if (a[i] == a[j]) == (b[i] == b[j]) {
				agree++
			}
		}
	}
	return float64(agree) / float64(pairs)
}

// probeWorkerInvariance re-simulates one representative frame under
// differing tile-worker counts and checks the statistics are
// byte-identical — the determinism contract of the sharded raster
// stage. TileWorkers 0 (serial warm-cache mode) is a different model
// and is deliberately never compared against >= 1.
func (c *OracleConfig) probeWorkerInvariance(gpu tbr.Config, tr *gltrace.Trace, frame int) (bool, error) {
	var base *tbr.FrameStats
	for _, tw := range []int{1, 2, 4} {
		g := gpu
		g.TileWorkers = tw
		g.Check = nil // the probe measures determinism, not invariants
		stats, err := tbr.SimulateFramesParallel(g, tr, []int{frame}, 1)
		if err != nil {
			return false, err
		}
		if base == nil {
			st := stats[0]
			base = &st
		} else if stats[0] != *base {
			return false, nil
		}
	}
	return true, nil
}

func metricRow(name string, est, act, rel, tol float64) MetricError {
	return MetricError{Name: name, Estimate: est, Actual: act, RelErr: rel, Tolerance: tol, Pass: rel <= tol}
}

// CompareRows builds the accuracy-report rows for the four Fig. 7
// metrics from a sampled estimate and full-run ground truth, judged
// against the tolerance bands. cmd/megsim's -validate mode uses this
// for single-workload reports; the oracle adds energy rows on top.
func CompareRows(estimate, actual *tbr.FrameStats, tol Tolerance) []MetricError {
	acc := core.EvaluateAccuracy(estimate, actual)
	tolFor := map[core.Metric]float64{
		core.MetricCycles:    tol.Cycles,
		core.MetricDRAM:      tol.DRAM,
		core.MetricL2:        tol.L2,
		core.MetricTileCache: tol.TileCache,
	}
	rows := make([]MetricError, 0, len(core.Metrics()))
	for _, m := range core.Metrics() {
		rows = append(rows, metricRow(m.String(), m.Of(estimate), m.Of(actual), acc[m], tolFor[m]))
	}
	return rows
}

// estimateEnergy extrapolates per-stage energy exactly as Estimate
// extrapolates counters: each representative's frame energy scales by
// its cluster size.
func estimateEnergy(m power.EnergyModel, sel *core.Selection, repStats map[int]tbr.FrameStats) power.Breakdown {
	var b power.Breakdown
	for cl, rep := range sel.Representatives {
		st := repStats[rep]
		e := m.FrameEnergy(&st)
		n := float64(sel.Clusters.Sizes[cl])
		b.Geometry += e.Geometry * n
		b.Tiling += e.Tiling * n
		b.Raster += e.Raster * n
	}
	return b
}

func relErr(est, act float64) float64 {
	if act == 0 {
		if est == 0 {
			return 0
		}
		return 1
	}
	d := (est - act) / act
	if d < 0 {
		return -d
	}
	return d
}

func maxErrPct(rows []MetricError) float64 {
	max := 0.0
	for _, m := range rows {
		if m.RelErr > max {
			max = m.RelErr
		}
	}
	return max * 100
}
