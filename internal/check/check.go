// Package check is the methodology-validation subsystem: it turns the
// repo's correctness story from "golden files match" into "the
// methodology's error bounds hold, and the simulator's invariants
// survive injected faults".
//
// It has three parts:
//
//   - A differential oracle (RunOracle) that runs the full cycle-level
//     simulation and the MEGsim-sampled simulation over randomized
//     synthetic workloads and reports per-metric relative error
//     (cycles, DRAM/L2/tile-cache accesses, per-stage energy) against
//     configurable tolerance bands — the cross-validation discipline
//     SimPoint-descendant sampling methodologies live or die on.
//
//   - Invariant hooks (Invariants, implementing tbr.FrameChecker)
//     threaded into the timing simulator: cache hits+misses equals
//     accesses, DRAM read/write and row-hit/row-miss consistency,
//     cycle-accounting consistency, processor-occupancy bounds,
//     monotonically non-decreasing cumulative energy, and per-queue
//     occupancy-never-exceeds-capacity checks. All are zero-cost when
//     disabled (a nil-check per frame, a bool per queue admit).
//
//   - A deterministic, seed-driven fault-injection layer
//     (tbr.FaultConfig) the oracle and tests use to verify both that
//     the invariant checks actually fire and that the clustering error
//     degrades gracefully — visibly in the accuracy report — rather
//     than silently.
//
// cmd/megsim (-validate) and cmd/experiments (validate subcommand)
// surface the oracle as a JSON accuracy report; `make validate` gates
// CI on the error bands holding across fixed seeds.
package check

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/power"
	"repro/internal/tbr"
)

// Violation is one recorded invariant failure.
type Violation struct {
	// Frame is the frame whose statistics violated the invariant.
	Frame int `json:"frame"`
	// Rule names the violated invariant.
	Rule string `json:"rule"`
	// Detail is a human-readable description with the observed values.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("frame %d: %s: %s", v.Frame, v.Rule, v.Detail)
}

// Invariants verifies per-frame simulator invariants. It implements
// tbr.FrameChecker; attach one via tbr.Config.Check. It is safe for
// concurrent use (the frame-parallel drivers share one checker across
// workers).
//
// In the default record mode CheckFrame collects violations and lets
// the simulation continue; Strict() switches to fail-fast, where the
// first violation aborts the run.
type Invariants struct {
	cfg    tbr.Config
	energy power.EnergyModel
	strict bool

	mu         sync.Mutex
	cumEnergy  float64
	frames     int
	violations []Violation
}

// NewInvariants builds a checker for simulations running under cfg
// (the configuration provides the occupancy bounds).
func NewInvariants(cfg tbr.Config) *Invariants {
	return &Invariants{cfg: cfg, energy: power.DefaultEnergyModel()}
}

// Strict switches the checker to fail-fast: CheckFrame returns an
// error on the first violation, which aborts the simulation. Returns
// the receiver for chaining.
func (iv *Invariants) Strict() *Invariants {
	iv.strict = true
	return iv
}

// WithEnergyModel replaces the energy model the checker evaluates the
// energy invariants under (the default is power.DefaultEnergyModel).
// Returns the receiver for chaining.
func (iv *Invariants) WithEnergyModel(m power.EnergyModel) *Invariants {
	iv.energy = m
	return iv
}

// Violations returns a copy of the recorded violations.
func (iv *Invariants) Violations() []Violation {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	out := make([]Violation, len(iv.violations))
	copy(out, iv.violations)
	return out
}

// Frames returns how many frames the checker has seen.
func (iv *Invariants) Frames() int {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	return iv.frames
}

// CheckFrame implements tbr.FrameChecker: it verifies every per-frame
// invariant, records violations, and in strict mode returns the first
// as an error.
func (iv *Invariants) CheckFrame(st *tbr.FrameStats) error {
	var found []Violation
	add := func(rule, format string, args ...any) {
		found = append(found, Violation{Frame: st.Frame, Rule: rule, Detail: fmt.Sprintf(format, args...)})
	}

	checkCache := func(name string, hits, misses, accesses, writebacks uint64) {
		if hits+misses != accesses {
			add("cache-access-conservation", "%s cache: hits %d + misses %d != accesses %d", name, hits, misses, accesses)
		}
		if writebacks > accesses {
			add("cache-writeback-bound", "%s cache: writebacks %d > accesses %d", name, writebacks, accesses)
		}
	}
	checkCache("vertex", st.VertexCache.Hits, st.VertexCache.Misses, st.VertexCache.Accesses, st.VertexCache.Writebacks)
	checkCache("texture", st.TextureCache.Hits, st.TextureCache.Misses, st.TextureCache.Accesses, st.TextureCache.Writebacks)
	checkCache("tile", st.TileCache.Hits, st.TileCache.Misses, st.TileCache.Accesses, st.TileCache.Writebacks)
	checkCache("l2", st.L2.Hits, st.L2.Misses, st.L2.Accesses, st.L2.Writebacks)

	if st.DRAM.Reads+st.DRAM.Writes != st.DRAM.Accesses {
		add("dram-access-conservation", "reads %d + writes %d != accesses %d", st.DRAM.Reads, st.DRAM.Writes, st.DRAM.Accesses)
	}
	if st.DRAM.RowHits+st.DRAM.RowMisses != st.DRAM.Accesses {
		add("dram-row-conservation", "row hits %d + row misses %d != accesses %d", st.DRAM.RowHits, st.DRAM.RowMisses, st.DRAM.Accesses)
	}

	if st.GeometryCycles+st.RasterCycles != st.Cycles {
		add("cycle-accounting", "geometry %d + raster %d != total %d", st.GeometryCycles, st.RasterCycles, st.Cycles)
	}

	if vp := uint64(iv.cfg.NumVertexProcessors); vp > 0 && st.VPBusyCycles > vp*st.Cycles {
		add("vp-occupancy", "VP busy %d > %d processors x %d cycles", st.VPBusyCycles, vp, st.Cycles)
	}
	if fp := uint64(iv.cfg.NumFragmentProcessors); fp > 0 && st.FPBusyCycles > fp*st.Cycles {
		add("fp-occupancy", "FP busy %d > %d processors x %d cycles", st.FPBusyCycles, fp, st.Cycles)
	}

	if st.FragmentsShaded+st.FragmentsOccluded > 4*st.QuadsRasterized {
		add("fragment-conservation", "shaded %d + occluded %d > 4 x %d rasterized quads",
			st.FragmentsShaded, st.FragmentsOccluded, st.QuadsRasterized)
	}

	b := iv.energy.FrameEnergy(st)
	total := b.Total()
	if math.IsNaN(total) || math.IsInf(total, 0) || total < 0 ||
		b.Geometry < 0 || b.Tiling < 0 || b.Raster < 0 {
		add("energy-non-negative", "frame energy %v (geometry %v, tiling %v, raster %v)", total, b.Geometry, b.Tiling, b.Raster)
	}

	iv.mu.Lock()
	iv.frames++
	next := iv.cumEnergy + total
	if next < iv.cumEnergy {
		found = append(found, Violation{Frame: st.Frame, Rule: "energy-monotonic",
			Detail: fmt.Sprintf("cumulative energy decreased: %v -> %v", iv.cumEnergy, next)})
	} else {
		iv.cumEnergy = next
	}
	iv.violations = append(iv.violations, found...)
	iv.mu.Unlock()

	if iv.strict && len(found) > 0 {
		return fmt.Errorf("check: invariant violated: %s", found[0])
	}
	return nil
}
