package check

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/gltrace"
	"repro/internal/tbr"
	"repro/internal/workload"
)

// testScale keeps oracle tests fast: a few dozen frames per seed.
var testScale = workload.Scale{Width: 128, Height: 64, FrameDivisor: 16, DetailDivisor: 2}

func smallTrace(t *testing.T, frames int) *gltrace.Trace {
	t.Helper()
	p := workload.RandomProfile(0xC0FFEE ^ uint64(frames))
	p.Frames = frames
	tr, err := workload.Generate(p, workload.Scale{Width: 96, Height: 48, FrameDivisor: 1, DetailDivisor: 2})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return tr
}

func testOracleConfig(seeds ...uint64) OracleConfig {
	return OracleConfig{Seeds: seeds, Scale: testScale}
}

func TestOracleBaseline(t *testing.T) {
	cfg := testOracleConfig(1)
	rep, err := RunOracle(cfg)
	if err != nil {
		t.Fatalf("RunOracle: %v", err)
	}
	if len(rep.Seeds) != 1 {
		t.Fatalf("got %d seed results, want 1", len(rep.Seeds))
	}
	sr := rep.Seeds[0]
	if !sr.RepIsolation {
		t.Error("representative standalone simulation differed from the full run (frame isolation broken)")
	}
	if !sr.WorkerInvariance {
		t.Error("probe frame stats differed across tile-worker counts")
	}
	if len(sr.Violations) != 0 {
		t.Errorf("clean run recorded invariant violations: %v", sr.Violations)
	}
	if sr.Representatives <= 0 || sr.Representatives > sr.Frames {
		t.Errorf("implausible representative count %d of %d frames", sr.Representatives, sr.Frames)
	}
	// 12 rows: four Fig. 7 metrics + three energy phases + energy total
	// + the streaming probe's four "stream-*" metrics.
	if len(sr.Metrics) != 12 {
		t.Fatalf("got %d metric rows, want 12", len(sr.Metrics))
	}
	for _, m := range sr.Metrics {
		if m.Actual <= 0 {
			t.Errorf("metric %s: actual %v not positive", m.Name, m.Actual)
		}
		t.Logf("%-22s est %14.0f actual %14.0f err %6.3f%% (tol %4.1f%%) pass=%v",
			m.Name, m.Estimate, m.Actual, m.RelErr*100, m.Tolerance*100, m.Pass)
	}
	if !sr.Pass || !rep.Pass {
		t.Errorf("baseline oracle run failed the acceptance gate: %+v", sr.Metrics)
	}
	if rep.FaultsEnabled {
		t.Error("baseline report claims faults were enabled")
	}
}

func TestOracleDeterminism(t *testing.T) {
	run := func() []byte {
		rep, err := RunOracle(testOracleConfig(7))
		if err != nil {
			t.Fatalf("RunOracle: %v", err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("two identical oracle runs produced different reports:\n%s\n---\n%s", a, b)
	}
}

// TestOracleFaultsVisible asserts that each timing-perturbing fault
// class shifts the report's ground-truth numbers — injected faults must
// be reflected in the accuracy report, never silently absorbed.
func TestOracleFaultsVisible(t *testing.T) {
	base, err := RunOracle(testOracleConfig(11))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	row := func(r *Report, name string) MetricError {
		for _, m := range r.Seeds[0].Metrics {
			if m.Name == name {
				return m
			}
		}
		t.Fatalf("metric %s missing", name)
		return MetricError{}
	}
	cases := []struct {
		name   string
		faults tbr.FaultConfig
		metric string
	}{
		{"dram-latency", tbr.FaultConfig{DRAMLatencyScale: 3}, "cycles"},
		{"drop-tiles", tbr.FaultConfig{DropTileRate: 0.4}, "tile-cache-accesses"},
		{"duplicate-tiles", tbr.FaultConfig{DuplicateTileRate: 0.4}, "tile-cache-accesses"},
		{"cache-flush", tbr.FaultConfig{CacheFlushRate: 0.8}, "l2-accesses"},
		{"stall", tbr.FaultConfig{StallRate: 0.5, StallCycles: 2000}, "cycles"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testOracleConfig(11)
			cfg.Faults = tc.faults
			cfg.SkipInvarianceProbe = true
			rep, err := RunOracle(cfg)
			if err != nil {
				t.Fatalf("faulted run: %v", err)
			}
			if !rep.FaultsEnabled {
				t.Error("report does not flag faults as enabled")
			}
			got, want := row(rep, tc.metric).Actual, row(base, tc.metric).Actual
			if got == want {
				t.Errorf("fault %s left ground-truth %s unchanged (%v)", tc.name, tc.metric, got)
			}
			if len(rep.Seeds[0].Violations) != 0 {
				t.Errorf("timing fault tripped stats invariants: %v", rep.Seeds[0].Violations)
			}
		})
	}
}

// TestOracleGracefulDegradation runs the oracle under moderate faults
// and asserts accuracy degrades gracefully: the sampled estimate stays
// within a widened band of the (equally faulted) ground truth, because
// fault injection is keyed by frame and tile rather than execution
// order.
func TestOracleGracefulDegradation(t *testing.T) {
	cfg := testOracleConfig(11)
	cfg.Faults = tbr.FaultConfig{DropTileRate: 0.1, DuplicateTileRate: 0.1, StallRate: 0.2, StallCycles: 500}
	cfg.Tolerance = DefaultTolerance().Scaled(2)
	cfg.SkipInvarianceProbe = true
	rep, err := RunOracle(cfg)
	if err != nil {
		t.Fatalf("RunOracle: %v", err)
	}
	sr := rep.Seeds[0]
	if !sr.RepIsolation {
		t.Error("fault injection broke frame isolation: standalone reps differ from the full run")
	}
	for _, m := range sr.Metrics {
		t.Logf("%-22s err %6.3f%% (tol %4.1f%%)", m.Name, m.RelErr*100, m.Tolerance*100)
		if !m.Pass {
			t.Errorf("metric %s degraded beyond 2x band: err %.3f%% > %.1f%%", m.Name, m.RelErr*100, m.Tolerance*100)
		}
	}
}

// TestOracleCorruptStats drives the one fault class whose purpose is
// tripping the invariant layer, end to end through the oracle.
func TestOracleCorruptStats(t *testing.T) {
	cfg := testOracleConfig(3)
	cfg.Faults = tbr.FaultConfig{CorruptStats: true}
	cfg.SkipInvarianceProbe = true
	rep, err := RunOracle(cfg)
	if err != nil {
		t.Fatalf("RunOracle: %v", err)
	}
	sr := rep.Seeds[0]
	if len(sr.Violations) == 0 {
		t.Fatal("CorruptStats did not trip any invariant through the oracle")
	}
	if sr.Pass || rep.Pass {
		t.Error("report passed despite invariant violations")
	}
}

func TestOracleRequiresFrameIsolation(t *testing.T) {
	cfg := testOracleConfig(1)
	cfg.GPU = tbr.DefaultConfig()
	cfg.GPU.FlushCachesPerFrame = false
	if _, err := RunOracle(cfg); err == nil {
		t.Fatal("oracle accepted a configuration without frame isolation")
	}
}

func TestToleranceScaled(t *testing.T) {
	tol := Tolerance{Cycles: 0.01, DRAM: 0.02, L2: 0.03, TileCache: 0.04, Energy: 0.05}.Scaled(2)
	want := Tolerance{Cycles: 0.02, DRAM: 0.04, L2: 0.06, TileCache: 0.08, Energy: 0.10}
	if tol != want {
		t.Errorf("Scaled(2) = %+v, want %+v", tol, want)
	}
}

func TestReportHelpers(t *testing.T) {
	rep := &Report{Seeds: []SeedResult{
		{Metrics: []MetricError{{Name: "cycles", RelErr: 0.02}}},
		{Metrics: []MetricError{{Name: "cycles", RelErr: 0.05}}},
	}}
	if got := rep.MaxRelErr("cycles"); got != 0.05 {
		t.Errorf("MaxRelErr = %v, want 0.05", got)
	}
	if got := rep.MaxRelErr("missing"); got != 0 {
		t.Errorf("MaxRelErr(missing) = %v, want 0", got)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
}

func TestRelErr(t *testing.T) {
	cases := []struct{ est, act, want float64 }{
		{100, 100, 0},
		{110, 100, 0.1},
		{90, 100, 0.1},
		{0, 0, 0},
		{5, 0, 1},
	}
	for _, tc := range cases {
		if got := relErr(tc.est, tc.act); got != tc.want {
			t.Errorf("relErr(%v, %v) = %v, want %v", tc.est, tc.act, got, tc.want)
		}
	}
}
