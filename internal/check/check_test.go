package check

import (
	"strings"
	"testing"

	"repro/internal/power"
	"repro/internal/tbr"
	"repro/internal/tbr/mem"
)

// validStats returns frame statistics satisfying every invariant under
// tbr.DefaultConfig (4 VPs, 4 FPs).
func validStats() tbr.FrameStats {
	return tbr.FrameStats{
		Frame:             3,
		Cycles:            100,
		GeometryCycles:    40,
		RasterCycles:      60,
		QuadsRasterized:   10,
		FragmentsShaded:   25,
		FragmentsOccluded: 5,
		VPBusyCycles:      120, // <= 4 processors x 100 cycles
		FPBusyCycles:      200,
		VertexCache:       mem.CacheStats{Accesses: 10, Hits: 8, Misses: 2, Writebacks: 1},
		TextureCache:      mem.CacheStats{Accesses: 20, Hits: 15, Misses: 5},
		TileCache:         mem.CacheStats{Accesses: 12, Hits: 10, Misses: 2, Writebacks: 2},
		L2:                mem.CacheStats{Accesses: 9, Hits: 4, Misses: 5, Writebacks: 1},
		DRAM:              mem.DRAMStats{Accesses: 6, Reads: 4, Writes: 2, RowHits: 1, RowMisses: 5},
	}
}

func TestInvariantsCleanFrame(t *testing.T) {
	iv := NewInvariants(tbr.DefaultConfig())
	st := validStats()
	if err := iv.CheckFrame(&st); err != nil {
		t.Fatalf("CheckFrame on valid stats: %v", err)
	}
	if v := iv.Violations(); len(v) != 0 {
		t.Fatalf("valid stats produced violations: %v", v)
	}
	if iv.Frames() != 1 {
		t.Fatalf("Frames() = %d, want 1", iv.Frames())
	}
}

// TestInvariantRules corrupts one field per rule and asserts exactly
// that rule fires — the "checks actually detect what they claim to"
// half of the validation story.
func TestInvariantRules(t *testing.T) {
	cases := []struct {
		rule    string
		corrupt func(st *tbr.FrameStats)
	}{
		{"cache-access-conservation", func(st *tbr.FrameStats) { st.L2.Accesses += 7 }},
		{"cache-access-conservation", func(st *tbr.FrameStats) { st.VertexCache.Hits++ }},
		{"cache-writeback-bound", func(st *tbr.FrameStats) {
			st.TileCache.Writebacks = st.TileCache.Accesses + 1
		}},
		{"dram-access-conservation", func(st *tbr.FrameStats) { st.DRAM.Reads++ }},
		{"dram-row-conservation", func(st *tbr.FrameStats) { st.DRAM.RowHits++ }},
		{"cycle-accounting", func(st *tbr.FrameStats) { st.GeometryCycles++ }},
		{"vp-occupancy", func(st *tbr.FrameStats) { st.VPBusyCycles = 4*st.Cycles + 1 }},
		{"fp-occupancy", func(st *tbr.FrameStats) { st.FPBusyCycles = 4*st.Cycles + 1 }},
		{"fragment-conservation", func(st *tbr.FrameStats) {
			st.FragmentsShaded = 4*st.QuadsRasterized + 1
			st.FragmentsOccluded = 0
		}},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			iv := NewInvariants(tbr.DefaultConfig())
			st := validStats()
			tc.corrupt(&st)
			if err := iv.CheckFrame(&st); err != nil {
				t.Fatalf("record mode returned error: %v", err)
			}
			vs := iv.Violations()
			if len(vs) == 0 {
				t.Fatalf("corruption did not fire %s", tc.rule)
			}
			found := false
			for _, v := range vs {
				if v.Rule == tc.rule {
					found = true
					if v.Frame != st.Frame {
						t.Errorf("violation frame = %d, want %d", v.Frame, st.Frame)
					}
				}
			}
			if !found {
				t.Fatalf("expected rule %s, got %v", tc.rule, vs)
			}
		})
	}
}

func TestInvariantEnergyRules(t *testing.T) {
	// A model with a negative event energy drives frame energy below
	// zero: both the per-frame sign check and the cumulative
	// monotonicity check must fire.
	m := power.DefaultEnergyModel()
	m.FSInstr = -1e9
	iv := NewInvariants(tbr.DefaultConfig()).WithEnergyModel(m)
	st := validStats()
	st.FSInstrs = 1000
	if err := iv.CheckFrame(&st); err != nil {
		t.Fatalf("record mode returned error: %v", err)
	}
	rules := map[string]bool{}
	for _, v := range iv.Violations() {
		rules[v.Rule] = true
	}
	if !rules["energy-non-negative"] {
		t.Errorf("negative frame energy did not fire energy-non-negative: %v", iv.Violations())
	}
	if !rules["energy-monotonic"] {
		t.Errorf("negative frame energy did not fire energy-monotonic: %v", iv.Violations())
	}
}

func TestInvariantsStrictMode(t *testing.T) {
	iv := NewInvariants(tbr.DefaultConfig()).Strict()
	st := validStats()
	st.DRAM.Reads++ // breaks dram-access-conservation
	err := iv.CheckFrame(&st)
	if err == nil {
		t.Fatal("strict mode did not return an error on violation")
	}
	if !strings.Contains(err.Error(), "dram-access-conservation") {
		t.Errorf("error %q does not name the violated rule", err)
	}

	// Clean frames pass even in strict mode.
	st2 := validStats()
	if err := iv.CheckFrame(&st2); err != nil {
		t.Fatalf("strict mode rejected valid stats: %v", err)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Frame: 7, Rule: "cycle-accounting", Detail: "x"}
	s := v.String()
	for _, want := range []string{"7", "cycle-accounting", "x"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

// TestCheckerWiredIntoSimulator runs a real simulation with the checker
// attached and asserts it sees every frame without violations — the
// non-firing half of the acceptance criterion, over all three raster
// modes.
func TestCheckerWiredIntoSimulator(t *testing.T) {
	tr := smallTrace(t, 5)
	for _, tw := range []int{0, 1, 2} {
		cfg := tbr.DefaultConfig()
		cfg.TileWorkers = tw
		iv := NewInvariants(cfg).Strict()
		cfg.Check = iv
		stats, err := tbr.SimulateAllParallel(cfg, tr, 2, nil)
		if err != nil {
			t.Fatalf("TileWorkers=%d: %v", tw, err)
		}
		if len(stats) != tr.NumFrames() {
			t.Fatalf("TileWorkers=%d: simulated %d frames, want %d", tw, len(stats), tr.NumFrames())
		}
		if iv.Frames() != tr.NumFrames() {
			t.Errorf("TileWorkers=%d: checker saw %d frames, want %d", tw, iv.Frames(), tr.NumFrames())
		}
		if v := iv.Violations(); len(v) != 0 {
			t.Errorf("TileWorkers=%d: clean simulation violated invariants: %v", tw, v)
		}
	}
}

// TestCorruptStatsTripsChecker injects the statistics-corruption fault
// and asserts the invariant layer catches it — the firing half of the
// acceptance criterion, through the real simulator rather than
// fabricated stats.
func TestCorruptStatsTripsChecker(t *testing.T) {
	tr := smallTrace(t, 3)
	cfg := tbr.DefaultConfig()
	cfg.Faults = tbr.FaultConfig{CorruptStats: true}
	iv := NewInvariants(cfg)
	cfg.Check = iv
	if _, err := tbr.SimulateAllParallel(cfg, tr, 1, nil); err != nil {
		t.Fatalf("record-mode run errored: %v", err)
	}
	vs := iv.Violations()
	if len(vs) == 0 {
		t.Fatal("CorruptStats fault did not trip any invariant")
	}
	for _, v := range vs {
		if v.Rule != "cache-access-conservation" {
			t.Errorf("unexpected rule %s (want cache-access-conservation): %s", v.Rule, v)
		}
	}

	// In strict mode the same corruption aborts the run with an error
	// (the parallel driver converts the checker panic back).
	cfg2 := cfg
	cfg2.Check = NewInvariants(cfg2).Strict()
	if _, err := tbr.SimulateAllParallel(cfg2, tr, 1, nil); err == nil {
		t.Fatal("strict checker did not abort the corrupted run")
	}
}
