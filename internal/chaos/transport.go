package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// maxKeyBody bounds how much of a request body the transport inspects
// when deriving the chaos key. Fabric work units are capped well below
// this by the protocol's own limit.
const maxKeyBody = 1 << 20

// Event is one request's fault draw as it actually happened — the
// replayable chaos log. Two runs of the same plan under the same seed
// produce the same Events (in per-key order; cross-key interleaving
// follows scheduling, which is why keys carry the identity).
type Event struct {
	Key     string
	Attempt int
	Faults  []Class
}

// Transport is a deterministic fault-injecting http.RoundTripper. It
// wraps a real transport and, per request, draws every fault class from
// the seed-keyed roll stream: faults that prevent delivery (drop,
// partition) surface as transport errors, latency faults (delay, stall)
// sleep before sending, and body faults (truncate, corrupt) rewrite the
// response after a successful exchange. Safe for concurrent use.
type Transport struct {
	cfg  Config
	next http.RoundTripper

	mu       sync.Mutex
	attempts map[string]int // per-key occurrence count (1-based attempts)
	hostSeq  map[string]int // per-host request sequence, drives partition windows
	events   []Event
}

// NewTransport wraps next (nil = http.DefaultTransport) with
// deterministic fault injection under cfg.
func NewTransport(cfg Config, next http.RoundTripper) (*Transport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if next == nil {
		next = http.DefaultTransport
	}
	return &Transport{
		cfg:      cfg,
		next:     next,
		attempts: make(map[string]int),
		hostSeq:  make(map[string]int),
	}, nil
}

// Events returns a copy of the fault log so far: every request that
// drew at least one fault, in arrival order.
func (t *Transport) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Key derives a request's chaos identity. Frame dispatches — POSTs
// whose JSON body carries the fabric work-unit's fingerprint and frame
// — key on host|fingerprint#frame, so a frame keeps its fault fate
// across coordinator retries to the same worker while failover to
// another host draws a fresh stream. Anything else (heartbeat probes,
// health checks) keys on host|method path.
func Key(req *http.Request, body []byte) string {
	host := req.URL.Host
	if req.Method == http.MethodPost && len(body) > 0 {
		var unit struct {
			Fingerprint string `json:"fingerprint"`
			Frame       *int   `json:"frame"`
		}
		if err := json.Unmarshal(body, &unit); err == nil && unit.Fingerprint != "" && unit.Frame != nil {
			return fmt.Sprintf("%s|%s#%d", host, unit.Fingerprint, *unit.Frame)
		}
	}
	return host + "|" + req.Method + " " + req.URL.Path
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	var body []byte
	if req.Body != nil && req.Body != http.NoBody {
		b, err := io.ReadAll(io.LimitReader(req.Body, maxKeyBody))
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		body = b
		req = req.Clone(req.Context())
		req.Body = io.NopCloser(bytes.NewReader(body))
	}
	key := Key(req, body)
	host := req.URL.Host

	t.mu.Lock()
	t.attempts[key]++
	attempt := t.attempts[key]
	seq := t.hostSeq[host]
	t.hostSeq[host]++
	d := t.cfg.Decide(key, host, attempt, seq)
	if faults := d.Faults(); len(faults) > 0 {
		t.events = append(t.events, Event{Key: key, Attempt: attempt, Faults: faults})
	}
	t.mu.Unlock()

	if d.Partitioned {
		return nil, fmt.Errorf("chaos: partition: %s unreachable (key %s attempt %d)", host, key, attempt)
	}
	if d.Drop {
		return nil, fmt.Errorf("chaos: drop (key %s attempt %d)", key, attempt)
	}
	if d.Stall {
		if err := sleep(req, t.cfg.StallDelay); err != nil {
			return nil, err
		}
	}
	if d.Delay {
		if err := sleep(req, t.cfg.Delay); err != nil {
			return nil, err
		}
	}

	if d.Duplicate {
		// Deliver twice; the caller consumes the second response — a
		// retransmit racing its original. The first response is drained
		// and discarded so the connection can be reused.
		first, err := t.next.RoundTrip(cloneWithBody(req, body))
		if err == nil {
			io.Copy(io.Discard, first.Body)
			first.Body.Close()
		}
	}

	resp, err := t.next.RoundTrip(cloneWithBody(req, body))
	if err != nil {
		return nil, err
	}
	if !d.Truncate && !d.Corrupt {
		return resp, nil
	}

	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if d.Truncate && len(raw) > 1 {
		// Cut strictly inside the body at a deterministic point so the
		// result is a genuinely partial delivery, never a clean empty
		// or complete read.
		cut := 1 + int(Roll(t.cfg.Seed, key, attempt, ClassTruncate)*float64(len(raw)-1))
		raw = raw[:cut]
	}
	if d.Corrupt && len(raw) > 0 {
		bit := int(Roll(t.cfg.Seed, key, attempt+int(numClasses), ClassCorrupt) * float64(len(raw)*8))
		if bit >= len(raw)*8 {
			bit = len(raw)*8 - 1
		}
		raw = bytes.Clone(raw)
		raw[bit/8] ^= 1 << (bit % 8)
	}
	resp.Body = io.NopCloser(bytes.NewReader(raw))
	resp.ContentLength = int64(len(raw))
	resp.Header.Set("Content-Length", fmt.Sprint(len(raw)))
	return resp, nil
}

// cloneWithBody re-arms the request body for (re)delivery.
func cloneWithBody(req *http.Request, body []byte) *http.Request {
	out := req.Clone(req.Context())
	if body != nil {
		out.Body = io.NopCloser(bytes.NewReader(body))
	}
	return out
}

// sleep waits for d or until the request's context ends, whichever is
// first — a stalled request must still honor cancellation, or hedging
// could not reclaim the stuck attempt.
func sleep(req *http.Request, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-req.Context().Done():
		return req.Context().Err()
	}
}

// FaultNames renders a fault list for logs: "drop+stall".
func FaultNames(faults []Class) string {
	names := make([]string, len(faults))
	for i, f := range faults {
		names[i] = f.String()
	}
	return strings.Join(names, "+")
}
