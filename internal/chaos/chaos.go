// Package chaos is deterministic, seed-keyed network fault injection
// for the cluster fabric: an http.RoundTripper that perturbs the
// coordinator's view of its worker fleet — dropped, delayed, duplicated
// and stalled deliveries, truncated and bit-corrupted response bodies,
// partial partitions that cut one worker off for a window of requests —
// without ever touching the simulation itself.
//
// Every fault decision is a pure function of (Seed, request key,
// attempt, fault class), mirroring the tile-level discipline of
// tbr.FaultConfig one layer up: tbr keys its rolls on (seed, frame,
// tile, class) so an injected microarchitectural fault pattern is
// independent of scheduling, and chaos keys its rolls on (seed,
// fingerprint#frame@worker, attempt, class) so an injected network
// fault pattern is independent of goroutine interleaving. Two runs of
// the same request plan under the same seed inject the identical fault
// sequence — a failing chaos soak replays.
//
// The package knows the fabric's frame-dispatch shape (a POST whose
// body carries the campaign fingerprint and frame index) only to build
// stable keys; it works as a generic chaotic transport for any client.
package chaos

import (
	"fmt"
	"hash/fnv"
	"time"
)

// Class is one fault family. Each class draws an independent
// deterministic roll stream, so enabling one fault never shifts
// another's pattern (the same property tbr.FaultConfig keeps per tile).
type Class int

const (
	// ClassDrop drops the request before it is sent: the worker never
	// sees it and the client gets a transport error — a lost packet.
	ClassDrop Class = iota
	// ClassDelay holds the request for Config.Delay before sending —
	// ordinary network jitter, below any hedging deadline of interest.
	ClassDelay
	// ClassDuplicate delivers the request twice and returns the second
	// response — a retransmitted POST reaching an at-least-once worker.
	ClassDuplicate
	// ClassTruncate cuts the response body short — a connection torn
	// down mid-transfer.
	ClassTruncate
	// ClassCorrupt flips one bit of the response body — wire or memory
	// corruption that checksums exist to catch.
	ClassCorrupt
	// ClassStall holds the request for Config.StallDelay — a straggler
	// worker, the case hedged dispatch exists for.
	ClassStall
	// ClassPartition makes a worker unreachable for a whole window of
	// consecutive requests — a partial network partition: some peers
	// cut off while the rest of the fleet stays healthy.
	ClassPartition

	numClasses
)

// String names the class the way the event log spells it.
func (c Class) String() string {
	switch c {
	case ClassDrop:
		return "drop"
	case ClassDelay:
		return "delay"
	case ClassDuplicate:
		return "duplicate"
	case ClassTruncate:
		return "truncate"
	case ClassCorrupt:
		return "corrupt"
	case ClassStall:
		return "stall"
	case ClassPartition:
		return "partition"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// DefaultPartitionWindow is how many consecutive requests to one host
// a single partition roll covers when Config leaves it zero.
const DefaultPartitionWindow = 4

// Config configures the chaos transport. The zero value injects
// nothing. Rates are per-request probabilities in [0, 1]; all rolls
// derive from Seed, so a config is a complete, replayable description
// of a chaos run.
type Config struct {
	// Seed drives every fault roll. Same seed + same request plan =
	// byte-identical fault sequence.
	Seed uint64

	// DropRate drops requests before they reach the worker.
	DropRate float64

	// DelayRate delays requests by Delay before sending (Delay <= 0
	// disables the class even when the rate is set).
	DelayRate float64
	Delay     time.Duration

	// DuplicateRate delivers the request twice; the caller sees the
	// second response.
	DuplicateRate float64

	// TruncateRate truncates response bodies at a deterministic cut
	// point strictly inside the body.
	TruncateRate float64

	// CorruptRate flips one deterministic bit of the response body.
	CorruptRate float64

	// StallRate stalls requests for StallDelay before sending — the
	// straggler fault (StallDelay <= 0 disables the class).
	StallRate  float64
	StallDelay time.Duration

	// PartitionRate cuts a host off for PartitionWindow consecutive
	// requests at a time: the roll is keyed on the host and the window
	// index, so a rolled window fails every request in it.
	PartitionRate   float64
	PartitionWindow int
}

// Enabled reports whether any fault class can fire.
func (c *Config) Enabled() bool {
	return c.DropRate > 0 ||
		(c.DelayRate > 0 && c.Delay > 0) ||
		c.DuplicateRate > 0 ||
		c.TruncateRate > 0 ||
		c.CorruptRate > 0 ||
		(c.StallRate > 0 && c.StallDelay > 0) ||
		c.PartitionRate > 0
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"DropRate", c.DropRate},
		{"DelayRate", c.DelayRate},
		{"DuplicateRate", c.DuplicateRate},
		{"TruncateRate", c.TruncateRate},
		{"CorruptRate", c.CorruptRate},
		{"StallRate", c.StallRate},
		{"PartitionRate", c.PartitionRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("chaos: %s %v out of [0,1]", r.name, r.v)
		}
	}
	if c.PartitionWindow < 0 {
		return fmt.Errorf("chaos: PartitionWindow %d must be >= 0", c.PartitionWindow)
	}
	return nil
}

func (c *Config) partitionWindow() int {
	if c.PartitionWindow <= 0 {
		return DefaultPartitionWindow
	}
	return c.PartitionWindow
}

// StagingProfile is the moderate default the megsimd -chaos-seed flag
// arms: every fault class on at a rate a healthy fleet absorbs through
// failover, hedging and digest verification. Staging clusters run under
// it to prove the trust layer earns its keep before production traffic
// does the proving.
func StagingProfile(seed uint64) Config {
	return Config{
		Seed:          seed,
		DropRate:      0.05,
		DelayRate:     0.05,
		Delay:         5 * time.Millisecond,
		DuplicateRate: 0.03,
		TruncateRate:  0.02,
		CorruptRate:   0.02,
		StallRate:     0.02,
		StallDelay:    250 * time.Millisecond,
		PartitionRate: 0.02,
	}
}

// Roll returns the deterministic fault roll in [0, 1) for (seed, key,
// attempt, class): FNV-1a over the key mixed with the attempt and class
// through a splitmix64 finalizer — the same construction as
// tbr.FaultConfig.roll, with the string key hashed first. Pure
// function; exported so tests (and operators replaying an incident) can
// predict a chaos run without an HTTP stack.
func Roll(seed uint64, key string, attempt int, class Class) float64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := seed ^ h.Sum64() ^
		uint64(attempt)*0x9E3779B97F4A7C15 ^
		(uint64(class)+1)*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// Decision is the full set of faults one request attempt draws.
type Decision struct {
	// Key is the request's chaos identity (see Key).
	Key string
	// Attempt is the 1-based occurrence count of Key.
	Attempt int

	Drop        bool
	Delay       bool
	Duplicate   bool
	Truncate    bool
	Corrupt     bool
	Stall       bool
	Partitioned bool
}

// Faults lists the drawn fault classes in class order.
func (d *Decision) Faults() []Class {
	var out []Class
	for class, on := range []bool{d.Drop, d.Delay, d.Duplicate, d.Truncate, d.Corrupt, d.Stall, d.Partitioned} {
		if on {
			out = append(out, []Class{ClassDrop, ClassDelay, ClassDuplicate, ClassTruncate, ClassCorrupt, ClassStall, ClassPartition}[class])
		}
	}
	return out
}

// Decide draws every fault class for one attempt of one request — a
// pure function of the config, the request key, the per-key attempt
// number, and (for partitions) the host's request sequence number.
func (c *Config) Decide(key, host string, attempt, hostSeq int) Decision {
	d := Decision{Key: key, Attempt: attempt}
	if c.PartitionRate > 0 {
		window := hostSeq / c.partitionWindow()
		d.Partitioned = Roll(c.Seed, "host|"+host, window, ClassPartition) < c.PartitionRate
	}
	d.Drop = c.DropRate > 0 && Roll(c.Seed, key, attempt, ClassDrop) < c.DropRate
	d.Delay = c.DelayRate > 0 && c.Delay > 0 && Roll(c.Seed, key, attempt, ClassDelay) < c.DelayRate
	d.Duplicate = c.DuplicateRate > 0 && Roll(c.Seed, key, attempt, ClassDuplicate) < c.DuplicateRate
	d.Truncate = c.TruncateRate > 0 && Roll(c.Seed, key, attempt, ClassTruncate) < c.TruncateRate
	d.Corrupt = c.CorruptRate > 0 && Roll(c.Seed, key, attempt, ClassCorrupt) < c.CorruptRate
	d.Stall = c.StallRate > 0 && c.StallDelay > 0 && Roll(c.Seed, key, attempt, ClassStall) < c.StallRate
	return d
}
