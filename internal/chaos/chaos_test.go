package chaos

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func mustTransport(t *testing.T, cfg Config) *Transport {
	t.Helper()
	tr, err := NewTransport(cfg, nil)
	if err != nil {
		t.Fatalf("NewTransport: %v", err)
	}
	return tr
}

// echoServer returns body "payload" for every request and counts hits.
func echoServer(t *testing.T, payload string) (*httptest.Server, *int) {
	t.Helper()
	hits := new(int)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		*hits++
		io.Copy(io.Discard, r.Body)
		io.WriteString(w, payload)
	}))
	t.Cleanup(srv.Close)
	return srv, hits
}

func get(t *testing.T, tr *Transport, url string) (string, error) {
	t.Helper()
	client := &http.Client{Transport: tr}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func TestValidate(t *testing.T) {
	good := Config{Seed: 1, DropRate: 0.5, PartitionWindow: 3}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, cfg := range map[string]Config{
		"negative rate":    {DropRate: -0.1},
		"rate above one":   {CorruptRate: 1.5},
		"negative window":  {PartitionWindow: -1},
		"stall rate range": {StallRate: 2},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := NewTransport(Config{DropRate: 7}, nil); err == nil {
		t.Fatal("NewTransport accepted invalid config")
	}
}

func TestEnabled(t *testing.T) {
	cases := []struct {
		cfg  Config
		want bool
	}{
		{Config{}, false},
		{Config{Seed: 99}, false},
		{Config{DropRate: 0.1}, true},
		{Config{DelayRate: 0.5}, false}, // no Delay duration
		{Config{DelayRate: 0.5, Delay: time.Millisecond}, true},
		{Config{StallRate: 0.5}, false}, // no StallDelay
		{Config{StallRate: 0.5, StallDelay: time.Millisecond}, true},
		{Config{DuplicateRate: 0.1}, true},
		{Config{TruncateRate: 0.1}, true},
		{Config{CorruptRate: 0.1}, true},
		{Config{PartitionRate: 0.1}, true},
	}
	for i, c := range cases {
		if got := c.cfg.Enabled(); got != c.want {
			t.Errorf("case %d: Enabled() = %v, want %v", i, got, c.want)
		}
	}
	sp := StagingProfile(42)
	if !sp.Enabled() {
		t.Fatal("StagingProfile not enabled")
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("StagingProfile invalid: %v", err)
	}
	if sp.Seed != 42 {
		t.Fatalf("StagingProfile seed = %d", sp.Seed)
	}
}

func TestRollDeterministicAndDistinct(t *testing.T) {
	r1 := Roll(7, "w1|fp#3", 1, ClassDrop)
	if r2 := Roll(7, "w1|fp#3", 1, ClassDrop); r1 != r2 {
		t.Fatalf("Roll not deterministic: %v vs %v", r1, r2)
	}
	if r1 < 0 || r1 >= 1 {
		t.Fatalf("Roll out of [0,1): %v", r1)
	}
	// Different coordinates draw independent values.
	if Roll(7, "w1|fp#3", 1, ClassDrop) == Roll(7, "w1|fp#3", 2, ClassDrop) {
		t.Fatal("attempt did not change the roll")
	}
	if Roll(7, "w1|fp#3", 1, ClassDrop) == Roll(7, "w1|fp#3", 1, ClassDelay) {
		t.Fatal("class did not change the roll")
	}
	if Roll(7, "w1|fp#3", 1, ClassDrop) == Roll(8, "w1|fp#3", 1, ClassDrop) {
		t.Fatal("seed did not change the roll")
	}
	if Roll(7, "w1|fp#3", 1, ClassDrop) == Roll(7, "w2|fp#3", 1, ClassDrop) {
		t.Fatal("key did not change the roll")
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{
		ClassDrop:      "drop",
		ClassDelay:     "delay",
		ClassDuplicate: "duplicate",
		ClassTruncate:  "truncate",
		ClassCorrupt:   "corrupt",
		ClassStall:     "stall",
		ClassPartition: "partition",
		Class(99):      "class(99)",
	}
	for c, name := range want {
		if got := c.String(); got != name {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), got, name)
		}
	}
	d := Decision{Drop: true, Stall: true}
	if got := FaultNames(d.Faults()); got != "drop+stall" {
		t.Fatalf("FaultNames = %q", got)
	}
}

func TestKeyDerivation(t *testing.T) {
	body := []byte(`{"fingerprint":"abc123","frame":7,"workload":{}}`)
	req := httptest.NewRequest(http.MethodPost, "http://w1:8351/frame", bytes.NewReader(body))
	if got, want := Key(req, body), "w1:8351|abc123#7"; got != want {
		t.Fatalf("frame key = %q, want %q", got, want)
	}
	// Frame 0 is a real frame, not a missing field.
	body0 := []byte(`{"fingerprint":"abc123","frame":0}`)
	req0 := httptest.NewRequest(http.MethodPost, "http://w1:8351/frame", bytes.NewReader(body0))
	if got, want := Key(req0, body0), "w1:8351|abc123#0"; got != want {
		t.Fatalf("frame-0 key = %q, want %q", got, want)
	}
	// Non-frame requests key on method+path.
	hb := httptest.NewRequest(http.MethodGet, "http://w1:8351/healthz", nil)
	if got, want := Key(hb, nil), "w1:8351|GET /healthz"; got != want {
		t.Fatalf("probe key = %q, want %q", got, want)
	}
	// A POST with a non-unit body falls back to method+path.
	junk := []byte(`{"other":true}`)
	jr := httptest.NewRequest(http.MethodPost, "http://w1:8351/frame", bytes.NewReader(junk))
	if got, want := Key(jr, junk), "w1:8351|POST /frame"; got != want {
		t.Fatalf("junk-body key = %q, want %q", got, want)
	}
}

// TestDeterministicEventLog is the determinism contract: two transports
// with the same seed, replaying the same request plan, log the same
// fault sequence event for event.
func TestDeterministicEventLog(t *testing.T) {
	srv, _ := echoServer(t, strings.Repeat("x", 256))
	cfg := StagingProfile(1234)
	// Crank rates so a short plan draws plenty of faults.
	cfg.DropRate, cfg.TruncateRate, cfg.CorruptRate, cfg.DuplicateRate = 0.3, 0.3, 0.3, 0.3
	cfg.DelayRate, cfg.Delay = 0.3, time.Microsecond
	cfg.StallRate, cfg.StallDelay = 0.3, time.Microsecond
	cfg.PartitionRate, cfg.PartitionWindow = 0.2, 2

	plan := func(tr *Transport) {
		client := &http.Client{Transport: tr}
		for frame := 0; frame < 8; frame++ {
			body := fmt.Sprintf(`{"fingerprint":"fp-golden","frame":%d}`, frame)
			// Two attempts per frame: retries advance the attempt axis.
			for try := 0; try < 2; try++ {
				resp, err := client.Post(srv.URL+"/frame", "application/json", strings.NewReader(body))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
			client.Get(srv.URL + "/healthz")
		}
	}

	run := func() []Event {
		tr := mustTransport(t, cfg)
		plan(tr)
		return tr.Events()
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("plan drew no faults; test has no teeth")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("fault logs diverge:\n run1: %+v\n run2: %+v", first, second)
	}
	// A different seed draws a different sequence (overwhelmingly).
	cfg.Seed++
	tr := mustTransport(t, cfg)
	plan(tr)
	if reflect.DeepEqual(first, tr.Events()) {
		t.Fatal("different seed produced identical fault log")
	}
}

func TestDropReturnsTransportError(t *testing.T) {
	srv, hits := echoServer(t, "ok")
	tr := mustTransport(t, Config{Seed: 1, DropRate: 1})
	if _, err := get(t, tr, srv.URL); err == nil || !strings.Contains(err.Error(), "drop") {
		t.Fatalf("expected drop error, got %v", err)
	}
	if *hits != 0 {
		t.Fatalf("dropped request reached the server (%d hits)", *hits)
	}
}

func TestPartitionCoversWindow(t *testing.T) {
	srv, hits := echoServer(t, "ok")
	tr := mustTransport(t, Config{Seed: 1, PartitionRate: 1, PartitionWindow: 3})
	for i := 0; i < 3; i++ {
		if _, err := get(t, tr, srv.URL); err == nil || !strings.Contains(err.Error(), "partition") {
			t.Fatalf("request %d: expected partition error, got %v", i, err)
		}
	}
	if *hits != 0 {
		t.Fatalf("partitioned requests reached the server (%d hits)", *hits)
	}
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("expected 3 partition events, got %d", len(ev))
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	srv, hits := echoServer(t, "ok")
	tr := mustTransport(t, Config{Seed: 1, DuplicateRate: 1})
	body, err := get(t, tr, srv.URL)
	if err != nil {
		t.Fatalf("duplicate request failed: %v", err)
	}
	if body != "ok" {
		t.Fatalf("body = %q", body)
	}
	if *hits != 2 {
		t.Fatalf("duplicate delivered %d times, want 2", *hits)
	}
}

func TestTruncateCutsBody(t *testing.T) {
	const payload = "0123456789abcdef"
	srv, _ := echoServer(t, payload)
	tr := mustTransport(t, Config{Seed: 1, TruncateRate: 1})
	body, err := get(t, tr, srv.URL)
	if err != nil {
		t.Fatalf("truncated request failed: %v", err)
	}
	if len(body) == 0 || len(body) >= len(payload) {
		t.Fatalf("truncation produced %d bytes of %d; want strictly partial", len(body), len(payload))
	}
	if !strings.HasPrefix(payload, body) {
		t.Fatalf("truncated body %q is not a prefix of %q", body, payload)
	}
	// Deterministic cut point.
	tr2 := mustTransport(t, Config{Seed: 1, TruncateRate: 1})
	body2, _ := get(t, tr2, srv.URL)
	if body != body2 {
		t.Fatalf("truncation cut differs across runs: %q vs %q", body, body2)
	}
}

func TestCorruptFlipsOneBit(t *testing.T) {
	const payload = "0123456789abcdef"
	srv, _ := echoServer(t, payload)
	tr := mustTransport(t, Config{Seed: 1, CorruptRate: 1})
	body, err := get(t, tr, srv.URL)
	if err != nil {
		t.Fatalf("corrupted request failed: %v", err)
	}
	if len(body) != len(payload) {
		t.Fatalf("corruption changed length: %d vs %d", len(body), len(payload))
	}
	diff := 0
	for i := range body {
		for bit := 0; bit < 8; bit++ {
			if (body[i]^payload[i])>>bit&1 == 1 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diff)
	}
}

func TestDelayAndStallSleep(t *testing.T) {
	srv, _ := echoServer(t, "ok")
	const hold = 30 * time.Millisecond
	tr := mustTransport(t, Config{Seed: 1, StallRate: 1, StallDelay: hold, DelayRate: 1, Delay: hold})
	start := time.Now()
	if _, err := get(t, tr, srv.URL); err != nil {
		t.Fatalf("stalled request failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 2*hold {
		t.Fatalf("stall+delay held %v, want >= %v", elapsed, 2*hold)
	}
}

func TestStallHonorsContextCancel(t *testing.T) {
	srv, hits := echoServer(t, "ok")
	tr := mustTransport(t, Config{Seed: 1, StallRate: 1, StallDelay: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := (&http.Client{Transport: tr}).Do(req)
	if err == nil {
		t.Fatal("expected context error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel did not interrupt the stall (took %v)", elapsed)
	}
	if *hits != 0 {
		t.Fatalf("cancelled stall still reached the server (%d hits)", *hits)
	}
}

func TestZeroConfigPassesThrough(t *testing.T) {
	srv, hits := echoServer(t, "clean")
	tr := mustTransport(t, Config{})
	for i := 0; i < 5; i++ {
		body, err := get(t, tr, srv.URL)
		if err != nil || body != "clean" {
			t.Fatalf("request %d: body %q err %v", i, body, err)
		}
	}
	if *hits != 5 {
		t.Fatalf("server saw %d hits, want 5", *hits)
	}
	if ev := tr.Events(); len(ev) != 0 {
		t.Fatalf("zero config logged events: %+v", ev)
	}
}

// TestAttemptAxisAdvances: retrying the same frame draws a fresh roll
// rather than repeating its fate forever — a frame dropped once is not
// dropped eternally.
func TestAttemptAxisAdvances(t *testing.T) {
	srv, _ := echoServer(t, "ok")
	// Pick a seed where fp#0 attempt 1 drops but some later attempt
	// under rate 0.5 does not.
	cfg := Config{DropRate: 0.5}
	key := ""
	for seed := uint64(0); ; seed++ {
		cfg.Seed = seed
		// derive the runtime key the transport will use
		u := srv.URL[len("http://"):]
		key = u + "|fp#0"
		if Roll(seed, key, 1, ClassDrop) < 0.5 && Roll(seed, key, 2, ClassDrop) >= 0.5 {
			break
		}
	}
	tr := mustTransport(t, cfg)
	client := &http.Client{Transport: tr}
	post := func() error {
		resp, err := client.Post(srv.URL+"/frame", "application/json",
			strings.NewReader(`{"fingerprint":"fp","frame":0}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return err
	}
	if err := post(); err == nil {
		t.Fatal("attempt 1 should have dropped")
	}
	if err := post(); err != nil {
		t.Fatalf("attempt 2 should have succeeded: %v", err)
	}
	ev := tr.Events()
	if len(ev) != 1 || ev[0].Attempt != 1 || ev[0].Key != key {
		t.Fatalf("unexpected event log: %+v", ev)
	}
}
