// Package harness orchestrates complete MEGsim studies: workload
// generation, functional characterization, cluster selection,
// cycle-level simulation (full sequence and representatives only), and
// accuracy evaluation. The experiment harness (cmd/experiments and the
// root bench suite) builds every paper table and figure from the
// cached per-benchmark results this package produces.
package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/funcsim"
	"repro/internal/gltrace"
	"repro/internal/obs"
	"repro/internal/tbr"
	"repro/internal/workload"
)

// Options configures a study.
type Options struct {
	// Ctx, when non-nil, bounds the study: cancellation (or deadline
	// expiry) stops the simulation passes at the next frame boundary
	// and surfaces the context's error. Nil means context.Background().
	Ctx context.Context
	// GPU is the timing-simulator configuration (Table I defaults).
	GPU tbr.Config
	// MEGsim is the methodology configuration.
	MEGsim core.Config
	// Scale is the workload scale.
	Scale workload.Scale
	// Workers bounds the goroutines used for the parallel ground-truth
	// pass (0 = GOMAXPROCS). Affects wall clock only, never results.
	Workers int
	// TileWorkers enables the tile-parallel raster stage inside each
	// simulated frame (0 = the serial warm-cache raster stage). It
	// composes with Workers — frames fan out across Workers, tiles
	// within each frame across TileWorkers — and never affects results:
	// every TileWorkers >= 1 setting is byte-identical. Ignored when the
	// caller already set GPU.TileWorkers explicitly.
	TileWorkers int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// Obs, when non-nil and enabled, receives metrics and timeline
	// spans from every study phase: functional characterization,
	// cluster selection and cycle simulation. It is threaded into
	// GPU.Obs and MEGsim.Search.Obs (without overriding registries the
	// caller set there explicitly).
	Obs *obs.Registry
}

// ctx returns the study context (Background when unset).
func (o *Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// wireObs propagates opts.Obs and opts.TileWorkers into the phase
// configurations.
func (o *Options) wireObs() {
	if o.TileWorkers > 0 && o.GPU.TileWorkers == 0 {
		o.GPU.TileWorkers = o.TileWorkers
	}
	if !o.Obs.Enabled() {
		return
	}
	if o.GPU.Obs == nil {
		o.GPU.Obs = o.Obs
	}
	if o.MEGsim.Search.Obs == nil {
		o.MEGsim.Search.Obs = o.Obs
	}
}

// DefaultOptions returns paper-default settings at the experiment scale.
func DefaultOptions() Options {
	return Options{
		GPU:    tbr.DefaultConfig(),
		MEGsim: core.DefaultConfig(),
		Scale:  workload.DefaultScale,
	}
}

// TestOptions returns small, fast settings for tests.
func TestOptions() Options {
	return Options{
		GPU:    tbr.DefaultConfig(),
		MEGsim: core.DefaultConfig(),
		Scale:  workload.TestScale,
	}
}

// BenchmarkResult is everything computed for one benchmark.
type BenchmarkResult struct {
	Profile workload.Profile
	Trace   *gltrace.Trace
	// Func is the functional characterization (MEGsim's cheap pass).
	Func *funcsim.Result
	// Features is the N x D matrix of characteristics.
	Features *core.FeatureSet
	// Selection is MEGsim's clustering + representatives.
	Selection *core.Selection
	// Full holds per-frame ground-truth stats from the cycle simulator.
	Full []tbr.FrameStats
	// FullTotals is the summed ground truth.
	FullTotals tbr.FrameStats
	// Estimate is MEGsim's extrapolation from the representatives.
	Estimate tbr.FrameStats
	// Accuracy is the per-metric relative error of Estimate vs
	// FullTotals (Fig. 7).
	Accuracy core.Accuracy

	// Timing of the study phases (wall clock), for speedup reporting.
	FuncSimTime    time.Duration
	SelectTime     time.Duration
	FullSimTime    time.Duration
	SampledSimTime time.Duration
}

// Run executes the complete study for one benchmark: trace generation,
// functional characterization, MEGsim selection, full-sequence ground
// truth, representative-only simulation, and accuracy evaluation.
func Run(p workload.Profile, opts Options) (*BenchmarkResult, error) {
	opts.wireObs()
	if err := opts.ctx().Err(); err != nil {
		return nil, err
	}
	res := &BenchmarkResult{Profile: p}
	logf(opts.Log, "[%s] generating trace", p.Alias)
	tr, err := workload.Generate(p, opts.Scale)
	if err != nil {
		return nil, err
	}
	res.Trace = tr

	logf(opts.Log, "[%s] functional characterization of %d frames", p.Alias, tr.NumFrames())
	t0 := time.Now()
	fr, err := funcsim.RunObs(tr, opts.Obs)
	if err != nil {
		return nil, err
	}
	res.Func = fr
	res.FuncSimTime = time.Since(t0)

	t0 = time.Now()
	if err := res.selectFrames(opts); err != nil {
		return nil, err
	}
	res.SelectTime = time.Since(t0)
	logf(opts.Log, "[%s] MEGsim selected %d/%d frames (%.0fx reduction)",
		p.Alias, res.Selection.NumRepresentatives(), tr.NumFrames(), res.Selection.ReductionFactor())

	logf(opts.Log, "[%s] full-sequence cycle simulation", p.Alias)
	t0 = time.Now()
	if opts.GPU.FlushCachesPerFrame {
		// Frame isolation makes parallel simulation bit-identical to
		// the sequential pass, so the ground truth uses all cores.
		res.Full, err = tbr.SimulateAllParallelCtx(opts.ctx(), opts.GPU, tr, opts.Workers, nil)
		if err != nil {
			return nil, err
		}
	} else {
		sim, err := tbr.New(opts.GPU, tr)
		if err != nil {
			return nil, err
		}
		res.Full = sim.SimulateAll(nil)
	}
	res.FullSimTime = time.Since(t0)
	res.FullTotals = core.SumStats(res.Full)

	// Representative-only simulation, exactly as a MEGsim user would
	// run it (same parallelism as the ground-truth pass so the
	// reported time speedup is apples-to-apples).
	t0 = time.Now()
	repStats, err := simulateReps(opts, tr, res.Selection.Representatives)
	if err != nil {
		return nil, err
	}
	res.SampledSimTime = time.Since(t0)
	res.Estimate, err = res.Selection.Estimate(repStats)
	if err != nil {
		return nil, err
	}
	res.Accuracy = core.EvaluateAccuracy(&res.Estimate, &res.FullTotals)
	logf(opts.Log, "[%s] accuracy: cycles %.2f%%, dram %.2f%%, l2 %.2f%%, tile %.2f%%",
		p.Alias, res.Accuracy.Percent(core.MetricCycles), res.Accuracy.Percent(core.MetricDRAM),
		res.Accuracy.Percent(core.MetricL2), res.Accuracy.Percent(core.MetricTileCache))
	return res, nil
}

// RunSampledOnly executes only what a MEGsim user needs in production:
// characterization, selection and representative simulation — no
// ground-truth pass. Returns the result with Full/FullTotals/Accuracy
// unset.
func RunSampledOnly(p workload.Profile, opts Options) (*BenchmarkResult, error) {
	opts.wireObs()
	if err := opts.ctx().Err(); err != nil {
		return nil, err
	}
	res := &BenchmarkResult{Profile: p}
	tr, err := workload.Generate(p, opts.Scale)
	if err != nil {
		return nil, err
	}
	res.Trace = tr
	t0 := time.Now()
	fr, err := funcsim.RunObs(tr, opts.Obs)
	if err != nil {
		return nil, err
	}
	res.Func = fr
	res.FuncSimTime = time.Since(t0)

	t0 = time.Now()
	if err := res.selectFrames(opts); err != nil {
		return nil, err
	}
	res.SelectTime = time.Since(t0)

	t0 = time.Now()
	repStats, err := simulateReps(opts, tr, res.Selection.Representatives)
	if err != nil {
		return nil, err
	}
	res.SampledSimTime = time.Since(t0)
	res.Estimate, err = res.Selection.Estimate(repStats)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// simulateReps cycle-simulates exactly the representative frames,
// in parallel when frame isolation allows it.
func simulateReps(opts Options, tr *gltrace.Trace, reps []int) (map[int]tbr.FrameStats, error) {
	repStats := make(map[int]tbr.FrameStats, len(reps))
	if opts.GPU.FlushCachesPerFrame {
		stats, err := tbr.SimulateFramesParallelCtx(opts.ctx(), opts.GPU, tr, reps, opts.Workers)
		if err != nil {
			return nil, err
		}
		for i, f := range reps {
			repStats[f] = stats[i]
		}
		return repStats, nil
	}
	sim, err := tbr.New(opts.GPU, tr)
	if err != nil {
		return nil, err
	}
	for _, f := range reps {
		if err := opts.ctx().Err(); err != nil {
			return nil, err
		}
		repStats[f] = sim.SimulateFrame(f)
	}
	return repStats, nil
}

func (r *BenchmarkResult) selectFrames(opts Options) error {
	fs, err := core.BuildFeatures(r.Func, opts.MEGsim.Feature)
	if err != nil {
		return err
	}
	r.Features = fs
	sel, err := core.Select(fs, opts.MEGsim)
	if err != nil {
		return err
	}
	r.Selection = sel
	return nil
}

// SpeedupFrames returns the Table III reduction factor.
func (r *BenchmarkResult) SpeedupFrames() float64 {
	return r.Selection.ReductionFactor()
}

// SpeedupTime returns the measured wall-clock cycle-simulation speedup
// (full pass vs representatives-only pass).
func (r *BenchmarkResult) SpeedupTime() float64 {
	if r.SampledSimTime <= 0 {
		return 0
	}
	return float64(r.FullSimTime) / float64(r.SampledSimTime)
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}
