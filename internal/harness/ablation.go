package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/tbr"
	"repro/internal/xmath/stats"
)

// AblationRow is one configuration variant's outcome on a benchmark.
type AblationRow struct {
	Name      string
	Frames    int
	CyclesErr float64 // percent
	DRAMErr   float64 // percent
}

// AblationTable re-runs MEGsim's selection under variants of the
// methodology configuration on one benchmark, reusing the cached ground
// truth, and reports each variant's representative count and estimation
// error — the design-choice study DESIGN.md calls out.
func (s *Study) AblationTable(alias string) (*report.Table, []AblationRow, error) {
	r, err := s.Result(alias)
	if err != nil {
		return nil, nil, err
	}
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"paper-config", func(*core.Config) {}},
		{"uniform-weights", func(c *core.Config) { c.Feature.Weights = core.UniformWeights }},
		{"no-texture-weights", func(c *core.Config) { c.Feature.UseTextureWeights = false }},
		{"no-prim", func(c *core.Config) { c.Feature.IncludePrim = false }},
		{"threshold-0.70", func(c *core.Config) { c.Search.Threshold = 0.70 }},
		{"threshold-0.95", func(c *core.Config) { c.Search.Threshold = 0.95 }},
		{"paper-stop-rule", func(c *core.Config) { c.Search.Patience = 1 }},
	}

	t := report.NewTable(fmt.Sprintf("Ablations on %s (cycles/dram error vs ground truth)", alias),
		"variant", "frames", "cycles-err(%)", "dram-err(%)")
	var rows []AblationRow
	for _, v := range variants {
		cfg := s.Opts.MEGsim
		v.mutate(&cfg)
		fs, err := core.BuildFeatures(r.Func, cfg.Feature)
		if err != nil {
			return nil, nil, err
		}
		sel, err := core.Select(fs, cfg)
		if err != nil {
			return nil, nil, err
		}
		est, err := sel.EstimateFromFullRun(r.Full)
		if err != nil {
			return nil, nil, err
		}
		acc := core.EvaluateAccuracy(&est, &r.FullTotals)
		row := AblationRow{
			Name:      v.name,
			Frames:    sel.NumRepresentatives(),
			CyclesErr: acc.Percent(core.MetricCycles),
			DRAMErr:   acc.Percent(core.MetricDRAM),
		}
		rows = append(rows, row)
		t.AddRow(row.Name, row.Frames, row.CyclesErr, row.DRAMErr)
	}
	return t, rows, nil
}

// ASSIStudy quantifies the architectural-state starting-image question
// the paper sidesteps with per-frame cold starts: it simulates a window
// of frames with caches flushed per frame (the MEGsim assumption) and
// with caches kept warm across frames, and reports how much the
// per-frame statistics differ. Small deltas justify simulating cluster
// representatives in isolation.
func (s *Study) ASSIStudy(alias string, window int) (*report.Table, error) {
	r, err := s.Result(alias)
	if err != nil {
		return nil, err
	}
	if window <= 0 || window > r.Trace.NumFrames() {
		window = r.Trace.NumFrames()
	}
	warmCfg := s.Opts.GPU
	warmCfg.FlushCachesPerFrame = false
	warmSim, err := tbr.New(warmCfg, r.Trace)
	if err != nil {
		return nil, err
	}

	var coldCycles, warmCycles, coldDRAM, warmDRAM float64
	deltas := make([]float64, 0, window)
	for f := 0; f < window; f++ {
		cold := r.Full[f] // cached cold-start ground truth
		warm := warmSim.SimulateFrame(f)
		coldCycles += float64(cold.Cycles)
		warmCycles += float64(warm.Cycles)
		coldDRAM += float64(cold.DRAM.Accesses)
		warmDRAM += float64(warm.DRAM.Accesses)
		deltas = append(deltas, stats.RelativeError(float64(cold.Cycles), float64(warm.Cycles)))
	}

	t := report.NewTable(fmt.Sprintf("ASSI study on %s (%d frames): cold-start vs warm caches", alias, window),
		"metric", "cold-start", "warm", "delta(%)")
	t.AddRow("total cycles", fmt.Sprintf("%.0f", coldCycles), fmt.Sprintf("%.0f", warmCycles),
		stats.RelativeError(coldCycles, warmCycles)*100)
	t.AddRow("dram accesses", fmt.Sprintf("%.0f", coldDRAM), fmt.Sprintf("%.0f", warmDRAM),
		stats.RelativeError(coldDRAM, warmDRAM)*100)
	t.AddRow("per-frame cycles delta p95", "", "", stats.Percentile(deltas, 95)*100)
	return t, nil
}
