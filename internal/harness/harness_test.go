package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/tbr"
	"repro/internal/workload"
)

// testStudy builds a study over two small benchmarks.
func testStudy(t *testing.T) *Study {
	t.Helper()
	s := NewStudy(TestOptions())
	s.Aliases = []string{"hcr", "jjo"}
	return s
}

func TestRunEndToEnd(t *testing.T) {
	r, err := Run(workload.Profiles["hcr"], TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Selection.NumRepresentatives() == 0 {
		t.Fatal("no representatives selected")
	}
	if r.Selection.NumRepresentatives() >= r.Trace.NumFrames() {
		t.Fatal("no reduction achieved")
	}
	if len(r.Full) != r.Trace.NumFrames() {
		t.Fatal("ground truth incomplete")
	}
	// Estimates must be in the ballpark of the truth even on the tiny
	// test workload (loose bound; the experiment scale is tighter).
	for _, m := range core.Metrics() {
		if r.Accuracy[m] > 0.25 {
			t.Errorf("%v error %.1f%% too large", m, r.Accuracy.Percent(m))
		}
	}
	if r.FullSimTime <= 0 || r.SampledSimTime <= 0 || r.FuncSimTime <= 0 {
		t.Fatal("timings not recorded")
	}
}

func TestRunSampledOnlySkipsGroundTruth(t *testing.T) {
	r, err := RunSampledOnly(workload.Profiles["hcr"], TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Full != nil {
		t.Fatal("sampled-only run produced ground truth")
	}
	if r.Estimate.Cycles == 0 {
		t.Fatal("no estimate produced")
	}
}

func TestSampledOnlyMatchesFullStudyEstimate(t *testing.T) {
	opts := TestOptions()
	full, err := Run(workload.Profiles["jjo"], opts)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := RunSampledOnly(workload.Profiles["jjo"], opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Estimate != sampled.Estimate {
		t.Fatal("estimates differ between full study and sampled-only run")
	}
}

func TestTileWorkersOptionDoesNotAffectResults(t *testing.T) {
	// Options.TileWorkers must thread into the GPU config, and any
	// worker count >= 1 must produce identical estimates.
	one := TestOptions()
	one.TileWorkers = 1
	four := TestOptions()
	four.TileWorkers = 4
	a, err := RunSampledOnly(workload.Profiles["hcr"], one)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSampledOnly(workload.Profiles["hcr"], four)
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate != b.Estimate {
		t.Fatalf("estimate depends on tile-worker count:\n1: %+v\n4: %+v", a.Estimate, b.Estimate)
	}
}

func TestStudyCachesResults(t *testing.T) {
	s := testStudy(t)
	a, err := s.Result("hcr")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Result("hcr")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("study did not cache the result")
	}
	if _, err := s.Result("nope"); err == nil {
		t.Fatal("accepted unknown alias")
	}
}

func TestStudyTables(t *testing.T) {
	s := testStudy(t)

	t2, err := s.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if t2.NumRows() != 2 {
		t.Fatalf("Table II rows = %d", t2.NumRows())
	}

	t3, err := s.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if t3.NumRows() != 3 { // 2 benchmarks + average
		t.Fatalf("Table III rows = %d", t3.NumRows())
	}

	f3, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f3.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "VSCV") {
		t.Fatal("Fig 3 table missing headers")
	}

	f4, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if f4.NumRows() != 3 {
		t.Fatalf("Fig 4 rows = %d", f4.NumRows())
	}

	f7, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if f7.NumRows() != 3 {
		t.Fatalf("Fig 7 rows = %d", f7.NumRows())
	}

	sp, err := s.SpeedupTable()
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumRows() != 2 {
		t.Fatalf("speedup rows = %d", sp.NumRows())
	}
}

func TestStudyFig5AndFig6Images(t *testing.T) {
	s := testStudy(t)
	var pgm bytes.Buffer
	if err := s.Fig5("hcr", 50, &pgm); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(pgm.Bytes(), []byte("P5\n50 50\n")) {
		t.Fatalf("Fig 5 header: %q", pgm.Bytes()[:10])
	}
	var ppm bytes.Buffer
	if err := s.Fig6("hcr", 50, &ppm); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(ppm.Bytes(), []byte("P6\n50 50\n")) {
		t.Fatalf("Fig 6 header: %q", ppm.Bytes()[:10])
	}
}

func TestStudyTableIV(t *testing.T) {
	s := testStudy(t)
	cfg := DefaultTableIVConfig()
	cfg.RandomTrials = 100
	cfg.MEGsimTrials = 5
	tbl, rows, err := s.TableIV(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || tbl.NumRows() != 3 {
		t.Fatalf("rows = %d/%d", len(rows), tbl.NumRows())
	}
	for _, row := range rows {
		if row.RandomFrames < 1 {
			t.Fatalf("%s: random frames = %d", row.Alias, row.RandomFrames)
		}
		if row.MEGsimFrames < 1 {
			t.Fatalf("%s: megsim frames = %d", row.Alias, row.MEGsimFrames)
		}
		// Random sub-sampling should need at least as many frames as
		// MEGsim on structured workloads.
		if row.ReductionFactor < 1 {
			t.Logf("%s: reduction %.1fx < 1 (acceptable on tiny test workloads)", row.Alias, row.ReductionFactor)
		}
	}
}

func TestGeoMeanReduction(t *testing.T) {
	s := testStudy(t)
	g, err := s.GeoMeanReduction()
	if err != nil {
		t.Fatal(err)
	}
	if g <= 1 {
		t.Fatalf("geomean reduction = %v", g)
	}
}

func TestClusterSummary(t *testing.T) {
	s := testStudy(t)
	line, err := s.ClusterSummary("hcr")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "hcr: k=") {
		t.Fatalf("summary = %q", line)
	}
}

func TestVaryGPUConfig(t *testing.T) {
	s := testStudy(t)
	gpu := tbr.DefaultConfig()
	gpu.L2.SizeBytes = 64 << 10 // smaller L2
	est, actual, err := s.VaryGPUConfig("hcr", gpu, true)
	if err != nil {
		t.Fatal(err)
	}
	if est.Cycles == 0 || actual.Cycles == 0 {
		t.Fatal("empty results")
	}
	acc := core.EvaluateAccuracy(&est, &actual)
	if acc[core.MetricCycles] > 0.25 {
		t.Fatalf("design-space estimate error %.1f%% too large", acc.Percent(core.MetricCycles))
	}
	// The baseline selection must transfer: smaller L2 means more DRAM
	// accesses than the default config's ground truth.
	base, err := s.Result("hcr")
	if err != nil {
		t.Fatal(err)
	}
	if actual.DRAM.Accesses <= base.FullTotals.DRAM.Accesses {
		t.Fatalf("shrinking L2 did not increase DRAM traffic: %d vs %d",
			actual.DRAM.Accesses, base.FullTotals.DRAM.Accesses)
	}
}

func TestAblationTable(t *testing.T) {
	s := testStudy(t)
	tbl, rows, err := s.AblationTable("hcr")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 6 || tbl.NumRows() != len(rows) {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Name != "paper-config" {
		t.Fatalf("first variant = %s", rows[0].Name)
	}
	for _, row := range rows {
		if row.Frames <= 0 {
			t.Errorf("%s: no frames selected", row.Name)
		}
		if row.CyclesErr < 0 || row.CyclesErr > 100 {
			t.Errorf("%s: implausible error %v%%", row.Name, row.CyclesErr)
		}
	}
	// The threshold trade-off must hold: T=0.95 selects at least as many
	// frames as T=0.70.
	var lo, hi int
	for _, row := range rows {
		switch row.Name {
		case "threshold-0.70":
			lo = row.Frames
		case "threshold-0.95":
			hi = row.Frames
		}
	}
	if hi < lo {
		t.Fatalf("T=0.95 chose fewer frames (%d) than T=0.70 (%d)", hi, lo)
	}
}

func TestASSIStudy(t *testing.T) {
	s := testStudy(t)
	tbl, err := s.ASSIStudy("hcr", 30)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestClusterErrorTable(t *testing.T) {
	s := testStudy(t)
	tbl, rows, err := s.ClusterErrorTable("hcr", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || tbl.NumRows() != len(rows) {
		t.Fatalf("rows = %d", len(rows))
	}
	r, _ := s.Result("hcr")
	// Contributions over ALL clusters must sum to the signed total
	// estimation error.
	_, all, err := s.ClusterErrorTable("hcr", 0)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, row := range all {
		sum += row.Contribution
	}
	signed := float64(r.Estimate.Cycles) - float64(r.FullTotals.Cycles)
	if diff := sum - signed; diff > 1 || diff < -1 {
		t.Fatalf("contributions sum to %v, want %v", sum, signed)
	}
	// Rows are sorted by magnitude.
	for i := 1; i < len(all); i++ {
		if abs64(all[i].Contribution) > abs64(all[i-1].Contribution)+1e-9 {
			t.Fatal("rows not sorted by |contribution|")
		}
	}
}

func TestPresetTable(t *testing.T) {
	s := testStudy(t)
	tbl, err := s.PresetTable("hcr")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 5 { // lowend, mali450, highend, tbdr, tiled
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}
