package harness

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/simmatrix"
	"repro/internal/tbr"
	"repro/internal/workload"
	"repro/internal/xmath/stats"
)

// Study runs and caches per-benchmark results so the different tables
// and figures share the expensive full-sequence simulations.
type Study struct {
	Opts    Options
	results map[string]*BenchmarkResult
	// Aliases restricts the benchmark set (nil = all of Table II).
	Aliases []string
}

// NewStudy creates an empty study.
func NewStudy(opts Options) *Study {
	return &Study{Opts: opts, results: make(map[string]*BenchmarkResult)}
}

func (s *Study) aliases() []string {
	if len(s.Aliases) > 0 {
		return s.Aliases
	}
	return workload.Aliases()
}

// Result returns the (cached) complete study result for a benchmark.
func (s *Study) Result(alias string) (*BenchmarkResult, error) {
	if r, ok := s.results[alias]; ok {
		return r, nil
	}
	p, err := workload.Get(alias)
	if err != nil {
		return nil, err
	}
	r, err := Run(p, s.Opts)
	if err != nil {
		return nil, err
	}
	s.results[alias] = r
	return r, nil
}

// TableII reproduces Table II: the benchmark set characteristics, with
// cycles and IPC measured on our simulator.
func (s *Study) TableII() (*report.Table, error) {
	t := report.NewTable("Table II: Evaluated benchmark set",
		"benchmark", "alias", "type", "frames", "vertex-shaders", "fragment-shaders", "cycles(M)", "ipc")
	for _, a := range s.aliases() {
		r, err := s.Result(a)
		if err != nil {
			return nil, err
		}
		total := r.FullTotals
		t.AddRow(r.Profile.Title, a, r.Profile.Type.String(), r.Trace.NumFrames(),
			len(r.Trace.VertexShaders), len(r.Trace.FragmentShaders),
			float64(total.Cycles)/1e6, total.IPC())
	}
	return t, nil
}

// TableIII reproduces Table III: the reduction factor in the number of
// frames per benchmark.
func (s *Study) TableIII() (*report.Table, error) {
	t := report.NewTable("Table III: Reduction factor in the number of frames",
		"benchmark", "actual-frames", "megsim-frames", "reduction-factor")
	var frames, reps, factor float64
	for _, a := range s.aliases() {
		r, err := s.Result(a)
		if err != nil {
			return nil, err
		}
		t.AddRow(a, r.Trace.NumFrames(), r.Selection.NumRepresentatives(),
			fmt.Sprintf("%.0fx", r.SpeedupFrames()))
		frames += float64(r.Trace.NumFrames())
		reps += float64(r.Selection.NumRepresentatives())
		factor += r.SpeedupFrames()
	}
	n := float64(len(s.aliases()))
	t.AddRow("Average", fmt.Sprintf("%.0f", frames/n), fmt.Sprintf("%.0f", reps/n),
		fmt.Sprintf("%.0fx", factor/n))
	return t, nil
}

// Fig3 reproduces the correlation study of Fig. 3: correlation of each
// characterization group with the total cycle count, per benchmark.
func (s *Study) Fig3() (*report.Table, error) {
	t := report.NewTable("Fig. 3: Correlation of input parameters with total cycles",
		"benchmark", "VSCV", "FSCV", "PRIM")
	for _, a := range s.aliases() {
		r, err := s.Result(a)
		if err != nil {
			return nil, err
		}
		cycles := make([]float64, len(r.Full))
		for i := range r.Full {
			cycles[i] = float64(r.Full[i].Cycles)
		}
		corr, err := core.CorrelationStudy(r.Func, cycles)
		if err != nil {
			return nil, err
		}
		t.AddRow(a, corr.VSCV, corr.FSCV, corr.Prim)
	}
	return t, nil
}

// Fig4 reproduces the power-fraction study of Fig. 4: the share of
// dissipated energy in the Geometry, Tiling and Raster phases.
func (s *Study) Fig4() (*report.Table, error) {
	t := report.NewTable("Fig. 4: Fraction of dissipated power per pipeline phase",
		"benchmark", "geometry", "tiling", "raster")
	model := power.DefaultEnergyModel()
	var avg power.Breakdown
	for _, a := range s.aliases() {
		r, err := s.Result(a)
		if err != nil {
			return nil, err
		}
		b := model.SequenceEnergy(r.Full)
		g, ti, ra := b.Fractions()
		t.AddRow(a, g, ti, ra)
		avg.Add(power.Breakdown{Geometry: g, Tiling: ti, Raster: ra})
	}
	n := float64(len(s.aliases()))
	t.AddRow("Average", avg.Geometry/n, avg.Tiling/n, avg.Raster/n)
	return t, nil
}

// Fig5 writes the similarity matrix of the first `frames` frames of a
// benchmark as a PGM image (Fig. 5 uses bbr with 900 frames).
func (s *Study) Fig5(alias string, frames int, w io.Writer) error {
	r, err := s.Result(alias)
	if err != nil {
		return err
	}
	vecs := r.Features.Vectors
	if frames > 0 && frames < len(vecs) {
		vecs = vecs[:frames]
	}
	return simmatrix.New(vecs).WritePGM(w)
}

// Fig6 writes the similarity matrix with the chosen clusters drawn along
// the diagonal as a PPM image.
func (s *Study) Fig6(alias string, frames int, w io.Writer) error {
	r, err := s.Result(alias)
	if err != nil {
		return err
	}
	vecs := r.Features.Vectors
	assign := r.Selection.Clusters.Assign
	if frames > 0 && frames < len(vecs) {
		vecs = vecs[:frames]
		assign = assign[:frames]
	}
	band := len(vecs)/100 + 1
	return simmatrix.New(vecs).WritePPM(w, assign, band)
}

// Fig7 reproduces the accuracy study of Fig. 7: relative error of the
// four key metrics per benchmark.
func (s *Study) Fig7() (*report.Table, error) {
	t := report.NewTable("Fig. 7: Relative error (%) of MEGsim-estimated metrics",
		"benchmark", "cycles", "dram", "l2", "tile-cache")
	var sums core.Accuracy
	for _, a := range s.aliases() {
		r, err := s.Result(a)
		if err != nil {
			return nil, err
		}
		t.AddRow(a,
			r.Accuracy.Percent(core.MetricCycles),
			r.Accuracy.Percent(core.MetricDRAM),
			r.Accuracy.Percent(core.MetricL2),
			r.Accuracy.Percent(core.MetricTileCache))
		for _, m := range core.Metrics() {
			sums[m] += r.Accuracy[m]
		}
	}
	n := float64(len(s.aliases()))
	t.AddRow("Average", sums[core.MetricCycles]/n*100, sums[core.MetricDRAM]/n*100,
		sums[core.MetricL2]/n*100, sums[core.MetricTileCache]/n*100)
	return t, nil
}

// TableIVConfig controls the random sub-sampling comparison.
type TableIVConfig struct {
	// RandomTrials is the number of random sub-sampling repetitions
	// per k (the paper uses 1000).
	RandomTrials int
	// MEGsimTrials is the number of k-means re-initializations used to
	// bound MEGsim's own error (the paper uses 100).
	MEGsimTrials int
	// Confidence bounds the reported maximum error (the paper uses
	// 0.95).
	Confidence float64
	// Seed drives the repetitions.
	Seed uint64
}

// DefaultTableIVConfig returns the paper's evaluation parameters with a
// reduced MEGsim repetition count (re-clustering is the expensive part;
// 30 re-initializations bound the same tail within the resolution the
// table needs).
func DefaultTableIVConfig() TableIVConfig {
	return TableIVConfig{RandomTrials: 1000, MEGsimTrials: 30, Confidence: 0.95, Seed: 99}
}

// TableIVRow is one row of Table IV.
type TableIVRow struct {
	Alias           string
	MaxRelErr       float64 // MEGsim's 95%-confidence max cycles error (%)
	MEGsimFrames    int
	RandomFrames    int
	ReductionFactor float64
}

// TableIV reproduces the random sub-sampling comparison of Table IV:
// MEGsim's 95%-confidence maximum cycles error over repeated k-means
// initializations, and the number of frames random sub-sampling needs to
// match it.
func (s *Study) TableIV(cfg TableIVConfig) (*report.Table, []TableIVRow, error) {
	t := report.NewTable("Table IV: Frames needed for equal accuracy (95% confidence)",
		"benchmark", "max-rel-error(%)", "megsim-frames", "random-frames", "reduction")
	var rows []TableIVRow
	var sumErr, sumMEG, sumRnd, sumRed float64
	for _, a := range s.aliases() {
		r, err := s.Result(a)
		if err != nil {
			return nil, nil, err
		}
		row, err := s.tableIVRow(a, r, cfg)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, row)
		t.AddRow(a, row.MaxRelErr, row.MEGsimFrames, row.RandomFrames,
			fmt.Sprintf("%.1fx", row.ReductionFactor))
		sumErr += row.MaxRelErr
		sumMEG += float64(row.MEGsimFrames)
		sumRnd += float64(row.RandomFrames)
		sumRed += row.ReductionFactor
	}
	n := float64(len(rows))
	t.AddRow("Average", sumErr/n, fmt.Sprintf("%.1f", sumMEG/n),
		fmt.Sprintf("%.1f", sumRnd/n), fmt.Sprintf("%.1fx", sumRed/n))
	return t, rows, nil
}

func (s *Study) tableIVRow(alias string, r *BenchmarkResult, cfg TableIVConfig) (TableIVRow, error) {
	cycles := make([]float64, len(r.Full))
	for i := range r.Full {
		cycles[i] = float64(r.Full[i].Cycles)
	}
	actual := stats.Sum(cycles)

	// MEGsim's error distribution over k-means re-initializations at
	// the chosen cluster count (the paper varies initialization 100x).
	k := r.Selection.Clusters.K
	rng := stats.NewRNG(cfg.Seed)
	errs := make([]float64, 0, cfg.MEGsimTrials)
	for trial := 0; trial < cfg.MEGsimTrials; trial++ {
		res := cluster.KMeans(r.Features.Vectors, k, rng.Split(), 30)
		reps := cluster.Representatives(r.Features.Vectors, res)
		est := 0.0
		for c, rep := range reps {
			est += cycles[rep] * float64(res.Sizes[c])
		}
		errs = append(errs, stats.RelativeError(est, actual))
	}
	maxErr := stats.MaxAtConfidence(errs, cfg.Confidence)

	// Random sub-sampling must reach the same max error bound.
	need, err := core.FramesNeeded(cycles, maxErr, cfg.RandomTrials, cfg.Confidence, cfg.Seed^uint64(len(alias)))
	if err != nil {
		return TableIVRow{}, err
	}
	row := TableIVRow{
		Alias:        alias,
		MaxRelErr:    maxErr * 100,
		MEGsimFrames: r.Selection.NumRepresentatives(),
		RandomFrames: need,
	}
	if row.MEGsimFrames > 0 {
		row.ReductionFactor = float64(need) / float64(row.MEGsimFrames)
	}
	return row, nil
}

// SpeedupTable reports measured wall-clock simulation speedups (the
// paper's headline 126x is a frame-count reduction; this table shows
// the corresponding measured time reduction on our simulator, plus the
// cost of the cheap MEGsim phases).
func (s *Study) SpeedupTable() (*report.Table, error) {
	t := report.NewTable("Measured simulation-time speedup",
		"benchmark", "full-sim", "sampled-sim", "speedup", "funcsim", "clustering")
	for _, a := range s.aliases() {
		r, err := s.Result(a)
		if err != nil {
			return nil, err
		}
		t.AddRow(a, r.FullSimTime.Round(msRound).String(), r.SampledSimTime.Round(msRound).String(),
			fmt.Sprintf("%.0fx", r.SpeedupTime()), r.FuncSimTime.Round(msRound).String(),
			r.SelectTime.Round(msRound).String())
	}
	return t, nil
}

const msRound = 1e6 // time.Millisecond without importing time here

// ClusterSummary reports the per-benchmark clustering shape (cluster
// sizes, BIC search length) for diagnostics.
func (s *Study) ClusterSummary(alias string) (string, error) {
	r, err := s.Result(alias)
	if err != nil {
		return "", err
	}
	sizes := append([]int(nil), r.Selection.Clusters.Sizes...)
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return fmt.Sprintf("%s: k=%d explored=%d sizes=%v", alias,
		r.Selection.Clusters.K, len(r.Selection.BICScores), sizes), nil
}

// GeoMeanReduction returns the geometric mean reduction factor across
// benchmarks (a robust summary alongside the paper's arithmetic mean).
func (s *Study) GeoMeanReduction() (float64, error) {
	prod := 1.0
	n := 0
	for _, a := range s.aliases() {
		r, err := s.Result(a)
		if err != nil {
			return 0, err
		}
		prod *= r.SpeedupFrames()
		n++
	}
	return math.Pow(prod, 1/float64(n)), nil
}

// VaryGPUConfig re-estimates one benchmark under a modified GPU
// configuration using the SAME frame selection (MEGsim's
// characterization is architecture-independent, so the design-space
// exploration only re-simulates representatives). Returns estimated and
// (optionally) ground-truth totals.
func (s *Study) VaryGPUConfig(alias string, gpu tbr.Config, groundTruth bool) (estimate, actual tbr.FrameStats, err error) {
	r, err := s.Result(alias)
	if err != nil {
		return estimate, actual, err
	}
	sim, err := tbr.New(gpu, r.Trace)
	if err != nil {
		return estimate, actual, err
	}
	repStats := make(map[int]tbr.FrameStats, r.Selection.NumRepresentatives())
	for _, f := range r.Selection.Representatives {
		repStats[f] = sim.SimulateFrame(f)
	}
	estimate, err = r.Selection.Estimate(repStats)
	if err != nil {
		return estimate, actual, err
	}
	if groundTruth {
		fullSim, err2 := tbr.New(gpu, r.Trace)
		if err2 != nil {
			return estimate, actual, err2
		}
		actual = core.SumStats(fullSim.SimulateAll(nil))
	}
	return estimate, actual, nil
}
