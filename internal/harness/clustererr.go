package harness

import (
	"fmt"
	"sort"

	"repro/internal/report"
	"repro/internal/xmath/stats"
)

// ClusterErrorRow describes one cluster's contribution to the estimation
// error of a metric.
type ClusterErrorRow struct {
	Cluster        int
	Size           int
	Representative int
	// ActualMean and RepValue compare the cluster's true per-frame
	// metric mean against the representative's value.
	ActualMean float64
	RepValue   float64
	// Contribution is the cluster's signed share of the total estimation
	// error (estimate - actual), in metric units.
	Contribution float64
}

// ClusterErrorTable breaks the cycles-estimation error of a benchmark
// down by cluster: which clusters' representatives misrepresent their
// members, and by how much. A diagnosis tool for clustering quality —
// large contributions flag clusters that mix dissimilar frames.
func (s *Study) ClusterErrorTable(alias string, topN int) (*report.Table, []ClusterErrorRow, error) {
	r, err := s.Result(alias)
	if err != nil {
		return nil, nil, err
	}
	sel := r.Selection
	k := sel.Clusters.K
	rows := make([]ClusterErrorRow, k)
	for c := 0; c < k; c++ {
		rows[c] = ClusterErrorRow{Cluster: c, Size: sel.Clusters.Sizes[c], Representative: sel.Representatives[c]}
	}
	for f := 0; f < sel.NumFrames(); f++ {
		c := sel.ClusterOf(f)
		rows[c].ActualMean += float64(r.Full[f].Cycles)
	}
	for c := range rows {
		if rows[c].Size > 0 {
			rows[c].ActualMean /= float64(rows[c].Size)
		}
		rows[c].RepValue = float64(r.Full[rows[c].Representative].Cycles)
		rows[c].Contribution = (rows[c].RepValue - rows[c].ActualMean) * float64(rows[c].Size)
	}
	sort.Slice(rows, func(i, j int) bool {
		return abs64(rows[i].Contribution) > abs64(rows[j].Contribution)
	})
	if topN > 0 && topN < len(rows) {
		rows = rows[:topN]
	}

	total := float64(r.FullTotals.Cycles)
	t := report.NewTable(
		fmt.Sprintf("Per-cluster cycles error on %s (signed share of total error)", alias),
		"cluster", "size", "rep-frame", "rep-vs-mean(%)", "error-share(%)")
	for _, row := range rows {
		t.AddRow(row.Cluster, row.Size, row.Representative,
			stats.RelativeError(row.RepValue, row.ActualMean)*100,
			row.Contribution/total*100)
	}
	return t, rows, nil
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
