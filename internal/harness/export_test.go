package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/tbr"
	"repro/internal/workload"
)

func TestWriteFrameStatsCSV(t *testing.T) {
	r, err := Run(workload.Profiles["hcr"], TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrameStatsCSV(&buf, r.Full[:5]); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %d, want header + 5", len(lines))
	}
	if !strings.HasPrefix(lines[0], "frame,cycles,") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestSelectionSummaryRoundTrip(t *testing.T) {
	r, err := Run(workload.Profiles["jjo"], TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	sum := NewSelectionSummary("jjo", r.Selection, true)
	var buf bytes.Buffer
	if err := sum.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSelectionSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != "jjo" || got.Clusters != r.Selection.Clusters.K {
		t.Fatalf("round trip mangled summary: %+v", got)
	}
	if len(got.Assignment) != r.Selection.NumFrames() {
		t.Fatal("assignment lost")
	}

	// Estimating from the summary must reproduce the live estimate.
	repStats := make(map[int]tbr.FrameStats, len(got.Representatives))
	for _, f := range got.Representatives {
		repStats[f] = r.Full[f]
	}
	est, err := EstimateFromSummary(got, repStats)
	if err != nil {
		t.Fatal(err)
	}
	if est.Cycles != r.Estimate.Cycles || est.DRAM.Accesses != r.Estimate.DRAM.Accesses {
		t.Fatalf("summary estimate %d differs from live estimate %d", est.Cycles, r.Estimate.Cycles)
	}
}

func TestReadSelectionSummaryRejectsCorruption(t *testing.T) {
	r, err := Run(workload.Profiles["hcr"], TestOptions())
	if err != nil {
		t.Fatal(err)
	}
	base := NewSelectionSummary("hcr", r.Selection, false)

	mutations := map[string]func(*SelectionSummary){
		"cluster count": func(s *SelectionSummary) { s.Clusters++ },
		"sizes sum":     func(s *SelectionSummary) { s.ClusterSizes[0] += 5 },
		"empty cluster": func(s *SelectionSummary) { s.ClusterSizes[0] = 0 },
		"rep range":     func(s *SelectionSummary) { s.Representatives[0] = s.Frames + 1 },
	}
	for name, mutate := range mutations {
		s := base
		s.Representatives = append([]int(nil), base.Representatives...)
		s.ClusterSizes = append([]int(nil), base.ClusterSizes...)
		mutate(&s)
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSelectionSummary(&buf); err == nil {
			t.Errorf("%s: corrupted summary accepted", name)
		}
	}
	if _, err := ReadSelectionSummary(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}
