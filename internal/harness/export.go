package harness

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/tbr"
)

// WriteFrameStatsCSV writes per-frame simulator statistics as CSV — the
// raw series behind the ground-truth runs, for external analysis or
// plotting.
func WriteFrameStatsCSV(w io.Writer, frames []tbr.FrameStats) error {
	if _, err := fmt.Fprintln(w, "frame,cycles,geometry_cycles,raster_cycles,"+
		"vertices,prims_in,prims_visible,fragments,fs_instrs,vs_instrs,"+
		"dram_accesses,l2_accesses,tile_cache_accesses,texture_accesses,ipc"); err != nil {
		return err
	}
	for i := range frames {
		st := &frames[i]
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f\n",
			st.Frame, st.Cycles, st.GeometryCycles, st.RasterCycles,
			st.VerticesShaded, st.PrimsIn, st.PrimsVisible, st.FragmentsShaded,
			st.FSInstrs, st.VSInstrs,
			st.DRAM.Accesses, st.L2.Accesses, st.TileCache.Accesses, st.TexAccesses,
			st.IPC()); err != nil {
			return err
		}
	}
	return nil
}

// SelectionSummary is the JSON-serializable record of a MEGsim frame
// selection: everything needed to re-simulate the representatives later
// (or on another machine) without redoing characterization/clustering.
type SelectionSummary struct {
	Workload        string    `json:"workload"`
	Frames          int       `json:"frames"`
	Clusters        int       `json:"clusters"`
	Representatives []int     `json:"representatives"`
	ClusterSizes    []int     `json:"cluster_sizes"`
	Assignment      []int     `json:"assignment,omitempty"`
	ReductionFactor float64   `json:"reduction_factor"`
	BICScores       []float64 `json:"bic_scores,omitempty"`
}

// NewSelectionSummary builds the serializable record. includeAssignment
// controls whether the (large) per-frame cluster assignment is kept.
func NewSelectionSummary(workload string, sel *core.Selection, includeAssignment bool) SelectionSummary {
	s := SelectionSummary{
		Workload:        workload,
		Frames:          sel.NumFrames(),
		Clusters:        sel.Clusters.K,
		Representatives: append([]int(nil), sel.Representatives...),
		ClusterSizes:    append([]int(nil), sel.Clusters.Sizes...),
		ReductionFactor: sel.ReductionFactor(),
		BICScores:       append([]float64(nil), sel.BICScores...),
	}
	if includeAssignment {
		s.Assignment = append([]int(nil), sel.Clusters.Assign...)
	}
	return s
}

// WriteJSON writes the summary with indentation.
func (s SelectionSummary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSelectionSummary parses a summary written by WriteJSON and
// validates its internal consistency.
func ReadSelectionSummary(r io.Reader) (SelectionSummary, error) {
	var s SelectionSummary
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return s, fmt.Errorf("harness: decoding selection summary: %w", err)
	}
	if s.Clusters != len(s.Representatives) || s.Clusters != len(s.ClusterSizes) {
		return s, fmt.Errorf("harness: summary inconsistent: %d clusters, %d reps, %d sizes",
			s.Clusters, len(s.Representatives), len(s.ClusterSizes))
	}
	total := 0
	for _, n := range s.ClusterSizes {
		if n <= 0 {
			return s, fmt.Errorf("harness: summary has empty cluster")
		}
		total += n
	}
	if total != s.Frames {
		return s, fmt.Errorf("harness: cluster sizes sum to %d, frames = %d", total, s.Frames)
	}
	for _, rep := range s.Representatives {
		if rep < 0 || rep >= s.Frames {
			return s, fmt.Errorf("harness: representative %d out of range", rep)
		}
	}
	return s, nil
}

// EstimateFromSummary extrapolates totals from representative stats
// using a deserialized summary (the Estimate operation without the live
// Selection).
func EstimateFromSummary(s SelectionSummary, repStats map[int]tbr.FrameStats) (tbr.FrameStats, error) {
	var total tbr.FrameStats
	for c, rep := range s.Representatives {
		st, ok := repStats[rep]
		if !ok {
			return tbr.FrameStats{}, fmt.Errorf("harness: missing stats for representative %d", rep)
		}
		scaled := st.Scale(uint64(s.ClusterSizes[c]))
		total.Add(&scaled)
	}
	total.Frame = -1
	return total, nil
}
