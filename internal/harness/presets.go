package harness

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/resilience"
	"repro/internal/tbr"
)

// ServiceOptions is the `service` preset: the settings the campaign
// service (internal/serve) and its tests run campaigns under — the
// small test-scale workload with the tile-parallel raster stage on.
// Serve's cache-identity tests compare daemon responses against a
// direct megsim run under exactly these options, so keep the preset and
// the serve test fixtures in lockstep.
func ServiceOptions() Options {
	o := TestOptions()
	o.TileWorkers = 2
	return o
}

// ServiceResilience is the supervisor half of the `service` preset:
// resilience on (one retry per frame) with backoff disabled, so tests
// exercise the supervised path without sleeping on injected faults.
func ServiceResilience() resilience.Config {
	return resilience.Config{MaxAttempts: 2, BackoffBase: -1}
}

// ClusterWorkerCount is the fleet size of the `cluster` preset: the
// smallest fleet where killing one worker still leaves a quorum to
// exercise failover (and the size the fabric cluster tests run).
const ClusterWorkerCount = 3

// ClusterOptions is the `cluster` preset: the settings distributed
// (coordinator + worker) campaigns and their tests run under. It is
// exactly the `service` preset — a distributed campaign must be
// byte-identical to a single-process one, so the two presets must never
// diverge.
func ClusterOptions() Options {
	return ServiceOptions()
}

// ClusterResilience is the supervisor half of the `cluster` preset:
// the `service` supervisor settings plus a small worker-loss requeue
// budget, so a dispatch stranded by a dying worker re-enters the pool
// a bounded number of times without charging the frame's attempts.
func ClusterResilience() resilience.Config {
	cfg := ServiceResilience()
	cfg.MaxRequeues = 8
	return cfg
}

// PresetTable compares the named GPU presets on one benchmark by
// re-simulating only the cached MEGsim representatives per preset — a
// complete machine-comparison study at a tiny fraction of full
// simulation cost.
func (s *Study) PresetTable(alias string) (*report.Table, error) {
	r, err := s.Result(alias)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("GPU preset comparison on "+alias+" (MEGsim-estimated)",
		"preset", "clock", "vps/fps", "est-cycles(M)", "ms/frame", "fp-util(%)", "dram(M)")
	for _, name := range tbr.PresetNames() {
		cfg, err := tbr.Preset(name)
		if err != nil {
			return nil, err
		}
		est, _, err := s.VaryGPUConfig(alias, cfg, false)
		if err != nil {
			return nil, err
		}
		msPerFrame := cfg.FrameSeconds(est.Cycles) / float64(r.Trace.NumFrames()) * 1e3
		t.AddRow(name,
			formatMHz(cfg.FrequencyMHz),
			formatPair(cfg.NumVertexProcessors, cfg.NumFragmentProcessors),
			float64(est.Cycles)/1e6,
			msPerFrame,
			est.FPUtilization(cfg.NumFragmentProcessors)*100,
			float64(est.DRAM.Accesses)/1e6)
	}
	return t, nil
}

func formatMHz(mhz int) string {
	return fmt.Sprintf("%dMHz", mhz)
}

func formatPair(a, b int) string {
	return fmt.Sprintf("%d/%d", a, b)
}
