package shader

import "math"

// Sampler provides texel values to the executor. The functional simulator
// passes a procedural texture; tests pass simple closures.
type Sampler interface {
	// Sample returns the filtered texel value of texture unit at (u, v).
	Sample(unit int, u, v float64, filter FilterMode) float64
}

// SamplerFunc adapts a function to the Sampler interface.
type SamplerFunc func(unit int, u, v float64, filter FilterMode) float64

// Sample calls f.
func (f SamplerFunc) Sample(unit int, u, v float64, filter FilterMode) float64 {
	return f(unit, u, v, filter)
}

// ConstSampler returns v for every sample.
func ConstSampler(v float64) Sampler {
	return SamplerFunc(func(int, float64, float64, FilterMode) float64 { return v })
}

// Regs is a shader register file.
type Regs [NumRegs]float64

// TraceEvent records one texture access performed during execution; the
// functional simulator forwards these to the cache models.
type TraceEvent struct {
	Sampler int
	U, V    float64
	Filter  FilterMode
}

// ExecResult is the outcome of one functional shader invocation.
type ExecResult struct {
	Regs Regs // final register file
	Cost Cost // instructions actually executed (taken path only)
	Tex  []TraceEvent
}

// Exec functionally executes the program over the given initial register
// file. Unlike DynamicCost, Exec follows the *taken* side of branches —
// it computes real values. The timing model uses DynamicCost (lock-step
// warps execute both paths); the functional simulator uses Exec to
// produce deterministic output values and texture access streams.
//
// A nil sampler behaves as ConstSampler(0).
func (p *Program) Exec(in Regs, sampler Sampler) ExecResult {
	if sampler == nil {
		sampler = ConstSampler(0)
	}
	res := ExecResult{Regs: in}
	execBlock(p.Code, &res, sampler, 0)
	return res
}

// maxExecInstrs bounds runaway programs (defence in depth; Validate
// already bounds nesting and loop counts are static).
const maxExecInstrs = 1 << 20

func execBlock(code []Instr, res *ExecResult, sampler Sampler, depth int) {
	for i := range code {
		if res.Cost.Instructions >= maxExecInstrs {
			return
		}
		in := &code[i]
		res.Cost.Instructions++
		switch in.Op {
		case OpMov:
			if in.SrcA < 0 {
				res.Regs[in.Dst] = in.Imm
			} else {
				res.Regs[in.Dst] = res.Regs[in.SrcA]
			}
			res.Cost.ALUOps++
		case OpAdd:
			res.Regs[in.Dst] = res.Regs[in.SrcA] + res.Regs[in.SrcB]
			res.Cost.ALUOps++
		case OpMul:
			res.Regs[in.Dst] = res.Regs[in.SrcA] * res.Regs[in.SrcB]
			res.Cost.ALUOps++
		case OpMad:
			res.Regs[in.Dst] = res.Regs[in.SrcA]*res.Regs[in.SrcB] + res.Regs[in.Dst]
			res.Cost.ALUOps++
		case OpMin:
			res.Regs[in.Dst] = math.Min(res.Regs[in.SrcA], res.Regs[in.SrcB])
			res.Cost.ALUOps++
		case OpMax:
			res.Regs[in.Dst] = math.Max(res.Regs[in.SrcA], res.Regs[in.SrcB])
			res.Cost.ALUOps++
		case OpRsq:
			v := math.Abs(res.Regs[in.SrcA])
			if v == 0 {
				res.Regs[in.Dst] = 0
			} else {
				res.Regs[in.Dst] = 1 / math.Sqrt(v)
			}
			res.Cost.ALUOps++
		case OpFrc:
			v := res.Regs[in.SrcA]
			res.Regs[in.Dst] = v - math.Floor(v)
			res.Cost.ALUOps++
		case OpSin:
			res.Regs[in.Dst] = math.Sin(res.Regs[in.SrcA])
			res.Cost.ALUOps++
		case OpTex:
			u, v := res.Regs[in.SrcA], res.Regs[in.SrcB]
			res.Regs[in.Dst] = sampler.Sample(in.Sampler, u, v, in.Filter)
			res.Cost.TexSamples++
			res.Cost.TexMemAccesses += in.Filter.MemAccesses()
			res.Tex = append(res.Tex, TraceEvent{Sampler: in.Sampler, U: u, V: v, Filter: in.Filter})
		case OpIf:
			if res.Regs[in.SrcA] > 0 {
				execBlock(in.Body, res, sampler, depth+1)
			} else {
				execBlock(in.Else, res, sampler, depth+1)
			}
		case OpLoop:
			for n := 0; n < in.Count; n++ {
				execBlock(in.Body, res, sampler, depth+1)
				if res.Cost.Instructions >= maxExecInstrs {
					return
				}
			}
		}
	}
}
