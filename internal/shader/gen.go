package shader

import (
	"fmt"

	"repro/internal/xmath/stats"
)

// Generator synthesizes deterministic shader programs for the synthetic
// workloads. Given the same RNG seed it always produces the same programs,
// so every benchmark trace is reproducible.
type Generator struct {
	rng    *stats.RNG
	nextID int
}

// NewGenerator returns a generator drawing from rng.
func NewGenerator(rng *stats.RNG) *Generator {
	return &Generator{rng: rng}
}

// Complexity controls the size and texture usage of generated programs.
type Complexity struct {
	// MinInstrs and MaxInstrs bound the straight-line ALU body length.
	MinInstrs, MaxInstrs int
	// TexSamples is the number of texture instructions (fragment
	// shaders only; vertex shaders never sample in this pipeline).
	TexSamples int
	// Samplers is the number of texture units the program may address.
	Samplers int
	// BranchProb is the probability of emitting one IF block.
	BranchProb float64
	// LoopProb is the probability of emitting one small LOOP block.
	LoopProb float64
}

// SimpleVertex is a typical small vertex shader complexity (2D games).
var SimpleVertex = Complexity{MinInstrs: 6, MaxInstrs: 14}

// ComplexVertex is a typical 3D-game vertex shader complexity (skinning,
// per-vertex lighting).
var ComplexVertex = Complexity{MinInstrs: 18, MaxInstrs: 48, BranchProb: 0.3, LoopProb: 0.25}

// SimpleFragment is a typical 2D sprite fragment shader: one bilinear
// texture fetch and a little blending math.
var SimpleFragment = Complexity{MinInstrs: 4, MaxInstrs: 10, TexSamples: 1, Samplers: 1}

// ComplexFragment is a typical 3D-game fragment shader: several texture
// layers and lighting math.
var ComplexFragment = Complexity{MinInstrs: 12, MaxInstrs: 40, TexSamples: 3, Samplers: 4, BranchProb: 0.4, LoopProb: 0.15}

// Vertex generates a vertex shader with the given complexity.
func (g *Generator) Vertex(c Complexity) *Program {
	id := g.nextID
	g.nextID++
	p := &Program{
		ID:   id,
		Name: fmt.Sprintf("vs_%d", id),
		Kind: VertexKind,
		Code: g.body(c, VertexKind),
	}
	if err := p.Validate(); err != nil {
		panic("shader: generator produced invalid program: " + err.Error())
	}
	return p
}

// Fragment generates a fragment shader with the given complexity.
func (g *Generator) Fragment(c Complexity) *Program {
	id := g.nextID
	g.nextID++
	p := &Program{
		ID:   id,
		Name: fmt.Sprintf("fs_%d", id),
		Kind: FragmentKind,
		Code: g.body(c, FragmentKind),
	}
	if err := p.Validate(); err != nil {
		panic("shader: generator produced invalid program: " + err.Error())
	}
	return p
}

// filterMix is the distribution of filtering modes used by generated
// fragment shaders; bilinear dominates on mobile content, trilinear shows
// up on mip-mapped 3D surfaces.
var filterMix = []FilterMode{
	FilterBilinear, FilterBilinear, FilterBilinear, FilterBilinear,
	FilterLinear, FilterLinear,
	FilterTrilinear,
	FilterNearest,
}

func (g *Generator) body(c Complexity, kind Kind) []Instr {
	n := c.MinInstrs
	if c.MaxInstrs > c.MinInstrs {
		n += g.rng.Intn(c.MaxInstrs - c.MinInstrs + 1)
	}
	code := make([]Instr, 0, n+c.TexSamples+2)
	// Seed a few registers with immediates so arithmetic has varied
	// inputs regardless of caller-provided registers.
	code = append(code,
		Instr{Op: OpMov, Dst: 8, SrcA: -1, Imm: g.rng.Range(0.1, 2.0)},
		Instr{Op: OpMov, Dst: 9, SrcA: -1, Imm: g.rng.Range(-1.0, 1.0)},
	)
	for i := 0; i < n; i++ {
		code = append(code, g.aluInstr())
	}
	if kind == FragmentKind {
		for s := 0; s < c.TexSamples; s++ {
			samplers := c.Samplers
			if samplers < 1 {
				samplers = 1
			}
			code = append(code, Instr{
				Op:      OpTex,
				Dst:     4 + g.rng.Intn(4),
				SrcA:    g.rng.Intn(4), // u from an input register
				SrcB:    g.rng.Intn(4), // v from an input register
				Sampler: g.rng.Intn(samplers),
				Filter:  filterMix[g.rng.Intn(len(filterMix))],
			})
			// A little post-fetch math per layer.
			code = append(code, g.aluInstr())
		}
	}
	if g.rng.Float64() < c.BranchProb {
		code = append(code, Instr{
			Op:   OpIf,
			SrcA: g.rng.Intn(8),
			Body: []Instr{g.aluInstr(), g.aluInstr()},
			Else: []Instr{g.aluInstr()},
		})
	}
	if g.rng.Float64() < c.LoopProb {
		code = append(code, Instr{
			Op:    OpLoop,
			Count: 2 + g.rng.Intn(3),
			Body:  []Instr{g.aluInstr(), g.aluInstr()},
		})
	}
	return code
}

func (g *Generator) aluInstr() Instr {
	ops := []Op{OpAdd, OpMul, OpMad, OpMin, OpMax, OpRsq, OpFrc, OpSin, OpMov}
	op := ops[g.rng.Intn(len(ops))]
	in := Instr{
		Op:   op,
		Dst:  4 + g.rng.Intn(NumRegs-4), // keep inputs r0..r3 intact
		SrcA: g.rng.Intn(NumRegs),
		SrcB: g.rng.Intn(NumRegs),
	}
	if op == OpMov && g.rng.Float64() < 0.3 {
		in.SrcA = -1
		in.Imm = g.rng.Range(-2, 2)
	}
	return in
}
