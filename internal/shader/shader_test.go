package shader

import (
	"testing"
	"testing/quick"

	"repro/internal/xmath/stats"
)

func TestFilterModeWeights(t *testing.T) {
	// These are the exact weights from Section III-B of the paper.
	cases := []struct {
		f    FilterMode
		want int
	}{
		{FilterNearest, 1},
		{FilterLinear, 2},
		{FilterBilinear, 4},
		{FilterTrilinear, 8},
	}
	for _, c := range cases {
		if got := c.f.MemAccesses(); got != c.want {
			t.Errorf("%v.MemAccesses() = %d, want %d", c.f, got, c.want)
		}
	}
}

func TestStaticCostFlat(t *testing.T) {
	p := &Program{
		ID: 1, Name: "flat", Kind: VertexKind,
		Code: []Instr{
			{Op: OpAdd, Dst: 4, SrcA: 0, SrcB: 1},
			{Op: OpMul, Dst: 5, SrcA: 4, SrcB: 2},
			{Op: OpMov, Dst: 6, SrcA: -1, Imm: 3},
		},
	}
	c := p.StaticCost()
	if c.Instructions != 3 || c.ALUOps != 3 || c.TexSamples != 0 {
		t.Fatalf("static cost = %+v", c)
	}
	if c.Weighted() != 3 {
		t.Fatalf("weighted = %v, want 3", c.Weighted())
	}
}

func TestStaticCostTextureWeighting(t *testing.T) {
	p := &Program{
		ID: 2, Name: "tex", Kind: FragmentKind,
		Code: []Instr{
			{Op: OpAdd, Dst: 4, SrcA: 0, SrcB: 1},
			{Op: OpTex, Dst: 5, SrcA: 0, SrcB: 1, Filter: FilterBilinear},
			{Op: OpTex, Dst: 6, SrcA: 2, SrcB: 3, Filter: FilterTrilinear},
		},
	}
	c := p.StaticCost()
	if c.Instructions != 3 || c.TexSamples != 2 || c.TexMemAccesses != 12 {
		t.Fatalf("static cost = %+v", c)
	}
	// Weighted: 1 ALU + 4 (bilinear) + 8 (trilinear) = 13.
	if c.Weighted() != 13 {
		t.Fatalf("weighted = %v, want 13", c.Weighted())
	}
}

func TestDynamicCostBothBranchPathsCharged(t *testing.T) {
	p := &Program{
		ID: 3, Name: "branchy", Kind: FragmentKind,
		Code: []Instr{
			{Op: OpIf, SrcA: 0,
				Body: []Instr{{Op: OpAdd, Dst: 4, SrcA: 0, SrcB: 1}, {Op: OpAdd, Dst: 5, SrcA: 0, SrcB: 1}},
				Else: []Instr{{Op: OpMul, Dst: 6, SrcA: 0, SrcB: 1}},
			},
		},
	}
	d := p.DynamicCost()
	// 1 branch + 2 then-path + 1 else-path = 4 (lock-step warps run both).
	if d.Instructions != 4 || d.ALUOps != 3 {
		t.Fatalf("dynamic cost = %+v, want 4 instrs / 3 ALU", d)
	}
	// Functional execution takes only one side.
	res := p.Exec(Regs{1 /* r0 > 0: then */}, nil)
	if res.Cost.Instructions != 3 {
		t.Fatalf("exec taken-path instrs = %d, want 3", res.Cost.Instructions)
	}
	res = p.Exec(Regs{-1}, nil)
	if res.Cost.Instructions != 2 {
		t.Fatalf("exec else-path instrs = %d, want 2", res.Cost.Instructions)
	}
}

func TestDynamicCostLoopMultiplies(t *testing.T) {
	p := &Program{
		ID: 4, Name: "loopy", Kind: VertexKind,
		Code: []Instr{
			{Op: OpLoop, Count: 5, Body: []Instr{
				{Op: OpAdd, Dst: 4, SrcA: 4, SrcB: 8},
				{Op: OpMul, Dst: 5, SrcA: 5, SrcB: 8},
			}},
		},
	}
	d := p.DynamicCost()
	if d.Instructions != 1+5*2 {
		t.Fatalf("dynamic instrs = %d, want 11", d.Instructions)
	}
	if d.ALUOps != 10 {
		t.Fatalf("dynamic ALU = %d, want 10", d.ALUOps)
	}
}

func TestExecArithmetic(t *testing.T) {
	p := &Program{
		ID: 5, Name: "arith", Kind: VertexKind,
		Code: []Instr{
			{Op: OpMov, Dst: 4, SrcA: -1, Imm: 10},
			{Op: OpAdd, Dst: 5, SrcA: 4, SrcB: 0}, // r5 = 10 + r0
			{Op: OpMul, Dst: 6, SrcA: 5, SrcB: 1}, // r6 = r5 * r1
			{Op: OpMad, Dst: 6, SrcA: 4, SrcB: 0}, // r6 += 10*r0
			{Op: OpMin, Dst: 7, SrcA: 6, SrcB: 4}, // r7 = min(r6, 10)
			{Op: OpMax, Dst: 8, SrcA: 6, SrcB: 4}, // r8 = max(r6, 10)
		},
	}
	res := p.Exec(Regs{2, 3}, nil) // r0=2 r1=3
	if res.Regs[5] != 12 {
		t.Fatalf("r5 = %v, want 12", res.Regs[5])
	}
	if res.Regs[6] != 12*3+20 {
		t.Fatalf("r6 = %v, want 56", res.Regs[6])
	}
	if res.Regs[7] != 10 || res.Regs[8] != 56 {
		t.Fatalf("min/max = %v/%v, want 10/56", res.Regs[7], res.Regs[8])
	}
}

func TestExecRsqZero(t *testing.T) {
	p := &Program{
		ID: 6, Name: "rsq", Kind: VertexKind,
		Code: []Instr{{Op: OpRsq, Dst: 4, SrcA: 0}},
	}
	res := p.Exec(Regs{}, nil)
	if res.Regs[4] != 0 {
		t.Fatalf("rsq(0) = %v, want 0 (no NaN)", res.Regs[4])
	}
	res = p.Exec(Regs{4}, nil)
	if res.Regs[4] != 0.5 {
		t.Fatalf("rsq(4) = %v, want 0.5", res.Regs[4])
	}
}

func TestExecTextureTrace(t *testing.T) {
	p := &Program{
		ID: 7, Name: "textrace", Kind: FragmentKind,
		Code: []Instr{
			{Op: OpTex, Dst: 4, SrcA: 0, SrcB: 1, Sampler: 2, Filter: FilterTrilinear},
		},
	}
	sampled := false
	s := SamplerFunc(func(unit int, u, v float64, f FilterMode) float64 {
		sampled = true
		if unit != 2 || u != 0.25 || v != 0.75 || f != FilterTrilinear {
			t.Errorf("sampler got unit=%d u=%v v=%v f=%v", unit, u, v, f)
		}
		return 42
	})
	res := p.Exec(Regs{0.25, 0.75}, s)
	if !sampled {
		t.Fatal("sampler never invoked")
	}
	if res.Regs[4] != 42 {
		t.Fatalf("tex result = %v, want 42", res.Regs[4])
	}
	if len(res.Tex) != 1 || res.Tex[0].Sampler != 2 {
		t.Fatalf("trace = %+v", res.Tex)
	}
	if res.Cost.TexMemAccesses != 8 {
		t.Fatalf("tex mem accesses = %d, want 8", res.Cost.TexMemAccesses)
	}
}

func TestExecNilSampler(t *testing.T) {
	p := &Program{
		ID: 8, Name: "niltex", Kind: FragmentKind,
		Code: []Instr{{Op: OpTex, Dst: 4, SrcA: 0, SrcB: 1, Filter: FilterLinear}},
	}
	res := p.Exec(Regs{1, 1}, nil)
	if res.Regs[4] != 0 {
		t.Fatalf("nil sampler result = %v, want 0", res.Regs[4])
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
	}{
		{"empty", &Program{ID: 1, Name: "e", Code: nil}},
		{"no name", &Program{ID: 1, Code: []Instr{{Op: OpMov, Dst: 4, SrcA: -1}}}},
		{"bad dst", &Program{ID: 1, Name: "d", Code: []Instr{{Op: OpMov, Dst: 99, SrcA: -1}}}},
		{"bad src", &Program{ID: 1, Name: "s", Code: []Instr{{Op: OpAdd, Dst: 4, SrcA: 20, SrcB: 0}}}},
		{"zero loop", &Program{ID: 1, Name: "l", Code: []Instr{{Op: OpLoop, Count: 0, Body: []Instr{{Op: OpMov, Dst: 4, SrcA: -1}}}}}},
		{"empty if", &Program{ID: 1, Name: "i", Code: []Instr{{Op: OpIf, SrcA: 0}}}},
		{"bad sampler", &Program{ID: 1, Name: "t", Code: []Instr{{Op: OpTex, Dst: 4, SrcA: 0, SrcB: 1, Sampler: 9}}}},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid program", c.name)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(stats.NewRNG(99))
	b := NewGenerator(stats.NewRNG(99))
	for i := 0; i < 20; i++ {
		pa := a.Fragment(ComplexFragment)
		pb := b.Fragment(ComplexFragment)
		if pa.StaticCost() != pb.StaticCost() {
			t.Fatalf("program %d differs across identical seeds", i)
		}
	}
}

func TestGeneratorProgramsValid(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewGenerator(stats.NewRNG(seed))
		for _, c := range []Complexity{SimpleVertex, ComplexVertex, SimpleFragment, ComplexFragment} {
			var p *Program
			if c.TexSamples > 0 {
				p = g.Fragment(c)
			} else {
				p = g.Vertex(c)
			}
			if p.Validate() != nil {
				return false
			}
			// Dynamic cost always >= static ALU portion must hold, and
			// execution must not produce runaway instruction counts.
			res := p.Exec(Regs{0.5, 0.5, 0.5, 0.5}, ConstSampler(1))
			if res.Cost.Instructions <= 0 || res.Cost.Instructions > 10000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorFragmentHasTextures(t *testing.T) {
	g := NewGenerator(stats.NewRNG(7))
	p := g.Fragment(ComplexFragment)
	c := p.StaticCost()
	if c.TexSamples != ComplexFragment.TexSamples {
		t.Fatalf("tex samples = %d, want %d", c.TexSamples, ComplexFragment.TexSamples)
	}
	v := g.Vertex(ComplexVertex)
	if v.StaticCost().TexSamples != 0 {
		t.Fatal("vertex shaders must not sample textures")
	}
}

func TestGeneratorIDsUnique(t *testing.T) {
	g := NewGenerator(stats.NewRNG(1))
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		p := g.Vertex(SimpleVertex)
		if seen[p.ID] {
			t.Fatalf("duplicate program ID %d", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestCostAddScale(t *testing.T) {
	a := Cost{Instructions: 10, ALUOps: 7, TexSamples: 2, TexMemAccesses: 8}
	b := a
	b.Add(a)
	if b.Instructions != 20 || b.TexMemAccesses != 16 {
		t.Fatalf("Add = %+v", b)
	}
	s := a.Scale(3)
	if s.Instructions != 30 || s.ALUOps != 21 || s.TexSamples != 6 || s.TexMemAccesses != 24 {
		t.Fatalf("Scale = %+v", s)
	}
}

func TestKindAndOpStrings(t *testing.T) {
	if VertexKind.String() != "vertex" || FragmentKind.String() != "fragment" {
		t.Fatal("Kind.String wrong")
	}
	if OpTex.String() != "tex" || OpMad.String() != "mad" {
		t.Fatal("Op.String wrong")
	}
	if FilterBilinear.String() != "bilinear" {
		t.Fatal("FilterMode.String wrong")
	}
}
