package shader

import (
	"testing"

	"repro/internal/xmath/stats"
)

func BenchmarkExecComplexFragment(b *testing.B) {
	g := NewGenerator(stats.NewRNG(5))
	p := g.Fragment(ComplexFragment)
	s := ConstSampler(0.5)
	in := Regs{0.3, 0.7, 0.1, 0.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Exec(in, s)
	}
}

func BenchmarkDynamicCost(b *testing.B) {
	g := NewGenerator(stats.NewRNG(7))
	p := g.Vertex(ComplexVertex)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.DynamicCost()
	}
}

func BenchmarkGenerator(b *testing.B) {
	g := NewGenerator(stats.NewRNG(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Fragment(ComplexFragment)
	}
}
