package shader

import (
	"math"
	"testing"

	"repro/internal/xmath/stats"
)

// FuzzGeneratedProgramExec drives generated programs with arbitrary
// inputs: execution must never panic, produce bounded instruction
// counts, and the taken-path cost can never exceed the lock-step
// dynamic cost.
func FuzzGeneratedProgramExec(f *testing.F) {
	f.Add(uint64(1), 0.0, 0.0, 0.0, 0.0)
	f.Add(uint64(42), 1.5, -2.5, 1e10, -1e-10)
	f.Add(uint64(99), -1.0, 0.5, 3.14, 2.71)
	// Non-finite and extreme inputs: execution must stay panic-free when
	// registers carry infinities, NaNs, extremes and denormals.
	f.Add(uint64(3), math.Inf(1), math.Inf(-1), math.NaN(), 0.0)
	f.Add(uint64(1234567), math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64, -0.0)
	f.Add(uint64(0), math.NaN(), math.NaN(), math.NaN(), math.NaN())
	f.Add(^uint64(0), 1e-300, -1e300, 5e-324, math.Pi)
	f.Fuzz(func(t *testing.T, seed uint64, r0, r1, r2, r3 float64) {
		g := NewGenerator(stats.NewRNG(seed))
		for _, p := range []*Program{
			g.Vertex(ComplexVertex),
			g.Fragment(ComplexFragment),
		} {
			res := p.Exec(Regs{r0, r1, r2, r3}, ConstSampler(0.5))
			dyn := p.DynamicCost()
			if res.Cost.Instructions > dyn.Instructions {
				t.Fatalf("taken-path instrs %d exceed dynamic bound %d",
					res.Cost.Instructions, dyn.Instructions)
			}
			if res.Cost.TexMemAccesses > dyn.TexMemAccesses {
				t.Fatalf("taken-path tex accesses %d exceed dynamic bound %d",
					res.Cost.TexMemAccesses, dyn.TexMemAccesses)
			}
		}
	})
}

// FuzzValidateArbitraryPrograms builds structurally arbitrary programs
// from fuzz input; Validate must classify them without panicking, and
// programs it accepts must execute safely.
func FuzzValidateArbitraryPrograms(f *testing.F) {
	f.Add(uint64(7), 5, 4, 0, 0)
	f.Add(uint64(9), 20, 99, -3, 12)
	// Boundary cases: zero-length request (clamped to 1), int extremes
	// on every operand index, max seed, and negative-heavy registers.
	f.Add(uint64(0), 0, 0, 0, 0)
	f.Add(^uint64(0), math.MaxInt, math.MaxInt, math.MinInt, math.MinInt)
	f.Add(uint64(13), math.MinInt, -1, -31, -32)
	f.Add(uint64(255), 32, 31, 30, 29)
	f.Fuzz(func(t *testing.T, seed uint64, n, dst, srcA, srcB int) {
		rng := stats.NewRNG(seed)
		if n < 0 {
			n = -n
		}
		n = n%32 + 1
		code := make([]Instr, 0, n)
		for i := 0; i < n; i++ {
			in := Instr{
				Op:   Op(rng.Intn(12)),
				Dst:  (dst + i) % 32,
				SrcA: (srcA + i) % 32,
				SrcB: (srcB + i) % 32,
			}
			switch in.Op {
			case OpLoop:
				in.Count = rng.Intn(4)
				if rng.Float64() < 0.7 {
					in.Body = []Instr{{Op: OpAdd, Dst: 4, SrcA: 0, SrcB: 1}}
				}
			case OpIf:
				if rng.Float64() < 0.7 {
					in.Body = []Instr{{Op: OpAdd, Dst: 4, SrcA: 0, SrcB: 1}}
				}
			case OpTex:
				in.Sampler = rng.Intn(12) - 2
			}
			code = append(code, in)
		}
		p := &Program{ID: 1, Name: "fuzz", Kind: FragmentKind, Code: code}
		if err := p.Validate(); err != nil {
			return // rejected is fine
		}
		// Accepted programs must execute without panicking.
		p.Exec(Regs{1, 2, 3, 4}, ConstSampler(1))
	})
}
