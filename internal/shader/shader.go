// Package shader defines the small shader ISA used by the graphics
// pipeline simulators: programs made of ALU, texture and structured
// control-flow instructions, a functional executor, and the static and
// dynamic cost models MEGsim consumes.
//
// Two properties from the paper drive the design:
//
//   - A shader is characterized by its *number of instructions*; the
//     per-frame vector of characteristics multiplies each shader's
//     execution count by that instruction count (Section III-B).
//   - Texture accesses are weighted by the number of memory accesses their
//     filtering mode generates: linear 2, bilinear 4, trilinear 8.
//   - Control-flow divergence is not critical on GPUs because warps run in
//     lock-step and both paths of a branch normally execute (Section I);
//     the dynamic cost model therefore charges both sides of every IF.
package shader

import "fmt"

// Kind distinguishes the two shader types of the pipeline.
type Kind int

const (
	// VertexKind shaders run in the Geometry Pipeline, one invocation
	// per vertex.
	VertexKind Kind = iota
	// FragmentKind shaders run in the Raster Pipeline, one invocation
	// per visible fragment.
	FragmentKind
)

// String returns "vertex" or "fragment".
func (k Kind) String() string {
	switch k {
	case VertexKind:
		return "vertex"
	case FragmentKind:
		return "fragment"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// FilterMode is the texture filtering mode of a TEX instruction.
type FilterMode int

const (
	// FilterNearest samples a single texel.
	FilterNearest FilterMode = iota
	// FilterLinear performs 2 memory accesses (paper weight 2).
	FilterLinear
	// FilterBilinear performs 4 memory accesses (paper weight 4).
	FilterBilinear
	// FilterTrilinear performs 8 memory accesses (paper weight 8).
	FilterTrilinear
)

// MemAccesses returns the number of memory accesses one texture sample
// with this filter mode generates. These are exactly the weights of
// Section III-B.
func (f FilterMode) MemAccesses() int {
	switch f {
	case FilterNearest:
		return 1
	case FilterLinear:
		return 2
	case FilterBilinear:
		return 4
	case FilterTrilinear:
		return 8
	default:
		panic(fmt.Sprintf("shader: unknown filter mode %d", int(f)))
	}
}

// String names the filter mode.
func (f FilterMode) String() string {
	switch f {
	case FilterNearest:
		return "nearest"
	case FilterLinear:
		return "linear"
	case FilterBilinear:
		return "bilinear"
	case FilterTrilinear:
		return "trilinear"
	default:
		return fmt.Sprintf("FilterMode(%d)", int(f))
	}
}

// Op is a shader instruction opcode.
type Op int

const (
	// OpMov copies SrcA (or Imm when SrcA < 0) to Dst.
	OpMov Op = iota
	// OpAdd computes Dst = SrcA + SrcB.
	OpAdd
	// OpMul computes Dst = SrcA * SrcB.
	OpMul
	// OpMad computes Dst = SrcA * SrcB + Dst (multiply-accumulate).
	OpMad
	// OpMin computes Dst = min(SrcA, SrcB).
	OpMin
	// OpMax computes Dst = max(SrcA, SrcB).
	OpMax
	// OpRsq computes Dst = 1/sqrt(|SrcA|) (0 yields 0).
	OpRsq
	// OpFrc computes Dst = SrcA - floor(SrcA).
	OpFrc
	// OpSin computes Dst = sin(SrcA).
	OpSin
	// OpTex samples texture Sampler at coordinates (SrcA, SrcB) with
	// Filter, writing the sampled value to Dst.
	OpTex
	// OpIf executes Body when SrcA > 0 and Else otherwise. The dynamic
	// cost model charges both sides (lock-step warps).
	OpIf
	// OpLoop executes Body Count times.
	OpLoop
)

// String names the opcode.
func (o Op) String() string {
	names := [...]string{"mov", "add", "mul", "mad", "min", "max", "rsq", "frc", "sin", "tex", "if", "loop"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// NumRegs is the size of the register file available to a shader
// invocation. Inputs are pre-loaded into low registers by the caller.
const NumRegs = 16

// Instr is a single shader instruction. Control-flow instructions (OpIf,
// OpLoop) carry nested bodies; all others are flat register operations.
type Instr struct {
	Op      Op
	Dst     int        // destination register
	SrcA    int        // first source register (-1 = use Imm)
	SrcB    int        // second source register
	Imm     float64    // immediate operand for OpMov with SrcA < 0
	Sampler int        // texture unit, OpTex only
	Filter  FilterMode // filtering mode, OpTex only
	Count   int        // trip count, OpLoop only
	Body    []Instr    // OpIf taken-path / OpLoop body
	Else    []Instr    // OpIf not-taken path
}

// Program is a complete shader.
type Program struct {
	ID   int    // unique within a workload; indexes VSCV/FSCV slots
	Name string // human-readable, e.g. "vs_skinning_2"
	Kind Kind
	Code []Instr
}

// Cost summarizes the execution cost of a program. Static and dynamic
// variants are both expressed with this type.
type Cost struct {
	// Instructions is the total instruction count. Control-flow
	// instructions count themselves once plus their bodies.
	Instructions int
	// ALUOps is the number of non-texture, non-control instructions.
	ALUOps int
	// TexSamples is the number of TEX instructions.
	TexSamples int
	// TexMemAccesses is the number of texture memory accesses after
	// applying the filter-mode weights (2/4/8).
	TexMemAccesses int
}

// Weighted returns the MEGsim characterization weight of the program: the
// instruction count with each texture instruction replaced by its
// filter-mode memory-access weight (Section III-B).
func (c Cost) Weighted() float64 {
	return float64(c.Instructions-c.TexSamples) + float64(c.TexMemAccesses)
}

// Add accumulates o into c.
func (c *Cost) Add(o Cost) {
	c.Instructions += o.Instructions
	c.ALUOps += o.ALUOps
	c.TexSamples += o.TexSamples
	c.TexMemAccesses += o.TexMemAccesses
}

// Scale returns c with every field multiplied by n.
func (c Cost) Scale(n int) Cost {
	return Cost{
		Instructions:   c.Instructions * n,
		ALUOps:         c.ALUOps * n,
		TexSamples:     c.TexSamples * n,
		TexMemAccesses: c.TexMemAccesses * n,
	}
}

// StaticCost returns the static cost of the program: every instruction in
// the listing counted exactly once regardless of control flow. This is
// "the number of instructions in that shader" used to weight execution
// counts in the vector of characteristics.
func (p *Program) StaticCost() Cost {
	return staticCost(p.Code)
}

func staticCost(code []Instr) Cost {
	var c Cost
	for i := range code {
		in := &code[i]
		c.Instructions++
		switch in.Op {
		case OpTex:
			c.TexSamples++
			c.TexMemAccesses += in.Filter.MemAccesses()
		case OpIf:
			c.Add(staticCost(in.Body))
			c.Add(staticCost(in.Else))
		case OpLoop:
			c.Add(staticCost(in.Body))
		default:
			c.ALUOps++
		}
	}
	return c
}

// DynamicCost returns the per-invocation dynamic cost of the program under
// the lock-step warp model: both sides of every IF execute, and loop
// bodies execute Count times. This is what one shader invocation charges
// the programmable processors and the texture caches in the timing
// simulator.
func (p *Program) DynamicCost() Cost {
	return dynamicCost(p.Code)
}

func dynamicCost(code []Instr) Cost {
	var c Cost
	for i := range code {
		in := &code[i]
		switch in.Op {
		case OpTex:
			c.Instructions++
			c.TexSamples++
			c.TexMemAccesses += in.Filter.MemAccesses()
		case OpIf:
			c.Instructions++ // the branch itself
			c.Add(dynamicCost(in.Body))
			c.Add(dynamicCost(in.Else))
		case OpLoop:
			c.Instructions++ // loop setup
			body := dynamicCost(in.Body)
			c.Add(body.Scale(max(in.Count, 0)))
		default:
			c.Instructions++
			c.ALUOps++
		}
	}
	return c
}

// Validate checks structural invariants: register indices in range,
// positive loop counts, and non-nil bodies for control flow. It returns a
// descriptive error for the first violation found.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("shader: program %d has empty name", p.ID)
	}
	if len(p.Code) == 0 {
		return fmt.Errorf("shader %q: empty program", p.Name)
	}
	return p.validate(p.Code, 0)
}

func (p *Program) validate(code []Instr, depth int) error {
	if depth > 8 {
		return fmt.Errorf("shader %q: control flow nested deeper than 8", p.Name)
	}
	for i := range code {
		in := &code[i]
		if in.Dst < 0 || in.Dst >= NumRegs {
			return fmt.Errorf("shader %q: instr %d (%v) dst register %d out of range", p.Name, i, in.Op, in.Dst)
		}
		// SrcA == -1 selects the immediate operand, which only OpMov
		// consumes; every other opcode reads SrcA as a register index.
		minSrcA := 0
		if in.Op == OpMov {
			minSrcA = -1
		}
		if in.SrcA < minSrcA || in.SrcA >= NumRegs || in.SrcB < 0 || in.SrcB >= NumRegs {
			return fmt.Errorf("shader %q: instr %d (%v) src registers (%d,%d) out of range", p.Name, i, in.Op, in.SrcA, in.SrcB)
		}
		switch in.Op {
		case OpLoop:
			if in.Count <= 0 {
				return fmt.Errorf("shader %q: instr %d loop count %d must be positive", p.Name, i, in.Count)
			}
			if len(in.Body) == 0 {
				return fmt.Errorf("shader %q: instr %d loop with empty body", p.Name, i)
			}
			if err := p.validate(in.Body, depth+1); err != nil {
				return err
			}
		case OpIf:
			if len(in.Body) == 0 {
				return fmt.Errorf("shader %q: instr %d if with empty body", p.Name, i)
			}
			if err := p.validate(in.Body, depth+1); err != nil {
				return err
			}
			if err := p.validate(in.Else, depth+1); err != nil {
				return err
			}
		case OpTex:
			if in.Sampler < 0 || in.Sampler >= 8 {
				return fmt.Errorf("shader %q: instr %d sampler %d out of range", p.Name, i, in.Sampler)
			}
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
