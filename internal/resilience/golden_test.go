package resilience

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/tbr"
	"repro/internal/workload"
)

// TestGoldenKillAndResume is the headline guarantee: a supervised run
// killed at a frame boundary and resumed from its checkpoint produces
// byte-identical frame statistics, a byte-identical final checkpoint
// file, and an identical merged observability snapshot to an
// uninterrupted run — at tile-workers 1, 2 and 4, under injected
// microarchitectural faults (tbr.FaultConfig stalls and dropped tiles)
// and deterministic first-attempt panics, with the kill point and the
// supervisor worker count varied between the killed and resumed halves.
func TestGoldenKillAndResume(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["bbr1"], workload.TestScale)
	frames := make([]int, 0, 12)
	for f := 0; f < tr.NumFrames() && f < 12; f++ {
		frames = append(frames, f)
	}
	if len(frames) < 6 {
		t.Fatalf("trace too short for the golden test: %d frames", len(frames))
	}

	// Deterministic fault injection: stalled shader cores and dropped
	// tiles, keyed by (seed, frame, tile) — identical however the frames
	// are scheduled.
	baseGPU := tbr.DefaultConfig()
	baseGPU.Faults = tbr.FaultConfig{Seed: 7, StallRate: 0.05, StallCycles: 64, DropTileRate: 0.02}

	// mkFn simulates one frame on its own simulator instance, recording
	// into the supervisor's per-frame registry. When flaky, every frame
	// congruent to 1 mod 4 panics on its first attempt — retried runs
	// must still be byte-identical.
	mkFn := func(gpu tbr.Config, flaky *attemptTracker) FrameFunc {
		return func(ctx context.Context, frame int, reg *obs.Registry) (tbr.FrameStats, error) {
			if flaky != nil && frame%4 == 1 && flaky.next(frame) == 1 {
				panic("injected first-attempt panic")
			}
			g := gpu
			g.Obs = reg
			sim, err := tbr.New(g, tr)
			if err != nil {
				return tbr.FrameStats{}, err
			}
			return sim.SimulateFrame(frame), nil
		}
	}

	type golden struct {
		stats map[int]tbr.FrameStats
		snap  *obs.Snapshot
	}
	var crossTW *golden

	for i, tw := range []int{1, 2, 4} {
		gpu := baseGPU
		gpu.TileWorkers = tw
		dir := t.TempDir()
		fp := "golden-fp"

		// Uninterrupted reference run.
		refPath := filepath.Join(dir, "ref.ckpt")
		refObs := obs.New()
		refCfg := noBackoff(Config{Workers: 2, Obs: refObs, CheckpointPath: refPath, Fingerprint: fp, Seed: 1})
		refRes, err := Run(context.Background(), frames, mkFn(gpu, newAttemptTracker()), refCfg)
		if err != nil {
			t.Fatalf("tw=%d: reference run: %v", tw, err)
		}
		if len(refRes.Stats) != len(frames) {
			t.Fatalf("tw=%d: reference incomplete: %d frames", tw, len(refRes.Stats))
		}
		refSnap := refObs.Snapshot()
		refBytes, err := os.ReadFile(refPath)
		if err != nil {
			t.Fatal(err)
		}

		// Killed run: cancel after a tile-worker-dependent number of
		// completed frames — a different "random" kill boundary per
		// configuration.
		killAfter := int64(3 + 2*i)
		killPath := filepath.Join(dir, "killed.ckpt")
		ctx, cancel := context.WithCancel(context.Background())
		var completions atomic.Int64
		killObs := obs.New()
		killCfg := noBackoff(Config{Workers: 2, Obs: killObs, CheckpointPath: killPath, Fingerprint: fp, Seed: 1})
		inner := mkFn(gpu, newAttemptTracker())
		_, err = Run(ctx, frames, func(c context.Context, frame int, reg *obs.Registry) (tbr.FrameStats, error) {
			st, err := inner(c, frame, reg)
			if err == nil && completions.Add(1) >= killAfter {
				cancel()
			}
			return st, err
		}, killCfg)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("tw=%d: killed run: err = %v, want context.Canceled", tw, err)
		}

		// Resume under a different supervisor worker count.
		resObs := obs.New()
		resCfg := noBackoff(Config{Workers: 3, Obs: resObs, CheckpointPath: killPath, Fingerprint: fp, Seed: 1, Resume: true})
		resRes, err := Run(context.Background(), frames, mkFn(gpu, newAttemptTracker()), resCfg)
		if err != nil {
			t.Fatalf("tw=%d: resumed run: %v", tw, err)
		}
		if resRes.ResumeErr != nil {
			t.Fatalf("tw=%d: resumed run: ResumeErr = %v", tw, resRes.ResumeErr)
		}
		if len(resRes.Resumed) == 0 {
			t.Fatalf("tw=%d: resume adopted nothing (kill landed after completion?)", tw)
		}

		if !reflect.DeepEqual(resRes.Stats, refRes.Stats) {
			t.Fatalf("tw=%d: resumed stats differ from uninterrupted run", tw)
		}
		if snap := resObs.Snapshot(); !reflect.DeepEqual(snap, refSnap) {
			t.Fatalf("tw=%d: resumed obs snapshot differs from uninterrupted run", tw)
		}
		resBytes, err := os.ReadFile(killPath)
		if err != nil {
			t.Fatal(err)
		}
		if string(resBytes) != string(refBytes) {
			t.Fatalf("tw=%d: final checkpoint bytes differ between killed+resumed and uninterrupted runs", tw)
		}

		// Worker invariance across the raster-stage shard counts: every
		// tile-worker configuration produces the same statistics and obs.
		if crossTW == nil {
			crossTW = &golden{stats: refRes.Stats, snap: refSnap}
		} else {
			if !reflect.DeepEqual(refRes.Stats, crossTW.stats) {
				t.Fatalf("tw=%d: stats differ from tile-workers=1", tw)
			}
			if !reflect.DeepEqual(refSnap, crossTW.snap) {
				t.Fatalf("tw=%d: obs snapshot differs from tile-workers=1", tw)
			}
		}
	}
}
