package resilience

import (
	"testing"
	"time"
)

func TestBackoffDeterministic(t *testing.T) {
	for frame := 0; frame < 8; frame++ {
		for attempt := 1; attempt <= 6; attempt++ {
			a := Backoff(0, 0, 42, frame, attempt)
			b := Backoff(0, 0, 42, frame, attempt)
			if a != b {
				t.Fatalf("frame %d attempt %d: %v != %v", frame, attempt, a, b)
			}
		}
	}
	// A different seed reshapes the jitter somewhere in the grid.
	same := true
	for frame := 0; frame < 8 && same; frame++ {
		if Backoff(0, 0, 1, frame, 1) != Backoff(0, 0, 2, frame, 1) {
			same = false
		}
	}
	if same {
		t.Fatal("seed does not influence jitter")
	}
}

func TestBackoffEnvelope(t *testing.T) {
	base, cap := 10*time.Millisecond, 80*time.Millisecond
	for frame := 0; frame < 16; frame++ {
		prevCeil := time.Duration(0)
		for attempt := 1; attempt <= 8; attempt++ {
			d := Backoff(base, cap, 7, frame, attempt)
			ceil := base << (attempt - 1)
			if ceil > cap || ceil <= 0 {
				ceil = cap
			}
			if d > ceil {
				t.Fatalf("frame %d attempt %d: %v exceeds ceiling %v", frame, attempt, d, ceil)
			}
			if d < ceil/2 {
				t.Fatalf("frame %d attempt %d: %v below jitter floor %v", frame, attempt, d, ceil/2)
			}
			if ceil < prevCeil {
				t.Fatalf("ceiling shrank: %v < %v", ceil, prevCeil)
			}
			prevCeil = ceil
		}
	}
}

func TestBackoffDisabledAndDefaults(t *testing.T) {
	if d := Backoff(-1, 0, 0, 3, 2); d != 0 {
		t.Fatalf("negative base should disable backoff, got %v", d)
	}
	d := Backoff(0, 0, 0, 0, 1)
	if d <= 0 || d > DefaultBackoffBase {
		t.Fatalf("zero config should use defaults, got %v", d)
	}
	// Deep attempts saturate at the cap.
	if d := Backoff(time.Millisecond, 8*time.Millisecond, 0, 0, 30); d > 8*time.Millisecond {
		t.Fatalf("cap not honored: %v", d)
	}
}
