// Package resilience is the run supervisor that makes long sampled-
// simulation campaigns survivable: per-frame fault isolation with
// retry, capped exponential backoff and deterministic jitter;
// quarantine of frames that keep failing; frame-granularity
// checkpointing (atomic write-tmp-rename snapshots of completed frame
// stats plus observability deltas, CRC-checksummed) with resume; a
// wall-clock watchdog that flags stalled workers through obs
// heartbeats; and graceful degradation of the MEGsim methodology —
// when a quarantined frame is a cluster representative, the
// next-closest in-cluster frame substitutes and the extrapolation
// weights rescale, with the degradation reported, never silent.
//
// The headline guarantee, golden-tested: kill a supervised run at any
// frame boundary (cancellation, SIGTERM, crash after a checkpoint
// write), resume it from the checkpoint, and the final frame statistics
// and merged observability snapshot are byte-identical to an
// uninterrupted run — at any worker count, and under injected faults
// (tbr.FaultConfig stalls and panicking invariant violations).
//
// Determinism model: frames are simulated under frame isolation
// (tbr.Config.FlushCachesPerFrame), so each frame's statistics and its
// per-frame obs delta are pure functions of the frame — independent of
// worker count, retry count (failed attempts record into a discarded
// local registry) and resume point. The supervisor merges per-frame
// deltas into the parent registry in ascending frame order at the end
// of the run, and obs snapshots sort canonically, so the merged
// snapshot is reproducible however the run was interleaved or split
// across processes.
package resilience

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
	"repro/internal/tbr"
)

// FrameFunc simulates one frame, recording observability into reg (nil
// when the supervisor's parent registry is disabled). Implementations
// must be pure per frame — same frame, same stats — which tbr frame
// isolation provides; the supervisor's byte-identical resume guarantee
// rests on it. A panic is treated exactly like an error return: the
// attempt failed and may be retried.
type FrameFunc func(ctx context.Context, frame int, reg *obs.Registry) (tbr.FrameStats, error)

// Config configures a supervised run. The zero value is usable: a
// GOMAXPROCS-wide pool, DefaultMaxAttempts per frame, default backoff,
// no checkpointing, no watchdog.
type Config struct {
	// Workers bounds the worker goroutines (0 = GOMAXPROCS). Never
	// affects results.
	Workers int

	// MaxAttempts is how many times a frame is tried before quarantine
	// (0 = DefaultMaxAttempts; 1 = no retry).
	MaxAttempts int

	// MaxRequeues bounds how many times one frame may be requeued after
	// worker-loss failures (errors matching ErrWorkerLost) before such
	// failures start counting as ordinary attempts. A lost worker never
	// gave the frame a fair try, so requeues are free — this cap only
	// keeps a permanently dead fleet from looping forever.
	// 0 = DefaultMaxRequeues; negative = no free requeues.
	MaxRequeues int

	// BackoffBase and BackoffCap shape the capped exponential backoff
	// between attempts: attempt k sleeps ~Base*2^(k-1), jittered
	// deterministically from (Seed, frame, attempt), capped at Cap.
	// Zero values select DefaultBackoffBase / DefaultBackoffCap; a
	// negative BackoffBase disables backoff entirely (tests).
	BackoffBase time.Duration
	BackoffCap  time.Duration

	// Seed drives the deterministic backoff jitter. Backoff timing
	// never affects results, only retry pacing.
	Seed uint64

	// CheckpointPath, when non-empty, enables frame-granularity
	// checkpointing: after every completed frame the full progress
	// snapshot is rewritten atomically (write-tmp-rename, CRC-guarded),
	// so a reader never observes a partial file and a crash loses at
	// most the in-flight frames.
	CheckpointPath string

	// Fingerprint identifies the run configuration (workload, GPU
	// config, frame set). A checkpoint whose fingerprint differs is
	// rejected on resume — resuming under a different configuration
	// would silently mix incompatible statistics.
	Fingerprint string

	// Resume, when true, loads CheckpointPath (if present and valid)
	// and skips its completed frames. A corrupt, truncated or
	// mismatched checkpoint is reported through Result.ResumeErr and
	// the run falls back to a fresh start — never a silent partial
	// trust of damaged state.
	Resume bool

	// StreamState, when non-empty, is carried verbatim into every
	// checkpoint the supervisor writes (Checkpoint.Stream): the
	// streaming sampler passes its strata snapshot here so phase-2
	// checkpoint rewrites preserve the phase-1 state inside the same
	// CRC envelope. Batch campaigns leave it empty, which keeps their
	// checkpoint bytes unchanged.
	StreamState []byte

	// Quarantine pre-quarantines frames: they are never attempted, as
	// if they had exhausted their retries. Operators use it to route
	// around known-bad frames; the degraded-mode tests use it to force
	// representative substitution deterministically.
	Quarantine []int

	// StallTimeout arms the watchdog: a worker that holds one frame
	// longer than this wall-clock span is flagged (Result.StalledWorkers
	// and a log line). Flagging never interrupts the worker — the
	// simulator has no safe preemption point — it makes the stall
	// visible. 0 disables.
	StallTimeout time.Duration

	// Obs, when enabled, receives every completed frame's
	// observability delta (merged in ascending frame order at run end)
	// plus the supervisor's kill-point-stable counters
	// resilience.frames_ok and resilience.frames_quarantined. Run-local
	// facts that would differ between an interrupted and an
	// uninterrupted run — retries, resumed frames, watchdog flags — are
	// reported through Result instead, preserving the byte-identical
	// resume guarantee on the registry.
	Obs *obs.Registry

	// Log, when non-nil, receives progress and warning lines.
	Log io.Writer

	// now and sleep are test seams; nil selects the real clock.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
}

// Default retry/backoff parameters.
const (
	DefaultMaxAttempts = 3
	DefaultBackoffBase = 5 * time.Millisecond
	DefaultBackoffCap  = 500 * time.Millisecond
)

func (c *Config) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return c.MaxAttempts
}

// Backoff returns the jittered delay before retrying frame after
// `attempt` failed attempts (attempt >= 1): base*2^(attempt-1) scaled
// by a deterministic jitter factor in [0.5, 1.0] drawn from
// (seed, frame, attempt), capped. Deterministic jitter keeps retry
// schedules reproducible across runs — the same flaky frame backs off
// identically every time — while still decorrelating frames that fail
// together.
func Backoff(base, cap time.Duration, seed uint64, frame, attempt int) time.Duration {
	if base < 0 {
		return 0
	}
	if base == 0 {
		base = DefaultBackoffBase
	}
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	// splitmix64 finalizer over the mixed coordinates, as the fault
	// layer does: jitter is a pure function of (seed, frame, attempt).
	x := seed ^ uint64(frame)*0x9E3779B97F4A7C15 ^ uint64(attempt)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	jitter := 0.5 + 0.5*float64(x>>11)/(1<<53) // [0.5, 1.0)
	return time.Duration(float64(d) * jitter)
}

// sleepCtx sleeps for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// QuarantineRecord describes one quarantined frame.
type QuarantineRecord struct {
	// Frame is the quarantined frame index.
	Frame int `json:"frame"`
	// Attempts is how many attempts were made (0 for pre-quarantined
	// frames from Config.Quarantine).
	Attempts int `json:"attempts"`
	// Err is the last attempt's error ("pre-quarantined" for frames
	// the configuration excluded).
	Err string `json:"err"`
}

func (q QuarantineRecord) String() string {
	return fmt.Sprintf("frame %d quarantined after %d attempts: %s", q.Frame, q.Attempts, q.Err)
}

// Result is the outcome of a supervised run. Even a cancelled run
// returns one, carrying whatever completed — the final checkpoint has
// already been flushed when Run returns.
type Result struct {
	// Stats maps frame -> statistics for every completed frame.
	Stats map[int]tbr.FrameStats
	// Quarantined lists the frames given up on, in ascending frame
	// order. The run as a whole still succeeds; callers decide whether
	// quarantine is tolerable (the MEGsim layer substitutes
	// representatives and reports degradation).
	Quarantined []QuarantineRecord
	// Retried counts frames that needed more than one attempt.
	Retried int
	// Requeued counts worker-loss requeues across the run: dispatches
	// that failed because the executing worker was lost and re-entered
	// the pool without charging the frame an attempt.
	Requeued int
	// Resumed lists the frames restored from the checkpoint instead of
	// simulated, in ascending order.
	Resumed []int
	// ResumeErr records why a requested resume fell back to a fresh
	// run (corrupt/truncated/mismatched checkpoint); nil on a clean
	// resume or when no resume was requested.
	ResumeErr error
	// StalledWorkers lists workers the watchdog flagged, ascending.
	StalledWorkers []int
	// CheckpointPath is the checkpoint file the run maintained ("" if
	// checkpointing was disabled).
	CheckpointPath string
	// CheckpointErr records the first checkpoint write/sync failure.
	// The run degrades to continue-without-checkpoint rather than
	// failing — losing durability must not abort the science — so this
	// is the caller's only signal that a crash would now lose progress.
	CheckpointErr error
}

// QuarantinedFrames returns the quarantined frame indices, ascending.
func (r *Result) QuarantinedFrames() []int {
	out := make([]int, 0, len(r.Quarantined))
	for _, q := range r.Quarantined {
		out = append(out, q.Frame)
	}
	return out
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}
