package resilience

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/tbr"
	"repro/internal/xmath/linalg"
)

// Substitution records one degraded cluster: its quarantined
// representative and the stand-in that replaced it.
type Substitution struct {
	// Cluster is the cluster whose representative was quarantined.
	Cluster int `json:"cluster"`
	// Original is the quarantined representative frame.
	Original int `json:"original"`
	// Substitute is the next-closest in-cluster frame standing in, or
	// -1 when every member of the cluster is quarantined (the cluster
	// is lost and its weight is redistributed).
	Substitute int `json:"substitute"`
	// OriginalDist and SubstituteDist are the squared feature-space
	// distances to the cluster centroid — how much representativeness
	// the substitution gave up.
	OriginalDist   float64 `json:"original_dist"`
	SubstituteDist float64 `json:"substitute_dist"`
}

// DegradedSelection is a Selection adjusted for quarantined frames: per
// cluster either the original representative, a substitute, or -1 for
// a lost cluster. Estimation rescales the surviving clusters' weights
// so the extrapolation still targets the full sequence — degraded
// accuracy, reported loudly, instead of a dead run.
type DegradedSelection struct {
	// Selection is the original clustering, untouched.
	Selection *core.Selection
	// Representatives[c] is cluster c's effective representative (-1 =
	// lost).
	Representatives []int `json:"representatives"`
	// Substitutions lists every cluster that runs on a stand-in,
	// ascending by cluster.
	Substitutions []Substitution `json:"substitutions,omitempty"`
	// LostClusters lists clusters with no usable member, ascending.
	LostClusters []int `json:"lost_clusters,omitempty"`
	// CoveredFrames is the number of sequence frames whose cluster
	// still has a representative.
	CoveredFrames int `json:"covered_frames"`
}

// Degraded reports whether any substitution or loss occurred.
func (d *DegradedSelection) Degraded() bool {
	return len(d.Substitutions) > 0 || len(d.LostClusters) > 0
}

// Coverage returns the fraction of sequence frames still represented
// (1.0 when nothing was lost; substitutions do not reduce coverage).
func (d *DegradedSelection) Coverage() float64 {
	n := d.Selection.NumFrames()
	if n == 0 {
		return 0
	}
	return float64(d.CoveredFrames) / float64(n)
}

// ActiveRepresentatives returns the frames that must be simulated
// (every non-lost cluster's effective representative).
func (d *DegradedSelection) ActiveRepresentatives() []int {
	out := make([]int, 0, len(d.Representatives))
	for _, r := range d.Representatives {
		if r >= 0 {
			out = append(out, r)
		}
	}
	return out
}

// Degrade adjusts a selection for a set of quarantined frames. For each
// cluster whose representative is quarantined it promotes the
// next-closest in-cluster frame (by squared distance to the centroid,
// frame index breaking ties for determinism); a cluster with no
// non-quarantined member is lost and its weight will be redistributed
// by Estimate. With no quarantined representatives the result is the
// selection unchanged (zero substitutions).
func Degrade(sel *core.Selection, quarantined map[int]bool) *DegradedSelection {
	d := &DegradedSelection{
		Selection:       sel,
		Representatives: make([]int, len(sel.Representatives)),
	}
	for c, rep := range sel.Representatives {
		if !quarantined[rep] {
			d.Representatives[c] = rep
			d.CoveredFrames += sel.Clusters.Sizes[c]
			continue
		}
		sub, subDist := closestSurvivor(sel, c, quarantined)
		d.Representatives[c] = sub
		d.Substitutions = append(d.Substitutions, Substitution{
			Cluster:        c,
			Original:       rep,
			Substitute:     sub,
			OriginalDist:   linalg.SquaredDistance(sel.Features.Vectors[rep], sel.Clusters.Centroids[c]),
			SubstituteDist: subDist,
		})
		if sub < 0 {
			d.LostClusters = append(d.LostClusters, c)
		} else {
			d.CoveredFrames += sel.Clusters.Sizes[c]
		}
	}
	return d
}

// closestSurvivor returns the non-quarantined member of cluster c
// closest to its centroid (ties break on the lower frame index), or
// (-1, NaN) when none survives.
func closestSurvivor(sel *core.Selection, c int, quarantined map[int]bool) (int, float64) {
	best, bestDist := -1, math.Inf(1)
	for f, cl := range sel.Clusters.Assign {
		if cl != c || quarantined[f] {
			continue
		}
		if dist := linalg.SquaredDistance(sel.Features.Vectors[f], sel.Clusters.Centroids[c]); dist < bestDist {
			best, bestDist = f, dist
		}
	}
	if best < 0 {
		return -1, math.NaN()
	}
	return best, bestDist
}

// Estimate extrapolates full-sequence statistics from the degraded
// representative set: surviving clusters scale by their exact sizes
// (identical to core.Selection.Estimate when nothing degraded), and
// when clusters were lost the partial total is rescaled by
// NumFrames/CoveredFrames so the estimate still targets the whole
// sequence — the lost clusters' share is assumed to behave like the
// surviving mix, which is exactly the accuracy loss the degraded
// status reports.
func (d *DegradedSelection) Estimate(repStats map[int]tbr.FrameStats) (tbr.FrameStats, error) {
	if d.CoveredFrames == 0 {
		return tbr.FrameStats{}, fmt.Errorf("resilience: every cluster lost to quarantine; no estimate possible")
	}
	var total tbr.FrameStats
	for c, rep := range d.Representatives {
		if rep < 0 {
			continue
		}
		st, ok := repStats[rep]
		if !ok {
			return tbr.FrameStats{}, fmt.Errorf("resilience: missing simulated stats for representative frame %d (cluster %d)", rep, c)
		}
		scaled := st.Scale(uint64(d.Selection.Clusters.Sizes[c]))
		total.Add(&scaled)
	}
	if n := d.Selection.NumFrames(); d.CoveredFrames < n {
		total = total.ScaleF(float64(n) / float64(d.CoveredFrames))
	}
	total.Frame = -1
	return total, nil
}
