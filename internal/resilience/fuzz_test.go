package resilience

import (
	"errors"
	"reflect"
	"testing"
)

// FuzzCheckpointDecode hammers the snapshot decoder with arbitrary
// bytes. The contract under test: the decoder never panics, every
// rejection wraps ErrCorrupt or ErrFingerprint semantics (here: any
// error), and anything it accepts survives a canonical re-encode /
// re-decode round trip — a checkpoint is either rejected whole or
// trusted whole, never partially.
func FuzzCheckpointDecode(f *testing.F) {
	valid, err := EncodeCheckpoint(sampleCheckpoint())
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(nil))
	f.Add([]byte("{}"))
	f.Add([]byte("definitely not json"))
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated
	corrupted := append([]byte(nil), valid...)
	corrupted[len(corrupted)/3] ^= 0xFF
	f.Add(corrupted)
	f.Add([]byte(`{"magic":"megsim-checkpoint","version":1,"crc32":0,"body":{"fingerprint":"x","frames":[{"frame":-1}]}}`))
	f.Add([]byte(`{"magic":"megsim-checkpoint","version":1,"crc32":0,"body":null}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCheckpoint(data)
		if err != nil {
			if c != nil {
				t.Fatalf("decode returned both a checkpoint and an error: %v", err)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("rejection does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		re, err := EncodeCheckpoint(c)
		if err != nil {
			t.Fatalf("accepted checkpoint failed to re-encode: %v", err)
		}
		c2, err := DecodeCheckpoint(re)
		if err != nil {
			t.Fatalf("canonical re-encode failed to decode: %v", err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatalf("canonical round trip not stable:\n got %+v\nwant %+v", c2, c)
		}
	})
}
