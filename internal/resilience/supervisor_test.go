package resilience

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tbr"
	"repro/internal/tbr/mem"
)

// synthStats is the deterministic per-frame "simulation" the supervisor
// tests run: cheap, pure, and distinct per frame.
func synthStats(frame int) tbr.FrameStats {
	return tbr.FrameStats{
		Frame:  frame,
		Cycles: uint64(frame)*100 + 7,
		DRAM:   mem.DRAMStats{Accesses: uint64(frame+1) * 10},
	}
}

// attemptTracker counts attempts per frame so FrameFuncs can fail the
// first k attempts deterministically.
type attemptTracker struct {
	mu sync.Mutex
	n  map[int]int
}

func newAttemptTracker() *attemptTracker { return &attemptTracker{n: map[int]int{}} }

func (a *attemptTracker) next(frame int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n[frame]++
	return a.n[frame]
}

func (a *attemptTracker) count(frame int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n[frame]
}

func (a *attemptTracker) total() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := 0
	for _, c := range a.n {
		t += c
	}
	return t
}

func noBackoff(cfg Config) Config {
	cfg.BackoffBase = -1
	return cfg
}

func TestRunRetriesAndQuarantines(t *testing.T) {
	tr := newAttemptTracker()
	fn := func(ctx context.Context, frame int, reg *obs.Registry) (tbr.FrameStats, error) {
		attempt := tr.next(frame)
		switch {
		case frame == 2:
			return tbr.FrameStats{}, fmt.Errorf("frame 2 always fails")
		case frame == 4:
			panic("frame 4 always panics")
		case frame == 3 && attempt < 3:
			return tbr.FrameStats{}, fmt.Errorf("flaky, attempt %d", attempt)
		}
		return synthStats(frame), nil
	}
	res, err := Run(context.Background(), []int{0, 1, 2, 3, 4, 5}, fn, noBackoff(Config{Workers: 2, MaxAttempts: 3}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range []int{0, 1, 3, 5} {
		if st, ok := res.Stats[f]; !ok || st != synthStats(f) {
			t.Fatalf("frame %d: stats missing or wrong: %+v", f, st)
		}
	}
	if got := res.QuarantinedFrames(); !reflect.DeepEqual(got, []int{2, 4}) {
		t.Fatalf("quarantined %v, want [2 4]", got)
	}
	for _, q := range res.Quarantined {
		if q.Attempts != 3 {
			t.Fatalf("frame %d quarantined after %d attempts, want 3", q.Frame, q.Attempts)
		}
		if q.Err == "" {
			t.Fatalf("frame %d quarantine has empty error", q.Frame)
		}
	}
	if res.Retried != 1 {
		t.Fatalf("Retried = %d, want 1 (only frame 3 succeeded after retries)", res.Retried)
	}
	if tr.count(3) != 3 {
		t.Fatalf("frame 3 attempted %d times, want 3", tr.count(3))
	}
}

func TestRunKillAndResume(t *testing.T) {
	frames := []int{0, 1, 2, 3, 4, 5, 6, 7}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cfg := noBackoff(Config{Workers: 1, CheckpointPath: path, Fingerprint: "fp-kill"})

	// Uninterrupted reference run.
	want, err := Run(context.Background(), frames, func(ctx context.Context, frame int, reg *obs.Registry) (tbr.FrameStats, error) {
		return synthStats(frame), nil
	}, noBackoff(Config{Workers: 1}))
	if err != nil {
		t.Fatal(err)
	}

	// Kill: cancel the context after 3 completed frames. Workers stop at
	// the next frame boundary; the checkpoint keeps what completed.
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	res1, err := Run(ctx, frames, func(ctx context.Context, frame int, reg *obs.Registry) (tbr.FrameStats, error) {
		if done.Add(1) >= 3 {
			cancel()
		}
		return synthStats(frame), nil
	}, cfg)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run: err = %v, want context.Canceled", err)
	}
	if len(res1.Stats) == 0 || len(res1.Stats) == len(frames) {
		t.Fatalf("killed run completed %d frames; want a strict partial", len(res1.Stats))
	}

	// Resume: only the missing frames are simulated.
	tr := newAttemptTracker()
	rcfg := cfg
	rcfg.Resume = true
	res2, err := Run(context.Background(), frames, func(ctx context.Context, frame int, reg *obs.Registry) (tbr.FrameStats, error) {
		tr.next(frame)
		return synthStats(frame), nil
	}, rcfg)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if res2.ResumeErr != nil {
		t.Fatalf("resumed run: ResumeErr = %v", res2.ResumeErr)
	}
	var adopted []int
	for f := range res1.Stats {
		adopted = append(adopted, f)
		if tr.count(f) != 0 {
			t.Fatalf("frame %d was re-simulated despite being checkpointed", f)
		}
	}
	sort.Ints(adopted)
	if !reflect.DeepEqual(res2.Resumed, adopted) {
		t.Fatalf("Resumed = %v, want %v", res2.Resumed, adopted)
	}
	if !reflect.DeepEqual(res2.Stats, want.Stats) {
		t.Fatalf("resumed stats differ from uninterrupted run:\n got %+v\nwant %+v", res2.Stats, want.Stats)
	}
}

func TestRunResumeRejectsDamagedCheckpoint(t *testing.T) {
	frames := []int{0, 1, 2}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	tr := newAttemptTracker()
	cfg := noBackoff(Config{Workers: 1, CheckpointPath: path, Fingerprint: "fp", Resume: true})
	res, err := Run(context.Background(), frames, func(ctx context.Context, frame int, reg *obs.Registry) (tbr.FrameStats, error) {
		tr.next(frame)
		return synthStats(frame), nil
	}, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(res.ResumeErr, ErrCorrupt) {
		t.Fatalf("ResumeErr = %v, want ErrCorrupt", res.ResumeErr)
	}
	if tr.total() != len(frames) {
		t.Fatalf("fresh fallback simulated %d attempts, want %d", tr.total(), len(frames))
	}
	if len(res.Stats) != len(frames) {
		t.Fatalf("fresh fallback completed %d frames, want %d", len(res.Stats), len(frames))
	}
	// The damaged file has been replaced by a valid checkpoint.
	if _, err := LoadCheckpoint(path, "fp"); err != nil {
		t.Fatalf("checkpoint not repaired after fresh run: %v", err)
	}

	// A structurally valid checkpoint from a different configuration is
	// rejected with the fingerprint error.
	if err := SaveCheckpoint(path, &Checkpoint{Fingerprint: "other"}); err != nil {
		t.Fatal(err)
	}
	res, err = Run(context.Background(), frames, func(ctx context.Context, frame int, reg *obs.Registry) (tbr.FrameStats, error) {
		return synthStats(frame), nil
	}, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(res.ResumeErr, ErrFingerprint) {
		t.Fatalf("ResumeErr = %v, want ErrFingerprint", res.ResumeErr)
	}
}

func TestRunPreQuarantineAndDegenerates(t *testing.T) {
	tr := newAttemptTracker()
	fn := func(ctx context.Context, frame int, reg *obs.Registry) (tbr.FrameStats, error) {
		tr.next(frame)
		return synthStats(frame), nil
	}
	res, err := Run(context.Background(), []int{0, 1, 1, 2}, fn, noBackoff(Config{Quarantine: []int{1}}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tr.count(1) != 0 {
		t.Fatal("pre-quarantined frame was attempted")
	}
	if got := res.QuarantinedFrames(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("quarantined %v, want [1]", got)
	}
	if res.Quarantined[0].Err != "pre-quarantined" || res.Quarantined[0].Attempts != 0 {
		t.Fatalf("pre-quarantine record wrong: %+v", res.Quarantined[0])
	}
	if len(res.Stats) != 2 {
		t.Fatalf("stats for %d frames, want 2 (duplicates collapse)", len(res.Stats))
	}

	// Empty frame list: an empty, valid run.
	res, err = Run(context.Background(), nil, fn, Config{})
	if err != nil || len(res.Stats) != 0 {
		t.Fatalf("empty run: (%v, %v)", res, err)
	}

	// Negative frames are a caller bug, not a resilience case.
	if _, err := Run(context.Background(), []int{-1}, fn, Config{}); err == nil {
		t.Fatal("negative frame accepted")
	}

	// A pre-cancelled context completes nothing but still returns a
	// result and a valid (empty) checkpoint.
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err = Run(ctx, []int{0, 1}, fn, noBackoff(Config{CheckpointPath: path, Fingerprint: "fp"}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: err = %v", err)
	}
	if len(res.Stats) != 0 {
		t.Fatalf("pre-cancelled run completed %d frames", len(res.Stats))
	}
	if _, err := LoadCheckpoint(path, "fp"); err != nil {
		t.Fatalf("pre-cancelled run left no valid checkpoint: %v", err)
	}
}

func TestRunCheckpointWriteFailureDegrades(t *testing.T) {
	reg := obs.New()
	cfg := noBackoff(Config{
		CheckpointPath: filepath.Join(t.TempDir(), "no-such-dir", "run.ckpt"),
		Obs:            reg,
	})
	res, err := Run(context.Background(), []int{0, 1}, func(ctx context.Context, frame int, reg *obs.Registry) (tbr.FrameStats, error) {
		return synthStats(frame), nil
	}, cfg)
	// The run degrades to continue-without-checkpoint: it succeeds, and
	// the durability loss surfaces through Result.CheckpointErr plus the
	// obs counter — not as a run failure.
	if err != nil {
		t.Fatalf("checkpoint write failure aborted the run: %v", err)
	}
	if res.CheckpointErr == nil {
		t.Fatal("unwritable checkpoint path did not surface through CheckpointErr")
	}
	if len(res.Stats) != 2 {
		t.Fatalf("run degraded badly on checkpoint failure: %d frames", len(res.Stats))
	}
	if got := reg.Snapshot().Counters["resilience.checkpoint_write_failed"]; got != 1 {
		t.Fatalf("checkpoint_write_failed counter = %d, want 1 (first failure disables checkpointing)", got)
	}
}

func TestRunWatchdogFlagsStall(t *testing.T) {
	var stallOnce sync.Once
	fn := func(ctx context.Context, frame int, reg *obs.Registry) (tbr.FrameStats, error) {
		if frame == 0 {
			stallOnce.Do(func() { time.Sleep(150 * time.Millisecond) })
		}
		return synthStats(frame), nil
	}
	res, err := Run(context.Background(), []int{0, 1, 2, 3}, fn, noBackoff(Config{Workers: 2, StallTimeout: 20 * time.Millisecond}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.StalledWorkers) == 0 {
		t.Fatal("watchdog did not flag the stalled worker")
	}
	if len(res.Stats) != 4 {
		t.Fatalf("stall flagging disturbed the run: %d frames", len(res.Stats))
	}
}

// TestRunObsDeterministicAcrossWorkersAndRetries is the supervisor-level
// half of the byte-identical guarantee: the parent registry's snapshot
// is a pure function of the completed frame set — independent of worker
// count and of how many attempts each frame needed.
func TestRunObsDeterministicAcrossWorkersAndRetries(t *testing.T) {
	frames := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	mkFn := func(tr *attemptTracker, flaky bool) FrameFunc {
		return func(ctx context.Context, frame int, reg *obs.Registry) (tbr.FrameStats, error) {
			attempt := tr.next(frame)
			if flaky && frame%3 == 0 && attempt == 1 {
				// Record into the registry BEFORE failing: the torn local
				// delta must be discarded, not merged.
				reg.Counter("torn.partial").Add(99)
				return tbr.FrameStats{}, fmt.Errorf("flaky first attempt")
			}
			reg.Counter("frame.visits").Add(1)
			reg.Counter(fmt.Sprintf("frame.%d.cycles", frame)).Add(synthStats(frame).Cycles)
			reg.Histogram("frame.cycles").Observe(synthStats(frame).Cycles)
			return synthStats(frame), nil
		}
	}

	var base *obs.Snapshot
	for _, tc := range []struct {
		workers int
		flaky   bool
	}{{1, false}, {4, false}, {1, true}, {4, true}, {16, true}} {
		parent := obs.New()
		res, err := Run(context.Background(), frames, mkFn(newAttemptTracker(), tc.flaky), noBackoff(Config{Workers: tc.workers, Obs: parent}))
		if err != nil {
			t.Fatalf("workers=%d flaky=%v: %v", tc.workers, tc.flaky, err)
		}
		if len(res.Stats) != len(frames) {
			t.Fatalf("workers=%d flaky=%v: %d frames", tc.workers, tc.flaky, len(res.Stats))
		}
		snap := parent.Snapshot()
		if base == nil {
			base = snap
			if snap.Counters["resilience.frames_ok"] != uint64(len(frames)) {
				t.Fatalf("frames_ok = %d", snap.Counters["resilience.frames_ok"])
			}
			if _, torn := snap.Counters["torn.partial"]; torn {
				t.Fatal("torn counter from a failed attempt leaked into the parent")
			}
			continue
		}
		if !reflect.DeepEqual(snap, base) {
			t.Fatalf("workers=%d flaky=%v: parent snapshot differs from baseline", tc.workers, tc.flaky)
		}
	}
}
