package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/tbr"
)

func TestWorkerLostClassification(t *testing.T) {
	inner := errors.New("connection refused")
	err := WorkerLost(inner)
	if !IsWorkerLost(err) || !errors.Is(err, ErrWorkerLost) {
		t.Fatalf("WorkerLost(err) not classified: %v", err)
	}
	if !errors.Is(err, inner) {
		t.Fatalf("WorkerLost(err) lost the cause: %v", err)
	}
	if !IsWorkerLost(WorkerLost(nil)) {
		t.Fatal("WorkerLost(nil) not classified")
	}
	if IsWorkerLost(errors.New("frame is broken")) {
		t.Fatal("ordinary error classified as worker loss")
	}
	if IsWorkerLost(fmt.Errorf("wrap: %w", context.Canceled)) {
		t.Fatal("cancellation classified as worker loss")
	}
}

// TestWorkerLossRequeuesWithoutChargingAttempts is the fault-class
// contract: a frame whose dispatches keep dying with the worker is
// requeued for free — with MaxAttempts 1 (no ordinary retry at all) it
// still completes after several worker losses, and the accounting shows
// the requeues.
func TestWorkerLossRequeuesWithoutChargingAttempts(t *testing.T) {
	const losses = 5
	var mu sync.Mutex
	calls := map[int]int{}
	fn := func(_ context.Context, frame int, _ *obs.Registry) (tbr.FrameStats, error) {
		mu.Lock()
		calls[frame]++
		n := calls[frame]
		mu.Unlock()
		if frame == 2 && n <= losses {
			return tbr.FrameStats{}, WorkerLost(fmt.Errorf("worker died on dispatch %d", n))
		}
		return tbr.FrameStats{Frame: frame, Cycles: uint64(100 + frame)}, nil
	}
	res, err := Run(context.Background(), []int{0, 1, 2}, fn, Config{
		Workers:     1,
		MaxAttempts: 1,
		BackoffBase: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("worker-lost frame quarantined: %v", res.Quarantined)
	}
	if len(res.Stats) != 3 {
		t.Fatalf("completed %d frames, want 3", len(res.Stats))
	}
	if res.Requeued != losses {
		t.Fatalf("Requeued = %d, want %d", res.Requeued, losses)
	}
	// Free requeues are not retries: no frame "needed more than one
	// attempt" in the MaxAttempts sense.
	if res.Retried != 0 {
		t.Fatalf("Retried = %d, want 0 (requeues are not retries)", res.Retried)
	}
}

// TestWorkerLossRequeueCapQuarantines: with the fleet permanently dead,
// the requeue cap converges the frame to quarantine instead of looping
// forever, and the quarantine record carries the worker-loss cause.
func TestWorkerLossRequeueCapQuarantines(t *testing.T) {
	const cap = 3
	var mu sync.Mutex
	calls := 0
	fn := func(context.Context, int, *obs.Registry) (tbr.FrameStats, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return tbr.FrameStats{}, WorkerLost(errors.New("no live workers"))
	}
	res, err := Run(context.Background(), []int{7}, fn, Config{
		Workers:     1,
		MaxAttempts: 1,
		MaxRequeues: cap,
		BackoffBase: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0].Frame != 7 {
		t.Fatalf("quarantine = %v, want frame 7", res.Quarantined)
	}
	if got := res.Quarantined[0].Attempts; got != 1 {
		t.Fatalf("quarantine attempts = %d, want 1 (requeues are uncharged)", got)
	}
	if calls != cap+1 {
		t.Fatalf("%d dispatches, want %d (cap requeues + the charged attempt)", calls, cap+1)
	}
	if res.Requeued != cap {
		t.Fatalf("Requeued = %d, want %d", res.Requeued, cap)
	}
}

// TestWorkerLossRequeuesDisabled: a negative MaxRequeues turns the
// classification off — worker losses burn attempts like any failure.
func TestWorkerLossRequeuesDisabled(t *testing.T) {
	calls := 0
	fn := func(context.Context, int, *obs.Registry) (tbr.FrameStats, error) {
		calls++
		return tbr.FrameStats{}, WorkerLost(errors.New("gone"))
	}
	res, err := Run(context.Background(), []int{0}, fn, Config{
		Workers:     1,
		MaxAttempts: 2,
		MaxRequeues: -1,
		BackoffBase: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("%d dispatches, want MaxAttempts=2", calls)
	}
	if res.Requeued != 0 || len(res.Quarantined) != 1 {
		t.Fatalf("requeued %d, quarantined %v", res.Requeued, res.Quarantined)
	}
}
