package resilience

import (
	"errors"
	"fmt"
)

// ErrWorkerLost classifies a frame failure caused by losing the worker
// that was executing it — a dead fabric peer, a severed connection, a
// drained pool — rather than by the frame itself. The supervisor treats
// the two differently: an ordinary failure burns one of the frame's
// MaxAttempts (the frame got a fair try and failed), while a lost
// worker never gave the frame a fair try, so the frame is requeued
// without charging an attempt, exactly as a quarantined frame's work
// re-enters the pool — bounded by Config.MaxRequeues so a permanently
// dead fleet still converges to quarantine instead of looping forever.
var ErrWorkerLost = errors.New("resilience: worker lost")

// WorkerLost wraps err as a worker-loss failure (see ErrWorkerLost).
// A nil err returns ErrWorkerLost itself.
func WorkerLost(err error) error {
	if err == nil {
		return ErrWorkerLost
	}
	return fmt.Errorf("%w: %w", ErrWorkerLost, err)
}

// IsWorkerLost reports whether err is classified as worker loss.
func IsWorkerLost(err error) bool { return errors.Is(err, ErrWorkerLost) }

// DefaultMaxRequeues bounds worker-loss requeues per frame when
// Config.MaxRequeues is zero.
const DefaultMaxRequeues = 16

func (c *Config) maxRequeues() int {
	switch {
	case c.MaxRequeues > 0:
		return c.MaxRequeues
	case c.MaxRequeues < 0:
		return 0
	default:
		return DefaultMaxRequeues
	}
}
