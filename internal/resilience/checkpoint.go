package resilience

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"syscall"

	"repro/internal/obs"
	"repro/internal/tbr"
)

// checkpointMagic and checkpointVersion gate the decoder: files written
// by other tools or by an incompatible future format are rejected
// before any field is trusted.
const (
	checkpointMagic   = "megsim-checkpoint"
	checkpointVersion = 1
)

// ErrCorrupt marks a checkpoint file that failed structural validation:
// empty, truncated, unparseable, wrong magic/version, or a CRC
// mismatch. Callers fall back to a fresh run — the file's contents are
// never partially trusted.
var ErrCorrupt = errors.New("resilience: corrupt checkpoint")

// ErrFingerprint marks a structurally valid checkpoint recorded under a
// different run configuration; resuming from it would mix incompatible
// statistics.
var ErrFingerprint = errors.New("resilience: checkpoint fingerprint mismatch")

// FrameRecord is one completed frame inside a checkpoint: its
// statistics, its per-frame observability delta (nil when the run had
// observability disabled), and how many attempts it took.
type FrameRecord struct {
	Frame    int            `json:"frame"`
	Attempts int            `json:"attempts"`
	Stats    tbr.FrameStats `json:"stats"`
	Obs      *obs.Snapshot  `json:"obs,omitempty"`
}

// Checkpoint is the persisted progress of a supervised run. Frames are
// kept sorted by frame index so the encoding is canonical: two runs
// with the same completed set write byte-identical files regardless of
// completion order.
type Checkpoint struct {
	// Fingerprint identifies the run configuration the progress
	// belongs to (see Config.Fingerprint).
	Fingerprint string `json:"fingerprint"`
	// Frames are the completed frames, ascending by index.
	Frames []FrameRecord `json:"frames"`
	// Quarantined are the frames given up on, ascending by frame.
	Quarantined []QuarantineRecord `json:"quarantined,omitempty"`
	// Stream is the streaming first phase's strata snapshot
	// (stream.Ingestor.Snapshot), empty for batch campaigns. It rides
	// inside the CRC envelope, so a torn write can never present valid
	// frame records with damaged strata state: an interrupted streaming
	// campaign resumes ingest mid-stream byte-identically or not at all.
	Stream json.RawMessage `json:"stream,omitempty"`
}

// checkpointFile is the on-disk envelope: the payload bytes are
// checksummed so truncation and bit rot are detected before the payload
// is decoded.
type checkpointFile struct {
	Magic   string          `json:"magic"`
	Version int             `json:"version"`
	CRC32   uint32          `json:"crc32"`
	Body    json.RawMessage `json:"body"`
}

// sortFrames enforces the canonical ordering.
func (c *Checkpoint) sortFrames() {
	sort.Slice(c.Frames, func(i, j int) bool { return c.Frames[i].Frame < c.Frames[j].Frame })
	sort.Slice(c.Quarantined, func(i, j int) bool { return c.Quarantined[i].Frame < c.Quarantined[j].Frame })
}

// EncodeCheckpoint serializes a checkpoint into the checksummed
// envelope format.
func EncodeCheckpoint(c *Checkpoint) ([]byte, error) {
	c.sortFrames()
	body, err := json.Marshal(c)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(checkpointFile{
		Magic:   checkpointMagic,
		Version: checkpointVersion,
		CRC32:   crc32.ChecksumIEEE(body),
		Body:    body,
	}, "", " ")
}

// DecodeCheckpoint parses and validates checkpoint bytes. Anything
// structurally wrong — empty input, truncated JSON, wrong magic or
// version, checksum mismatch, malformed payload — returns an error
// wrapping ErrCorrupt with the specific cause.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty file", ErrCorrupt)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if f.Magic != checkpointMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrCorrupt, f.Magic)
	}
	if f.Version != checkpointVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrCorrupt, f.Version, checkpointVersion)
	}
	// The envelope is written indented, which re-indents the embedded
	// body, so the checksum is taken over the compacted bytes — the
	// exact form it was computed over at encode time.
	var compact bytes.Buffer
	if err := json.Compact(&compact, f.Body); err != nil {
		return nil, fmt.Errorf("%w: body: %v", ErrCorrupt, err)
	}
	if got := crc32.ChecksumIEEE(compact.Bytes()); got != f.CRC32 {
		return nil, fmt.Errorf("%w: crc32 %08x != %08x", ErrCorrupt, got, f.CRC32)
	}
	var c Checkpoint
	if err := json.Unmarshal(f.Body, &c); err != nil {
		return nil, fmt.Errorf("%w: body: %v", ErrCorrupt, err)
	}
	for i, fr := range c.Frames {
		if fr.Frame < 0 {
			return nil, fmt.Errorf("%w: negative frame index %d", ErrCorrupt, fr.Frame)
		}
		if i > 0 && c.Frames[i-1].Frame >= fr.Frame {
			return nil, fmt.Errorf("%w: frames not strictly ascending at %d", ErrCorrupt, fr.Frame)
		}
	}
	return &c, nil
}

// SaveCheckpoint atomically AND durably persists a checkpoint: the
// encoding is written to a temporary sibling, fsynced, renamed into
// place, and the parent directory fsynced — so a reader (or a resumed
// run after a crash mid-write) never observes a partial file, and a
// machine that loses power right after Save still finds the new
// snapshot on disk. Without the syncs the rename is atomic in the
// filesystem's cache but the data (or the directory entry) can
// evaporate in a power cut, which is exactly the crash a checkpoint
// exists for.
func SaveCheckpoint(path string, c *Checkpoint) error {
	data, err := EncodeCheckpoint(c)
	if err != nil {
		return fmt.Errorf("resilience: encode checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("resilience: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("resilience: publish checkpoint: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("resilience: sync checkpoint dir: %w", err)
	}
	return nil
}

// writeFileSync writes data and fsyncs it before closing, so the bytes
// are on disk before the rename can publish them.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Filesystems that refuse directory fsync (some network mounts) degrade
// gracefully: the rename already happened, only the durability fence is
// weaker.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file against the
// expected fingerprint. A missing file is (nil, nil) — nothing to
// resume; damage returns ErrCorrupt, a configuration mismatch
// ErrFingerprint.
func LoadCheckpoint(path, fingerprint string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("resilience: read checkpoint: %w", err)
	}
	c, err := DecodeCheckpoint(data)
	if err != nil {
		return nil, err
	}
	if c.Fingerprint != fingerprint {
		return nil, fmt.Errorf("%w: checkpoint %q vs run %q", ErrFingerprint, c.Fingerprint, fingerprint)
	}
	return c, nil
}
