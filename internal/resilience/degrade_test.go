package resilience

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/funcsim"
	"repro/internal/tbr"
	"repro/internal/workload"
)

// synthSelection builds a 6-frame, 2-cluster selection by hand:
// cluster 0 = frames {0,1,2} around centroid 0.05 (rep 0), cluster 1 =
// frames {3,4,5} around centroid 1.05 (rep 3). Frames 1 and 2 are
// equidistant from centroid 0 so substitution tie-breaking is observable.
func synthSelection() *core.Selection {
	return &core.Selection{
		Features: &core.FeatureSet{Vectors: [][]float64{
			{0.05}, {0.0}, {0.1}, {1.05}, {1.0}, {1.3},
		}},
		Clusters: cluster.Result{
			K:         2,
			Centroids: [][]float64{{0.05}, {1.05}},
			Assign:    []int{0, 0, 0, 1, 1, 1},
			Sizes:     []int{3, 3},
		},
		Representatives: []int{0, 3},
	}
}

func synthRepStats() map[int]tbr.FrameStats {
	st := map[int]tbr.FrameStats{}
	for f := 0; f < 6; f++ {
		st[f] = synthStats(f)
	}
	return st
}

func TestDegradeNoQuarantineIsIdentity(t *testing.T) {
	sel := synthSelection()
	d := Degrade(sel, nil)
	if d.Degraded() {
		t.Fatalf("undegraded selection reported degraded: %+v", d)
	}
	if !reflect.DeepEqual(d.Representatives, sel.Representatives) {
		t.Fatalf("representatives changed: %v", d.Representatives)
	}
	if d.Coverage() != 1.0 {
		t.Fatalf("coverage = %v, want 1", d.Coverage())
	}
	repStats := synthRepStats()
	got, err := d.Estimate(repStats)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sel.Estimate(repStats)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("undegraded estimate differs from core path:\n got %+v\nwant %+v", got, want)
	}
}

func TestDegradeSubstitutesClosestSurvivor(t *testing.T) {
	sel := synthSelection()
	d := Degrade(sel, map[int]bool{0: true})
	if !d.Degraded() || len(d.LostClusters) != 0 {
		t.Fatalf("unexpected shape: %+v", d)
	}
	// Frames 1 (at 0.0) and 2 (at 0.1) are both 0.05 from the centroid;
	// the tie breaks on the lower frame index.
	if !reflect.DeepEqual(d.Representatives, []int{1, 3}) {
		t.Fatalf("representatives = %v, want [1 3]", d.Representatives)
	}
	if len(d.Substitutions) != 1 {
		t.Fatalf("substitutions: %+v", d.Substitutions)
	}
	s := d.Substitutions[0]
	if s.Cluster != 0 || s.Original != 0 || s.Substitute != 1 {
		t.Fatalf("substitution %+v", s)
	}
	if s.OriginalDist != 0 || math.Abs(s.SubstituteDist-0.0025) > 1e-12 {
		t.Fatalf("distances: %+v", s)
	}
	if d.Coverage() != 1.0 {
		t.Fatalf("substitution should not reduce coverage: %v", d.Coverage())
	}
	// The estimate runs on the substitute's stats with unchanged weights.
	repStats := synthRepStats()
	got, err := d.Estimate(repStats)
	if err != nil {
		t.Fatal(err)
	}
	sub := repStats[1].Scale(3)
	rest := repStats[3].Scale(3)
	sub.Add(&rest)
	sub.Frame = -1
	if got != sub {
		t.Fatalf("degraded estimate:\n got %+v\nwant %+v", got, sub)
	}
	// The quarantined original's stats must not be required.
	delete(repStats, 0)
	if _, err := d.Estimate(repStats); err != nil {
		t.Fatalf("estimate needs quarantined frame's stats: %v", err)
	}
}

func TestDegradeLostClusterRescales(t *testing.T) {
	sel := synthSelection()
	d := Degrade(sel, map[int]bool{3: true, 4: true, 5: true})
	if !reflect.DeepEqual(d.LostClusters, []int{1}) {
		t.Fatalf("lost clusters = %v, want [1]", d.LostClusters)
	}
	if !reflect.DeepEqual(d.Representatives, []int{0, -1}) {
		t.Fatalf("representatives = %v", d.Representatives)
	}
	if d.CoveredFrames != 3 || d.Coverage() != 0.5 {
		t.Fatalf("coverage %d/%v", d.CoveredFrames, d.Coverage())
	}
	if !reflect.DeepEqual(d.ActiveRepresentatives(), []int{0}) {
		t.Fatalf("active reps = %v", d.ActiveRepresentatives())
	}
	repStats := synthRepStats()
	got, err := d.Estimate(repStats)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster 0's contribution (3 frames) rescaled to the 6-frame target.
	want := repStats[0].Scale(3).ScaleF(2.0)
	want.Frame = -1
	if got != want {
		t.Fatalf("rescaled estimate:\n got %+v\nwant %+v", got, want)
	}

	// Everything quarantined: no estimate, a loud error.
	all := Degrade(sel, map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true, 5: true})
	if len(all.LostClusters) != 2 {
		t.Fatalf("lost clusters: %v", all.LostClusters)
	}
	if _, err := all.Estimate(repStats); err == nil {
		t.Fatal("total loss produced an estimate")
	}
}

// TestDegradedAccuracyWithinWidenedBands is the degraded-mode oracle
// gate: on three fixed randomized workloads, quarantine the biggest
// cluster's representative, substitute and re-estimate, and require
// every Fig. 7 metric to stay within the oracle tolerance widened 3x —
// degraded accuracy, never silent failure.
func TestDegradedAccuracyWithinWidenedBands(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates full sequences; skipped in -short")
	}
	scale := workload.Scale{Width: 128, Height: 64, FrameDivisor: 10, DetailDivisor: 2}
	tol := check.DefaultTolerance().Scaled(3)
	for _, seed := range []uint64{1, 2, 3} {
		p := workload.RandomProfile(seed)
		tr, err := workload.Generate(p, scale)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ch, err := funcsim.Run(tr)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mcfg := core.DefaultConfig()
		fs, err := core.BuildFeatures(ch, mcfg.Feature)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sel, err := core.Select(fs, mcfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		full, err := tbr.SimulateAllParallel(tbr.DefaultConfig(), tr, 0, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fullTotals := core.SumStats(full)

		// Quarantine the representative of the biggest cluster — the
		// worst single loss the degradation can take without losing a
		// cluster outright.
		biggest := 0
		for c, sz := range sel.Clusters.Sizes {
			if sz > sel.Clusters.Sizes[biggest] {
				biggest = c
			}
		}
		quarantined := map[int]bool{sel.Representatives[biggest]: true}
		d := Degrade(sel, quarantined)
		if !d.Degraded() {
			t.Fatalf("seed %d: quarantined representative not reported as degradation", seed)
		}
		// Frame isolation makes a standalone representative identical to
		// the same frame inside the full run, so the full run provides
		// the substitutes' stats.
		repStats := map[int]tbr.FrameStats{}
		for _, f := range d.ActiveRepresentatives() {
			repStats[f] = full[f]
		}
		est, err := d.Estimate(repStats)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, row := range check.CompareRows(&est, &fullTotals, tol) {
			if !row.Pass {
				t.Errorf("seed %d: degraded %s err %.2f%% exceeds widened band %.2f%%",
					seed, row.Name, row.RelErr*100, row.Tolerance*100)
			}
		}
	}
}
