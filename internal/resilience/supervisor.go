package resilience

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/tbr"
)

// runState is the supervisor's shared mutable state: completed frame
// records, quarantine, and the checkpoint writer. One mutex guards it
// all — the simulator dominates runtime, so contention here is noise.
type runState struct {
	mu          sync.Mutex
	cfg         *Config
	records     map[int]FrameRecord
	quarantined []QuarantineRecord
	retried     int
	requeued    int
	saveErr     error
}

// requeue counts one worker-loss requeue (no checkpoint rewrite — no
// frame state changed, the frame just re-enters the pool).
func (s *runState) requeue() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requeued++
}

// record stores a completed frame and rewrites the checkpoint.
func (s *runState) record(r FrameRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records[r.Frame] = r
	if r.Attempts > 1 {
		s.retried++
	}
	s.persistLocked()
}

// quarantine registers a given-up frame and rewrites the checkpoint.
func (s *runState) quarantine(q QuarantineRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quarantined = append(s.quarantined, q)
	s.persistLocked()
}

// persistLocked rewrites the checkpoint file (atomic fsynced
// tmp+rename). The first write/sync error degrades the run to
// continue-without-checkpoint: it is kept for Result.CheckpointErr,
// logged, counted, and checkpointing stops — later frames keep
// simulating without re-attempting a disk that just failed. Losing
// checkpoint durability must not abort the science.
func (s *runState) persistLocked() {
	if s.cfg.CheckpointPath == "" || s.saveErr != nil {
		return
	}
	if err := SaveCheckpoint(s.cfg.CheckpointPath, s.checkpointLocked()); err != nil {
		s.saveErr = err
		logf(s.cfg.Log, "resilience: checkpoint write failed (run continues unprotected): %v", err)
		if s.cfg.Obs.Enabled() {
			s.cfg.Obs.Counter("resilience.checkpoint_write_failed").Inc()
		}
	}
}

func (s *runState) checkpointLocked() *Checkpoint {
	c := &Checkpoint{Fingerprint: s.cfg.Fingerprint, Stream: s.cfg.StreamState}
	for _, r := range s.records {
		c.Frames = append(c.Frames, r)
	}
	c.Quarantined = append(c.Quarantined, s.quarantined...)
	c.sortFrames()
	return c
}

// watchdog flags workers that hold one frame past StallTimeout. It
// observes per-worker heartbeats (attempt-start timestamps the workers
// publish) and never interrupts anyone: the simulator has no safe
// preemption point, so the job is visibility — a log line, an obs
// counter, and the worker id in the result.
type watchdog struct {
	timeout time.Duration
	now     func() time.Time
	// busySince[w] is the unix-nano attempt start of worker w's current
	// frame (0 = idle); busyFrame[w] the frame it holds.
	busySince []atomic.Int64
	busyFrame []atomic.Int64

	mu      sync.Mutex
	flagged map[int]bool
}

func newWatchdog(workers int, timeout time.Duration, now func() time.Time) *watchdog {
	return &watchdog{
		timeout:   timeout,
		now:       now,
		busySince: make([]atomic.Int64, workers),
		busyFrame: make([]atomic.Int64, workers),
		flagged:   map[int]bool{},
	}
}

// beat publishes worker w's heartbeat: busy on a frame (attempt start)
// or idle (frame < 0).
func (d *watchdog) beat(w, frame int) {
	if d == nil {
		return
	}
	d.busyFrame[w].Store(int64(frame))
	if frame < 0 {
		d.busySince[w].Store(0)
	} else {
		d.busySince[w].Store(d.now().UnixNano())
	}
}

// scan flags every worker stalled past the timeout; returns newly
// flagged (worker, frame) pairs.
func (d *watchdog) scan() [][2]int {
	now := d.now().UnixNano()
	var fresh [][2]int
	d.mu.Lock()
	defer d.mu.Unlock()
	for w := range d.busySince {
		since := d.busySince[w].Load()
		if since == 0 || now-since < int64(d.timeout) {
			continue
		}
		if !d.flagged[w] {
			d.flagged[w] = true
			fresh = append(fresh, [2]int{w, int(d.busyFrame[w].Load())})
		}
	}
	return fresh
}

func (d *watchdog) stalled() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]int, 0, len(d.flagged))
	for w := range d.flagged {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// Run supervises the simulation of the given frames (duplicates are
// collapsed): a pool of workers claims frames, each attempt runs under
// a recover, failed attempts retry with capped exponential backoff and
// deterministic jitter, frames that exhaust Config.MaxAttempts are
// quarantined instead of aborting the pool, and every completion
// rewrites the checkpoint atomically. Cancelling ctx stops the pool at
// the next frame boundary, flushes a final checkpoint, and returns the
// partial Result alongside ctx's error.
//
// On success (err == nil) every non-quarantined frame is present in
// Result.Stats; the caller decides whether quarantine is acceptable.
func Run(ctx context.Context, frames []int, fn FrameFunc, cfg Config) (*Result, error) {
	for _, f := range frames {
		if f < 0 {
			return nil, fmt.Errorf("resilience: negative frame index %d", f)
		}
	}
	now := cfg.now
	if now == nil {
		now = time.Now
	}
	sleep := cfg.sleep
	if sleep == nil {
		sleep = sleepCtx
	}

	state := &runState{cfg: &cfg, records: map[int]FrameRecord{}}
	res := &Result{CheckpointPath: cfg.CheckpointPath}

	// Resume: adopt completed frames from a valid checkpoint; reject
	// damaged or mismatched files loudly and start fresh. Every
	// fingerprint-matching record is adopted (and re-persisted), even
	// ones outside the requested set, so successive supervised passes
	// over different frame subsets — the degradation loop resimulating
	// substitutes — extend one checkpoint instead of clobbering it;
	// the Result only reports the requested frames. Previously
	// quarantined frames are retried — simulation failures are
	// deterministic, so truly bad frames re-quarantine identically,
	// while transiently failed ones get a fresh chance.
	requested := dedupe(frames)
	want := map[int]bool{}
	for _, f := range requested {
		want[f] = true
	}
	if cfg.Resume && cfg.CheckpointPath != "" {
		ck, err := LoadCheckpoint(cfg.CheckpointPath, cfg.Fingerprint)
		switch {
		case err != nil:
			res.ResumeErr = err
			logf(cfg.Log, "resilience: resume rejected, starting fresh: %v", err)
		case ck != nil:
			if len(cfg.StreamState) == 0 && len(ck.Stream) > 0 {
				// Preserve phase-1 strata state across rewrites even when
				// this round wasn't handed a fresher snapshot; dropping it
				// would strand a later mid-stream resume.
				cfg.StreamState = ck.Stream
			}
			for _, r := range ck.Frames {
				state.records[r.Frame] = r
				if want[r.Frame] {
					res.Resumed = append(res.Resumed, r.Frame)
				}
			}
			sort.Ints(res.Resumed)
			logf(cfg.Log, "resilience: resumed %d/%d frames from %s", len(res.Resumed), len(requested), cfg.CheckpointPath)
		}
	}

	preQuarantined := map[int]bool{}
	for _, f := range cfg.Quarantine {
		preQuarantined[f] = true
	}

	// Build the pending work list: requested frames not already
	// completed (resumed) and not pre-quarantined.
	var pending []int
	for _, f := range requested {
		if _, done := state.records[f]; done {
			continue
		}
		if preQuarantined[f] {
			state.quarantine(QuarantineRecord{Frame: f, Attempts: 0, Err: "pre-quarantined"})
			continue
		}
		pending = append(pending, f)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	var dog *watchdog
	dogDone := make(chan struct{})
	if cfg.StallTimeout > 0 && workers > 0 {
		dog = newWatchdog(workers, cfg.StallTimeout, now)
		period := cfg.StallTimeout / 4
		if period < time.Millisecond {
			period = time.Millisecond
		}
		go func() {
			t := time.NewTicker(period)
			defer t.Stop()
			for {
				select {
				case <-dogDone:
					return
				case <-t.C:
					for _, wf := range dog.scan() {
						logf(cfg.Log, "resilience: watchdog: worker %d stalled on frame %d for > %v", wf[0], wf[1], cfg.StallTimeout)
					}
				}
			}
		}()
	}

	maxAttempts := cfg.maxAttempts()
	maxRequeues := cfg.maxRequeues()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(pending) {
					return
				}
				frame := pending[i]
				attempt := 0
				requeues := 0
				for {
					attempt++
					dog.beat(w, frame)
					rec, err := runAttempt(ctx, fn, frame, attempt, cfg.Obs)
					dog.beat(w, -1)
					if err == nil {
						state.record(rec)
						break
					}
					if ctx.Err() != nil {
						return // cancelled: the frame stays incomplete, not quarantined
					}
					if IsWorkerLost(err) && requeues < maxRequeues {
						// Losing the worker is not the frame's fault: requeue
						// without charging an attempt, like quarantined work
						// re-entering the pool, bounded by MaxRequeues.
						requeues++
						attempt--
						state.requeue()
						d := Backoff(cfg.BackoffBase, cfg.BackoffCap, cfg.Seed, frame, requeues)
						logf(cfg.Log, "resilience: frame %d requeued after worker loss (%d/%d), retrying in %v: %v",
							frame, requeues, maxRequeues, d, err)
						if sleep(ctx, d) != nil {
							return
						}
						continue
					}
					if attempt >= maxAttempts {
						q := QuarantineRecord{Frame: frame, Attempts: attempt, Err: err.Error()}
						logf(cfg.Log, "resilience: %s", q)
						state.quarantine(q)
						break
					}
					d := Backoff(cfg.BackoffBase, cfg.BackoffCap, cfg.Seed, frame, attempt)
					logf(cfg.Log, "resilience: frame %d attempt %d failed (%v), retrying in %v", frame, attempt, err, d)
					if sleep(ctx, d) != nil {
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(dogDone)

	// Final flush: even a run that completed nothing (or was cancelled
	// between per-frame writes) leaves a valid checkpoint behind, so
	// SIGTERM-then-resume always has a file to pick up.
	state.mu.Lock()
	state.persistLocked()
	completed := state.checkpointLocked()
	saveErr := state.saveErr
	retried := state.retried
	requeued := state.requeued
	state.mu.Unlock()

	// Deterministic observability fold: the requested frames' deltas
	// merge into the parent in ascending frame order. Counters and
	// histograms are additive and snapshot events sort canonically, so
	// the merged snapshot is identical however the frames were
	// scheduled, retried, or split across killed-and-resumed processes.
	// Adopted records outside the requested set stay checkpoint-only.
	res.Stats = make(map[int]tbr.FrameStats)
	for _, r := range completed.Frames {
		if !want[r.Frame] {
			continue
		}
		res.Stats[r.Frame] = r.Stats
		cfg.Obs.MergeSnapshot(r.Obs)
	}
	if cfg.Obs.Enabled() {
		cfg.Obs.Counter("resilience.frames_ok").Add(uint64(len(res.Stats)))
		cfg.Obs.Counter("resilience.frames_quarantined").Add(uint64(len(completed.Quarantined)))
	}
	res.Quarantined = completed.Quarantined
	res.Retried = retried
	res.Requeued = requeued
	if dog != nil {
		res.StalledWorkers = dog.stalled()
	}

	res.CheckpointErr = saveErr

	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// runAttempt executes one attempt of one frame with a fresh worker-
// local obs registry, converting panics into errors. The local registry
// of a failed attempt is discarded — retried frames contribute exactly
// one delta, so retries never skew the merged observability.
func runAttempt(ctx context.Context, fn FrameFunc, frame, attempt int, parent *obs.Registry) (rec FrameRecord, err error) {
	local := parent.NewLocal()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("resilience: frame %d panicked: %v", frame, r)
		}
	}()
	st, err := fn(ctx, frame, local)
	if err != nil {
		return FrameRecord{}, err
	}
	rec = FrameRecord{Frame: frame, Attempts: attempt, Stats: st}
	if parent.Enabled() {
		rec.Obs = local.Snapshot()
	}
	return rec, nil
}

// dedupe collapses duplicate frames preserving first-seen order.
func dedupe(frames []int) []int {
	seen := make(map[int]bool, len(frames))
	out := make([]int, 0, len(frames))
	for _, f := range frames {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}
