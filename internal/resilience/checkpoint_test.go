package resilience

import (
	"bytes"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/tbr"
)

func sampleCheckpoint() *Checkpoint {
	reg := obs.New()
	reg.Counter("raster.tiles").Add(7)
	reg.Histogram("frame.cycles").Observe(123)
	return &Checkpoint{
		Fingerprint: "fp-test",
		Frames: []FrameRecord{
			{Frame: 4, Attempts: 2, Stats: tbr.FrameStats{Frame: 4, Cycles: 400}, Obs: reg.Snapshot()},
			{Frame: 1, Attempts: 1, Stats: tbr.FrameStats{Frame: 1, Cycles: 100}},
			{Frame: 9, Attempts: 1, Stats: tbr.FrameStats{Frame: 9, Cycles: 900}},
		},
		Quarantined: []QuarantineRecord{{Frame: 6, Attempts: 3, Err: "boom"}},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := sampleCheckpoint()
	data, err := EncodeCheckpoint(c)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// JSON normalizes empty containers (omitempty), so equality is judged
	// on the canonical encoding, with the load-bearing fields spot-checked.
	if got.Fingerprint != c.Fingerprint || len(got.Frames) != len(c.Frames) || len(got.Quarantined) != len(c.Quarantined) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
	if got.Frames[1].Frame != 4 || got.Frames[1].Stats.Cycles != 400 || got.Frames[1].Attempts != 2 {
		t.Fatalf("frame record mismatch: %+v", got.Frames[1])
	}
	if got.Frames[1].Obs == nil || got.Frames[1].Obs.Counters["raster.tiles"] != 7 {
		t.Fatalf("obs delta lost in round trip: %+v", got.Frames[1].Obs)
	}
	// The encoding is canonical: frames sort by index, so two runs with
	// the same completed set write byte-identical files regardless of
	// completion order.
	for i := 1; i < len(got.Frames); i++ {
		if got.Frames[i-1].Frame >= got.Frames[i].Frame {
			t.Fatalf("frames not sorted after decode: %d >= %d", got.Frames[i-1].Frame, got.Frames[i].Frame)
		}
	}
	again, err := EncodeCheckpoint(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(again) != string(data) {
		t.Fatalf("encoding not canonical: re-encode differs")
	}
}

func TestCheckpointDecodeRejectsDamage(t *testing.T) {
	valid, err := EncodeCheckpoint(sampleCheckpoint())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	corruptBody := strings.Replace(string(valid), `\"cycles\"`, `\"cycleZ\"`, 1)
	if corruptBody == string(valid) {
		// The body is embedded as raw JSON, not escaped; flip a byte
		// inside it instead.
		b := append([]byte(nil), valid...)
		b[len(b)/2] ^= 0x20
		corruptBody = string(b)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"not-json", []byte("definitely not json")},
		{"truncated", valid[:len(valid)/2]},
		{"bitflip", []byte(corruptBody)},
		{"wrong-magic", mustEncodeEnvelope(t, `{"magic":"other-tool","version":1,"crc32":0,"body":{}}`)},
		{"wrong-version", mustEncodeEnvelope(t, `{"magic":"megsim-checkpoint","version":99,"crc32":0,"body":{}}`)},
		{"bad-crc", mustEncodeEnvelope(t, `{"magic":"megsim-checkpoint","version":1,"crc32":12345,"body":{"fingerprint":"x"}}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeCheckpoint(tc.data)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("want ErrCorrupt, got %v", err)
			}
		})
	}
}

func mustEncodeEnvelope(t *testing.T, s string) []byte {
	t.Helper()
	return []byte(s)
}

func TestCheckpointDecodeRejectsBadFrames(t *testing.T) {
	neg := &Checkpoint{Fingerprint: "fp", Frames: []FrameRecord{{Frame: 2}, {Frame: 5}}}
	data, err := EncodeCheckpoint(neg)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Duplicate frame indices defeat the strictly-ascending canonical
	// order; forge them by editing the encoded body.
	forged := resealEnvelope(t, strings.Replace(string(data), `"frame": 5`, `"frame": 2`, 1))
	if _, err := DecodeCheckpoint([]byte(forged)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("duplicate frames: want ErrCorrupt, got %v", err)
	}
	forgedNeg := resealEnvelope(t, strings.Replace(string(data), `"frame": 2`, `"frame": -2`, 1))
	if _, err := DecodeCheckpoint([]byte(forgedNeg)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("negative frame: want ErrCorrupt, got %v", err)
	}
}

// resealEnvelope recomputes the CRC of a hand-edited envelope so the
// structural validation under test is actually reached.
func resealEnvelope(t *testing.T, s string) string {
	t.Helper()
	var f checkpointFile
	if err := json.Unmarshal([]byte(s), &f); err != nil {
		t.Fatalf("reseal: %v", err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, f.Body); err != nil {
		t.Fatalf("reseal: %v", err)
	}
	f.CRC32 = crc32.ChecksumIEEE(compact.Bytes())
	out, err := json.Marshal(f)
	if err != nil {
		t.Fatalf("reseal: %v", err)
	}
	return string(out)
}

func TestSaveLoadCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")

	// Missing file: nothing to resume, not an error.
	c, err := LoadCheckpoint(path, "fp-test")
	if c != nil || err != nil {
		t.Fatalf("missing file: got (%v, %v), want (nil, nil)", c, err)
	}

	want := sampleCheckpoint()
	if err := SaveCheckpoint(path, want); err != nil {
		t.Fatalf("save: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temporary file left behind: %v", err)
	}
	got, err := LoadCheckpoint(path, "fp-test")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	// Equality on the canonical encoding (JSON normalizes empties).
	wantEnc, err := EncodeCheckpoint(want)
	if err != nil {
		t.Fatal(err)
	}
	gotEnc, err := EncodeCheckpoint(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotEnc) != string(wantEnc) {
		t.Fatalf("load mismatch:\n got %s\nwant %s", gotEnc, wantEnc)
	}

	// Fingerprint mismatch is its own loud error.
	if _, err := LoadCheckpoint(path, "other-config"); !errors.Is(err, ErrFingerprint) {
		t.Fatalf("fingerprint mismatch: want ErrFingerprint, got %v", err)
	}

	// Damage on disk surfaces as ErrCorrupt.
	if err := os.WriteFile(path, []byte("{trunca"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, "fp-test"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("damaged file: want ErrCorrupt, got %v", err)
	}
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, "fp-test"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty file: want ErrCorrupt, got %v", err)
	}
}
