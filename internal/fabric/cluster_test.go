package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/megsim"
)

// clusterCampaignBody is the canonical cluster-test campaign: the
// harness `cluster` preset (identical to the `service` preset — that
// identity is the whole point) as a submission document.
func clusterCampaignBody() string {
	opts := harness.ClusterOptions()
	sc := opts.Scale
	return fmt.Sprintf(
		`{"workload":{"benchmark":"hcr","width":%d,"height":%d,"frame_div":%d,"detail_div":%d},`+
			`"gpu":{"tile_workers":%d},"resilience":{"retries":%d}}`,
		sc.Width, sc.Height, sc.FrameDivisor, sc.DetailDivisor,
		opts.TileWorkers, harness.ServiceResilience().MaxAttempts)
}

// clusterGolden runs the canonical campaign once, in-process through
// megsim.SampleResilient — the ground truth every distributed execution
// must match byte-for-byte (modulo wall clock). Computed once.
var (
	clusterGoldenOnce sync.Once
	clusterGoldenRaw  []byte
	clusterGoldenErr  error
)

func clusterGolden(t *testing.T) []byte {
	t.Helper()
	clusterGoldenOnce.Do(func() {
		req, tr, gpu, err := clusterRequest()
		if err != nil {
			clusterGoldenErr = err
			return
		}
		rrun, err := megsim.SampleResilient(context.Background(), tr,
			req.MegsimConfig(), gpu, harness.ServiceResilience())
		if err != nil {
			clusterGoldenErr = err
			return
		}
		raw, err := marshalReport(serve.NewCampaignReport(rrun, 0))
		if err != nil {
			clusterGoldenErr = err
			return
		}
		clusterGoldenRaw, clusterGoldenErr = normalizeReport(raw, false)
	})
	if clusterGoldenErr != nil {
		t.Fatalf("cluster golden run: %v", clusterGoldenErr)
	}
	return clusterGoldenRaw
}

// clusterRequest decodes the canonical campaign and resolves its trace
// and GPU config (what both a worker and the golden run derive).
func clusterRequest() (*serve.CampaignRequest, *megsim.Trace, megsim.GPUConfig, error) {
	req, err := serve.DecodeCampaignRequest(strings.NewReader(clusterCampaignBody()))
	if err != nil {
		return nil, nil, megsim.GPUConfig{}, err
	}
	tr, err := req.BuildTrace()
	if err != nil {
		return nil, nil, megsim.GPUConfig{}, err
	}
	gpu, err := req.GPUConfig()
	if err != nil {
		return nil, nil, megsim.GPUConfig{}, err
	}
	return req, tr, gpu, nil
}

// marshalReport and normalizeReport mirror the serve test helpers: the
// report rendered exactly as the service renders it, with wall clock
// (and optionally resume accounting) normalized for byte comparison.
func marshalReport(rep *serve.CampaignReport) ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func normalizeReport(raw []byte, clearResume bool) ([]byte, error) {
	var r serve.CampaignReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("normalize report: %w", err)
	}
	r.SampledMillis = 0
	if clearResume && r.Resilience != nil {
		r.Resilience.Resumed = nil
		r.Resilience.Requeued = 0
	}
	return marshalReport(&r)
}

// --- minimal HTTP test plumbing against the campaign service ---

func submitOK(t *testing.T, ts *httptest.Server, body string) serve.SubmitResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST campaign: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, raw)
	}
	var sub serve.SubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	return sub
}

func getJSON(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, raw
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, raw := getJSON(t, ts, "/api/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("poll %s: status %d: %s", id, code, raw)
		}
		var st serve.JobStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("decode status: %v", err)
		}
		switch st.State {
		case serve.JobSucceeded, serve.JobFailed, serve.JobInterrupted:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// --- killable workers ---

// killSwitch turns a worker's transport off deterministically: once
// armed (after killAfter served frames), every connection is hijacked
// and closed raw — a genuine mid-request transport error, exactly what
// a dying worker process looks like to the coordinator.
type killSwitch struct {
	killAfter int64
	served    atomic.Int64
	killed    atomic.Bool
}

func killable(h http.Handler, ks *killSwitch) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ks.killed.Load() {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			panic(http.ErrAbortHandler)
		}
		h.ServeHTTP(w, r)
		if r.URL.Path == "/fabric/v1/frames" && ks.killAfter > 0 && ks.served.Add(1) >= ks.killAfter {
			ks.killed.Store(true)
		}
	})
}

// startFleet brings up n workers behind kill switches and returns their
// pieces in index order.
func startFleet(t *testing.T, n int) ([]*Worker, []*killSwitch, []string) {
	t.Helper()
	workers := make([]*Worker, n)
	switches := make([]*killSwitch, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		workers[i] = NewWorker(WorkerConfig{})
		switches[i] = &killSwitch{}
		ts := httptest.NewServer(killable(workers[i].Handler(), switches[i]))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return workers, switches, urls
}

func workerServed(w *Worker) uint64 {
	return w.Registry().Snapshot().Counters["fabric.frames.served"]
}

// TestClusterKillWorkerMidCampaign is the fabric's headline contract:
// an in-process cluster — coordinator + 3 workers — runs the canonical
// campaign with the affinity-routed worker killed after its first
// frame, and the campaign still completes with result bytes identical
// to a single-process run. The kill is deterministic: the affinity
// policy is a pure function, so the test computes which worker the
// campaign lands on and arms exactly that one.
func TestClusterKillWorkerMidCampaign(t *testing.T) {
	workers, switches, urls := startFleet(t, harness.ClusterWorkerCount)

	// Compute the campaign's routing key (its run fingerprint) and the
	// worker affinity will choose, then arm that worker to die after
	// serving one frame.
	_, tr, gpu, err := clusterRequest()
	if err != nil {
		t.Fatal(err)
	}
	fp := megsim.RunFingerprint(tr, gpu)
	cands := make([]Candidate, len(urls))
	for i, u := range urls {
		cands[i] = Candidate{Name: u}
	}
	target := NewAffinity().Pick(fp, cands)
	if target < 0 {
		t.Fatal("affinity found no candidate")
	}
	switches[target].killAfter = 1

	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:           urls,
		Policy:            NewAffinity(),
		HeartbeatInterval: -1, // deterministic: only dispatch failures mark members down
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	srv := serve.New(serve.Config{Workers: 1, QueueCapacity: 8, CheckpointDir: t.TempDir(), Dispatcher: coord})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	sub := submitOK(t, ts, clusterCampaignBody())
	st := waitTerminal(t, ts, sub.JobID)
	if st.State != serve.JobSucceeded {
		t.Fatalf("campaign ended %s: %s", st.State, st.Error)
	}

	code, raw := getJSON(t, ts, "/api/v1/jobs/"+sub.JobID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: status %d: %s", code, raw)
	}
	norm, err := normalizeReport(raw, false)
	if err != nil {
		t.Fatal(err)
	}
	if want := clusterGolden(t); !bytes.Equal(norm, want) {
		t.Fatalf("distributed result differs from single-process run:\n--- cluster ---\n%s\n--- direct ---\n%s", norm, want)
	}

	// The kill actually happened and the fleet actually absorbed it: the
	// doomed worker served exactly its one frame before dying, the
	// survivors served every other representative, and the coordinator
	// recorded the failover and marked the member down.
	var rep serve.CampaignReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	reps := uint64(len(rep.Representatives))
	if got := workerServed(workers[target]); got != 1 {
		t.Fatalf("killed worker served %d frames, want exactly 1", got)
	}
	var survivors uint64
	for i, w := range workers {
		if i != target {
			survivors += workerServed(w)
		}
	}
	if survivors != reps-1 {
		t.Fatalf("survivors served %d frames, want %d", survivors, reps-1)
	}
	snap := coord.reg.Snapshot()
	if got := snap.Counters["fabric.dispatch.failover"]; got < 1 {
		t.Fatal("no failover recorded for a mid-campaign worker death")
	}
	if up := snap.Gauges[fmt.Sprintf("fabric.worker.%d.up", target)]; up != 0 {
		t.Fatalf("killed worker still up in gauges (%d)", up)
	}
	if live := snap.Gauges["fabric.workers.live"]; live != int64(len(workers)-1) {
		t.Fatalf("fabric.workers.live = %d, want %d", live, len(workers)-1)
	}
}

// TestDistributedObsIdentity is the observability half of the identity
// contract, checked below the HTTP service: the same supervised run
// with frames dispatched round-robin across two workers must leave the
// supervisor's merged registry byte-identical to the in-process run —
// snapshots, estimates, everything.
func TestDistributedObsIdentity(t *testing.T) {
	req, tr, gpu, err := clusterRequest()
	if err != nil {
		t.Fatal(err)
	}
	ch, err := megsim.Characterize(tr)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := megsim.SelectFrames(ch, req.MegsimConfig())
	if err != nil {
		t.Fatal(err)
	}
	fp := megsim.RunFingerprint(tr, gpu)

	run := func(fn megsim.ResilientFrameFunc) (*megsim.ResilientRun, []byte) {
		t.Helper()
		rcfg := harness.ClusterResilience()
		rcfg.Obs = obs.NewWith(obs.Options{TraceCapacity: -1})
		rrun, err := megsim.SampleResilientPrepared(context.Background(), tr, ch, sel, gpu, rcfg, fn)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rcfg.Obs.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return rrun, buf.Bytes()
	}

	local, localObs := run(megsim.FrameRunner(tr, gpu))

	_, _, urls := startFleet(t, 2)
	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:           urls,
		Policy:            NewRoundRobin(), // spread frames across both workers
		HeartbeatInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	dist, distObs := run(coord.FrameRunner(fp, req))

	if local.Estimate != dist.Estimate {
		t.Fatalf("estimates differ:\nlocal: %+v\ndist:  %+v", local.Estimate, dist.Estimate)
	}
	if !bytes.Equal(localObs, distObs) {
		t.Fatalf("merged observability differs:\n--- local ---\n%s\n--- distributed ---\n%s", localObs, distObs)
	}
}

// TestClusterDrainResumeAcrossCoordinators: a campaign interrupted on
// one coordinator resumes byte-identically on a different coordinator
// over a smaller fleet — the checkpoint store, not the fleet, is the
// state of record.
func TestClusterDrainResumeAcrossCoordinators(t *testing.T) {
	dir := t.TempDir()
	_, _, urls := startFleet(t, harness.ClusterWorkerCount)
	body := clusterCampaignBody()

	coordA, err := NewCoordinator(CoordinatorConfig{Workers: urls, HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	srvA := serve.New(serve.Config{Workers: 1, QueueCapacity: 8, CheckpointDir: dir, Dispatcher: coordA})
	tsA := httptest.NewServer(srvA.Handler())
	subA := submitOK(t, tsA, body)

	// Let the job leave the queue, then drain mid-run. (On a fast
	// machine it may already have finished — both outcomes are legal;
	// the resubmission contract holds either way.)
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, raw := getJSON(t, tsA, "/api/v1/jobs/"+subA.JobID)
		if !strings.Contains(string(raw), `"queued"`) || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srvA.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	tsA.Close()
	coordA.Close()

	// A different coordinator over a shrunk fleet (the first worker
	// "decommissioned"), same checkpoint directory.
	coordB, err := NewCoordinator(CoordinatorConfig{Workers: urls[1:], HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer coordB.Close()
	srvB := serve.New(serve.Config{Workers: 1, QueueCapacity: 8, CheckpointDir: dir, Dispatcher: coordB})
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	defer srvB.Drain(context.Background())

	reA := submitOK(t, tsB, body)
	if reA.Fingerprint != subA.Fingerprint {
		t.Fatal("resubmission fingerprint changed across coordinators")
	}
	if st := waitTerminal(t, tsB, reA.JobID); st.State != serve.JobSucceeded {
		t.Fatalf("resumed campaign ended %s: %s", st.State, st.Error)
	}
	_, raw := getJSON(t, tsB, "/api/v1/jobs/"+reA.JobID+"/result")
	norm, err := normalizeReport(raw, true)
	if err != nil {
		t.Fatal(err)
	}
	if want := clusterGolden(t); !bytes.Equal(norm, want) {
		t.Fatalf("resumed-on-new-fleet result differs from single-process run:\n--- cluster ---\n%s\n--- direct ---\n%s", norm, want)
	}
}
