package fabric

import (
	"fmt"
	"testing"
)

func cands(names ...string) []Candidate {
	out := make([]Candidate, len(names))
	for i, n := range names {
		out[i] = Candidate{Name: n}
	}
	return out
}

// TestPolicyByName is the CLI-name table.
func TestPolicyByName(t *testing.T) {
	for _, tc := range []struct {
		name string
		want string
	}{
		{"", "affinity"},
		{"affinity", "affinity"},
		{"round-robin", "round-robin"},
		{"least-loaded", "least-loaded"},
	} {
		p, err := PolicyByName(tc.name)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", tc.name, err)
		}
		if p.Name() != tc.want {
			t.Fatalf("PolicyByName(%q).Name() = %q, want %q", tc.name, p.Name(), tc.want)
		}
	}
	if _, err := PolicyByName("random"); err == nil {
		t.Fatal("unknown policy name accepted")
	}
}

// TestAffinityStableAcrossRestarts: the pick is a pure function of
// (key, candidate set) — a fresh policy instance (a restarted
// coordinator) routes every campaign exactly as the old one did.
func TestAffinityStableAcrossRestarts(t *testing.T) {
	fleet := cands("http://w0", "http://w1", "http://w2")
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("megsim-%024x", i)
		first := NewAffinity().Pick(key, fleet)
		for run := 0; run < 3; run++ {
			if got := NewAffinity().Pick(key, fleet); got != first {
				t.Fatalf("key %s: fresh instance picked %d, first run picked %d", key, got, first)
			}
		}
	}
}

// TestAffinityColocatesCampaign: one campaign fingerprint, many picks,
// one worker — the property that makes the worker trace cache hit on
// every frame after the first.
func TestAffinityColocatesCampaign(t *testing.T) {
	fleet := cands("http://w0", "http://w1", "http://w2")
	p := NewAffinity()
	first := p.Pick("megsim-abc123", fleet)
	for i := 0; i < 16; i++ {
		if got := p.Pick("megsim-abc123", fleet); got != first {
			t.Fatalf("pick %d moved: %d vs %d", i, got, first)
		}
	}
	// ...and distinct campaigns actually spread: 64 keys over 3 workers
	// must use more than one.
	used := map[int]bool{}
	for i := 0; i < 64; i++ {
		used[p.Pick(fmt.Sprintf("megsim-%024x", i), fleet)] = true
	}
	if len(used) < 2 {
		t.Fatalf("64 campaigns all landed on worker set %v", used)
	}
}

// TestAffinityMinimalRemap is the rendezvous property: removing one
// worker remaps only the campaigns that lived on it; every other
// campaign keeps its placement. (Modulo hashing would reshuffle almost
// everything.)
func TestAffinityMinimalRemap(t *testing.T) {
	full := cands("http://w0", "http://w1", "http://w2", "http://w3")
	p := NewAffinity()
	const n = 256
	before := make(map[string]string, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("megsim-%024x", i)
		before[key] = full[p.Pick(key, full)].Name
	}
	for departed := 0; departed < len(full); departed++ {
		rest := make([]Candidate, 0, len(full)-1)
		for i, c := range full {
			if i != departed {
				rest = append(rest, c)
			}
		}
		for key, home := range before {
			got := rest[p.Pick(key, rest)].Name
			if home == full[departed].Name {
				continue // the departed worker's share may land anywhere
			}
			if got != home {
				t.Fatalf("removing %s moved key %s: %s -> %s",
					full[departed].Name, key, home, got)
			}
		}
	}
}

// TestPoliciesSkipDraining: no policy may ever hand a frame to a
// draining worker, and an all-draining fleet reads as no pick.
func TestPoliciesSkipDraining(t *testing.T) {
	for _, p := range []Policy{NewAffinity(), NewRoundRobin(), NewLeastLoaded()} {
		fleet := []Candidate{
			{Name: "http://w0", Load: 0, Draining: true},
			{Name: "http://w1", Load: 5},
			{Name: "http://w2", Load: 9, Draining: true},
		}
		for i := 0; i < 16; i++ {
			key := fmt.Sprintf("megsim-%024x", i)
			if got := p.Pick(key, fleet); got != 1 {
				t.Fatalf("%s picked %d, only index 1 is eligible", p.Name(), got)
			}
		}
		all := []Candidate{
			{Name: "http://w0", Draining: true},
			{Name: "http://w1", Draining: true},
		}
		if got := p.Pick("megsim-abc", all); got != -1 {
			t.Fatalf("%s picked %d from an all-draining fleet", p.Name(), got)
		}
		if got := p.Pick("megsim-abc", nil); got != -1 {
			t.Fatalf("%s picked %d from an empty fleet", p.Name(), got)
		}
	}
}

// TestLeastLoadedPicksMinimum: strictly the lightest eligible worker,
// deterministic tie-break by name.
func TestLeastLoadedPicksMinimum(t *testing.T) {
	p := NewLeastLoaded()
	fleet := []Candidate{
		{Name: "http://w0", Load: 3},
		{Name: "http://w1", Load: 1},
		{Name: "http://w2", Load: 2},
	}
	if got := p.Pick("any", fleet); got != 1 {
		t.Fatalf("picked %d, want the Load=1 worker at index 1", got)
	}
	tie := []Candidate{
		{Name: "http://wB", Load: 2},
		{Name: "http://wA", Load: 2},
	}
	if got := p.Pick("any", tie); got != 1 {
		t.Fatalf("tie broke to %d, want lexicographically-first name at index 1", got)
	}
}

// TestRoundRobinCycles: over 3 eligible workers, 3k picks land k on
// each.
func TestRoundRobinCycles(t *testing.T) {
	p := NewRoundRobin()
	fleet := cands("http://w0", "http://w1", "http://w2")
	counts := map[int]int{}
	for i := 0; i < 30; i++ {
		counts[p.Pick("ignored", fleet)]++
	}
	for i := 0; i < 3; i++ {
		if counts[i] != 10 {
			t.Fatalf("worker %d got %d of 30 picks, want 10 (counts %v)", i, counts[i], counts)
		}
	}
}
