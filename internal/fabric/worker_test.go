package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/megsim"
)

// postUnit POSTs a raw body to a worker's frame endpoint.
func postUnit(t *testing.T, ts *httptest.Server, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/fabric/v1/frames", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST frame: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// validWorkUnit builds a genuine unit for the canonical campaign: real
// fingerprint, in-range frame.
func validWorkUnit(t *testing.T, frame int) (*WorkUnit, *megsim.Trace) {
	t.Helper()
	req, tr, gpu, err := clusterRequest()
	if err != nil {
		t.Fatal(err)
	}
	return &WorkUnit{
		Fingerprint: megsim.RunFingerprint(tr, gpu),
		Frame:       frame,
		Workload:    req.Workload,
		GPU:         req.GPU,
		Obs:         true,
	}, tr
}

func marshalUnit(t *testing.T, u *WorkUnit) string {
	t.Helper()
	b, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestWorkerSimulatesFrame: the happy path end to end — a valid unit
// comes back 200 with the frame's stats matching an in-process
// simulation and a non-empty observability snapshot.
func TestWorkerSimulatesFrame(t *testing.T) {
	w := NewWorker(WorkerConfig{})
	ts := httptest.NewServer(w.Handler())
	defer ts.Close()

	u, tr := validWorkUnit(t, 1)
	code, raw := postUnit(t, ts, marshalUnit(t, u))
	if code != http.StatusOK {
		t.Fatalf("valid unit: status %d: %s", code, raw)
	}
	var res WorkResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if res.Frame != u.Frame {
		t.Fatalf("result frame %d, want %d", res.Frame, u.Frame)
	}
	if res.Obs == nil {
		t.Fatal("obs requested but result carries no snapshot")
	}

	// Stats must match the in-process simulator exactly.
	_, _, gpu, err := clusterRequest()
	if err != nil {
		t.Fatal(err)
	}
	want, err := megsim.FrameRunner(tr, gpu)(context.Background(), u.Frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != want {
		t.Fatalf("worker stats differ from in-process run:\nworker: %+v\nlocal:  %+v", res.Stats, want)
	}

	// Without obs, the result omits the snapshot entirely.
	u2 := *u
	u2.Obs = false
	_, raw2 := postUnit(t, ts, marshalUnit(t, &u2))
	if bytes.Contains(raw2, []byte(`"obs"`)) {
		t.Fatal("obs snapshot present though not requested")
	}
	if got := workerServed(w); got != 2 {
		t.Fatalf("fabric.frames.served = %d, want 2", got)
	}
}

// TestWorkerRefusals: every deterministic refusal maps to the right
// status code — the codes the coordinator keys its failover decision on.
func TestWorkerRefusals(t *testing.T) {
	w := NewWorker(WorkerConfig{})
	ts := httptest.NewServer(w.Handler())
	defer ts.Close()

	u, tr := validWorkUnit(t, 0)

	mismatch := *u
	mismatch.Fingerprint = "megsim-deadbeefdeadbeefdeadbeef"
	if code, raw := postUnit(t, ts, marshalUnit(t, &mismatch)); code != http.StatusConflict {
		t.Fatalf("fingerprint mismatch: status %d, want 409: %s", code, raw)
	}

	outOfRange := *u
	outOfRange.Frame = tr.NumFrames()
	if code, raw := postUnit(t, ts, marshalUnit(t, &outOfRange)); code != http.StatusBadRequest {
		t.Fatalf("out-of-range frame: status %d, want 400: %s", code, raw)
	}

	if code, _ := postUnit(t, ts, `{"garbage`); code != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", code)
	}

	if got := w.Registry().Snapshot().Counters["fabric.frames.rejected"]; got != 3 {
		t.Fatalf("fabric.frames.rejected = %d, want 3", got)
	}
}

// TestWorkerDrain: drain flips healthz, refuses frames with 503 (the
// failover-without-burial signal), and is what the heartbeat reports.
func TestWorkerDrain(t *testing.T) {
	log := &lockedBuf{}
	w := NewWorker(WorkerConfig{Log: log})
	ts := httptest.NewServer(w.Handler())
	defer ts.Close()

	if w.Draining() {
		t.Fatal("fresh worker reports draining")
	}

	health := func() HealthStatus {
		t.Helper()
		resp, err := http.Get(ts.URL + "/fabric/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h HealthStatus
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	if h := health(); !h.OK || h.Draining {
		t.Fatalf("fresh worker healthz = %+v", h)
	}

	resp, err := http.Post(ts.URL+"/fabric/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d", resp.StatusCode)
	}
	if h := health(); !h.Draining {
		t.Fatalf("post-drain healthz = %+v, want draining", h)
	}
	if !w.Draining() {
		t.Fatal("Draining() false after drain")
	}
	if !strings.Contains(log.String(), "worker draining") {
		t.Fatalf("drain not logged:\n%s", log.String())
	}

	u, _ := validWorkUnit(t, 0)
	if code, _ := postUnit(t, ts, marshalUnit(t, u)); code != http.StatusServiceUnavailable {
		t.Fatalf("draining worker answered %d, want 503", code)
	}

	// /metrics stays serviceable while draining.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !bytes.Contains(body, []byte("fabric_worker_inflight")) {
		t.Fatalf("metrics missing worker gauge:\n%s", body)
	}
}

// TestWorkerCancelledFrameIsServerError: a simulation that dies
// mid-frame (here: context cancellation) is a 500, not a 4xx — the
// coordinator must treat it as a worker problem and fail over, never
// as a refusal of the unit.
func TestWorkerCancelledFrameIsServerError(t *testing.T) {
	w := NewWorker(WorkerConfig{})
	u, _ := validWorkUnit(t, 0)
	// Warm the trace cache so the cancellation hits the simulator, not
	// the trace build.
	if _, code, err := w.simulate(context.Background(), u); err != nil || code != http.StatusOK {
		t.Fatalf("warmup simulate: code %d, err %v", code, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, code, err := w.simulate(ctx, u)
	if err == nil {
		t.Fatal("cancelled simulation succeeded")
	}
	if code != http.StatusInternalServerError {
		t.Fatalf("cancelled simulation: code %d (%v), want 500", code, err)
	}
}

// TestWriteJSONMarshalFailure: an unmarshalable value degrades to the
// JSON error envelope instead of a half-written body.
func TestWriteJSONMarshalFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, make(chan int))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("writeJSON with unmarshalable value: code %d, want 500", rec.Code)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte(`"error"`)) {
		t.Fatalf("no error envelope: %s", rec.Body.String())
	}
}
