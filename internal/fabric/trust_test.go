package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/resilience"
)

// orderedPolicy picks the earliest eligible candidate in a fixed name
// order — deterministic primary/audit/arbiter seating for trust tests.
type orderedPolicy struct{ order []string }

func (*orderedPolicy) Name() string { return "ordered" }

func (p *orderedPolicy) Pick(_ string, cands []Candidate) int {
	for _, name := range p.order {
		for i, c := range cands {
			if c.Name == name && !c.Draining {
				return i
			}
		}
	}
	return -1
}

// byzantine wraps a real worker's handler and tampers with every frame
// result: the stats are perturbed and the digest recomputed over the
// tampered content, so digest verification passes and only the audit
// cross-check can catch it — the strongest adversary the trust model
// claims to handle.
func byzantine(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/fabric/v1/frames" {
			h.ServeHTTP(w, r)
			return
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		if rec.Code != http.StatusOK {
			for k, v := range rec.Header() {
				w.Header()[k] = v
			}
			w.WriteHeader(rec.Code)
			w.Write(rec.Body.Bytes())
			return
		}
		var res WorkResult
		if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		res.Stats.Cycles += 1 << 20 // a plausibly-wrong number, not garbage
		res.Digest = res.ComputeDigest()
		writeJSON(w, http.StatusOK, &res)
	})
}

// trustFleet starts n real workers plus handler-level middleware per
// index, returning URLs in seat order.
func trustFleet(t *testing.T, n int, wrap map[int]func(http.Handler) http.Handler) ([]*Worker, []string) {
	t.Helper()
	workers := make([]*Worker, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		workers[i] = NewWorker(WorkerConfig{})
		var h http.Handler = workers[i].Handler()
		if w, ok := wrap[i]; ok {
			h = w(h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return workers, urls
}

// TestDigestFailureFailsOverThenQuarantines: a worker that emits
// results failing digest verification costs a failover each time (it is
// NOT marked down — the wire, not the worker, may be at fault) until
// the failure budget is spent, at which point it is quarantined for
// good: gauge up, Quarantined() lists it, and Probe never resurrects
// it.
func TestDigestFailureFailsOverThenQuarantines(t *testing.T) {
	// Seat 0 answers every frame with a fabricated result whose digest
	// doesn't verify; seat 1 is honest.
	corrupt := func(http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			u, err := DecodeWorkUnit(r.Body)
			if err != nil {
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			writeJSON(w, http.StatusOK, &WorkResult{Frame: u.Frame, Digest: "crc32:deadbeef"})
		})
	}
	workers, urls := trustFleet(t, 2, map[int]func(http.Handler) http.Handler{0: corrupt})
	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:            urls,
		Policy:             &orderedPolicy{order: urls},
		HeartbeatInterval:  -1,
		DigestFailureLimit: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	for frame := 0; frame < 3; frame++ {
		u, _ := validWorkUnit(t, frame)
		res, err := coord.Dispatch(context.Background(), u)
		if err != nil {
			t.Fatalf("frame %d: %v", frame, err)
		}
		if res.Digest != res.ComputeDigest() {
			t.Fatalf("frame %d: accepted result fails digest verification", frame)
		}
		snap := coord.reg.Snapshot()
		if got := snap.Counters["fabric.digest.failed"]; got != uint64(frame+1) {
			t.Fatalf("frame %d: fabric.digest.failed = %d, want %d", frame, got, frame+1)
		}
		// Until the limit, the corrupt worker stays eligible (not down):
		// a corrupt delivery is a failover, not a burial.
		wantQuar := frame == 2
		if gotQuar := len(coord.Quarantined()) == 1; gotQuar != wantQuar {
			t.Fatalf("frame %d: quarantined=%v, want %v", frame, gotQuar, wantQuar)
		}
	}
	snap := coord.reg.Snapshot()
	if got := snap.Gauges["fabric.workers.quarantined"]; got != 1 {
		t.Fatalf("fabric.workers.quarantined = %d, want 1", got)
	}
	if q := coord.Quarantined(); len(q) != 1 || q[0] != urls[0] {
		t.Fatalf("Quarantined() = %v, want [%s]", q, urls[0])
	}
	if got := workerServed(workers[1]); got != 3 {
		t.Fatalf("honest worker served %d frames, want 3", got)
	}

	// Quarantine is terminal: the worker's server is reachable and
	// healthy, but Probe must not resurrect it.
	coord.Probe(context.Background())
	if q := coord.Quarantined(); len(q) != 1 {
		t.Fatal("Probe resurrected a quarantined worker")
	}
	u, _ := validWorkUnit(t, 9)
	if _, err := coord.Dispatch(context.Background(), u); err != nil {
		t.Fatalf("dispatch after quarantine: %v", err)
	}
	if got := workerServed(workers[0]); got != 0 {
		t.Fatalf("quarantined worker served %d frames after quarantine", got)
	}
}

// TestAuditCatchesByzantineWorker: the byzantine worker tampers with
// stats and recomputes a valid digest — invisible to digest
// verification. With every frame audited, the cross-check catches the
// divergence, the third worker arbitrates, the byzantine minority is
// quarantined, and the accepted result is the honest majority's.
func TestAuditCatchesByzantineWorker(t *testing.T) {
	workers, urls := trustFleet(t, 3, map[int]func(http.Handler) http.Handler{0: byzantine})
	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:           urls,
		Policy:            &orderedPolicy{order: urls}, // byzantine seats primary
		HeartbeatInterval: -1,
		AuditFraction:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	u, _ := validWorkUnit(t, 0)
	res, err := coord.Dispatch(context.Background(), u)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}

	// The honest pair agrees on the truth; dispatch a second frame to a
	// now-byzantine-free fleet and compare an honest frame-0 answer.
	honest := NewWorker(WorkerConfig{})
	hts := httptest.NewServer(honest.Handler())
	defer hts.Close()
	hc, err := NewCoordinator(CoordinatorConfig{Workers: []string{hts.URL}, HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	want, err := hc.Dispatch(context.Background(), u)
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != want.Digest {
		t.Fatalf("audit accepted the byzantine result: digest %s, honest %s", res.Digest, want.Digest)
	}
	if res.Stats != want.Stats {
		t.Fatalf("accepted stats differ from honest stats:\n%+v\n%+v", res.Stats, want.Stats)
	}

	snap := coord.reg.Snapshot()
	if got := snap.Counters["fabric.audit.sampled"]; got != 1 {
		t.Fatalf("fabric.audit.sampled = %d, want 1", got)
	}
	if got := snap.Counters["fabric.audit.mismatch"]; got != 1 {
		t.Fatalf("fabric.audit.mismatch = %d, want 1", got)
	}
	if q := coord.Quarantined(); len(q) != 1 || q[0] != urls[0] {
		t.Fatalf("Quarantined() = %v, want the byzantine worker %s", q, urls[0])
	}
	_ = workers
}

// TestAuditMismatchWithoutArbiterRequeues: with only two workers and a
// digest dispute between them there is no majority — the frame must
// requeue (WorkerLost), never merge, and neither worker can be blamed.
func TestAuditMismatchWithoutArbiterRequeues(t *testing.T) {
	_, urls := trustFleet(t, 2, map[int]func(http.Handler) http.Handler{0: byzantine})
	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:           urls,
		Policy:            &orderedPolicy{order: urls},
		HeartbeatInterval: -1,
		AuditFraction:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	u, _ := validWorkUnit(t, 0)
	_, err = coord.Dispatch(context.Background(), u)
	if err == nil {
		t.Fatal("disputed frame was merged")
	}
	if !resilience.IsWorkerLost(err) {
		t.Fatalf("disputed frame failed with %v, want WorkerLost (requeue)", err)
	}
	if q := coord.Quarantined(); len(q) != 0 {
		t.Fatalf("quarantined %v on a 1-vs-1 dispute with no majority", q)
	}
}

// TestHedgedDispatchReclaimsStraggler: the primary worker stalls far
// past the hedge deadline; the dispatch hedges to the next candidate
// and the hedge's digest-valid result wins long before the straggler
// would have answered.
func TestHedgedDispatchReclaimsStraggler(t *testing.T) {
	const stall = 30 * time.Second
	stalled := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/fabric/v1/frames" {
				// Drain the body first so the server's connection watcher
				// runs and the coordinator's cancel actually unblocks us.
				body, _ := io.ReadAll(r.Body)
				select {
				case <-time.After(stall):
				case <-r.Context().Done():
					return
				}
				r.Body = io.NopCloser(bytes.NewReader(body))
			}
			h.ServeHTTP(w, r)
		})
	}
	workers, urls := trustFleet(t, 2, map[int]func(http.Handler) http.Handler{0: stalled})
	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:           urls,
		Policy:            &orderedPolicy{order: urls},
		HeartbeatInterval: -1,
		HedgeAfter:        50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	u, _ := validWorkUnit(t, 0)
	start := time.Now()
	res, err := coord.Dispatch(context.Background(), u)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if elapsed := time.Since(start); elapsed >= stall {
		t.Fatalf("dispatch waited out the straggler (%v)", elapsed)
	}
	if res.Digest != res.ComputeDigest() {
		t.Fatal("hedged result fails digest verification")
	}
	if got := workerServed(workers[1]); got != 1 {
		t.Fatalf("hedge target served %d frames, want 1", got)
	}
	snap := coord.reg.Snapshot()
	if got := snap.Counters["fabric.dispatch.hedged"]; got != 1 {
		t.Fatalf("fabric.dispatch.hedged = %d, want 1", got)
	}
	if got := snap.Counters["fabric.dispatch.hedge_wins"]; got != 1 {
		t.Fatalf("fabric.dispatch.hedge_wins = %d, want 1", got)
	}
}

// TestOversizedResultFailsOver is the maxResultBytes regression: a
// worker answering a body exactly one byte over the limit is a worker
// failure — failover to the next candidate — not a malformed-JSON
// puzzle truncated at the cap.
func TestOversizedResultFailsOver(t *testing.T) {
	over := bytes.Repeat([]byte("x"), maxResultBytes+1)
	oversized := func(http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.Copy(io.Discard, r.Body)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(over)
		})
	}
	var log strings.Builder
	workers, urls := trustFleet(t, 2, map[int]func(http.Handler) http.Handler{0: oversized})
	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:           urls,
		Policy:            &orderedPolicy{order: urls},
		HeartbeatInterval: -1,
		Log:               &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	u, _ := validWorkUnit(t, 0)
	res, err := coord.Dispatch(context.Background(), u)
	if err != nil {
		t.Fatalf("Dispatch: %v", err)
	}
	if res.Digest != res.ComputeDigest() {
		t.Fatal("failover result fails digest verification")
	}
	if got := workerServed(workers[1]); got != 1 {
		t.Fatalf("failover target served %d frames, want 1", got)
	}
	snap := coord.reg.Snapshot()
	if got := snap.Counters["fabric.dispatch.failover"]; got != 1 {
		t.Fatalf("fabric.dispatch.failover = %d, want 1", got)
	}
	// The failure is named for what it is — an oversized answer, not a
	// JSON decode error at the cut.
	if !strings.Contains(log.String(), "result bytes") {
		t.Fatalf("over-limit body not diagnosed as oversized:\n%s", log.String())
	}
	if strings.Contains(log.String(), "malformed result") {
		t.Fatalf("over-limit body misdiagnosed as malformed JSON:\n%s", log.String())
	}
}

// TestCloseCancelsInflightProbe: Close must cancel the heartbeat
// context so an in-flight probe against a hung worker cannot outlive
// the coordinator.
func TestCloseCancelsInflightProbe(t *testing.T) {
	release := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer hung.Close()
	defer close(release)

	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:           []string{hung.URL},
		HeartbeatInterval: time.Millisecond, // probe immediately and often
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let a probe get stuck in the handler
	done := make(chan struct{})
	go func() {
		coord.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(4 * time.Second):
		t.Fatal("Close blocked on an in-flight probe; heartbeat context not cancelled")
	}
}

// TestAuditSampleDeterministicFraction: the audit sampler is a pure
// roll — replayable, fingerprint+frame keyed, and roughly proportional
// to the configured fraction.
func TestAuditSampleDeterministicFraction(t *testing.T) {
	c := &Coordinator{cfg: CoordinatorConfig{AuditFraction: 0.25, AuditSeed: 99}}
	u := func(frame int) *WorkUnit { return &WorkUnit{Fingerprint: "megsim-test", Frame: frame} }
	sampled := 0
	for f := 0; f < 2000; f++ {
		a := c.auditSample(u(f))
		if b := c.auditSample(u(f)); a != b {
			t.Fatalf("frame %d: audit sample not deterministic", f)
		}
		if a {
			sampled++
		}
	}
	if sampled < 400 || sampled > 600 {
		t.Fatalf("sampled %d of 2000 at fraction 0.25; want ~500", sampled)
	}
	off := &Coordinator{cfg: CoordinatorConfig{AuditFraction: 0}}
	always := &Coordinator{cfg: CoordinatorConfig{AuditFraction: 1}}
	if off.auditSample(u(1)) {
		t.Fatal("fraction 0 sampled a frame")
	}
	if !always.auditSample(u(1)) {
		t.Fatal("fraction 1 skipped a frame")
	}
	_ = fmt.Sprint() // keep fmt imported if asserts change
}
