package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/serve"
	"repro/megsim"
	"sync/atomic"

	"repro/internal/tbr"
)

// DefaultHeartbeatInterval is the worker-probe cadence when
// CoordinatorConfig leaves it zero.
const DefaultHeartbeatInterval = 2 * time.Second

// maxResultBytes bounds a worker's frame-result body.
const maxResultBytes = 32 << 20

// CoordinatorConfig configures a Coordinator.
type CoordinatorConfig struct {
	// Workers is the static peer list: base URLs of the worker fleet
	// (e.g. "http://sim-3:8080"). Required, order-insensitive — routing
	// keys on the URL, not the position.
	Workers []string
	// Policy routes frames to workers (nil = NewAffinity, which
	// co-locates each campaign's frames on one worker's trace cache).
	Policy Policy
	// Obs receives the coordinator's fabric counters and per-worker
	// gauges (nil = a fresh metrics-only registry). Pass the campaign
	// server's registry so /metrics exports the fleet state.
	Obs *obs.Registry
	// Client is the HTTP client for dispatch and heartbeats (nil = a
	// client with a 5-minute timeout; per-frame simulation is slow).
	Client *http.Client
	// HeartbeatInterval is the health-probe cadence (0 =
	// DefaultHeartbeatInterval; negative disables the loop — workers are
	// then only marked down by failed dispatches, and recover only via
	// an explicit Probe).
	HeartbeatInterval time.Duration
	// Log, when non-nil, receives coordinator log lines; it must
	// tolerate concurrent writes.
	Log io.Writer
}

// member is one worker as the coordinator tracks it.
type member struct {
	name string // normalized base URL; the routing identity

	down     atomic.Bool
	draining atomic.Bool
	inflight atomic.Int64

	up   *obs.Gauge
	load *obs.Gauge
}

// Coordinator dispatches work units across the worker fleet and folds
// fleet state into the observability registry. It implements
// serve.Dispatcher, so plugging it into serve.Config turns the campaign
// service into the cluster's coordinator.
//
// Failure handling per dispatch: a worker that refuses the unit
// deterministically (4xx — bad unit, fingerprint skew) fails the frame
// outright, surfacing through the supervisor's ordinary retry and
// quarantine path. A worker that dies (network error, 5xx) is marked
// down and the dispatch fails over to the policy's next candidate; a
// draining worker (503) fails over without being marked down. When no
// candidates remain the dispatch returns resilience.WorkerLost, which
// the supervisor requeues without charging the frame's attempt budget —
// the frame re-enters the pool as soon as any worker comes back.
type Coordinator struct {
	cfg     CoordinatorConfig
	policy  Policy
	client  *http.Client
	reg     *obs.Registry
	members []*member

	live *obs.Gauge

	dispatched, failovers *obs.Counter
	lost, refused         *obs.Counter

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewCoordinator builds a coordinator over the worker fleet and starts
// its heartbeat loop (unless disabled). Callers own Close.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fabric: coordinator needs at least one worker URL")
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewWith(obs.Options{TraceCapacity: -1})
	}
	policy := cfg.Policy
	if policy == nil {
		policy = NewAffinity()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}
	c := &Coordinator{
		cfg:        cfg,
		policy:     policy,
		client:     client,
		reg:        reg,
		live:       reg.Gauge("fabric.workers.live"),
		dispatched: reg.Counter("fabric.dispatch.sent"),
		failovers:  reg.Counter("fabric.dispatch.failover"),
		lost:       reg.Counter("fabric.dispatch.lost"),
		refused:    reg.Counter("fabric.dispatch.refused"),
		stop:       make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, raw := range cfg.Workers {
		name := strings.TrimRight(strings.TrimSpace(raw), "/")
		if name == "" || seen[name] {
			continue
		}
		seen[name] = true
		i := len(c.members)
		m := &member{
			name: name,
			up:   reg.Gauge(fmt.Sprintf("fabric.worker.%d.up", i)),
			load: reg.Gauge(fmt.Sprintf("fabric.worker.%d.inflight", i)),
		}
		m.up.Set(1)
		c.members = append(c.members, m)
	}
	if len(c.members) == 0 {
		return nil, errors.New("fabric: coordinator needs at least one worker URL")
	}
	c.live.Set(int64(len(c.members)))
	interval := cfg.HeartbeatInterval
	if interval == 0 {
		interval = DefaultHeartbeatInterval
	}
	if interval > 0 {
		c.wg.Add(1)
		go c.heartbeatLoop(interval)
	}
	return c, nil
}

// Close stops the heartbeat loop. Safe to call more than once.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Workers returns the normalized peer list in routing order.
func (c *Coordinator) Workers() []string {
	names := make([]string, len(c.members))
	for i, m := range c.members {
		names[i] = m.name
	}
	return names
}

// FrameRunner implements serve.Dispatcher: the returned frame function
// ships each frame to the fleet and merges the worker's observability
// snapshot into the supervisor's per-frame registry — the same
// MergeSnapshot path a checkpoint resume replays, so a distributed
// campaign's merged registry is byte-identical to a local run's.
func (c *Coordinator) FrameRunner(fp string, req *serve.CampaignRequest) megsim.ResilientFrameFunc {
	return func(ctx context.Context, frame int, reg *obs.Registry) (tbr.FrameStats, error) {
		u := &WorkUnit{
			Fingerprint: fp,
			Frame:       frame,
			Workload:    req.Workload,
			GPU:         req.GPU,
			Obs:         reg.Enabled(),
		}
		res, err := c.Dispatch(ctx, u)
		if err != nil {
			return tbr.FrameStats{}, err
		}
		if res.Obs != nil {
			reg.MergeSnapshot(res.Obs)
		}
		return res.Stats, nil
	}
}

var _ serve.Dispatcher = (*Coordinator)(nil)

// Dispatch routes one work unit to a worker, failing over across the
// fleet as described on Coordinator.
func (c *Coordinator) Dispatch(ctx context.Context, u *WorkUnit) (*WorkResult, error) {
	tried := make(map[int]bool)
	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		idx := c.pick(u.Fingerprint, tried)
		if idx < 0 {
			c.lost.Inc()
			if lastErr == nil {
				lastErr = errors.New("no live workers")
			}
			return nil, resilience.WorkerLost(lastErr)
		}
		m := c.members[idx]
		c.dispatched.Inc()
		res, unitErr, dispErr := c.post(ctx, m, u)
		switch {
		case dispErr == nil && unitErr == nil:
			return res, nil
		case unitErr != nil:
			// Deterministic refusal: the frame itself is the problem, so
			// failover would only re-fail it N times. Let the supervisor's
			// retry/quarantine path own it.
			c.refused.Inc()
			return nil, unitErr
		case errors.Is(dispErr, errDraining):
			m.draining.Store(true)
			c.logf("fabric: %s draining, failing over", m.name)
		default:
			if err := ctx.Err(); err != nil {
				// The transport error was our own cancellation, not the
				// worker's death.
				return nil, err
			}
			c.markDown(m, dispErr)
		}
		tried[idx] = true
		lastErr = dispErr
		c.failovers.Inc()
	}
}

// pick builds the candidate view (live, untried members) and asks the
// policy. Draining members are candidates the policy must skip, so an
// all-draining fleet reads as "no pick" rather than an error.
func (c *Coordinator) pick(key string, tried map[int]bool) int {
	cands := make([]Candidate, 0, len(c.members))
	idxs := make([]int, 0, len(c.members))
	for i, m := range c.members {
		if tried[i] || m.down.Load() {
			continue
		}
		cands = append(cands, Candidate{
			Name:     m.name,
			Load:     int(m.inflight.Load()),
			Draining: m.draining.Load(),
		})
		idxs = append(idxs, i)
	}
	p := c.policy.Pick(key, cands)
	if p < 0 {
		return -1
	}
	return idxs[p]
}

// errDraining marks a 503 from a worker: back off, don't bury it.
var errDraining = errors.New("fabric: worker draining")

// post sends one unit to one member. It returns exactly one of:
// a result; a unit error (the worker deterministically refused this
// unit — 4xx); a dispatch error (the worker is unreachable, dying or
// draining — eligible for failover).
func (c *Coordinator) post(ctx context.Context, m *member, u *WorkUnit) (res *WorkResult, unitErr, dispErr error) {
	m.inflight.Add(1)
	m.load.Set(m.inflight.Load())
	defer func() {
		m.inflight.Add(-1)
		m.load.Set(m.inflight.Load())
	}()
	body, err := json.Marshal(u)
	if err != nil {
		return nil, fmt.Errorf("fabric: encode work unit: %w", err), nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.name+"/fabric/v1/frames", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("fabric: build request: %w", err), nil
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResultBytes))
	if err != nil {
		return nil, nil, fmt.Errorf("read response from %s: %w", m.name, err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		out := &WorkResult{}
		if err := json.Unmarshal(raw, out); err != nil {
			return nil, nil, fmt.Errorf("malformed result from %s: %w", m.name, err)
		}
		if out.Frame != u.Frame {
			return nil, nil, fmt.Errorf("%s answered frame %d for frame %d", m.name, out.Frame, u.Frame)
		}
		return out, nil, nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		return nil, nil, errDraining
	case resp.StatusCode >= http.StatusInternalServerError:
		return nil, nil, fmt.Errorf("%s answered %d: %s", m.name, resp.StatusCode, errBody(raw))
	default:
		return nil, fmt.Errorf("fabric: %s refused frame %d (%d): %s", m.name, u.Frame, resp.StatusCode, errBody(raw)), nil
	}
}

// errBody extracts the error message from a JSON error body, falling
// back to the raw bytes.
func errBody(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}

func (c *Coordinator) markDown(m *member, cause error) {
	if !m.down.Swap(true) {
		c.logf("fabric: %s marked down: %v", m.name, cause)
	}
	m.up.Set(0)
	c.refreshLive()
}

// Probe health-checks every member once, synchronously: a reachable
// worker comes (back) up with its draining flag refreshed, an
// unreachable one goes down. The heartbeat loop calls this on its
// cadence; tests and a heartbeat-disabled coordinator call it directly.
func (c *Coordinator) Probe(ctx context.Context) {
	for _, m := range c.members {
		h, err := c.probeOne(ctx, m)
		if err != nil {
			if !m.down.Swap(true) {
				c.logf("fabric: %s failed heartbeat: %v", m.name, err)
			}
			m.up.Set(0)
			continue
		}
		if m.down.Swap(false) {
			c.logf("fabric: %s recovered", m.name)
		}
		m.draining.Store(h.Draining)
		m.up.Set(1)
	}
	c.refreshLive()
}

func (c *Coordinator) probeOne(ctx context.Context, m *member) (*HealthStatus, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.name+"/fabric/v1/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("healthz answered %d", resp.StatusCode)
	}
	h := &HealthStatus{}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(h); err != nil {
		return nil, fmt.Errorf("malformed healthz: %w", err)
	}
	return h, nil
}

func (c *Coordinator) refreshLive() {
	live := int64(0)
	for _, m := range c.members {
		if !m.down.Load() {
			live++
		}
	}
	c.live.Set(live)
}

func (c *Coordinator) heartbeatLoop(interval time.Duration) {
	defer c.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.Probe(context.Background())
		}
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		fmt.Fprintf(c.cfg.Log, format+"\n", args...)
	}
}
