package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/serve"
	"repro/megsim"
	"sync/atomic"

	"repro/internal/tbr"
)

// DefaultHeartbeatInterval is the worker-probe cadence when
// CoordinatorConfig leaves it zero.
const DefaultHeartbeatInterval = 2 * time.Second

// maxResultBytes bounds a worker's frame-result body.
const maxResultBytes = 32 << 20

// DefaultDigestFailureLimit is how many digest-verification failures a
// worker accumulates before quarantine when the config leaves the limit
// zero. Transient wire corruption (which the chaos transport injects on
// purpose) costs a failover, not a worker; a worker that persistently
// delivers corrupt bytes is hardware-suspect and gets benched.
const DefaultDigestFailureLimit = 3

// CoordinatorConfig configures a Coordinator.
type CoordinatorConfig struct {
	// Workers is the static peer list: base URLs of the worker fleet
	// (e.g. "http://sim-3:8080"). Required, order-insensitive — routing
	// keys on the URL, not the position.
	Workers []string
	// Policy routes frames to workers (nil = NewAffinity, which
	// co-locates each campaign's frames on one worker's trace cache).
	Policy Policy
	// Obs receives the coordinator's fabric counters and per-worker
	// gauges (nil = a fresh metrics-only registry). Pass the campaign
	// server's registry so /metrics exports the fleet state.
	Obs *obs.Registry
	// Client is the HTTP client for dispatch and heartbeats (nil = a
	// client with a 5-minute timeout; per-frame simulation is slow).
	Client *http.Client
	// HeartbeatInterval is the health-probe cadence (0 =
	// DefaultHeartbeatInterval; negative disables the loop — workers are
	// then only marked down by failed dispatches, and recover only via
	// an explicit Probe).
	HeartbeatInterval time.Duration

	// AuditFraction re-dispatches this fraction of frames to a second
	// worker and cross-checks result digests for byte-identity — the
	// byzantine-worker defense. 0 disables auditing; 1 audits every
	// frame. Sampling is seed-keyed on (AuditSeed, fingerprint, frame),
	// so an audit schedule is replayable like everything else.
	AuditFraction float64
	// AuditSeed keys the audit sampler (0 is a valid seed).
	AuditSeed uint64
	// HedgeAfter arms hedged dispatch: when a worker has held a frame
	// longer than the adaptive deadline max(HedgeAfter, 2× the fleet's
	// latency EWMA), the frame is also sent to the policy's next
	// candidate and the first digest-valid result wins. <= 0 disables
	// hedging. Safe because worker results are byte-identical — either
	// copy of the answer is the answer.
	HedgeAfter time.Duration
	// DigestFailureLimit quarantines a worker after this many digest
	// verification failures (0 = DefaultDigestFailureLimit).
	DigestFailureLimit int

	// Log, when non-nil, receives coordinator log lines; it must
	// tolerate concurrent writes.
	Log io.Writer
}

// member is one worker as the coordinator tracks it.
type member struct {
	name string // normalized base URL; the routing identity

	down        atomic.Bool
	draining    atomic.Bool
	quarantined atomic.Bool
	inflight    atomic.Int64
	digestFails atomic.Int64

	up   *obs.Gauge
	load *obs.Gauge
}

// Coordinator dispatches work units across the worker fleet and folds
// fleet state into the observability registry. It implements
// serve.Dispatcher, so plugging it into serve.Config turns the campaign
// service into the cluster's coordinator.
//
// Failure handling per dispatch: a worker that refuses the unit
// deterministically (4xx — bad unit, fingerprint skew) fails the frame
// outright, surfacing through the supervisor's ordinary retry and
// quarantine path. A worker that dies (network error, 5xx) is marked
// down and the dispatch fails over to the policy's next candidate; a
// draining worker (503) fails over without being marked down. When no
// candidates remain the dispatch returns resilience.WorkerLost, which
// the supervisor requeues without charging the frame's attempt budget —
// the frame re-enters the pool as soon as any worker comes back.
//
// On top of availability failures sits the trust layer. Every result
// carries a canonical content digest; a result whose digest does not
// verify is treated as a corrupt delivery — failover to the next
// candidate without burying the worker, until DigestFailureLimit
// failures quarantine it. A seed-keyed sampler audits AuditFraction of
// frames by re-dispatching them to a second worker and cross-checking
// digests; on divergence a third worker arbitrates and the minority
// worker is quarantined. Quarantine is terminal: the worker is marked
// down, skipped by heartbeat resurrection, and its in-flight frames
// requeue through the ordinary WorkerLost/failover paths.
type Coordinator struct {
	cfg     CoordinatorConfig
	policy  Policy
	client  *http.Client
	reg     *obs.Registry
	members []*member

	live        *obs.Gauge
	quarantined *obs.Gauge

	dispatched, failovers  *obs.Counter
	lost, refused          *obs.Counter
	auditSampled, auditBad *obs.Counter
	digestFailed           *obs.Counter
	hedges, hedgeWins      *obs.Counter

	// latencyEWMA is the fleet's successful-dispatch latency EWMA in
	// nanoseconds (alpha 1/8), the adaptive half of the hedge deadline.
	latencyEWMA atomic.Uint64

	// ctx is cancelled by Close, bounding the heartbeat loop and any
	// in-flight probe — a probe can't outlive its coordinator.
	ctx       context.Context
	cancel    context.CancelFunc
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewCoordinator builds a coordinator over the worker fleet and starts
// its heartbeat loop (unless disabled). Callers own Close.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fabric: coordinator needs at least one worker URL")
	}
	if cfg.AuditFraction < 0 || cfg.AuditFraction > 1 {
		return nil, fmt.Errorf("fabric: audit fraction %v out of [0,1]", cfg.AuditFraction)
	}
	if cfg.DigestFailureLimit < 0 {
		return nil, fmt.Errorf("fabric: digest failure limit %d must be >= 0", cfg.DigestFailureLimit)
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewWith(obs.Options{TraceCapacity: -1})
	}
	policy := cfg.Policy
	if policy == nil {
		policy = NewAffinity()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}
	c := &Coordinator{
		cfg:          cfg,
		policy:       policy,
		client:       client,
		reg:          reg,
		live:         reg.Gauge("fabric.workers.live"),
		quarantined:  reg.Gauge("fabric.workers.quarantined"),
		dispatched:   reg.Counter("fabric.dispatch.sent"),
		failovers:    reg.Counter("fabric.dispatch.failover"),
		lost:         reg.Counter("fabric.dispatch.lost"),
		refused:      reg.Counter("fabric.dispatch.refused"),
		auditSampled: reg.Counter("fabric.audit.sampled"),
		auditBad:     reg.Counter("fabric.audit.mismatch"),
		digestFailed: reg.Counter("fabric.digest.failed"),
		hedges:       reg.Counter("fabric.dispatch.hedged"),
		hedgeWins:    reg.Counter("fabric.dispatch.hedge_wins"),
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	seen := map[string]bool{}
	for _, raw := range cfg.Workers {
		name := strings.TrimRight(strings.TrimSpace(raw), "/")
		if name == "" || seen[name] {
			continue
		}
		seen[name] = true
		i := len(c.members)
		m := &member{
			name: name,
			up:   reg.Gauge(fmt.Sprintf("fabric.worker.%d.up", i)),
			load: reg.Gauge(fmt.Sprintf("fabric.worker.%d.inflight", i)),
		}
		m.up.Set(1)
		c.members = append(c.members, m)
	}
	if len(c.members) == 0 {
		return nil, errors.New("fabric: coordinator needs at least one worker URL")
	}
	c.live.Set(int64(len(c.members)))
	interval := cfg.HeartbeatInterval
	if interval == 0 {
		interval = DefaultHeartbeatInterval
	}
	if interval > 0 {
		c.wg.Add(1)
		go c.heartbeatLoop(interval)
	}
	return c, nil
}

// Close stops the heartbeat loop and cancels any in-flight probe. Safe
// to call more than once.
func (c *Coordinator) Close() {
	c.closeOnce.Do(c.cancel)
	c.wg.Wait()
}

// Workers returns the normalized peer list in routing order.
func (c *Coordinator) Workers() []string {
	names := make([]string, len(c.members))
	for i, m := range c.members {
		names[i] = m.name
	}
	return names
}

// Quarantined returns the names of quarantined workers in routing
// order.
func (c *Coordinator) Quarantined() []string {
	var names []string
	for _, m := range c.members {
		if m.quarantined.Load() {
			names = append(names, m.name)
		}
	}
	return names
}

// FrameRunner implements serve.Dispatcher: the returned frame function
// ships each frame to the fleet and merges the worker's observability
// snapshot into the supervisor's per-frame registry — the same
// MergeSnapshot path a checkpoint resume replays, so a distributed
// campaign's merged registry is byte-identical to a local run's.
func (c *Coordinator) FrameRunner(fp string, req *serve.CampaignRequest) megsim.ResilientFrameFunc {
	return func(ctx context.Context, frame int, reg *obs.Registry) (tbr.FrameStats, error) {
		u := &WorkUnit{
			Fingerprint: fp,
			Frame:       frame,
			Workload:    req.Workload,
			GPU:         req.GPU,
			Obs:         reg.Enabled(),
		}
		res, err := c.Dispatch(ctx, u)
		if err != nil {
			return tbr.FrameStats{}, err
		}
		if res.Obs != nil {
			reg.MergeSnapshot(res.Obs)
		}
		return res.Stats, nil
	}
}

var _ serve.Dispatcher = (*Coordinator)(nil)

// Dispatch routes one work unit to a worker, failing over across the
// fleet as described on Coordinator, then applies the audit sampler:
// sampled frames are re-dispatched to a second worker and the two
// result digests must match byte for byte. On a mismatch a third worker
// arbitrates — the minority worker is quarantined and the majority
// result is the answer. A sampled frame is never merged unaudited: when
// the audit can't be seated, or a dispute finds no arbiter, the frame
// comes back as resilience.WorkerLost and requeues.
func (c *Coordinator) Dispatch(ctx context.Context, u *WorkUnit) (*WorkResult, error) {
	res, primary, err := c.dispatchOnce(ctx, u, nil)
	if err != nil {
		return nil, err
	}
	if !c.auditSample(u) {
		return res, nil
	}
	c.auditSampled.Inc()
	exclude := map[int]bool{primary: true}
	audit, auditor, err := c.dispatchOnce(ctx, u, exclude)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		// The fleet can't seat a second opinion right now (single live
		// worker, everyone busy dying). A sampled frame is never merged
		// unaudited — that would be exactly the opening a byzantine
		// primary waits for — so the frame requeues until the fleet can
		// cross-check it.
		c.logf("fabric: audit of %s frame %d could not be seated, requeueing: %v", u.Fingerprint, u.Frame, err)
		c.lost.Inc()
		return nil, resilience.WorkerLost(fmt.Errorf("audit of frame %d could not be seated: %w", u.Frame, err))
	}
	if audit.Digest == res.Digest {
		return res, nil
	}
	c.auditBad.Inc()
	pm, am := c.members[primary], c.members[auditor]
	c.logf("fabric: audit mismatch on %s frame %d: %s says %s, %s says %s",
		u.Fingerprint, u.Frame, pm.name, res.Digest, am.name, audit.Digest)
	exclude[auditor] = true
	tie, _, terr := c.dispatchOnce(ctx, u, exclude)
	if terr == nil {
		switch tie.Digest {
		case res.Digest:
			c.quarantine(am, fmt.Errorf("audit minority on %s frame %d (digest %s vs majority %s)",
				u.Fingerprint, u.Frame, audit.Digest, res.Digest))
			return res, nil
		case audit.Digest:
			c.quarantine(pm, fmt.Errorf("audit minority on %s frame %d (digest %s vs majority %s)",
				u.Fingerprint, u.Frame, res.Digest, audit.Digest))
			return audit, nil
		}
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	// Two-way fleet, or a three-way split: no majority, so no result is
	// trustworthy and nobody can be blamed. Requeue — never merge a
	// disputed frame.
	c.lost.Inc()
	return nil, resilience.WorkerLost(fmt.Errorf(
		"audit of %s frame %d unresolved: %s vs %s with no arbiter", u.Fingerprint, u.Frame, res.Digest, audit.Digest))
}

// auditSample decides deterministically whether a unit is audited: a
// pure (AuditSeed, fingerprint, frame) roll against AuditFraction, the
// same splitmix64-over-FNV construction the chaos and tile fault rolls
// use, so an audit schedule replays exactly.
func (c *Coordinator) auditSample(u *WorkUnit) bool {
	f := c.cfg.AuditFraction
	if f <= 0 {
		return false
	}
	if f >= 1 {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(u.Fingerprint))
	x := c.cfg.AuditSeed ^ h.Sum64() ^ uint64(u.Frame)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < f
}

// attemptOutcome is one post's answer as dispatchOnce's select loop
// consumes it.
type attemptOutcome struct {
	idx              int
	res              *WorkResult
	unitErr, dispErr error
	hedge            bool
}

// dispatchOnce drives one unit to one digest-valid result: sequential
// failover across the policy's candidates, plus at most one hedge — if
// the hedge deadline passes with the attempt still in flight, the next
// candidate gets the unit too and the first valid result wins, the
// loser's request cancelled. exclude lists member indexes this dispatch
// must not use (audit re-dispatches exclude the workers already
// consulted). Returns the member index that produced the result.
func (c *Coordinator) dispatchOnce(ctx context.Context, u *WorkUnit, exclude map[int]bool) (*WorkResult, int, error) {
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()

	tried := make(map[int]bool, len(c.members))
	for i := range exclude {
		tried[i] = true
	}
	// Every member launches at most once, so the buffer bounds all
	// possible sends: losing attempts never block after we return.
	results := make(chan attemptOutcome, len(c.members))
	inflight := 0
	launch := func(idx int, hedge bool) {
		tried[idx] = true
		inflight++
		c.dispatched.Inc()
		m := c.members[idx]
		go func() {
			start := time.Now()
			res, unitErr, dispErr := c.post(dctx, m, u)
			if unitErr == nil && dispErr == nil {
				c.observeLatency(time.Since(start))
			}
			results <- attemptOutcome{idx: idx, res: res, unitErr: unitErr, dispErr: dispErr, hedge: hedge}
		}()
	}

	idx := c.pick(u.Fingerprint, tried)
	if idx < 0 {
		c.lost.Inc()
		return nil, -1, resilience.WorkerLost(errors.New("no live workers"))
	}
	launch(idx, false)

	var hedgeC <-chan time.Time
	if d := c.hedgeDelay(); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}

	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return nil, -1, ctx.Err()
		case <-hedgeC:
			hedgeC = nil // one hedge per dispatch
			if next := c.pick(u.Fingerprint, tried); next >= 0 {
				c.hedges.Inc()
				c.logf("fabric: hedging %s frame %d to %s", u.Fingerprint, u.Frame, c.members[next].name)
				launch(next, true)
			}
		case a := <-results:
			inflight--
			m := c.members[a.idx]
			switch {
			case a.dispErr == nil && a.unitErr == nil:
				if err := c.verifyResult(m, u, a.res); err != nil {
					lastErr = err
					c.failovers.Inc()
				} else {
					if a.hedge {
						c.hedgeWins.Inc()
					}
					return a.res, a.idx, nil
				}
			case a.unitErr != nil:
				// Deterministic refusal: the frame itself is the problem, so
				// failover would only re-fail it N times. Let the supervisor's
				// retry/quarantine path own it.
				c.refused.Inc()
				return nil, a.idx, a.unitErr
			case errors.Is(a.dispErr, errDraining):
				m.draining.Store(true)
				c.logf("fabric: %s draining, failing over", m.name)
				lastErr = a.dispErr
				c.failovers.Inc()
			default:
				if err := ctx.Err(); err != nil {
					// The transport error was our own cancellation, not the
					// worker's death.
					return nil, -1, err
				}
				c.markDown(m, a.dispErr)
				lastErr = a.dispErr
				c.failovers.Inc()
			}
			// This attempt failed. If a hedge (or the original) is still
			// out, wait for it; otherwise move to the next candidate.
			if inflight == 0 {
				next := c.pick(u.Fingerprint, tried)
				if next < 0 {
					c.lost.Inc()
					return nil, -1, resilience.WorkerLost(lastErr)
				}
				launch(next, false)
			}
		}
	}
}

// hedgeDelay is the adaptive hedge deadline: the configured floor,
// stretched to twice the fleet's successful-dispatch latency EWMA so a
// slow-but-healthy fleet isn't double-dispatching every frame. 0 means
// hedging is off.
func (c *Coordinator) hedgeDelay() time.Duration {
	floor := c.cfg.HedgeAfter
	if floor <= 0 {
		return 0
	}
	if adaptive := 2 * time.Duration(c.latencyEWMA.Load()); adaptive > floor {
		return adaptive
	}
	return floor
}

func (c *Coordinator) observeLatency(d time.Duration) {
	for {
		old := c.latencyEWMA.Load()
		next := uint64(d)
		if old != 0 {
			next = (7*old + uint64(d)) / 8
		}
		if c.latencyEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// errDigest marks a result whose canonical digest did not verify: a
// corrupt delivery, not a dead worker — eligible for failover without
// marking the worker down.
var errDigest = errors.New("fabric: result digest mismatch")

// verifyResult recomputes the result's canonical digest over what was
// actually decoded and compares it to the digest the worker carried. A
// mismatch (or a missing digest) fails verification, counts against the
// worker's digest-failure budget, and quarantines it at the limit.
func (c *Coordinator) verifyResult(m *member, u *WorkUnit, res *WorkResult) error {
	want := res.ComputeDigest()
	if res.Digest == want {
		return nil
	}
	c.digestFailed.Inc()
	limit := int64(c.cfg.DigestFailureLimit)
	if limit == 0 {
		limit = DefaultDigestFailureLimit
	}
	if fails := m.digestFails.Add(1); fails >= limit {
		c.quarantine(m, fmt.Errorf("%d results failed digest verification", fails))
	}
	return fmt.Errorf("%w: %s frame %d carried %q, content digests to %q", errDigest, m.name, u.Frame, res.Digest, want)
}

// quarantine benches a worker permanently: marked down, excluded from
// heartbeat resurrection, reflected in the quarantine gauge. Frames it
// held fail over or requeue through the ordinary paths.
func (c *Coordinator) quarantine(m *member, cause error) {
	if m.quarantined.Swap(true) {
		return
	}
	m.down.Store(true)
	m.up.Set(0)
	c.logf("fabric: %s QUARANTINED: %v", m.name, cause)
	q := int64(0)
	for _, o := range c.members {
		if o.quarantined.Load() {
			q++
		}
	}
	c.quarantined.Set(q)
	c.refreshLive()
}

// pick builds the candidate view (live, untried members) and asks the
// policy. Draining members are candidates the policy must skip, so an
// all-draining fleet reads as "no pick" rather than an error.
func (c *Coordinator) pick(key string, tried map[int]bool) int {
	cands := make([]Candidate, 0, len(c.members))
	idxs := make([]int, 0, len(c.members))
	for i, m := range c.members {
		if tried[i] || m.down.Load() {
			continue
		}
		cands = append(cands, Candidate{
			Name:     m.name,
			Load:     int(m.inflight.Load()),
			Draining: m.draining.Load(),
		})
		idxs = append(idxs, i)
	}
	p := c.policy.Pick(key, cands)
	if p < 0 {
		return -1
	}
	return idxs[p]
}

// errDraining marks a 503 from a worker: back off, don't bury it.
var errDraining = errors.New("fabric: worker draining")

// post sends one unit to one member. It returns exactly one of:
// a result; a unit error (the worker deterministically refused this
// unit — 4xx); a dispatch error (the worker is unreachable, dying,
// draining, or answered a body the coordinator won't trust — eligible
// for failover).
func (c *Coordinator) post(ctx context.Context, m *member, u *WorkUnit) (res *WorkResult, unitErr, dispErr error) {
	m.inflight.Add(1)
	m.load.Set(m.inflight.Load())
	defer func() {
		m.inflight.Add(-1)
		m.load.Set(m.inflight.Load())
	}()
	body, err := json.Marshal(u)
	if err != nil {
		return nil, fmt.Errorf("fabric: encode work unit: %w", err), nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.name+"/fabric/v1/frames", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("fabric: build request: %w", err), nil
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	// Read one byte past the limit so an over-limit body is
	// distinguishable from one that happens to decode badly after a
	// silent cut: the former is the worker misbehaving (failover), not
	// a malformed reply to puzzle over.
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResultBytes+1))
	if err != nil {
		return nil, nil, fmt.Errorf("read response from %s: %w", m.name, err)
	}
	if len(raw) > maxResultBytes {
		return nil, nil, fmt.Errorf("%s answered more than %d result bytes", m.name, maxResultBytes)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		out := &WorkResult{}
		if err := json.Unmarshal(raw, out); err != nil {
			return nil, nil, fmt.Errorf("malformed result from %s: %w", m.name, err)
		}
		if out.Frame != u.Frame {
			return nil, nil, fmt.Errorf("%s answered frame %d for frame %d", m.name, out.Frame, u.Frame)
		}
		return out, nil, nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		return nil, nil, errDraining
	case resp.StatusCode >= http.StatusInternalServerError:
		return nil, nil, fmt.Errorf("%s answered %d: %s", m.name, resp.StatusCode, errBody(raw))
	default:
		return nil, fmt.Errorf("fabric: %s refused frame %d (%d): %s", m.name, u.Frame, resp.StatusCode, errBody(raw)), nil
	}
}

// errBody extracts the error message from a JSON error body, falling
// back to the raw bytes.
func errBody(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}

func (c *Coordinator) markDown(m *member, cause error) {
	if !m.down.Swap(true) {
		c.logf("fabric: %s marked down: %v", m.name, cause)
	}
	m.up.Set(0)
	c.refreshLive()
}

// Probe health-checks every member once, synchronously: a reachable
// worker comes (back) up with its draining flag refreshed, an
// unreachable one goes down. Quarantined workers are never probed and
// never resurrected — quarantine is a trust verdict, not a liveness
// one. The heartbeat loop calls this on its cadence; tests and a
// heartbeat-disabled coordinator call it directly.
func (c *Coordinator) Probe(ctx context.Context) {
	for _, m := range c.members {
		if m.quarantined.Load() {
			continue
		}
		h, err := c.probeOne(ctx, m)
		if err != nil {
			if !m.down.Swap(true) {
				c.logf("fabric: %s failed heartbeat: %v", m.name, err)
			}
			m.up.Set(0)
			continue
		}
		if m.down.Swap(false) {
			c.logf("fabric: %s recovered", m.name)
		}
		m.draining.Store(h.Draining)
		m.up.Set(1)
	}
	c.refreshLive()
}

func (c *Coordinator) probeOne(ctx context.Context, m *member) (*HealthStatus, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.name+"/fabric/v1/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("healthz answered %d", resp.StatusCode)
	}
	h := &HealthStatus{}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(h); err != nil {
		return nil, fmt.Errorf("malformed healthz: %w", err)
	}
	return h, nil
}

func (c *Coordinator) refreshLive() {
	live := int64(0)
	for _, m := range c.members {
		if !m.down.Load() {
			live++
		}
	}
	c.live.Set(live)
}

func (c *Coordinator) heartbeatLoop(interval time.Duration) {
	defer c.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
			c.Probe(c.ctx)
		}
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		fmt.Fprintf(c.cfg.Log, format+"\n", args...)
	}
}
