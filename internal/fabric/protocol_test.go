package fabric

import (
	"strings"
	"testing"
)

// validUnit is the canonical well-formed work unit body for tests; the
// fingerprint is syntactically valid but arbitrary (protocol validation
// never simulates).
const validUnit = `{"fingerprint":"megsim-0123456789abcdef01234567","frame":3,` +
	`"workload":{"benchmark":"hcr","width":64,"height":32},"gpu":{"tile_workers":2},"obs":true}`

func TestDecodeWorkUnit(t *testing.T) {
	cases := []struct {
		name string
		body string
		ok   bool
	}{
		{"valid", validUnit, true},
		{"valid minimal", `{"fingerprint":"megsim-ff","frame":0,"workload":{"benchmark":"asp"}}`, true},
		{"empty", ``, false},
		{"truncated", `{"fingerprint":"megsim-ff"`, false},
		{"null", `null`, false},
		{"array", `[]`, false},
		{"unknown field", `{"fingerprint":"megsim-ff","frame":0,"workload":{"benchmark":"asp"},"bogus":1}`, false},
		{"trailing data", validUnit + `{"x":1}`, false},
		{"bad fingerprint prefix", `{"fingerprint":"cmp-ff","frame":0,"workload":{"benchmark":"asp"}}`, false},
		{"fingerprint too long", `{"fingerprint":"megsim-` + strings.Repeat("a", 80) + `","frame":0,"workload":{"benchmark":"asp"}}`, false},
		{"negative frame", `{"fingerprint":"megsim-ff","frame":-1,"workload":{"benchmark":"asp"}}`, false},
		{"absurd frame", `{"fingerprint":"megsim-ff","frame":9999999999,"workload":{"benchmark":"asp"}}`, false},
		{"no workload", `{"fingerprint":"megsim-ff","frame":0}`, false},
		{"unknown benchmark", `{"fingerprint":"megsim-ff","frame":0,"workload":{"benchmark":"nope"}}`, false},
		{"bad gpu preset", `{"fingerprint":"megsim-ff","frame":0,"workload":{"benchmark":"asp"},"gpu":{"preset":"nope"}}`, false},
		{"oversized dims", `{"fingerprint":"megsim-ff","frame":0,"workload":{"benchmark":"asp","width":99999,"height":99999}}`, false},
		{"body too large", `{"fingerprint":"megsim-` + strings.Repeat("a", MaxWorkUnitBytes) + `"}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u, err := DecodeWorkUnit(strings.NewReader(tc.body))
			if tc.ok && err != nil {
				t.Fatalf("DecodeWorkUnit: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("DecodeWorkUnit accepted %q", tc.body)
			}
			if err == nil && u == nil {
				t.Fatal("nil unit without error")
			}
		})
	}
}

// FuzzDecodeWorkUnit hammers the worker's decoder exactly like the
// campaign service's admission fuzzer: any body must either error (the
// worker answers 400) or yield a unit that revalidates and resolves
// without panicking.
func FuzzDecodeWorkUnit(f *testing.F) {
	seeds := []string{
		validUnit,
		`{"fingerprint":"megsim-ff","frame":0,"workload":{"benchmark":"asp"}}`,
		`{"fingerprint":"megsim-ff","frame":0,"workload":{"random_seed":42},"gpu":{"preset":"tbdr","tbdr":true}}`,
		``,
		`{`,
		`null`,
		`[]`,
		`"unit"`,
		`{"fingerprint":"megsim-ff"}`,
		`{"frame":1}`,
		`{"fingerprint":"cmp-ff","frame":0,"workload":{"benchmark":"asp"}}`,
		`{"fingerprint":"megsim-ff","frame":-1,"workload":{"benchmark":"asp"}}`,
		`{"fingerprint":"megsim-ff","frame":1048577,"workload":{"benchmark":"asp"}}`,
		`{"fingerprint":"megsim-ff","frame":0,"workload":{"benchmark":"asp"},"obs":true,"bogus":1}`,
		validUnit + `\x00`,
		`{"fingerprint":"megsim-` + strings.Repeat("f", 100) + `","frame":0,"workload":{"benchmark":"asp"}}`,
		`{"fingerprint":"megsim-ff","frame":0,"workload":{"benchmark":"asp","width":-1}}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		u, err := DecodeWorkUnit(strings.NewReader(body))
		if err != nil {
			if u != nil {
				t.Fatal("error with non-nil unit")
			}
			return
		}
		if err := u.Validate(); err != nil {
			t.Fatalf("decoded unit fails revalidation: %v", err)
		}
		// The specs must resolve exactly as the campaign service would
		// resolve them — the worker calls these before simulating.
		req := workUnitRequest(u)
		if _, err := req.GPUConfig(); err != nil {
			t.Fatalf("validated unit has unusable GPU config: %v", err)
		}
		if wk := req.WorkloadKey(); !strings.HasPrefix(wk, "wl-") {
			t.Fatalf("malformed workload key %q", wk)
		}
	})
}
