package fabric

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/megsim"
)

// lockedBuf is a log sink safe for the heartbeat goroutine.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestCoordinatorFleetNormalization: worker URLs are trimmed, stripped
// of trailing slashes and deduplicated; a fleet with no usable URL is
// refused.
func TestCoordinatorFleetNormalization(t *testing.T) {
	if _, err := NewCoordinator(CoordinatorConfig{HeartbeatInterval: -1}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := NewCoordinator(CoordinatorConfig{Workers: []string{" ", "/"}, HeartbeatInterval: -1}); err == nil {
		t.Fatal("blank fleet accepted")
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:           []string{"http://a:1/", " http://a:1", "http://b:2"},
		HeartbeatInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	got := coord.Workers()
	want := []string{"http://a:1", "http://b:2"}
	if len(got) != len(want) {
		t.Fatalf("Workers() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Workers()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestHeartbeatBuriesAndResurrects: the heartbeat loop is Probe on a
// timer — a worker whose transport dies is buried within a few beats
// and resurrected once it answers again, with both transitions logged.
func TestHeartbeatBuriesAndResurrects(t *testing.T) {
	_, switches, urls := startFleet(t, 1)
	log := &lockedBuf{}
	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:           urls,
		HeartbeatInterval: 2 * time.Millisecond,
		Log:               log,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	waitLive := func(want int64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for coord.reg.Snapshot().Gauges["fabric.workers.live"] != want {
			if time.Now().After(deadline) {
				t.Fatalf("fabric.workers.live never reached %d", want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	switches[0].killed.Store(true)
	waitLive(0)
	switches[0].killed.Store(false)
	waitLive(1)
	if s := log.String(); !strings.Contains(s, "failed heartbeat") || !strings.Contains(s, "recovered") {
		t.Fatalf("heartbeat log missing the down/up transitions:\n%s", s)
	}
}

// TestDispatchServerErrorBuriesWorker: a 5xx is a dying worker — the
// member is buried with the (non-JSON) body quoted in the log, and a
// probe against its equally broken healthz keeps it buried.
func TestDispatchServerErrorBuriesWorker(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	log := &lockedBuf{}
	coord, err := NewCoordinator(CoordinatorConfig{Workers: []string{bad.URL}, HeartbeatInterval: -1, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	u, _ := validWorkUnit(t, 0)
	if _, err := coord.Dispatch(context.Background(), u); !resilience.IsWorkerLost(err) {
		t.Fatalf("all-500 fleet error not classified as worker loss: %v", err)
	}
	if s := log.String(); !strings.Contains(s, "marked down") || !strings.Contains(s, "boom") {
		t.Fatalf("markDown log missing the cause:\n%s", s)
	}
	coord.Probe(context.Background())
	if live := coord.reg.Snapshot().Gauges["fabric.workers.live"]; live != 0 {
		t.Fatalf("fabric.workers.live = %d after probing a broken healthz, want 0", live)
	}
}

// TestDispatchAllWorkersDown: with the whole fleet unreachable, a
// dispatch must come back as resilience.WorkerLost — the supervisor
// then requeues the frame for free instead of burning its attempts.
func TestDispatchAllWorkersDown(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // nothing listens here anymore
	coord, err := NewCoordinator(CoordinatorConfig{Workers: []string{dead.URL}, HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	u, _ := validWorkUnit(t, 0)
	_, err = coord.Dispatch(context.Background(), u)
	if err == nil {
		t.Fatal("dispatch to a dead fleet succeeded")
	}
	if !resilience.IsWorkerLost(err) {
		t.Fatalf("dead fleet error not classified as worker loss: %v", err)
	}
	// The member is now buried; a second dispatch reports loss without
	// touching the network.
	if _, err := coord.Dispatch(context.Background(), u); !resilience.IsWorkerLost(err) {
		t.Fatalf("second dispatch: %v", err)
	}
	if got := coord.reg.Snapshot().Counters["fabric.dispatch.lost"]; got < 2 {
		t.Fatalf("fabric.dispatch.lost = %d, want >= 2", got)
	}
}

// TestDispatchDeterministicRefusalDoesNotFailover: a 4xx is the frame's
// fault, not the worker's — the dispatch fails the frame outright and
// the worker stays up (no failover storm re-failing the same bad unit
// across the fleet).
func TestDispatchDeterministicRefusalDoesNotFailover(t *testing.T) {
	workers, _, urls := startFleet(t, 2)
	coord, err := NewCoordinator(CoordinatorConfig{Workers: urls, HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	u, _ := validWorkUnit(t, 0)
	u.Fingerprint = "megsim-deadbeefdeadbeefdeadbeef" // worker answers 409
	_, err = coord.Dispatch(context.Background(), u)
	if err == nil {
		t.Fatal("skewed unit dispatched successfully")
	}
	if resilience.IsWorkerLost(err) {
		t.Fatalf("deterministic refusal misclassified as worker loss: %v", err)
	}
	snap := coord.reg.Snapshot()
	if got := snap.Counters["fabric.dispatch.failover"]; got != 0 {
		t.Fatalf("fabric.dispatch.failover = %d, want 0 for a 4xx", got)
	}
	if got := snap.Counters["fabric.dispatch.refused"]; got != 1 {
		t.Fatalf("fabric.dispatch.refused = %d, want 1", got)
	}
	total := workerServed(workers[0]) + workerServed(workers[1])
	if total != 0 {
		t.Fatalf("a refused unit was counted as served (%d)", total)
	}
}

// TestProbeRecoversDownedWorker: a dispatch failure buries a worker; a
// health probe resurrects it and dispatch flows again — the heartbeat
// loop is exactly a Probe on a timer.
func TestProbeRecoversDownedWorker(t *testing.T) {
	workers, switches, urls := startFleet(t, 1)
	coord, err := NewCoordinator(CoordinatorConfig{Workers: urls, HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	u, _ := validWorkUnit(t, 0)
	switches[0].killed.Store(true) // transport down
	if _, err := coord.Dispatch(context.Background(), u); !resilience.IsWorkerLost(err) {
		t.Fatalf("dispatch to killed worker: %v", err)
	}
	if live := coord.reg.Snapshot().Gauges["fabric.workers.live"]; live != 0 {
		t.Fatalf("fabric.workers.live = %d after burial, want 0", live)
	}

	switches[0].killed.Store(false) // the worker process came back
	coord.Probe(context.Background())
	if live := coord.reg.Snapshot().Gauges["fabric.workers.live"]; live != 1 {
		t.Fatalf("fabric.workers.live = %d after recovery probe, want 1", live)
	}
	res, err := coord.Dispatch(context.Background(), u)
	if err != nil {
		t.Fatalf("dispatch after recovery: %v", err)
	}
	if res.Frame != u.Frame {
		t.Fatalf("result frame %d, want %d", res.Frame, u.Frame)
	}
	if got := workerServed(workers[0]); got != 1 {
		t.Fatalf("recovered worker served %d frames, want 1", got)
	}
}

// TestProbeSeesDraining: a drained worker is skipped by routing after
// the next probe, while a live peer keeps serving.
func TestProbeSeesDraining(t *testing.T) {
	workers, _, urls := startFleet(t, 2)
	coord, err := NewCoordinator(CoordinatorConfig{Workers: urls, HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	workers[0].Drain()
	coord.Probe(context.Background())

	u, _ := validWorkUnit(t, 0)
	for i := 0; i < 4; i++ {
		if _, err := coord.Dispatch(context.Background(), u); err != nil {
			t.Fatalf("dispatch %d: %v", i, err)
		}
	}
	if got := workerServed(workers[0]); got != 0 {
		t.Fatalf("draining worker served %d frames, want 0", got)
	}
	if got := workerServed(workers[1]); got != 4 {
		t.Fatalf("live worker served %d frames, want 4", got)
	}
}

// TestFrameRunnerIsADispatcher pins the compile-time contract with a
// runtime check on one frame: the coordinator's frame function returns
// the same stats the local runner does.
func TestFrameRunnerDispatchesOneFrame(t *testing.T) {
	req, tr, gpu, err := clusterRequest()
	if err != nil {
		t.Fatal(err)
	}
	_, _, urls := startFleet(t, 1)
	coord, err := NewCoordinator(CoordinatorConfig{Workers: urls, HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	fp := megsim.RunFingerprint(tr, gpu)
	fn := coord.FrameRunner(fp, req)
	got, err := fn(context.Background(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := megsim.FrameRunner(tr, gpu)(context.Background(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("dispatched stats %+v differ from local %+v", got, want)
	}
}
