package fabric

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// Candidate is one dispatchable worker as a routing policy sees it.
type Candidate struct {
	// Name identifies the worker stably across coordinator restarts —
	// the fabric uses the worker's base URL from the static peer list.
	Name string
	// Load is the worker's in-flight frame count as tracked by the
	// coordinator.
	Load int
	// Draining marks a worker that answered its drain endpoint or
	// reported draining on a heartbeat; policies must never pick it.
	Draining bool
}

// Policy picks the worker for one frame dispatch. Pick returns an index
// into cands, or -1 when no candidate is eligible. Implementations must
// be safe for concurrent use and must skip draining candidates.
type Policy interface {
	Name() string
	Pick(key string, cands []Candidate) int
}

// PolicyByName resolves a policy by its CLI name.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "affinity", "":
		return NewAffinity(), nil
	case "round-robin":
		return NewRoundRobin(), nil
	case "least-loaded":
		return NewLeastLoaded(), nil
	}
	return nil, fmt.Errorf("fabric: unknown routing policy %q (want affinity, round-robin or least-loaded)", name)
}

// RoundRobin cycles through eligible workers, ignoring the key: the
// baseline policy for homogeneous fleets and cold caches.
type RoundRobin struct{ next atomic.Uint64 }

// NewRoundRobin returns a round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

func (*RoundRobin) Name() string { return "round-robin" }

func (p *RoundRobin) Pick(_ string, cands []Candidate) int {
	if len(cands) == 0 {
		return -1
	}
	start := int((p.next.Add(1) - 1) % uint64(len(cands)))
	for i := 0; i < len(cands); i++ {
		c := (start + i) % len(cands)
		if !cands[c].Draining {
			return c
		}
	}
	return -1
}

// LeastLoaded picks the eligible worker with the fewest in-flight
// frames, breaking ties by name so concurrent coordinators converge.
type LeastLoaded struct{}

// NewLeastLoaded returns a least-loaded policy.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

func (*LeastLoaded) Name() string { return "least-loaded" }

func (*LeastLoaded) Pick(_ string, cands []Candidate) int {
	best := -1
	for i, c := range cands {
		if c.Draining {
			continue
		}
		if best < 0 || c.Load < cands[best].Load ||
			(c.Load == cands[best].Load && c.Name < cands[best].Name) {
			best = i
		}
	}
	return best
}

// Affinity routes by rendezvous (highest-random-weight) hashing over
// the campaign fingerprint: every frame of a campaign lands on the same
// worker, so the worker's trace cache is hit after the first frame. The
// weight is a pure function of (key, worker name), which buys the two
// properties the cluster needs for free:
//
//   - stability: a restarted coordinator with the same peer list routes
//     every campaign to the same worker as before, so a resumed
//     campaign re-warms no caches;
//   - minimal remap: when a worker joins or leaves, only the campaigns
//     whose top-weight worker changed move — every other campaign keeps
//     its placement, unlike modulo hashing where most keys reshuffle.
type Affinity struct{}

// NewAffinity returns a cache-affinity policy.
func NewAffinity() *Affinity { return &Affinity{} }

func (*Affinity) Name() string { return "affinity" }

func (*Affinity) Pick(key string, cands []Candidate) int {
	best, bestW := -1, uint64(0)
	for i, c := range cands {
		if c.Draining {
			continue
		}
		w := rendezvousWeight(key, c.Name)
		if best < 0 || w > bestW || (w == bestW && c.Name < cands[best].Name) {
			best, bestW = i, w
		}
	}
	return best
}

// rendezvousWeight is FNV-1a over key and name, NUL-separated so the
// (key, name) boundary is unambiguous.
func rendezvousWeight(key, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(name))
	return h.Sum64()
}
