package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/megsim"
)

// WorkerConfig configures a Worker. The zero value is usable: a fresh
// metrics-only registry and no logging.
type WorkerConfig struct {
	// Obs is the worker's registry, exported on its /metrics; every
	// simulated frame's observability merges into it (nil = a fresh
	// enabled metrics-only registry).
	Obs *obs.Registry
	// Log, when non-nil, receives worker log lines; it must tolerate
	// concurrent writes.
	Log io.Writer
}

// Worker is one simulation worker of the fabric: a stateless HTTP
// service that simulates single frames on demand. It keeps only a
// content-addressed trace cache (the same serve.Cache the campaign
// service uses), so any frame of any campaign can land on any worker
// and the result is identical — state lives on the coordinator.
//
// Endpoints:
//
//	POST /fabric/v1/frames  simulate one WorkUnit -> WorkResult
//	GET  /fabric/v1/healthz liveness + draining flag (heartbeats)
//	POST /fabric/v1/drain   stop accepting frames (in-flight ones finish)
//	GET  /metrics           the worker registry in Prometheus format
type Worker struct {
	cfg   WorkerConfig
	reg   *obs.Registry
	cache *serve.Cache
	mux   *http.ServeMux

	draining atomic.Bool
	inflight atomic.Int64

	served, rejected, errored *obs.Counter
}

// NewWorker builds a simulation worker.
func NewWorker(cfg WorkerConfig) *Worker {
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewWith(obs.Options{TraceCapacity: -1})
	}
	w := &Worker{
		cfg:      cfg,
		reg:      reg,
		cache:    serve.NewCache(reg, 0),
		served:   reg.Counter("fabric.frames.served"),
		rejected: reg.Counter("fabric.frames.rejected"),
		errored:  reg.Counter("fabric.frames.errored"),
	}
	w.mux = http.NewServeMux()
	w.mux.HandleFunc("POST /fabric/v1/frames", w.handleFrame)
	w.mux.HandleFunc("GET /fabric/v1/healthz", w.handleHealthz)
	w.mux.HandleFunc("POST /fabric/v1/drain", w.handleDrain)
	w.mux.HandleFunc("GET /metrics", w.handleMetrics)
	return w
}

// Handler returns the worker's HTTP handler.
func (w *Worker) Handler() http.Handler { return w.mux }

// Registry returns the worker's observability registry.
func (w *Worker) Registry() *obs.Registry { return w.reg }

// Draining reports whether the worker has been asked to drain.
func (w *Worker) Draining() bool { return w.draining.Load() }

// Drain stops frame admission; in-flight frames run to completion. The
// coordinator sees the flag on its next heartbeat (and any frame POSTed
// meanwhile gets 503, which fails over without marking the worker
// down).
func (w *Worker) Drain() { w.draining.Store(true) }

// HealthStatus answers the worker health endpoint.
type HealthStatus struct {
	OK       bool  `json:"ok"`
	Draining bool  `json:"draining"`
	Inflight int64 `json:"inflight"`
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, _ *http.Request) {
	writeJSON(rw, http.StatusOK, HealthStatus{
		OK:       true,
		Draining: w.draining.Load(),
		Inflight: w.inflight.Load(),
	})
}

func (w *Worker) handleDrain(rw http.ResponseWriter, _ *http.Request) {
	w.Drain()
	w.logf("fabric: worker draining")
	writeJSON(rw, http.StatusOK, map[string]bool{"draining": true})
}

func (w *Worker) handleMetrics(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := w.reg.Snapshot()
	snap.WritePrometheus(rw)
	fmt.Fprintf(rw, "# TYPE fabric_worker_inflight gauge\nfabric_worker_inflight %d\n", w.inflight.Load())
}

func (w *Worker) handleFrame(rw http.ResponseWriter, r *http.Request) {
	if w.draining.Load() {
		writeError(rw, http.StatusServiceUnavailable, "worker is draining")
		return
	}
	u, err := DecodeWorkUnit(r.Body)
	if err != nil {
		w.rejected.Inc()
		writeError(rw, http.StatusBadRequest, err.Error())
		return
	}
	w.inflight.Add(1)
	defer w.inflight.Add(-1)
	res, code, err := w.simulate(r.Context(), u)
	if err != nil {
		if code >= http.StatusInternalServerError {
			w.errored.Inc()
		} else {
			w.rejected.Inc()
		}
		w.logf("fabric: frame %d of %s refused (%d): %v", u.Frame, u.Fingerprint, code, err)
		writeError(rw, code, err.Error())
		return
	}
	w.served.Inc()
	writeJSON(rw, http.StatusOK, res)
}

// simulate runs one validated work unit: rebuild (or cache-hit) the
// trace, verify the fingerprint, simulate the frame into a fresh
// registry. Panics in the simulator surface as 500s — the worker
// process survives any frame.
func (w *Worker) simulate(ctx context.Context, u *WorkUnit) (res *WorkResult, code int, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, code, err = nil, http.StatusInternalServerError, fmt.Errorf("frame %d panicked: %v", u.Frame, r)
		}
	}()
	req := workUnitRequest(u)
	tr, err := w.cache.Trace(ctx, req.WorkloadKey(), req.BuildTrace)
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("build trace: %w", err)
	}
	gpu, err := req.GPUConfig()
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if got := megsim.RunFingerprint(tr, gpu); got != u.Fingerprint {
		return nil, http.StatusConflict,
			fmt.Errorf("fingerprint mismatch: unit says %s, worker built %s (version or config skew)", u.Fingerprint, got)
	}
	if u.Frame >= tr.NumFrames() {
		return nil, http.StatusBadRequest,
			fmt.Errorf("frame %d out of range: trace has %d frames", u.Frame, tr.NumFrames())
	}
	// A fresh registry per frame, exactly like the supervisor's local
	// registries: the snapshot is the frame's delta and nothing else,
	// which is what makes coordinator-side merges byte-identical to a
	// local run.
	reg := obs.NewWith(obs.Options{TraceCapacity: -1})
	stats, err := megsim.FrameRunner(tr, gpu)(ctx, u.Frame, reg)
	if err != nil {
		return nil, http.StatusInternalServerError, fmt.Errorf("simulate frame %d: %w", u.Frame, err)
	}
	res = &WorkResult{Frame: u.Frame, Stats: stats}
	if u.Obs {
		res.Obs = reg.Snapshot()
	}
	res.Digest = res.ComputeDigest()
	w.reg.Merge(reg)
	return res, http.StatusOK, nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Log != nil {
		fmt.Fprintf(w.cfg.Log, format+"\n", args...)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

func writeError(w http.ResponseWriter, code int, msg string) {
	b, _ := json.Marshal(map[string]string{"error": msg})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}
