// Package fabric is the distributed campaign fabric: the coordinator /
// worker split of the MEGsim campaign service. A coordinator is an
// ordinary serve.Server whose frame function dispatches representative
// frames over HTTP to a static fleet of simulation workers instead of
// the in-process simulator; everything else — admission, caching,
// supervision, checkpointing, degradation — runs coordinator-side
// unchanged.
//
// The protocol is one request per frame: the coordinator POSTs a
// WorkUnit (campaign fingerprint, frame index, and the workload/GPU
// specs the worker needs to rebuild the trace) and the worker answers a
// WorkResult (the frame's statistics plus its observability snapshot).
// The worker recomputes megsim.RunFingerprint over what it built and
// refuses mismatches, so version or configuration skew between peers
// surfaces as a 409 instead of silently corrupting a campaign.
//
// Failure semantics are layered onto the PR-4 resilience supervisor: a
// worker that dies mid-frame is marked down and the dispatch fails over
// to the next candidate; when no candidates remain the frame comes back
// as resilience.WorkerLost, which the supervisor requeues without
// charging the frame's retry budget. The checkpoint store stays on the
// coordinator, so a campaign interrupted on one fleet resumes
// byte-identically on another.
package fabric

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/tbr"
)

// Protocol limits. Work units are small JSON documents; anything past
// these bounds is rejected at the worker's door (HTTP 400), never
// simulated.
const (
	// MaxWorkUnitBytes bounds the work-unit request body.
	MaxWorkUnitBytes = 1 << 20
	// maxFingerprint bounds the fingerprint string length.
	maxFingerprint = 64
	// maxFrameIndex bounds the dispatched frame index.
	maxFrameIndex = 1 << 20
)

// WorkUnit is one frame dispatch: everything a worker needs to simulate
// one representative frame of a campaign. The workload and GPU specs
// travel with every unit (they are a few hundred bytes) so workers stay
// stateless; the worker's trace cache makes rebuilds free after the
// first frame of a campaign.
type WorkUnit struct {
	// Fingerprint is the campaign's megsim.RunFingerprint. The worker
	// recomputes it from the specs below and rejects mismatches (409) —
	// the guard against coordinator/worker skew.
	Fingerprint string `json:"fingerprint"`
	// Frame is the trace frame index to simulate.
	Frame int `json:"frame"`
	// Workload and GPU are the campaign specs, exactly as submitted to
	// the coordinator.
	Workload serve.WorkloadSpec `json:"workload"`
	GPU      serve.GPUSpec      `json:"gpu,omitempty"`
	// Obs requests the frame's observability snapshot in the result.
	Obs bool `json:"obs,omitempty"`
}

// WorkResult is the worker's answer: the frame statistics and, when
// requested, the frame's full observability snapshot — the coordinator
// merges it into the supervisor's per-frame registry, so a distributed
// campaign's merged observability is byte-identical to a local run's.
type WorkResult struct {
	Frame int            `json:"frame"`
	Stats tbr.FrameStats `json:"stats"`
	Obs   *obs.Snapshot  `json:"obs,omitempty"`
	// Digest is the result's canonical content digest (ComputeDigest),
	// set by the worker. The coordinator recomputes it over what it
	// decoded and treats any mismatch as a corrupt or untrustworthy
	// delivery — the same CRC-envelope discipline resilience checkpoints
	// use, extended over the wire.
	Digest string `json:"digest,omitempty"`
}

// ComputeDigest returns the canonical digest of the result's content
// (frame, stats, observability snapshot — everything except the digest
// field itself): crc32 IEEE over the canonical JSON encoding. The
// encoding round-trips losslessly — json.Marshal sorts map keys and
// shortest-form floats re-encode byte-identically — so worker-side and
// coordinator-side digests agree exactly when, and only when, the
// decoded content matches what the worker computed.
func (r *WorkResult) ComputeDigest() string {
	payload := struct {
		Frame int            `json:"frame"`
		Stats tbr.FrameStats `json:"stats"`
		Obs   *obs.Snapshot  `json:"obs,omitempty"`
	}{r.Frame, r.Stats, r.Obs}
	b, err := json.Marshal(payload)
	if err != nil {
		// Unreachable for the concrete field types; never collides with
		// a real "crc32:%08x" digest.
		return "crc32:unencodable"
	}
	return fmt.Sprintf("crc32:%08x", crc32.ChecksumIEEE(b))
}

// DecodeWorkUnit reads, decodes and validates one work unit. Every
// failure — malformed JSON, unknown fields, trailing garbage, oversized
// bodies, out-of-bounds fields — returns an error (the worker answers
// 400); no input panics.
func DecodeWorkUnit(r io.Reader) (*WorkUnit, error) {
	body, err := io.ReadAll(io.LimitReader(r, MaxWorkUnitBytes+1))
	if err != nil {
		return nil, fmt.Errorf("decode work unit: %w", err)
	}
	if len(body) > MaxWorkUnitBytes {
		return nil, fmt.Errorf("decode work unit: body exceeds %d bytes", MaxWorkUnitBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	u := &WorkUnit{}
	if err := dec.Decode(u); err != nil {
		return nil, fmt.Errorf("decode work unit: %w", err)
	}
	if dec.More() {
		return nil, errors.New("decode work unit: trailing data after unit")
	}
	if err := u.Validate(); err != nil {
		return nil, fmt.Errorf("invalid work unit: %w", err)
	}
	return u, nil
}

// Validate bounds-checks the unit without doing any heavy work. The
// workload and GPU specs are checked by the exact rules the campaign
// service applies at admission, so a worker never accepts a spec its
// coordinator would have refused.
func (u *WorkUnit) Validate() error {
	if !strings.HasPrefix(u.Fingerprint, "megsim-") || len(u.Fingerprint) > maxFingerprint {
		return fmt.Errorf("fingerprint %q is not a megsim run fingerprint", u.Fingerprint)
	}
	if u.Frame < 0 || u.Frame > maxFrameIndex {
		return fmt.Errorf("frame %d out of [0, %d]", u.Frame, maxFrameIndex)
	}
	return workUnitRequest(u).Validate()
}

// workUnitRequest views a unit's specs as a campaign request, so the
// worker resolves traces and GPU configs through exactly the code the
// campaign service uses.
func workUnitRequest(u *WorkUnit) *serve.CampaignRequest {
	return &serve.CampaignRequest{Workload: u.Workload, GPU: u.GPU}
}
