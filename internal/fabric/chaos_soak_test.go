package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/serve"
)

// chaosClient wraps the default transport in the deterministic chaos
// transport — the coordinator's entire view of its fleet goes through
// the fault injector.
func chaosClient(t *testing.T, cfg chaos.Config) *http.Client {
	t.Helper()
	tr, err := chaos.NewTransport(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &http.Client{Transport: tr, Timeout: 30 * time.Second}
}

// runCanonicalCampaign submits the canonical cluster campaign through a
// campaign service wired to coord and returns the raw result report.
func runCanonicalCampaign(t *testing.T, coord *Coordinator) []byte {
	t.Helper()
	srv := serve.New(serve.Config{Workers: 1, QueueCapacity: 8, CheckpointDir: t.TempDir(), Dispatcher: coord})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain(context.Background())

	sub := submitOK(t, ts, clusterCampaignBody())
	st := waitTerminal(t, ts, sub.JobID)
	if st.State != serve.JobSucceeded {
		t.Fatalf("campaign ended %s: %s", st.State, st.Error)
	}
	code, raw := getJSON(t, ts, "/api/v1/jobs/"+sub.JobID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: status %d: %s", code, raw)
	}
	return raw
}

// TestChaosSoakByzantineKillRestart is the PR's capstone: a 4-worker
// fleet — one byzantine, all behind the deterministic chaos transport —
// runs the canonical campaign while every honest worker is killed
// mid-campaign and restarted. The byzantine worker tampers with stats
// and recomputes valid digests, so only the audit cross-check can catch
// it. Required outcome: the byzantine worker quarantined, the killed
// frames requeued, and the final report byte-identical to a clean
// single-process run.
//
// Choreography (deterministic by construction, not by timing):
//   - every frame is audited (AuditFraction 1), so the byzantine worker
//     is caught the first time one of its results reaches a digest
//     comparison with an arbiter available;
//   - the first honest frame request to arrive AFTER the quarantine
//     kills all three honest workers at once, including the serving
//     one (hijack-close mid-request) — so the in-flight frame requeues
//     through resilience.WorkerLost, guaranteed;
//   - 300ms later the honest workers revive and the heartbeat loop
//     resurrects them; the campaign finishes on the restarted fleet.
func TestChaosSoakByzantineKillRestart(t *testing.T) {
	byz := NewWorker(WorkerConfig{})
	honest := make([]*Worker, 3)
	switches := make([]*killSwitch, 3)
	urls := make([]string, 4)

	var coordPtr atomic.Pointer[Coordinator]
	var killOnce sync.Once
	revive := make(chan struct{})
	trigger := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/fabric/v1/frames" {
				if c := coordPtr.Load(); c != nil && len(c.Quarantined()) > 0 {
					fired := false
					killOnce.Do(func() {
						fired = true
						for _, ks := range switches {
							ks.killed.Store(true)
						}
						close(revive)
					})
					if fired {
						// This very request is the mid-campaign kill: die
						// raw, mid-exchange, like the rest of the fleet.
						if hj, ok := w.(http.Hijacker); ok {
							if conn, _, err := hj.Hijack(); err == nil {
								conn.Close()
								return
							}
						}
						panic(http.ErrAbortHandler)
					}
				}
			}
			h.ServeHTTP(w, r)
		})
	}

	bts := httptest.NewServer(byzantine(byz.Handler()))
	t.Cleanup(bts.Close)
	urls[0] = bts.URL
	for i := range honest {
		honest[i] = NewWorker(WorkerConfig{})
		switches[i] = &killSwitch{}
		ts := httptest.NewServer(killable(trigger(honest[i].Handler()), switches[i]))
		t.Cleanup(ts.Close)
		urls[i+1] = ts.URL
	}
	go func() {
		<-revive
		time.Sleep(300 * time.Millisecond)
		for _, ks := range switches {
			ks.killed.Store(false)
		}
	}()

	coord, err := NewCoordinator(CoordinatorConfig{
		Workers: urls,
		Policy:  NewRoundRobin(), // seats the byzantine worker constantly
		Client: chaosClient(t, chaos.Config{
			Seed:            20260809,
			DropRate:        0.08,
			DelayRate:       0.25,
			Delay:           2 * time.Millisecond,
			DuplicateRate:   0.10,
			TruncateRate:    0.05,
			CorruptRate:     0.05,
			StallRate:       0.05,
			StallDelay:      250 * time.Millisecond,
			PartitionRate:   0.05,
			PartitionWindow: 2,
		}),
		HeartbeatInterval:  5 * time.Millisecond, // fast resurrection under chaos
		AuditFraction:      1,
		AuditSeed:          7,
		HedgeAfter:         50 * time.Millisecond,
		DigestFailureLimit: 1 << 20, // wire corruption is injected on purpose; only audits quarantine here
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	coordPtr.Store(coord)

	raw := runCanonicalCampaign(t, coord)

	// Byte-identity with the clean single-process run (requeue/resume
	// accounting normalized — the kill makes those legitimately nonzero).
	norm, err := normalizeReport(raw, true)
	if err != nil {
		t.Fatal(err)
	}
	if want := clusterGolden(t); !bytes.Equal(norm, want) {
		t.Fatalf("chaos-soaked cluster result differs from single-process run:\n--- soak ---\n%s\n--- direct ---\n%s", norm, want)
	}

	// The byzantine worker — and only it — was quarantined, via the
	// audit path.
	if q := coord.Quarantined(); len(q) != 1 || q[0] != urls[0] {
		t.Fatalf("Quarantined() = %v, want exactly the byzantine worker %s", q, urls[0])
	}
	snap := coord.reg.Snapshot()
	if got := snap.Gauges["fabric.workers.quarantined"]; got != 1 {
		t.Fatalf("fabric.workers.quarantined = %d, want 1", got)
	}
	if got := snap.Counters["fabric.audit.sampled"]; got == 0 {
		t.Fatal("no audits sampled at AuditFraction 1")
	}
	if got := snap.Counters["fabric.audit.mismatch"]; got == 0 {
		t.Fatal("byzantine worker quarantined without a recorded audit mismatch")
	}

	// The kill fired and its frames came back through the requeue path.
	select {
	case <-revive:
	default:
		t.Fatal("mid-campaign kill never fired (byzantine quarantine was never observed by the fleet)")
	}
	var rep serve.CampaignReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Resilience == nil || rep.Resilience.Requeued < 1 {
		t.Fatalf("kill/restart produced no requeues: %+v", rep.Resilience)
	}
	if got := workerServed(byz); got == 0 {
		t.Fatal("byzantine worker never served a frame; the audit was never actually tested")
	}
}

// TestChaosFaultClassesPreserveReport is the per-class property: each
// chaos fault class, injected alone against an honest fleet, either
// triggers the coordinator's recovery machinery (failover, requeue,
// hedge, digest rejection) or passes harmlessly — and in every case the
// final report is byte-identical to the clean single-process run and no
// honest worker is quarantined.
func TestChaosFaultClassesPreserveReport(t *testing.T) {
	cases := []struct {
		name string
		cfg  chaos.Config
		// disruptive classes must leave a trace in the recovery
		// counters; benign ones (latency under the hedge deadline,
		// duplicate delivery) must not need any recovery at all.
		disruptive bool
	}{
		// Drop stays moderate: at 0.5 the dropped heartbeat probes keep
		// workers marked down long enough that frames can exhaust their
		// requeue budget and degrade to a substitute — a legitimate
		// outcome, but not the byte-identity this test asserts.
		{"drop", chaos.Config{Seed: 101, DropRate: 0.35}, true},
		{"delay", chaos.Config{Seed: 102, DelayRate: 0.6, Delay: 2 * time.Millisecond}, false},
		{"duplicate", chaos.Config{Seed: 103, DuplicateRate: 0.6}, false},
		{"truncate", chaos.Config{Seed: 104, TruncateRate: 0.4}, true},
		{"corrupt", chaos.Config{Seed: 105, CorruptRate: 0.4}, true},
		{"stall", chaos.Config{Seed: 106, StallRate: 0.5, StallDelay: 300 * time.Millisecond}, true},
		{"partition", chaos.Config{Seed: 107, PartitionRate: 0.4, PartitionWindow: 2}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, urls := startFleet(t, 3)
			coord, err := NewCoordinator(CoordinatorConfig{
				Workers:            urls,
				Policy:             NewRoundRobin(),
				Client:             chaosClient(t, tc.cfg),
				HeartbeatInterval:  5 * time.Millisecond,
				AuditFraction:      1, // double the dispatch plan: more fault draws, audit under fire
				HedgeAfter:         40 * time.Millisecond,
				DigestFailureLimit: 1 << 20,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()

			raw := runCanonicalCampaign(t, coord)
			norm, err := normalizeReport(raw, true)
			if err != nil {
				t.Fatal(err)
			}
			if want := clusterGolden(t); !bytes.Equal(norm, want) {
				t.Fatalf("report under %s chaos differs from single-process run:\n--- chaos ---\n%s\n--- direct ---\n%s", tc.name, norm, want)
			}
			if q := coord.Quarantined(); len(q) != 0 {
				t.Fatalf("%s chaos quarantined honest workers: %v", tc.name, q)
			}
			snap := coord.reg.Snapshot()
			recovered := snap.Counters["fabric.dispatch.failover"] +
				snap.Counters["fabric.dispatch.lost"] +
				snap.Counters["fabric.dispatch.hedged"] +
				snap.Counters["fabric.digest.failed"]
			if tc.disruptive && recovered == 0 {
				t.Fatalf("%s chaos left no trace in the recovery counters; the class never fired", tc.name)
			}
			if !tc.disruptive && recovered != 0 {
				t.Fatalf("%s chaos should be absorbed without recovery, saw %d recovery events", tc.name, recovered)
			}
			if tc.name == "stall" && snap.Counters["fabric.dispatch.hedged"] == 0 {
				t.Fatal("stall chaos never triggered a hedge")
			}
			if tc.name == "corrupt" && snap.Counters["fabric.digest.failed"] == 0 {
				t.Fatal("corrupt chaos never failed digest verification")
			}
		})
	}
}

// TestClusterGoldenWithAuditAndHedging: the PR-6 byte-identity contract
// survives the trust layer — a clean fleet with every frame audited and
// hedging armed produces the exact golden bytes, with zero mismatches
// and zero quarantines. Auditing is an overlay on the result, never a
// perturbation of it.
func TestClusterGoldenWithAuditAndHedging(t *testing.T) {
	_, _, urls := startFleet(t, 3)
	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:           urls,
		HeartbeatInterval: -1,
		AuditFraction:     1,
		HedgeAfter:        50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	raw := runCanonicalCampaign(t, coord)
	norm, err := normalizeReport(raw, false)
	if err != nil {
		t.Fatal(err)
	}
	if want := clusterGolden(t); !bytes.Equal(norm, want) {
		t.Fatalf("audited+hedged cluster result differs from single-process run:\n--- cluster ---\n%s\n--- direct ---\n%s", norm, want)
	}
	snap := coord.reg.Snapshot()
	if got := snap.Counters["fabric.audit.sampled"]; got == 0 {
		t.Fatal("no audits sampled at AuditFraction 1")
	}
	if got := snap.Counters["fabric.audit.mismatch"]; got != 0 {
		t.Fatalf("clean fleet produced %d audit mismatches", got)
	}
	if q := coord.Quarantined(); len(q) != 0 {
		t.Fatalf("clean fleet quarantined workers: %v", q)
	}
}
