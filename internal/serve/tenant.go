package serve

import (
	"math"
	"sync"
	"time"
)

// TenantHeader names the HTTP header carrying the submitting tenant's
// identity. An absent or empty header is the anonymous tenant, which is
// throttled as one tenant like any other.
const TenantHeader = "X-Megsim-Tenant"

// DefaultTenantBurst is the token-bucket capacity when Config enables
// tenant throttling without setting a burst.
const DefaultTenantBurst = 8

// maxTenantBuckets bounds the lazily-created bucket map; when exceeded,
// buckets that have refilled to full (indistinguishable from absent)
// are swept. A hostile client cycling tenant names can therefore hold
// at most this many partially-drained buckets at once.
const maxTenantBuckets = 4096

// tenantLimiter is per-tenant token-bucket admission, layered in front
// of the shared admission queue: each tenant holds up to burst tokens,
// refilled continuously at rate tokens/second, and one submission costs
// one token. An empty bucket rejects with the number of whole seconds
// until the next token — the Retry-After the server returns — so one
// noisy tenant exhausts its own budget instead of the shared queue.
type tenantLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*tenantBucket
	now     func() time.Time // test seam
}

type tenantBucket struct {
	tokens float64
	last   time.Time
}

// newTenantLimiter returns a limiter, or nil when rate <= 0 (tenant
// throttling disabled). burst <= 0 selects DefaultTenantBurst.
func newTenantLimiter(rate float64, burst int, now func() time.Time) *tenantLimiter {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil
	}
	if burst <= 0 {
		burst = DefaultTenantBurst
	}
	if now == nil {
		now = time.Now
	}
	return &tenantLimiter{rate: rate, burst: float64(burst), buckets: map[string]*tenantBucket{}, now: now}
}

// Admit consumes one token for the tenant. When the bucket is empty it
// returns ok=false and the whole-second wait until a token is available
// (at least 1).
func (l *tenantLimiter) Admit(tenant string) (ok bool, retryAfter int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[tenant]
	if b == nil {
		if len(l.buckets) >= maxTenantBuckets {
			l.sweepLocked(now)
		}
		b = &tenantBucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	} else {
		b.refill(now, l.rate, l.burst)
	}
	if b.tokens < 1 {
		wait := (1 - b.tokens) / l.rate
		return false, int(math.Ceil(math.Max(wait, 1)))
	}
	b.tokens--
	return true, 0
}

// refill advances the bucket to now.
func (b *tenantBucket) refill(now time.Time, rate, burst float64) {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(burst, b.tokens+dt*rate)
	}
	b.last = now
}

// sweepLocked drops buckets that have refilled to full — absent and
// full are indistinguishable, so forgetting them frees the map without
// changing any tenant's budget.
func (l *tenantLimiter) sweepLocked(now time.Time) {
	for tenant, b := range l.buckets {
		b.refill(now, l.rate, l.burst)
		if b.tokens >= l.burst {
			delete(l.buckets, tenant)
		}
	}
}
