package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/megsim"
)

// ResilienceSummary is the machine-readable supervision outcome of a
// campaign: degradation, quarantine, resume/retry accounting and
// watchdog flags. It is the service-side twin of what `megsim`'s CLI
// has always reported, shared here so local and remote runs render the
// identical block.
type ResilienceSummary struct {
	Degraded      bool                      `json:"degraded"`
	Coverage      float64                   `json:"coverage"`
	Quarantined   []megsim.QuarantineRecord `json:"quarantined,omitempty"`
	Substitutions []megsim.Substitution     `json:"substitutions,omitempty"`
	LostClusters  []int                     `json:"lost_clusters,omitempty"`
	Resumed       []int                     `json:"resumed_frames,omitempty"`
	Retried       int                       `json:"retried_frames,omitempty"`
	Requeued      int                       `json:"requeued_frames,omitempty"`
	Stalled       []int                     `json:"stalled_workers,omitempty"`
	ResumeError   string                    `json:"resume_error,omitempty"`
}

// NewResilienceSummary extracts the supervision summary of a resilient
// run (nil when the run carries no supervision record).
func NewResilienceSummary(rrun *megsim.ResilientRun) *ResilienceSummary {
	sup := rrun.Supervision
	if sup == nil {
		return nil
	}
	sum := &ResilienceSummary{
		Degraded:    rrun.Degraded(),
		Coverage:    1.0,
		Quarantined: sup.Quarantined,
		Resumed:     sup.Resumed,
		Retried:     sup.Retried,
		Requeued:    sup.Requeued,
		Stalled:     sup.StalledWorkers,
	}
	if d := rrun.Degradation; d != nil {
		sum.Coverage = d.Coverage()
		sum.Substitutions = d.Substitutions
		sum.LostClusters = d.LostClusters
	}
	if sup.ResumeErr != nil {
		sum.ResumeError = sup.ResumeErr.Error()
	}
	return sum
}

// StreamingSummary describes the online first phase of a streaming
// campaign: how many strata the stream settled into, how often the
// stratifier was forced to coarsen, and what a mid-stream resume
// skipped.
type StreamingSummary struct {
	Strata        int    `json:"strata"`
	Merges        int    `json:"merges"`
	ResumedFrames int    `json:"resumed_frames,omitempty"`
	ResumeError   string `json:"resume_error,omitempty"`
}

// NewStreamingResilienceSummary maps a streaming run's supervision and
// degradation onto the shared summary shape (strata stand in for
// clusters).
func NewStreamingResilienceSummary(srun *megsim.StreamingRun) *ResilienceSummary {
	sup := srun.Supervision
	if sup == nil {
		return nil
	}
	sum := &ResilienceSummary{
		Degraded:    srun.Degraded(),
		Coverage:    1.0,
		Quarantined: sup.Quarantined,
		Resumed:     sup.Resumed,
		Retried:     sup.Retried,
		Requeued:    sup.Requeued,
		Stalled:     sup.StalledWorkers,
	}
	if d := srun.Degradation; d != nil {
		if srun.Selection != nil && srun.Selection.Frames > 0 {
			sum.Coverage = float64(d.CoveredFrames) / float64(srun.Selection.Frames)
		}
		for _, s := range d.Substitutions {
			sum.Substitutions = append(sum.Substitutions, megsim.Substitution{Cluster: s.Stratum, Original: s.From, Substitute: s.To})
		}
		sum.LostClusters = d.LostStrata
	}
	if sup.ResumeErr != nil {
		sum.ResumeError = sup.ResumeErr.Error()
	}
	return sum
}

// CampaignReport is the final result of a campaign — exactly the
// summary the megsim CLI prints, as plain data. The service stores the
// rendered JSON once per job, so every client polling the same job
// receives byte-identical bytes; the CLI's -server mode re-renders the
// same text report locally from this struct.
type CampaignReport struct {
	Workload        string  `json:"workload"`
	Frames          int     `json:"frames"`
	Clusters        int     `json:"clusters"`
	ExploredK       int     `json:"explored_k"`
	Representatives []int   `json:"representatives"`
	Reduction       float64 `json:"reduction_factor"`
	// SampledMillis is wall-clock and therefore the only field that
	// differs between two executions of the same campaign; byte-identity
	// guarantees are over the report with this field normalized (a
	// cache-hit response reports the original execution's timing).
	SampledMillis int64              `json:"sampled_run_ms"`
	Cycles        uint64             `json:"estimated_cycles"`
	DRAMAccesses  uint64             `json:"estimated_dram_accesses"`
	L2Accesses    uint64             `json:"estimated_l2_accesses"`
	TileAccesses  uint64             `json:"estimated_tile_cache_accesses"`
	Resilience    *ResilienceSummary `json:"resilience,omitempty"`
	// Streaming is present for streaming campaigns: Clusters then
	// counts strata and ExploredK is 0 (no k-search runs online).
	Streaming *StreamingSummary `json:"streaming,omitempty"`
}

// NewCampaignReport summarizes a resilient run.
func NewCampaignReport(rrun *megsim.ResilientRun, sampled time.Duration) *CampaignReport {
	run := rrun.Run
	return &CampaignReport{
		Workload:        run.Trace.Name,
		Frames:          run.Trace.NumFrames(),
		Clusters:        run.Selection.Clusters.K,
		ExploredK:       len(run.Selection.BICScores),
		Representatives: run.Representatives(),
		Reduction:       run.ReductionFactor(),
		SampledMillis:   sampled.Milliseconds(),
		Cycles:          run.Estimate.Cycles,
		DRAMAccesses:    run.Estimate.DRAM.Accesses,
		L2Accesses:      run.Estimate.L2.Accesses,
		TileAccesses:    run.Estimate.TileCache.Accesses,
		Resilience:      NewResilienceSummary(rrun),
	}
}

// NewStreamingCampaignReport summarizes a streaming sampling run.
func NewStreamingCampaignReport(srun *megsim.StreamingRun, sampled time.Duration) *CampaignReport {
	sel := srun.Selection
	sum := &StreamingSummary{
		Strata:        sel.NumStrata(),
		Merges:        sel.Merges,
		ResumedFrames: srun.ResumedFrames,
	}
	if srun.StreamResumeErr != nil {
		sum.ResumeError = srun.StreamResumeErr.Error()
	}
	return &CampaignReport{
		Workload:        sel.Workload,
		Frames:          sel.Frames,
		Clusters:        sel.NumStrata(),
		Representatives: sel.Representatives(),
		Reduction:       sel.ReductionFactor(),
		SampledMillis:   sampled.Milliseconds(),
		Cycles:          srun.Estimate.Cycles,
		DRAMAccesses:    srun.Estimate.DRAM.Accesses,
		L2Accesses:      srun.Estimate.L2.Accesses,
		TileAccesses:    srun.Estimate.TileCache.Accesses,
		Resilience:      NewStreamingResilienceSummary(srun),
		Streaming:       sum,
	}
}

// WriteJSON writes the report as indented JSON (the service's result
// payload and the CLI's -json output).
func (r *CampaignReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the human-readable run summary — the exact block
// the megsim CLI prints, whether the run executed in-process or on a
// megsimd daemon.
func (r *CampaignReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "workload:        %s (%d frames)\n", r.Workload, r.Frames)
	if s := r.Streaming; s != nil {
		fmt.Fprintf(w, "strata:          %d (streaming, %d merges)\n", s.Strata, s.Merges)
		if s.ResumeError != "" {
			fmt.Fprintf(w, "WARNING: stream resume failed, re-ingested from frame 0: %v\n", s.ResumeError)
		}
		if s.ResumedFrames > 0 {
			fmt.Fprintf(w, "stream resume:   skipped re-characterizing %d frames\n", s.ResumedFrames)
		}
	} else {
		fmt.Fprintf(w, "clusters:        %d (explored k=1..%d)\n", r.Clusters, r.ExploredK)
	}
	fmt.Fprintf(w, "representatives: %v\n", r.Representatives)
	fmt.Fprintf(w, "reduction:       %.0fx fewer frames\n", r.Reduction)
	fmt.Fprintf(w, "sampled run:     %v total\n", time.Duration(r.SampledMillis)*time.Millisecond)
	r.writeSupervision(w)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "estimated cycles:      %d\n", r.Cycles)
	fmt.Fprintf(w, "estimated dram:        %d\n", r.DRAMAccesses)
	fmt.Fprintf(w, "estimated l2:          %d\n", r.L2Accesses)
	fmt.Fprintf(w, "estimated tile cache:  %d\n", r.TileAccesses)
}

// writeSupervision reports everything the supervisor did that an
// operator must know about: resume accounting, retries, watchdog flags,
// and — loudest — degradation. A healthy, fresh run prints nothing.
func (r *CampaignReport) writeSupervision(w io.Writer) {
	sum := r.Resilience
	if sum == nil {
		return
	}
	if sum.ResumeError != "" {
		fmt.Fprintf(w, "WARNING: resume failed, started fresh: %v\n", sum.ResumeError)
	}
	if len(sum.Resumed) > 0 {
		fmt.Fprintf(w, "resumed:         %d frames from checkpoint %v\n", len(sum.Resumed), sum.Resumed)
	}
	if sum.Retried > 0 {
		fmt.Fprintf(w, "retried:         %d frames needed more than one attempt\n", sum.Retried)
	}
	if sum.Requeued > 0 {
		fmt.Fprintf(w, "requeued:        %d dispatches re-entered the pool after worker loss\n", sum.Requeued)
	}
	if len(sum.Stalled) > 0 {
		fmt.Fprintf(w, "WARNING: watchdog flagged stalled workers %v\n", sum.Stalled)
	}
	if !sum.Degraded {
		return
	}
	fmt.Fprintf(w, "DEGRADED: %d frames quarantined, coverage %.1f%% of %d frames\n",
		len(sum.Quarantined), sum.Coverage*100, r.Frames)
	for _, q := range sum.Quarantined {
		fmt.Fprintf(w, "  %s\n", q.String())
	}
	for _, s := range sum.Substitutions {
		fmt.Fprintf(w, "  substitute: cluster %d representative %d -> %d\n", s.Cluster, s.Original, s.Substitute)
	}
	for _, c := range sum.LostClusters {
		fmt.Fprintf(w, "  lost: cluster %d entirely quarantined, weights rescaled\n", c)
	}
}
