package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/workload"
	"repro/megsim"
)

// serviceCampaignBody is the canonical test campaign: the harness
// `service` preset (test-scale hcr, tiled raster, resilience on) as a
// submission document. extra is spliced into the resilience object.
func serviceCampaignBody(tileWorkers int, extraResilience string) string {
	sc := harness.ServiceOptions().Scale
	return fmt.Sprintf(
		`{"workload":{"benchmark":"hcr","width":%d,"height":%d,"frame_div":%d,"detail_div":%d},`+
			`"gpu":{"tile_workers":%d},"resilience":{"retries":%d%s}}`,
		sc.Width, sc.Height, sc.FrameDivisor, sc.DetailDivisor,
		tileWorkers, harness.ServiceResilience().MaxAttempts, extraResilience)
}

// directGolden runs the canonical campaign once, directly through
// megsim.SampleResilient under the same `service` preset — the ground
// truth every service response must match byte-for-byte (modulo wall
// clock). Computed once and shared across tests.
var (
	goldenOnce  sync.Once
	goldenBytes []byte
	goldenErr   error
)

func directGolden(t *testing.T) []byte {
	t.Helper()
	goldenOnce.Do(func() {
		opts := harness.ServiceOptions()
		p, err := workload.Get("hcr")
		if err != nil {
			goldenErr = err
			return
		}
		tr, err := workload.Generate(p, opts.Scale)
		if err != nil {
			goldenErr = err
			return
		}
		gpu := megsim.DefaultGPUConfig()
		gpu.TileWorkers = opts.TileWorkers
		rrun, err := megsim.SampleResilient(context.Background(), tr,
			megsim.DefaultConfig(), gpu, harness.ServiceResilience())
		if err != nil {
			goldenErr = err
			return
		}
		raw, err := marshalReport(NewCampaignReport(rrun, 0))
		if err != nil {
			goldenErr = err
			return
		}
		goldenBytes, goldenErr = normalizeReport(raw, false)
	})
	if goldenErr != nil {
		t.Fatalf("direct golden run: %v", goldenErr)
	}
	return goldenBytes
}

// normalizeReport re-renders a report with the wall-clock field zeroed
// (and, for resumed runs, the resume accounting cleared) so executions
// of the same campaign compare byte-for-byte.
func normalizeReport(raw []byte, clearResume bool) ([]byte, error) {
	var r CampaignReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("normalize report: %w", err)
	}
	r.SampledMillis = 0
	if clearResume && r.Resilience != nil {
		r.Resilience.Resumed = nil
	}
	return marshalReport(&r)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

// post is the goroutine-safe HTTP helper (no *testing.T): concurrent
// submission tests collect errors and assert on the main goroutine.
func post(ts *httptest.Server, body string) (*http.Response, []byte, error) {
	resp, err := http.Post(ts.URL+"/api/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp, raw, err
}

func postCampaign(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, raw, err := post(ts, body)
	if err != nil {
		t.Fatalf("POST campaign: %v", err)
	}
	return resp, raw
}

func trySubmit(ts *httptest.Server, body string) (SubmitResponse, error) {
	resp, raw, err := post(ts, body)
	if err != nil {
		return SubmitResponse{}, err
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return SubmitResponse{}, fmt.Errorf("submit: status %d: %s", resp.StatusCode, raw)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		return SubmitResponse{}, fmt.Errorf("decode submit response: %w", err)
	}
	return sub, nil
}

func submitOK(t *testing.T, ts *httptest.Server, body string) SubmitResponse {
	t.Helper()
	sub, err := trySubmit(ts, body)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func getJSON(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, raw
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, raw := getJSON(t, ts, "/api/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("poll %s: status %d: %s", id, code, raw)
		}
		var st JobStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("decode status: %v", err)
		}
		if st.State.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func counter(s *Server, name string) uint64 {
	return s.Registry().Snapshot().Counters[name]
}

// TestCampaignCacheIdentity is the service's golden contract: N
// concurrent identical submissions (across tile-worker counts, which
// normalize to one fingerprint) run ONE simulation, every poller reads
// byte-identical bytes, and those bytes match a direct in-process
// megsim.SampleResilient run of the same campaign.
func TestCampaignCacheIdentity(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueCapacity: 16})

	const N = 6
	subs := make([]SubmitResponse, N)
	errs := make([]error, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// tile_workers 1, 2, 3 — all the same campaign fingerprint.
			subs[i], errs[i] = trySubmit(ts, serviceCampaignBody(1+i%3, ""))
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	fresh := 0
	for _, sub := range subs {
		if !sub.Deduped {
			fresh++
		}
		if sub.JobID != subs[0].JobID {
			t.Fatalf("identical submissions got different jobs: %s vs %s", sub.JobID, subs[0].JobID)
		}
	}
	if fresh != 1 {
		t.Fatalf("%d fresh admissions for %d identical submissions, want exactly 1", fresh, N)
	}

	st := waitTerminal(t, ts, subs[0].JobID)
	if st.State != JobSucceeded {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}

	resultPath := "/api/v1/jobs/" + subs[0].JobID + "/result"
	code, r1 := getJSON(t, ts, resultPath)
	if code != http.StatusOK {
		t.Fatalf("result: status %d: %s", code, r1)
	}
	_, r2 := getJSON(t, ts, resultPath)
	if !bytes.Equal(r1, r2) {
		t.Fatal("two reads of the same result differ")
	}

	// Resubmitting after completion is a pure cache hit on the same job.
	late := submitOK(t, ts, serviceCampaignBody(2, ""))
	if !late.Deduped || late.JobID != subs[0].JobID {
		t.Fatalf("post-completion resubmission not deduped: %+v", late)
	}
	_, r3 := getJSON(t, ts, resultPath)
	if !bytes.Equal(r1, r3) {
		t.Fatal("result changed after resubmission")
	}

	// Byte-identical to the direct run, modulo the wall-clock field.
	norm, err := normalizeReport(r1, false)
	if err != nil {
		t.Fatal(err)
	}
	if want := directGolden(t); !bytes.Equal(norm, want) {
		t.Fatalf("service result differs from direct run:\n--- service ---\n%s\n--- direct ---\n%s", norm, want)
	}

	if got := counter(s, "serve.jobs.executed"); got != 1 {
		t.Fatalf("serve.jobs.executed = %d, want 1 (one simulation for %d submissions)", got, N+1)
	}
	if got := counter(s, "serve.jobs.deduped"); got != N {
		t.Fatalf("serve.jobs.deduped = %d, want %d", got, N)
	}
	if got := counter(s, "serve.jobs.completed"); got != 1 {
		t.Fatalf("serve.jobs.completed = %d, want 1", got)
	}

	// Second campaign, distinct fingerprint (pre-quarantines one
	// NON-representative frame): the selection is unchanged, so every
	// representative must come from the frame cache — a new job, zero
	// new simulation, identical estimates.
	var rep CampaignReport
	if err := json.Unmarshal(r1, &rep); err != nil {
		t.Fatal(err)
	}
	isRep := map[int]bool{}
	for _, f := range rep.Representatives {
		isRep[f] = true
	}
	nonRep := -1
	for f := 0; f < rep.Frames; f++ {
		if !isRep[f] {
			nonRep = f
			break
		}
	}
	if nonRep < 0 {
		t.Skip("every frame is a representative at this scale")
	}
	frameMissBefore := counter(s, "serve.cache.frame.miss")
	sub2 := submitOK(t, ts, serviceCampaignBody(2, fmt.Sprintf(`,"quarantine":[%d]`, nonRep)))
	if sub2.Deduped || sub2.JobID == subs[0].JobID {
		t.Fatalf("distinct campaign was deduped: %+v", sub2)
	}
	st2 := waitTerminal(t, ts, sub2.JobID)
	if st2.State != JobSucceeded {
		t.Fatalf("second campaign ended %s: %s", st2.State, st2.Error)
	}
	_, raw2 := getJSON(t, ts, "/api/v1/jobs/"+sub2.JobID+"/result")
	var rep2 CampaignReport
	if err := json.Unmarshal(raw2, &rep2); err != nil {
		t.Fatal(err)
	}
	if rep2.Cycles != rep.Cycles || rep2.DRAMAccesses != rep.DRAMAccesses {
		t.Fatalf("quarantining a non-representative changed the estimate: %d vs %d cycles", rep2.Cycles, rep.Cycles)
	}
	if rep2.Resilience == nil || len(rep2.Resilience.Quarantined) != 1 {
		t.Fatalf("pre-quarantine not reported: %+v", rep2.Resilience)
	}
	if got := counter(s, "serve.cache.frame.hit"); got < uint64(len(rep.Representatives)) {
		t.Fatalf("frame cache hits = %d, want >= %d (all representatives shared)", got, len(rep.Representatives))
	}
	if got := counter(s, "serve.cache.frame.miss"); got != frameMissBefore {
		t.Fatalf("second campaign re-simulated %d frames; all were cached", got-frameMissBefore)
	}
	if got := counter(s, "serve.cache.char.hit"); got < 1 {
		t.Fatal("characterization was recomputed for a cached workload")
	}
	if got := counter(s, "serve.cache.trace.hit"); got < 1 {
		t.Fatal("trace was regenerated for a cached workload")
	}

	// Third campaign: quarantine a REPRESENTATIVE — the service must
	// degrade gracefully (substitute or lost cluster), succeed, and flag
	// the job as degraded everywhere.
	subDeg := submitOK(t, ts, serviceCampaignBody(2, fmt.Sprintf(`,"quarantine":[%d]`, rep.Representatives[0])))
	stDeg := waitTerminal(t, ts, subDeg.JobID)
	if stDeg.State != JobSucceeded {
		t.Fatalf("degraded campaign ended %s: %s", stDeg.State, stDeg.Error)
	}
	if !stDeg.Degraded {
		t.Fatal("degraded campaign not flagged in job status")
	}
	_, rawDeg := getJSON(t, ts, "/api/v1/jobs/"+subDeg.JobID+"/result")
	var repDeg CampaignReport
	if err := json.Unmarshal(rawDeg, &repDeg); err != nil {
		t.Fatal(err)
	}
	if repDeg.Resilience == nil || !repDeg.Resilience.Degraded {
		t.Fatalf("degradation not reported: %+v", repDeg.Resilience)
	}
	if len(repDeg.Resilience.Substitutions) == 0 && len(repDeg.Resilience.LostClusters) == 0 {
		t.Fatalf("degraded run reports neither substitution nor loss: %+v", repDeg.Resilience)
	}
	if got := counter(s, "serve.jobs.degraded"); got != 1 {
		t.Fatalf("serve.jobs.degraded = %d, want 1", got)
	}

	// /metrics reflects all of it in Prometheus text format.
	code, metrics := getJSON(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	for _, want := range []string{
		"# TYPE serve_jobs_executed counter",
		"serve_jobs_executed 3",
		"serve_cache_char_hit",
		"megsimd_queue_depth 0",
		"megsimd_inflight_jobs 0",
		"megsimd_draining 0",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestBackpressure: with capacity K and no workers, K+M concurrent
// submissions admit exactly K and reject exactly M with 429+Retry-After;
// rejected jobs leave no trace. Drain then interrupts the queued jobs
// and flips admission to 503.
func TestBackpressure(t *testing.T) {
	const K, M = 3, 2
	s := New(Config{Workers: -1, QueueCapacity: K})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type outcome struct {
		status     int
		retryAfter string
		body       string
		err        error
	}
	outcomes := make([]outcome, K+M)
	var wg sync.WaitGroup
	for i := 0; i < K+M; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds → distinct fingerprints → no dedup.
			body := fmt.Sprintf(`{"workload":{"random_seed":%d}}`, i+1)
			resp, raw, err := post(ts, body)
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			outcomes[i] = outcome{resp.StatusCode, resp.Header.Get("Retry-After"), string(raw), nil}
		}(i)
	}
	wg.Wait()

	admitted, rejected := 0, 0
	for _, o := range outcomes {
		if o.err != nil {
			t.Fatal(o.err)
		}
		switch o.status {
		case http.StatusAccepted:
			admitted++
		case http.StatusTooManyRequests:
			rejected++
			if o.retryAfter == "" {
				t.Error("429 without Retry-After header")
			}
			if !strings.Contains(o.body, "queue full") {
				t.Errorf("429 body does not explain: %s", o.body)
			}
		default:
			t.Errorf("unexpected status %d: %s", o.status, o.body)
		}
	}
	if admitted != K || rejected != M {
		t.Fatalf("admitted %d / rejected %d, want %d / %d", admitted, rejected, K, M)
	}
	if got := counter(s, "serve.jobs.rejected"); got != M {
		t.Fatalf("serve.jobs.rejected = %d, want %d", got, M)
	}

	// Rejected submissions must not leave phantom jobs behind.
	code, raw := getJSON(t, ts, "/api/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	var list []JobStatus
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != K {
		t.Fatalf("store holds %d jobs, want %d", len(list), K)
	}
	for _, st := range list {
		if st.State != JobQueued {
			t.Fatalf("job %s is %s, want queued (no workers)", st.ID, st.State)
		}
	}

	// A queued job has no result yet.
	code, raw = getJSON(t, ts, "/api/v1/jobs/"+list[0].ID+"/result")
	if code != http.StatusConflict || !strings.Contains(string(raw), "queued") {
		t.Fatalf("result of queued job: status %d body %s", code, raw)
	}

	// Drain: queued jobs are interrupted, admission answers 503.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, st := range list {
		after := waitTerminal(t, ts, st.ID)
		if after.State != JobInterrupted || !strings.Contains(after.Error, "drained") {
			t.Fatalf("job %s after drain: %s (%s)", st.ID, after.State, after.Error)
		}
	}
	if got := counter(s, "serve.jobs.interrupted"); got != K {
		t.Fatalf("serve.jobs.interrupted = %d, want %d", got, K)
	}
	resp, raw := postCampaign(t, ts, `{"workload":{"random_seed":99}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d body %s", resp.StatusCode, raw)
	}
	code, raw = getJSON(t, ts, "/healthz")
	if code != http.StatusOK || !strings.Contains(string(raw), `"draining": true`) {
		t.Fatalf("healthz while draining: %d %s", code, raw)
	}
	_, metrics := getJSON(t, ts, "/metrics")
	if !strings.Contains(string(metrics), "megsimd_draining 1") {
		t.Error("metrics do not report draining")
	}

	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestDrainCheckpointResume: drain a server with jobs in flight and
// queued, restart it on the same checkpoint directory, resubmit the
// identical campaigns, and require byte-identical results (resume
// accounting normalized — a resumed run truthfully reports its resumed
// frames).
func TestDrainCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	sc := harness.ServiceOptions().Scale
	bodyA := serviceCampaignBody(2, "")
	bodyB := fmt.Sprintf(
		`{"workload":{"benchmark":"jjo","width":%d,"height":%d,"frame_div":%d,"detail_div":%d},`+
			`"gpu":{"tile_workers":2},"resilience":{"retries":2}}`,
		sc.Width, sc.Height, sc.FrameDivisor, sc.DetailDivisor)

	sA := New(Config{Workers: 1, QueueCapacity: 8, CheckpointDir: dir})
	tsA := httptest.NewServer(sA.Handler())
	subA := submitOK(t, tsA, bodyA)
	subB := submitOK(t, tsA, bodyB) // queued behind A on the single worker

	// Let the worker pick up job A, then drain mid-run. (On a fast
	// machine A may already have finished — both outcomes are legal;
	// the resubmission contract below holds either way.)
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, raw := getJSON(t, tsA, "/api/v1/jobs/"+subA.JobID)
		if code != http.StatusOK {
			t.Fatalf("poll: %d %s", code, raw)
		}
		if !strings.Contains(string(raw), `"queued"`) || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := sA.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	stA := waitTerminal(t, tsA, subA.JobID)
	stB := waitTerminal(t, tsA, subB.JobID)
	tsA.Close()
	if stA.State != JobSucceeded && stA.State != JobInterrupted {
		t.Fatalf("job A after drain: %s (%s)", stA.State, stA.Error)
	}
	if stB.State != JobSucceeded && stB.State != JobInterrupted {
		t.Fatalf("job B after drain: %s (%s)", stB.State, stB.Error)
	}

	// Restart on the same checkpoint directory and resubmit both.
	_, tsB := newTestServer(t, Config{Workers: 1, QueueCapacity: 8, CheckpointDir: dir})
	reA := submitOK(t, tsB, bodyA)
	reB := submitOK(t, tsB, bodyB)
	if reA.Fingerprint != subA.Fingerprint || reB.Fingerprint != subB.Fingerprint {
		t.Fatal("resubmission fingerprints changed across restart")
	}
	for _, sub := range []SubmitResponse{reA, reB} {
		if st := waitTerminal(t, tsB, sub.JobID); st.State != JobSucceeded {
			t.Fatalf("resumed job %s ended %s: %s", sub.JobID, st.State, st.Error)
		}
	}
	_, rawA := getJSON(t, tsB, "/api/v1/jobs/"+reA.JobID+"/result")
	normA, err := normalizeReport(rawA, true)
	if err != nil {
		t.Fatal(err)
	}
	if want := directGolden(t); !bytes.Equal(normA, want) {
		t.Fatalf("resumed result differs from direct run:\n--- resumed ---\n%s\n--- direct ---\n%s", normA, want)
	}
}

// TestJobFailure: a campaign that quarantines every frame loses every
// cluster — the estimate is impossible, and the job must settle in
// `failed` (not hang, not panic) with the cause in its status. A later
// identical submission retries instead of deduplicating onto the corpse.
func TestJobFailure(t *testing.T) {
	var log bytes.Buffer
	s, ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 4, Log: &log})
	if s.Draining() {
		t.Fatal("fresh server reports draining")
	}
	quarantine := make([]string, 2000)
	for i := range quarantine {
		quarantine[i] = fmt.Sprint(i)
	}
	body := serviceCampaignBody(2, `,"quarantine":[`+strings.Join(quarantine, ",")+`]`)
	sub := submitOK(t, ts, body)
	st := waitTerminal(t, ts, sub.JobID)
	if st.State != JobFailed {
		t.Fatalf("all-quarantined campaign ended %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "every cluster lost") {
		t.Fatalf("failure cause not surfaced: %q", st.Error)
	}
	code, _ := getJSON(t, ts, "/api/v1/jobs/"+sub.JobID+"/result")
	if code != http.StatusConflict {
		t.Fatalf("result of failed job: status %d, want 409", code)
	}
	if got := counter(s, "serve.jobs.failed"); got != 1 {
		t.Fatalf("serve.jobs.failed = %d, want 1", got)
	}

	// Failed jobs are replaced, not reused: the retry gets a fresh job.
	retry := submitOK(t, ts, body)
	if retry.Deduped || retry.JobID == sub.JobID {
		t.Fatalf("resubmission deduped onto a failed job: %+v", retry)
	}
	waitTerminal(t, ts, retry.JobID)
	if !strings.Contains(log.String(), "failed") {
		t.Fatalf("service log silent about the failure:\n%s", log.String())
	}
}

func TestHandlerErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: -1, QueueCapacity: 2})

	code, raw := getJSON(t, ts, "/api/v1/jobs/job-999999")
	if code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d %s", code, raw)
	}
	code, _ = getJSON(t, ts, "/api/v1/jobs/job-999999/result")
	if code != http.StatusNotFound {
		t.Fatalf("unknown job result: status %d", code)
	}
	resp, raw := postCampaign(t, ts, `{"workload":`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), "decode") {
		t.Fatalf("malformed body: status %d %s", resp.StatusCode, raw)
	}
	resp, raw = postCampaign(t, ts, `{"workload":{"benchmark":"doom"}}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), "invalid campaign") {
		t.Fatalf("invalid campaign: status %d %s", resp.StatusCode, raw)
	}

	code, raw = getJSON(t, ts, "/healthz")
	if code != http.StatusOK || !strings.Contains(string(raw), `"ok": true`) {
		t.Fatalf("healthz: %d %s", code, raw)
	}

	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	metrics, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(metrics), "megsimd_queue_capacity 2") {
		t.Fatalf("metrics missing capacity gauge:\n%s", metrics)
	}

	// A queued submission reports its state in the submit response.
	sub := submitOK(t, ts, `{"workload":{"random_seed":1}}`)
	if sub.State != JobQueued || sub.Deduped || !strings.HasPrefix(sub.Fingerprint, "cmp-") {
		t.Fatalf("submit response: %+v", sub)
	}
}
