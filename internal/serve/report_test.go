package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/megsim"
)

func degradedReport() *CampaignReport {
	return &CampaignReport{
		Workload:        "hcr",
		Frames:          40,
		Clusters:        4,
		ExploredK:       8,
		Representatives: []int{2, 9, 17, 31},
		Reduction:       10,
		SampledMillis:   1500,
		Cycles:          123456,
		DRAMAccesses:    7890,
		L2Accesses:      4567,
		TileAccesses:    2345,
		Resilience: &ResilienceSummary{
			Degraded: true,
			Coverage: 0.75,
			Quarantined: []megsim.QuarantineRecord{
				{Frame: 9, Attempts: 3, Err: "injected fault"},
			},
			Substitutions: []megsim.Substitution{
				{Cluster: 1, Original: 9, Substitute: 10},
			},
			LostClusters: []int{3},
			Resumed:      []int{2},
			Retried:      2,
			Stalled:      []int{1},
			ResumeError:  "stale checkpoint",
		},
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	degradedReport().WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		"workload:        hcr (40 frames)",
		"clusters:        4 (explored k=1..8)",
		"representatives: [2 9 17 31]",
		"reduction:       10x fewer frames",
		"sampled run:     1.5s total",
		"WARNING: resume failed, started fresh: stale checkpoint",
		"resumed:         1 frames from checkpoint [2]",
		"retried:         2 frames needed more than one attempt",
		"WARNING: watchdog flagged stalled workers [1]",
		"DEGRADED: 1 frames quarantined, coverage 75.0% of 40 frames",
		"substitute: cluster 1 representative 9 -> 10",
		"lost: cluster 3 entirely quarantined, weights rescaled",
		"estimated cycles:      123456",
		"estimated tile cache:  2345",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}

	// A healthy run prints no supervision block at all.
	buf.Reset()
	healthy := degradedReport()
	healthy.Resilience = nil
	healthy.WriteText(&buf)
	if strings.Contains(buf.String(), "DEGRADED") || strings.Contains(buf.String(), "WARNING") {
		t.Fatalf("healthy run printed supervision noise:\n%s", buf.String())
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	rep := degradedReport()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back CampaignReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Cycles != rep.Cycles || back.Resilience == nil || back.Resilience.Coverage != 0.75 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	// WriteJSON and the service's stored result bytes must agree — one
	// renderer, one byte stream.
	stored, err := marshalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), stored) {
		t.Fatal("WriteJSON and marshalReport disagree")
	}
}

func TestNewResilienceSummaryNil(t *testing.T) {
	if got := NewResilienceSummary(&megsim.ResilientRun{}); got != nil {
		t.Fatalf("summary without supervision: %+v, want nil", got)
	}
}
