// Package serve is the MEGsim campaign service: the HTTP/JSON layer
// that turns the one-shot sampling pipeline into a long-lived daemon
// (cmd/megsimd). Clients POST a campaign — a workload spec, methodology
// and GPU settings, resilience options — and get a job ID to poll for
// progress and the final report.
//
// The service stacks four mechanisms on the existing pipeline:
//
//   - a content-addressed result cache (Cache) keyed on
//     megsim.RunFingerprint-style hashes at trace, characterization and
//     per-representative FrameStats granularity, with singleflight
//     deduplication — concurrent identical submissions run one
//     simulation and every caller reads byte-identical results;
//   - a bounded admission queue (admissionQueue) with backpressure:
//     when the queue is full, submissions get HTTP 429 with Retry-After
//     instead of unbounded memory growth;
//   - live metrics: /metrics exposes the merged observability registry
//     (every job's simulator counters fold into it) in Prometheus text
//     format, plus service gauges for queue depth and in-flight jobs;
//   - graceful drain: Drain stops admission, cancels in-flight jobs so
//     the resilience supervisor checkpoints them at the next frame
//     boundary, and waits for the workers — resubmitting an interrupted
//     campaign after restart resumes from its checkpoint to
//     byte-identical results.
//
// Jobs execute under megsim.SampleResilientPrepared, so per-frame
// retry, quarantine, checkpointing and graceful degradation all apply
// per job exactly as they do in the CLI.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/megsim"
)

// Dispatcher is the seam coordinator mode plugs into: when Config
// carries one, campaigns are still admitted, characterized, selected,
// supervised, checkpointed and cached locally, but the frame function
// the supervisor drives comes from the Dispatcher instead of the
// in-process simulator. internal/fabric implements it over an HTTP
// worker fleet. The returned function must honor FrameRunner's purity
// contract: same fingerprint, same frame, same stats and observability.
type Dispatcher interface {
	// FrameRunner returns the frame function for the campaign identified
	// by fp (its megsim.RunFingerprint). req carries the validated
	// workload and GPU specs a remote worker needs to rebuild the trace.
	FrameRunner(fp string, req *CampaignRequest) megsim.ResilientFrameFunc
}

// Config configures a Server. The zero value is usable: default queue
// capacity and worker count, no checkpoint directory (drain then loses
// in-flight progress), a fresh metrics-only observability registry.
type Config struct {
	// QueueCapacity bounds the admission queue (0 = DefaultQueueCapacity).
	QueueCapacity int
	// Workers is the job worker pool size (0 = GOMAXPROCS; negative =
	// no workers, an admission-only server for backpressure tests).
	Workers int
	// CheckpointDir, when non-empty, gives every job a checkpoint file
	// named by its campaign fingerprint, written at frame granularity
	// and resumed automatically when the identical campaign is
	// resubmitted (after a drain, a crash, or a restart).
	CheckpointDir string
	// MaxCachedFrames bounds the per-representative FrameStats cache
	// (0 = DefaultMaxFrames).
	MaxCachedFrames int
	// Dispatcher, when non-nil, sources each campaign's frame function
	// (coordinator mode); nil runs frames on the in-process simulator.
	Dispatcher Dispatcher
	// MaxStreamSessions bounds concurrently open chunked-upload stream
	// sessions (0 = DefaultMaxStreamSessions).
	MaxStreamSessions int
	// StreamIdleTimeout expires an open stream session that has not
	// ingested for this long, freeing its session slot so abandoned
	// clients cannot exhaust MaxStreamSessions (0 =
	// DefaultStreamIdleTimeout; negative = never expire).
	StreamIdleTimeout time.Duration
	// StreamRetention evicts a closed (finished/aborted/expired)
	// session's status document this long after it closed, bounding
	// session-store memory (0 = DefaultStreamRetention; negative =
	// retain forever).
	StreamRetention time.Duration
	// TenantRate enables per-tenant token-bucket admission: each tenant
	// (the X-Megsim-Tenant header; empty = anonymous) refills at this
	// many submissions per second, bursting to TenantBurst. Zero or
	// negative disables tenant throttling.
	TenantRate float64
	// TenantBurst is the per-tenant bucket capacity (0 =
	// DefaultTenantBurst). Only meaningful when TenantRate > 0.
	TenantBurst int
	// Obs is the service registry /metrics exports (nil = a fresh
	// enabled metrics-only registry). Every job's observability merges
	// into it.
	Obs *obs.Registry
	// Log, when non-nil, receives service log lines. It is written from
	// the worker goroutines, so it must tolerate concurrent writes when
	// Workers > 1 (os.Stderr and friends do).
	Log io.Writer
}

// DefaultQueueCapacity is the admission bound when Config leaves it 0.
const DefaultQueueCapacity = 64

// Server is the campaign service. Create with New, expose via Handler,
// stop with Drain.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	cache   *Cache
	store   *Store
	queue   *admissionQueue
	tenants *tenantLimiter
	streams *streamStore
	mux     *http.ServeMux

	jobsCtx    context.Context
	cancelJobs context.CancelFunc
	wg         sync.WaitGroup

	draining atomic.Bool
	inflight atomic.Int64

	submitted, deduped, rejected *obs.Counter
	throttled                    *obs.Counter
	executed, completed, failed  *obs.Counter
	degradedJobs, interrupted    *obs.Counter

	streamsOpened, streamsFinished *obs.Counter
	streamChunks, streamsExpired   *obs.Counter
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewWith(obs.Options{TraceCapacity: -1})
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = DefaultQueueCapacity
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:          cfg,
		reg:          reg,
		cache:        NewCache(reg, cfg.MaxCachedFrames),
		store:        NewStore(),
		queue:        newAdmissionQueue(cfg.QueueCapacity),
		tenants:      newTenantLimiter(cfg.TenantRate, cfg.TenantBurst, nil),
		streams:      newStreamStore(cfg.MaxStreamSessions, cfg.StreamIdleTimeout, cfg.StreamRetention),
		jobsCtx:      ctx,
		cancelJobs:   cancel,
		submitted:    reg.Counter("serve.jobs.submitted"),
		deduped:      reg.Counter("serve.jobs.deduped"),
		rejected:     reg.Counter("serve.jobs.rejected"),
		throttled:    reg.Counter("serve.jobs.throttled"),
		executed:     reg.Counter("serve.jobs.executed"),
		completed:    reg.Counter("serve.jobs.completed"),
		failed:       reg.Counter("serve.jobs.failed"),
		degradedJobs: reg.Counter("serve.jobs.degraded"),
		interrupted:  reg.Counter("serve.jobs.interrupted"),
	}
	s.streamsOpened = reg.Counter("serve.streams.opened")
	s.streamsFinished = reg.Counter("serve.streams.finished")
	s.streamChunks = reg.Counter("serve.streams.chunks")
	s.streamsExpired = reg.Counter("serve.streams.expired")
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /api/v1/streams", s.handleStreamOpen)
	s.mux.HandleFunc("GET /api/v1/streams/{id}", s.handleStreamStatus)
	s.mux.HandleFunc("POST /api/v1/streams/{id}/chunks", s.handleStreamChunk)
	s.mux.HandleFunc("POST /api/v1/streams/{id}/finish", s.handleStreamFinish)
	s.mux.HandleFunc("DELETE /api/v1/streams/{id}", s.handleStreamAbort)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the service observability registry (the one /metrics
// exports).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully stops the service: admission closes (submissions get
// 503), in-flight jobs are cancelled so the resilience supervisor
// flushes a final checkpoint at the next frame boundary, queued jobs
// are marked interrupted, and the worker pool is awaited. ctx bounds
// the wait; on expiry the workers are abandoned and ctx's error
// returned. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Close()
	s.cancelJobs()
	if s.cfg.Workers < 0 {
		// Admission-only server: no workers will drain the queue.
		for j := range s.queue.ch {
			s.finishInterrupted(j, "service drained before the job started")
		}
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// worker claims queued jobs until the queue closes and drains.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue.ch {
		s.runJob(j)
	}
}

// runJob executes one campaign and settles the job's terminal state.
func (s *Server) runJob(j *Job) {
	if s.jobsCtx.Err() != nil {
		s.finishInterrupted(j, "service drained before the job started")
		return
	}
	j.setRunning()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	rep, err := s.execute(s.jobsCtx, j)
	if err != nil {
		if s.jobsCtx.Err() != nil {
			msg := "service drained mid-run"
			if s.cfg.CheckpointDir != "" {
				msg += "; progress checkpointed — resubmit the identical campaign to resume"
			}
			s.finishInterrupted(j, msg)
			return
		}
		s.failed.Inc()
		// Log before publishing the terminal state: clients observing
		// Done() must see a quiescent server (no writes race the read).
		s.logf("serve: %s failed: %v", j.ID, err)
		j.fail(JobFailed, err.Error())
		return
	}
	var buf []byte
	buf, err = marshalReport(rep)
	if err != nil {
		s.failed.Inc()
		j.fail(JobFailed, fmt.Sprintf("render report: %v", err))
		return
	}
	if rep.Resilience != nil && rep.Resilience.Degraded {
		s.degradedJobs.Inc()
	}
	s.completed.Inc()
	s.logf("serve: %s succeeded (%s)", j.ID, j.Fingerprint)
	j.complete(rep, buf)
}

func (s *Server) finishInterrupted(j *Job, msg string) {
	s.interrupted.Inc()
	s.logf("serve: %s interrupted: %s", j.ID, msg)
	j.fail(JobInterrupted, msg)
}

// execute runs the campaign through the cached pipeline: trace and
// characterization by workload key, selection (cheap, recomputed),
// then the supervised sampling run with the per-representative
// FrameStats cache wrapped around the frame runner.
func (s *Server) execute(ctx context.Context, j *Job) (*CampaignReport, error) {
	req := j.Req
	if req.Stream != nil {
		return s.executeStreaming(ctx, j)
	}
	wkey := req.WorkloadKey()
	tr, err := s.cache.Trace(ctx, wkey, req.BuildTrace)
	if err != nil {
		return nil, fmt.Errorf("build trace: %w", err)
	}
	ch, err := s.cache.Characterization(ctx, wkey, func() (*megsim.Characterization, error) {
		return megsim.Characterize(tr)
	})
	if err != nil {
		return nil, fmt.Errorf("characterize: %w", err)
	}
	cfg := req.MegsimConfig()
	sel, err := megsim.SelectFrames(ch, cfg)
	if err != nil {
		return nil, fmt.Errorf("select frames: %w", err)
	}
	gpu, err := req.GPUConfig()
	if err != nil {
		return nil, err
	}
	fp := megsim.RunFingerprint(tr, gpu)
	inner := megsim.FrameRunner(tr, gpu)
	if s.cfg.Dispatcher != nil {
		inner = s.cfg.Dispatcher.FrameRunner(fp, req)
	}
	fn := s.cache.FrameRunner(fp, inner)

	jobReg := obs.NewWith(obs.Options{TraceCapacity: -1})
	rcfg := req.ResilienceConfig()
	rcfg.Obs = jobReg
	rcfg.Fingerprint = fp
	if s.cfg.CheckpointDir != "" {
		rcfg.CheckpointPath = filepath.Join(s.cfg.CheckpointDir, j.Fingerprint+".ckpt")
		rcfg.Resume = true // a missing checkpoint is a clean fresh start
	}
	rcfg.Log = s.cfg.Log

	start := time.Now()
	s.executed.Inc()
	rrun, err := megsim.SampleResilientPrepared(ctx, tr, ch, sel, gpu, rcfg, fn)
	// Fold whatever the job recorded — even a cancelled run's completed
	// frames — into the service registry for /metrics.
	s.reg.Merge(jobReg)
	if err != nil {
		return nil, err
	}
	return NewCampaignReport(rrun, time.Since(start)), nil
}

// SubmitResponse answers POST /api/v1/campaigns.
type SubmitResponse struct {
	JobID       string   `json:"job_id"`
	Fingerprint string   `json:"fingerprint"`
	State       JobState `json:"state"`
	// Deduped is true when the submission attached to an existing job
	// with the same campaign fingerprint instead of enqueuing a new one.
	Deduped bool `json:"deduped"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	if s.tenants != nil {
		tenant := r.Header.Get(TenantHeader)
		if ok, retry := s.tenants.Admit(tenant); !ok {
			s.throttled.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("tenant %q over its submission rate; retry later", tenant))
			return
		}
	}
	req, err := DecodeCampaignRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.submitted.Inc()
	fp := req.Fingerprint()
	j, fresh := s.store.Submit(req, fp, time.Now())
	if !fresh {
		s.deduped.Inc()
		writeJSON(w, http.StatusOK, SubmitResponse{JobID: j.ID, Fingerprint: fp, State: j.State(), Deduped: true})
		return
	}
	if !s.queue.TryEnqueue(j) {
		s.store.Remove(j)
		s.rejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.queue.Depth(), s.queue.Capacity(), fp)))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("admission queue full (capacity %d); retry later", s.queue.Capacity()))
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{JobID: j.ID, Fingerprint: fp, State: j.State()})
}

// retryAfterSeconds derives the 429 Retry-After from queue pressure: a
// base that grows with depth/capacity (an emptier queue invites a
// quicker retry) plus a small deterministic jitter keyed on the
// campaign fingerprint, so a herd of synchronized clients rejected in
// the same instant spreads its retries instead of re-stampeding. Pure
// function of its inputs — the same rejection always gets the same
// advice.
func retryAfterSeconds(depth, capacity int, key string) int {
	if capacity <= 0 {
		capacity = 1
	}
	if depth < 0 {
		depth = 0
	}
	base := 1 + (4*depth)/capacity // 1s empty .. 5s full
	h := fnv.New32a()
	h.Write([]byte(key))
	return base + int(h.Sum32()%3) // +0..2s spread per campaign
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	buf, ok := j.Result()
	if !ok {
		st := j.Status()
		msg := fmt.Sprintf("job is %s", st.State)
		if st.Error != "" {
			msg += ": " + st.Error
		}
		writeError(w, http.StatusConflict, msg)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf)
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.store.List()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics exports the merged observability registry — every
// completed job's simulator and supervisor counters — in Prometheus
// text format, plus the service's live gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := s.reg.Snapshot()
	if err := snap.WritePrometheus(w); err != nil {
		return
	}
	gauge := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, v)
	}
	gauge("megsimd_queue_depth", int64(s.queue.Depth()))
	gauge("megsimd_queue_capacity", int64(s.queue.Capacity()))
	gauge("megsimd_inflight_jobs", s.inflight.Load())
	draining := int64(0)
	if s.draining.Load() {
		draining = 1
	}
	gauge("megsimd_draining", draining)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"draining": s.draining.Load(),
	})
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format+"\n", args...)
	}
}

// marshalReport renders the report bytes stored on the job — rendered
// once, served identically to every caller.
func marshalReport(rep *CampaignReport) ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
