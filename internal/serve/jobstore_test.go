package serve

import (
	"testing"
	"time"
)

func TestStoreDedupAndRetry(t *testing.T) {
	st := NewStore()
	req := &CampaignRequest{}

	j1, fresh := st.Submit(req, "cmp-a", time.Time{})
	if !fresh {
		t.Fatal("first submission not fresh")
	}
	if j2, fresh := st.Submit(req, "cmp-a", time.Time{}); fresh || j2 != j1 {
		t.Fatal("queued job not deduplicated")
	}
	j1.setRunning()
	if j2, fresh := st.Submit(req, "cmp-a", time.Time{}); fresh || j2 != j1 {
		t.Fatal("running job not deduplicated")
	}

	select {
	case <-j1.Done():
		t.Fatal("Done closed before completion")
	default:
	}
	j1.complete(&CampaignReport{Cycles: 7}, []byte("bytes"))
	select {
	case <-j1.Done():
	default:
		t.Fatal("Done not closed after completion")
	}
	if rep, ok := j1.Report(); !ok || rep.Cycles != 7 {
		t.Fatal("Report missing after completion")
	}
	// Terminal states are final: a late failure must not overwrite.
	j1.fail(JobFailed, "too late")
	if st := j1.State(); st != JobSucceeded {
		t.Fatalf("terminal state overwritten: %s", st)
	}
	if j2, fresh := st.Submit(req, "cmp-a", time.Time{}); fresh || j2 != j1 {
		t.Fatal("succeeded job not reused as cached result")
	}

	// Failed and interrupted jobs are replaced on resubmission.
	jf, _ := st.Submit(req, "cmp-b", time.Time{})
	jf.fail(JobFailed, "boom")
	if _, ok := jf.Report(); ok {
		t.Fatal("failed job has a report")
	}
	jf2, fresh := st.Submit(req, "cmp-b", time.Time{})
	if !fresh || jf2 == jf {
		t.Fatal("failed job was not replaced")
	}
	ji, _ := st.Submit(req, "cmp-c", time.Time{})
	ji.fail(JobInterrupted, "drained")
	if ji2, fresh := st.Submit(req, "cmp-c", time.Time{}); !fresh || ji2 == ji {
		t.Fatal("interrupted job was not replaced")
	}

	// Remove rolls back a rejected admission without disturbing the
	// job that owns the fingerprint now.
	st.Remove(jf2)
	if _, ok := st.Get(jf2.ID); ok {
		t.Fatal("removed job still listed")
	}
	st.Remove(jf) // stale pointer: must not evict jf2's successor mapping
	if _, ok := st.Get(j1.ID); !ok {
		t.Fatal("unrelated job lost")
	}

	list := st.List()
	for i := 1; i < len(list); i++ {
		if list[i-1].ID >= list[i].ID {
			t.Fatal("List not sorted by ID")
		}
	}
}
