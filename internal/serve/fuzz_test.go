package serve

import (
	"strings"
	"testing"
)

// FuzzDecodeCampaignRequest hammers the admission decoder: whatever the
// body — malformed JSON, absurd sizes, non-finite numbers, unknown
// fields, trailing garbage — decoding must either return an error (the
// server answers 400) or yield a request that is safe to hash, resolve
// and re-validate. Nothing may panic.
func FuzzDecodeCampaignRequest(f *testing.F) {
	seeds := []string{
		minimalCampaign,
		serviceCampaignBody(2, ""),
		`{"workload":{"random_seed":42}}`,
		`{"workload":{"random_seed":18446744073709551615}}`,
		`{"workload":{"benchmark":"asp","width":64,"height":32},"threshold":0.5,"seed":9,` +
			`"gpu":{"preset":"tbdr","tbdr":true,"tile_workers":8},` +
			`"resilience":{"retries":3,"quarantine":[5,1,5],"stall_timeout_ms":250}}`,
		``,
		`{`,
		`null`,
		`[]`,
		`"campaign"`,
		`{"workload":{}}`,
		`{"workload":{"benchmark":"hcr"},"bogus":true}`,
		minimalCampaign + `{"x":1}`,
		`{"workload":{"benchmark":"hcr"},"threshold":1e999}`,
		`{"workload":{"benchmark":"hcr"},"threshold":-0.0001}`,
		`{"workload":{"benchmark":"hcr","width":2147483647,"height":2147483647}}`,
		`{"workload":{"benchmark":"hcr","frame_div":-9223372036854775808}}`,
		`{"workload":{"benchmark":"` + strings.Repeat("a", 4096) + `"}}`,
		`{"workload":{"benchmark":"hcr"},"resilience":{"quarantine":[-1,0,1]}}`,
		`{"workload":{"benchmark":"hcr"},"gpu":{"tile_workers":99999}}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeCampaignRequest(strings.NewReader(body))
		if err != nil {
			if req != nil {
				t.Fatal("error with non-nil request")
			}
			return
		}
		// An accepted request must round-trip every resolver without
		// panicking, and must still pass its own validation.
		if err := req.Validate(); err != nil {
			t.Fatalf("decoded request fails revalidation: %v", err)
		}
		if fp := req.Fingerprint(); !strings.HasPrefix(fp, "cmp-") {
			t.Fatalf("malformed fingerprint %q", fp)
		}
		if wk := req.WorkloadKey(); !strings.HasPrefix(wk, "wl-") {
			t.Fatalf("malformed workload key %q", wk)
		}
		if _, err := req.GPUConfig(); err != nil {
			t.Fatalf("validated request has unusable GPU config: %v", err)
		}
		_ = req.MegsimConfig()
		_ = req.ResilienceConfig()
	})
}
