package serve

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/gltrace"
	"repro/internal/obs"
	"repro/internal/tbr"
	"repro/megsim"
)

// Cache is the service's content-addressed result cache. It holds three
// layers, each keyed by a hash of everything that determines the value:
//
//   - traces by WorkloadKey (the generators are pure functions of the
//     resolved spec, so a trace is shared by every campaign naming it);
//   - characterizations by WorkloadKey (MEGsim's cheap pass depends on
//     the trace alone — campaigns with different GPU or clustering
//     settings still share it);
//   - per-representative FrameStats by (megsim.RunFingerprint, frame) —
//     frame isolation makes a representative's statistics a pure
//     function of (trace, result-affecting GPU config, frame), so
//     campaigns that select overlapping representatives (different
//     thresholds or seeds over the same workload) skip re-simulating
//     the shared ones.
//
// Every layer is singleflight-deduplicated: concurrent misses on one
// key run the builder once and share the value (and error), so a burst
// of identical submissions costs one simulation. Errors are never
// cached — the next caller retries.
//
// Hits and misses are counted into the service registry
// (serve.cache.{trace,char,frame}.{hit,miss}); a caller that joined an
// in-flight build counts as a hit (it paid nothing).
type Cache struct {
	mu      sync.Mutex
	traces  *fifoMap[*gltrace.Trace]
	chars   *fifoMap[*megsim.Characterization]
	frames  *fifoMap[tbr.FrameStats]
	flights map[string]*flight

	traceHit, traceMiss *obs.Counter
	charHit, charMiss   *obs.Counter
	frameHit, frameMiss *obs.Counter
}

// Default cache capacities (entries, FIFO-evicted).
const (
	DefaultMaxWorkloads = 32
	DefaultMaxFrames    = 4096
)

// NewCache builds a cache recording hit/miss counters into reg.
// maxFrames bounds the FrameStats layer (0 = DefaultMaxFrames); the
// trace and characterization layers hold DefaultMaxWorkloads entries.
func NewCache(reg *obs.Registry, maxFrames int) *Cache {
	if maxFrames <= 0 {
		maxFrames = DefaultMaxFrames
	}
	return &Cache{
		traces:    newFifoMap[*gltrace.Trace](DefaultMaxWorkloads),
		chars:     newFifoMap[*megsim.Characterization](DefaultMaxWorkloads),
		frames:    newFifoMap[tbr.FrameStats](maxFrames),
		flights:   map[string]*flight{},
		traceHit:  reg.Counter("serve.cache.trace.hit"),
		traceMiss: reg.Counter("serve.cache.trace.miss"),
		charHit:   reg.Counter("serve.cache.char.hit"),
		charMiss:  reg.Counter("serve.cache.char.miss"),
		frameHit:  reg.Counter("serve.cache.frame.hit"),
		frameMiss: reg.Counter("serve.cache.frame.miss"),
	}
}

// Trace returns the cached trace for key, building (once, shared) on a
// miss. ctx bounds only the wait on another caller's in-flight build.
func (c *Cache) Trace(ctx context.Context, key string, build func() (*gltrace.Trace, error)) (*gltrace.Trace, error) {
	return cacheGet(ctx, c, c.traces, "trace:"+key, c.traceHit, c.traceMiss, build)
}

// Characterization returns the cached functional characterization for
// key, building (once, shared) on a miss.
func (c *Cache) Characterization(ctx context.Context, key string, build func() (*megsim.Characterization, error)) (*megsim.Characterization, error) {
	return cacheGet(ctx, c, c.chars, "char:"+key, c.charHit, c.charMiss, build)
}

// FrameRunner wraps a frame function with the per-representative
// result cache under run fingerprint fp: hits return the cached
// statistics without simulating (the supervisor still checkpoints and
// counts them); misses simulate via fn and populate the cache. The
// wrapped function stays pure per frame — exactly fn's contract — so
// SampleResilientPrepared's guarantees are unchanged. A cache-hit
// frame records no observability delta (there was no simulation);
// service-level metrics account for the hit instead.
func (c *Cache) FrameRunner(fp string, fn megsim.ResilientFrameFunc) megsim.ResilientFrameFunc {
	return func(ctx context.Context, frame int, reg *obs.Registry) (tbr.FrameStats, error) {
		key := fmt.Sprintf("frame:%s#%d", fp, frame)
		return cacheGet(ctx, c, c.frames, key, c.frameHit, c.frameMiss, func() (tbr.FrameStats, error) {
			return fn(ctx, frame, reg)
		})
	}
}

// cacheGet is the shared lookup-or-build path: map hit, else join or
// start the singleflight. A joiner waits for the builder (or its own
// ctx — the builder runs under a different job's context, and one
// job's cancellation must not strand another).
func cacheGet[V any](ctx context.Context, c *Cache, m *fifoMap[V], key string, hit, miss *obs.Counter, build func() (V, error)) (V, error) {
	var zero V
	c.mu.Lock()
	if v, ok := m.get(key); ok {
		c.mu.Unlock()
		hit.Inc()
		return v, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			return zero, ctx.Err()
		case <-f.done:
		}
		if f.err == nil {
			hit.Inc()
			return f.val.(V), nil
		}
		return zero, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	miss.Inc()
	v, err := build()
	c.mu.Lock()
	if err == nil {
		m.put(key, v)
	}
	delete(c.flights, key)
	c.mu.Unlock()
	f.val, f.err = v, err
	close(f.done)
	return v, err
}

// flight is one in-progress build shared by concurrent callers.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// fifoMap is a bounded map with first-in-first-out eviction — enough
// for a result cache whose entries are equally cheap to rebuild.
// Callers synchronize access (Cache.mu).
type fifoMap[V any] struct {
	cap   int
	m     map[string]V
	order []string
}

func newFifoMap[V any](cap int) *fifoMap[V] {
	return &fifoMap[V]{cap: cap, m: make(map[string]V, cap)}
}

func (f *fifoMap[V]) get(key string) (V, bool) {
	v, ok := f.m[key]
	return v, ok
}

func (f *fifoMap[V]) put(key string, v V) {
	if _, ok := f.m[key]; !ok {
		for len(f.m) >= f.cap && len(f.order) > 0 {
			oldest := f.order[0]
			f.order = f.order[1:]
			delete(f.m, oldest)
		}
		f.order = append(f.order, key)
	}
	f.m[key] = v
}

func (f *fifoMap[V]) len() int { return len(f.m) }
