package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/gltrace"
	"repro/internal/obs"
	"repro/internal/tbr"
)

func testCache() *Cache {
	return NewCache(obs.NewWith(obs.Options{TraceCapacity: -1}), 0)
}

func TestCacheSingleflight(t *testing.T) {
	c := testCache()
	ctx := context.Background()

	var builds atomic.Int64
	gate := make(chan struct{})
	build := func() (*gltrace.Trace, error) {
		builds.Add(1)
		<-gate // hold every concurrent caller in one flight
		return &gltrace.Trace{Name: "shared"}, nil
	}

	const N = 8
	results := make([]*gltrace.Trace, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := c.Trace(ctx, "k", build)
			if err != nil {
				t.Errorf("Trace: %v", err)
			}
			results[i] = tr
		}(i)
	}
	// Wait for the flight to start, then release the builder. Late
	// joiners that arrive after completion get plain map hits — either
	// way the builder must have run exactly once.
	for builds.Load() == 0 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("builder ran %d times, want 1", got)
	}
	for i := 1; i < N; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent callers got different values")
		}
	}
	snap := c.traceHit.Value() + c.traceMiss.Value()
	if snap != N || c.traceMiss.Value() != 1 {
		t.Fatalf("hit/miss accounting: hit=%d miss=%d, want %d/1", c.traceHit.Value(), c.traceMiss.Value(), N-1)
	}

	// Now a plain map hit.
	if _, err := c.Trace(ctx, "k", func() (*gltrace.Trace, error) {
		t.Fatal("builder ran on a cached key")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := testCache()
	ctx := context.Background()
	boom := errors.New("boom")
	calls := 0
	build := func() (*gltrace.Trace, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return &gltrace.Trace{Name: "ok"}, nil
	}
	if _, err := c.Trace(ctx, "k", build); !errors.Is(err, boom) {
		t.Fatalf("first call: err = %v, want boom", err)
	}
	tr, err := c.Trace(ctx, "k", build)
	if err != nil || tr.Name != "ok" {
		t.Fatalf("retry after error: %v %v", tr, err)
	}
	if calls != 2 {
		t.Fatalf("builder ran %d times, want 2 (errors must not cache)", calls)
	}
}

func TestCacheJoinerRespectsContext(t *testing.T) {
	c := testCache()
	gate := make(chan struct{})
	started := make(chan struct{})
	go func() {
		c.Trace(context.Background(), "k", func() (*gltrace.Trace, error) {
			close(started)
			<-gate
			return &gltrace.Trace{Name: "slow"}, nil
		})
	}()
	<-started

	// A second job joining the flight is cancelled: it must unblock with
	// its own context error, not wait for the other job's build.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Trace(ctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled joiner: err = %v, want context.Canceled", err)
	}
	close(gate)
}

func TestFifoMapEviction(t *testing.T) {
	m := newFifoMap[int](2)
	m.put("a", 1)
	m.put("b", 2)
	m.put("a", 10) // overwrite must not count as a new entry
	if m.len() != 2 {
		t.Fatalf("len = %d, want 2", m.len())
	}
	m.put("c", 3)
	if m.len() != 2 {
		t.Fatalf("len after eviction = %d, want 2", m.len())
	}
	if _, ok := m.get("a"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if v, ok := m.get("c"); !ok || v != 3 {
		t.Fatal("newest entry missing")
	}
	if v, ok := m.get("b"); !ok || v != 2 {
		t.Fatal("middle entry missing")
	}
}

func TestCacheFrameLayerBounded(t *testing.T) {
	reg := obs.NewWith(obs.Options{TraceCapacity: -1})
	c := NewCache(reg, 4)
	fn := c.FrameRunner("fp", func(ctx context.Context, frame int, reg *obs.Registry) (tbr.FrameStats, error) {
		return tbr.FrameStats{}, nil
	})
	ctx := context.Background()
	for f := 0; f < 10; f++ {
		if _, err := fn(ctx, f, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.frames.len(); got != 4 {
		t.Fatalf("frame cache holds %d entries, want bound 4", got)
	}
	if c.frameMiss.Value() != 10 {
		t.Fatalf("misses = %d, want 10", c.frameMiss.Value())
	}
	// Re-running the newest frame hits; the evicted oldest misses again.
	if _, err := fn(ctx, 9, nil); err != nil {
		t.Fatal(err)
	}
	if c.frameHit.Value() != 1 {
		t.Fatalf("hits = %d, want 1", c.frameHit.Value())
	}
	if _, err := fn(ctx, 0, nil); err != nil {
		t.Fatal(err)
	}
	if c.frameMiss.Value() != 11 {
		t.Fatalf("misses = %d, want 11 after eviction", c.frameMiss.Value())
	}
}

// Ensure distinct run fingerprints never share frame entries.
func TestCacheFrameKeyIncludesFingerprint(t *testing.T) {
	c := testCache()
	runs := map[string]int{}
	mk := func(fp string) func(context.Context, int, *obs.Registry) (tbr.FrameStats, error) {
		return func(ctx context.Context, frame int, reg *obs.Registry) (tbr.FrameStats, error) {
			runs[fmt.Sprintf("%s#%d", fp, frame)]++
			return tbr.FrameStats{}, nil
		}
	}
	ctx := context.Background()
	a := c.FrameRunner("fpA", mk("fpA"))
	b := c.FrameRunner("fpB", mk("fpB"))
	a(ctx, 1, nil)
	b(ctx, 1, nil)
	a(ctx, 1, nil)
	if runs["fpA#1"] != 1 || runs["fpB#1"] != 1 {
		t.Fatalf("frame cache crossed fingerprints: %v", runs)
	}
}
