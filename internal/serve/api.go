package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/gltrace"
	"repro/internal/workload"
	"repro/megsim"
)

// Request limits. Campaigns are small JSON documents; anything past
// these bounds is rejected at admission (HTTP 400), never simulated.
const (
	// MaxRequestBytes bounds the request body.
	MaxRequestBytes = 1 << 20
	// maxDim bounds the render-target edge in pixels.
	maxDim = 4096
	// maxPixels bounds width*height.
	maxPixels = 1 << 22
	// maxDivisor bounds the frame/detail divisors.
	maxDivisor = 1 << 20
	// maxTileWorkers bounds the per-frame tile pool.
	maxTileWorkers = 1024
	// maxRetries bounds per-frame attempts.
	maxRetries = 100
	// maxQuarantine bounds the pre-quarantine list length.
	maxQuarantine = 10000
	// maxStallTimeout bounds the watchdog timeout.
	maxStallTimeout = int64(time.Hour / time.Millisecond)
	// maxStreamStrata bounds the streaming stratum budget.
	maxStreamStrata = 1024
	// maxStreamReservoir bounds the per-stratum reservoir capacity.
	maxStreamReservoir = 256
)

// WorkloadSpec names the campaign's workload: exactly one of a Table II
// benchmark alias or a seed for workload.RandomProfile, plus optional
// scale overrides (zero fields inherit workload.DefaultScale — the same
// defaults the megsim CLI runs under).
type WorkloadSpec struct {
	// Benchmark is a Table II alias (asp, bbr1, hcr, ...).
	Benchmark string `json:"benchmark,omitempty"`
	// RandomSeed selects a seed-derived workload.RandomProfile instead
	// of a named benchmark.
	RandomSeed *uint64 `json:"random_seed,omitempty"`
	// Width, Height override the render-target size in pixels.
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
	// FrameDiv, DetailDiv divide sequence length / per-frame detail.
	FrameDiv  int `json:"frame_div,omitempty"`
	DetailDiv int `json:"detail_div,omitempty"`
}

// GPUSpec selects the timing-simulator configuration: a named preset
// (empty = the Table I default) plus the same toggles the CLI exposes.
type GPUSpec struct {
	// Preset is a tbr preset name (mali450, lowend, highend, tbdr);
	// empty selects the Table I default configuration.
	Preset string `json:"preset,omitempty"`
	// TBDR enables PowerVR-style hidden surface removal.
	TBDR bool `json:"tbdr,omitempty"`
	// TileWorkers sets the tile-parallel raster pool. Any value >= 1 is
	// byte-identical to 1 (only wall clock changes), so it is
	// normalized out of the campaign fingerprint.
	TileWorkers int `json:"tile_workers,omitempty"`
}

// ResilienceSpec carries the per-job supervisor options. Only
// Quarantine affects results (and thus the campaign fingerprint);
// retries and the watchdog shape execution, not outcomes.
type ResilienceSpec struct {
	// Retries is the attempts per frame before quarantine (0 = default).
	Retries int `json:"retries,omitempty"`
	// Quarantine pre-quarantines frames (routes around known-bad ones).
	Quarantine []int `json:"quarantine,omitempty"`
	// StallTimeoutMS arms the stalled-worker watchdog (0 = off).
	StallTimeoutMS int64 `json:"stall_timeout_ms,omitempty"`
}

// StreamSpec switches a campaign to streaming mode: the online
// bounded-memory stratifier replaces batch characterization and k-means
// selection. Zero-valued fields resolve to megsim.DefaultStreamConfig.
type StreamSpec struct {
	// MaxStrata is the stratum budget (0 = default).
	MaxStrata int `json:"max_strata,omitempty"`
	// ReservoirCap is the per-stratum candidate reservoir capacity
	// (0 = default).
	ReservoirCap int `json:"reservoir_cap,omitempty"`
	// EagerEvery launches representative simulations mid-stream every
	// this many ingested frames (0 = phase boundary only). Eager runs
	// shape execution, never results, so this never enters the
	// campaign fingerprint.
	EagerEvery int `json:"eager_every,omitempty"`
}

// CampaignRequest is the job-submission document POSTed to
// /api/v1/campaigns. Zero-valued fields resolve to the same defaults
// the megsim CLI uses, and the campaign fingerprint is computed over
// the resolved values — so an explicit default and an omitted field
// address the same cached result.
type CampaignRequest struct {
	Workload   WorkloadSpec   `json:"workload"`
	Threshold  float64        `json:"threshold,omitempty"`
	Seed       uint64         `json:"seed,omitempty"`
	GPU        GPUSpec        `json:"gpu,omitempty"`
	Resilience ResilienceSpec `json:"resilience,omitempty"`
	// Stream, when present, runs the campaign in streaming mode (and is
	// the request document a chunked-upload stream session opens with).
	Stream *StreamSpec `json:"stream,omitempty"`
}

// DecodeCampaignRequest reads, decodes and validates one campaign
// request. Every failure — malformed JSON, unknown fields, trailing
// garbage, absurd sizes, non-finite numbers, unknown benchmark or GPU
// preset — returns an error (the server answers 400); no input panics.
func DecodeCampaignRequest(r io.Reader) (*CampaignRequest, error) {
	body, err := io.ReadAll(io.LimitReader(r, MaxRequestBytes+1))
	if err != nil {
		return nil, fmt.Errorf("decode campaign: %w", err)
	}
	if len(body) > MaxRequestBytes {
		return nil, fmt.Errorf("decode campaign: body exceeds %d bytes", MaxRequestBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	req := &CampaignRequest{}
	if err := dec.Decode(req); err != nil {
		return nil, fmt.Errorf("decode campaign: %w", err)
	}
	if dec.More() {
		return nil, errors.New("decode campaign: trailing data after request")
	}
	if err := req.Validate(); err != nil {
		return nil, fmt.Errorf("invalid campaign: %w", err)
	}
	return req, nil
}

// Validate bounds-checks the request without doing any heavy work.
func (c *CampaignRequest) Validate() error {
	w := &c.Workload
	switch {
	case w.Benchmark == "" && w.RandomSeed == nil:
		return errors.New("workload: need benchmark or random_seed")
	case w.Benchmark != "" && w.RandomSeed != nil:
		return errors.New("workload: benchmark and random_seed are exclusive")
	case w.Benchmark != "":
		if _, err := workload.Get(w.Benchmark); err != nil {
			return err // already carries the "workload:" prefix
		}
	}
	if w.Width < 0 || w.Width > maxDim || w.Height < 0 || w.Height > maxDim {
		return fmt.Errorf("workload: dimensions %dx%d out of [0, %d]", w.Width, w.Height, maxDim)
	}
	if w.Width*w.Height > maxPixels {
		return fmt.Errorf("workload: %dx%d exceeds %d pixels", w.Width, w.Height, maxPixels)
	}
	if w.FrameDiv < 0 || w.FrameDiv > maxDivisor || w.DetailDiv < 0 || w.DetailDiv > maxDivisor {
		return fmt.Errorf("workload: divisors out of [0, %d]", maxDivisor)
	}
	if math.IsNaN(c.Threshold) || math.IsInf(c.Threshold, 0) || c.Threshold < 0 || c.Threshold > 1 {
		return fmt.Errorf("threshold %v out of (0, 1] (0 = default)", c.Threshold)
	}
	if c.GPU.Preset != "" {
		if _, err := megsim.GPUPreset(c.GPU.Preset); err != nil {
			return fmt.Errorf("gpu: %w", err)
		}
	}
	if c.GPU.TileWorkers < 0 || c.GPU.TileWorkers > maxTileWorkers {
		return fmt.Errorf("gpu: tile_workers %d out of [0, %d]", c.GPU.TileWorkers, maxTileWorkers)
	}
	r := &c.Resilience
	if r.Retries < 0 || r.Retries > maxRetries {
		return fmt.Errorf("resilience: retries %d out of [0, %d]", r.Retries, maxRetries)
	}
	if len(r.Quarantine) > maxQuarantine {
		return fmt.Errorf("resilience: quarantine list longer than %d", maxQuarantine)
	}
	for _, f := range r.Quarantine {
		if f < 0 {
			return fmt.Errorf("resilience: negative quarantined frame %d", f)
		}
	}
	if r.StallTimeoutMS < 0 || r.StallTimeoutMS > maxStallTimeout {
		return fmt.Errorf("resilience: stall_timeout_ms %d out of [0, %d]", r.StallTimeoutMS, maxStallTimeout)
	}
	if st := c.Stream; st != nil {
		if st.MaxStrata < 0 || st.MaxStrata > maxStreamStrata {
			return fmt.Errorf("stream: max_strata %d out of [0, %d]", st.MaxStrata, maxStreamStrata)
		}
		if st.ReservoirCap < 0 || st.ReservoirCap > maxStreamReservoir {
			return fmt.Errorf("stream: reservoir_cap %d out of [0, %d]", st.ReservoirCap, maxStreamReservoir)
		}
		if st.EagerEvery < 0 || st.EagerEvery > maxDivisor {
			return fmt.Errorf("stream: eager_every %d out of [0, %d]", st.EagerEvery, maxDivisor)
		}
	}
	return nil
}

// resolvedWorkload is the workload spec with every default applied —
// the canonical form the workload key hashes.
type resolvedWorkload struct {
	Benchmark  string  `json:"benchmark,omitempty"`
	RandomSeed *uint64 `json:"random_seed,omitempty"`
	Scale      workload.Scale
}

func (c *CampaignRequest) resolveWorkload() resolvedWorkload {
	sc := workload.DefaultScale
	w := c.Workload
	if w.Width > 0 {
		sc.Width = w.Width
	}
	if w.Height > 0 {
		sc.Height = w.Height
	}
	if w.FrameDiv > 0 {
		sc.FrameDivisor = w.FrameDiv
	}
	if w.DetailDiv > 0 {
		sc.DetailDivisor = w.DetailDiv
	}
	return resolvedWorkload{Benchmark: w.Benchmark, RandomSeed: w.RandomSeed, Scale: sc}
}

// WorkloadKey content-addresses the resolved workload: campaigns that
// generate the identical trace share one characterization, whatever
// GPU or methodology settings they run under.
func (c *CampaignRequest) WorkloadKey() string {
	return hashKey("wl", c.resolveWorkload())
}

// Fingerprint content-addresses the campaign's result: the resolved
// workload, methodology settings, the result-affecting GPU settings
// (tile_workers normalized — every count >= 1 is byte-identical) and
// the sorted pre-quarantine set. Two requests with equal fingerprints
// are guaranteed the identical report, so the service deduplicates and
// caches on this key. Execution-shaping knobs (retries, watchdog)
// never enter the hash.
func (c *CampaignRequest) Fingerprint() string {
	tw := c.GPU.TileWorkers
	if tw > 1 {
		tw = 1
	}
	quarantine := append([]int(nil), c.Resilience.Quarantine...)
	sort.Ints(quarantine)
	if c.Stream != nil {
		return c.streamFingerprint(tw, quarantine, 0)
	}
	return hashKey("cmp", struct {
		Workload   resolvedWorkload
		Threshold  float64
		Seed       uint64
		Preset     string
		TBDR       bool
		TileW      int
		Quarantine []int
	}{c.resolveWorkload(), c.threshold(), c.seed(), c.GPU.Preset, c.GPU.TBDR, tw, quarantine})
}

// streamFingerprint content-addresses a streaming campaign under its
// own prefix: the resolved stream budget and seed replace the batch
// search threshold, and frames > 0 records a stream truncated at that
// frame (a chunked-upload session that finished early). EagerEvery is
// execution-shaping and excluded — eager and lazy runs are
// byte-identical.
func (c *CampaignRequest) streamFingerprint(tw int, quarantine []int, frames int) string {
	scfg := c.StreamConfig()
	return hashKey("smc", struct {
		Workload     resolvedWorkload
		Seed         uint64
		MaxStrata    int
		ReservoirCap int
		Frames       int `json:",omitempty"`
		Preset       string
		TBDR         bool
		TileW        int
		Quarantine   []int
	}{c.resolveWorkload(), scfg.Seed, scfg.MaxStrata, scfg.ReservoirCap, frames, c.GPU.Preset, c.GPU.TBDR, tw, quarantine})
}

// StreamFingerprint is Fingerprint for a stream session that ingested
// exactly frames frames before finishing (0 = the whole workload, which
// equals Fingerprint for a streaming request).
func (c *CampaignRequest) StreamFingerprint(frames int) string {
	tw := c.GPU.TileWorkers
	if tw > 1 {
		tw = 1
	}
	quarantine := append([]int(nil), c.Resilience.Quarantine...)
	sort.Ints(quarantine)
	return c.streamFingerprint(tw, quarantine, frames)
}

// StreamConfig resolves the streaming stratifier configuration (the
// campaign seed doubles as the reservoir-priority seed).
func (c *CampaignRequest) StreamConfig() megsim.StreamConfig {
	scfg := megsim.DefaultStreamConfig()
	scfg.Seed = c.seed()
	if c.Stream != nil {
		if c.Stream.MaxStrata > 0 {
			scfg.MaxStrata = c.Stream.MaxStrata
		}
		if c.Stream.ReservoirCap > 0 {
			scfg.ReservoirCap = c.Stream.ReservoirCap
		}
	}
	return scfg
}

// hashKey hashes a canonical JSON encoding under a short prefix.
func hashKey(prefix string, v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// All hashed values are plain data; failure is a programming error.
		panic(fmt.Sprintf("serve: hash key: %v", err))
	}
	sum := sha256.Sum256(b)
	return prefix + "-" + hex.EncodeToString(sum[:12])
}

func (c *CampaignRequest) threshold() float64 {
	if c.Threshold == 0 {
		return megsim.DefaultConfig().Search.Threshold
	}
	return c.Threshold
}

func (c *CampaignRequest) seed() uint64 {
	if c.Seed == 0 {
		return megsim.DefaultConfig().Seed
	}
	return c.Seed
}

// BuildTrace synthesizes the campaign's workload trace (deterministic
// in the resolved spec; the service caches the result by WorkloadKey).
func (c *CampaignRequest) BuildTrace() (*gltrace.Trace, error) {
	rw := c.resolveWorkload()
	var p workload.Profile
	if rw.Benchmark != "" {
		got, err := workload.Get(rw.Benchmark)
		if err != nil {
			return nil, err
		}
		p = got
	} else {
		p = workload.RandomProfile(*rw.RandomSeed)
	}
	return workload.Generate(p, rw.Scale)
}

// MegsimConfig resolves the methodology configuration.
func (c *CampaignRequest) MegsimConfig() megsim.Config {
	cfg := megsim.DefaultConfig()
	cfg.Search.Threshold = c.threshold()
	cfg.Seed = c.seed()
	return cfg
}

// GPUConfig resolves the timing-simulator configuration.
func (c *CampaignRequest) GPUConfig() (megsim.GPUConfig, error) {
	gpu := megsim.DefaultGPUConfig()
	if c.GPU.Preset != "" {
		got, err := megsim.GPUPreset(c.GPU.Preset)
		if err != nil {
			return gpu, err
		}
		gpu = got
	}
	if c.GPU.TBDR {
		gpu.DeferredShading = true
	}
	gpu.TileWorkers = c.GPU.TileWorkers
	return gpu, nil
}

// ResilienceConfig resolves the per-job supervisor configuration (the
// server fills in checkpointing and observability).
func (c *CampaignRequest) ResilienceConfig() megsim.ResilienceConfig {
	return megsim.ResilienceConfig{
		MaxAttempts:  c.Resilience.Retries,
		Quarantine:   append([]int(nil), c.Resilience.Quarantine...),
		StallTimeout: time.Duration(c.Resilience.StallTimeoutMS) * time.Millisecond,
	}
}
