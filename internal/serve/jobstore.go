package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// JobState is a job's lifecycle position.
type JobState string

const (
	// JobQueued: admitted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: a worker is executing the campaign.
	JobRunning JobState = "running"
	// JobSucceeded: the report is ready.
	JobSucceeded JobState = "succeeded"
	// JobFailed: the campaign errored; resubmitting retries it.
	JobFailed JobState = "failed"
	// JobInterrupted: the service drained mid-run; progress is
	// checkpointed, and resubmitting the identical campaign resumes it.
	JobInterrupted JobState = "interrupted"
)

// terminal reports whether the state can never change again.
func (s JobState) terminal() bool {
	return s == JobSucceeded || s == JobFailed || s == JobInterrupted
}

// Job is one admitted campaign. The submission's fingerprint is the
// job's identity for deduplication: concurrent identical submissions
// attach to one Job, and every client polling it reads the same
// rendered report bytes.
type Job struct {
	// ID is the service-assigned job identifier.
	ID string
	// Fingerprint is the campaign's content address.
	Fingerprint string
	// Req is the validated request.
	Req *CampaignRequest
	// Submitted is the admission time.
	Submitted time.Time
	// StreamSnapshot seeds a streaming job with a chunked-upload
	// session's strata snapshot (nil for direct submissions). Written
	// before the job is enqueued, read by the claiming worker.
	StreamSnapshot []byte
	// StreamMaxFrames truncates a streaming job's replay to the frames
	// the session actually ingested (0 = the whole workload).
	StreamMaxFrames int

	mu         sync.Mutex
	state      JobState
	errMsg     string
	report     *CampaignReport
	reportJSON []byte
	done       chan struct{}
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == JobQueued {
		j.state = JobRunning
	}
}

// complete stores the report and its rendered bytes and marks success.
func (j *Job) complete(rep *CampaignReport, rendered []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.state = JobSucceeded
	j.report = rep
	j.reportJSON = rendered
	close(j.done)
}

// fail marks the job failed (or interrupted when the service was
// draining — the distinction tells clients whether resubmitting will
// resume from a checkpoint).
func (j *Job) fail(state JobState, msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.state = state
	j.errMsg = msg
	close(j.done)
}

// Result returns the rendered report bytes once succeeded.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobSucceeded {
		return nil, false
	}
	return j.reportJSON, true
}

// Report returns the structured report once succeeded.
func (j *Job) Report() (*CampaignReport, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobSucceeded {
		return nil, false
	}
	return j.report, true
}

// JobStatus is the poll document of /api/v1/jobs/{id}.
type JobStatus struct {
	ID          string   `json:"id"`
	Fingerprint string   `json:"fingerprint"`
	State       JobState `json:"state"`
	Error       string   `json:"error,omitempty"`
	Degraded    bool     `json:"degraded,omitempty"`
}

// Status snapshots the job for clients.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.ID, Fingerprint: j.Fingerprint, State: j.state, Error: j.errMsg}
	if j.report != nil && j.report.Resilience != nil {
		st.Degraded = j.report.Resilience.Degraded
	}
	return st
}

// Store is the in-memory job registry with a fingerprint index for
// content-addressed deduplication.
type Store struct {
	mu   sync.Mutex
	seq  int
	byID map[string]*Job
	byFP map[string]*Job
}

// NewStore returns an empty job store.
func NewStore() *Store {
	return &Store{byID: map[string]*Job{}, byFP: map[string]*Job{}}
}

// Submit returns the job for a campaign fingerprint. If a live or
// succeeded job with the same fingerprint exists, it is returned with
// fresh=false (the submission deduplicates onto it — this is the
// job-level singleflight AND the job-level result cache in one). A
// failed or interrupted job is replaced by a fresh one, so resubmission
// is the retry/resume path.
func (s *Store) Submit(req *CampaignRequest, fp string, now time.Time) (j *Job, fresh bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.byFP[fp]; j != nil {
		if st := j.State(); st != JobFailed && st != JobInterrupted {
			return j, false
		}
	}
	s.seq++
	j = &Job{
		ID:          fmt.Sprintf("job-%06d", s.seq),
		Fingerprint: fp,
		Req:         req,
		Submitted:   now,
		state:       JobQueued,
		done:        make(chan struct{}),
	}
	s.byID[j.ID] = j
	s.byFP[fp] = j
	return j, true
}

// Remove forgets a job (used when admission fails after registration —
// the queue was full, so the job never existed as far as clients know).
func (s *Store) Remove(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.byID, j.ID)
	if s.byFP[j.Fingerprint] == j {
		delete(s.byFP, j.Fingerprint)
	}
}

// Get returns a job by ID.
func (s *Store) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	return j, ok
}

// List returns every job, ascending by ID.
func (s *Store) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.byID))
	for _, j := range s.byID {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}
