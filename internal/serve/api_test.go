package serve

import (
	"math"
	"strings"
	"testing"

	"repro/megsim"
)

const minimalCampaign = `{"workload":{"benchmark":"hcr"}}`

func decode(t *testing.T, body string) *CampaignRequest {
	t.Helper()
	req, err := DecodeCampaignRequest(strings.NewReader(body))
	if err != nil {
		t.Fatalf("DecodeCampaignRequest(%q): %v", body, err)
	}
	return req
}

func TestDecodeCampaignRequestValid(t *testing.T) {
	req := decode(t, minimalCampaign)
	if req.Workload.Benchmark != "hcr" {
		t.Fatalf("benchmark = %q, want hcr", req.Workload.Benchmark)
	}
	req = decode(t, `{
		"workload": {"benchmark": "asp", "width": 64, "height": 32, "frame_div": 40, "detail_div": 4},
		"threshold": 0.25,
		"seed": 7,
		"gpu": {"preset": "tbdr", "tbdr": true, "tile_workers": 3},
		"resilience": {"retries": 5, "quarantine": [3, 1], "stall_timeout_ms": 1000}
	}`)
	if req.Threshold != 0.25 || req.GPU.TileWorkers != 3 || len(req.Resilience.Quarantine) != 2 {
		t.Fatalf("decoded fields wrong: %+v", req)
	}
	req = decode(t, `{"workload":{"random_seed":42}}`)
	if req.Workload.RandomSeed == nil || *req.Workload.RandomSeed != 42 {
		t.Fatalf("random_seed not decoded: %+v", req.Workload)
	}
}

func TestDecodeCampaignRequestRejects(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"empty", ``, "decode"},
		{"malformed", `{"workload":`, "decode"},
		{"wrong type", `[]`, "decode"},
		{"unknown field", `{"workload":{"benchmark":"hcr"},"bogus":1}`, "unknown field"},
		{"trailing data", minimalCampaign + `{"x":1}`, "trailing data"},
		{"oversized body", `{"workload":{"benchmark":"` + strings.Repeat("x", MaxRequestBytes) + `"}}`, "exceeds"},
		{"no workload", `{}`, "benchmark or random_seed"},
		{"benchmark and seed", `{"workload":{"benchmark":"hcr","random_seed":1}}`, "exclusive"},
		{"unknown benchmark", `{"workload":{"benchmark":"doom"}}`, "workload"},
		{"huge dimension", `{"workload":{"benchmark":"hcr","width":5000}}`, "out of"},
		{"negative dimension", `{"workload":{"benchmark":"hcr","height":-1}}`, "out of"},
		{"too many pixels", `{"workload":{"benchmark":"hcr","width":4096,"height":4096}}`, "pixels"},
		{"huge divisor", `{"workload":{"benchmark":"hcr","frame_div":2000000}}`, "divisors"},
		{"infinite threshold", `{"workload":{"benchmark":"hcr"},"threshold":1e999}`, "decode"},
		{"threshold too big", `{"workload":{"benchmark":"hcr"},"threshold":1.5}`, "threshold"},
		{"negative threshold", `{"workload":{"benchmark":"hcr"},"threshold":-0.5}`, "threshold"},
		{"unknown preset", `{"workload":{"benchmark":"hcr"},"gpu":{"preset":"rtx5090"}}`, "gpu"},
		{"huge tile workers", `{"workload":{"benchmark":"hcr"},"gpu":{"tile_workers":4096}}`, "tile_workers"},
		{"negative retries", `{"workload":{"benchmark":"hcr"},"resilience":{"retries":-1}}`, "retries"},
		{"huge retries", `{"workload":{"benchmark":"hcr"},"resilience":{"retries":1000}}`, "retries"},
		{"negative quarantined frame", `{"workload":{"benchmark":"hcr"},"resilience":{"quarantine":[-3]}}`, "quarantine"},
		{"negative stall timeout", `{"workload":{"benchmark":"hcr"},"resilience":{"stall_timeout_ms":-1}}`, "stall"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeCampaignRequest(strings.NewReader(tc.body))
			if err == nil {
				t.Fatalf("DecodeCampaignRequest accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// JSON cannot encode NaN, so the NaN guard is only reachable through
// Validate directly — keep it covered anyway: a future transport must
// not smuggle NaN thresholds past admission.
func TestValidateNaN(t *testing.T) {
	req := decode(t, minimalCampaign)
	req.Threshold = math.NaN()
	if err := req.Validate(); err == nil {
		t.Fatal("Validate accepted NaN threshold")
	}
	req.Threshold = math.Inf(1)
	if err := req.Validate(); err == nil {
		t.Fatal("Validate accepted +Inf threshold")
	}
}

func TestFingerprintNormalization(t *testing.T) {
	base := decode(t, minimalCampaign)

	// Explicit defaults address the same result as omitted fields.
	explicit := decode(t, minimalCampaign)
	explicit.Threshold = megsim.DefaultConfig().Search.Threshold
	explicit.Seed = megsim.DefaultConfig().Seed
	if base.Fingerprint() != explicit.Fingerprint() {
		t.Fatal("explicit defaults changed the fingerprint")
	}

	// Every tile-worker count >= 1 is byte-identical, so it normalizes
	// out; 0 (serial warm-cache raster) is a genuinely different result.
	tw1 := decode(t, `{"workload":{"benchmark":"hcr"},"gpu":{"tile_workers":1}}`)
	tw4 := decode(t, `{"workload":{"benchmark":"hcr"},"gpu":{"tile_workers":4}}`)
	if tw1.Fingerprint() != tw4.Fingerprint() {
		t.Fatal("tile_workers 1 and 4 fingerprint differently")
	}
	if base.Fingerprint() == tw1.Fingerprint() {
		t.Fatal("tile_workers 0 and 1 share a fingerprint (serial raster differs)")
	}

	// Quarantine affects results (order-independently); retries and the
	// watchdog shape execution only.
	q13 := decode(t, `{"workload":{"benchmark":"hcr"},"resilience":{"quarantine":[1,3]}}`)
	q31 := decode(t, `{"workload":{"benchmark":"hcr"},"resilience":{"quarantine":[3,1]}}`)
	if q13.Fingerprint() != q31.Fingerprint() {
		t.Fatal("quarantine order changed the fingerprint")
	}
	if q13.Fingerprint() == base.Fingerprint() {
		t.Fatal("quarantine did not change the fingerprint")
	}
	retried := decode(t, `{"workload":{"benchmark":"hcr"},"resilience":{"retries":7,"stall_timeout_ms":500}}`)
	if retried.Fingerprint() != base.Fingerprint() {
		t.Fatal("execution-shaping knobs changed the fingerprint")
	}

	// Result-affecting settings must all separate.
	for name, body := range map[string]string{
		"seed":      `{"workload":{"benchmark":"hcr"},"seed":99}`,
		"threshold": `{"workload":{"benchmark":"hcr"},"threshold":0.5}`,
		"benchmark": `{"workload":{"benchmark":"asp"}}`,
		"scale":     `{"workload":{"benchmark":"hcr","width":64}}`,
		"preset":    `{"workload":{"benchmark":"hcr"},"gpu":{"preset":"lowend"}}`,
		"tbdr":      `{"workload":{"benchmark":"hcr"},"gpu":{"tbdr":true}}`,
	} {
		if decode(t, body).Fingerprint() == base.Fingerprint() {
			t.Fatalf("%s change did not change the fingerprint", name)
		}
	}
}

func TestWorkloadKeyIgnoresGPU(t *testing.T) {
	a := decode(t, minimalCampaign)
	b := decode(t, `{"workload":{"benchmark":"hcr"},"seed":5,"gpu":{"preset":"highend","tile_workers":4}}`)
	if a.WorkloadKey() != b.WorkloadKey() {
		t.Fatal("GPU/methodology settings leaked into the workload key")
	}
	c := decode(t, `{"workload":{"benchmark":"hcr","detail_div":4}}`)
	if a.WorkloadKey() == c.WorkloadKey() {
		t.Fatal("scale change did not change the workload key")
	}
}

func TestBuildTraceDeterministic(t *testing.T) {
	req := decode(t, `{"workload":{"random_seed":11,"width":64,"height":32,"frame_div":40,"detail_div":4}}`)
	tr1, err := req.BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := req.BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Name != tr2.Name || tr1.NumFrames() != tr2.NumFrames() {
		t.Fatalf("BuildTrace not deterministic: %s/%d vs %s/%d",
			tr1.Name, tr1.NumFrames(), tr2.Name, tr2.NumFrames())
	}
	gpu, err := req.GPUConfig()
	if err != nil {
		t.Fatal(err)
	}
	if megsim.RunFingerprint(tr1, gpu) != megsim.RunFingerprint(tr2, gpu) {
		t.Fatal("rebuilt trace fingerprints differently")
	}
}
