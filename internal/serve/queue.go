package serve

import "sync"

// admissionQueue is the bounded intake between HTTP submission and the
// worker pool. Admission never blocks: a full queue is reported to the
// caller (the server answers 429 with Retry-After) instead of letting
// submissions pile up unboundedly — backpressure is the contract.
type admissionQueue struct {
	mu     sync.Mutex
	ch     chan *Job
	closed bool
}

func newAdmissionQueue(capacity int) *admissionQueue {
	return &admissionQueue{ch: make(chan *Job, capacity)}
}

// TryEnqueue admits a job if there is room; it never blocks. Returns
// false when the queue is full or closed (draining).
func (q *admissionQueue) TryEnqueue(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	select {
	case q.ch <- j:
		return true
	default:
		return false
	}
}

// Close stops admission; workers drain what is already queued.
func (q *admissionQueue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}

// Depth returns the number of queued (not yet claimed) jobs.
func (q *admissionQueue) Depth() int { return len(q.ch) }

// Capacity returns the admission bound.
func (q *admissionQueue) Capacity() int { return cap(q.ch) }
