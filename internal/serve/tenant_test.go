package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestRetryAfterDerivedFromDepth pins the Retry-After contract: the
// advice is a pure function of (depth, capacity, key), grows with queue
// pressure, and spreads distinct campaigns so synchronized clients do
// not re-stampede in lockstep.
func TestRetryAfterDerivedFromDepth(t *testing.T) {
	const capacity = 64
	// Deterministic: same inputs, same advice.
	for i := 0; i < 3; i++ {
		if a, b := retryAfterSeconds(10, capacity, "cmp-a"), retryAfterSeconds(10, capacity, "cmp-a"); a != b {
			t.Fatalf("retryAfterSeconds not deterministic: %d vs %d", a, b)
		}
	}
	// Monotone (non-decreasing) in depth, and a full queue advises a
	// strictly longer wait than an empty one.
	prev := 0
	for depth := 0; depth <= capacity; depth++ {
		got := retryAfterSeconds(depth, capacity, "cmp-a")
		if got < prev {
			t.Fatalf("retryAfterSeconds(depth=%d) = %d < %d at depth-1", depth, got, prev)
		}
		prev = got
	}
	if empty, full := retryAfterSeconds(0, capacity, "cmp-a"), retryAfterSeconds(capacity, capacity, "cmp-a"); full <= empty {
		t.Fatalf("full queue advice %ds not above empty queue advice %ds", full, empty)
	}
	// Bounded: at least 1s, and jitter adds at most 2s over the base.
	for depth := 0; depth <= capacity; depth++ {
		for _, key := range []string{"", "cmp-a", "cmp-b", "cmp-0123456789abcdef"} {
			got := retryAfterSeconds(depth, capacity, key)
			base := 1 + (4*depth)/capacity
			if got < 1 || got < base || got > base+2 {
				t.Fatalf("retryAfterSeconds(%d, %d, %q) = %d outside [max(1,%d), %d]",
					depth, capacity, key, got, base, base+2)
			}
		}
	}
	// Spread: across many keys the jitter must actually use more than
	// one offset — a constant would re-stampede every rejected client.
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		seen[retryAfterSeconds(5, capacity, "cmp-"+strconv.Itoa(i))] = true
	}
	if len(seen) < 2 {
		t.Fatalf("jitter produced a single value %v across 64 keys", seen)
	}
	// Degenerate inputs must not panic or go below 1.
	if got := retryAfterSeconds(-3, 0, "x"); got < 1 {
		t.Fatalf("degenerate inputs gave %d, want >= 1", got)
	}
}

// TestTenantLimiterBucket drives the token bucket on a fake clock:
// burst admissions, then rejection with a sane Retry-After, then refill
// readmits — and tenants are isolated from each other.
func TestTenantLimiterBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newTenantLimiter(1, 2, func() time.Time { return now })
	for i := 0; i < 2; i++ {
		if ok, _ := l.Admit("alice"); !ok {
			t.Fatalf("burst admission %d rejected", i)
		}
	}
	ok, retry := l.Admit("alice")
	if ok {
		t.Fatal("admission beyond burst accepted")
	}
	if retry < 1 || retry > 2 {
		t.Fatalf("Retry-After = %d, want 1..2 at 1 token/s", retry)
	}
	// A different tenant still has its full burst.
	if ok, _ := l.Admit("bob"); !ok {
		t.Fatal("unrelated tenant throttled")
	}
	// Refill: one second restores one token for alice.
	now = now.Add(time.Second)
	if ok, _ := l.Admit("alice"); !ok {
		t.Fatal("refilled token not granted")
	}
	if ok, _ := l.Admit("alice"); ok {
		t.Fatal("second admission after single-token refill accepted")
	}
}

// TestTenantLimiterSweep: the bucket map stays bounded — when a bucket
// refills to full it is indistinguishable from absent and gets swept,
// while a still-draining tenant keeps its debt.
func TestTenantLimiterSweep(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newTenantLimiter(1, 4, func() time.Time { return now })
	// Fill the map with one-shot tenants.
	for i := 0; i < maxTenantBuckets; i++ {
		l.Admit("drive-by-" + strconv.Itoa(i))
	}
	now = now.Add(time.Hour) // drive-bys refill to full
	// The next unseen tenant finds the map at capacity and forces the
	// sweep; every refilled-to-full drive-by is forgotten.
	for i := 0; i < 4; i++ {
		l.Admit("alice")
	}
	l.Admit("fresh")
	l.mu.Lock()
	n := len(l.buckets)
	_, aliceKept := l.buckets["alice"]
	l.mu.Unlock()
	if n > 2 {
		t.Fatalf("bucket map not swept: %d entries", n)
	}
	if !aliceKept {
		t.Fatal("sweep dropped a still-draining tenant")
	}
	if ok, _ := l.Admit("alice"); ok {
		t.Fatal("alice's debt lost across the sweep")
	}
}

// TestTenantThrottleHTTP exercises the header-to-429 path on an
// admission-only server: a tenant over its rate gets 429 with
// Retry-After before the body is even decoded, other tenants are
// unaffected, and the throttle counter records it.
func TestTenantThrottleHTTP(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: -1, TenantRate: 0.001, TenantBurst: 2})
	body := serviceCampaignBody(1, "")
	do := func(tenant string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/campaigns", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set(TenantHeader, tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var msg json.RawMessage
		json.NewDecoder(resp.Body).Decode(&msg)
		return resp
	}
	if got := do("alice").StatusCode; got != http.StatusAccepted {
		t.Fatalf("first submission: status %d", got)
	}
	// Identical campaign: admitted by the bucket, then deduped.
	if got := do("alice").StatusCode; got != http.StatusOK {
		t.Fatalf("deduped submission: status %d", got)
	}
	resp := do("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submission: status %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("throttled 429 Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
	// The anonymous tenant has its own untouched bucket.
	if got := do("").StatusCode; got != http.StatusOK {
		t.Fatalf("anonymous submission: status %d (expected dedup 200)", got)
	}
	if got := s.throttled.Value(); got != 1 {
		t.Fatalf("serve.jobs.throttled = %d, want 1", got)
	}
}
