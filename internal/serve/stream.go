package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/funcsim"
	"repro/internal/gltrace"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/megsim"
)

// Chunked-upload stream sessions: the daemon-side face of streaming
// campaigns. A client opens a session with a streaming campaign request,
// feeds the workload's frames in chunks of whatever size it likes, and
// finishes; the accumulated strata snapshot is handed to a phase-2 job
// through the same admission queue, dedup store and result cache every
// campaign uses. Session memory is bounded exactly like the ingestor's:
// per-frame state lives only while the frame sits in a stratum
// reservoir, and the ingestor's eviction hook releases it the moment it
// stops being a candidate.

const (
	// DefaultMaxStreamSessions bounds concurrently open sessions.
	DefaultMaxStreamSessions = 16
	// maxChunkCount bounds one chunk's frame count.
	maxChunkCount = 1 << 16
)

// streamSession is one open chunked-upload stream.
type streamSession struct {
	mu       sync.Mutex
	id       string
	req      *CampaignRequest
	tr       *gltrace.Trace
	streamer *funcsim.Streamer
	ing      *stream.Ingestor
	// members is the per-frame payload the session pins: exactly the
	// frames currently sitting in some stratum reservoir. The
	// ingestor's OnEvict hook releases entries the moment a frame stops
	// being a representative candidate, so len(members) is bounded by
	// the vector budget however long the stream runs.
	members  map[int]bool
	released int
	state    string // "open", "finished", "aborted"
	jobID    string
	final    *StreamStatus // frozen status once closed
}

// StreamStatus is the poll document of GET /api/v1/streams/{id}.
type StreamStatus struct {
	ID             string `json:"id"`
	Workload       string `json:"workload"`
	FramesTotal    int    `json:"frames_total"`
	FramesIngested int    `json:"frames_ingested"`
	Strata         int    `json:"strata"`
	Merges         int    `json:"merges"`
	LiveVectors    int    `json:"live_vectors"`
	PeakVectors    int    `json:"peak_vectors"`
	VectorBudget   int    `json:"vector_budget"`
	PinnedFrames   int    `json:"pinned_frames"`
	ReleasedFrames int    `json:"released_frames"`
	State          string `json:"state"`
	JobID          string `json:"job_id,omitempty"`
}

// status snapshots the session. Callers hold sess.mu.
func (sess *streamSession) statusLocked() StreamStatus {
	if sess.final != nil {
		return *sess.final
	}
	return StreamStatus{
		ID:             sess.id,
		Workload:       sess.tr.Name,
		FramesTotal:    sess.tr.NumFrames(),
		FramesIngested: sess.ing.Frames(),
		Strata:         sess.ing.NumStrata(),
		Merges:         sess.ing.Merges(),
		LiveVectors:    sess.ing.LiveVectors(),
		PeakVectors:    sess.ing.PeakVectors(),
		VectorBudget:   sess.ing.VectorBudget(),
		PinnedFrames:   len(sess.members),
		ReleasedFrames: sess.released,
		State:          sess.state,
		JobID:          sess.jobID,
	}
}

// closeLocked freezes the status and drops the heavy ingest state so a
// finished or aborted session costs only its status document.
func (sess *streamSession) closeLocked(state string) {
	sess.state = state
	st := sess.statusLocked()
	sess.final = &st
	sess.streamer = nil
	sess.ing = nil
	sess.members = nil
	sess.tr = nil
}

// streamStore registers open sessions under a concurrency bound.
type streamStore struct {
	mu    sync.Mutex
	seq   int
	byID  map[string]*streamSession
	open  int
	limit int
}

func newStreamStore(limit int) *streamStore {
	if limit <= 0 {
		limit = DefaultMaxStreamSessions
	}
	return &streamStore{byID: map[string]*streamSession{}, limit: limit}
}

// add registers a session if the open-session bound allows another.
func (st *streamStore) add(sess *streamSession) (string, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.open >= st.limit {
		return "", false
	}
	st.seq++
	sess.id = fmt.Sprintf("stream-%06d", st.seq)
	st.byID[sess.id] = sess
	st.open++
	return sess.id, true
}

func (st *streamStore) get(id string) (*streamSession, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	sess, ok := st.byID[id]
	return sess, ok
}

// closed releases one open slot (the session stays pollable).
func (st *streamStore) closed() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.open > 0 {
		st.open--
	}
}

// StreamOpenResponse answers POST /api/v1/streams.
type StreamOpenResponse struct {
	StreamID string `json:"stream_id"`
	Workload string `json:"workload"`
	// FramesTotal is the full workload length; a session may finish
	// after fewer (the estimate then covers the streamed prefix).
	FramesTotal int `json:"frames_total"`
}

// streamChunkRequest is the body of POST /api/v1/streams/{id}/chunks:
// replay the next Count frames of the workload into the stratifier.
type streamChunkRequest struct {
	Count int `json:"count"`
}

// StreamFinishResponse answers POST /api/v1/streams/{id}/finish.
type StreamFinishResponse struct {
	StreamID string `json:"stream_id"`
	SubmitResponse
}

func (s *Server) handleStreamOpen(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	if s.tenants != nil {
		tenant := r.Header.Get(TenantHeader)
		if ok, retry := s.tenants.Admit(tenant); !ok {
			s.throttled.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("tenant %q over its submission rate; retry later", tenant))
			return
		}
	}
	req, err := DecodeCampaignRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Stream == nil {
		writeError(w, http.StatusBadRequest, "stream session needs a stream spec")
		return
	}
	tr, err := s.cache.Trace(r.Context(), req.WorkloadKey(), req.BuildTrace)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("build trace: %v", err))
		return
	}
	streamer, err := funcsim.NewStreamer(tr)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("open stream: %v", err))
		return
	}
	sess := &streamSession{
		req:      req,
		tr:       tr,
		streamer: streamer,
		members:  map[int]bool{},
		state:    "open",
	}
	scfg := req.StreamConfig()
	scfg.OnEvict = func(frame int) {
		// Runs inside ing.Add under sess.mu: the frame left every
		// reservoir, so its pinned payload goes with it.
		delete(sess.members, frame)
		sess.released++
	}
	vs, fs := streamer.Static()
	sess.ing = stream.NewIngestor(tr.Name, vs, fs, scfg)
	id, ok := s.streams.add(sess)
	if !ok {
		s.rejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(1, 1, req.WorkloadKey())))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("open stream sessions at capacity (%d); retry later", s.streams.limit))
		return
	}
	s.streamsOpened.Inc()
	s.logf("serve: %s opened (%s, %d frames)", id, tr.Name, tr.NumFrames())
	writeJSON(w, http.StatusCreated, StreamOpenResponse{StreamID: id, Workload: tr.Name, FramesTotal: tr.NumFrames()})
}

func (s *Server) handleStreamStatus(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream")
		return
	}
	sess.mu.Lock()
	st := sess.statusLocked()
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleStreamChunk(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	sess, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream")
		return
	}
	var creq streamChunkRequest
	if err := decodeBody(r.Body, &creq); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if creq.Count < 1 || creq.Count > maxChunkCount {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("chunk count %d out of [1, %d]", creq.Count, maxChunkCount))
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.state != "open" {
		writeError(w, http.StatusConflict, fmt.Sprintf("stream is %s", sess.state))
		return
	}
	remaining := sess.tr.NumFrames() - sess.ing.Frames()
	if remaining == 0 {
		writeError(w, http.StatusConflict, "stream exhausted the workload; finish it")
		return
	}
	count := creq.Count
	if count > remaining {
		count = remaining
	}
	var prof funcsim.FrameProfile
	for i := 0; i < count; i++ {
		f := sess.ing.Frames()
		if err := sess.streamer.ProfileAt(&prof, f); err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("frame %d: %v", f, err))
			return
		}
		// Pin before Add: the eviction hook may release this very frame
		// during ingest (it never made any reservoir).
		sess.members[f] = true
		if err := sess.ing.Add(&prof); err != nil {
			delete(sess.members, f)
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("frame %d: %v", f, err))
			return
		}
	}
	s.streamChunks.Inc()
	writeJSON(w, http.StatusOK, sess.statusLocked())
}

func (s *Server) handleStreamFinish(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	sess, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream")
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.state != "open" {
		writeError(w, http.StatusConflict, fmt.Sprintf("stream is %s", sess.state))
		return
	}
	frames := sess.ing.Frames()
	if frames == 0 {
		writeError(w, http.StatusBadRequest, "empty stream: ingest at least one chunk before finishing")
		return
	}
	snap, err := sess.ing.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("strata snapshot: %v", err))
		return
	}
	// A session that consumed the whole workload is the same campaign a
	// direct streaming submission names — share its fingerprint (and
	// therefore its cached result).
	fpFrames := frames
	if frames == sess.tr.NumFrames() {
		fpFrames = 0
	}
	fp := sess.req.StreamFingerprint(fpFrames)
	s.submitted.Inc()
	j, fresh := s.store.Submit(sess.req, fp, time.Now())
	if fresh {
		j.StreamSnapshot = snap
		j.StreamMaxFrames = frames
		if !s.queue.TryEnqueue(j) {
			// Admission refused: the session stays open so the client
			// can retry the finish later.
			s.store.Remove(j)
			s.rejected.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.queue.Depth(), s.queue.Capacity(), fp)))
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("admission queue full (capacity %d); retry later", s.queue.Capacity()))
			return
		}
	} else {
		s.deduped.Inc()
	}
	sess.jobID = j.ID
	sess.closeLocked("finished")
	s.streams.closed()
	s.streamsFinished.Inc()
	s.logf("serve: %s finished after %d frames -> %s", sess.id, frames, j.ID)
	writeJSON(w, http.StatusAccepted, StreamFinishResponse{
		StreamID:       sess.id,
		SubmitResponse: SubmitResponse{JobID: j.ID, Fingerprint: fp, State: j.State(), Deduped: !fresh},
	})
}

func (s *Server) handleStreamAbort(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream")
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.state != "open" {
		writeError(w, http.StatusConflict, fmt.Sprintf("stream is %s", sess.state))
		return
	}
	sess.closeLocked("aborted")
	s.streams.closed()
	s.logf("serve: %s aborted", sess.id)
	writeJSON(w, http.StatusOK, sess.statusLocked())
}

// decodeBody strictly decodes one small JSON document.
func decodeBody(r io.Reader, v any) error {
	body, err := io.ReadAll(io.LimitReader(r, MaxRequestBytes+1))
	if err != nil {
		return fmt.Errorf("decode body: %w", err)
	}
	if len(body) > MaxRequestBytes {
		return fmt.Errorf("decode body: exceeds %d bytes", MaxRequestBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode body: %w", err)
	}
	if dec.More() {
		return errors.New("decode body: trailing data")
	}
	return nil
}

// executeStreaming runs a streaming campaign job: the online stratifier
// replaces batch characterization/selection, phase 2 reuses the same
// per-representative FrameStats cache (and dispatcher, in coordinator
// mode) as batch campaigns, and a session-submitted job is seeded from
// the session's strata snapshot so ingest work is never redone.
func (s *Server) executeStreaming(ctx context.Context, j *Job) (*CampaignReport, error) {
	req := j.Req
	tr, err := s.cache.Trace(ctx, req.WorkloadKey(), req.BuildTrace)
	if err != nil {
		return nil, fmt.Errorf("build trace: %w", err)
	}
	gpu, err := req.GPUConfig()
	if err != nil {
		return nil, err
	}
	fp := megsim.RunFingerprint(tr, gpu)
	inner := megsim.FrameRunner(tr, gpu)
	if s.cfg.Dispatcher != nil {
		inner = s.cfg.Dispatcher.FrameRunner(fp, req)
	}
	fn := s.cache.FrameRunner(fp, inner)

	jobReg := obs.NewWith(obs.Options{TraceCapacity: -1})
	rcfg := req.ResilienceConfig()
	rcfg.Obs = jobReg
	rcfg.Fingerprint = fp
	if s.cfg.CheckpointDir != "" {
		rcfg.CheckpointPath = filepath.Join(s.cfg.CheckpointDir, j.Fingerprint+".ckpt")
		rcfg.Resume = true
	}
	rcfg.Log = s.cfg.Log

	opts := megsim.StreamingOptions{
		Stream:     req.StreamConfig(),
		Resilience: rcfg,
		EagerEvery: req.Stream.EagerEvery,
		Runner:     fn,
		Snapshot:   j.StreamSnapshot,
		MaxFrames:  j.StreamMaxFrames,
	}
	start := time.Now()
	s.executed.Inc()
	srun, err := megsim.SampleStreaming(ctx, tr, opts, gpu)
	s.reg.Merge(jobReg)
	if err != nil {
		return nil, err
	}
	return NewStreamingCampaignReport(srun, time.Since(start)), nil
}
