package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/funcsim"
	"repro/internal/gltrace"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/megsim"
)

// Chunked-upload stream sessions: the daemon-side face of streaming
// campaigns. A client opens a session with a streaming campaign request,
// feeds the workload's frames in chunks of whatever size it likes, and
// finishes; the accumulated strata snapshot is handed to a phase-2 job
// through the same admission queue, dedup store and result cache every
// campaign uses. Session memory is bounded exactly like the ingestor's:
// per-frame state lives only while the frame sits in a stratum
// reservoir, and the ingestor's eviction hook releases it the moment it
// stops being a candidate.

const (
	// DefaultMaxStreamSessions bounds concurrently open sessions.
	DefaultMaxStreamSessions = 16
	// maxChunkCount bounds one chunk's frame count.
	maxChunkCount = 1 << 16
	// DefaultStreamIdleTimeout expires an open session that has stopped
	// ingesting, freeing its session slot for live clients.
	DefaultStreamIdleTimeout = 5 * time.Minute
	// DefaultStreamRetention evicts a closed session's status document
	// this long after it finished, aborted or expired, bounding the
	// session store however many streams a deployment has seen.
	DefaultStreamRetention = 15 * time.Minute
)

// streamIngestBatch bounds how many frames one session-lock acquisition
// may ingest: a large chunk re-acquires the lock per batch, so status
// polls are never blocked behind a whole chunk. A var so tests can
// force multi-batch ingest on small workloads.
var streamIngestBatch = 512

// streamSession is one open chunked-upload stream.
type streamSession struct {
	mu       sync.Mutex
	id       string
	req      *CampaignRequest
	tr       *gltrace.Trace
	streamer *funcsim.Streamer
	ing      *stream.Ingestor
	// members is the per-frame payload the session pins: exactly the
	// frames currently sitting in some stratum reservoir. The
	// ingestor's OnEvict hook releases entries the moment a frame stops
	// being a representative candidate, so len(members) is bounded by
	// the vector budget however long the stream runs.
	members  map[int]bool
	released int
	state    string // "open", "finished", "aborted", "expired"
	jobID    string
	final    *StreamStatus // frozen status once closed
	// lastActive is the last time the session made ingest progress
	// (open, a chunk batch, or a retryable finish); the sweeper expires
	// open sessions idle past the store's timeout.
	lastActive time.Time
	// closedAt stamps the transition out of "open"; the sweeper evicts
	// the frozen status document after the store's retention window.
	closedAt time.Time
}

// StreamStatus is the poll document of GET /api/v1/streams/{id}.
type StreamStatus struct {
	ID             string `json:"id"`
	Workload       string `json:"workload"`
	FramesTotal    int    `json:"frames_total"`
	FramesIngested int    `json:"frames_ingested"`
	Strata         int    `json:"strata"`
	Merges         int    `json:"merges"`
	LiveVectors    int    `json:"live_vectors"`
	PeakVectors    int    `json:"peak_vectors"`
	VectorBudget   int    `json:"vector_budget"`
	PinnedFrames   int    `json:"pinned_frames"`
	ReleasedFrames int    `json:"released_frames"`
	State          string `json:"state"`
	JobID          string `json:"job_id,omitempty"`
}

// status snapshots the session. Callers hold sess.mu.
func (sess *streamSession) statusLocked() StreamStatus {
	if sess.final != nil {
		return *sess.final
	}
	return StreamStatus{
		ID:             sess.id,
		Workload:       sess.tr.Name,
		FramesTotal:    sess.tr.NumFrames(),
		FramesIngested: sess.ing.Frames(),
		Strata:         sess.ing.NumStrata(),
		Merges:         sess.ing.Merges(),
		LiveVectors:    sess.ing.LiveVectors(),
		PeakVectors:    sess.ing.PeakVectors(),
		VectorBudget:   sess.ing.VectorBudget(),
		PinnedFrames:   len(sess.members),
		ReleasedFrames: sess.released,
		State:          sess.state,
		JobID:          sess.jobID,
	}
}

// closeLocked freezes the status and drops the heavy ingest state so a
// finished or aborted session costs only its status document.
func (sess *streamSession) closeLocked(state string, now time.Time) {
	sess.state = state
	sess.closedAt = now
	st := sess.statusLocked()
	sess.final = &st
	sess.streamer = nil
	sess.ing = nil
	sess.members = nil
	sess.tr = nil
}

// streamStore registers open sessions under a concurrency bound.
type streamStore struct {
	mu    sync.Mutex
	seq   int
	byID  map[string]*streamSession
	open  int
	limit int
	// idle expires open sessions that stop ingesting (0 = never);
	// retention evicts closed sessions' status documents (0 = forever).
	idle      time.Duration
	retention time.Duration
	now       func() time.Time // injectable clock for tests
}

func newStreamStore(limit int, idle, retention time.Duration) *streamStore {
	if limit <= 0 {
		limit = DefaultMaxStreamSessions
	}
	if idle == 0 {
		idle = DefaultStreamIdleTimeout
	} else if idle < 0 {
		idle = 0
	}
	if retention == 0 {
		retention = DefaultStreamRetention
	} else if retention < 0 {
		retention = 0
	}
	return &streamStore{
		byID:      map[string]*streamSession{},
		limit:     limit,
		idle:      idle,
		retention: retention,
		now:       time.Now,
	}
}

// add registers a session if the open-session bound allows another.
func (st *streamStore) add(sess *streamSession) (string, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.open >= st.limit {
		return "", false
	}
	st.seq++
	sess.id = fmt.Sprintf("stream-%06d", st.seq)
	st.byID[sess.id] = sess
	st.open++
	return sess.id, true
}

func (st *streamStore) get(id string) (*streamSession, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	sess, ok := st.byID[id]
	return sess, ok
}

// closed releases one open slot (the session stays pollable).
func (st *streamStore) closed() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.open > 0 {
		st.open--
	}
}

// remove evicts a session's entry entirely (closed sessions only —
// their slot was already released).
func (st *streamStore) remove(id string) {
	st.mu.Lock()
	delete(st.byID, id)
	st.mu.Unlock()
}

// sweep expires open sessions idle past the timeout (freeing their
// slots) and evicts closed sessions past the retention window. It runs
// opportunistically at the top of every stream handler, so abandoned
// capacity is reclaimed no later than the next request that could want
// it and byID stays bounded by the traffic of one retention window.
// The handlers' lock order is sess.mu -> st.mu, so the candidate list
// is copied out before any session lock is taken.
func (st *streamStore) sweep(now time.Time) (expired []string) {
	st.mu.Lock()
	sessions := make([]*streamSession, 0, len(st.byID))
	for _, sess := range st.byID {
		sessions = append(sessions, sess)
	}
	st.mu.Unlock()
	for _, sess := range sessions {
		sess.mu.Lock()
		switch {
		case sess.state == "open" && st.idle > 0 && now.Sub(sess.lastActive) >= st.idle:
			sess.closeLocked("expired", now)
			sess.mu.Unlock()
			st.closed()
			expired = append(expired, sess.id)
		case sess.final != nil && st.retention > 0 && now.Sub(sess.closedAt) >= st.retention:
			sess.mu.Unlock()
			st.remove(sess.id)
		default:
			sess.mu.Unlock()
		}
	}
	return expired
}

// StreamOpenResponse answers POST /api/v1/streams.
type StreamOpenResponse struct {
	StreamID string `json:"stream_id"`
	Workload string `json:"workload"`
	// FramesTotal is the full workload length; a session may finish
	// after fewer (the estimate then covers the streamed prefix).
	FramesTotal int `json:"frames_total"`
}

// streamChunkRequest is the body of POST /api/v1/streams/{id}/chunks:
// replay the next Count frames of the workload into the stratifier.
type streamChunkRequest struct {
	Count int `json:"count"`
}

// StreamFinishResponse answers POST /api/v1/streams/{id}/finish.
type StreamFinishResponse struct {
	StreamID string `json:"stream_id"`
	SubmitResponse
}

// sweepStreams reclaims idle and stale sessions; every stream handler
// calls it first, so a full session table always self-heals before the
// request it would otherwise starve.
func (s *Server) sweepStreams() {
	for _, id := range s.streams.sweep(s.streams.now()) {
		s.streamsExpired.Inc()
		s.logf("serve: %s expired after %s idle", id, s.streams.idle)
	}
}

func (s *Server) handleStreamOpen(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	s.sweepStreams()
	if s.tenants != nil {
		tenant := r.Header.Get(TenantHeader)
		if ok, retry := s.tenants.Admit(tenant); !ok {
			s.throttled.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("tenant %q over its submission rate; retry later", tenant))
			return
		}
	}
	req, err := DecodeCampaignRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Stream == nil {
		writeError(w, http.StatusBadRequest, "stream session needs a stream spec")
		return
	}
	tr, err := s.cache.Trace(r.Context(), req.WorkloadKey(), req.BuildTrace)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("build trace: %v", err))
		return
	}
	streamer, err := funcsim.NewStreamer(tr)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("open stream: %v", err))
		return
	}
	sess := &streamSession{
		req:        req,
		tr:         tr,
		streamer:   streamer,
		members:    map[int]bool{},
		state:      "open",
		lastActive: s.streams.now(),
	}
	scfg := req.StreamConfig()
	scfg.OnEvict = func(frame int) {
		// Runs inside ing.Add under sess.mu: the frame left every
		// reservoir, so its pinned payload goes with it.
		delete(sess.members, frame)
		sess.released++
	}
	vs, fs := streamer.Static()
	sess.ing = stream.NewIngestor(tr.Name, vs, fs, scfg)
	id, ok := s.streams.add(sess)
	if !ok {
		s.rejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(1, 1, req.WorkloadKey())))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("open stream sessions at capacity (%d); retry later", s.streams.limit))
		return
	}
	s.streamsOpened.Inc()
	s.logf("serve: %s opened (%s, %d frames)", id, tr.Name, tr.NumFrames())
	writeJSON(w, http.StatusCreated, StreamOpenResponse{StreamID: id, Workload: tr.Name, FramesTotal: tr.NumFrames()})
}

func (s *Server) handleStreamStatus(w http.ResponseWriter, r *http.Request) {
	s.sweepStreams()
	sess, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream")
		return
	}
	sess.mu.Lock()
	st := sess.statusLocked()
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleStreamChunk(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	s.sweepStreams()
	sess, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream")
		return
	}
	var creq streamChunkRequest
	if err := decodeBody(r.Body, &creq); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if creq.Count < 1 || creq.Count > maxChunkCount {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("chunk count %d out of [1, %d]", creq.Count, maxChunkCount))
		return
	}
	// Ingest in bounded batches, dropping the session lock between them
	// so status polls interleave with even the largest chunk. Ingest
	// order stays the workload's frame order whatever the interleaving:
	// each batch replays from wherever the ingestor's frame cursor
	// stands when the lock is reacquired.
	var (
		st       StreamStatus
		ingested int
		prof     funcsim.FrameProfile
	)
	for ingested < creq.Count {
		sess.mu.Lock()
		if sess.state != "open" {
			state := sess.state
			sess.mu.Unlock()
			writeError(w, http.StatusConflict, fmt.Sprintf("stream is %s", state))
			return
		}
		remaining := sess.tr.NumFrames() - sess.ing.Frames()
		if remaining == 0 {
			if ingested == 0 {
				sess.mu.Unlock()
				writeError(w, http.StatusConflict, "stream exhausted the workload; finish it")
				return
			}
			// The chunk over-asked (or raced another chunk to the end):
			// report the frames that were ingested, like the old clamp.
			st = sess.statusLocked()
			sess.mu.Unlock()
			break
		}
		n := creq.Count - ingested
		if n > remaining {
			n = remaining
		}
		if n > streamIngestBatch {
			n = streamIngestBatch
		}
		for i := 0; i < n; i++ {
			f := sess.ing.Frames()
			if err := sess.streamer.ProfileAt(&prof, f); err != nil {
				sess.mu.Unlock()
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("frame %d: %v", f, err))
				return
			}
			// Pin before Add: the eviction hook may release this very frame
			// during ingest (it never made any reservoir).
			sess.members[f] = true
			if err := sess.ing.Add(&prof); err != nil {
				delete(sess.members, f)
				sess.mu.Unlock()
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("frame %d: %v", f, err))
				return
			}
		}
		ingested += n
		sess.lastActive = s.streams.now()
		st = sess.statusLocked()
		sess.mu.Unlock()
	}
	s.streamChunks.Inc()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleStreamFinish(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	s.sweepStreams()
	sess, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream")
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.state != "open" {
		writeError(w, http.StatusConflict, fmt.Sprintf("stream is %s", sess.state))
		return
	}
	frames := sess.ing.Frames()
	if frames == 0 {
		writeError(w, http.StatusBadRequest, "empty stream: ingest at least one chunk before finishing")
		return
	}
	snap, err := sess.ing.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("strata snapshot: %v", err))
		return
	}
	// A session that consumed the whole workload is the same campaign a
	// direct streaming submission names — share its fingerprint (and
	// therefore its cached result).
	fpFrames := frames
	if frames == sess.tr.NumFrames() {
		fpFrames = 0
	}
	fp := sess.req.StreamFingerprint(fpFrames)
	s.submitted.Inc()
	j, fresh := s.store.Submit(sess.req, fp, time.Now())
	if fresh {
		j.StreamSnapshot = snap
		j.StreamMaxFrames = frames
		if !s.queue.TryEnqueue(j) {
			// Admission refused: the session stays open so the client
			// can retry the finish later (the retry window restarts the
			// idle clock).
			sess.lastActive = s.streams.now()
			s.store.Remove(j)
			s.rejected.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.queue.Depth(), s.queue.Capacity(), fp)))
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("admission queue full (capacity %d); retry later", s.queue.Capacity()))
			return
		}
	} else {
		s.deduped.Inc()
	}
	sess.jobID = j.ID
	sess.closeLocked("finished", s.streams.now())
	s.streams.closed()
	s.streamsFinished.Inc()
	s.logf("serve: %s finished after %d frames -> %s", sess.id, frames, j.ID)
	writeJSON(w, http.StatusAccepted, StreamFinishResponse{
		StreamID:       sess.id,
		SubmitResponse: SubmitResponse{JobID: j.ID, Fingerprint: fp, State: j.State(), Deduped: !fresh},
	})
}

func (s *Server) handleStreamAbort(w http.ResponseWriter, r *http.Request) {
	s.sweepStreams()
	sess, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream")
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.state != "open" {
		writeError(w, http.StatusConflict, fmt.Sprintf("stream is %s", sess.state))
		return
	}
	sess.closeLocked("aborted", s.streams.now())
	s.streams.closed()
	s.logf("serve: %s aborted", sess.id)
	writeJSON(w, http.StatusOK, sess.statusLocked())
}

// decodeBody strictly decodes one small JSON document.
func decodeBody(r io.Reader, v any) error {
	body, err := io.ReadAll(io.LimitReader(r, MaxRequestBytes+1))
	if err != nil {
		return fmt.Errorf("decode body: %w", err)
	}
	if len(body) > MaxRequestBytes {
		return fmt.Errorf("decode body: exceeds %d bytes", MaxRequestBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode body: %w", err)
	}
	if dec.More() {
		return errors.New("decode body: trailing data")
	}
	return nil
}

// executeStreaming runs a streaming campaign job: the online stratifier
// replaces batch characterization/selection, phase 2 reuses the same
// per-representative FrameStats cache (and dispatcher, in coordinator
// mode) as batch campaigns, and a session-submitted job is seeded from
// the session's strata snapshot so ingest work is never redone.
func (s *Server) executeStreaming(ctx context.Context, j *Job) (*CampaignReport, error) {
	req := j.Req
	tr, err := s.cache.Trace(ctx, req.WorkloadKey(), req.BuildTrace)
	if err != nil {
		return nil, fmt.Errorf("build trace: %w", err)
	}
	gpu, err := req.GPUConfig()
	if err != nil {
		return nil, err
	}
	fp := megsim.RunFingerprint(tr, gpu)
	inner := megsim.FrameRunner(tr, gpu)
	if s.cfg.Dispatcher != nil {
		inner = s.cfg.Dispatcher.FrameRunner(fp, req)
	}
	fn := s.cache.FrameRunner(fp, inner)

	jobReg := obs.NewWith(obs.Options{TraceCapacity: -1})
	rcfg := req.ResilienceConfig()
	rcfg.Obs = jobReg
	rcfg.Fingerprint = fp
	if s.cfg.CheckpointDir != "" {
		rcfg.CheckpointPath = filepath.Join(s.cfg.CheckpointDir, j.Fingerprint+".ckpt")
		rcfg.Resume = true
	}
	rcfg.Log = s.cfg.Log

	opts := megsim.StreamingOptions{
		Stream:     req.StreamConfig(),
		Resilience: rcfg,
		EagerEvery: req.Stream.EagerEvery,
		Runner:     fn,
		Snapshot:   j.StreamSnapshot,
		MaxFrames:  j.StreamMaxFrames,
	}
	start := time.Now()
	s.executed.Inc()
	srun, err := megsim.SampleStreaming(ctx, tr, opts, gpu)
	s.reg.Merge(jobReg)
	if err != nil {
		return nil, err
	}
	return NewStreamingCampaignReport(srun, time.Since(start)), nil
}
