package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
)

// streamCampaignBody is the canonical streaming test campaign: the
// `service` preset workload with a stream spec spliced in.
func streamCampaignBody(streamSpec string) string {
	sc := harness.ServiceOptions().Scale
	return fmt.Sprintf(
		`{"workload":{"benchmark":"hcr","width":%d,"height":%d,"frame_div":%d,"detail_div":%d},`+
			`"gpu":{"tile_workers":2},"stream":{%s}}`,
		sc.Width, sc.Height, sc.FrameDivisor, sc.DetailDivisor, streamSpec)
}

func streamPost(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, raw
}

func openStream(t *testing.T, ts *httptest.Server, body string) StreamOpenResponse {
	t.Helper()
	code, raw := streamPost(t, ts, "/api/v1/streams", body)
	if code != http.StatusCreated {
		t.Fatalf("open stream: status %d: %s", code, raw)
	}
	var open StreamOpenResponse
	if err := json.Unmarshal(raw, &open); err != nil {
		t.Fatalf("decode open response: %v", err)
	}
	return open
}

func streamStatus(t *testing.T, ts *httptest.Server, id string) StreamStatus {
	t.Helper()
	code, raw := getJSON(t, ts, "/api/v1/streams/"+id)
	if code != http.StatusOK {
		t.Fatalf("stream status: %d: %s", code, raw)
	}
	var st StreamStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decode stream status: %v", err)
	}
	return st
}

// TestStreamSessionLifecycle: a session fed in ragged chunks finishes
// into a normal job whose streaming report matches — byte for byte —
// the report of the identical campaign submitted directly. A session
// that consumed the whole workload even shares the direct submission's
// fingerprint, so the second execution is a pure cache hit.
func TestStreamSessionLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 8})
	body := streamCampaignBody(`"max_strata":8,"reservoir_cap":4`)

	open := openStream(t, ts, body)
	if open.FramesTotal == 0 {
		t.Fatal("no frames in workload")
	}

	// Ragged chunk sizes, the last one deliberately over-long: the
	// service clamps to the frames that remain.
	ingested := 0
	for _, chunk := range []int{1, 7, open.FramesTotal} {
		code, raw := streamPost(t, ts, "/api/v1/streams/"+open.StreamID+"/chunks",
			fmt.Sprintf(`{"count":%d}`, chunk))
		if code != http.StatusOK {
			t.Fatalf("chunk: status %d: %s", code, raw)
		}
		var st StreamStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		if chunk > open.FramesTotal-ingested {
			chunk = open.FramesTotal - ingested
		}
		ingested += chunk
		if st.FramesIngested != ingested {
			t.Fatalf("ingested %d frames, want %d", st.FramesIngested, ingested)
		}
		if st.PinnedFrames > st.VectorBudget {
			t.Fatalf("session pins %d frames, budget %d", st.PinnedFrames, st.VectorBudget)
		}
		if st.PinnedFrames+st.ReleasedFrames != st.FramesIngested {
			t.Fatalf("pinned %d + released %d != ingested %d",
				st.PinnedFrames, st.ReleasedFrames, st.FramesIngested)
		}
	}

	code, raw := streamPost(t, ts, "/api/v1/streams/"+open.StreamID+"/finish", `{}`)
	if code != http.StatusAccepted {
		t.Fatalf("finish: status %d: %s", code, raw)
	}
	var fin StreamFinishResponse
	if err := json.Unmarshal(raw, &fin); err != nil {
		t.Fatal(err)
	}
	if fin.Deduped {
		t.Fatal("first finish deduped")
	}
	st := waitTerminal(t, ts, fin.JobID)
	if st.State != JobSucceeded {
		t.Fatalf("stream job: %+v", st)
	}
	_, sessionReport := getJSON(t, ts, "/api/v1/jobs/"+fin.JobID+"/result")

	// The session is closed (chunking now conflicts) but still pollable.
	if code, _ := streamPost(t, ts, "/api/v1/streams/"+open.StreamID+"/chunks", `{"count":1}`); code != http.StatusConflict {
		t.Fatalf("chunk after finish: status %d", code)
	}
	if got := streamStatus(t, ts, open.StreamID); got.State != "finished" || got.JobID != fin.JobID {
		t.Fatalf("closed session status: %+v", got)
	}

	// The identical campaign submitted directly dedups onto the session's
	// job: same fingerprint, same cached bytes, no second execution.
	executedBefore := counter(s, "serve.jobs.executed")
	sub := submitOK(t, ts, body)
	if !sub.Deduped || sub.JobID != fin.JobID || sub.Fingerprint != fin.Fingerprint {
		t.Fatalf("direct submission did not dedup onto stream job: %+v vs %+v", sub, fin)
	}
	_, directReport := getJSON(t, ts, "/api/v1/jobs/"+sub.JobID+"/result")
	if !bytes.Equal(sessionReport, directReport) {
		t.Fatal("session and direct reports differ")
	}
	if got := counter(s, "serve.jobs.executed"); got != executedBefore {
		t.Fatalf("dedup executed a second run (%d -> %d)", executedBefore, got)
	}

	var rep CampaignReport
	if err := json.Unmarshal(sessionReport, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Streaming == nil || rep.Streaming.Strata == 0 {
		t.Fatalf("report has no streaming summary: %s", sessionReport)
	}
	if rep.Streaming.ResumedFrames != open.FramesTotal {
		t.Fatalf("job re-ingested: resumed %d of %d frames", rep.Streaming.ResumedFrames, open.FramesTotal)
	}
	if rep.Frames != open.FramesTotal {
		t.Fatalf("report frames %d, workload %d", rep.Frames, open.FramesTotal)
	}
}

// TestStreamPartialFinish: finishing mid-workload is a first-class
// campaign over the streamed prefix — its report covers exactly the
// ingested frames, and its fingerprint is distinct from the full
// stream's so the two never share a cache entry.
func TestStreamPartialFinish(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 8})
	body := streamCampaignBody(`"max_strata":8,"reservoir_cap":4`)

	open := openStream(t, ts, body)
	cut := open.FramesTotal / 2
	if code, raw := streamPost(t, ts, "/api/v1/streams/"+open.StreamID+"/chunks",
		fmt.Sprintf(`{"count":%d}`, cut)); code != http.StatusOK {
		t.Fatalf("chunk: %d: %s", code, raw)
	}
	code, raw := streamPost(t, ts, "/api/v1/streams/"+open.StreamID+"/finish", `{}`)
	if code != http.StatusAccepted {
		t.Fatalf("finish: %d: %s", code, raw)
	}
	var fin StreamFinishResponse
	if err := json.Unmarshal(raw, &fin); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, ts, fin.JobID); st.State != JobSucceeded {
		t.Fatalf("partial stream job: %+v", st)
	}
	_, rawRep := getJSON(t, ts, "/api/v1/jobs/"+fin.JobID+"/result")
	var rep CampaignReport
	if err := json.Unmarshal(rawRep, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Frames != cut {
		t.Fatalf("partial report covers %d frames, want %d", rep.Frames, cut)
	}

	// A full direct submission must NOT collide with the prefix campaign.
	sub := submitOK(t, ts, body)
	if sub.Fingerprint == fin.Fingerprint {
		t.Fatal("partial and full streams share a fingerprint")
	}
}

// TestStreamSessionValidation: the malformed-request surface — missing
// stream spec, unknown ids, bad chunk counts, empty finish, bad JSON,
// out-of-range stream parameters.
func TestStreamSessionValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 8})

	if code, _ := streamPost(t, ts, "/api/v1/streams", serviceCampaignBody(2, "")); code != http.StatusBadRequest {
		t.Fatalf("open without stream spec: %d", code)
	}
	if code, _ := streamPost(t, ts, "/api/v1/streams",
		streamCampaignBody(`"max_strata":100000`)); code != http.StatusBadRequest {
		t.Fatalf("open with oversize max_strata: %d", code)
	}
	if code, _ := getJSON(t, ts, "/api/v1/streams/stream-999999"); code != http.StatusNotFound {
		t.Fatalf("status of unknown stream: %d", code)
	}
	if code, _ := streamPost(t, ts, "/api/v1/streams/stream-999999/chunks", `{"count":1}`); code != http.StatusNotFound {
		t.Fatalf("chunk to unknown stream: %d", code)
	}

	open := openStream(t, ts, streamCampaignBody(`"max_strata":8,"reservoir_cap":4`))
	base := "/api/v1/streams/" + open.StreamID
	for _, bad := range []string{`{"count":0}`, `{"count":-3}`, fmt.Sprintf(`{"count":%d}`, maxChunkCount+1),
		`{"count":1,"bogus":true}`, `not json`, `{"count":1}{"count":1}`} {
		if code, _ := streamPost(t, ts, base+"/chunks", bad); code != http.StatusBadRequest {
			t.Fatalf("chunk body %q: status %d, want 400", bad, code)
		}
	}
	if code, _ := streamPost(t, ts, base+"/finish", `{}`); code != http.StatusBadRequest {
		t.Fatalf("finish of empty stream: %d", code)
	}

	// Abort closes the session; everything but status now conflicts.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+base, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("abort: %d", resp.StatusCode)
	}
	if code, _ := streamPost(t, ts, base+"/chunks", `{"count":1}`); code != http.StatusConflict {
		t.Fatalf("chunk after abort: %d", code)
	}
	if code, _ := streamPost(t, ts, base+"/finish", `{}`); code != http.StatusConflict {
		t.Fatalf("finish after abort: %d", code)
	}
	if st := streamStatus(t, ts, open.StreamID); st.State != "aborted" {
		t.Fatalf("aborted session state %q", st.State)
	}
}

// TestStreamSessionCapacity: the open-session bound returns 429 with a
// Retry-After, and aborting a session frees its slot.
func TestStreamSessionCapacity(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 8, MaxStreamSessions: 1})
	body := streamCampaignBody(`"max_strata":8,"reservoir_cap":4`)

	open := openStream(t, ts, body)
	resp, err := http.Post(ts.URL+"/api/v1/streams", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity open: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/streams/"+open.StreamID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	openStream(t, ts, body) // slot freed
}

// TestStreamSingleStratum: max_strata = 1 is a valid (if degenerate)
// streaming campaign end to end. Before the single-stratum absorb rule
// in internal/stream this panicked the job worker on the second
// distinct frame and took the whole daemon down.
func TestStreamSingleStratum(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 8})
	open := openStream(t, ts, streamCampaignBody(`"max_strata":1,"reservoir_cap":2`))

	code, raw := streamPost(t, ts, "/api/v1/streams/"+open.StreamID+"/chunks",
		fmt.Sprintf(`{"count":%d}`, open.FramesTotal))
	if code != http.StatusOK {
		t.Fatalf("chunk: status %d: %s", code, raw)
	}
	var st StreamStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Strata != 1 || st.FramesIngested != open.FramesTotal {
		t.Fatalf("single-stratum ingest: %+v", st)
	}
	code, raw = streamPost(t, ts, "/api/v1/streams/"+open.StreamID+"/finish", `{}`)
	if code != http.StatusAccepted {
		t.Fatalf("finish: status %d: %s", code, raw)
	}
	var fin StreamFinishResponse
	if err := json.Unmarshal(raw, &fin); err != nil {
		t.Fatal(err)
	}
	if job := waitTerminal(t, ts, fin.JobID); job.State != JobSucceeded {
		t.Fatalf("single-stratum job: %+v", job)
	}
}

// TestStreamSessionExpiry: an abandoned open session is expired by the
// sweeper after the idle timeout — freeing its capacity slot for the
// next open — while staying pollable as "expired"; after the retention
// window its status document is evicted too, so the session store
// never grows without bound.
func TestStreamSessionExpiry(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 8, MaxStreamSessions: 1})
	base := time.Now()
	cur := base
	var mu sync.Mutex
	s.streams.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return cur
	}
	advance := func(d time.Duration) {
		mu.Lock()
		cur = cur.Add(d)
		mu.Unlock()
	}
	body := streamCampaignBody(`"max_strata":8,"reservoir_cap":4`)

	// The abandoned session holds the only slot...
	abandoned := openStream(t, ts, body)
	if code, _ := streamPost(t, ts, "/api/v1/streams", body); code != http.StatusTooManyRequests {
		t.Fatalf("second open with a live session: %d, want 429", code)
	}

	// ...until the idle timeout: the open handler's sweep reclaims it.
	advance(DefaultStreamIdleTimeout)
	live := openStream(t, ts, body)
	if got := counter(s, "serve.streams.expired"); got != 1 {
		t.Fatalf("expired counter %d, want 1", got)
	}
	if st := streamStatus(t, ts, abandoned.StreamID); st.State != "expired" {
		t.Fatalf("abandoned session state %q, want expired", st.State)
	}
	if code, _ := streamPost(t, ts, "/api/v1/streams/"+abandoned.StreamID+"/chunks", `{"count":1}`); code != http.StatusConflict {
		t.Fatalf("chunk to expired session: %d, want 409", code)
	}

	// Ingest activity resets the idle clock: two chunks each just under
	// the timeout keep the live session open past 2x the timeout.
	for i := 0; i < 2; i++ {
		advance(DefaultStreamIdleTimeout - time.Second)
		if code, raw := streamPost(t, ts, "/api/v1/streams/"+live.StreamID+"/chunks", `{"count":1}`); code != http.StatusOK {
			t.Fatalf("chunk %d on active session: %d: %s", i, code, raw)
		}
	}

	// Past the retention window the expired session's status document
	// is gone entirely.
	advance(DefaultStreamRetention)
	if code, _ := getJSON(t, ts, "/api/v1/streams/"+abandoned.StreamID); code != http.StatusNotFound {
		t.Fatalf("expired session after retention: found (want 404)")
	}
	s.streams.mu.Lock()
	size := len(s.streams.byID)
	s.streams.mu.Unlock()
	if size != 1 {
		t.Fatalf("session store holds %d entries, want 1 (the live session)", size)
	}
}

// TestStreamChunkBatching: one chunk request larger than the ingest
// batch size ingests fully and identically to unbatched ingest — the
// lock is released between batches (so status polls interleave) without
// changing what is ingested or reported.
func TestStreamChunkBatching(t *testing.T) {
	defer func(old int) { streamIngestBatch = old }(streamIngestBatch)
	streamIngestBatch = 3
	_, ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 8})
	open := openStream(t, ts, streamCampaignBody(`"max_strata":8,"reservoir_cap":4`))

	count := 2*streamIngestBatch + 1 // forces three lock acquisitions
	if count > open.FramesTotal {
		t.Fatalf("workload too short for the test: %d frames", open.FramesTotal)
	}
	code, raw := streamPost(t, ts, "/api/v1/streams/"+open.StreamID+"/chunks",
		fmt.Sprintf(`{"count":%d}`, count))
	if code != http.StatusOK {
		t.Fatalf("chunk: status %d: %s", code, raw)
	}
	var st StreamStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.FramesIngested != count {
		t.Fatalf("batched chunk ingested %d frames, want %d", st.FramesIngested, count)
	}
	// An over-long chunk still clamps to the frames that remain.
	code, raw = streamPost(t, ts, "/api/v1/streams/"+open.StreamID+"/chunks",
		fmt.Sprintf(`{"count":%d}`, maxChunkCount))
	if code != http.StatusOK {
		t.Fatalf("over-long chunk: status %d: %s", code, raw)
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.FramesIngested != open.FramesTotal {
		t.Fatalf("clamped chunk ingested %d frames, want %d", st.FramesIngested, open.FramesTotal)
	}
}
