package tbr_test

import (
	"testing"

	"repro/internal/tbr"
	"repro/internal/workload"
)

// deferredPair simulates the same frames under TBR and TBDR configs.
func deferredPair(t *testing.T, alias string, n int) (imm, def tbr.FrameStats) {
	t.Helper()
	tr := workload.MustGenerate(workload.Profiles[alias], workload.TestScale)

	immCfg := tbr.DefaultConfig()
	defCfg := tbr.DefaultConfig()
	defCfg.DeferredShading = true

	simI, err := tbr.New(immCfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	simD, err := tbr.New(defCfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	start := tr.NumFrames() / 2
	for f := start; f < start+n; f++ {
		a := simI.SimulateFrame(f)
		b := simD.SimulateFrame(f)
		imm.Add(&a)
		def.Add(&b)
	}
	return imm, def
}

func TestDeferredShadingNeverShadesMore(t *testing.T) {
	for _, alias := range []string{"bbr1", "jjo"} {
		imm, def := deferredPair(t, alias, 6)
		if def.FragmentsShaded > imm.FragmentsShaded {
			t.Fatalf("%s: TBDR shaded more fragments (%d) than TBR (%d)",
				alias, def.FragmentsShaded, imm.FragmentsShaded)
		}
		// Rasterization work is identical: HSR changes shading, not
		// coverage.
		if def.QuadsRasterized != imm.QuadsRasterized {
			t.Fatalf("%s: quad counts differ: %d vs %d", alias, def.QuadsRasterized, imm.QuadsRasterized)
		}
		if def.PrimsVisible != imm.PrimsVisible || def.TileEntries != imm.TileEntries {
			t.Fatalf("%s: geometry/tiling work differs", alias)
		}
	}
}

func TestDeferredShadingRemovesOverdrawShading(t *testing.T) {
	// 3D scenes have overdraw that early-Z alone cannot remove (back-to-
	// front submission order); HSR must shade strictly fewer fragments.
	imm, def := deferredPair(t, "bbr1", 8)
	if imm.FragmentsShaded == 0 {
		t.Fatal("no shading at all")
	}
	if def.FragmentsShaded >= imm.FragmentsShaded {
		t.Fatalf("HSR did not remove any overdraw: %d vs %d",
			def.FragmentsShaded, imm.FragmentsShaded)
	}
	// HSR must still shade every finally-visible fragment: at least
	// half of the TBR shading survives on these scenes (the rest was
	// overdraw). Guards against the depth-equality comparison silently
	// failing and shading nothing.
	if def.FragmentsShaded < imm.FragmentsShaded/2 {
		t.Fatalf("HSR shaded suspiciously few fragments: %d vs %d",
			def.FragmentsShaded, imm.FragmentsShaded)
	}
	// Every covered pixel is shaded at most once under HSR: shaded
	// fragments cannot exceed the screen pixel count per frame.
	tr := workload.MustGenerate(workload.Profiles["bbr1"], workload.TestScale)
	maxPerFrame := uint64(tr.Viewport.Width * tr.Viewport.Height)
	if def.FragmentsShaded > 8*maxPerFrame {
		t.Fatalf("TBDR shaded %d fragments over 8 frames, more than %d pixels",
			def.FragmentsShaded, 8*maxPerFrame)
	}
}

func TestDeferredShadingConservesFragments(t *testing.T) {
	// Shaded + occluded must equal total coverage in both modes.
	imm, def := deferredPair(t, "spd", 4)
	if imm.FragmentsShaded+imm.FragmentsOccluded != def.FragmentsShaded+def.FragmentsOccluded {
		t.Fatalf("coverage not conserved: TBR %d+%d vs TBDR %d+%d",
			imm.FragmentsShaded, imm.FragmentsOccluded,
			def.FragmentsShaded, def.FragmentsOccluded)
	}
}

func TestDeferredShadingDeterministic(t *testing.T) {
	_, a := deferredPair(t, "hwh", 3)
	_, b := deferredPair(t, "hwh", 3)
	if a != b {
		t.Fatal("TBDR simulation not deterministic")
	}
}

func TestDeferredFrameIsolation(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hwh"], workload.TestScale)
	cfg := tbr.DefaultConfig()
	cfg.DeferredShading = true
	simA, err := tbr.New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	direct := simA.SimulateFrame(30)
	simB, err := tbr.New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 30; f++ {
		simB.SimulateFrame(f)
	}
	if inSeq := simB.SimulateFrame(30); inSeq != direct {
		t.Fatal("TBDR frame not isolation-stable")
	}
}
