// Package mem models the memory hierarchy of the simulated TBR GPU: the
// set-associative first-level caches (vertex, texture, tile), the shared
// L2, and a banked LPDDR-style DRAM with open-row policy — the roles
// DRAMsim2 and the cache models play inside TEAPOT.
//
// The timing interface is transaction-level: Access(now, addr, write)
// returns the cycle at which the request completes, advancing internal
// busy state. All caches are write-back, write-allocate with true LRU
// replacement.
package mem

import (
	"fmt"
	"math/bits"
)

// Level is any component that can serve memory requests: a cache or the
// DRAM at the bottom of the hierarchy.
type Level interface {
	// Access performs a read or write of one item at addr starting no
	// earlier than cycle now, returning the completion cycle.
	Access(now uint64, addr uint64, write bool) uint64
	// Name identifies the level in stats dumps.
	Name() string
}

// CacheConfig sizes a cache. Sizes follow Table I of the paper.
type CacheConfig struct {
	Name      string
	SizeBytes int
	LineBytes int
	Ways      int
	// Latency is the hit latency in cycles.
	Latency uint64
	// Banks is kept for configuration fidelity with Table I; bank
	// conflicts are not modeled (single-ported timing is subsumed by
	// the pipeline's one-access-per-cycle issue rate).
	Banks int
}

// Validate reports configuration errors.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("mem: cache %q has non-positive geometry", c.Name)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("mem: cache %q size %d not divisible by line*ways (%d*%d)",
			c.Name, c.SizeBytes, c.LineBytes, c.Ways)
	}
	lines := c.SizeBytes / c.LineBytes
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: cache %q would have %d sets (must be a power of two)", c.Name, sets)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: cache %q line size %d must be a power of two", c.Name, c.LineBytes)
	}
	return nil
}

// CacheStats counts cache activity.
type CacheStats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// Add accumulates o into s. Keep this in sync with the field list — the
// reflection test in mem_test.go asserts every exported field is summed.
func (s *CacheStats) Add(o CacheStats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Writebacks += o.Writebacks
}

// HitRate returns hits/accesses, or 0 with no accesses.
func (s CacheStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// cacheLine is 24 bytes: validity, dirtiness and the installation epoch
// share one word (meta = epoch<<1 | dirty), so the hot hit check is two
// compares over a denser arena.
type cacheLine struct {
	tag uint64
	// lastUse implements true LRU via a monotonically increasing
	// access stamp.
	lastUse uint64
	// meta packs the invalidation epoch (bits 63..1) and the dirty flag
	// (bit 0). A line is live only when meta>>1 matches the cache's
	// epoch; the cache epoch starts at 1 so zero-value lines are dead.
	// Bumping the cache epoch invalidates every line in O(1) — the
	// operation ColdStart performs once per isolated unit of work
	// (frame or tile), where a full array wipe would dominate the
	// simulation.
	meta uint64
}

// Cache is a set-associative, write-back, write-allocate cache.
//
// The line array is one flat arena (set-major, way-minor) allocated at
// construction and never reallocated: ColdStart, Reset, Flush and
// WritebackAll all operate in place (epoch bumps and bitset scans), so
// a cache reused across thousands of isolated tiles performs zero
// allocations after NewCache.
type Cache struct {
	cfg       CacheConfig
	lines     []cacheLine // flat backing: index = set*ways + way
	ways      int
	setMask   uint64
	setShift  uint
	lineShift uint
	next      Level
	// nextCache/nextDRAM devirtualize the next-level call for the two
	// concrete types every shipped hierarchy is built from; at most one
	// is non-nil, and nextAccess falls back to the interface otherwise.
	nextCache *Cache
	nextDRAM  *DRAM
	stamp     uint64
	epoch     uint64
	// dirty is a bitset over line indices recording flush/writeback
	// candidates, so Flush and WritebackAll visit only candidate lines
	// (in ascending index order, batched 64 lines per word) instead of
	// sorting an append-log or scanning the whole array. Bits may be
	// stale (line since evicted or from an old epoch); consumers
	// re-check the line's dirty flag and epoch, and clear each word as
	// they pass it.
	dirty []uint64
	// dirtySum is a second-level bitset (one bit per dirty word), so a
	// drain over a mostly-clean cache — every per-tile flush of the
	// sharded raster stage — skips zero words without loading them.
	dirtySum []uint64
	Stats    CacheStats
}

// NewCache builds a cache over the given next level. It panics on an
// invalid configuration (configurations are static in this codebase).
func NewCache(cfg CacheConfig, next Level) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if next == nil {
		panic("mem: cache needs a next level")
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	numSets := lines / cfg.Ways
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	setShift := uint(0)
	for 1<<setShift < numSets {
		setShift++
	}
	numDirtyWords := (lines + 63) / 64
	c := &Cache{
		cfg:       cfg,
		lines:     make([]cacheLine, lines),
		ways:      cfg.Ways,
		dirty:     make([]uint64, numDirtyWords),
		dirtySum:  make([]uint64, (numDirtyWords+63)/64),
		setMask:   uint64(numSets - 1),
		setShift:  setShift,
		lineShift: shift,
		next:      next,
		epoch:     1, // zero-value lines (meta 0) must read as dead
	}
	switch n := next.(type) {
	case *Cache:
		c.nextCache = n
	case *DRAM:
		c.nextDRAM = n
	}
	return c
}

// nextAccess forwards to the next level with a direct call when the
// concrete type is known. The dispatch branches live here so they can
// inline into the (already call-heavy) miss and drain paths instead of
// adding a frame to every forwarded access.
func (c *Cache) nextAccess(now uint64, addr uint64, write bool) uint64 {
	if d := c.nextDRAM; d != nil {
		return d.Access(now, addr, write)
	}
	if n := c.nextCache; n != nil {
		return n.Access(now, addr, write)
	}
	return c.next.Access(now, addr, write)
}

// Name implements Level.
func (c *Cache) Name() string { return c.cfg.Name }

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// noteDirty records a flat line index as a flush/writeback candidate.
func (c *Cache) noteDirty(idx int) {
	w := idx >> 6
	c.dirty[w] |= 1 << (uint(idx) & 63)
	c.dirtySum[w>>6] |= 1 << (uint(w) & 63)
}

// drainDirty writes back every live dirty line in ascending line index
// order — the order the historical full-array scan visited lines in,
// which downstream timing (DRAM row-buffer state) depends on. The
// bitset is consumed word by word: 64 candidate lines are probed per
// word load, and stale bits (evicted lines, old epochs) are discarded
// by the same pass that would have re-checked them individually.
// Returns the completion time of the last writeback.
func (c *Cache) drainDirty(now uint64) uint64 {
	done := now
	epoch := c.epoch
	for si, sw := range c.dirtySum {
		if sw == 0 {
			continue
		}
		sbase := si << 6
		for sw != 0 {
			wi := sbase + bits.TrailingZeros64(sw)
			sw &= sw - 1
			w := c.dirty[wi]
			base := wi << 6
			for w != 0 {
				idx := base + bits.TrailingZeros64(w)
				w &= w - 1
				ln := &c.lines[idx]
				if ln.meta == epoch<<1|1 { // live and dirty
					c.Stats.Writebacks++
					setIdx := uint64(idx / c.ways)
					addr := (ln.tag*(c.setMask+1) + setIdx) << c.lineShift
					var d uint64
					if dr := c.nextDRAM; dr != nil {
						d = dr.Access(now, addr, true)
					} else {
						d = c.nextAccess(now, addr, true)
					}
					if d > done {
						done = d
					}
					ln.meta &^= 1
				}
			}
			c.dirty[wi] = 0
		}
		c.dirtySum[si] = 0
	}
	return done
}

// Flush invalidates every line, writing back dirty ones (counted in
// Stats.Writebacks and forwarded to the next level at time `now`).
// It returns the completion time of the last writeback.
func (c *Cache) Flush(now uint64) uint64 {
	done := c.drainDirty(now)
	c.epoch++
	return done
}

// WritebackAll writes every dirty line to the next level, clearing
// dirty bits but keeping the contents resident — the end-of-frame
// behaviour when caches stay warm across frames.
func (c *Cache) WritebackAll(now uint64) uint64 {
	return c.drainDirty(now)
}

// Reset invalidates every line without writing anything back and zeroes
// the statistics. Used at frame boundaries when simulating frames as
// independent units. Stale dirty bits are discarded lazily by the next
// drain (the epoch check rejects them), so Reset never touches the
// line arena.
func (c *Cache) Reset() {
	c.epoch++
	c.Stats = CacheStats{}
	c.stamp = 0
}

// ResetStats zeroes counters but keeps cache contents.
func (c *Cache) ResetStats() { c.Stats = CacheStats{} }

// ColdStart invalidates every line without writebacks and rewinds the
// LRU clock while keeping the cumulative statistics — the state of a
// cache at the start of an isolated unit of work (a frame simulated in
// isolation, or one tile of the sharded raster stage). O(1): the epoch
// bump invalidates lazily and nothing is reallocated, so a shard can be
// reused for every tile of a campaign without a single allocation.
func (c *Cache) ColdStart() {
	c.epoch++
	c.stamp = 0
}

// Access implements Level.
func (c *Cache) Access(now uint64, addr uint64, write bool) uint64 {
	c.Stats.Accesses++
	c.stamp++
	lineAddr := addr >> c.lineShift
	setIdx := lineAddr & c.setMask
	tag := lineAddr >> c.setShift
	base := int(setIdx) * c.ways
	epoch := c.epoch

	// Hit path: a line is live iff meta>>1 matches the current epoch.
	// Every shipped configuration is 2-way, so the common case is the
	// unrolled two-probe check (at most one way can hold a live copy of
	// a tag, so probe order does not affect the result).
	if c.ways == 2 {
		idx := base
		ln := &c.lines[idx]
		if ln.tag != tag || ln.meta>>1 != epoch {
			idx = base + 1
			ln = &c.lines[idx]
			if ln.tag != tag || ln.meta>>1 != epoch {
				return c.accessMiss(now, addr, write, setIdx, tag, base)
			}
		}
		c.Stats.Hits++
		ln.lastUse = c.stamp
		if write && ln.meta&1 == 0 {
			ln.meta |= 1
			c.noteDirty(idx)
		}
		return now + c.cfg.Latency
	}

	set := c.lines[base : base+c.ways]
	for wi := range set {
		ln := &set[wi]
		if ln.tag == tag && ln.meta>>1 == epoch {
			c.Stats.Hits++
			ln.lastUse = c.stamp
			if write && ln.meta&1 == 0 {
				ln.meta |= 1
				c.noteDirty(base + wi)
			}
			return now + c.cfg.Latency
		}
	}
	return c.accessMiss(now, addr, write, setIdx, tag, base)
}

// accessMiss handles the fill path of Access: victim selection (invalid
// first, else LRU), victim writeback, and the demand fill.
func (c *Cache) accessMiss(now uint64, addr uint64, write bool, setIdx, tag uint64, base int) uint64 {
	epoch := c.epoch
	set := c.lines[base : base+c.ways]
	c.Stats.Misses++
	victim := 0
	for wi := range set {
		if set[wi].meta>>1 != epoch {
			victim = wi
			break
		}
		if set[wi].lastUse < set[victim].lastUse {
			victim = wi
		}
	}
	ln := &set[victim]
	fillStart := now + c.cfg.Latency
	if ln.meta == epoch<<1|1 { // live and dirty
		// Write back the victim. The writeback proceeds in the
		// background; it occupies the next level but does not delay
		// the demand fill beyond the level's own queuing.
		c.Stats.Writebacks++
		victimAddr := (ln.tag*(c.setMask+1) + setIdx) << c.lineShift
		if dr := c.nextDRAM; dr != nil {
			dr.Access(now, victimAddr, true)
		} else {
			c.nextAccess(now, victimAddr, true)
		}
	}
	var done uint64
	if dr := c.nextDRAM; dr != nil {
		done = dr.Access(fillStart, addr, false)
	} else {
		done = c.nextAccess(fillStart, addr, false)
	}
	meta := epoch << 1
	if write {
		meta |= 1
	}
	*ln = cacheLine{tag: tag, lastUse: c.stamp, meta: meta}
	if write {
		c.noteDirty(base + victim)
	}
	return done
}

// AccessChain probes the address set addrs as a dependent chain of
// reads or writes: each access issues one cycle after the previous one
// completes (the pipeline's one-probe-per-cycle issue rate) and the
// completion cycle of the last access is returned. Equivalent to
// calling Access in a loop with cur = Access(cur+1, addr, write); the
// batched form lets a caller probe a quad's or tile's whole line set in
// one call.
// The 2-way hit path is unrolled inline with the cache geometry hoisted
// out of the loop: the texture units probe every quad's line set through
// here, so per-element call overhead is the dominant cost of a warm
// chain. Misses and exotic associativities fall back to Access/accessMiss
// with identical semantics.
func (c *Cache) AccessChain(now uint64, addrs []uint64, write bool) uint64 {
	cur := now
	if c.ways != 2 {
		for _, a := range addrs {
			cur = c.Access(cur+1, a, write)
		}
		return cur
	}
	lineShift, setMask, setShift := c.lineShift, c.setMask, c.setShift
	epoch := c.epoch
	latency := c.cfg.Latency
	for _, a := range addrs {
		c.Stats.Accesses++
		c.stamp++
		lineAddr := a >> lineShift
		setIdx := lineAddr & setMask
		tag := lineAddr >> setShift
		base := int(setIdx) * 2
		idx := base
		ln := &c.lines[idx]
		if ln.tag != tag || ln.meta>>1 != epoch {
			idx = base + 1
			ln = &c.lines[idx]
			if ln.tag != tag || ln.meta>>1 != epoch {
				cur = c.accessMiss(cur+1, a, write, setIdx, tag, base)
				continue
			}
		}
		c.Stats.Hits++
		ln.lastUse = c.stamp
		if write && ln.meta&1 == 0 {
			ln.meta |= 1
			c.noteDirty(idx)
		}
		cur = cur + 1 + latency
	}
	return cur
}

// DRAMConfig sizes the main memory model (Table I: dual-channel LPDDR3,
// 4 B/cycle, 50-100 cycle latency, 64 B lines, 8 banks).
type DRAMConfig struct {
	// Channels is the number of independent channels.
	Channels int
	// Banks per channel.
	Banks int
	// RowBytes is the open-row (page) size per bank.
	RowBytes int
	// RowHitLatency and RowMissLatency bound the access latency.
	RowHitLatency, RowMissLatency uint64
	// LineBytes is the transfer granularity.
	LineBytes int
	// BytesPerCycle is the per-channel bandwidth.
	BytesPerCycle int
}

// DefaultDRAMConfig matches Table I.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		Channels:       2,
		Banks:          8,
		RowBytes:       2048,
		RowHitLatency:  50,
		RowMissLatency: 100,
		LineBytes:      64,
		BytesPerCycle:  4,
	}
}

// DRAMStats counts memory activity.
type DRAMStats struct {
	Accesses  uint64
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64
	// BusyCycles accumulates channel occupancy for bandwidth
	// utilization reporting.
	BusyCycles uint64
}

// DRAM is the open-row banked main memory model.
type DRAM struct {
	cfg DRAMConfig
	// openRow is the flat [channel*Banks + bank] currently open row
	// (+1; 0 = none).
	openRow []uint64
	// busyUntil[channel] is the data-bus availability time.
	busyUntil []uint64
	// transfer is the per-line bus occupancy, hoisted out of Access.
	transfer uint64
	// pow2 geometry fast path: when line size, row size, channel and
	// bank counts are all powers of two (every shipped configuration),
	// Access replaces its four divisions with shifts and masks. The
	// general division path remains for exotic configurations.
	pow2      bool
	lineShift uint
	rowShift  uint
	chanMask  int
	bankMask  int
	Stats     DRAMStats
}

// Add accumulates o into s. Keep in sync with the field list — the
// reflection test in mem_test.go asserts every exported field is summed.
func (s *DRAMStats) Add(o DRAMStats) {
	s.Accesses += o.Accesses
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
	s.BusyCycles += o.BusyCycles
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

func log2u(v int) uint {
	s := uint(0)
	for 1<<s < v {
		s++
	}
	return s
}

// NewDRAM builds the memory model. It panics on non-positive geometry.
func NewDRAM(cfg DRAMConfig) *DRAM {
	if cfg.Channels <= 0 || cfg.Banks <= 0 || cfg.RowBytes <= 0 || cfg.LineBytes <= 0 || cfg.BytesPerCycle <= 0 {
		panic("mem: invalid DRAM configuration")
	}
	d := &DRAM{cfg: cfg}
	d.openRow = make([]uint64, cfg.Channels*cfg.Banks)
	d.busyUntil = make([]uint64, cfg.Channels)
	d.transfer = uint64(cfg.LineBytes / cfg.BytesPerCycle)
	if isPow2(cfg.LineBytes) && isPow2(cfg.RowBytes) && isPow2(cfg.Channels) && isPow2(cfg.Banks) {
		d.pow2 = true
		d.lineShift = log2u(cfg.LineBytes)
		d.rowShift = log2u(cfg.RowBytes)
		d.chanMask = cfg.Channels - 1
		d.bankMask = cfg.Banks - 1
	}
	return d
}

// Name implements Level.
func (d *DRAM) Name() string { return "dram" }

// Config returns the DRAM geometry.
func (d *DRAM) Config() DRAMConfig { return d.cfg }

// Reset clears open rows, bus state and statistics.
func (d *DRAM) Reset() {
	for i := range d.openRow {
		d.openRow[i] = 0
	}
	for i := range d.busyUntil {
		d.busyUntil[i] = 0
	}
	d.Stats = DRAMStats{}
}

// ResetStats zeroes counters but keeps row-buffer state.
func (d *DRAM) ResetStats() { d.Stats = DRAMStats{} }

// ResetTime rewinds the bus-availability clocks and closes all rows but
// keeps statistics. Used at frame boundaries, where unit clocks restart
// from zero.
func (d *DRAM) ResetTime() {
	for i := range d.openRow {
		d.openRow[i] = 0
	}
	for i := range d.busyUntil {
		d.busyUntil[i] = 0
	}
}

// Access implements Level: one line transfer.
func (d *DRAM) Access(now uint64, addr uint64, write bool) uint64 {
	d.Stats.Accesses++
	if write {
		d.Stats.Writes++
	} else {
		d.Stats.Reads++
	}
	var (
		row     uint64
		channel int
		bank    int
	)
	if d.pow2 {
		channel = int(addr>>d.lineShift) & d.chanMask
		row = addr >> d.rowShift
		bank = int(row) & d.bankMask
	} else {
		line := addr / uint64(d.cfg.LineBytes)
		channel = int(line) % d.cfg.Channels
		row = addr / uint64(d.cfg.RowBytes)
		bank = int(row) % d.cfg.Banks
	}

	lat := d.cfg.RowHitLatency
	slot := &d.openRow[channel*d.cfg.Banks+bank]
	if *slot != row+1 {
		lat = d.cfg.RowMissLatency
		d.Stats.RowMisses++
		*slot = row + 1
	} else {
		d.Stats.RowHits++
	}

	start := now
	if d.busyUntil[channel] > start {
		start = d.busyUntil[channel]
	}
	done := start + lat + d.transfer
	d.busyUntil[channel] = start + d.transfer
	d.Stats.BusyCycles += d.transfer
	return done
}
