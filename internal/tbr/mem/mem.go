// Package mem models the memory hierarchy of the simulated TBR GPU: the
// set-associative first-level caches (vertex, texture, tile), the shared
// L2, and a banked LPDDR-style DRAM with open-row policy — the roles
// DRAMsim2 and the cache models play inside TEAPOT.
//
// The timing interface is transaction-level: Access(now, addr, write)
// returns the cycle at which the request completes, advancing internal
// busy state. All caches are write-back, write-allocate with true LRU
// replacement.
package mem

import (
	"fmt"
	"slices"
)

// Level is any component that can serve memory requests: a cache or the
// DRAM at the bottom of the hierarchy.
type Level interface {
	// Access performs a read or write of one item at addr starting no
	// earlier than cycle now, returning the completion cycle.
	Access(now uint64, addr uint64, write bool) uint64
	// Name identifies the level in stats dumps.
	Name() string
}

// CacheConfig sizes a cache. Sizes follow Table I of the paper.
type CacheConfig struct {
	Name      string
	SizeBytes int
	LineBytes int
	Ways      int
	// Latency is the hit latency in cycles.
	Latency uint64
	// Banks is kept for configuration fidelity with Table I; bank
	// conflicts are not modeled (single-ported timing is subsumed by
	// the pipeline's one-access-per-cycle issue rate).
	Banks int
}

// Validate reports configuration errors.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("mem: cache %q has non-positive geometry", c.Name)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("mem: cache %q size %d not divisible by line*ways (%d*%d)",
			c.Name, c.SizeBytes, c.LineBytes, c.Ways)
	}
	lines := c.SizeBytes / c.LineBytes
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: cache %q would have %d sets (must be a power of two)", c.Name, sets)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: cache %q line size %d must be a power of two", c.Name, c.LineBytes)
	}
	return nil
}

// CacheStats counts cache activity.
type CacheStats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// HitRate returns hits/accesses, or 0 with no accesses.
func (s CacheStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type cacheLine struct {
	tag   uint64
	valid bool
	dirty bool
	// lastUse implements true LRU via a monotonically increasing
	// access stamp.
	lastUse uint64
	// epoch tags the invalidation generation the line was installed in;
	// a line is live only when its epoch matches the cache's. Bumping
	// the cache epoch invalidates every line in O(1) — the operation
	// ColdStart performs once per isolated unit of work (frame or
	// tile), where a full array wipe would dominate the simulation.
	epoch uint64
}

// Cache is a set-associative, write-back, write-allocate cache.
type Cache struct {
	cfg       CacheConfig
	sets      [][]cacheLine
	setMask   uint64
	setShift  uint
	lineShift uint
	next      Level
	stamp     uint64
	epoch     uint64
	// dirtyRefs records lines that became dirty since the last
	// flush/writeback as packed set*ways+way indices, so Flush and
	// WritebackAll visit only candidate lines instead of scanning the
	// whole array. Entries may be stale (line since evicted or from an
	// old epoch) or duplicated; consumers re-check the dirty flag.
	dirtyRefs []int32
	Stats     CacheStats
}

// NewCache builds a cache over the given next level. It panics on an
// invalid configuration (configurations are static in this codebase).
func NewCache(cfg CacheConfig, next Level) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if next == nil {
		panic("mem: cache needs a next level")
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	numSets := lines / cfg.Ways
	sets := make([][]cacheLine, numSets)
	backing := make([]cacheLine, lines)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	setShift := uint(0)
	for 1<<setShift < numSets {
		setShift++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		setMask:   uint64(numSets - 1),
		setShift:  setShift,
		lineShift: shift,
		next:      next,
	}
}

// Name implements Level.
func (c *Cache) Name() string { return c.cfg.Name }

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// noteDirty records a line as a flush/writeback candidate.
func (c *Cache) noteDirty(setIdx uint64, way int) {
	c.dirtyRefs = append(c.dirtyRefs, int32(int(setIdx)*c.cfg.Ways+way))
}

// sortedDirtyRefs returns the recorded dirty candidates in ascending
// (set, way) order — the order the old full-array scan visited lines
// in, which downstream timing (DRAM row-buffer state) depends on.
func (c *Cache) sortedDirtyRefs() []int32 {
	slices.Sort(c.dirtyRefs)
	return c.dirtyRefs
}

// Flush invalidates every line, writing back dirty ones (counted in
// Stats.Writebacks and forwarded to the next level at time `now`).
// It returns the completion time of the last writeback.
func (c *Cache) Flush(now uint64) uint64 {
	done := now
	for _, ref := range c.sortedDirtyRefs() {
		si := uint64(int(ref) / c.cfg.Ways)
		ln := &c.sets[si][int(ref)%c.cfg.Ways]
		if ln.valid && ln.epoch == c.epoch && ln.dirty {
			c.Stats.Writebacks++
			addr := (ln.tag*(c.setMask+1) + si) << c.lineShift
			if d := c.next.Access(now, addr, true); d > done {
				done = d
			}
			ln.dirty = false // skip duplicate refs to the same line
		}
	}
	c.dirtyRefs = c.dirtyRefs[:0]
	c.epoch++
	return done
}

// WritebackAll writes every dirty line to the next level, clearing
// dirty bits but keeping the contents resident — the end-of-frame
// behaviour when caches stay warm across frames.
func (c *Cache) WritebackAll(now uint64) uint64 {
	done := now
	for _, ref := range c.sortedDirtyRefs() {
		si := uint64(int(ref) / c.cfg.Ways)
		ln := &c.sets[si][int(ref)%c.cfg.Ways]
		if ln.valid && ln.epoch == c.epoch && ln.dirty {
			c.Stats.Writebacks++
			addr := (ln.tag*(c.setMask+1) + si) << c.lineShift
			if d := c.next.Access(now, addr, true); d > done {
				done = d
			}
			ln.dirty = false
		}
	}
	c.dirtyRefs = c.dirtyRefs[:0]
	return done
}

// Reset invalidates every line without writing anything back and zeroes
// the statistics. Used at frame boundaries when simulating frames as
// independent units.
func (c *Cache) Reset() {
	c.epoch++
	c.dirtyRefs = c.dirtyRefs[:0]
	c.Stats = CacheStats{}
	c.stamp = 0
}

// ResetStats zeroes counters but keeps cache contents.
func (c *Cache) ResetStats() { c.Stats = CacheStats{} }

// ColdStart invalidates every line without writebacks and rewinds the
// LRU clock while keeping the cumulative statistics — the state of a
// cache at the start of an isolated unit of work (a frame simulated in
// isolation, or one tile of the sharded raster stage). O(1): the epoch
// bump invalidates lazily.
func (c *Cache) ColdStart() {
	c.epoch++
	c.dirtyRefs = c.dirtyRefs[:0]
	c.stamp = 0
}

// Access implements Level.
func (c *Cache) Access(now uint64, addr uint64, write bool) uint64 {
	c.Stats.Accesses++
	c.stamp++
	lineAddr := addr >> c.lineShift
	setIdx := lineAddr & c.setMask
	tag := lineAddr >> c.setShift
	set := c.sets[setIdx]

	// Hit path.
	for wi := range set {
		ln := &set[wi]
		if ln.valid && ln.epoch == c.epoch && ln.tag == tag {
			c.Stats.Hits++
			ln.lastUse = c.stamp
			if write && !ln.dirty {
				ln.dirty = true
				c.noteDirty(setIdx, wi)
			}
			return now + c.cfg.Latency
		}
	}

	// Miss: pick victim (invalid first, else LRU).
	c.Stats.Misses++
	victim := 0
	for wi := range set {
		if !set[wi].valid || set[wi].epoch != c.epoch {
			victim = wi
			break
		}
		if set[wi].lastUse < set[victim].lastUse {
			victim = wi
		}
	}
	ln := &set[victim]
	fillStart := now + c.cfg.Latency
	if ln.valid && ln.epoch == c.epoch && ln.dirty {
		// Write back the victim. The writeback proceeds in the
		// background; it occupies the next level but does not delay
		// the demand fill beyond the level's own queuing.
		c.Stats.Writebacks++
		victimAddr := (ln.tag*(c.setMask+1) + setIdx) << c.lineShift
		c.next.Access(now, victimAddr, true)
	}
	done := c.next.Access(fillStart, addr, false)
	*ln = cacheLine{tag: tag, valid: true, dirty: write, lastUse: c.stamp, epoch: c.epoch}
	if write {
		c.noteDirty(setIdx, victim)
	}
	return done
}

// DRAMConfig sizes the main memory model (Table I: dual-channel LPDDR3,
// 4 B/cycle, 50-100 cycle latency, 64 B lines, 8 banks).
type DRAMConfig struct {
	// Channels is the number of independent channels.
	Channels int
	// Banks per channel.
	Banks int
	// RowBytes is the open-row (page) size per bank.
	RowBytes int
	// RowHitLatency and RowMissLatency bound the access latency.
	RowHitLatency, RowMissLatency uint64
	// LineBytes is the transfer granularity.
	LineBytes int
	// BytesPerCycle is the per-channel bandwidth.
	BytesPerCycle int
}

// DefaultDRAMConfig matches Table I.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		Channels:       2,
		Banks:          8,
		RowBytes:       2048,
		RowHitLatency:  50,
		RowMissLatency: 100,
		LineBytes:      64,
		BytesPerCycle:  4,
	}
}

// DRAMStats counts memory activity.
type DRAMStats struct {
	Accesses  uint64
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64
	// BusyCycles accumulates channel occupancy for bandwidth
	// utilization reporting.
	BusyCycles uint64
}

// DRAM is the open-row banked main memory model.
type DRAM struct {
	cfg DRAMConfig
	// openRow[channel][bank] is the currently open row (+1; 0 = none).
	openRow [][]uint64
	// busyUntil[channel] is the data-bus availability time.
	busyUntil []uint64
	Stats     DRAMStats
}

// NewDRAM builds the memory model. It panics on non-positive geometry.
func NewDRAM(cfg DRAMConfig) *DRAM {
	if cfg.Channels <= 0 || cfg.Banks <= 0 || cfg.RowBytes <= 0 || cfg.LineBytes <= 0 || cfg.BytesPerCycle <= 0 {
		panic("mem: invalid DRAM configuration")
	}
	d := &DRAM{cfg: cfg}
	d.openRow = make([][]uint64, cfg.Channels)
	for i := range d.openRow {
		d.openRow[i] = make([]uint64, cfg.Banks)
	}
	d.busyUntil = make([]uint64, cfg.Channels)
	return d
}

// Name implements Level.
func (d *DRAM) Name() string { return "dram" }

// Config returns the DRAM geometry.
func (d *DRAM) Config() DRAMConfig { return d.cfg }

// Reset clears open rows, bus state and statistics.
func (d *DRAM) Reset() {
	for i := range d.openRow {
		for j := range d.openRow[i] {
			d.openRow[i][j] = 0
		}
	}
	for i := range d.busyUntil {
		d.busyUntil[i] = 0
	}
	d.Stats = DRAMStats{}
}

// ResetStats zeroes counters but keeps row-buffer state.
func (d *DRAM) ResetStats() { d.Stats = DRAMStats{} }

// ResetTime rewinds the bus-availability clocks and closes all rows but
// keeps statistics. Used at frame boundaries, where unit clocks restart
// from zero.
func (d *DRAM) ResetTime() {
	for i := range d.openRow {
		for j := range d.openRow[i] {
			d.openRow[i][j] = 0
		}
	}
	for i := range d.busyUntil {
		d.busyUntil[i] = 0
	}
}

// Access implements Level: one line transfer.
func (d *DRAM) Access(now uint64, addr uint64, write bool) uint64 {
	d.Stats.Accesses++
	if write {
		d.Stats.Writes++
	} else {
		d.Stats.Reads++
	}
	line := addr / uint64(d.cfg.LineBytes)
	channel := int(line) % d.cfg.Channels
	row := addr / uint64(d.cfg.RowBytes)
	bank := int(row) % d.cfg.Banks

	lat := d.cfg.RowHitLatency
	if d.openRow[channel][bank] != row+1 {
		lat = d.cfg.RowMissLatency
		d.Stats.RowMisses++
		d.openRow[channel][bank] = row + 1
	} else {
		d.Stats.RowHits++
	}

	transfer := uint64(d.cfg.LineBytes / d.cfg.BytesPerCycle)
	start := now
	if d.busyUntil[channel] > start {
		start = d.busyUntil[channel]
	}
	done := start + lat + transfer
	d.busyUntil[channel] = start + transfer
	d.Stats.BusyCycles += transfer
	return done
}
