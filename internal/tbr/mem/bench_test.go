package mem

import (
	"testing"

	"repro/internal/xmath/stats"
)

func BenchmarkCacheHit(b *testing.B) {
	c := NewCache(CacheConfig{Name: "l1", SizeBytes: 32 << 10, LineBytes: 64, Ways: 2, Latency: 2},
		&flatMem{latency: 100})
	c.Access(0, 0x100, false) // warm the line
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i), 0x100, false)
	}
}

func BenchmarkCacheRandomAccess(b *testing.B) {
	dram := NewDRAM(DefaultDRAMConfig())
	l2 := NewCache(CacheConfig{Name: "l2", SizeBytes: 256 << 10, LineBytes: 64, Ways: 2, Latency: 18}, dram)
	l1 := NewCache(CacheConfig{Name: "l1", SizeBytes: 8 << 10, LineBytes: 64, Ways: 2, Latency: 2}, l2)
	rng := stats.NewRNG(7)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 22))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l1.Access(uint64(i), addrs[i&4095], i&7 == 0)
	}
}

func BenchmarkDRAMAccess(b *testing.B) {
	d := NewDRAM(DefaultDRAMConfig())
	rng := stats.NewRNG(11)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 24))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Access(uint64(i), addrs[i&4095], false)
	}
}
