package mem

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func testShardConfig() ShardConfig {
	return ShardConfig{
		TileCache: CacheConfig{
			Name: "tile", SizeBytes: 32 << 10, LineBytes: 64, Ways: 2, Latency: 2, Banks: 1,
		},
		TextureCache: CacheConfig{
			Name: "texture", SizeBytes: 8 << 10, LineBytes: 64, Ways: 2, Latency: 2, Banks: 1,
		},
		NumTextureCaches: 4,
		L2: CacheConfig{
			Name: "l2", SizeBytes: 256 << 10, LineBytes: 64, Ways: 2, Latency: 18, Banks: 8,
		},
		DRAM: DefaultDRAMConfig(),
	}
}

// shardAccess is one request of a synthetic access stream, addressed at
// one of the shard's entry points.
type shardAccess struct {
	unit  int // 0 = tile cache, 1..NumTextureCaches = texture cache, last = L2 direct
	addr  uint64
	write bool
}

// replayGroup runs one unit of work (a tile's worth of accesses) on a
// cold shard: ColdStart, replay, Flush — exactly the per-tile sequence
// of the tile-parallel raster stage.
func replayGroup(s *Shard, group []shardAccess) uint64 {
	s.ColdStart()
	clock := uint64(0)
	for _, a := range group {
		clock++
		switch {
		case a.unit == 0:
			clock = s.TileCache.Access(clock, a.addr, a.write)
		case a.unit <= len(s.TextureCaches):
			clock = s.TextureCaches[a.unit-1].Access(clock, a.addr, a.write)
		default:
			clock = s.L2.Access(clock, a.addr, a.write)
		}
	}
	return s.Flush(clock)
}

// TestShardMergeMatchesSerial is the shard-merge property test: on
// identical access streams, the per-shard hit/miss/writeback and DRAM
// counters of any shard count, summed, must equal the counters of a
// single serial shard processing every group. This is the invariant the
// tile-parallel raster stage relies on for worker-count-independent
// statistics: each unit of work starts cold, so its counters are a pure
// function of its own stream, and uint64 sums are order-independent.
func TestShardMergeMatchesSerial(t *testing.T) {
	cfg := testShardConfig()
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			numGroups := 4 + rng.Intn(12)
			groups := make([][]shardAccess, numGroups)
			for g := range groups {
				n := 50 + rng.Intn(400)
				groups[g] = make([]shardAccess, n)
				for i := range groups[g] {
					groups[g][i] = shardAccess{
						unit: rng.Intn(cfg.NumTextureCaches + 2),
						// A handful of 2 KiB regions so streams mix hits,
						// misses, evictions and row-buffer locality.
						addr:  uint64(rng.Intn(8))<<20 | uint64(rng.Intn(1<<11)),
						write: rng.Intn(3) == 0,
					}
				}
			}

			serial := NewShard(cfg)
			for _, g := range groups {
				replayGroup(serial, g)
			}
			want := serial.Stats()

			for _, numShards := range []int{1, 2, 3, 5} {
				shards := make([]*Shard, numShards)
				for i := range shards {
					shards[i] = NewShard(cfg)
				}
				// Round-robin assignment stands in for any deterministic
				// or scheduler-driven distribution: the property holds
				// for every partition of the groups.
				for gi, g := range groups {
					replayGroup(shards[gi%numShards], g)
				}
				var got ShardStats
				for _, s := range shards {
					got.Add(s.Stats())
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d: summed stats diverge from serial:\n%+v\nvs\n%+v",
						numShards, got, want)
				}
			}
		})
	}
}

// TestShardColdStartIsolation: after ColdStart, a shard's behaviour on
// a stream must not depend on earlier work — the per-tile isolation
// property stated on ColdStart.
func TestShardColdStartIsolation(t *testing.T) {
	cfg := testShardConfig()
	rng := rand.New(rand.NewSource(7))
	stream := make([]shardAccess, 500)
	for i := range stream {
		stream[i] = shardAccess{
			unit:  rng.Intn(cfg.NumTextureCaches + 2),
			addr:  uint64(rng.Intn(1 << 16)),
			write: rng.Intn(4) == 0,
		}
	}

	fresh := NewShard(cfg)
	replayGroup(fresh, stream)
	want := fresh.Stats()

	warmed := NewShard(cfg)
	// Unrelated prior work, then the same stream.
	prior := make([]shardAccess, 300)
	for i := range prior {
		prior[i] = shardAccess{unit: rng.Intn(cfg.NumTextureCaches + 2), addr: uint64(rng.Intn(1 << 18)), write: true}
	}
	replayGroup(warmed, prior)
	before := warmed.Stats()
	replayGroup(warmed, stream)
	got := warmed.Stats()
	// Subtract the prior work's counters to get the stream's delta.
	delta := ShardStats{}
	delta.Add(got)
	sub := func(d, b *CacheStats) {
		d.Accesses -= b.Accesses
		d.Hits -= b.Hits
		d.Misses -= b.Misses
		d.Writebacks -= b.Writebacks
	}
	sub(&delta.TileCache, &before.TileCache)
	sub(&delta.TextureCache, &before.TextureCache)
	for i := range before.TextureCacheUnits {
		sub(&delta.TextureCacheUnits[i], &before.TextureCacheUnits[i])
	}
	sub(&delta.L2, &before.L2)
	delta.DRAM.Accesses -= before.DRAM.Accesses
	delta.DRAM.Reads -= before.DRAM.Reads
	delta.DRAM.Writes -= before.DRAM.Writes
	delta.DRAM.RowHits -= before.DRAM.RowHits
	delta.DRAM.RowMisses -= before.DRAM.RowMisses
	delta.DRAM.BusyCycles -= before.DRAM.BusyCycles
	if !reflect.DeepEqual(delta, want) {
		t.Fatalf("ColdStart did not isolate the stream from prior work:\n%+v\nvs\n%+v", delta, want)
	}
}

// TestShardReuseTimingIsolation pins the arena-reuse contract at the
// timing level: ColdStart invalidates by bumping the line-liveness
// epoch rather than zeroing arrays, so the line arenas still hold
// stale tags, LRU stamps and dirty bits from the previous tile. A
// stream replayed on such a dirtied-then-ColdStarted shard must
// nevertheless finish at exactly the clock a factory-fresh shard
// reports — if any stale line were still considered live (or a stale
// dirty bit triggered a writeback), the hit/miss pattern and therefore
// the final cycle would shift.
func TestShardReuseTimingIsolation(t *testing.T) {
	cfg := testShardConfig()
	rng := rand.New(rand.NewSource(11))
	stream := make([]shardAccess, 600)
	for i := range stream {
		stream[i] = shardAccess{
			unit:  rng.Intn(cfg.NumTextureCaches + 2),
			addr:  uint64(rng.Intn(1 << 16)),
			write: rng.Intn(4) == 0,
		}
	}

	fresh := NewShard(cfg)
	want := replayGroup(fresh, stream)

	reused := NewShard(cfg)
	// Dirty every level: all-write traffic over the same address range
	// as the probe stream, so stale tags would alias if resurrected.
	prior := make([]shardAccess, 400)
	for i := range prior {
		prior[i] = shardAccess{unit: rng.Intn(cfg.NumTextureCaches + 2), addr: uint64(rng.Intn(1 << 16)), write: true}
	}
	replayGroup(reused, prior)
	if got := replayGroup(reused, stream); got != want {
		t.Fatalf("dirtied-then-ColdStarted shard finished at cycle %d, fresh shard at %d", got, want)
	}
}

// TestShardTileSequenceDoesNotAllocate pins the other half of the
// arena-reuse contract: the whole per-tile sequence — ColdStart,
// access replay, Flush — runs without a single heap allocation once
// the shard is built. ColdStart invalidating by epoch bump (not by
// reallocating line arrays) is what the tile-parallel hot loop's
// allocs/op budget depends on.
func TestShardTileSequenceDoesNotAllocate(t *testing.T) {
	cfg := testShardConfig()
	rng := rand.New(rand.NewSource(13))
	stream := make([]shardAccess, 200)
	for i := range stream {
		stream[i] = shardAccess{
			unit:  rng.Intn(cfg.NumTextureCaches + 2),
			addr:  uint64(rng.Intn(1 << 15)),
			write: rng.Intn(3) == 0,
		}
	}
	s := NewShard(cfg)
	if allocs := testing.AllocsPerRun(20, func() { replayGroup(s, stream) }); allocs != 0 {
		t.Fatalf("per-tile sequence allocated %.1f times per run, want 0", allocs)
	}
}
