package mem

import "fmt"

// ShardConfig sizes one shard of the raster-stage memory hierarchy: the
// slice of the memory system a tile-parallel worker owns privately. A
// shard replicates the raster-side levels (tile cache, texture caches,
// L2) over a private DRAM model; the vertex cache belongs to the
// geometry pass and is not sharded.
type ShardConfig struct {
	TileCache        CacheConfig
	TextureCache     CacheConfig
	NumTextureCaches int
	L2               CacheConfig
	DRAM             DRAMConfig
}

// Validate reports configuration errors.
func (c ShardConfig) Validate() error {
	if c.NumTextureCaches <= 0 {
		return fmt.Errorf("mem: shard needs at least one texture cache")
	}
	for _, cc := range []CacheConfig{c.TileCache, c.TextureCache, c.L2} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// ShardStats aggregates one shard's counters. TextureCache sums the
// texture-cache units; TextureCacheUnits keeps the per-unit breakdown so
// a tile-parallel fold can attribute counters to the matching simulator
// unit instead of collapsing them into unit 0. Fields add across shards,
// so the per-shard accumulators of a tile-parallel run merge into frame
// totals by plain summation — an order-independent operation over
// uint64, which is what makes the merged statistics identical for every
// worker count.
type ShardStats struct {
	TileCache    CacheStats
	TextureCache CacheStats
	// TextureCacheUnits is the per-unit breakdown of TextureCache,
	// indexed like ShardConfig's texture caches.
	TextureCacheUnits []CacheStats
	L2                CacheStats
	DRAM              DRAMStats
}

// Add accumulates o into s. Per-unit texture stats add index-wise; s
// grows to o's unit count if it has fewer (a zero ShardStats is a valid
// accumulator).
func (s *ShardStats) Add(o ShardStats) {
	s.TileCache.Add(o.TileCache)
	s.TextureCache.Add(o.TextureCache)
	for len(s.TextureCacheUnits) < len(o.TextureCacheUnits) {
		s.TextureCacheUnits = append(s.TextureCacheUnits, CacheStats{})
	}
	for i := range o.TextureCacheUnits {
		s.TextureCacheUnits[i].Add(o.TextureCacheUnits[i])
	}
	s.L2.Add(o.L2)
	s.DRAM.Add(o.DRAM)
}

// Shard is a private view of the raster-stage memory hierarchy for one
// tile-parallel worker: tile cache and texture caches over an L2 over a
// DRAM, all exclusively owned, so workers never contend and per-shard
// statistics accumulate without atomics. Timing isolation is per unit
// of work: ColdStart before each tile makes the shard's behaviour a
// pure function of that tile's access stream, independent of which
// shard (and therefore which worker) processed it.
type Shard struct {
	DRAM          *DRAM
	L2            *Cache
	TileCache     *Cache
	TextureCaches []*Cache
}

// NewShard builds a shard. It panics on an invalid configuration
// (configurations are static in this codebase), mirroring NewCache.
func NewShard(cfg ShardConfig) *Shard {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Shard{}
	s.DRAM = NewDRAM(cfg.DRAM)
	s.L2 = NewCache(cfg.L2, s.DRAM)
	s.TileCache = NewCache(cfg.TileCache, s.L2)
	for i := 0; i < cfg.NumTextureCaches; i++ {
		tc := cfg.TextureCache
		tc.Name = fmt.Sprintf("texture%d", i)
		s.TextureCaches = append(s.TextureCaches, NewCache(tc, s.L2))
	}
	return s
}

// ColdStart drops all cached state without writebacks, closes DRAM rows
// and rewinds every clock to zero while keeping cumulative statistics.
// Called before each unit of work (tile) so the shard's behaviour does
// not depend on what it processed before.
func (s *Shard) ColdStart() {
	s.TileCache.ColdStart()
	for _, c := range s.TextureCaches {
		c.ColdStart()
	}
	s.L2.ColdStart()
	s.DRAM.ResetTime()
}

// Flush drains the shard's dirty lines to DRAM at the end of a unit of
// work: the first-level caches flush into L2, then L2 flushes the lot.
// Returns the completion cycle of the last writeback.
func (s *Shard) Flush(now uint64) uint64 {
	done := s.TileCache.Flush(now)
	for _, c := range s.TextureCaches {
		if d := c.Flush(now); d > done {
			done = d
		}
	}
	if d := s.L2.Flush(done); d > done {
		done = d
	}
	return done
}

// ResetStats zeroes every counter in the shard (state is untouched).
func (s *Shard) ResetStats() {
	s.TileCache.ResetStats()
	for _, c := range s.TextureCaches {
		c.ResetStats()
	}
	s.L2.ResetStats()
	s.DRAM.ResetStats()
}

// Stats returns the shard's cumulative counters, with both the summed
// texture-cache view and the per-unit breakdown.
func (s *Shard) Stats() ShardStats {
	st := ShardStats{
		TileCache:         s.TileCache.Stats,
		L2:                s.L2.Stats,
		DRAM:              s.DRAM.Stats,
		TextureCacheUnits: make([]CacheStats, len(s.TextureCaches)),
	}
	for i, c := range s.TextureCaches {
		st.TextureCacheUnits[i] = c.Stats
		st.TextureCache.Add(c.Stats)
	}
	return st
}
