package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/xmath/stats"
)

// flatMem is a constant-latency bottom level for cache tests.
type flatMem struct {
	latency  uint64
	accesses uint64
	writes   uint64
}

func (f *flatMem) Access(now uint64, addr uint64, write bool) uint64 {
	f.accesses++
	if write {
		f.writes++
	}
	return now + f.latency
}

func (f *flatMem) Name() string { return "flat" }

func newTestCache(size, line, ways int, next Level) *Cache {
	return NewCache(CacheConfig{
		Name: "test", SizeBytes: size, LineBytes: line, Ways: ways, Latency: 2,
	}, next)
}

func TestCacheHitAfterMiss(t *testing.T) {
	next := &flatMem{latency: 100}
	c := newTestCache(1024, 64, 2, next)
	d1 := c.Access(0, 0x40, false)
	if d1 <= 2 {
		t.Fatalf("first access should miss: done=%d", d1)
	}
	d2 := c.Access(d1, 0x40, false)
	if d2 != d1+2 {
		t.Fatalf("second access should hit with latency 2: done=%d", d2)
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 || c.Stats.Accesses != 2 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestCacheSameLineDifferentWords(t *testing.T) {
	next := &flatMem{latency: 100}
	c := newTestCache(1024, 64, 2, next)
	c.Access(0, 0x80, false)
	c.Access(0, 0xBF, false) // same 64B line
	if c.Stats.Hits != 1 {
		t.Fatalf("expected hit on same line, stats %+v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	next := &flatMem{latency: 10}
	// Direct-mapped-ish: 2 ways, 2 sets (256B, 64B lines).
	c := newTestCache(256, 64, 2, next)
	// Three lines mapping to set 0: line addresses 0, 2, 4 (set = line & 1).
	c.Access(0, 0*64, false)
	c.Access(0, 2*64, false)
	c.Access(0, 4*64, false) // evicts line 0 (LRU)
	c.Access(0, 2*64, false) // still resident
	if c.Stats.Hits != 1 {
		t.Fatalf("line 2 should have survived, stats %+v", c.Stats)
	}
	c.Access(0, 0*64, false) // was evicted: miss
	if c.Stats.Misses != 4 {
		t.Fatalf("line 0 should have been evicted, stats %+v", c.Stats)
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	next := &flatMem{latency: 10}
	c := newTestCache(256, 64, 2, next)
	c.Access(0, 0*64, true) // dirty line in set 0
	c.Access(0, 2*64, false)
	c.Access(0, 4*64, false) // evicts dirty line 0 -> writeback
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
	if next.writes != 1 {
		t.Fatalf("next-level writes = %d, want 1", next.writes)
	}
}

func TestCacheCleanEvictionNoWriteback(t *testing.T) {
	next := &flatMem{latency: 10}
	c := newTestCache(256, 64, 2, next)
	c.Access(0, 0*64, false)
	c.Access(0, 2*64, false)
	c.Access(0, 4*64, false)
	if c.Stats.Writebacks != 0 || next.writes != 0 {
		t.Fatalf("clean eviction wrote back: %+v", c.Stats)
	}
}

func TestCacheFlush(t *testing.T) {
	next := &flatMem{latency: 10}
	c := newTestCache(1024, 64, 2, next)
	c.Access(0, 0x00, true)
	c.Access(0, 0x40, true)
	c.Access(0, 0x80, false)
	done := c.Flush(100)
	if c.Stats.Writebacks != 2 {
		t.Fatalf("flush writebacks = %d, want 2", c.Stats.Writebacks)
	}
	if done < 100 {
		t.Fatalf("flush done = %d", done)
	}
	// Everything must miss after the flush.
	c.Access(done, 0x00, false)
	if c.Stats.Hits != 0 {
		t.Fatalf("hit after flush, stats %+v", c.Stats)
	}
}

func TestCacheResetClearsStatsAndContents(t *testing.T) {
	next := &flatMem{latency: 10}
	c := newTestCache(1024, 64, 2, next)
	c.Access(0, 0x00, true)
	c.Reset()
	if c.Stats != (CacheStats{}) {
		t.Fatalf("stats not cleared: %+v", c.Stats)
	}
	c.Access(0, 0x00, false)
	if c.Stats.Misses != 1 {
		t.Fatal("contents not cleared by Reset")
	}
}

func TestCacheHitRate(t *testing.T) {
	s := CacheStats{Accesses: 10, Hits: 7}
	if s.HitRate() != 0.7 {
		t.Fatalf("HitRate = %v", s.HitRate())
	}
	if (CacheStats{}).HitRate() != 0 {
		t.Fatal("empty HitRate should be 0")
	}
}

func TestCacheConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{Name: "zero", SizeBytes: 0, LineBytes: 64, Ways: 2},
		{Name: "odd-sets", SizeBytes: 3 * 64 * 2, LineBytes: 64, Ways: 2},
		{Name: "odd-line", SizeBytes: 1024, LineBytes: 48, Ways: 2},
		{Name: "indivisible", SizeBytes: 1000, LineBytes: 64, Ways: 2},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: validated", cfg.Name)
		}
	}
	good := CacheConfig{Name: "l2", SizeBytes: 256 << 10, LineBytes: 64, Ways: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestCacheAddressReconstructionProperty(t *testing.T) {
	// Writing then evicting every address pattern must never write back
	// to a different line address than was written.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		rec := &recordingMem{}
		c := newTestCache(512, 64, 2, rec)
		written := map[uint64]bool{}
		for i := 0; i < 200; i++ {
			addr := uint64(rng.Intn(1 << 20))
			c.Access(0, addr, true)
			written[addr>>6] = true
		}
		c.Flush(0)
		for _, wb := range rec.writeLines {
			if !written[wb] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

type recordingMem struct {
	writeLines []uint64
}

func (r *recordingMem) Access(now uint64, addr uint64, write bool) uint64 {
	if write {
		r.writeLines = append(r.writeLines, addr>>6)
	}
	return now + 1
}

func (r *recordingMem) Name() string { return "recording" }

func TestDRAMRowHitFasterThanMiss(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	// Lines interleave across channels, so line 0 and line 2 both go to
	// channel 0 and share the 2 KiB row 0.
	first := d.Access(0, 0, false)        // row miss
	second := d.Access(first, 128, false) // same channel, same row: hit
	missLat := first - 0
	hitLat := second - first
	if hitLat >= missLat {
		t.Fatalf("row hit latency %d >= miss latency %d", hitLat, missLat)
	}
	if d.Stats.RowHits != 1 || d.Stats.RowMisses != 1 {
		t.Fatalf("stats %+v", d.Stats)
	}
}

func TestDRAMChannelContention(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	cfg := d.Config()
	transfer := uint64(cfg.LineBytes / cfg.BytesPerCycle)
	// Two accesses issued at cycle 0 to the same channel: the second
	// must queue behind the first transfer on the data bus.
	d.Access(0, 0, false)
	b := d.Access(0, 128, false) // line 2 -> channel 0 again, row 0 open
	unloaded := cfg.RowHitLatency + transfer
	if b != transfer+unloaded {
		t.Fatalf("second access done = %d, want bus wait %d + row-hit %d", b, transfer, unloaded)
	}
}

func TestDRAMChannelsIndependent(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	a := d.Access(0, 0, false)  // line 0 -> channel 0
	b := d.Access(0, 64, false) // line 1 -> channel 1
	// Channel 1 is idle; latency should be the plain row-miss latency.
	if b > a {
		t.Fatalf("independent channels interfered: %d vs %d", a, b)
	}
}

func TestDRAMStatsCounts(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	d.Access(0, 0, false)
	d.Access(0, 4096, true)
	if d.Stats.Accesses != 2 || d.Stats.Reads != 1 || d.Stats.Writes != 1 {
		t.Fatalf("stats %+v", d.Stats)
	}
}

func TestDRAMReset(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	d.Access(0, 0, false)
	d.Reset()
	if d.Stats.Accesses != 0 {
		t.Fatal("stats survived Reset")
	}
	// Row buffer must be closed again: first access misses.
	d.Access(0, 0, false)
	if d.Stats.RowMisses != 1 {
		t.Fatal("row state survived Reset")
	}
}

func TestHierarchyEndToEnd(t *testing.T) {
	// L1 -> L2 -> DRAM chain: an L1 miss that hits L2 must be much
	// cheaper than one that goes to DRAM.
	dram := NewDRAM(DefaultDRAMConfig())
	l2 := NewCache(CacheConfig{Name: "l2", SizeBytes: 4096, LineBytes: 64, Ways: 2, Latency: 18}, dram)
	l1 := NewCache(CacheConfig{Name: "l1", SizeBytes: 256, LineBytes: 64, Ways: 2, Latency: 2}, l2)

	coldDone := l1.Access(0, 0x1000, false) // L1 miss, L2 miss, DRAM
	if dram.Stats.Accesses != 1 {
		t.Fatalf("cold access did not reach DRAM: %+v", dram.Stats)
	}

	// Evict the line from tiny L1 but keep it in L2.
	l1.Access(coldDone, 0x1000+256, false)
	l1.Access(coldDone, 0x1000+512, false)
	before := dram.Stats.Accesses
	warmStart := coldDone + 1000
	warmDone := l1.Access(warmStart, 0x1000, false) // L1 miss, L2 hit
	if dram.Stats.Accesses != before {
		t.Fatalf("warm access reached DRAM: %d -> %d", before, dram.Stats.Accesses)
	}
	warmLat := warmDone - warmStart
	coldLat := coldDone
	if warmLat >= coldLat {
		t.Fatalf("L2 hit latency %d >= DRAM latency %d", warmLat, coldLat)
	}
}

func TestDRAMPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDRAM(DRAMConfig{})
}

func TestCachePanicsWithoutNextLevel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCache(CacheConfig{Name: "x", SizeBytes: 1024, LineBytes: 64, Ways: 2}, nil)
}
