package tbr_test

import (
	"testing"

	"repro/internal/tbr"
	"repro/internal/workload"
)

// testTrace generates a short hcr trace shared by the tests.
func testConfig() tbr.Config {
	cfg := tbr.DefaultConfig()
	cfg.TileSize = 16
	return cfg
}

func TestDefaultConfigMatchesTableI(t *testing.T) {
	cfg := tbr.DefaultConfig()
	if cfg.FrequencyMHz != 600 || cfg.TileSize != 32 {
		t.Fatalf("frequency/tile: %d/%d", cfg.FrequencyMHz, cfg.TileSize)
	}
	if cfg.NumVertexProcessors != 4 || cfg.NumFragmentProcessors != 4 {
		t.Fatal("processor counts")
	}
	if cfg.VertexQueueEntries != 16 || cfg.FragmentQueueEntries != 64 || cfg.ColorQueueEntries != 64 {
		t.Fatal("queue entries")
	}
	if cfg.VertexCache.SizeBytes != 4<<10 || cfg.TextureCache.SizeBytes != 8<<10 ||
		cfg.TileCache.SizeBytes != 32<<10 || cfg.L2.SizeBytes != 256<<10 {
		t.Fatal("cache sizes")
	}
	if cfg.L2.Banks != 8 || cfg.L2.Latency != 18 {
		t.Fatal("L2 geometry")
	}
	if cfg.NumTextureCaches != 4 || cfg.EarlyZInFlight != 8 {
		t.Fatal("texture caches / early-z")
	}
	if cfg.DRAM.Channels != 2 || cfg.DRAM.LineBytes != 64 || cfg.DRAM.BytesPerCycle != 4 {
		t.Fatal("DRAM config")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidateCatchesErrors(t *testing.T) {
	mutations := map[string]func(*tbr.Config){
		"odd tile":     func(c *tbr.Config) { c.TileSize = 15 },
		"zero vps":     func(c *tbr.Config) { c.NumVertexProcessors = 0 },
		"zero fq":      func(c *tbr.Config) { c.FragmentQueueEntries = 0 },
		"zero ez":      func(c *tbr.Config) { c.EarlyZInFlight = 0 },
		"zero tcaches": func(c *tbr.Config) { c.NumTextureCaches = 0 },
		"bad cache":    func(c *tbr.Config) { c.L2.SizeBytes = 100 },
	}
	for name, mutate := range mutations {
		cfg := tbr.DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestSimulateFrameProducesActivity(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"], workload.TestScale)
	sim, err := tbr.New(testConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	st := sim.SimulateFrame(50)
	if st.Cycles == 0 {
		t.Fatal("zero cycles")
	}
	if st.VerticesShaded == 0 || st.PrimsIn == 0 || st.PrimsVisible == 0 {
		t.Fatalf("no geometry activity: %+v", st)
	}
	if st.QuadsRasterized == 0 || st.FragmentsShaded == 0 {
		t.Fatalf("no raster activity: %+v", st)
	}
	if st.L2.Accesses == 0 || st.DRAM.Accesses == 0 || st.TileCache.Accesses == 0 {
		t.Fatalf("no memory activity: %+v", st)
	}
	if st.Cycles != st.GeometryCycles+st.RasterCycles {
		t.Fatalf("cycles %d != geometry %d + raster %d", st.Cycles, st.GeometryCycles, st.RasterCycles)
	}
	if st.VSInstrs == 0 || st.FSInstrs == 0 {
		t.Fatal("no shader instructions")
	}
	if st.IPC() <= 0 || st.IPC() > 8 {
		t.Fatalf("IPC = %v out of plausible range", st.IPC())
	}
}

func TestFrameIsolation(t *testing.T) {
	// With FlushCachesPerFrame, simulating frame k directly must give
	// exactly the same stats as simulating it after other frames —
	// the property MEGsim needs to simulate only representatives.
	tr := workload.MustGenerate(workload.Profiles["hcr"], workload.TestScale)
	simA, err := tbr.New(testConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	direct := simA.SimulateFrame(42)

	simB, err := tbr.New(testConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 42; f++ {
		simB.SimulateFrame(f)
	}
	inSequence := simB.SimulateFrame(42)

	if direct != inSequence {
		t.Fatalf("frame 42 differs in isolation vs in sequence:\n%+v\nvs\n%+v", direct, inSequence)
	}
}

func TestSimulateDeterminism(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["jjo"], workload.TestScale)
	s1, _ := tbr.New(testConfig(), tr)
	s2, _ := tbr.New(testConfig(), tr)
	for _, f := range []int{0, 10, 100} {
		a, b := s1.SimulateFrame(f), s2.SimulateFrame(f)
		if a != b {
			t.Fatalf("frame %d not deterministic", f)
		}
	}
}

func TestSimulateAllOrdersFrames(t *testing.T) {
	p := workload.Profiles["hcr"]
	tr := workload.MustGenerate(p, workload.Scale{Width: 96, Height: 48, FrameDivisor: 100, DetailDivisor: 2})
	sim, _ := tbr.New(testConfig(), tr)
	calls := 0
	all := sim.SimulateAll(func(int) { calls++ })
	if len(all) != tr.NumFrames() || calls != tr.NumFrames() {
		t.Fatalf("got %d stats, %d callbacks, want %d", len(all), calls, tr.NumFrames())
	}
	for i, st := range all {
		if st.Frame != i {
			t.Fatalf("stats[%d].Frame = %d", i, st.Frame)
		}
		if st.Cycles == 0 {
			t.Fatalf("frame %d has zero cycles", i)
		}
	}
}

func TestHeavierFramesCostMoreCycles(t *testing.T) {
	// A 3D racing frame must cost far more than a 2D menu frame.
	tr := workload.MustGenerate(workload.Profiles["bbr1"], workload.TestScale)
	sim, _ := tbr.New(testConfig(), tr)
	menu := sim.SimulateFrame(0)                  // menu phase opens the sequence
	race := sim.SimulateFrame(tr.NumFrames() / 2) // mid-sequence gameplay
	if race.PrimsVisible <= menu.PrimsVisible {
		t.Skipf("mid frame not heavier: prims %d vs %d", race.PrimsVisible, menu.PrimsVisible)
	}
	if race.Cycles <= menu.Cycles {
		t.Fatalf("3D frame (%d prims, %d cycles) not slower than menu (%d prims, %d cycles)",
			race.PrimsVisible, race.Cycles, menu.PrimsVisible, menu.Cycles)
	}
}

func TestEarlyZCullsOverdraw(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["bbr1"], workload.TestScale)
	sim, _ := tbr.New(testConfig(), tr)
	var occluded uint64
	for f := 0; f < 10; f++ {
		st := sim.SimulateFrame(tr.NumFrames()/2 + f)
		occluded += st.FragmentsOccluded
	}
	if occluded == 0 {
		t.Fatal("no fragments ever occluded — early-Z model inert")
	}
}

func TestScaleAndAdd(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"], workload.TestScale)
	sim, _ := tbr.New(testConfig(), tr)
	st := sim.SimulateFrame(5)
	scaled := st.Scale(3)
	if scaled.Cycles != 3*st.Cycles || scaled.DRAM.Accesses != 3*st.DRAM.Accesses {
		t.Fatal("Scale wrong")
	}
	var sum tbr.FrameStats
	sum.Add(&st)
	sum.Add(&st)
	sum.Add(&st)
	sum.Frame = scaled.Frame
	if sum != scaled {
		t.Fatalf("Add x3 != Scale(3):\n%+v\nvs\n%+v", sum, scaled)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"], workload.TestScale)
	bad := tbr.DefaultConfig()
	bad.TileSize = 0
	if _, err := tbr.New(bad, tr); err == nil {
		t.Fatal("accepted invalid config")
	}
	tr.Name = ""
	if _, err := tbr.New(tbr.DefaultConfig(), tr); err == nil {
		t.Fatal("accepted invalid trace")
	}
}

func TestSimulateFramePanicsOutOfRange(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"], workload.TestScale)
	sim, _ := tbr.New(testConfig(), tr)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sim.SimulateFrame(tr.NumFrames())
}

func TestTextureTrafficReachesMemory(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["asp"], workload.TestScale)
	sim, _ := tbr.New(testConfig(), tr)
	st := sim.SimulateFrame(tr.NumFrames() / 2)
	if st.TexAccesses == 0 {
		t.Fatal("no texture accesses in a 3D frame")
	}
	if st.TextureCache.Accesses == 0 {
		t.Fatal("texture caches never accessed")
	}
	if st.TextureCache.Misses == 0 {
		t.Fatal("texture caches never missed (cold frame must miss)")
	}
}

func TestPresets(t *testing.T) {
	names := tbr.PresetNames()
	if len(names) < 4 {
		t.Fatalf("presets = %v", names)
	}
	for _, n := range names {
		cfg, err := tbr.Preset(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", n, err)
		}
	}
	if _, err := tbr.Preset("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
	// The preset machines must order sensibly on a real frame.
	tr := workload.MustGenerate(workload.Profiles["bbr1"], workload.TestScale)
	frame := tr.NumFrames() / 2
	cycles := map[string]uint64{}
	for _, n := range []string{"lowend", "mali450", "highend"} {
		cfg, _ := tbr.Preset(n)
		sim, err := tbr.New(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		cycles[n] = sim.SimulateFrame(frame).Cycles
	}
	// Wall-clock per frame must improve with the bigger machine.
	low, _ := tbr.Preset("lowend")
	mid, _ := tbr.Preset("mali450")
	high, _ := tbr.Preset("highend")
	tl := low.FrameSeconds(cycles["lowend"])
	tm := mid.FrameSeconds(cycles["mali450"])
	th := high.FrameSeconds(cycles["highend"])
	if !(tl > tm && tm > th) {
		t.Fatalf("frame time not monotone across presets: %.5f / %.5f / %.5f", tl, tm, th)
	}
}

func TestUtilizationStats(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["bbr1"], workload.TestScale)
	sim, err := tbr.New(tbr.DefaultConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	st := sim.SimulateFrame(tr.NumFrames() / 2)
	if st.VPBusyCycles == 0 || st.FPBusyCycles == 0 {
		t.Fatal("no busy cycles recorded")
	}
	vu := st.VPUtilization(4)
	fu := st.FPUtilization(4)
	if vu <= 0 || vu > 1 || fu <= 0 || fu > 1 {
		t.Fatalf("utilization out of range: vp=%v fp=%v", vu, fu)
	}
	// Fragment work dominates these scenes.
	if fu <= vu {
		t.Fatalf("FP utilization %v should exceed VP %v", fu, vu)
	}
	if st.VPUtilization(0) != 0 || (&tbr.FrameStats{}).FPUtilization(4) != 0 {
		t.Fatal("degenerate utilization should be 0")
	}
}
