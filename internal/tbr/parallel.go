package tbr

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/gltrace"
)

// SimulateFramesParallel simulates the given frame subset across
// `workers` goroutines (0 = GOMAXPROCS), returning stats in the same
// order as frames. Like SimulateAllParallel it requires frame isolation
// (FlushCachesPerFrame).
func SimulateFramesParallel(cfg Config, trace *gltrace.Trace, frames []int, workers int) ([]FrameStats, error) {
	if !cfg.FlushCachesPerFrame {
		return nil, fmt.Errorf("tbr: parallel simulation requires FlushCachesPerFrame (frame isolation)")
	}
	for _, f := range frames {
		if f < 0 || f >= trace.NumFrames() {
			return nil, fmt.Errorf("tbr: frame %d out of range [0,%d)", f, trace.NumFrames())
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(frames) {
		workers = len(frames)
	}
	out := make([]FrameStats, len(frames))
	if workers <= 1 {
		sim, err := New(cfg, trace)
		if err != nil {
			return nil, err
		}
		for i, f := range frames {
			out[i] = sim.SimulateFrame(f)
		}
		return out, nil
	}
	var next atomic.Int64
	var firstErr error
	var errOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sim, err := New(cfg, trace)
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(frames) {
					return
				}
				out[i] = sim.SimulateFrame(frames[i])
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// SimulateAllParallel simulates every frame of the trace across
// `workers` goroutines (0 = GOMAXPROCS), each with its own Simulator
// instance. It requires FlushCachesPerFrame: frame isolation makes the
// result bit-identical to the sequential SimulateAll regardless of how
// frames are distributed over workers — verified by tests. progress, if
// non-nil, is called once per completed frame (from worker goroutines;
// it must be safe for concurrent use).
func SimulateAllParallel(cfg Config, trace *gltrace.Trace, workers int, progress func(frame int)) ([]FrameStats, error) {
	if !cfg.FlushCachesPerFrame {
		return nil, fmt.Errorf("tbr: parallel simulation requires FlushCachesPerFrame (frame isolation)")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := trace.NumFrames()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sim, err := New(cfg, trace)
		if err != nil {
			return nil, err
		}
		return sim.SimulateAll(progress), nil
	}

	out := make([]FrameStats, n)
	var next atomic.Int64
	var firstErr error
	var errOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sim, err := New(cfg, trace)
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			for {
				f := int(next.Add(1)) - 1
				if f >= n {
					return
				}
				out[f] = sim.SimulateFrame(f)
				if progress != nil {
					progress(f)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
