package tbr

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/gltrace"
	"repro/internal/obs"
)

// testWorkerHook, when non-nil, is called by pool workers before each
// claimed item. Test-only: it lets tests inject failures mid-run to
// exercise the abort path.
var testWorkerHook func(item int)

// runPool runs fn(sim, i) for every i in [0, n) across `workers`
// goroutines, each with its own Simulator. A failed worker (New error
// or a panic out of fn, converted to an error) raises an abort flag
// that every worker checks in its claim loop, so the pool stops
// promptly instead of draining the remaining items.
//
// When cfg.Obs is enabled each worker records into a local registry;
// the locals are merged into cfg.Obs in worker order after the join, so
// instrumentation is race-free by construction and — because counters
// and histograms are additive and snapshot events sort canonically —
// deterministic regardless of how items were distributed.
func runPool(cfg Config, trace *gltrace.Trace, workers, n int, fn func(sim *Simulator, i int)) error {
	parent := cfg.Obs
	locals := make([]*obs.Registry, workers)
	var (
		next     atomic.Int64
		abort    atomic.Bool
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		abort.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					fail(fmt.Errorf("tbr: worker %d: %v", w, r))
				}
			}()
			wcfg := cfg
			if parent.Enabled() {
				locals[w] = parent.NewLocal()
				wcfg.Obs = locals[w]
			}
			sim, err := New(wcfg, trace)
			if err != nil {
				fail(err)
				return
			}
			for !abort.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if h := testWorkerHook; h != nil {
					h(i)
				}
				fn(sim, i)
			}
		}(w)
	}
	wg.Wait()
	for _, l := range locals {
		parent.Merge(l)
	}
	return firstErr
}

// SimulateFramesParallel simulates the given frame subset across
// `workers` goroutines (0 = GOMAXPROCS), returning stats in the same
// order as frames. Like SimulateAllParallel it requires frame isolation
// (FlushCachesPerFrame).
func SimulateFramesParallel(cfg Config, trace *gltrace.Trace, frames []int, workers int) ([]FrameStats, error) {
	if !cfg.FlushCachesPerFrame {
		return nil, fmt.Errorf("tbr: parallel simulation requires FlushCachesPerFrame (frame isolation)")
	}
	for _, f := range frames {
		if f < 0 || f >= trace.NumFrames() {
			return nil, fmt.Errorf("tbr: frame %d out of range [0,%d)", f, trace.NumFrames())
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(frames) {
		workers = len(frames)
	}
	out := make([]FrameStats, len(frames))
	if workers <= 1 {
		sim, err := New(cfg, trace)
		if err != nil {
			return nil, err
		}
		for i, f := range frames {
			out[i] = sim.SimulateFrame(f)
		}
		return out, nil
	}
	err := runPool(cfg, trace, workers, len(frames), func(sim *Simulator, i int) {
		out[i] = sim.SimulateFrame(frames[i])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SimulateAllParallel simulates every frame of the trace across
// `workers` goroutines (0 = GOMAXPROCS), each with its own Simulator
// instance. It requires FlushCachesPerFrame: frame isolation makes the
// result bit-identical to the sequential SimulateAll regardless of how
// frames are distributed over workers — verified by tests. progress, if
// non-nil, is called once per completed frame (from worker goroutines;
// it must be safe for concurrent use).
func SimulateAllParallel(cfg Config, trace *gltrace.Trace, workers int, progress func(frame int)) ([]FrameStats, error) {
	if !cfg.FlushCachesPerFrame {
		return nil, fmt.Errorf("tbr: parallel simulation requires FlushCachesPerFrame (frame isolation)")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := trace.NumFrames()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sim, err := New(cfg, trace)
		if err != nil {
			return nil, err
		}
		return sim.SimulateAll(progress), nil
	}

	out := make([]FrameStats, n)
	err := runPool(cfg, trace, workers, n, func(sim *Simulator, f int) {
		out[f] = sim.SimulateFrame(f)
		if progress != nil {
			progress(f)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
