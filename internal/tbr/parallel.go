package tbr

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/gltrace"
	"repro/internal/obs"
)

// testWorkerHook, when non-nil, is called by pool workers before each
// claimed item. Test-only: it lets tests inject failures mid-run to
// exercise the abort path.
var testWorkerHook func(item int)

// claimPool is the work-distribution core shared by the frame-parallel
// driver and the tile-parallel raster stage: `workers` goroutines claim
// items from [0, n) off an atomic counter and run the per-worker fn
// built by setup(w). A failed worker (setup error, or a panic out of fn
// converted to an error) raises an abort flag every worker checks in
// its claim loop, so the pool stops promptly instead of draining the
// remaining items. The returned failed slice marks which workers did
// not finish cleanly — their side effects (e.g. a local obs registry)
// may be torn mid-item and must not be merged.
func claimPool(workers, n int, setup func(w int) (fn func(i int), err error)) (failed []bool, firstErr error) {
	failed = make([]bool, workers)
	var (
		next    atomic.Int64
		abort   atomic.Bool
		errOnce sync.Once
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fail := func(err error) {
				failed[w] = true
				errOnce.Do(func() { firstErr = err })
				abort.Store(true)
			}
			defer func() {
				if r := recover(); r != nil {
					fail(fmt.Errorf("tbr: worker %d: %v", w, r))
				}
			}()
			fn, err := setup(w)
			if err != nil {
				fail(err)
				return
			}
			for !abort.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if h := testWorkerHook; h != nil {
					h(i)
				}
				fn(i)
			}
		}(w)
	}
	wg.Wait()
	return failed, firstErr
}

// runPool runs fn(sim, i) for every i in [0, n) across `workers`
// goroutines, each with its own Simulator, via claimPool.
//
// When cfg.Obs is enabled each worker records into a local registry;
// the locals of cleanly finished workers are merged into cfg.Obs in
// worker order after the join, so instrumentation is race-free by
// construction and — because counters and histograms are additive and
// snapshot events sort canonically — deterministic regardless of how
// items were distributed. A worker that failed mid-item leaves its
// local registry partially populated (e.g. a frame's counters without
// its spans); merging it would let an aborted run report torn numbers,
// so failed workers' registries are dropped.
func runPool(cfg Config, trace *gltrace.Trace, workers, n int, fn func(sim *Simulator, i int)) error {
	parent := cfg.Obs
	locals := make([]*obs.Registry, workers)
	failed, firstErr := claimPool(workers, n, func(w int) (func(i int), error) {
		wcfg := cfg
		if parent.Enabled() {
			locals[w] = parent.NewLocal()
			wcfg.Obs = locals[w]
		}
		sim, err := New(wcfg, trace)
		if err != nil {
			return nil, err
		}
		return func(i int) { fn(sim, i) }, nil
	})
	for w, l := range locals {
		if failed[w] {
			continue
		}
		parent.Merge(l)
	}
	return firstErr
}

// SimulateFramesParallel simulates the given frame subset across
// `workers` goroutines (0 = GOMAXPROCS), returning stats in the same
// order as frames. Like SimulateAllParallel it requires frame isolation
// (FlushCachesPerFrame).
func SimulateFramesParallel(cfg Config, trace *gltrace.Trace, frames []int, workers int) ([]FrameStats, error) {
	if !cfg.FlushCachesPerFrame {
		return nil, fmt.Errorf("tbr: parallel simulation requires FlushCachesPerFrame (frame isolation)")
	}
	for _, f := range frames {
		if f < 0 || f >= trace.NumFrames() {
			return nil, fmt.Errorf("tbr: frame %d out of range [0,%d)", f, trace.NumFrames())
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(frames) {
		workers = len(frames)
	}
	out := make([]FrameStats, len(frames))
	// A single worker skips the pool — unless a checker is attached, in
	// which case the pool's recover is what converts a failed CheckFrame
	// (a panic out of SimulateFrame) into an error.
	if workers <= 1 && cfg.Check == nil {
		sim, err := New(cfg, trace)
		if err != nil {
			return nil, err
		}
		for i, f := range frames {
			out[i] = sim.SimulateFrame(f)
		}
		return out, nil
	}
	err := runPool(cfg, trace, workers, len(frames), func(sim *Simulator, i int) {
		out[i] = sim.SimulateFrame(frames[i])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SimulateAllParallel simulates every frame of the trace across
// `workers` goroutines (0 = GOMAXPROCS), each with its own Simulator
// instance. It requires FlushCachesPerFrame: frame isolation makes the
// result bit-identical to the sequential SimulateAll regardless of how
// frames are distributed over workers — verified by tests. progress, if
// non-nil, is called once per completed frame (from worker goroutines;
// it must be safe for concurrent use).
func SimulateAllParallel(cfg Config, trace *gltrace.Trace, workers int, progress func(frame int)) ([]FrameStats, error) {
	if !cfg.FlushCachesPerFrame {
		return nil, fmt.Errorf("tbr: parallel simulation requires FlushCachesPerFrame (frame isolation)")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := trace.NumFrames()
	if workers > n {
		workers = n
	}
	// See SimulateFramesParallel for why a checker disables the serial
	// fast path.
	if workers <= 1 && cfg.Check == nil {
		sim, err := New(cfg, trace)
		if err != nil {
			return nil, err
		}
		return sim.SimulateAll(progress), nil
	}

	out := make([]FrameStats, n)
	err := runPool(cfg, trace, workers, n, func(sim *Simulator, f int) {
		out[f] = sim.SimulateFrame(f)
		if progress != nil {
			progress(f)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
