package tbr

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/gltrace"
	"repro/internal/obs"
)

// testWorkerHook, when non-nil, is called by pool workers before each
// claimed item. Test-only: it lets tests inject failures mid-run to
// exercise the abort path. It is an atomic pointer because pool worker
// goroutines read it while tests in other packages' test binaries may
// install or clear it around pools that are still draining.
var testWorkerHook atomic.Pointer[func(item int)]

// setTestWorkerHook installs (or, with nil, clears) the worker hook.
func setTestWorkerHook(h func(item int)) {
	if h == nil {
		testWorkerHook.Store(nil)
		return
	}
	testWorkerHook.Store(&h)
}

// claimPool is the work-distribution core shared by the frame-parallel
// driver and the tile-parallel raster stage: `workers` goroutines claim
// items from [0, n) off an atomic counter and run the per-worker fn
// built by setup(w). A failed worker (setup error, or a panic out of fn
// converted to an error) raises an abort flag every worker checks in
// its claim loop, so the pool stops promptly instead of draining the
// remaining items; cancelling ctx raises the same flag (with ctx.Err()
// as the pool error), so cancellation is honored at the next claim —
// never mid-item. The returned failed slice marks which workers did not
// finish cleanly — their side effects (e.g. a local obs registry) may
// be torn mid-item and must not be merged. A worker stopped by
// cancellation is NOT marked failed: it completed its last item before
// observing the flag.
//
// workers <= 0 defaults to GOMAXPROCS (clamped to n); n <= 0 runs
// nothing and returns only ctx's current error, so degenerate pools
// cannot spin up goroutines or index out of range.
func claimPool(ctx context.Context, workers, n int, setup func(w int) (fn func(i int), err error)) (failed []bool, firstErr error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return nil, ctx.Err()
	}
	failed = make([]bool, workers)
	var (
		next    atomic.Int64
		abort   atomic.Bool
		errOnce sync.Once
		wg      sync.WaitGroup
	)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fail := func(err error) {
				failed[w] = true
				errOnce.Do(func() { firstErr = err })
				abort.Store(true)
			}
			defer func() {
				if r := recover(); r != nil {
					fail(fmt.Errorf("tbr: worker %d: %v", w, r))
				}
			}()
			fn, err := setup(w)
			if err != nil {
				fail(err)
				return
			}
			for !abort.Load() {
				if done != nil {
					select {
					case <-done:
						// Cancellation is clean: no item is torn, so the
						// worker is not marked failed, but the pool must
						// report why it stopped short.
						errOnce.Do(func() { firstErr = ctx.Err() })
						abort.Store(true)
						return
					default:
					}
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if h := testWorkerHook.Load(); h != nil {
					(*h)(i)
				}
				fn(i)
			}
		}(w)
	}
	wg.Wait()
	return failed, firstErr
}

// runPool runs fn(sim, i) for every i in [0, n) across `workers`
// goroutines, each with its own Simulator, via claimPool.
//
// When cfg.Obs is enabled each worker records into a local registry;
// the locals of cleanly finished workers are merged into cfg.Obs in
// worker order after the join, so instrumentation is race-free by
// construction and — because counters and histograms are additive and
// snapshot events sort canonically — deterministic regardless of how
// items were distributed. A worker that failed mid-item leaves its
// local registry partially populated (e.g. a frame's counters without
// its spans); merging it would let an aborted run report torn numbers,
// so failed workers' registries are dropped.
func runPool(ctx context.Context, cfg Config, trace *gltrace.Trace, workers, n int, fn func(sim *Simulator, i int)) error {
	parent := cfg.Obs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	locals := make([]*obs.Registry, workers)
	failed, firstErr := claimPool(ctx, workers, n, func(w int) (func(i int), error) {
		wcfg := cfg
		if parent.Enabled() {
			locals[w] = parent.NewLocal()
			wcfg.Obs = locals[w]
		}
		sim, err := New(wcfg, trace)
		if err != nil {
			return nil, err
		}
		return func(i int) { fn(sim, i) }, nil
	})
	for w, l := range locals {
		if w < len(failed) && failed[w] {
			continue
		}
		parent.Merge(l)
	}
	return firstErr
}

// SimulateFramesParallel simulates the given frame subset across
// `workers` goroutines (0 = GOMAXPROCS), returning stats in the same
// order as frames. Like SimulateAllParallel it requires frame isolation
// (FlushCachesPerFrame).
func SimulateFramesParallel(cfg Config, trace *gltrace.Trace, frames []int, workers int) ([]FrameStats, error) {
	return SimulateFramesParallelCtx(context.Background(), cfg, trace, frames, workers)
}

// SimulateFramesParallelCtx is SimulateFramesParallel honoring a
// context: cancellation (or deadline expiry) stops every worker at its
// next claim and returns ctx's error. Results are all-or-nothing — a
// cancelled run returns no stats, exactly like a failed one.
func SimulateFramesParallelCtx(ctx context.Context, cfg Config, trace *gltrace.Trace, frames []int, workers int) ([]FrameStats, error) {
	if !cfg.FlushCachesPerFrame {
		return nil, fmt.Errorf("tbr: parallel simulation requires FlushCachesPerFrame (frame isolation)")
	}
	for _, f := range frames {
		if f < 0 || f >= trace.NumFrames() {
			return nil, fmt.Errorf("tbr: frame %d out of range [0,%d)", f, trace.NumFrames())
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(frames) {
		workers = len(frames)
	}
	if len(frames) == 0 {
		return nil, ctx.Err()
	}
	out := make([]FrameStats, len(frames))
	// A single worker skips the pool — unless a checker is attached, in
	// which case the pool's recover is what converts a failed CheckFrame
	// (a panic out of SimulateFrame) into an error.
	if workers <= 1 && cfg.Check == nil {
		sim, err := New(cfg, trace)
		if err != nil {
			return nil, err
		}
		for i, f := range frames {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out[i] = sim.SimulateFrame(f)
		}
		return out, nil
	}
	err := runPool(ctx, cfg, trace, workers, len(frames), func(sim *Simulator, i int) {
		out[i] = sim.SimulateFrame(frames[i])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SimulateAllParallel simulates every frame of the trace across
// `workers` goroutines (0 = GOMAXPROCS), each with its own Simulator
// instance. It requires FlushCachesPerFrame: frame isolation makes the
// result bit-identical to the sequential SimulateAll regardless of how
// frames are distributed over workers — verified by tests. progress, if
// non-nil, is called once per completed frame (from worker goroutines;
// it must be safe for concurrent use).
func SimulateAllParallel(cfg Config, trace *gltrace.Trace, workers int, progress func(frame int)) ([]FrameStats, error) {
	return SimulateAllParallelCtx(context.Background(), cfg, trace, workers, progress)
}

// SimulateAllParallelCtx is SimulateAllParallel honoring a context:
// cancellation stops every worker at its next frame claim and returns
// ctx's error instead of stats.
func SimulateAllParallelCtx(ctx context.Context, cfg Config, trace *gltrace.Trace, workers int, progress func(frame int)) ([]FrameStats, error) {
	if !cfg.FlushCachesPerFrame {
		return nil, fmt.Errorf("tbr: parallel simulation requires FlushCachesPerFrame (frame isolation)")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := trace.NumFrames()
	if workers > n {
		workers = n
	}
	if n == 0 {
		return nil, ctx.Err()
	}
	// See SimulateFramesParallelCtx for why a checker disables the
	// serial fast path.
	if workers <= 1 && cfg.Check == nil {
		sim, err := New(cfg, trace)
		if err != nil {
			return nil, err
		}
		out := make([]FrameStats, 0, n)
		for f := 0; f < n; f++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out = append(out, sim.SimulateFrame(f))
			if progress != nil {
				progress(f)
			}
		}
		return out, nil
	}

	out := make([]FrameStats, n)
	err := runPool(ctx, cfg, trace, workers, n, func(sim *Simulator, f int) {
		out[f] = sim.SimulateFrame(f)
		if progress != nil {
			progress(f)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
