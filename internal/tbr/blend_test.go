package tbr_test

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/gltrace"
	"repro/internal/shader"
	"repro/internal/tbr"
	"repro/internal/xmath/stats"
)

// blendTrace builds a one-frame trace with three full-screen quads at
// depths near (0.2), middle (0.5), far (0.8), drawn far-to-near, with
// configurable blend flags.
func blendTrace(t *testing.T, blendFlags [3]bool) *gltrace.Trace {
	t.Helper()
	g := shader.NewGenerator(stats.NewRNG(3))
	quad := gltrace.Mesh{
		Name: "fsq",
		Vertices: []gltrace.Vertex{
			{Pos: geom.Vec3{X: -1, Y: -1}}, {Pos: geom.Vec3{X: 1, Y: -1}},
			{Pos: geom.Vec3{X: 1, Y: 1}}, {Pos: geom.Vec3{X: -1, Y: 1}},
		},
		Indices: []int{0, 1, 2, 0, 2, 3},
	}
	tr := &gltrace.Trace{
		Name:            "blend",
		Viewport:        geom.Viewport{Width: 64, Height: 64},
		VertexShaders:   []*shader.Program{g.Vertex(shader.SimpleVertex)},
		FragmentShaders: []*shader.Program{g.Fragment(shader.SimpleFragment)},
		Meshes:          []gltrace.Mesh{quad},
		Textures:        []gltrace.Texture{{Name: "t", Width: 64, Height: 64, BytesPerTexel: 4}},
	}
	frame := gltrace.Frame{Commands: []gltrace.Command{
		{Op: gltrace.CmdClear},
		{Op: gltrace.CmdBindProgram},
		{Op: gltrace.CmdBindTexture},
	}}
	// NDC z=0 maps to depth 0.5; DepthBias shifts it. Draw far-to-near.
	for i, bias := range []float64{0.3, 0.0, -0.3} {
		frame.Commands = append(frame.Commands, gltrace.Command{
			Op: gltrace.CmdDraw, Mesh: 0, MVP: geom.IdentityMat4(),
			DepthBias: bias, Blend: blendFlags[i],
		})
	}
	tr.Frames = []gltrace.Frame{frame}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func simulateBlend(t *testing.T, blendFlags [3]bool, deferred bool) tbr.FrameStats {
	t.Helper()
	cfg := tbr.DefaultConfig()
	cfg.TileSize = 16
	cfg.DeferredShading = deferred
	sim, err := tbr.New(cfg, blendTrace(t, blendFlags))
	if err != nil {
		t.Fatal(err)
	}
	return sim.SimulateFrame(0)
}

const screenFrags = 64 * 64

func TestOpaqueFarToNearShadesEverything(t *testing.T) {
	// All opaque, drawn far-to-near: early-Z cannot cull anything, so
	// all three layers shade (the overdraw problem).
	st := simulateBlend(t, [3]bool{false, false, false}, false)
	if st.FragmentsShaded != 3*screenFrags {
		t.Fatalf("shaded %d, want %d", st.FragmentsShaded, 3*screenFrags)
	}
}

func TestBlendedBehindOpaqueIsCulled(t *testing.T) {
	// Far layer blended, then opaque middle, then opaque near (drawn
	// far-to-near): the blended far layer shades (nothing in front yet),
	// and since blended fragments do not write depth, the middle layer
	// still shades too.
	st := simulateBlend(t, [3]bool{true, false, false}, false)
	if st.FragmentsShaded != 3*screenFrags {
		t.Fatalf("shaded %d, want %d", st.FragmentsShaded, 3*screenFrags)
	}

	// A blended far layer drawn AFTER an opaque near layer must be
	// culled entirely: opaque near first (writes depth), then opaque
	// middle (occluded), then blended far (occluded).
	cfg := tbr.DefaultConfig()
	cfg.TileSize = 16
	tr := blendTrace(t, [3]bool{true, false, false})
	// Reverse draw order: near opaque (bias -0.3) first, blended far last.
	cmds := tr.Frames[0].Commands
	cmds[3], cmds[5] = cmds[5], cmds[3]
	sim, err := tbr.New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	st = sim.SimulateFrame(0)
	if st.FragmentsShaded != screenFrags {
		t.Fatalf("shaded %d, want %d (only the near opaque layer)", st.FragmentsShaded, screenFrags)
	}
	if st.FragmentsOccluded != 2*screenFrags {
		t.Fatalf("occluded %d, want %d", st.FragmentsOccluded, 2*screenFrags)
	}
}

func TestBlendedNeverOccludesOpaque(t *testing.T) {
	// Blended near layer drawn FIRST (near-to-far would normally let
	// early-Z cull the rest): because blended quads do not write depth,
	// the opaque layers behind must still shade.
	tr := blendTrace(t, [3]bool{false, false, true})
	cmds := tr.Frames[0].Commands
	cmds[3], cmds[5] = cmds[5], cmds[3] // near blended first
	cfg := tbr.DefaultConfig()
	cfg.TileSize = 16
	sim, err := tbr.New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	st := sim.SimulateFrame(0)
	// The blended near layer shades (nothing resolved yet) and writes
	// no depth, so the middle opaque layer still shades; the far
	// opaque layer is then occluded by the middle one. If the blended
	// layer had (wrongly) written depth, only it would have shaded.
	if st.FragmentsShaded != 2*screenFrags {
		t.Fatalf("blended quad occluded opaque geometry: %d shaded, want %d",
			st.FragmentsShaded, 2*screenFrags)
	}
	if st.FragmentsOccluded != screenFrags {
		t.Fatalf("occluded %d, want %d (far layer behind middle)", st.FragmentsOccluded, screenFrags)
	}

	// Control: an OPAQUE near layer drawn first culls the other two.
	tr2 := blendTrace(t, [3]bool{false, false, false})
	cmds2 := tr2.Frames[0].Commands
	cmds2[3], cmds2[5] = cmds2[5], cmds2[3]
	sim2, err := tbr.New(cfg, tr2)
	if err != nil {
		t.Fatal(err)
	}
	st2 := sim2.SimulateFrame(0)
	if st2.FragmentsShaded != screenFrags {
		t.Fatalf("early-Z failed to cull behind opaque: %d shaded", st2.FragmentsShaded)
	}
}

func TestDeferredTransparencyShadesVisibleOnly(t *testing.T) {
	// TBDR with all-opaque far-to-near: HSR shades exactly one layer.
	st := simulateBlend(t, [3]bool{false, false, false}, true)
	if st.FragmentsShaded != screenFrags {
		t.Fatalf("TBDR shaded %d, want %d", st.FragmentsShaded, screenFrags)
	}

	// Far layer blended, middle+near opaque: HSR resolves opaque depth
	// to the near layer; the blended far layer is behind it and culled.
	// Total shaded: near opaque layer only.
	st = simulateBlend(t, [3]bool{true, false, false}, true)
	if st.FragmentsShaded != screenFrags {
		t.Fatalf("TBDR with blended-behind shaded %d, want %d", st.FragmentsShaded, screenFrags)
	}

	// Near layer blended: HSR resolves opaque depth to the middle
	// layer; the blended near layer passes the read-only test and
	// shades on top. Total: middle opaque + near blended.
	st = simulateBlend(t, [3]bool{false, false, true}, true)
	if st.FragmentsShaded != 2*screenFrags {
		t.Fatalf("TBDR with blended-in-front shaded %d, want %d", st.FragmentsShaded, 2*screenFrags)
	}
}

func TestBlendConservation(t *testing.T) {
	for _, deferred := range []bool{false, true} {
		st := simulateBlend(t, [3]bool{false, true, true}, deferred)
		if st.FragmentsShaded+st.FragmentsOccluded != 3*screenFrags {
			t.Fatalf("deferred=%v: %d + %d != %d", deferred,
				st.FragmentsShaded, st.FragmentsOccluded, 3*screenFrags)
		}
	}
}
