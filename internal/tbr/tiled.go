package tbr

import (
	"context"
	"fmt"

	"repro/internal/tbr/mem"
	"repro/internal/tbr/queue"
)

// tileWorker is one worker of the tile-parallel raster stage: a private
// memory shard plus a raster context wired to it. Workers never share
// mutable timing state, so tiles simulate concurrently without locks
// and the per-shard statistics accumulate without atomics.
type tileWorker struct {
	shard *mem.Shard
	ctx   rasterCtx
	// partial accumulates the worker's share of the frame's raster
	// counters; the timing fields stay zero and the partials merge into
	// the frame's FrameStats by plain summation.
	partial FrameStats
}

// initTileWorkers builds the TileWorkers shard contexts and the
// per-tile result slices. Called from New when cfg.TileWorkers > 0.
func (s *Simulator) initTileWorkers() {
	shardCfg := mem.ShardConfig{
		TileCache:        s.cfg.TileCache,
		TextureCache:     s.cfg.TextureCache,
		NumTextureCaches: s.cfg.NumTextureCaches,
		L2:               s.cfg.L2,
		DRAM:             s.cfg.Faults.perturbDRAM(scaleDRAMToGPUClock(s.cfg.DRAM, s.cfg.FrequencyMHz)),
	}
	for w := 0; w < s.cfg.TileWorkers; w++ {
		sh := mem.NewShard(shardCfg)
		tw := &tileWorker{shard: sh}
		tw.ctx = rasterCtx{
			sim:       s,
			tilecache: sh.TileCache,
			tcaches:   sh.TextureCaches,
			fbmem:     sh.L2,
			fragmentQ: queue.New("fragment", s.cfg.FragmentQueueEntries),
			colorQ:    queue.New("color", s.cfg.ColorQueueEntries),
			fpFree:    make([]uint64, s.cfg.NumFragmentProcessors),
		}
		if s.cfg.Check != nil {
			tw.ctx.fragmentQ.EnableInvariantCheck()
			tw.ctx.colorQ.EnableInvariantCheck()
		}
		s.tileWorkers = append(s.tileWorkers, tw)
	}
	nTiles := s.tilesX * s.tilesY
	s.tileDurs = make([]uint64, nTiles)
	s.tileFPEnds = make([]uint64, nTiles)
}

// runTileIsolated simulates tile t in isolation on this worker: the
// shard cold-starts and the queues rewind, so the tile's duration and
// counters are a pure function of its primitive list and the canonical
// start cycle — independent of which worker runs it and of whatever ran
// on this shard before. The tile's duration (including the shard flush
// that drains its framebuffer lines) and fragment-stage end go to the
// per-tile slices the frame-end fold consumes.
func (tw *tileWorker) runTileIsolated(s *Simulator, t int, start uint64) {
	tw.shard.ColdStart()
	tw.ctx.fragmentQ.ResetTime()
	tw.ctx.colorQ.ResetTime()
	tw.ctx.fpEnd = 0
	tx, ty := t%s.tilesX, t/s.tilesX
	tileDone := tw.ctx.runTile(&tw.partial, t, tx, ty, start)
	flushDone := tw.shard.Flush(tileDone)
	s.tileDurs[t] = maxU(flushDone, tileDone) - start
	if tw.ctx.fpEnd > start {
		s.tileFPEnds[t] = tw.ctx.fpEnd - start
	} else {
		s.tileFPEnds[t] = 0
	}
}

// rasterPassTiled is the tile-parallel Raster Pipeline driver. Every
// tile is simulated in isolation from the canonical start cycle (the
// geometry-pass end) on some worker's shard; at frame end the per-tile
// durations compose serially — tile t begins when tile t-1's writeback
// drains, exactly the serial model's schedule — and the per-shard
// counters fold into the simulator's own units in shard order. Both
// folds are sums over per-tile pure functions, so FrameStats and obs
// snapshots are byte-identical for every TileWorkers >= 1 and for any
// distribution of tiles over workers.
func (s *Simulator) rasterPassTiled(st *FrameStats, start uint64) uint64 {
	s.depth.Clear()
	nTiles := s.tilesX * s.tilesY
	workers := len(s.tileWorkers)
	if workers > nTiles {
		workers = nTiles
	}
	for _, tw := range s.tileWorkers {
		tw.shard.ResetStats()
		tw.ctx.fragmentQ.Reset()
		tw.ctx.colorQ.Reset()
		// Frame carries through to the per-tile fault rolls; the
		// frame-end fold (st.Add) ignores it.
		tw.partial = FrameStats{Frame: st.Frame}
	}

	if workers <= 1 {
		tw := s.tileWorkers[0]
		for t := 0; t < nTiles; t++ {
			tw.runTileIsolated(s, t, start)
		}
	} else {
		// Tile pools run inside one frame: cancellation is handled at
		// frame granularity by the drivers, so the pool itself runs
		// uncancellable.
		_, err := claimPool(context.Background(), workers, nTiles, func(w int) (func(int), error) {
			tw := s.tileWorkers[w]
			return func(t int) { tw.runTileIsolated(s, t, start) }, nil
		})
		if err != nil {
			// SimulateFrame has no error path; a tile worker can only
			// fail by panicking, so resurface the panic (the
			// frame-parallel driver's recover converts it back).
			panic(fmt.Sprintf("tbr: tile-parallel raster stage: %v", err))
		}
	}

	// Deterministic fold: serialize the per-tile windows.
	clock := start
	fpEnd := uint64(0)
	for t := 0; t < nTiles; t++ {
		if s.tileFPEnds[t] > 0 && clock+s.tileFPEnds[t] > fpEnd {
			fpEnd = clock + s.tileFPEnds[t]
		}
		clock += s.tileDurs[t]
	}
	if fpEnd > s.frameFPEnd {
		s.frameFPEnd = fpEnd
	}

	// Fold the per-shard counters into the simulator's own units (in
	// shard order) so the frame-delta accounting and the obs export in
	// SimulateFrame see them exactly as in the serial mode.
	for _, tw := range s.tileWorkers {
		st.Add(&tw.partial)
		ss := tw.shard.Stats()
		s.tilecache.Stats.Add(ss.TileCache)
		// Per-unit attribution: each shard texture cache folds into the
		// simulator unit with the same index, so per-unit counters match
		// the serial mode (folding the sum into unit 0 would not).
		for i := range ss.TextureCacheUnits {
			s.tcaches[i].Stats.Add(ss.TextureCacheUnits[i])
		}
		s.l2.Stats.Add(ss.L2)
		s.dram.Stats.Add(ss.DRAM)
		s.fragmentQ.Stats.Add(tw.ctx.fragmentQ.Stats)
		s.colorQ.Stats.Add(tw.ctx.colorQ.Stats)
	}
	return clock
}
