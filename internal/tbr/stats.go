package tbr

import "repro/internal/tbr/mem"

// FrameStats holds everything the simulator measured for one frame.
// These are the "simulation output statistics" MEGsim estimates from
// representatives.
type FrameStats struct {
	// Frame is the frame index within the trace.
	Frame int

	// Cycles is the total frame time; GeometryCycles + RasterCycles.
	Cycles         uint64
	GeometryCycles uint64
	RasterCycles   uint64

	// Geometry activity.
	VerticesShaded uint64
	PrimsIn        uint64
	PrimsVisible   uint64
	VSInstrs       uint64

	// Tiling activity.
	TileEntries uint64 // primitive-tile pairs written by the PLB

	// Raster activity.
	QuadsRasterized   uint64
	FragmentsShaded   uint64
	FragmentsOccluded uint64
	FSInstrs          uint64
	TexAccesses       uint64 // filter-weighted texture cache accesses
	BlendOps          uint64
	FramebufferLines  uint64

	// Unit occupancy: total busy cycles summed over the processor
	// instances (divide by the processor count and frame cycles for
	// utilization).
	VPBusyCycles uint64
	FPBusyCycles uint64

	// Queue back-pressure.
	QueueStallCycles uint64

	// Memory system (per-frame deltas).
	VertexCache  mem.CacheStats
	TextureCache mem.CacheStats // sum over the texture cache instances
	TileCache    mem.CacheStats
	L2           mem.CacheStats
	DRAM         mem.DRAMStats
}

// Add accumulates o into s (Frame is left untouched).
func (s *FrameStats) Add(o *FrameStats) {
	s.Cycles += o.Cycles
	s.GeometryCycles += o.GeometryCycles
	s.RasterCycles += o.RasterCycles
	s.VerticesShaded += o.VerticesShaded
	s.PrimsIn += o.PrimsIn
	s.PrimsVisible += o.PrimsVisible
	s.VSInstrs += o.VSInstrs
	s.TileEntries += o.TileEntries
	s.QuadsRasterized += o.QuadsRasterized
	s.FragmentsShaded += o.FragmentsShaded
	s.FragmentsOccluded += o.FragmentsOccluded
	s.FSInstrs += o.FSInstrs
	s.TexAccesses += o.TexAccesses
	s.BlendOps += o.BlendOps
	s.FramebufferLines += o.FramebufferLines
	s.VPBusyCycles += o.VPBusyCycles
	s.FPBusyCycles += o.FPBusyCycles
	s.QueueStallCycles += o.QueueStallCycles
	addCache(&s.VertexCache, o.VertexCache)
	addCache(&s.TextureCache, o.TextureCache)
	addCache(&s.TileCache, o.TileCache)
	addCache(&s.L2, o.L2)
	s.DRAM.Accesses += o.DRAM.Accesses
	s.DRAM.Reads += o.DRAM.Reads
	s.DRAM.Writes += o.DRAM.Writes
	s.DRAM.RowHits += o.DRAM.RowHits
	s.DRAM.RowMisses += o.DRAM.RowMisses
	s.DRAM.BusyCycles += o.DRAM.BusyCycles
}

// Scale multiplies every counter by n — how MEGsim extrapolates a
// cluster representative's statistics to the cluster's size.
func (s FrameStats) Scale(n uint64) FrameStats {
	out := s
	out.Cycles *= n
	out.GeometryCycles *= n
	out.RasterCycles *= n
	out.VerticesShaded *= n
	out.PrimsIn *= n
	out.PrimsVisible *= n
	out.VSInstrs *= n
	out.TileEntries *= n
	out.QuadsRasterized *= n
	out.FragmentsShaded *= n
	out.FragmentsOccluded *= n
	out.FSInstrs *= n
	out.TexAccesses *= n
	out.BlendOps *= n
	out.FramebufferLines *= n
	out.VPBusyCycles *= n
	out.FPBusyCycles *= n
	out.QueueStallCycles *= n
	out.VertexCache = scaleCache(s.VertexCache, n)
	out.TextureCache = scaleCache(s.TextureCache, n)
	out.TileCache = scaleCache(s.TileCache, n)
	out.L2 = scaleCache(s.L2, n)
	out.DRAM.Accesses *= n
	out.DRAM.Reads *= n
	out.DRAM.Writes *= n
	out.DRAM.RowHits *= n
	out.DRAM.RowMisses *= n
	out.DRAM.BusyCycles *= n
	return out
}

// ScaleF scales every counter by a non-negative float factor, rounding
// to nearest. The degraded-mode estimator uses it to rescale cluster
// weights when quarantined clusters drop out of the extrapolation;
// integer Scale remains the exact path for whole-cluster weights.
func (s FrameStats) ScaleF(f float64) FrameStats {
	mul := func(v uint64) uint64 { return uint64(float64(v)*f + 0.5) }
	out := s
	out.Cycles = mul(s.Cycles)
	out.GeometryCycles = mul(s.GeometryCycles)
	out.RasterCycles = mul(s.RasterCycles)
	out.VerticesShaded = mul(s.VerticesShaded)
	out.PrimsIn = mul(s.PrimsIn)
	out.PrimsVisible = mul(s.PrimsVisible)
	out.VSInstrs = mul(s.VSInstrs)
	out.TileEntries = mul(s.TileEntries)
	out.QuadsRasterized = mul(s.QuadsRasterized)
	out.FragmentsShaded = mul(s.FragmentsShaded)
	out.FragmentsOccluded = mul(s.FragmentsOccluded)
	out.FSInstrs = mul(s.FSInstrs)
	out.TexAccesses = mul(s.TexAccesses)
	out.BlendOps = mul(s.BlendOps)
	out.FramebufferLines = mul(s.FramebufferLines)
	out.VPBusyCycles = mul(s.VPBusyCycles)
	out.FPBusyCycles = mul(s.FPBusyCycles)
	out.QueueStallCycles = mul(s.QueueStallCycles)
	out.VertexCache = scaleCacheF(s.VertexCache, f)
	out.TextureCache = scaleCacheF(s.TextureCache, f)
	out.TileCache = scaleCacheF(s.TileCache, f)
	out.L2 = scaleCacheF(s.L2, f)
	out.DRAM.Accesses = mul(s.DRAM.Accesses)
	out.DRAM.Reads = mul(s.DRAM.Reads)
	out.DRAM.Writes = mul(s.DRAM.Writes)
	out.DRAM.RowHits = mul(s.DRAM.RowHits)
	out.DRAM.RowMisses = mul(s.DRAM.RowMisses)
	out.DRAM.BusyCycles = mul(s.DRAM.BusyCycles)
	return out
}

// VPUtilization returns the average vertex-processor utilization given
// the processor count (0 when no cycles elapsed).
func (s *FrameStats) VPUtilization(numVP int) float64 {
	if s.Cycles == 0 || numVP <= 0 {
		return 0
	}
	return float64(s.VPBusyCycles) / float64(s.Cycles) / float64(numVP)
}

// FPUtilization returns the average fragment-processor utilization given
// the processor count (0 when no cycles elapsed).
func (s *FrameStats) FPUtilization(numFP int) float64 {
	if s.Cycles == 0 || numFP <= 0 {
		return 0
	}
	return float64(s.FPBusyCycles) / float64(s.Cycles) / float64(numFP)
}

// Instructions returns the total shader instructions executed.
func (s *FrameStats) Instructions() uint64 { return s.VSInstrs + s.FSInstrs }

// IPC returns shader instructions per cycle across all processors.
func (s *FrameStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions()) / float64(s.Cycles)
}

func addCache(dst *mem.CacheStats, src mem.CacheStats) {
	dst.Accesses += src.Accesses
	dst.Hits += src.Hits
	dst.Misses += src.Misses
	dst.Writebacks += src.Writebacks
}

func subCache(a, b mem.CacheStats) mem.CacheStats {
	return mem.CacheStats{
		Accesses:   a.Accesses - b.Accesses,
		Hits:       a.Hits - b.Hits,
		Misses:     a.Misses - b.Misses,
		Writebacks: a.Writebacks - b.Writebacks,
	}
}

func scaleCache(s mem.CacheStats, n uint64) mem.CacheStats {
	return mem.CacheStats{
		Accesses:   s.Accesses * n,
		Hits:       s.Hits * n,
		Misses:     s.Misses * n,
		Writebacks: s.Writebacks * n,
	}
}

func scaleCacheF(s mem.CacheStats, f float64) mem.CacheStats {
	mul := func(v uint64) uint64 { return uint64(float64(v)*f + 0.5) }
	return mem.CacheStats{
		Accesses:   mul(s.Accesses),
		Hits:       mul(s.Hits),
		Misses:     mul(s.Misses),
		Writebacks: mul(s.Writebacks),
	}
}

func subDRAM(a, b mem.DRAMStats) mem.DRAMStats {
	return mem.DRAMStats{
		Accesses:   a.Accesses - b.Accesses,
		Reads:      a.Reads - b.Reads,
		Writes:     a.Writes - b.Writes,
		RowHits:    a.RowHits - b.RowHits,
		RowMisses:  a.RowMisses - b.RowMisses,
		BusyCycles: a.BusyCycles - b.BusyCycles,
	}
}
