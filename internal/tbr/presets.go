package tbr

import (
	"fmt"
	"sort"
)

// Presets returns named GPU configurations for quick design-space
// studies. "mali450" is the paper's Table I machine (DefaultConfig);
// the others bracket it: a low-end part with half the processors and
// caches, and a high-end part with twice the processors, a larger L2
// and a faster clock. "tiled" is the Table I machine with the sharded
// tile-parallel raster stage at 4 workers (TileWorkers).
func Presets() map[string]Config {
	mali := DefaultConfig()

	low := DefaultConfig()
	low.FrequencyMHz = 450
	low.NumVertexProcessors = 2
	low.NumFragmentProcessors = 2
	low.NumTextureCaches = 2
	low.TextureCache.SizeBytes = 4 << 10
	low.TileCache.SizeBytes = 16 << 10
	low.L2.SizeBytes = 128 << 10
	low.FragmentQueueEntries = 32
	low.ColorQueueEntries = 32

	high := DefaultConfig()
	high.FrequencyMHz = 900
	high.NumVertexProcessors = 8
	high.NumFragmentProcessors = 8
	high.NumTextureCaches = 8
	high.TileCache.SizeBytes = 64 << 10
	high.L2.SizeBytes = 512 << 10
	high.FragmentQueueEntries = 128
	high.ColorQueueEntries = 128

	tbdr := DefaultConfig()
	tbdr.DeferredShading = true

	tiled := DefaultConfig()
	tiled.TileWorkers = 4

	return map[string]Config{
		"mali450": mali,
		"lowend":  low,
		"highend": high,
		"tbdr":    tbdr,
		"tiled":   tiled,
	}
}

// PresetNames returns the preset names in sorted order.
func PresetNames() []string {
	m := Presets()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Preset returns a named configuration or an error listing valid names.
func Preset(name string) (Config, error) {
	cfg, ok := Presets()[name]
	if !ok {
		return Config{}, fmt.Errorf("tbr: unknown preset %q (valid: %v)", name, PresetNames())
	}
	return cfg, nil
}
