package queue

import "testing"

func TestQueueNoStallWhenEmpty(t *testing.T) {
	q := New("q", 4)
	at := q.Admit(10)
	if at != 10 {
		t.Fatalf("Admit = %d, want 10", at)
	}
	q.Commit(20)
	if q.Stats.Stalls != 0 || q.Stats.Admitted != 1 {
		t.Fatalf("stats %+v", q.Stats)
	}
}

func TestQueueBackpressure(t *testing.T) {
	q := New("q", 2)
	// Fill both slots with items completing at 100 and 200.
	q.Admit(0)
	q.Commit(100)
	q.Admit(0)
	q.Commit(200)
	// Third item must wait for the first slot (free at 100).
	at := q.Admit(5)
	if at != 100 {
		t.Fatalf("Admit = %d, want 100", at)
	}
	q.Commit(150)
	// Fourth waits for the second slot (free at 200).
	at = q.Admit(5)
	if at != 200 {
		t.Fatalf("Admit = %d, want 200", at)
	}
	q.Commit(250)
	if q.Stats.Stalls != 2 {
		t.Fatalf("stalls = %d, want 2", q.Stats.Stalls)
	}
	if q.Stats.StallCycles != (100-5)+(200-5) {
		t.Fatalf("stall cycles = %d", q.Stats.StallCycles)
	}
}

func TestQueueFIFOSlotOrder(t *testing.T) {
	q := New("q", 2)
	q.Admit(0)
	q.Commit(50)
	q.Admit(0)
	q.Commit(10) // second slot frees earlier than the first
	// FIFO queues free slots in insertion order: must wait for 50.
	if at := q.Admit(0); at != 50 {
		t.Fatalf("Admit = %d, want 50 (FIFO head)", at)
	}
	q.Commit(60)
}

func TestQueueReset(t *testing.T) {
	q := New("q", 1)
	q.Admit(0)
	q.Commit(1000)
	q.Reset()
	if at := q.Admit(0); at != 0 {
		t.Fatalf("Admit after Reset = %d", at)
	}
	q.Commit(1)
	if q.Stats.Admitted != 1 {
		t.Fatalf("stats not reset: %+v", q.Stats)
	}
}

func TestQueueResetTimeKeepsStats(t *testing.T) {
	q := New("q", 1)
	q.Admit(0)
	q.Commit(1000)
	q.ResetTime()
	if at := q.Admit(0); at != 0 {
		t.Fatalf("Admit after ResetTime = %d", at)
	}
	q.Commit(1)
	if q.Stats.Admitted != 2 {
		t.Fatalf("stats should survive ResetTime: %+v", q.Stats)
	}
}

func TestQueuePanics(t *testing.T) {
	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	check("zero entries", func() { New("q", 0) })
	check("double admit", func() {
		q := New("q", 2)
		q.Admit(0)
		q.Admit(0)
	})
	check("commit without admit", func() {
		q := New("q", 2)
		q.Commit(0)
	})
}

func TestQueueThroughputBound(t *testing.T) {
	// A 4-entry queue in front of a 10-cycle consumer bounds steady
	// state admission rate to one per 10 cycles.
	q := New("q", 4)
	var last uint64
	for i := 0; i < 100; i++ {
		at := q.Admit(0) // producer always ready
		done := at + 10  // consumer takes 10 cycles... sequential
		if done < last+10 {
			done = last + 10
		}
		q.Commit(done)
		last = done
	}
	// After warmup, the 100th item cannot leave before ~1000 cycles.
	if last < 990 {
		t.Fatalf("throughput model broken: last done = %d", last)
	}
}
