package queue

import "testing"

func TestQueueNoStallWhenEmpty(t *testing.T) {
	q := New("q", 4)
	at := q.Admit(10)
	if at != 10 {
		t.Fatalf("Admit = %d, want 10", at)
	}
	q.Commit(20)
	if q.Stats.Stalls != 0 || q.Stats.Admitted != 1 {
		t.Fatalf("stats %+v", q.Stats)
	}
}

func TestQueueBackpressure(t *testing.T) {
	q := New("q", 2)
	// Fill both slots with items completing at 100 and 200.
	q.Admit(0)
	q.Commit(100)
	q.Admit(0)
	q.Commit(200)
	// Third item must wait for the first slot (free at 100).
	at := q.Admit(5)
	if at != 100 {
		t.Fatalf("Admit = %d, want 100", at)
	}
	q.Commit(150)
	// Fourth waits for the second slot (free at 200).
	at = q.Admit(5)
	if at != 200 {
		t.Fatalf("Admit = %d, want 200", at)
	}
	q.Commit(250)
	if q.Stats.Stalls != 2 {
		t.Fatalf("stalls = %d, want 2", q.Stats.Stalls)
	}
	if q.Stats.StallCycles != (100-5)+(200-5) {
		t.Fatalf("stall cycles = %d", q.Stats.StallCycles)
	}
}

func TestQueueFIFOSlotOrder(t *testing.T) {
	q := New("q", 2)
	q.Admit(0)
	q.Commit(50)
	q.Admit(0)
	q.Commit(10) // second slot frees earlier than the first
	// FIFO queues free slots in insertion order: must wait for 50.
	if at := q.Admit(0); at != 50 {
		t.Fatalf("Admit = %d, want 50 (FIFO head)", at)
	}
	q.Commit(60)
}

func TestQueueReset(t *testing.T) {
	q := New("q", 1)
	q.Admit(0)
	q.Commit(1000)
	q.Reset()
	if at := q.Admit(0); at != 0 {
		t.Fatalf("Admit after Reset = %d", at)
	}
	q.Commit(1)
	if q.Stats.Admitted != 1 {
		t.Fatalf("stats not reset: %+v", q.Stats)
	}
}

func TestQueueResetTimeKeepsStats(t *testing.T) {
	q := New("q", 1)
	q.Admit(0)
	q.Commit(1000)
	q.ResetTime()
	if at := q.Admit(0); at != 0 {
		t.Fatalf("Admit after ResetTime = %d", at)
	}
	q.Commit(1)
	if q.Stats.Admitted != 2 {
		t.Fatalf("stats should survive ResetTime: %+v", q.Stats)
	}
}

func TestQueuePanics(t *testing.T) {
	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	check("zero entries", func() { New("q", 0) })
	check("double admit", func() {
		q := New("q", 2)
		q.Admit(0)
		q.Admit(0)
	})
	check("commit without admit", func() {
		q := New("q", 2)
		q.Commit(0)
	})
}

func TestQueueThroughputBound(t *testing.T) {
	// A 4-entry queue in front of a 10-cycle consumer bounds steady
	// state admission rate to one per 10 cycles.
	q := New("q", 4)
	var last uint64
	for i := 0; i < 100; i++ {
		at := q.Admit(0) // producer always ready
		done := at + 10  // consumer takes 10 cycles... sequential
		if done < last+10 {
			done = last + 10
		}
		q.Commit(done)
		last = done
	}
	// After warmup, the 100th item cannot leave before ~1000 cycles.
	if last < 990 {
		t.Fatalf("throughput model broken: last done = %d", last)
	}
}

func TestQueueInvariantCheckCleanTraffic(t *testing.T) {
	// Normal two-phase usage never violates occupancy, so the armed
	// check must stay silent through fill, stall and wrap-around.
	q := New("q", 2)
	q.EnableInvariantCheck()
	var last uint64
	for i := 0; i < 20; i++ {
		at := q.Admit(uint64(i))
		done := at + 7
		if done < last+7 {
			done = last + 7
		}
		q.Commit(done)
		last = done
	}
}

func TestQueueInvariantCheckFires(t *testing.T) {
	// The occupancy invariant cannot fire through the public API — that
	// is the point of the invariant — so corrupt the ring state directly
	// and verify the check detects it. This is the firing-case test the
	// validation subsystem requires for every check.
	t.Run("head slot busy past admit", func(t *testing.T) {
		q := New("q", 2)
		q.doneAt[q.head] = 100 // occupant still holding the head slot
		defer func() {
			if recover() == nil {
				t.Fatal("verifyAdmit did not panic with the head slot busy")
			}
		}()
		q.verifyAdmit(50)
	})
	t.Run("head rotated onto busy slot", func(t *testing.T) {
		// A head index rotated past a still-busy slot (non-FIFO ring
		// corruption) is also caught by the head check.
		q := New("q", 2)
		q.doneAt[0] = 10
		q.doneAt[1] = 100
		q.head = 1
		defer func() {
			if recover() == nil {
				t.Fatal("verifyAdmit did not panic with the head on a busy slot")
			}
		}()
		q.verifyAdmit(50)
	})
}

func TestQueueArmedAdmitNeverFiresThroughAPI(t *testing.T) {
	// Admit resolves the stall against the head slot before verifying,
	// so through the public API the armed check is provably silent —
	// only corrupted ring state (the direct verifyAdmit cases above)
	// can trip it. Hammer an armed queue with adversarial ready cycles
	// to pin that down.
	q := New("q", 3)
	q.EnableInvariantCheck()
	readies := []uint64{0, 5, 5, 0, 100, 2, 2, 2, 50, 0}
	for i, r := range readies {
		at := q.Admit(r)
		q.Commit(at + uint64(13*(i%4)+1))
	}
}
