// Package queue models the bounded inter-stage queues of the GPU
// pipeline (Table I: vertex, triangle/tile, fragment and color queues).
// A queue slot is occupied from the cycle an item is admitted until the
// cycle the downstream consumer finishes it; when all slots are full the
// producer stalls — this is how back-pressure propagates between pipeline
// stages in the timing model.
//
// Usage is two-phase because an item's departure time is only known
// after downstream latency is computed:
//
//	at := q.Admit(ready)   // earliest cycle the item can enter
//	done := process(at)    // downstream work
//	q.Commit(done)         // the slot frees at done
package queue

import (
	"fmt"

	"repro/internal/obs"
)

// Stats counts queue activity.
type Stats struct {
	// Admitted is the number of items that passed through.
	Admitted uint64
	// Stalls is the number of items that had to wait for a slot.
	Stalls uint64
	// StallCycles is the total wait time.
	StallCycles uint64
}

// Add accumulates o into s. Every exported field must be summed here:
// the tile-parallel raster fold merges per-worker queue counters through
// this method, so a field omitted from Add would silently vanish from
// frame statistics (a reflection test enforces the invariant).
func (s *Stats) Add(o Stats) {
	s.Admitted += o.Admitted
	s.Stalls += o.Stalls
	s.StallCycles += o.StallCycles
}

// Queue is a bounded FIFO of in-flight pipeline items.
type Queue struct {
	name    string
	doneAt  []uint64
	head    int
	pending bool
	Stats   Stats

	// Observability handle, nil unless Instrument was called with an
	// enabled registry. Only the occupancy distribution is sampled in
	// the hot path (it cannot be derived from Stats afterwards); the
	// additive Stats counters are exported at frame granularity by the
	// simulator instead, so the uninstrumented Admit pays one nil check.
	obsOccupancy *obs.Histogram

	// checkInv arms the occupancy invariant in Admit (see
	// EnableInvariantCheck). Off by default: the check walks every slot.
	checkInv bool
}

// New returns a queue with the given number of entries. It panics on a
// non-positive size (configurations are static).
func New(name string, entries int) *Queue {
	if entries <= 0 {
		panic(fmt.Sprintf("queue %q: entries must be positive, got %d", name, entries))
	}
	return &Queue{name: name, doneAt: make([]uint64, entries)}
}

// Name returns the queue's name.
func (q *Queue) Name() string { return q.name }

// Entries returns the queue capacity.
func (q *Queue) Entries() int { return len(q.doneAt) }

// Instrument resolves a "queue.<name>.occupancy" histogram sampled at
// each admit. With a nil or disabled registry the queue stays
// uninstrumented and Admit pays only a nil check.
func (q *Queue) Instrument(r *obs.Registry) {
	if !r.Enabled() {
		return
	}
	q.obsOccupancy = r.Histogram("queue." + q.name + ".occupancy")
}

// Admit returns the earliest cycle >= ready at which the item can enter
// the queue (waiting for the oldest occupant to leave if full). Each
// Admit must be followed by exactly one Commit.
func (q *Queue) Admit(ready uint64) uint64 {
	if q.pending {
		q.panicPendingAdmit()
	}
	q.pending = true
	q.Stats.Admitted++
	if q.obsOccupancy != nil {
		q.observeOccupancy(ready)
	}
	free := q.doneAt[q.head]
	enter := ready
	if free > ready {
		q.Stats.Stalls++
		q.Stats.StallCycles += free - ready
		enter = free
	}
	if q.checkInv {
		q.verifyAdmit(enter)
	}
	return enter
}

//go:noinline
func (q *Queue) panicPendingAdmit() {
	panic(fmt.Sprintf("queue %q: Admit called with a Commit pending", q.name))
}

// observeOccupancy samples the occupancy at admit time: slots whose
// occupant has not left by the cycle the new item is ready.
func (q *Queue) observeOccupancy(ready uint64) {
	occupied := uint64(0)
	for _, done := range q.doneAt {
		if done > ready {
			occupied++
		}
	}
	q.obsOccupancy.Observe(occupied)
}

// EnableInvariantCheck arms the occupancy invariant: every Admit
// verifies that a slot is actually free at the cycle the item enters,
// i.e. that occupancy never exceeds the configured capacity. Disabled
// queues pay only a bool check.
func (q *Queue) EnableInvariantCheck() { q.checkInv = true }

// verifyAdmit panics if admitting an item at cycle enter would exceed
// the queue capacity. In a FIFO ring the occupancy invariant reduces to
// the head slot: if the oldest occupant has left by cycle enter, at
// most len-1 slots are busy; if it has not, the ring is over capacity.
// It can only fire if the stall-resolution logic or the ring state is
// corrupted, which is exactly what it exists to detect.
func (q *Queue) verifyAdmit(enter uint64) {
	if q.doneAt[q.head] > enter {
		panic(fmt.Sprintf("queue %q: occupancy invariant violated: item admitted at cycle %d while the oldest occupant holds its slot until %d (capacity %d)",
			q.name, enter, q.doneAt[q.head], len(q.doneAt)))
	}
}

// Commit records that the item admitted by the last Admit leaves the
// queue at cycle done.
func (q *Queue) Commit(done uint64) {
	if !q.pending {
		q.panicCommitWithoutAdmit()
	}
	q.pending = false
	q.doneAt[q.head] = done
	q.head++
	if q.head == len(q.doneAt) {
		q.head = 0
	}
}

//go:noinline
func (q *Queue) panicCommitWithoutAdmit() {
	panic(fmt.Sprintf("queue %q: Commit without Admit", q.name))
}

// Reset empties the queue and zeroes statistics.
func (q *Queue) Reset() {
	for i := range q.doneAt {
		q.doneAt[i] = 0
	}
	q.head = 0
	q.pending = false
	q.Stats = Stats{}
}

// ResetTime empties the queue (all slots free at cycle 0) but keeps
// statistics. Used at frame boundaries.
func (q *Queue) ResetTime() {
	for i := range q.doneAt {
		q.doneAt[i] = 0
	}
	q.head = 0
	q.pending = false
}
