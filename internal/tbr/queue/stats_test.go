package queue

import (
	"reflect"
	"testing"
)

func TestStatsAdd(t *testing.T) {
	a := Stats{Admitted: 1, Stalls: 2, StallCycles: 3}
	a.Add(Stats{Admitted: 10, Stalls: 20, StallCycles: 30})
	want := Stats{Admitted: 11, Stalls: 22, StallCycles: 33}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}

// TestStatsAddSumsEveryField enforces the fold contract stated on
// Stats.Add: every exported field must be summed. It constructs two
// Stats values with distinct field values via reflection, adds them,
// and checks each field of the result equals the sum of its inputs —
// so a field added to Stats but forgotten in Add fails here instead of
// silently vanishing from tile-parallel frame statistics.
func TestStatsAddSumsEveryField(t *testing.T) {
	mk := func(base uint64) Stats {
		var s Stats
		v := reflect.ValueOf(&s).Elem()
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			if f.Kind() != reflect.Uint64 {
				t.Fatalf("Stats field %s is %s; extend this test for non-uint64 fields",
					v.Type().Field(i).Name, f.Kind())
			}
			// Distinct per-field values so a transposed assignment in
			// Add (summing field j into field i) is also caught.
			f.SetUint(base + uint64(i+1))
		}
		return s
	}
	a, b := mk(100), mk(2000)
	got := a
	got.Add(b)

	va, vb, vg := reflect.ValueOf(a), reflect.ValueOf(b), reflect.ValueOf(got)
	for i := 0; i < vg.NumField(); i++ {
		name := vg.Type().Field(i).Name
		want := va.Field(i).Uint() + vb.Field(i).Uint()
		if vg.Field(i).Uint() != want {
			t.Errorf("Add dropped or miscombined field %s: got %d, want %d",
				name, vg.Field(i).Uint(), want)
		}
	}
}
