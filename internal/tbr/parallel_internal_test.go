package tbr

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/workload"
)

// TestParallelAbortsPromptlyOnWorkerFailure exercises the early-exit
// path: a worker failure must raise the abort flag, and because workers
// check it in the claim loop, the pool must stop well before draining
// the item list.
func TestParallelAbortsPromptlyOnWorkerFailure(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"],
		workload.Scale{Width: 96, Height: 48, FrameDivisor: 100, DetailDivisor: 2})

	const n = 64
	frames := make([]int, n)

	var claimed atomic.Int64
	testWorkerHook = func(item int) {
		if claimed.Add(1) == 3 {
			panic("injected failure")
		}
	}
	defer func() { testWorkerHook = nil }()

	_, err := SimulateFramesParallel(DefaultConfig(), tr, frames, 4)
	if err == nil {
		t.Fatal("pool swallowed the worker failure")
	}
	if !strings.Contains(err.Error(), "worker") || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("error lost the failure cause: %v", err)
	}
	if got := claimed.Load(); got >= n {
		t.Fatalf("pool drained all %d items (%d claims) despite the failure", n, got)
	}
}

// TestParallelFirstErrorWins: with several failing workers only one
// error must surface, and the result slice must be nil.
func TestParallelFirstErrorWins(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"],
		workload.Scale{Width: 96, Height: 48, FrameDivisor: 100, DetailDivisor: 2})

	frames := make([]int, 16)
	testWorkerHook = func(item int) { panic("boom") }
	defer func() { testWorkerHook = nil }()

	out, err := SimulateFramesParallel(DefaultConfig(), tr, frames, 4)
	if err == nil {
		t.Fatal("no error surfaced")
	}
	if out != nil {
		t.Fatalf("got partial results alongside the error: %d frames", len(out))
	}
}
