package tbr

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// TestParallelAbortsPromptlyOnWorkerFailure exercises the early-exit
// path: a worker failure must raise the abort flag, and because workers
// check it in the claim loop, the pool must stop well before draining
// the item list.
func TestParallelAbortsPromptlyOnWorkerFailure(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"],
		workload.Scale{Width: 96, Height: 48, FrameDivisor: 100, DetailDivisor: 2})

	const n = 64
	frames := make([]int, n)

	var claimed atomic.Int64
	testWorkerHook = func(item int) {
		if claimed.Add(1) == 3 {
			panic("injected failure")
		}
	}
	defer func() { testWorkerHook = nil }()

	_, err := SimulateFramesParallel(DefaultConfig(), tr, frames, 4)
	if err == nil {
		t.Fatal("pool swallowed the worker failure")
	}
	if !strings.Contains(err.Error(), "worker") || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("error lost the failure cause: %v", err)
	}
	if got := claimed.Load(); got >= n {
		t.Fatalf("pool drained all %d items (%d claims) despite the failure", n, got)
	}
}

// TestRunPoolSkipsFailedWorkerRegistries: a worker that panics after
// claiming an item leaves its local obs registry partially populated
// (whatever it recorded before dying, without the rest of the item's
// data). The post-join merge must drop such registries so an aborted
// run cannot report torn counters — only cleanly finished workers
// contribute.
func TestRunPoolSkipsFailedWorkerRegistries(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"],
		workload.Scale{Width: 96, Height: 48, FrameDivisor: 100, DetailDivisor: 2})

	parent := obs.New()
	cfg := DefaultConfig()
	cfg.Obs = parent

	err := runPool(cfg, tr, 4, 64, func(sim *Simulator, i int) {
		if i == 5 {
			// Simulate a worker dying mid-item: partial data has
			// already landed in its worker-local registry (sim.obs is
			// the local the pool created for this worker) when the
			// panic unwinds.
			sim.obs.Counter("test.torn").Inc()
			panic("die mid-item")
		}
		sim.SimulateFrame(0)
	})
	if err == nil {
		t.Fatal("pool swallowed the worker failure")
	}
	if !strings.Contains(err.Error(), "die mid-item") {
		t.Fatalf("error lost the failure cause: %v", err)
	}
	snap := parent.Snapshot()
	if _, ok := snap.Counters["test.torn"]; ok {
		t.Fatal("merge included the failed worker's torn registry")
	}
	// The surviving workers' registries still merge: every frame
	// counted in the parent must carry its full span set.
	if frames := snap.Counters["tbr.frames"]; frames > 0 {
		var frameSpans uint64
		for _, e := range snap.Events {
			if e.Name == "frame" {
				frameSpans++
			}
		}
		if frameSpans != frames {
			t.Fatalf("parent registry torn after merge: %d frames vs %d frame spans", frames, frameSpans)
		}
	}
}

// TestParallelFirstErrorWins: with several failing workers only one
// error must surface, and the result slice must be nil.
func TestParallelFirstErrorWins(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"],
		workload.Scale{Width: 96, Height: 48, FrameDivisor: 100, DetailDivisor: 2})

	frames := make([]int, 16)
	testWorkerHook = func(item int) { panic("boom") }
	defer func() { testWorkerHook = nil }()

	out, err := SimulateFramesParallel(DefaultConfig(), tr, frames, 4)
	if err == nil {
		t.Fatal("no error surfaced")
	}
	if out != nil {
		t.Fatalf("got partial results alongside the error: %d frames", len(out))
	}
}
