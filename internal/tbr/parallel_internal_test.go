package tbr

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// TestParallelAbortsPromptlyOnWorkerFailure exercises the early-exit
// path: a worker failure must raise the abort flag, and because workers
// check it in the claim loop, the pool must stop well before draining
// the item list.
func TestParallelAbortsPromptlyOnWorkerFailure(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"],
		workload.Scale{Width: 96, Height: 48, FrameDivisor: 100, DetailDivisor: 2})

	const n = 64
	frames := make([]int, n)

	var claimed atomic.Int64
	setTestWorkerHook(func(item int) {
		if claimed.Add(1) == 3 {
			panic("injected failure")
		}
	})
	defer setTestWorkerHook(nil)

	_, err := SimulateFramesParallel(DefaultConfig(), tr, frames, 4)
	if err == nil {
		t.Fatal("pool swallowed the worker failure")
	}
	if !strings.Contains(err.Error(), "worker") || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("error lost the failure cause: %v", err)
	}
	if got := claimed.Load(); got >= n {
		t.Fatalf("pool drained all %d items (%d claims) despite the failure", n, got)
	}
}

// TestRunPoolSkipsFailedWorkerRegistries: a worker that panics after
// claiming an item leaves its local obs registry partially populated
// (whatever it recorded before dying, without the rest of the item's
// data). The post-join merge must drop such registries so an aborted
// run cannot report torn counters — only cleanly finished workers
// contribute.
func TestRunPoolSkipsFailedWorkerRegistries(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"],
		workload.Scale{Width: 96, Height: 48, FrameDivisor: 100, DetailDivisor: 2})

	parent := obs.New()
	cfg := DefaultConfig()
	cfg.Obs = parent

	err := runPool(context.Background(), cfg, tr, 4, 64, func(sim *Simulator, i int) {
		if i == 5 {
			// Simulate a worker dying mid-item: partial data has
			// already landed in its worker-local registry (sim.obs is
			// the local the pool created for this worker) when the
			// panic unwinds.
			sim.obs.Counter("test.torn").Inc()
			panic("die mid-item")
		}
		sim.SimulateFrame(0)
	})
	if err == nil {
		t.Fatal("pool swallowed the worker failure")
	}
	if !strings.Contains(err.Error(), "die mid-item") {
		t.Fatalf("error lost the failure cause: %v", err)
	}
	snap := parent.Snapshot()
	if _, ok := snap.Counters["test.torn"]; ok {
		t.Fatal("merge included the failed worker's torn registry")
	}
	// The surviving workers' registries still merge: every frame
	// counted in the parent must carry its full span set.
	if frames := snap.Counters["tbr.frames"]; frames > 0 {
		var frameSpans uint64
		for _, e := range snap.Events {
			if e.Name == "frame" {
				frameSpans++
			}
		}
		if frameSpans != frames {
			t.Fatalf("parent registry torn after merge: %d frames vs %d frame spans", frames, frameSpans)
		}
	}
}

// TestParallelFirstErrorWins: with several failing workers only one
// error must surface, and the result slice must be nil.
func TestParallelFirstErrorWins(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"],
		workload.Scale{Width: 96, Height: 48, FrameDivisor: 100, DetailDivisor: 2})

	frames := make([]int, 16)
	setTestWorkerHook(func(item int) { panic("boom") })
	defer setTestWorkerHook(nil)

	out, err := SimulateFramesParallel(DefaultConfig(), tr, frames, 4)
	if err == nil {
		t.Fatal("no error surfaced")
	}
	if out != nil {
		t.Fatalf("got partial results alongside the error: %d frames", len(out))
	}
}

// TestClaimPoolSimultaneousFailures releases every worker into a panic
// at the same instant and checks the pool reports exactly one coherent
// first error while marking every worker failed — the contract the obs
// merge (skip failed workers) and runPool's all-or-nothing result
// depend on.
func TestClaimPoolSimultaneousFailures(t *testing.T) {
	const workers = 8
	var (
		ready sync.WaitGroup
		gate  = make(chan struct{})
	)
	ready.Add(workers)
	// Close the gate once every worker holds an item. claimPool blocks
	// until the join, so the release must already be running.
	go func() {
		ready.Wait()
		close(gate)
	}()
	failed, err := claimPool(context.Background(), workers, workers*4, func(w int) (func(i int), error) {
		return func(i int) {
			ready.Done()
			<-gate // all workers panic together
			panic("simultaneous failure")
		}, nil
	})
	if err == nil {
		t.Fatal("pool swallowed the simultaneous failures")
	}
	if !strings.Contains(err.Error(), "simultaneous failure") {
		t.Fatalf("first error lost the cause: %v", err)
	}
	for w, f := range failed {
		if !f {
			t.Errorf("worker %d not marked failed", w)
		}
	}
}

// TestClaimPoolDegenerateInputs: workers <= 0 must default rather than
// spin up nothing, and n <= 0 must run nothing without spawning
// goroutines or touching setup.
func TestClaimPoolDegenerateInputs(t *testing.T) {
	for _, n := range []int{0, -3} {
		failed, err := claimPool(context.Background(), 4, n, func(w int) (func(i int), error) {
			t.Fatalf("setup called for n=%d", n)
			return nil, nil
		})
		if err != nil || failed != nil {
			t.Fatalf("n=%d: got failed=%v err=%v, want empty run", n, failed, err)
		}
	}

	var ran atomic.Int64
	failed, err := claimPool(context.Background(), 0, 5, func(w int) (func(i int), error) {
		return func(i int) { ran.Add(1) }, nil
	})
	if err != nil {
		t.Fatalf("workers=0: %v", err)
	}
	if got := ran.Load(); got != 5 {
		t.Fatalf("workers=0 ran %d/5 items", got)
	}
	if len(failed) == 0 {
		t.Fatal("workers=0 reported no worker slots")
	}
}

// TestClaimPoolContextCancellation: cancelling the context mid-run must
// stop the pool at the next claim, surface ctx's error, and NOT mark
// the cancelled workers failed (their last item completed cleanly).
func TestClaimPoolContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	const n = 1 << 20 // far more items than can drain before the cancel
	failed, err := claimPool(ctx, 4, n, func(w int) (func(i int), error) {
		return func(i int) {
			if done.Add(1) == 8 {
				cancel()
			}
		}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := done.Load(); got >= n {
		t.Fatalf("pool drained all %d items despite cancellation", n)
	}
	for w, f := range failed {
		if f {
			t.Errorf("cancelled worker %d marked failed", w)
		}
	}
}

// TestSimulateFramesParallelCtxCancelled: a pre-cancelled context must
// return ctx.Err() and no stats from both drivers.
func TestSimulateFramesParallelCtxCancelled(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"],
		workload.Scale{Width: 96, Height: 48, FrameDivisor: 100, DetailDivisor: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if out, err := SimulateFramesParallelCtx(ctx, DefaultConfig(), tr, []int{0, 0, 0}, 2); !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("SimulateFramesParallelCtx = (%v, %v), want (nil, Canceled)", out, err)
	}
	if out, err := SimulateFramesParallelCtx(ctx, DefaultConfig(), tr, []int{0}, 1); !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("serial SimulateFramesParallelCtx = (%v, %v), want (nil, Canceled)", out, err)
	}
	if out, err := SimulateAllParallelCtx(ctx, DefaultConfig(), tr, 2, nil); !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("SimulateAllParallelCtx = (%v, %v), want (nil, Canceled)", out, err)
	}
}
