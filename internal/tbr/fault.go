package tbr

import (
	"fmt"

	"repro/internal/tbr/mem"
)

// FaultConfig is the deterministic fault-injection layer of the
// validation subsystem (internal/check). Each fault class perturbs one
// aspect of the simulated microarchitecture; all rolls derive from
// (Seed, frame, tile, class), so an injected fault pattern is a pure
// function of the workload position — identical for every TileWorkers
// and frame-worker count, and identical whether a frame is simulated
// standalone (as a MEGsim representative) or mid-sequence. The zero
// value injects nothing and costs one Enabled() branch per tile.
//
// Fault classes split into two families the validation tests exercise
// separately: timing/behaviour perturbations (DRAM latency, forced
// cache flushes, dropped/duplicated tiles, stalled shader cores) that
// must surface as shifted statistics in the differential oracle's
// accuracy report, and state corruption (CorruptStats) that must trip
// the invariant checks threaded through the simulator.
type FaultConfig struct {
	// Seed drives every fault roll. Two runs with the same seed and
	// rates inject byte-identical fault patterns.
	Seed uint64

	// DRAMLatencyScale multiplies the DRAM row-hit and row-miss
	// latencies (after the GPU-clock scaling). 0 or 1 disables the
	// fault; 2 doubles memory latency everywhere.
	DRAMLatencyScale float64

	// DropTileRate is the per-tile probability that the Raster Pipeline
	// silently skips the tile's primitive list (the tile still resolves
	// and writes back). Models lost polygon-list work.
	DropTileRate float64

	// DuplicateTileRate is the per-tile probability that the tile's
	// primitive list is processed twice. Models replayed work.
	DuplicateTileRate float64

	// CacheFlushRate is the per-tile probability that the tile-level
	// caches (tile cache + texture caches) are forcibly flushed after
	// the tile, destroying locality the following tiles relied on.
	CacheFlushRate float64

	// StallRate and StallCycles stall the shader cores for StallCycles
	// at the start of a rolled tile (all fragment processors idle).
	StallRate   float64
	StallCycles uint64

	// CorruptStats, when set, corrupts every frame's cache statistics
	// after simulation (hits + misses no longer equals accesses). It
	// exists so tests can prove the invariant checks actually fire; it
	// never changes timing.
	CorruptStats bool
}

// Fault-roll classes. Each class draws an independent deterministic
// stream so enabling one fault never shifts another's pattern.
const (
	faultClassDrop uint64 = iota
	faultClassDuplicate
	faultClassFlush
	faultClassStall
)

// Enabled reports whether any fault class is active.
func (f *FaultConfig) Enabled() bool {
	return f.DropTileRate > 0 || f.DuplicateTileRate > 0 || f.CacheFlushRate > 0 ||
		(f.StallRate > 0 && f.StallCycles > 0) || f.dramPerturbed() || f.CorruptStats
}

func (f *FaultConfig) dramPerturbed() bool {
	return f.DRAMLatencyScale > 0 && f.DRAMLatencyScale != 1
}

// Validate reports configuration errors.
func (f *FaultConfig) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"DropTileRate", f.DropTileRate},
		{"DuplicateTileRate", f.DuplicateTileRate},
		{"CacheFlushRate", f.CacheFlushRate},
		{"StallRate", f.StallRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("tbr: fault %s %v out of [0,1]", r.name, r.v)
		}
	}
	if f.DRAMLatencyScale < 0 {
		return fmt.Errorf("tbr: fault DRAMLatencyScale %v must be >= 0", f.DRAMLatencyScale)
	}
	return nil
}

// roll returns a deterministic pseudo-random value in [0, 1) for the
// (frame, tile, class) triple — a splitmix64 finalizer over the mixed
// coordinates, so the pattern is independent of simulation order.
func (f *FaultConfig) roll(frame, tile int, class uint64) float64 {
	x := f.Seed ^
		uint64(frame)*0x9E3779B97F4A7C15 ^
		uint64(tile)*0xBF58476D1CE4E5B9 ^
		(class+1)*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// perturbDRAM applies the DRAM-latency fault to an already
// clock-scaled DRAM configuration.
func (f *FaultConfig) perturbDRAM(cfg mem.DRAMConfig) mem.DRAMConfig {
	if !f.dramPerturbed() {
		return cfg
	}
	cfg.RowHitLatency = uint64(float64(cfg.RowHitLatency) * f.DRAMLatencyScale)
	cfg.RowMissLatency = uint64(float64(cfg.RowMissLatency) * f.DRAMLatencyScale)
	return cfg
}

// corruptFrameStats applies the CorruptStats fault: it bumps the L2
// access counter without touching hits or misses, so the
// hits+misses==accesses invariant no longer holds for the frame.
func (f *FaultConfig) corruptFrameStats(st *FrameStats) {
	if !f.CorruptStats {
		return
	}
	st.L2.Accesses += 1 + st.L2.Accesses/16
}
