package tbr_test

import (
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/tbr"
	"repro/internal/workload"
)

// BenchmarkSimulateFrameObs measures the observability layer's overhead
// on the cycle simulator's hot path: "off" is the nil-registry default
// (every instrumentation point pays one nil check), "on" records the
// full counter/histogram/span set. The acceptance bar is <2% regression
// for "off" relative to the uninstrumented baseline.
func BenchmarkSimulateFrameObs(b *testing.B) {
	tr := workload.MustGenerate(workload.Profiles["hcr"],
		workload.Scale{Width: 256, Height: 128, FrameDivisor: 8, DetailDivisor: 1})
	frame := tr.NumFrames() / 2
	for _, mode := range []struct {
		name string
		reg  *obs.Registry
	}{
		{"off", nil},
		{"on", obs.New()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			// Construction stays outside the timed region; the loop
			// measures steady-state frame simulation only.
			cfg := tbr.DefaultConfig()
			cfg.Obs = mode.reg
			sim, err := tbr.New(cfg, tr)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.SimulateFrame(frame)
			}
		})
	}
}

// BenchmarkTileParallelRaster demonstrates the tile-parallel raster
// stage on the large (highend) preset with a raster-heavy frame:
// "serial" is the legacy warm-cache model (TileWorkers = 0), the
// tile-workers=N entries run the sharded model. The acceptance bar is
// >= 1.5x speedup of tile-workers=4 over tile-workers=1 (every
// TileWorkers >= 1 setting computes byte-identical results, so the
// ratio is pure wall-clock). On a single-CPU host the multi-worker
// entries collapse to tile-workers=1 time: the per-tile work is
// lock-free and evenly claimable, so scaling is bounded only by
// GOMAXPROCS.
func BenchmarkTileParallelRaster(b *testing.B) {
	tr := workload.MustGenerate(workload.Profiles["hcr"],
		workload.Scale{Width: 1024, Height: 512, FrameDivisor: 8, DetailDivisor: 1})
	frame := tr.NumFrames() / 2
	for _, tw := range []int{0, 1, 2, 4} {
		name := fmt.Sprintf("tile-workers=%d", tw)
		if tw == 0 {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			// Simulator construction (cache arenas, shard contexts) stays
			// outside the timed region, and allocs/op is reported: the
			// arena-reused hot path's allocation budget is part of the
			// bench-check regression gate.
			cfg, err := tbr.Preset("highend")
			if err != nil {
				b.Fatal(err)
			}
			cfg.TileWorkers = tw
			sim, err := tbr.New(cfg, tr)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.SimulateFrame(frame)
			}
		})
	}
}

// BenchmarkSimulateAllParallelObs measures the worker-local-registry
// merge pattern end to end at full parallelism.
func BenchmarkSimulateAllParallelObs(b *testing.B) {
	tr := workload.MustGenerate(workload.Profiles["hcr"], workload.TestScale)
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := tbr.DefaultConfig()
				if mode == "on" {
					cfg.Obs = obs.New()
				}
				if _, err := tbr.SimulateAllParallel(cfg, tr, 0, nil); err != nil {
					b.Fatal(err)
				}
				if cfg.Obs != nil {
					cfg.Obs.Snapshot()
				}
			}
		})
	}
}
