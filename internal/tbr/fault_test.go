package tbr

import (
	"testing"

	"repro/internal/gltrace"
	"repro/internal/workload"
)

func faultTestTrace(t testing.TB) *gltrace.Trace {
	t.Helper()
	p := workload.RandomProfile(0xFA)
	p.Frames = 6
	tr, err := workload.Generate(p, workload.Scale{Width: 96, Height: 48, FrameDivisor: 1, DetailDivisor: 2})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return tr
}

func TestFaultConfigValidate(t *testing.T) {
	good := []FaultConfig{
		{},
		{Seed: 7, DropTileRate: 0.5, DuplicateTileRate: 1, CacheFlushRate: 0.1},
		{DRAMLatencyScale: 2.5},
		{StallRate: 0.2, StallCycles: 100},
	}
	for _, f := range good {
		if err := f.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", f, err)
		}
	}
	bad := []FaultConfig{
		{DropTileRate: -0.1},
		{DropTileRate: 1.1},
		{DuplicateTileRate: 2},
		{CacheFlushRate: -1},
		{StallRate: 1.5},
		{DRAMLatencyScale: -1},
	}
	for _, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", f)
		}
	}
}

func TestFaultConfigEnabled(t *testing.T) {
	cases := []struct {
		f    FaultConfig
		want bool
	}{
		{FaultConfig{}, false},
		{FaultConfig{Seed: 99}, false},            // a seed alone injects nothing
		{FaultConfig{DRAMLatencyScale: 1}, false}, // scale 1 is identity
		{FaultConfig{DRAMLatencyScale: 2}, true},
		{FaultConfig{DropTileRate: 0.01}, true},
		{FaultConfig{DuplicateTileRate: 0.01}, true},
		{FaultConfig{CacheFlushRate: 0.01}, true},
		{FaultConfig{StallRate: 0.5, StallCycles: 1}, true},
		{FaultConfig{CorruptStats: true}, true},
	}
	for _, tc := range cases {
		if got := tc.f.Enabled(); got != tc.want {
			t.Errorf("Enabled(%+v) = %v, want %v", tc.f, got, tc.want)
		}
	}
}

func TestFaultRollDeterministicAndSeedSensitive(t *testing.T) {
	a := FaultConfig{Seed: 1}
	b := FaultConfig{Seed: 2}
	diff := 0
	for frame := 0; frame < 4; frame++ {
		for tile := 0; tile < 16; tile++ {
			for class := uint64(0); class < 4; class++ {
				ra := a.roll(frame, tile, class)
				if ra != a.roll(frame, tile, class) {
					t.Fatalf("roll not deterministic at (%d,%d,%d)", frame, tile, class)
				}
				if ra < 0 || ra >= 1 {
					t.Fatalf("roll out of [0,1): %v", ra)
				}
				if ra != b.roll(frame, tile, class) {
					diff++
				}
			}
		}
	}
	if diff < 200 { // 256 rolls total; nearly all must differ across seeds
		t.Errorf("only %d/256 rolls differ between seeds", diff)
	}
}

// TestFaultInjectionWorkerInvariant is the determinism contract of the
// fault layer: injection is keyed by (seed, frame, tile, class), never
// by execution order, so identical faults land regardless of how tiles
// and frames are spread over workers.
func TestFaultInjectionWorkerInvariant(t *testing.T) {
	tr := faultTestTrace(t)
	base := DefaultConfig()
	base.Faults = FaultConfig{
		Seed:              42,
		DropTileRate:      0.2,
		DuplicateTileRate: 0.15,
		CacheFlushRate:    0.2,
		StallRate:         0.3,
		StallCycles:       777,
		DRAMLatencyScale:  1.5,
	}

	var ref []FrameStats
	for _, mode := range []struct {
		tileWorkers, frameWorkers int
	}{{1, 1}, {2, 1}, {4, 2}, {1, 3}} {
		cfg := base
		cfg.TileWorkers = mode.tileWorkers
		got, err := SimulateAllParallel(cfg, tr, mode.frameWorkers, nil)
		if err != nil {
			t.Fatalf("tw=%d fw=%d: %v", mode.tileWorkers, mode.frameWorkers, err)
		}
		if ref == nil {
			ref = got
			continue
		}
		for f := range got {
			if got[f] != ref[f] {
				t.Errorf("tw=%d fw=%d: frame %d stats differ under identical faults",
					mode.tileWorkers, mode.frameWorkers, f)
			}
		}
	}
}

// TestFaultsPerturbResults asserts each fault class actually changes
// what the simulator measures relative to a clean run — faults that
// silently do nothing validate nothing.
func TestFaultsPerturbResults(t *testing.T) {
	tr := faultTestTrace(t)
	clean, err := SimulateAllParallel(DefaultConfig(), tr, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(stats []FrameStats) (cycles, tileAcc, l2Acc uint64) {
		for i := range stats {
			cycles += stats[i].Cycles
			tileAcc += stats[i].TileCache.Accesses
			l2Acc += stats[i].L2.Accesses
		}
		return
	}
	cc, ct, cl := sum(clean)

	cases := []struct {
		name   string
		faults FaultConfig
		moved  func(cycles, tileAcc, l2Acc uint64) bool
	}{
		{"dram-latency", FaultConfig{DRAMLatencyScale: 4},
			func(cy, _, _ uint64) bool { return cy > cc }},
		{"drop", FaultConfig{Seed: 5, DropTileRate: 0.5},
			func(_, ta, _ uint64) bool { return ta < ct }},
		{"duplicate", FaultConfig{Seed: 5, DuplicateTileRate: 0.5},
			func(_, ta, _ uint64) bool { return ta > ct }},
		{"flush", FaultConfig{Seed: 5, CacheFlushRate: 0.9},
			func(_, _, l2 uint64) bool { return l2 != cl }},
		{"stall", FaultConfig{Seed: 5, StallRate: 0.5, StallCycles: 5000},
			func(cy, _, _ uint64) bool { return cy > cc }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Faults = tc.faults
			got, err := SimulateAllParallel(cfg, tr, 2, nil)
			if err != nil {
				t.Fatal(err)
			}
			cy, ta, l2 := sum(got)
			if !tc.moved(cy, ta, l2) {
				t.Errorf("fault left metrics unmoved: clean (cy=%d ta=%d l2=%d) faulted (cy=%d ta=%d l2=%d)",
					cc, ct, cl, cy, ta, l2)
			}
		})
	}
}

// TestFaultsPreserveFrameIsolation: faults key off the frame index, so
// a frame simulated standalone still matches the same frame inside the
// faulted full run — the oracle's sampled pass depends on this.
func TestFaultsPreserveFrameIsolation(t *testing.T) {
	tr := faultTestTrace(t)
	cfg := DefaultConfig()
	cfg.Faults = FaultConfig{Seed: 9, DropTileRate: 0.3, StallRate: 0.3, StallCycles: 300}
	full, err := SimulateAllParallel(cfg, tr, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	pick := []int{1, tr.NumFrames() - 1}
	solo, err := SimulateFramesParallel(cfg, tr, pick, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range pick {
		if solo[i] != full[f] {
			t.Errorf("frame %d standalone differs from the faulted full run", f)
		}
	}
}
