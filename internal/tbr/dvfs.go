package tbr

import (
	"math"

	"repro/internal/tbr/mem"
)

// referenceFrequencyMHz is the GPU clock at which Table I's DRAM timing
// values (50-100 cycles, 4 B/cycle) are specified. At other GPU clocks
// the main memory's absolute (wall-clock) timing is unchanged, so its
// latency and inverse bandwidth expressed in GPU cycles scale with the
// GPU frequency — the classic DVFS effect where raising the core clock
// makes the workload more memory-bound.
const referenceFrequencyMHz = 600

// scaleDRAMToGPUClock converts the DRAM configuration (specified in GPU
// cycles at the reference frequency) to the simulator's clock domain at
// the configured frequency. At the reference frequency the configuration
// is returned unchanged, keeping default results bit-identical.
func scaleDRAMToGPUClock(d mem.DRAMConfig, freqMHz int) mem.DRAMConfig {
	if freqMHz <= 0 || freqMHz == referenceFrequencyMHz {
		return d
	}
	scale := float64(freqMHz) / referenceFrequencyMHz
	out := d
	out.RowHitLatency = scaleCycles(d.RowHitLatency, scale)
	out.RowMissLatency = scaleCycles(d.RowMissLatency, scale)
	// Bandwidth: bytes per GPU cycle shrinks as the core clock rises.
	bpc := float64(d.BytesPerCycle) / scale
	if bpc < 1 {
		// Finer than 1 B/cycle: express as a longer per-line transfer
		// by clamping BytesPerCycle to 1 and folding the residual
		// transfer time into the access latency (an approximation: the
		// residual is charged as latency rather than bus occupancy).
		residual := uint64(math.Round(float64(d.LineBytes) * (1/bpc - 1)))
		out.BytesPerCycle = 1
		out.RowHitLatency += residual
		out.RowMissLatency += residual
		return out
	}
	out.BytesPerCycle = int(math.Round(bpc))
	if out.BytesPerCycle < 1 {
		out.BytesPerCycle = 1
	}
	return out
}

func scaleCycles(c uint64, scale float64) uint64 {
	v := uint64(math.Round(float64(c) * scale))
	if v < 1 {
		v = 1
	}
	return v
}

// FrameSeconds converts a frame's cycle count to wall-clock seconds at
// the configured GPU frequency.
func (c Config) FrameSeconds(cycles uint64) float64 {
	if c.FrequencyMHz <= 0 {
		return 0
	}
	return float64(cycles) / (float64(c.FrequencyMHz) * 1e6)
}

// EstimatePipelinedCycles models cross-frame pipelining: real TBR GPUs
// overlap the geometry+binning pass of frame N+1 with the raster pass
// of frame N (they touch disjoint hardware). Given per-frame stats from
// the sequential model (geometry and raster strictly serialized), it
// returns the total cycle count with perfect double-buffered overlap:
//
//	total = geom_0 + sum_i max(raster_i, geom_{i+1}) + raster_last's tail
//
// This is an analytic bound, not a simulation — useful to estimate how
// much the two-pass serialization in the frame model overstates time.
func EstimatePipelinedCycles(frames []FrameStats) uint64 {
	if len(frames) == 0 {
		return 0
	}
	total := frames[0].GeometryCycles
	for i := 0; i < len(frames)-1; i++ {
		total += maxU(frames[i].RasterCycles, frames[i+1].GeometryCycles)
	}
	total += frames[len(frames)-1].RasterCycles
	return total
}
