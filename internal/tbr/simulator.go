package tbr

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/geom"
	"repro/internal/gltrace"
	"repro/internal/obs"
	"repro/internal/raster"
	"repro/internal/shader"
	"repro/internal/tbr/mem"
	"repro/internal/tbr/queue"
)

// Memory map: disjoint regions keep the access streams of the different
// producers from aliasing.
const (
	vertexRegion  uint64 = 0x0000_0000
	textureRegion uint64 = 0x1000_0000
	plbRegion     uint64 = 0x4000_0000
	fbRegion      uint64 = 0x8000_0000

	// plbRecordBytes is the size of one primitive record in a tile's
	// polygon list (vertex positions + attribute pointers).
	plbRecordBytes = 32
)

// Simulator runs the timing model over one trace. It is not safe for
// concurrent use; create one simulator per goroutine.
type Simulator struct {
	cfg   Config
	trace *gltrace.Trace

	dram      *mem.DRAM
	l2        *mem.Cache
	vcache    *mem.Cache
	tilecache *mem.Cache
	tcaches   []*mem.Cache

	vertexQ   *queue.Queue
	triangleQ *queue.Queue
	fragmentQ *queue.Queue
	colorQ    *queue.Queue

	// Precomputed shader cost tables: per-program instruction counts and
	// texture instruction lists with all per-fetch constants resolved at
	// construction (see fsTable), so the fragment loop does no repeated
	// conversion, modulo or coordinate-offset work.
	vsCost []shader.Cost
	fsTab  []fsTable

	// texLineShift is log2 of the texture-cache line size (validated a
	// power of two), so the texture chain's line dedup uses shifts.
	texLineShift uint

	// Resource base addresses.
	meshBase []uint64
	texBase  []uint64

	// Tiling.
	tilesX, tilesY int

	// Reused per-frame buffers.
	depth       *raster.DepthBuffer
	tris        []boundTri
	bins        [][]int32 // per tile: indices into tris
	binRec      [][]uint64
	vpFree      []uint64
	triBuf      []raster.ScreenTriangle
	drawScratch raster.DrawScratch

	// serial is the raster execution context of the classic
	// one-tile-at-a-time mode (TileWorkers == 0), wired to the
	// simulator's own caches and queues.
	serial rasterCtx

	// Tile-parallel raster stage (TileWorkers >= 1): per-worker shard
	// contexts plus the per-tile result slices the deterministic
	// frame-end fold consumes (see tiled.go).
	tileWorkers []*tileWorker
	tileDurs    []uint64
	tileFPEnds  []uint64

	// Observability (package obs). The registry and counter handles are
	// nil when disabled. The simulation hot paths stay uninstrumented:
	// additive metrics (cache hits, DRAM traffic, queue stalls) are
	// exported once per frame from the per-frame stat deltas the
	// simulator computes anyway, the stage-end markers are folded in at
	// tile/pass granularity, and the only per-event cost left is the
	// queues' occupancy nil check.
	obs            *obs.Registry
	cFrames        *obs.Counter
	cGeomCycles    *obs.Counter
	cTilingCycles  *obs.Counter
	cRasterCycles  *obs.Counter
	cFragBusy      *obs.Counter
	hFrameCycles   *obs.Histogram
	obsVCache      cacheObs
	obsTexCache    cacheObs
	obsTileCache   cacheObs
	obsL2          cacheObs
	cDRAMReads     *obs.Counter
	cDRAMWrites    *obs.Counter
	cDRAMRowHits   *obs.Counter
	cDRAMRowMisses *obs.Counter
	obsQueues      []*queueObs
	frameTilingEnd uint64 // completion cycle of the frame's last PLB write
	frameFPEnd     uint64 // completion cycle of the frame's last shaded quad
}

// cacheObs exports one cache's per-frame stat deltas as counters.
type cacheObs struct {
	hits, misses, writebacks *obs.Counter
}

func newCacheObs(r *obs.Registry, name string) cacheObs {
	return cacheObs{
		hits:       r.Counter("mem." + name + ".hits"),
		misses:     r.Counter("mem." + name + ".misses"),
		writebacks: r.Counter("mem." + name + ".writebacks"),
	}
}

func (c *cacheObs) record(st mem.CacheStats) {
	c.hits.Add(st.Hits)
	c.misses.Add(st.Misses)
	c.writebacks.Add(st.Writebacks)
}

// queueObs exports one queue's per-frame stat deltas as counters; start
// snapshots the cumulative Stats at frame begin.
type queueObs struct {
	q                             *queue.Queue
	start                         queue.Stats
	admitted, stalls, stallCycles *obs.Counter
}

func newQueueObs(r *obs.Registry, q *queue.Queue) *queueObs {
	q.Instrument(r) // occupancy histogram, sampled at each admit
	return &queueObs{
		q:           q,
		admitted:    r.Counter("queue." + q.Name() + ".admitted"),
		stalls:      r.Counter("queue." + q.Name() + ".stalls"),
		stallCycles: r.Counter("queue." + q.Name() + ".stall_cycles"),
	}
}

func (qo *queueObs) record() {
	d := qo.q.Stats
	qo.admitted.Add(d.Admitted - qo.start.Admitted)
	qo.stalls.Add(d.Stalls - qo.start.Stalls)
	qo.stallCycles.Add(d.StallCycles - qo.start.StallCycles)
}

// quadSoA is a struct-of-arrays list of quads awaiting a later shade
// pass (the TBDR deferred and transparency queues). Quad i occupies
// x[i], y[i], mask[i], u[i], v[i], tri[i] and depth[4i:4i+4]; the
// backing arrays are reused across tiles.
type quadSoA struct {
	x, y  []int32
	mask  []uint8
	depth []float64
	u, v  []float64
	tri   []int32
}

func (l *quadSoA) reset() {
	l.x = l.x[:0]
	l.y = l.y[:0]
	l.mask = l.mask[:0]
	l.depth = l.depth[:0]
	l.u = l.u[:0]
	l.v = l.v[:0]
	l.tri = l.tri[:0]
}

func (l *quadSoA) len() int { return len(l.mask) }

// appendFrom copies quad i of b, tagged with its triangle index.
func (l *quadSoA) appendFrom(b *raster.QuadBatch, i int, tri int32) {
	l.x = append(l.x, b.X[i])
	l.y = append(l.y, b.Y[i])
	l.mask = append(l.mask, b.Mask[i])
	l.depth = append(l.depth, b.Depth[i*4:i*4+4]...)
	l.u = append(l.u, b.U[i])
	l.v = append(l.v, b.V[i])
	l.tri = append(l.tri, tri)
}

// rasterCtx is the execution context of the Raster Pipeline: the units
// and buffers one raster-stage executor owns exclusively. The serial
// mode builds a single context over the simulator's own caches and
// queues; the tile-parallel mode builds one per worker over a private
// mem.Shard, so concurrent tiles never share mutable timing state. The
// frame state read through sim (bins, tris, shader costs, trace) is
// written only by the geometry pass, which completes before any tile
// runs; the depth buffer is shared but tiles write disjoint pixels
// (quads are 2x2-aligned, TileSize is validated even, and samples are
// clipped to the tile AABB).
type rasterCtx struct {
	sim       *Simulator
	tilecache *mem.Cache
	tcaches   []*mem.Cache
	fbmem     *mem.Cache // level the framebuffer writeback streams through (an L2)
	fragmentQ *queue.Queue
	colorQ    *queue.Queue
	fpFree    []uint64

	// batch is the per-triangle rasterization scratch: AppendQuads fills
	// it, the fragment loop iterates its flat slices, and the backing
	// arrays are reused for every triangle of every tile.
	batch raster.QuadBatch

	// Deferred-shading (TBDR) buffers, reused per tile.
	deferred    quadSoA
	transparent quadSoA
	shadedPix   []bool

	// fpEnd is the completion cycle of the latest shaded quad seen on
	// this context since it was last rewound.
	fpEnd uint64

	// texMemo caches the per-texture constants textureChain derives
	// from the bound texture. A draw binds one texture, so consecutive
	// quads nearly always hit; the values are pure functions of the
	// immutable trace, so the memo survives tile and frame boundaries.
	texMemo struct {
		ok     bool
		tex    int32
		base   uint64
		mip    uint64 // second mip level base (past the base image)
		w, h   int
		fw, fh float64
		bpt    int
	}
}

// boundTri is a visible screen triangle with the state it was drawn
// under.
type boundTri struct {
	tri   raster.ScreenTriangle
	fs    int32
	tex   int32 // texture bound at unit 0 (materials bind one texture)
	blend bool  // alpha-blended draw: depth-test only, no depth write
}

// texFetch is one texture instruction of a fragment shader, with every
// per-fetch constant the texture chain needs resolved at construction:
// the texture-cache unit (sampler modulo unit count), the filter's
// logical tap count, and the sampler's UV perturbation offsets.
type texFetch struct {
	sampler int
	filter  shader.FilterMode
	taps    uint64
	unit    int     // sampler % NumTextureCaches
	du, dv  float64 // float64(sampler)*0.37, float64(sampler)*0.19
}

// fsTable is the precomputed cost table of one fragment shader: the
// per-quad instruction charge and the resolved texture fetch list.
type fsTable struct {
	instrs uint64
	tex    []texFetch
}

// New builds a simulator for the trace. The trace must validate.
func New(cfg Config, trace *gltrace.Trace) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg, trace: trace}

	s.dram = mem.NewDRAM(cfg.Faults.perturbDRAM(scaleDRAMToGPUClock(cfg.DRAM, cfg.FrequencyMHz)))
	s.l2 = mem.NewCache(cfg.L2, s.dram)
	s.vcache = mem.NewCache(cfg.VertexCache, s.l2)
	s.tilecache = mem.NewCache(cfg.TileCache, s.l2)
	for i := 0; i < cfg.NumTextureCaches; i++ {
		tc := cfg.TextureCache
		tc.Name = fmt.Sprintf("texture%d", i)
		s.tcaches = append(s.tcaches, mem.NewCache(tc, s.l2))
	}

	s.vertexQ = queue.New("vertex", cfg.VertexQueueEntries)
	s.triangleQ = queue.New("triangle", cfg.TriangleQueueEntries)
	s.fragmentQ = queue.New("fragment", cfg.FragmentQueueEntries)
	s.colorQ = queue.New("color", cfg.ColorQueueEntries)
	if cfg.Check != nil {
		for _, q := range []*queue.Queue{s.vertexQ, s.triangleQ, s.fragmentQ, s.colorQ} {
			q.EnableInvariantCheck()
		}
	}

	for _, p := range trace.VertexShaders {
		s.vsCost = append(s.vsCost, p.DynamicCost())
	}
	for _, p := range trace.FragmentShaders {
		cost := p.DynamicCost()
		s.fsTab = append(s.fsTab, fsTable{
			instrs: uint64(cost.Instructions),
			tex:    texFetches(p, cfg.NumTextureCaches),
		})
	}
	// TextureCache.LineBytes is validated a power of two by NewCache.
	for 1<<s.texLineShift < cfg.TextureCache.LineBytes {
		s.texLineShift++
	}

	// Lay out resources.
	addr := vertexRegion
	for i := range trace.Meshes {
		s.meshBase = append(s.meshBase, addr)
		addr += uint64(len(trace.Meshes[i].Vertices) * gltrace.BytesPerVertex)
		addr = align(addr, 64)
	}
	addr = textureRegion
	for i := range trace.Textures {
		s.texBase = append(s.texBase, addr)
		// Reserve space for the base level plus a mip chain.
		addr += uint64(trace.Textures[i].SizeBytes() * 2)
		addr = align(addr, 64)
	}

	vp := trace.Viewport
	s.tilesX = (vp.Width + cfg.TileSize - 1) / cfg.TileSize
	s.tilesY = (vp.Height + cfg.TileSize - 1) / cfg.TileSize
	s.depth = raster.NewDepthBuffer(vp.Width, vp.Height)
	s.bins = make([][]int32, s.tilesX*s.tilesY)
	s.binRec = make([][]uint64, s.tilesX*s.tilesY)
	s.vpFree = make([]uint64, cfg.NumVertexProcessors)
	s.serial = rasterCtx{
		sim:       s,
		tilecache: s.tilecache,
		tcaches:   s.tcaches,
		fbmem:     s.l2,
		fragmentQ: s.fragmentQ,
		colorQ:    s.colorQ,
		fpFree:    make([]uint64, cfg.NumFragmentProcessors),
	}
	if cfg.TileWorkers > 0 {
		s.initTileWorkers()
	}

	if cfg.Obs.Enabled() {
		s.obs = cfg.Obs
		s.cFrames = cfg.Obs.Counter("tbr.frames")
		s.cGeomCycles = cfg.Obs.Counter("tbr.geometry.cycles")
		s.cTilingCycles = cfg.Obs.Counter("tbr.tiling.cycles")
		s.cRasterCycles = cfg.Obs.Counter("tbr.raster.cycles")
		s.cFragBusy = cfg.Obs.Counter("tbr.fragment.busy_cycles")
		s.hFrameCycles = cfg.Obs.Histogram("tbr.frame_cycles")
		s.obsVCache = newCacheObs(cfg.Obs, "vertex")
		s.obsTexCache = newCacheObs(cfg.Obs, "texture")
		s.obsTileCache = newCacheObs(cfg.Obs, "tile")
		s.obsL2 = newCacheObs(cfg.Obs, "l2")
		s.cDRAMReads = cfg.Obs.Counter("mem.dram.reads")
		s.cDRAMWrites = cfg.Obs.Counter("mem.dram.writes")
		s.cDRAMRowHits = cfg.Obs.Counter("mem.dram.row_hits")
		s.cDRAMRowMisses = cfg.Obs.Counter("mem.dram.row_misses")
		for _, q := range []*queue.Queue{s.vertexQ, s.triangleQ, s.fragmentQ, s.colorQ} {
			s.obsQueues = append(s.obsQueues, newQueueObs(cfg.Obs, q))
		}
	}
	return s, nil
}

// Config returns the simulator's configuration.
func (s *Simulator) Config() Config { return s.cfg }

func align(a uint64, to uint64) uint64 {
	return (a + to - 1) &^ (to - 1)
}

func texFetches(p *shader.Program, numTextureCaches int) []texFetch {
	var out []texFetch
	var walk func(code []shader.Instr, mult int)
	walk = func(code []shader.Instr, mult int) {
		for i := range code {
			in := &code[i]
			switch in.Op {
			case shader.OpTex:
				for m := 0; m < mult; m++ {
					out = append(out, texFetch{
						sampler: in.Sampler,
						filter:  in.Filter,
						taps:    uint64(in.Filter.MemAccesses()),
						unit:    in.Sampler % numTextureCaches,
						du:      float64(in.Sampler) * 0.37,
						dv:      float64(in.Sampler) * 0.19,
					})
				}
			case shader.OpIf:
				walk(in.Body, mult)
				walk(in.Else, mult)
			case shader.OpLoop:
				walk(in.Body, mult*in.Count)
			}
		}
	}
	walk(p.Code, 1)
	return out
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// SimulateFrame runs the timing model for frame f (0-based) and returns
// its statistics. With FlushCachesPerFrame set (the default), the result
// is independent of which frames were simulated before — the property
// MEGsim relies on to simulate only cluster representatives.
func (s *Simulator) SimulateFrame(f int) FrameStats {
	if f < 0 || f >= s.trace.NumFrames() {
		panic(fmt.Sprintf("tbr: frame %d out of range [0,%d)", f, s.trace.NumFrames()))
	}
	st := FrameStats{Frame: f}
	s.frameTilingEnd = 0
	s.frameFPEnd = 0

	// Snapshot memory-system stats to compute per-frame deltas.
	vc0 := s.vcache.Stats
	tc0 := s.tilecache.Stats
	l20 := s.l2.Stats
	dr0 := s.dram.Stats
	var tex0 mem.CacheStats
	for _, c := range s.tcaches {
		addCache(&tex0, c.Stats)
	}
	q0 := s.queueStallCycles()
	for _, qo := range s.obsQueues {
		qo.start = qo.q.Stats
	}

	if s.cfg.FlushCachesPerFrame {
		s.coldStart()
	} else {
		s.dram.ResetTime()
		s.resetQueues()
	}

	geomEnd := s.geometryPass(&st)
	rasterEnd := s.rasterPass(&st, geomEnd)

	// End-of-frame: dirty framebuffer/PLB data drains to memory. In the
	// per-frame cold-start mode the caches are also invalidated (they
	// will be wiped at the next frame's start anyway); in warm mode the
	// contents stay resident so the next frame can hit on them.
	flushEnd := rasterEnd
	if s.cfg.FlushCachesPerFrame {
		flushEnd = maxU(flushEnd, s.tilecache.Flush(rasterEnd))
		flushEnd = maxU(flushEnd, s.vcache.Flush(rasterEnd))
		for _, c := range s.tcaches {
			flushEnd = maxU(flushEnd, c.Flush(rasterEnd))
		}
		flushEnd = maxU(flushEnd, s.l2.Flush(flushEnd))
	} else {
		flushEnd = maxU(flushEnd, s.tilecache.WritebackAll(rasterEnd))
		flushEnd = maxU(flushEnd, s.vcache.WritebackAll(rasterEnd))
		for _, c := range s.tcaches {
			flushEnd = maxU(flushEnd, c.WritebackAll(rasterEnd))
		}
		flushEnd = maxU(flushEnd, s.l2.WritebackAll(flushEnd))
	}

	st.GeometryCycles = geomEnd
	st.RasterCycles = flushEnd - geomEnd
	st.Cycles = flushEnd

	st.VertexCache = subCache(s.vcache.Stats, vc0)
	st.TileCache = subCache(s.tilecache.Stats, tc0)
	st.L2 = subCache(s.l2.Stats, l20)
	st.DRAM = subDRAM(s.dram.Stats, dr0)
	var tex1 mem.CacheStats
	for _, c := range s.tcaches {
		addCache(&tex1, c.Stats)
	}
	st.TextureCache = subCache(tex1, tex0)
	st.QueueStallCycles = s.queueStallCycles() - q0

	if s.obs.Enabled() {
		s.recordFrameObs(&st, geomEnd, flushEnd)
	}
	if s.cfg.Faults.CorruptStats {
		s.cfg.Faults.corruptFrameStats(&st)
	}
	if s.cfg.Check != nil {
		if err := s.cfg.Check.CheckFrame(&st); err != nil {
			panic(fmt.Sprintf("tbr: frame %d: %v", f, err))
		}
	}
	return st
}

// recordFrameObs emits the frame's per-stage timeline spans and metric
// updates. Timestamps are simulated cycles; each frame gets its own
// timeline track (tid), so a Chrome trace shows the four pipeline
// stages of every frame side by side.
func (s *Simulator) recordFrameObs(st *FrameStats, geomEnd, flushEnd uint64) {
	tid := uint64(st.Frame)
	s.cFrames.Inc()
	s.cGeomCycles.Add(geomEnd)
	s.cTilingCycles.Add(s.frameTilingEnd)
	s.cRasterCycles.Add(st.RasterCycles)
	s.cFragBusy.Add(st.FPBusyCycles)
	s.hFrameCycles.Observe(st.Cycles)
	s.obsVCache.record(st.VertexCache)
	s.obsTexCache.record(st.TextureCache)
	s.obsTileCache.record(st.TileCache)
	s.obsL2.record(st.L2)
	s.cDRAMReads.Add(st.DRAM.Reads)
	s.cDRAMWrites.Add(st.DRAM.Writes)
	s.cDRAMRowHits.Add(st.DRAM.RowHits)
	s.cDRAMRowMisses.Add(st.DRAM.RowMisses)
	for _, qo := range s.obsQueues {
		qo.record()
	}

	s.obs.Span("frame", tid, 0, st.Cycles, map[string]uint64{
		"frame":            uint64(st.Frame),
		"vertices_shaded":  st.VerticesShaded,
		"fragments_shaded": st.FragmentsShaded,
		"dram_accesses":    st.DRAM.Accesses,
	})
	s.obs.Span("geometry", tid, 0, geomEnd, nil)
	if s.frameTilingEnd > 0 {
		s.obs.Span("tiling", tid, 0, s.frameTilingEnd, nil)
	}
	s.obs.Span("raster", tid, geomEnd, flushEnd-geomEnd, nil)
	if s.frameFPEnd > geomEnd {
		s.obs.Span("fragment", tid, geomEnd, s.frameFPEnd-geomEnd, nil)
	}
}

// SimulateAll simulates every frame in order, returning per-frame stats.
// progress, if non-nil, is called after each frame.
func (s *Simulator) SimulateAll(progress func(frame int)) []FrameStats {
	out := make([]FrameStats, s.trace.NumFrames())
	for f := 0; f < s.trace.NumFrames(); f++ {
		out[f] = s.SimulateFrame(f)
		if progress != nil {
			progress(f)
		}
	}
	return out
}

func (s *Simulator) queueStallCycles() uint64 {
	return s.vertexQ.Stats.StallCycles + s.triangleQ.Stats.StallCycles +
		s.fragmentQ.Stats.StallCycles + s.colorQ.Stats.StallCycles
}

// coldStart drops all cached state without writebacks (the previous
// frame already flushed) and rewinds all unit clocks to zero.
func (s *Simulator) coldStart() {
	s.vcache.ColdStart()
	s.tilecache.ColdStart()
	s.l2.ColdStart()
	for _, c := range s.tcaches {
		c.ColdStart()
	}
	dst := s.dram.Stats
	s.dram.Reset()
	s.dram.Stats = dst
	s.resetQueues()
}

func (s *Simulator) resetQueues() {
	s.vertexQ.ResetTime()
	s.triangleQ.ResetTime()
	s.fragmentQ.ResetTime()
	s.colorQ.ResetTime()
}

// geometryPass simulates the Geometry Pipeline and Tiling Engine for the
// frame, filling the per-tile bins, and returns the cycle at which the
// pass (including the last polygon-list write) completes.
func (s *Simulator) geometryPass(st *FrameStats) uint64 {
	frame := &s.trace.Frames[st.Frame]
	vp := s.trace.Viewport

	s.tris = s.tris[:0]
	for i := range s.bins {
		s.bins[i] = s.bins[i][:0]
		s.binRec[i] = s.binRec[i][:0]
	}
	for i := range s.vpFree {
		s.vpFree[i] = 0
	}

	var (
		fetchClock uint64 // vertex fetcher issue clock, 1 vertex/cycle
		paClock    uint64 // primitive assembly, 1 vertex/cycle
		clipClock  uint64 // clip & cull, 1 prim/cycle
		plbClock   uint64 // polygon list builder, 1 entry/cycle
		plbAddr    = plbRegion
		lastDone   uint64
		tilingEnd  uint64 // completion of the last PLB write
		curVS      = -1
		curFS      = -1
		curTex     int32
	)

	for ci := range frame.Commands {
		cmd := &frame.Commands[ci]
		switch cmd.Op {
		case gltrace.CmdBindProgram:
			curVS, curFS = cmd.VS, cmd.FS
		case gltrace.CmdBindTexture:
			if cmd.Unit == 0 {
				curTex = int32(cmd.Texture)
			}
		case gltrace.CmdClear:
			// On-chip tile buffers clear at tile start; no memory
			// traffic and negligible time.
		case gltrace.CmdDraw:
			mesh := &s.trace.Meshes[cmd.Mesh]
			vsCost := s.vsCost[curVS]

			// Vertex fetch + vertex shading. Each indexed vertex is
			// fetched and shaded once per draw.
			nv := len(mesh.Vertices)
			st.VerticesShaded += uint64(nv)
			st.VSInstrs += uint64(nv) * uint64(vsCost.Instructions)
			base := s.meshBase[cmd.Mesh]
			var drawShaded uint64
			for v := 0; v < nv; v++ {
				fetchClock++
				addr := base + uint64(v*gltrace.BytesPerVertex)
				fetchDone := s.vcache.Access(fetchClock, addr, false)
				enter := s.vertexQ.Admit(fetchDone)
				// Dispatch to the first free vertex processor.
				vpi := 0
				for i := 1; i < len(s.vpFree); i++ {
					if s.vpFree[i] < s.vpFree[vpi] {
						vpi = i
					}
				}
				start := maxU(enter, s.vpFree[vpi])
				done := start + uint64(vsCost.Instructions)
				st.VPBusyCycles += uint64(vsCost.Instructions)
				s.vpFree[vpi] = done
				s.vertexQ.Commit(done)
				if done > drawShaded {
					drawShaded = done
				}
			}
			if drawShaded > lastDone {
				lastDone = drawShaded
			}

			// Geometry processing (visibility) is computed by the
			// shared rasterizer front end; timing is charged below.
			s.triBuf = s.triBuf[:0]
			tris, gstats := raster.ProcessDrawScratch(mesh, cmd.MVP, vp, cmd.DepthBias, s.triBuf, &s.drawScratch)
			s.triBuf = tris[:0]
			st.PrimsIn += uint64(gstats.PrimsIn)
			st.PrimsVisible += uint64(gstats.Visible)

			// Primitive assembly consumes 3 vertices/prim at 1
			// vertex/cycle; clipping 1 prim/cycle.
			visIdx := 0
			for p := 0; p < gstats.PrimsIn; p++ {
				paClock = maxU(paClock+3, drawShaded)
				clipClock = maxU(clipClock+1, paClock)
			}
			if clipClock > lastDone {
				lastDone = clipClock
			}

			// Tiling Engine: bin each visible prim into overlapped
			// tiles, writing one record per (prim, tile) through L2.
			for t := range tris {
				triIdx := int32(len(s.tris))
				s.tris = append(s.tris, boundTri{tri: tris[t], fs: int32(curFS), tex: curTex, blend: cmd.Blend})
				tx0, ty0, tx1, ty1, ok := tris[t].Tri.OverlappedTiles(s.cfg.TileSize, s.tilesX, s.tilesY)
				if !ok {
					continue
				}
				for ty := ty0; ty <= ty1; ty++ {
					for tx := tx0; tx <= tx1; tx++ {
						bin := ty*s.tilesX + tx
						s.bins[bin] = append(s.bins[bin], triIdx)
						s.binRec[bin] = append(s.binRec[bin], plbAddr)
						st.TileEntries++
						enter := s.triangleQ.Admit(maxU(plbClock+1, clipClock))
						plbClock = enter
						done := s.l2.Access(enter, plbAddr, true)
						s.triangleQ.Commit(done)
						plbAddr += plbRecordBytes
						if done > lastDone {
							lastDone = done
						}
						if done > tilingEnd {
							tilingEnd = done
						}
					}
				}
				visIdx++
			}
		}
	}
	s.frameTilingEnd = tilingEnd
	end := maxU(fetchClock, maxU(paClock, maxU(clipClock, plbClock)))
	for _, v := range s.vpFree {
		end = maxU(end, v)
	}
	return maxU(end, lastDone)
}

// rasterPass simulates the Raster Pipeline and returns the completion
// cycle. With TileWorkers == 0 tiles are processed one at a time on the
// simulator's own units; otherwise the sharded tile-parallel driver in
// tiled.go takes over.
func (s *Simulator) rasterPass(st *FrameStats, start uint64) uint64 {
	if s.cfg.TileWorkers > 0 {
		return s.rasterPassTiled(st, start)
	}
	s.depth.Clear()
	c := &s.serial
	c.fpEnd = 0
	clock := start
	for ty := 0; ty < s.tilesY; ty++ {
		for tx := 0; tx < s.tilesX; tx++ {
			clock = c.runTile(st, ty*s.tilesX+tx, tx, ty, clock)
		}
	}
	if c.fpEnd > s.frameFPEnd {
		s.frameFPEnd = c.fpEnd
	}
	return clock
}

// runTile simulates one tile — rasterization, shading, blending and the
// framebuffer writeback — starting at cycle clock, and returns its
// completion cycle. Within the tile the rasterizer, Early-Z, the
// fragment processors and the blender run as a pipeline.
func (c *rasterCtx) runTile(st *FrameStats, bin, tx, ty int, clock uint64) uint64 {
	s := c.sim
	vp := s.trace.Viewport
	clip := geom.AABB2{
		Min: geom.Vec2{X: float64(tx * s.cfg.TileSize), Y: float64(ty * s.cfg.TileSize)},
		Max: geom.Vec2{X: float64(min(tx*s.cfg.TileSize+s.cfg.TileSize, vp.Width)),
			Y: float64(min(ty*s.cfg.TileSize+s.cfg.TileSize, vp.Height))},
	}

	// Fault injection: rolls are keyed by (frame, tile), so a frame's
	// fault pattern is identical across worker counts and whether the
	// frame runs standalone or mid-sequence.
	passes := 1
	if fl := &s.cfg.Faults; fl.Enabled() {
		frame := st.Frame
		if fl.StallRate > 0 && fl.StallCycles > 0 && fl.roll(frame, bin, faultClassStall) < fl.StallRate {
			clock += fl.StallCycles
		}
		if fl.DropTileRate > 0 && fl.roll(frame, bin, faultClassDrop) < fl.DropTileRate {
			passes = 0
		} else if fl.DuplicateTileRate > 0 && fl.roll(frame, bin, faultClassDuplicate) < fl.DuplicateTileRate {
			passes = 2
		}
	}

	tileDone := clock
	for p := 0; p < passes; p++ {
		if s.cfg.DeferredShading {
			tileDone = c.deferredTile(st, bin, clip, tileDone)
		} else {
			tileDone = c.immediateTile(st, bin, clip, tileDone)
		}
	}
	if fl := &s.cfg.Faults; fl.CacheFlushRate > 0 && fl.roll(st.Frame, bin, faultClassFlush) < fl.CacheFlushRate {
		tileDone = maxU(tileDone, c.tilecache.Flush(tileDone))
		for _, tc := range c.tcaches {
			tileDone = maxU(tileDone, tc.Flush(tileDone))
		}
	}

	// Tile writeback: the resolved tile colors stream to the
	// framebuffer through L2 at one line per cycle.
	tileLines := uint64(s.cfg.TileSize*s.cfg.TileSize*4) / uint64(s.cfg.L2.LineBytes)
	if tileLines == 0 {
		tileLines = 1
	}
	fbAddr := fbRegion + uint64(bin)*uint64(s.cfg.TileSize*s.cfg.TileSize*4)
	wClock := tileDone
	for l := uint64(0); l < tileLines; l++ {
		wClock++
		done := c.fbmem.Access(wClock, fbAddr+l*uint64(s.cfg.L2.LineBytes), true)
		st.FramebufferLines++
		if done > tileDone {
			tileDone = done
		}
	}
	return maxU(tileDone, wClock)
}

// immediateTile processes one tile in the classic TBR order: each
// primitive's quads go through Early-Z and, when any sample survives,
// straight to the fragment processors. Returns the tile completion
// cycle.
func (c *rasterCtx) immediateTile(st *FrameStats, bin int, clip geom.AABB2, clock uint64) uint64 {
	s := c.sim
	var (
		listClock  = clock
		rastClock  = clock
		ezClock    = clock
		blendClock = clock
		tileDone   = clock
	)
	shaded0 := st.FragmentsShaded
	for i := range c.fpFree {
		c.fpFree[i] = clock
	}

	b := &c.batch
	for bi, triIdx := range s.bins[bin] {
		bt := &s.tris[triIdx]
		// Read the primitive record through the tile cache.
		listClock++
		listDone := c.tilecache.Access(listClock, s.binRec[bin][bi], false)

		// Rasterize the triangle's quads into the SoA batch (pure
		// arithmetic, no timing state), then run the fragment pipeline
		// over the flat slices.
		b.Reset()
		b.AppendQuads(&bt.tri, clip)
		for qi, n := 0, b.Len(); qi < n; qi++ {
			st.QuadsRasterized++
			rastClock = maxU(rastClock+1, listDone)
			// Early Z at 1 quad/cycle; back-pressure comes from the
			// fragment queue below.
			ezClock = maxU(ezClock+1, rastClock)
			mask := b.Mask[qi]
			covered := bits.OnesCount8(mask)
			depth := b.Depth[qi*4 : qi*4+4]
			var survive uint8
			if bt.blend {
				survive = s.depth.TestMaskReadOnly(int(b.X[qi]), int(b.Y[qi]), depth, mask)
			} else {
				survive = s.depth.TestMask(int(b.X[qi]), int(b.Y[qi]), depth, mask)
			}
			alive := bits.OnesCount8(survive)
			st.FragmentsOccluded += uint64(covered - alive)
			if alive == 0 {
				continue
			}
			fpDone := c.shadeQuad(st, bt, b.U[qi], b.V[qi], ezClock, alive)
			// Blending into the on-chip color buffer.
			cEnter := c.colorQ.Admit(fpDone)
			blendClock = maxU(blendClock+1, cEnter)
			c.colorQ.Commit(blendClock)
			st.BlendOps++
			if blendClock > tileDone {
				tileDone = blendClock
			}
		}
	}

	c.noteFPEnd(st.FragmentsShaded - shaded0)
	for _, v := range c.fpFree {
		tileDone = maxU(tileDone, v)
	}
	return maxU(tileDone, maxU(rastClock, maxU(ezClock, blendClock)))
}

// deferredTile processes one tile TBDR-style: a Hidden Surface Removal
// pass depth-resolves every primitive first, then only the fragments
// that ended up visible are shaded. Returns the tile completion cycle.
func (c *rasterCtx) deferredTile(st *FrameStats, bin int, clip geom.AABB2, clock uint64) uint64 {
	s := c.sim
	var (
		listClock  = clock
		rastClock  = clock
		ezClock    = clock
		blendClock = clock
		tileDone   = clock
	)
	shaded0 := st.FragmentsShaded
	for i := range c.fpFree {
		c.fpFree[i] = clock
	}
	c.deferred.reset()
	c.transparent.reset()

	// Pass 1: HSR — rasterize and depth-test all opaque geometry; no
	// shading. Alpha-blended quads cannot participate in hidden-surface
	// removal (they do not occlude); they are queued for the
	// transparency pass after the opaque depth is resolved.
	var covered uint64
	b := &c.batch
	for bi, triIdx := range s.bins[bin] {
		bt := &s.tris[triIdx]
		listClock++
		listDone := c.tilecache.Access(listClock, s.binRec[bin][bi], false)
		b.Reset()
		b.AppendQuads(&bt.tri, clip)
		for qi, n := 0, b.Len(); qi < n; qi++ {
			st.QuadsRasterized++
			rastClock = maxU(rastClock+1, listDone)
			ezClock = maxU(ezClock+1, rastClock)
			mask := b.Mask[qi]
			covered += uint64(bits.OnesCount8(mask))
			if bt.blend {
				c.transparent.appendFrom(b, qi, triIdx)
				continue
			}
			depth := b.Depth[qi*4 : qi*4+4]
			if s.depth.TestMask(int(b.X[qi]), int(b.Y[qi]), depth, mask) == 0 {
				continue // already behind a resolved surface
			}
			// Stored with the full rasterized mask: pass 2 re-derives
			// visibility from the resolved depth, as before.
			c.deferred.appendFrom(b, qi, triIdx)
		}
	}
	hsrDone := maxU(rastClock, ezClock)

	// Pass 2: shade only quads whose samples own the final depth value.
	// shadedPix guards against double-shading when two fragments tie.
	if cap(c.shadedPix) < s.cfg.TileSize*s.cfg.TileSize {
		c.shadedPix = make([]bool, s.cfg.TileSize*s.cfg.TileSize)
	}
	shaded := c.shadedPix[:s.cfg.TileSize*s.cfg.TileSize]
	for i := range shaded {
		shaded[i] = false
	}
	tx0 := int(clip.Min.X)
	ty0 := int(clip.Min.Y)

	issue := hsrDone
	var shadedFrags uint64
	for di, n := 0, c.deferred.len(); di < n; di++ {
		bt := &s.tris[c.deferred.tri[di]]
		qx := int(c.deferred.x[di])
		qy := int(c.deferred.y[di])
		mask := c.deferred.mask[di]
		depth := c.deferred.depth[di*4 : di*4+4]
		var visible uint8
		for smp := 0; smp < 4; smp++ {
			if mask&(1<<smp) == 0 {
				continue
			}
			x := qx + (smp & 1)
			y := qy + (smp >> 1)
			// The buffer stores float32; compare at that precision.
			if float32(s.depth.At(x, y)) != float32(depth[smp]) {
				continue
			}
			pi := (y-ty0)*s.cfg.TileSize + (x - tx0)
			if pi < 0 || pi >= len(shaded) || shaded[pi] {
				continue
			}
			shaded[pi] = true
			visible |= 1 << smp
		}
		if visible == 0 {
			continue
		}
		alive := bits.OnesCount8(visible)
		shadedFrags += uint64(alive)
		issue++
		fpDone := c.shadeQuad(st, bt, c.deferred.u[di], c.deferred.v[di], issue, alive)
		cEnter := c.colorQ.Admit(fpDone)
		blendClock = maxU(blendClock+1, cEnter)
		c.colorQ.Commit(blendClock)
		st.BlendOps++
		if blendClock > tileDone {
			tileDone = blendClock
		}
	}
	// Pass 3: transparency — blended quads test against the final
	// opaque depth (read-only) and shade in submission order; multiple
	// transparent layers over a pixel all shade (they stack).
	for di, n := 0, c.transparent.len(); di < n; di++ {
		bt := &s.tris[c.transparent.tri[di]]
		depth := c.transparent.depth[di*4 : di*4+4]
		visible := s.depth.TestMaskReadOnly(int(c.transparent.x[di]), int(c.transparent.y[di]), depth, c.transparent.mask[di])
		if visible == 0 {
			continue
		}
		alive := bits.OnesCount8(visible)
		shadedFrags += uint64(alive)
		issue++
		fpDone := c.shadeQuad(st, bt, c.transparent.u[di], c.transparent.v[di], issue, alive)
		cEnter := c.colorQ.Admit(fpDone)
		blendClock = maxU(blendClock+1, cEnter)
		c.colorQ.Commit(blendClock)
		st.BlendOps++
		if blendClock > tileDone {
			tileDone = blendClock
		}
	}
	st.FragmentsOccluded += covered - shadedFrags

	c.noteFPEnd(st.FragmentsShaded - shaded0)
	for _, v := range c.fpFree {
		tileDone = maxU(tileDone, v)
	}
	return maxU(tileDone, maxU(hsrDone, blendClock))
}

// shadeQuad dispatches one surviving quad to the least-loaded fragment
// processor, charging ALU time and the texture-fetch chain, and returns
// the completion cycle. u, v are the quad-center texture coordinates;
// alive is the quad's covered-fragment count.
func (c *rasterCtx) shadeQuad(st *FrameStats, bt *boundTri, u, v float64, ready uint64, alive int) uint64 {
	s := c.sim
	tab := &s.fsTab[bt.fs]
	st.FragmentsShaded += uint64(alive)
	// Each live fragment executes the program on its own SIMD lane; the
	// quad occupies the processor for Instructions cycles regardless of
	// coverage.
	st.FSInstrs += uint64(alive) * tab.instrs

	enter := c.fragmentQ.Admit(ready)
	// Least-loaded dispatch: argmin with lowest-index tie-break, the
	// min carried in a register so the scan has no serial memory
	// dependence through fpi.
	fp := c.fpFree
	var fpi int
	var minFree uint64
	if len(fp) == 8 {
		// Pairwise tournament for the common 8-FP configuration: four
		// independent leaf compares, then two, then one — dependence
		// depth 3 instead of a 7-deep serial chain. Strict < keeps the
		// left (lower-index) side on ties at every level, so the
		// lowest-index tie-break is preserved exactly.
		_ = fp[7]
		i0, m0 := 0, fp[0]
		if fp[1] < m0 {
			i0, m0 = 1, fp[1]
		}
		i1, m1 := 2, fp[2]
		if fp[3] < m1 {
			i1, m1 = 3, fp[3]
		}
		i2, m2 := 4, fp[4]
		if fp[5] < m2 {
			i2, m2 = 5, fp[5]
		}
		i3, m3 := 6, fp[6]
		if fp[7] < m3 {
			i3, m3 = 7, fp[7]
		}
		if m1 < m0 {
			i0, m0 = i1, m1
		}
		if m3 < m2 {
			i2, m2 = i3, m3
		}
		fpi, minFree = i0, m0
		if m2 < m0 {
			fpi, minFree = i2, m2
		}
	} else {
		minFree = fp[0]
		for i := 1; i < len(fp); i++ {
			if v := fp[i]; v < minFree {
				minFree = v
				fpi = i
			}
		}
	}
	fpStart := maxU(enter, minFree)

	// Texture fetches: taps coalesce to distinct cache lines within the
	// quad's footprint.
	texDone := fpStart
	if len(tab.tex) > 0 {
		texDone = c.textureChain(fpStart, bt.tex, tab.tex, u, v, st)
	}
	aluDone := fpStart + tab.instrs
	fpDone := maxU(aluDone, texDone)
	st.FPBusyCycles += fpDone - fpStart
	fp[fpi] = fpDone
	c.fragmentQ.Commit(fpDone)
	return fpDone
}

// noteFPEnd records the completion of a tile's last shaded quad. Called
// once per tile (shaded counts quads issued there): every fpFree entry
// is either the tile-start clock or some quad's completion, so when the
// tile shaded at least one quad, max(fpFree) is the latest completion.
func (c *rasterCtx) noteFPEnd(shaded uint64) {
	if shaded == 0 {
		return
	}
	end := uint64(0)
	for _, v := range c.fpFree {
		if v > end {
			end = v
		}
	}
	if end > c.fpEnd {
		c.fpEnd = end
	}
}

// texelAddr returns the address of texel (x, y) of a w x h texture at
// base, clamping overshooting coordinates to the edge (UV wrapping
// guarantees they are never negative).
func texelAddr(base uint64, x, y, w, h, bytesPerTexel int) uint64 {
	if x >= w {
		x = w - 1
	}
	if y >= h {
		y = h - 1
	}
	return base + uint64((y*w+x)*bytesPerTexel)
}

// addLine appends line index ln to lines[:n] unless already present,
// returning the new count. The 3-entry set is the per-fetch cache-line
// footprint (at most 3 taps per filter).
func addLine(lines *[3]uint64, n int, ln uint64) int {
	for i := 0; i < n; i++ {
		if lines[i] == ln {
			return n
		}
	}
	if n < len(lines) {
		lines[n] = ln
		n++
	}
	return n
}

// textureChain issues the texture accesses of one shaded quad and
// returns the completion cycle. Filter taps that fall on the same cache
// line coalesce (quad-level texture locality), but the logical
// filter-weighted access count is recorded in the statistics. The quad's
// deduplicated line set is probed in one batched AccessChain call per
// fetch; per-fetch constants (cache unit, UV offsets, tap counts) come
// precomputed from the shader's cost table.
func (c *rasterCtx) textureChain(start uint64, tex int32, fetches []texFetch, qu, qv float64, st *FrameStats) uint64 {
	s := c.sim
	m := &c.texMemo
	if !m.ok || m.tex != tex {
		texture := &s.trace.Textures[tex]
		m.ok = true
		m.tex = tex
		m.base = s.texBase[tex]
		m.mip = m.base + uint64(texture.SizeBytes())
		m.w, m.h = texture.Width, texture.Height
		m.fw, m.fh = float64(m.w), float64(m.h)
		m.bpt = texture.BytesPerTexel
	}
	base := m.base
	w, h := m.w, m.h
	fw, fh := m.fw, m.fh
	bpt := m.bpt
	shift := s.texLineShift
	cur := start
	for fi := range fetches {
		f := &fetches[fi]
		st.TexAccesses += f.taps
		cache := c.tcaches[f.unit]

		// Wrap UVs and locate the base texel. Different samplers
		// perturb coordinates so multi-layer materials touch
		// different texture regions.
		u := qu + f.du
		v := qv + f.dv
		u -= math.Floor(u)
		v -= math.Floor(v)
		tx := int(u * fw)
		tyy := int(v * fh)
		if tx >= w {
			tx = w - 1
		}
		if tyy >= h {
			tyy = h - 1
		}

		var lines [3]uint64
		n := addLine(&lines, 0, texelAddr(base, tx, tyy, w, h, bpt)>>shift)
		switch f.filter {
		case shader.FilterLinear:
			n = addLine(&lines, n, texelAddr(base, tx+1, tyy, w, h, bpt)>>shift)
		case shader.FilterBilinear:
			n = addLine(&lines, n, texelAddr(base, tx+1, tyy, w, h, bpt)>>shift)
			n = addLine(&lines, n, texelAddr(base, tx, tyy+1, w, h, bpt)>>shift)
		case shader.FilterTrilinear:
			n = addLine(&lines, n, texelAddr(base, tx+1, tyy, w, h, bpt)>>shift)
			// Second mip level lives past the base image.
			n = addLine(&lines, n, (m.mip+uint64(((tyy/2)*(w/2)+tx/2)*bpt))>>shift)
		}
		for i := 0; i < n; i++ {
			lines[i] <<= shift
		}
		cur = cache.AccessChain(cur, lines[:n], false)
	}
	return cur
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
