package tbr_test

import (
	"testing"

	"repro/internal/tbr"
	"repro/internal/workload"
)

func simulateAtFrequency(t *testing.T, freqMHz int, frames int) (tbr.FrameStats, tbr.Config) {
	t.Helper()
	tr := workload.MustGenerate(workload.Profiles["bbr1"], workload.TestScale)
	cfg := tbr.DefaultConfig()
	cfg.FrequencyMHz = freqMHz
	sim, err := tbr.New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	var total tbr.FrameStats
	start := tr.NumFrames() / 2
	for f := start; f < start+frames; f++ {
		st := sim.SimulateFrame(f)
		total.Add(&st)
	}
	return total, cfg
}

func TestDVFSReferenceFrequencyUnchanged(t *testing.T) {
	// At the Table I frequency the DVFS scaling must be the identity.
	a, _ := simulateAtFrequency(t, 600, 3)
	tr := workload.MustGenerate(workload.Profiles["bbr1"], workload.TestScale)
	sim, err := tbr.New(tbr.DefaultConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	var b tbr.FrameStats
	start := tr.NumFrames() / 2
	for f := start; f < start+3; f++ {
		st := sim.SimulateFrame(f)
		b.Add(&st)
	}
	if a != b {
		t.Fatal("600 MHz result differs from default")
	}
}

func TestDVFSHigherClockMoreCyclesLessTime(t *testing.T) {
	slow, slowCfg := simulateAtFrequency(t, 300, 4)
	base, baseCfg := simulateAtFrequency(t, 600, 4)
	fast, fastCfg := simulateAtFrequency(t, 1200, 4)

	// More GPU cycles at higher clock (memory latency grows in cycles).
	if !(slow.Cycles < base.Cycles && base.Cycles < fast.Cycles) {
		t.Fatalf("cycles not monotone in frequency: %d / %d / %d",
			slow.Cycles, base.Cycles, fast.Cycles)
	}
	// But less wall-clock time (sublinear speedup: the DVFS story).
	ts := slowCfg.FrameSeconds(slow.Cycles)
	tb := baseCfg.FrameSeconds(base.Cycles)
	tf := fastCfg.FrameSeconds(fast.Cycles)
	if !(ts > tb && tb > tf) {
		t.Fatalf("wall time not monotone: %.4f / %.4f / %.4f s", ts, tb, tf)
	}
	// Speedup must be sublinear: 4x clock (300 -> 1200) buys < 4x time.
	if ts/tf >= 4 {
		t.Fatalf("speedup %.2fx not sublinear over a 4x clock range", ts/tf)
	}
	// The computed work is identical at every frequency.
	if slow.FragmentsShaded != fast.FragmentsShaded || slow.FSInstrs != fast.FSInstrs {
		t.Fatal("frequency changed computed work")
	}
	if slow.DRAM.Accesses != fast.DRAM.Accesses {
		t.Fatal("frequency changed DRAM access counts")
	}
}

func TestFrameSecondsZeroFrequency(t *testing.T) {
	var c tbr.Config
	if c.FrameSeconds(1000) != 0 {
		t.Fatal("zero frequency should give zero seconds")
	}
}

func TestEstimatePipelinedCycles(t *testing.T) {
	frames := []tbr.FrameStats{
		{GeometryCycles: 10, RasterCycles: 100},
		{GeometryCycles: 20, RasterCycles: 100},
		{GeometryCycles: 30, RasterCycles: 100},
	}
	// 10 + max(100,20) + max(100,30) + 100 = 310.
	if got := tbr.EstimatePipelinedCycles(frames); got != 310 {
		t.Fatalf("pipelined = %d, want 310", got)
	}
	// Serialized total is 360; overlap can only help.
	serial := uint64(0)
	for _, f := range frames {
		serial += f.GeometryCycles + f.RasterCycles
	}
	if got := tbr.EstimatePipelinedCycles(frames); got > serial {
		t.Fatalf("pipelined %d > serialized %d", got, serial)
	}
	if tbr.EstimatePipelinedCycles(nil) != 0 {
		t.Fatal("empty input should be 0")
	}
}

func TestPipelinedBoundOnRealWorkload(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"], workload.TestScale)
	sim, err := tbr.New(tbr.DefaultConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	frames := sim.SimulateAll(nil)
	var serial uint64
	for i := range frames {
		serial += frames[i].Cycles
	}
	piped := tbr.EstimatePipelinedCycles(frames)
	if piped > serial {
		t.Fatalf("pipelined estimate %d exceeds serialized %d", piped, serial)
	}
	if piped < serial/2 {
		t.Fatalf("pipelined estimate %d implausibly low vs %d", piped, serial)
	}
}

func TestDVFSExtremeClockStillMonotone(t *testing.T) {
	// 4800 MHz is an 8x clock: bytes/GPU-cycle drops below 1 and the
	// residual-transfer path engages. Cycles must keep growing.
	base, _ := simulateAtFrequency(t, 1200, 2)
	extreme, _ := simulateAtFrequency(t, 4800, 2)
	if extreme.Cycles <= base.Cycles {
		t.Fatalf("8x clock did not increase cycle count: %d vs %d", extreme.Cycles, base.Cycles)
	}
}
