package tbr

import (
	"testing"

	"repro/internal/tbr/mem"
)

func TestScaleDRAMToGPUClock(t *testing.T) {
	base := mem.DefaultDRAMConfig()

	// Reference frequency and non-positive frequency: identity.
	if got := scaleDRAMToGPUClock(base, 600); got != base {
		t.Fatalf("600 MHz changed config: %+v", got)
	}
	if got := scaleDRAMToGPUClock(base, 0); got != base {
		t.Fatalf("0 MHz changed config: %+v", got)
	}

	// Half clock: latencies halve, bandwidth per GPU cycle doubles.
	half := scaleDRAMToGPUClock(base, 300)
	if half.RowHitLatency != 25 || half.RowMissLatency != 50 {
		t.Fatalf("300 MHz latencies = %d/%d", half.RowHitLatency, half.RowMissLatency)
	}
	if half.BytesPerCycle != 8 {
		t.Fatalf("300 MHz bytes/cycle = %d, want 8", half.BytesPerCycle)
	}

	// Double clock: latencies double, bandwidth halves.
	dbl := scaleDRAMToGPUClock(base, 1200)
	if dbl.RowHitLatency != 100 || dbl.RowMissLatency != 200 {
		t.Fatalf("1200 MHz latencies = %d/%d", dbl.RowHitLatency, dbl.RowMissLatency)
	}
	if dbl.BytesPerCycle != 2 {
		t.Fatalf("1200 MHz bytes/cycle = %d, want 2", dbl.BytesPerCycle)
	}

	// 8x clock: bandwidth would be 0.5 B/cycle; the residual transfer
	// folds into latency with BytesPerCycle clamped to 1.
	x8 := scaleDRAMToGPUClock(base, 4800)
	if x8.BytesPerCycle != 1 {
		t.Fatalf("4800 MHz bytes/cycle = %d, want 1", x8.BytesPerCycle)
	}
	if x8.RowHitLatency <= 8*base.RowHitLatency {
		t.Fatalf("4800 MHz hit latency %d missing residual transfer", x8.RowHitLatency)
	}
	// Residual = 64 B * (2 - 1) = 64 cycles over the plain 8x latency.
	if want := 8*base.RowHitLatency + 64; x8.RowHitLatency != want {
		t.Fatalf("4800 MHz hit latency = %d, want %d", x8.RowHitLatency, want)
	}
}

func TestScaleCyclesFloor(t *testing.T) {
	if scaleCycles(1, 0.1) != 1 {
		t.Fatal("latency must not scale below 1 cycle")
	}
}
