package tbr_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/tbr"
	"repro/internal/workload"
)

// updateBatchedGoldens regenerates testdata/golden_batched.json from the
// current simulator. It must only ever be run on a revision whose output
// is known-good: the committed digests are the contract that hot-path
// refactors (SoA fragment state, arena-reused shards, batched probes)
// change *how* the numbers are computed, never the numbers themselves.
var updateBatchedGoldens = flag.Bool("update-batched-goldens", false,
	"regenerate testdata/golden_batched.json from the current simulator output")

const batchedGoldenPath = "testdata/golden_batched.json"

// batchedGoldenRun executes one golden scenario and returns the
// digests of everything downstream consumers observe: the per-frame
// statistics, the obs snapshot (counters, histograms, canonical
// timeline), and the checkpoint bytes a resilient run would persist.
func batchedGoldenRun(t *testing.T, profile string, tileWorkers int, deferred bool) (stats, snap, checkpoint string) {
	t.Helper()
	tr := workload.MustGenerate(workload.Profiles[profile], workload.TestScale)
	cfg := tbr.DefaultConfig()
	cfg.TileWorkers = tileWorkers
	cfg.DeferredShading = deferred
	cfg.Obs = obs.New()
	sim, err := tbr.New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	frames := sim.SimulateAll(nil)
	snapshot := cfg.Obs.Snapshot()

	digest := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(b)
		return hex.EncodeToString(sum[:])
	}

	// Checkpoint bytes: encode the frames exactly as the resilient
	// supervisor would persist them mid-run. The envelope is canonical
	// (frames sorted, checksummed body), so the digest pins the on-disk
	// format as well as the values.
	// The fingerprint deliberately excludes the worker count: checkpoint
	// bytes, like every other output, must not depend on it.
	cp := &resilience.Checkpoint{Fingerprint: fmt.Sprintf("golden-%s-def%v", profile, deferred)}
	for i := range frames {
		cp.Frames = append(cp.Frames, resilience.FrameRecord{Frame: frames[i].Frame, Attempts: 1, Stats: frames[i]})
	}
	cpBytes, err := resilience.EncodeCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	cpSum := sha256.Sum256(cpBytes)

	return digest(frames), digest(snapshot), hex.EncodeToString(cpSum[:])
}

// TestGoldenBatchedPath pins the simulator's observable output — frame
// statistics, obs snapshots and checkpoint bytes — to digests captured
// before the batched/arena hot-path refactor. Any change to what the
// simulator computes (as opposed to how fast it computes it) fails here
// first, across the serial raster stage and tile-workers 1/2/4/64 in
// both shading models.
func TestGoldenBatchedPath(t *testing.T) {
	type entry struct {
		Stats      string `json:"stats"`
		Obs        string `json:"obs"`
		Checkpoint string `json:"checkpoint"`
	}
	got := map[string]entry{}

	for _, profile := range []string{"hcr", "pvz"} {
		for _, deferred := range []bool{false, true} {
			for _, tw := range []int{0, 1, 2, 4, 64} {
				name := fmt.Sprintf("%s/tile-workers=%d/deferred=%v", profile, tw, deferred)
				st, sn, cp := batchedGoldenRun(t, profile, tw, deferred)
				got[name] = entry{Stats: st, Obs: sn, Checkpoint: cp}
			}
		}
	}

	// Every tile-parallel worker count must agree before any comparison
	// with the committed file: the sharded raster stage's contract is
	// that worker count is invisible in the output.
	for _, profile := range []string{"hcr", "pvz"} {
		for _, deferred := range []bool{false, true} {
			ref := got[fmt.Sprintf("%s/tile-workers=1/deferred=%v", profile, deferred)]
			for _, tw := range []int{2, 4, 64} {
				name := fmt.Sprintf("%s/tile-workers=%d/deferred=%v", profile, tw, deferred)
				if got[name] != ref {
					t.Fatalf("%s diverges from tile-workers=1: %+v vs %+v", name, got[name], ref)
				}
			}
		}
	}

	if *updateBatchedGoldens {
		if err := os.MkdirAll(filepath.Dir(batchedGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(batchedGoldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), batchedGoldenPath)
		return
	}

	data, err := os.ReadFile(batchedGoldenPath)
	if err != nil {
		t.Fatalf("read goldens (run with -update-batched-goldens on a known-good revision to create): %v", err)
	}
	want := map[string]entry{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden file has %d entries, test produced %d", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("golden entry %q not produced by test", name)
			continue
		}
		if g != w {
			t.Errorf("%s: output diverged from pre-refactor golden:\n got %+v\nwant %+v", name, g, w)
		}
	}
}
