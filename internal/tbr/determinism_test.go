package tbr_test

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/obs"
	"repro/internal/tbr"
	"repro/internal/workload"
)

// TestGoldenDeterminismSerialVsParallel is the golden determinism test:
// with frame isolation, the same trace must produce byte-identical
// per-frame statistics AND identical observability snapshots from the
// sequential driver and from SimulateAllParallel at every worker count.
// Counters and histograms merge additively and snapshot events sort
// canonically, so even the timeline must match exactly.
func TestGoldenDeterminismSerialVsParallel(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"], workload.TestScale)

	run := func(workers int) ([]tbr.FrameStats, *obs.Snapshot) {
		t.Helper()
		cfg := tbr.DefaultConfig()
		cfg.Obs = obs.New()
		var stats []tbr.FrameStats
		if workers == 0 {
			sim, err := tbr.New(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			stats = sim.SimulateAll(nil)
		} else {
			var err error
			stats, err = tbr.SimulateAllParallel(cfg, tr, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
		}
		return stats, cfg.Obs.Snapshot()
	}

	goldStats, goldSnap := run(0) // plain sequential reference

	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, w := range workerCounts {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			stats, snap := run(w)
			if len(stats) != len(goldStats) {
				t.Fatalf("frame count %d, want %d", len(stats), len(goldStats))
			}
			for i := range goldStats {
				if stats[i] != goldStats[i] {
					t.Fatalf("frame %d stats differ from sequential run:\n%+v\nvs\n%+v",
						i, stats[i], goldStats[i])
				}
			}
			if !reflect.DeepEqual(snap.Counters, goldSnap.Counters) {
				t.Fatalf("counters differ from sequential run:\n%v\nvs\n%v",
					snap.Counters, goldSnap.Counters)
			}
			if !reflect.DeepEqual(snap.Histograms, goldSnap.Histograms) {
				t.Fatalf("histograms differ from sequential run:\n%v\nvs\n%v",
					snap.Histograms, goldSnap.Histograms)
			}
			if snap.DroppedEvents != 0 || goldSnap.DroppedEvents != 0 {
				t.Fatalf("ring overflowed (dropped %d/%d); timeline comparison needs ample capacity",
					snap.DroppedEvents, goldSnap.DroppedEvents)
			}
			if !reflect.DeepEqual(snap.Events, goldSnap.Events) {
				t.Fatalf("timeline differs from sequential run (%d vs %d events)",
					len(snap.Events), len(goldSnap.Events))
			}
		})
	}
}

// TestGoldenDeterminismFrameSubset repeats the golden comparison for
// SimulateFramesParallel over a representative-style frame subset (the
// path harness.simulateReps takes), including a duplicated frame.
func TestGoldenDeterminismFrameSubset(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"], workload.TestScale)
	n := tr.NumFrames()
	frames := []int{0, n / 2, n - 1, n / 2, 1}

	run := func(workers int) ([]tbr.FrameStats, *obs.Snapshot) {
		t.Helper()
		cfg := tbr.DefaultConfig()
		cfg.Obs = obs.New()
		stats, err := tbr.SimulateFramesParallel(cfg, tr, frames, workers)
		if err != nil {
			t.Fatal(err)
		}
		return stats, cfg.Obs.Snapshot()
	}

	goldStats, goldSnap := run(1)
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			stats, snap := run(w)
			if !reflect.DeepEqual(stats, goldStats) {
				t.Fatal("frame stats differ from single-worker run")
			}
			if !reflect.DeepEqual(snap, goldSnap) {
				t.Fatalf("obs snapshot differs from single-worker run:\ncounters %v\nvs\n%v",
					snap.Counters, goldSnap.Counters)
			}
		})
	}
}

// TestGoldenDeterminismTileParallel is the golden determinism test for
// the sharded raster stage: every TileWorkers >= 1 setting must produce
// byte-identical per-frame statistics AND identical obs snapshots —
// each tile is a pure function of its primitive list, and the frame-end
// folds are order-independent sums — and tile-parallelism must compose
// with the frame-parallel driver. Covered for both shading models and
// for a worker count exceeding the tile count.
func TestGoldenDeterminismTileParallel(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"], workload.TestScale)

	for _, deferred := range []bool{false, true} {
		name := "immediate"
		if deferred {
			name = "deferred"
		}
		t.Run(name, func(t *testing.T) {
			run := func(tileWorkers, frameWorkers int) ([]tbr.FrameStats, *obs.Snapshot) {
				t.Helper()
				cfg := tbr.DefaultConfig()
				cfg.DeferredShading = deferred
				cfg.TileWorkers = tileWorkers
				cfg.Obs = obs.New()
				var stats []tbr.FrameStats
				if frameWorkers == 0 {
					sim, err := tbr.New(cfg, tr)
					if err != nil {
						t.Fatal(err)
					}
					stats = sim.SimulateAll(nil)
				} else {
					var err error
					stats, err = tbr.SimulateAllParallel(cfg, tr, frameWorkers, nil)
					if err != nil {
						t.Fatal(err)
					}
				}
				return stats, cfg.Obs.Snapshot()
			}

			goldStats, goldSnap := run(1, 0) // one tile worker, sequential frames

			cases := []struct {
				label  string
				tw, fw int
			}{
				{"tile-workers=2", 2, 0},
				{"tile-workers=4", 4, 0},
				{"tile-workers=64", 64, 0}, // more workers than tiles
				{"tile-workers=2/frame-workers=2", 2, 2},
				{"tile-workers=4/frame-workers=max", 4, runtime.GOMAXPROCS(0)},
			}
			for _, c := range cases {
				t.Run(c.label, func(t *testing.T) {
					stats, snap := run(c.tw, c.fw)
					if !reflect.DeepEqual(stats, goldStats) {
						for i := range goldStats {
							if stats[i] != goldStats[i] {
								t.Fatalf("frame %d stats differ from tile-workers=1 run:\n%+v\nvs\n%+v",
									i, stats[i], goldStats[i])
							}
						}
						t.Fatal("frame stats differ from tile-workers=1 run")
					}
					if snap.DroppedEvents != 0 || goldSnap.DroppedEvents != 0 {
						t.Fatalf("ring overflowed (dropped %d/%d)", snap.DroppedEvents, goldSnap.DroppedEvents)
					}
					if !reflect.DeepEqual(snap, goldSnap) {
						t.Fatalf("obs snapshot differs from tile-workers=1 run:\ncounters %v\nvs\n%v",
							snap.Counters, goldSnap.Counters)
					}
				})
			}
		})
	}
}

// TestObsSpansCoverEveryFrame checks the tracing contract the -trace-out
// flag relies on: one frame/geometry/raster span per simulated frame.
func TestObsSpansCoverEveryFrame(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"], workload.TestScale)
	cfg := tbr.DefaultConfig()
	cfg.Obs = obs.New()
	stats, err := tbr.SimulateAllParallel(cfg, tr, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := cfg.Obs.Snapshot()
	if got := snap.Counters["tbr.frames"]; got != uint64(len(stats)) {
		t.Fatalf("tbr.frames = %d, want %d", got, len(stats))
	}
	perFrame := map[uint64]map[string]bool{}
	for _, e := range snap.Events {
		m := perFrame[e.TID]
		if m == nil {
			m = map[string]bool{}
			perFrame[e.TID] = m
		}
		m[e.Name] = true
	}
	for f := range stats {
		m := perFrame[uint64(f)]
		for _, want := range []string{"frame", "geometry", "raster"} {
			if !m[want] {
				t.Fatalf("frame %d missing %q span (has %v)", f, want, m)
			}
		}
	}
}
