package tbr

import (
	"testing"

	"repro/internal/tbr/mem"
	"repro/internal/workload"
)

// TestTiledPerUnitTextureCacheAttribution is the regression test for
// the tile-parallel fold collapsing every shard's texture-cache
// counters into unit 0: with NumTextureCaches > 1 the per-unit
// counters of a tiled run must equal the serial mode's, unit by unit.
// Frame statistics only expose the sum over units, so this inspects
// the simulator's own units directly.
func TestTiledPerUnitTextureCacheAttribution(t *testing.T) {
	// A 3D profile: its complex fragment shaders address several
	// samplers, so texture traffic spreads across cache units (2D
	// profiles sample unit 0 only and would not catch misattribution).
	tr := workload.MustGenerate(workload.Profiles["asp"], workload.TestScale)
	run := func(tileWorkers int) []mem.CacheStats {
		cfg := DefaultConfig()
		if cfg.NumTextureCaches < 2 {
			t.Fatalf("default config has %d texture caches; test needs > 1", cfg.NumTextureCaches)
		}
		cfg.TileWorkers = tileWorkers
		s, err := New(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		s.SimulateAll(nil)
		out := make([]mem.CacheStats, len(s.tcaches))
		for i, c := range s.tcaches {
			out[i] = c.Stats
		}
		return out
	}

	want := run(0) // serial raster stage
	ref := run(1)  // tile-parallel reference
	for i := range want {
		// Serial and tiled are different timing models (tiled cold-starts
		// each tile's shard, so hit rates differ), but the access *stream*
		// routed to each unit is the same — per-unit access counts must
		// match exactly. The bug folded every unit into unit 0, which
		// fails precisely this comparison.
		if ref[i].Accesses != want[i].Accesses {
			t.Errorf("tile-workers=1: texture cache unit %d got %d accesses, serial %d",
				i, ref[i].Accesses, want[i].Accesses)
		}
	}
	for _, tw := range []int{2, 4} {
		got := run(tw)
		if len(got) != len(ref) {
			t.Fatalf("tile-workers=%d: %d texture cache units vs %d", tw, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("tile-workers=%d: texture cache unit %d diverges from tile-workers=1:\n got %+v\nwant %+v",
					tw, i, got[i], ref[i])
			}
		}
	}

	// The bug this guards against attributed everything to unit 0 and
	// nothing to the rest; make sure the fixture actually exercises
	// more than one unit so the per-unit comparison has teeth.
	active := 0
	for _, st := range want {
		if st.Accesses > 0 {
			active++
		}
	}
	if active < 2 {
		t.Fatalf("fixture exercises only %d texture cache unit(s); need >= 2 for attribution coverage", active)
	}
}
