package tbr_test

import (
	"sync/atomic"
	"testing"

	"repro/internal/tbr"
	"repro/internal/workload"
)

func TestParallelMatchesSequentialExactly(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"], workload.TestScale)
	cfg := tbr.DefaultConfig()

	sim, err := tbr.New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	sequential := sim.SimulateAll(nil)

	parallel, err := tbr.SimulateAllParallel(cfg, tr, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(sequential) {
		t.Fatalf("lengths differ: %d vs %d", len(parallel), len(sequential))
	}
	for i := range sequential {
		if sequential[i] != parallel[i] {
			t.Fatalf("frame %d differs between sequential and parallel runs", i)
		}
	}
}

func TestParallelProgressCalledPerFrame(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["jjo"],
		workload.Scale{Width: 96, Height: 48, FrameDivisor: 100, DetailDivisor: 2})
	var calls atomic.Int64
	out, err := tbr.SimulateAllParallel(tbr.DefaultConfig(), tr, 3, func(int) { calls.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if int(calls.Load()) != len(out) {
		t.Fatalf("progress calls %d, frames %d", calls.Load(), len(out))
	}
}

func TestParallelRejectsWarmCaches(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"], workload.TestScale)
	cfg := tbr.DefaultConfig()
	cfg.FlushCachesPerFrame = false
	if _, err := tbr.SimulateAllParallel(cfg, tr, 4, nil); err == nil {
		t.Fatal("accepted non-isolated configuration")
	}
}

func TestParallelSingleWorkerFallback(t *testing.T) {
	tr := workload.MustGenerate(workload.Profiles["hcr"],
		workload.Scale{Width: 96, Height: 48, FrameDivisor: 100, DetailDivisor: 2})
	out, err := tbr.SimulateAllParallel(tbr.DefaultConfig(), tr, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != tr.NumFrames() {
		t.Fatalf("frames = %d", len(out))
	}
}
