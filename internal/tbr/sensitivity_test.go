package tbr_test

import (
	"testing"

	"repro/internal/tbr"
	"repro/internal/workload"
)

// sumFrames simulates a band of gameplay frames and totals the stats.
func sumFrames(t *testing.T, cfg tbr.Config, alias string, n int) tbr.FrameStats {
	t.Helper()
	tr := workload.MustGenerate(workload.Profiles[alias], workload.TestScale)
	sim, err := tbr.New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	var total tbr.FrameStats
	start := tr.NumFrames() / 2
	for f := start; f < start+n; f++ {
		st := sim.SimulateFrame(f)
		total.Add(&st)
	}
	return total
}

func TestLargerL2ReducesDRAMTraffic(t *testing.T) {
	small := tbr.DefaultConfig()
	small.L2.SizeBytes = 32 << 10
	big := tbr.DefaultConfig()
	big.L2.SizeBytes = 1 << 20

	a := sumFrames(t, small, "asp", 8)
	b := sumFrames(t, big, "asp", 8)
	if b.DRAM.Accesses >= a.DRAM.Accesses {
		t.Fatalf("1MiB L2 (%d DRAM accesses) not better than 32KiB (%d)",
			b.DRAM.Accesses, a.DRAM.Accesses)
	}
	// L2 accesses themselves are demand-driven and should barely move.
	ratio := float64(b.L2.Accesses) / float64(a.L2.Accesses)
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("L2 access count moved unexpectedly: %d vs %d", a.L2.Accesses, b.L2.Accesses)
	}
}

func TestMoreFragmentProcessorsReduceCycles(t *testing.T) {
	one := tbr.DefaultConfig()
	one.NumFragmentProcessors = 1
	four := tbr.DefaultConfig()

	a := sumFrames(t, one, "bbr1", 5)
	b := sumFrames(t, four, "bbr1", 5)
	if b.Cycles >= a.Cycles {
		t.Fatalf("4 FPs (%d cycles) not faster than 1 FP (%d)", b.Cycles, a.Cycles)
	}
	// The work done must be identical — only timing changes.
	if a.FragmentsShaded != b.FragmentsShaded || a.FSInstrs != b.FSInstrs {
		t.Fatal("processor count changed the computed work")
	}
}

func TestMoreVertexProcessorsNeverSlower(t *testing.T) {
	one := tbr.DefaultConfig()
	one.NumVertexProcessors = 1
	four := tbr.DefaultConfig()
	a := sumFrames(t, one, "asp", 5)
	b := sumFrames(t, four, "asp", 5)
	if b.GeometryCycles > a.GeometryCycles {
		t.Fatalf("4 VPs (%d geom cycles) slower than 1 VP (%d)", b.GeometryCycles, a.GeometryCycles)
	}
}

func TestSlowerDRAMIncreasesCycles(t *testing.T) {
	fast := tbr.DefaultConfig()
	slow := tbr.DefaultConfig()
	slow.DRAM.RowHitLatency = 200
	slow.DRAM.RowMissLatency = 400
	slow.DRAM.BytesPerCycle = 1

	a := sumFrames(t, fast, "hcr", 5)
	b := sumFrames(t, slow, "hcr", 5)
	if b.Cycles <= a.Cycles {
		t.Fatalf("slow DRAM (%d cycles) not slower than fast (%d)", b.Cycles, a.Cycles)
	}
	if a.DRAM.Accesses != b.DRAM.Accesses {
		t.Fatal("DRAM timing changed access counts")
	}
}

func TestSmallerTileSizeIncreasesTileEntries(t *testing.T) {
	big := tbr.DefaultConfig()
	big.TileSize = 32
	small := tbr.DefaultConfig()
	small.TileSize = 8

	a := sumFrames(t, big, "bbr1", 5)
	b := sumFrames(t, small, "bbr1", 5)
	// Smaller tiles: each primitive overlaps more tiles.
	if b.TileEntries <= a.TileEntries {
		t.Fatalf("8px tiles (%d entries) not more than 32px tiles (%d)", b.TileEntries, a.TileEntries)
	}
	// Fragment counts must be identical: tiling partitions coverage.
	if a.FragmentsShaded != b.FragmentsShaded {
		t.Fatalf("tile size changed shaded fragments: %d vs %d", a.FragmentsShaded, b.FragmentsShaded)
	}
	if a.QuadsRasterized != b.QuadsRasterized {
		// Quads may differ slightly: a quad straddling a tile boundary
		// is rasterized once per tile. Smaller tiles may only increase
		// the count.
		if b.QuadsRasterized < a.QuadsRasterized {
			t.Fatalf("smaller tiles rasterized fewer quads: %d vs %d", b.QuadsRasterized, a.QuadsRasterized)
		}
	}
}

func TestTinyQueuesStallMore(t *testing.T) {
	wide := tbr.DefaultConfig()
	narrow := tbr.DefaultConfig()
	narrow.VertexQueueEntries = 1
	narrow.FragmentQueueEntries = 1
	narrow.ColorQueueEntries = 1
	narrow.TriangleQueueEntries = 1

	a := sumFrames(t, wide, "bbr1", 5)
	b := sumFrames(t, narrow, "bbr1", 5)
	if b.QueueStallCycles <= a.QueueStallCycles {
		t.Fatalf("1-entry queues (%d stall cycles) not worse than Table I queues (%d)",
			b.QueueStallCycles, a.QueueStallCycles)
	}
	if b.Cycles < a.Cycles {
		t.Fatal("narrow queues made the pipeline faster")
	}
}

func TestBiggerTextureCachesNeverIncreaseMisses(t *testing.T) {
	small := tbr.DefaultConfig()
	small.TextureCache.SizeBytes = 1 << 10
	big := tbr.DefaultConfig()
	big.TextureCache.SizeBytes = 64 << 10

	a := sumFrames(t, small, "asp", 5)
	b := sumFrames(t, big, "asp", 5)
	if b.TextureCache.Misses > a.TextureCache.Misses {
		t.Fatalf("64KiB texture caches missed more (%d) than 1KiB (%d)",
			b.TextureCache.Misses, a.TextureCache.Misses)
	}
}
