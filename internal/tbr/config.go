// Package tbr implements the cycle-level timing simulator of the
// Tile-Based Rendering GPU described in Section II-A and Table I of the
// paper — the role TEAPOT's cycle-accurate simulator plays in the
// original evaluation.
//
// The model is transaction-level cycle accounting: every work item
// (vertex, primitive, tile-list entry, 2x2 fragment quad, cache-line
// transfer) advances per-unit clocks through latency and throughput
// constraints; bounded queues impose back-pressure; all caches and the
// DRAM are simulated per access. A frame is simulated as the TBR
// two-pass sequence: the Geometry Pipeline plus Tiling Engine first
// (producing per-tile primitive lists), then the Raster Pipeline
// processing tiles one at a time through four parallel fragment
// processors.
package tbr

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/tbr/mem"
)

// Config is the GPU configuration (Table I). DefaultConfig returns the
// paper's values; experiments vary individual fields.
type Config struct {
	// FrequencyMHz and VoltageV are carried for reporting and the
	// power model; they do not change cycle counts.
	FrequencyMHz int
	VoltageV     float64

	// TileSize is the square tile edge in pixels.
	TileSize int

	// NumVertexProcessors and NumFragmentProcessors are the
	// programmable-stage widths.
	NumVertexProcessors   int
	NumFragmentProcessors int

	// Queue entries (Table I).
	VertexQueueEntries   int
	TriangleQueueEntries int
	FragmentQueueEntries int
	ColorQueueEntries    int

	// EarlyZInFlight is the number of in-flight quad-fragments in the
	// Early Z-Test stage.
	EarlyZInFlight int

	// Caches. TextureCache is replicated NumTextureCaches times.
	VertexCache      mem.CacheConfig
	TextureCache     mem.CacheConfig
	NumTextureCaches int
	TileCache        mem.CacheConfig
	L2               mem.CacheConfig

	// DRAM is the main memory model.
	DRAM mem.DRAMConfig

	// DeferredShading enables PowerVR-style Hidden Surface Removal
	// (TBDR, Section IV-A's suggested extension): within each tile all
	// primitives are depth-resolved before any fragment is shaded, so
	// exactly one fragment per covered pixel is shaded regardless of
	// draw order — overdraw costs rasterization but never shading.
	// (Transparency/blending order is not modeled in this mode.)
	DeferredShading bool

	// FlushCachesPerFrame makes every frame start cold, so a frame
	// simulated in isolation (a MEGsim cluster representative) is
	// bit-identical to the same frame simulated mid-sequence. This is
	// how the methodology sidesteps the architectural-state starting
	// image problem of sampled simulation.
	FlushCachesPerFrame bool

	// TileWorkers selects the raster-stage execution mode. 0 (the
	// default) keeps the classic serial model: tiles are processed one
	// after another on the simulator's own raster caches, which stay
	// warm across tiles. Any value >= 1 switches to the sharded model:
	// the frame's tile list is partitioned across TileWorkers workers,
	// each owning a private mem.Shard (tile cache, texture caches, L2,
	// DRAM) that cold-starts before every tile, so each tile's timing
	// and counters are a pure function of its own primitive list. The
	// per-tile results compose serially at frame end, which makes every
	// TileWorkers >= 1 setting produce byte-identical FrameStats and
	// obs snapshots — only wall-clock time changes with the worker
	// count. Tile-parallelism composes with the frame-parallel drivers
	// (each frame worker runs its own tile pool).
	TileWorkers int

	// Obs, when non-nil and enabled, receives metrics and per-stage
	// timeline spans from the simulator (package obs). The parallel
	// drivers give each worker a local registry and merge them into
	// this one at join time, so instrumented parallel runs are
	// race-free and deterministic. Nil disables observability at the
	// cost of one branch per instrumentation point.
	Obs *obs.Registry

	// Faults is the deterministic fault-injection layer used by the
	// validation subsystem (internal/check) to perturb the simulated
	// microarchitecture. The zero value injects nothing.
	Faults FaultConfig

	// Check, when non-nil, receives every completed frame's statistics
	// for invariant verification (internal/check.Invariants is the
	// standard implementation) and arms the per-queue occupancy checks.
	// A non-nil error from CheckFrame aborts the run via panic (the
	// parallel drivers convert it back into an error). Nil disables all
	// checking at the cost of one branch per frame.
	Check FrameChecker
}

// FrameChecker verifies invariants over completed frame statistics.
// Implementations must be safe for concurrent use: the frame-parallel
// drivers share one checker across workers.
type FrameChecker interface {
	CheckFrame(st *FrameStats) error
}

// DefaultConfig returns the Table I configuration.
func DefaultConfig() Config {
	return Config{
		FrequencyMHz:          600,
		VoltageV:              1.0,
		TileSize:              32,
		NumVertexProcessors:   4,
		NumFragmentProcessors: 4,
		VertexQueueEntries:    16,
		TriangleQueueEntries:  16,
		FragmentQueueEntries:  64,
		ColorQueueEntries:     64,
		EarlyZInFlight:        8,
		VertexCache: mem.CacheConfig{
			Name: "vertex", SizeBytes: 4 << 10, LineBytes: 64, Ways: 2, Latency: 1, Banks: 1,
		},
		TextureCache: mem.CacheConfig{
			Name: "texture", SizeBytes: 8 << 10, LineBytes: 64, Ways: 2, Latency: 2, Banks: 1,
		},
		NumTextureCaches: 4,
		TileCache: mem.CacheConfig{
			Name: "tile", SizeBytes: 32 << 10, LineBytes: 64, Ways: 2, Latency: 2, Banks: 1,
		},
		L2: mem.CacheConfig{
			Name: "l2", SizeBytes: 256 << 10, LineBytes: 64, Ways: 2, Latency: 18, Banks: 8,
		},
		DRAM:                mem.DefaultDRAMConfig(),
		FlushCachesPerFrame: true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.TileSize <= 0 || c.TileSize%2 != 0 {
		return fmt.Errorf("tbr: tile size %d must be positive and even", c.TileSize)
	}
	if c.NumVertexProcessors <= 0 || c.NumFragmentProcessors <= 0 {
		return fmt.Errorf("tbr: processor counts must be positive")
	}
	if c.NumTextureCaches <= 0 {
		return fmt.Errorf("tbr: need at least one texture cache")
	}
	if c.VertexQueueEntries <= 0 || c.TriangleQueueEntries <= 0 ||
		c.FragmentQueueEntries <= 0 || c.ColorQueueEntries <= 0 {
		return fmt.Errorf("tbr: queue entries must be positive")
	}
	if c.EarlyZInFlight <= 0 {
		return fmt.Errorf("tbr: EarlyZInFlight must be positive")
	}
	if c.TileWorkers < 0 {
		return fmt.Errorf("tbr: TileWorkers %d must be >= 0 (0 = serial raster stage)", c.TileWorkers)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	for _, cc := range []mem.CacheConfig{c.VertexCache, c.TextureCache, c.TileCache, c.L2} {
		if err := cc.Validate(); err != nil {
			return fmt.Errorf("tbr: %w", err)
		}
	}
	return nil
}
