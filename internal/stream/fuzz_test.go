package stream

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/funcsim"
	"repro/internal/shader"
)

// FuzzStreamIngest feeds the ingestor arbitrary byte-derived profile
// streams — including malformed shader-count shapes, truncated chunks,
// and duplicate-heavy Frame fields — and checks the structural
// invariants that every well-formed campaign relies on: no panic,
// strata and reservoirs never exceed their caps, the live-vector
// account never exceeds the budget, rejected profiles leave the strata
// untouched, and the final state snapshot/restores byte-identically.
func FuzzStreamIngest(f *testing.F) {
	// Seed corpus: an empty stream, a short clean stream, a duplicate
	// Frame id stream, a wrong-shape profile mid-stream, and a stream
	// long enough to force merges at the tiny caps used below.
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
	f.Add(bytes.Repeat([]byte{0x11, 0x11, 0x11, 0x11}, 8))
	f.Add([]byte{0x10, 0x20, 0xFF, 0x30, 0x40, 0x50})
	f.Add(bytes.Repeat([]byte{0x00, 0x40, 0x80, 0xC0, 0x33, 0x77, 0xBB, 0xEE}, 16))

	vs := []shader.Cost{{Instructions: 4, ALUOps: 3}, {Instructions: 9, ALUOps: 6, TexSamples: 1}}
	fs := []shader.Cost{{Instructions: 6, ALUOps: 4, TexSamples: 2, TexMemAccesses: 2}}

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := DefaultConfig()
		// The first byte picks the stratum cap in [1,4]: 1 is the
		// degenerate single-stratum configuration (no pair to merge at
		// capacity), which once panicked on the second distinct frame.
		cfg.MaxStrata = 4
		if len(data) > 0 {
			cfg.MaxStrata = 1 + int(data[0]&3)
		}
		cfg.ReservoirCap = 2
		cfg.Seed = 7
		in := NewIngestor("fuzz", vs, fs, cfg)

		// Each 4-byte word becomes one profile; the high bits of the
		// first byte select occasional malformed shapes.
		for off := 0; off+4 <= len(data); off += 4 {
			w := binary.LittleEndian.Uint32(data[off : off+4])
			p := funcsim.FrameProfile{
				// Colliding Frame ids on purpose: identity is arrival
				// position, so duplicates must be harmless.
				Frame:        int(w % 8),
				VSCount:      []uint64{uint64(w & 0xFF), uint64(w >> 8 & 0xFF)},
				FSCount:      []uint64{uint64(w >> 16 & 0xFF)},
				PrimsIn:      uint64(w&0xFFFF) + 1,
				PrimsVisible: uint64(w & 0xFFF),
				Fragments:    uint64(w >> 4 & 0xFFFF),
			}
			malformed := false
			switch data[off] >> 5 {
			case 5: // truncated shader counts
				p.VSCount = p.VSCount[:1]
				malformed = true
			case 6: // extra FS program
				p.FSCount = append(p.FSCount, 1)
				malformed = true
			case 7: // nil counts
				p.VSCount, p.FSCount = nil, nil
				malformed = true
			}

			if malformed {
				before, serr := in.Snapshot()
				if serr != nil {
					t.Fatalf("snapshot: %v", serr)
				}
				if err := in.Add(&p); err == nil {
					t.Fatalf("malformed profile at offset %d accepted", off)
				}
				after, serr := in.Snapshot()
				if serr != nil {
					t.Fatalf("snapshot after reject: %v", serr)
				}
				if !bytes.Equal(before, after) {
					t.Fatalf("rejected profile mutated ingestor state")
				}
				continue
			}
			if err := in.Add(&p); err != nil {
				t.Fatalf("well-formed profile rejected: %v", err)
			}

			if got := in.NumStrata(); got < 1 || got > cfg.MaxStrata {
				t.Fatalf("strata count %d outside [1,%d]", got, cfg.MaxStrata)
			}
			for _, st := range in.strata {
				if len(st.res) > cfg.ReservoirCap {
					t.Fatalf("reservoir %d exceeds cap %d", len(st.res), cfg.ReservoirCap)
				}
			}
			if in.LiveVectors() > in.VectorBudget() || in.PeakVectors() > in.VectorBudget() {
				t.Fatalf("vector account live=%d peak=%d exceeds budget %d",
					in.LiveVectors(), in.PeakVectors(), in.VectorBudget())
			}
		}

		// Whatever stream the fuzzer built, its state must round-trip
		// exactly and restore into a working ingestor.
		snap, err := in.Snapshot()
		if err != nil {
			t.Fatalf("final snapshot: %v", err)
		}
		in2 := NewIngestor("fuzz", vs, fs, cfg)
		if err := in2.Restore(snap); err != nil {
			t.Fatalf("restore of own snapshot: %v", err)
		}
		snap2, err := in2.Snapshot()
		if err != nil {
			t.Fatalf("re-snapshot: %v", err)
		}
		if !bytes.Equal(snap, snap2) {
			t.Fatalf("snapshot not byte-stable across restore")
		}
		if in.Frames() > 0 {
			sel, err := in.Finalize()
			if err != nil {
				t.Fatalf("finalize: %v", err)
			}
			if sel.Frames != in.Frames() || len(sel.Strata) != in.NumStrata() {
				t.Fatalf("selection inconsistent with ingestor: frames %d/%d strata %d/%d",
					sel.Frames, in.Frames(), len(sel.Strata), in.NumStrata())
			}
		}

		// Arbitrary bytes must never panic Restore either.
		in3 := NewIngestor("fuzz", vs, fs, cfg)
		_ = in3.Restore(data)
	})
}
