package stream

import (
	"fmt"
	"sort"

	"repro/internal/tbr"
)

// Stratum is one finalized stratum of a streaming selection.
type Stratum struct {
	// Label is the stratum's stable ingest-time identity.
	Label int `json:"label"`
	// Count is the number of member frames — the extrapolation weight.
	Count int `json:"count"`
	// Representative is the reservoir member closest to the final
	// centroid: the frame simulated for this stratum.
	Representative int `json:"representative"`
	// Alternates are the remaining reservoir members ordered by
	// centroid distance (ties toward the lower frame): the substitution
	// ladder when the representative is quarantined.
	Alternates []int `json:"alternates,omitempty"`
}

// Selection is the streaming second-phase plan: which frames to
// simulate and with what extrapolation weights. It is the streaming
// counterpart of core.Selection, deliberately without the N × D
// feature matrix — a selection over an unbounded stream carries only
// O(strata · reservoir) state.
type Selection struct {
	// Workload names the characterized stream.
	Workload string `json:"workload"`
	// Frames is the total number of frames ingested.
	Frames int `json:"frames"`
	// Strata are the finalized strata, in ingest label order.
	Strata []Stratum `json:"strata"`
	// Merges counts the forced stratum merges during ingest.
	Merges int `json:"merges"`
	// SpawnRadius is the final squared spawn radius.
	SpawnRadius float64 `json:"spawnRadius"`
}

// Finalize freezes the current strata into a selection: each stratum's
// representative is its reservoir member closest to the final centroid
// (the streaming analogue of the batch closest-to-centroid rule), with
// the remaining members ranked as substitution alternates. The
// ingestor remains usable — more frames may be ingested and a later
// Finalize reflects them.
func (in *Ingestor) Finalize() (*Selection, error) {
	if in.n == 0 {
		return nil, fmt.Errorf("stream: no frames ingested")
	}
	k := in.scales()
	sel := &Selection{
		Workload:    in.name,
		Frames:      in.n,
		Merges:      in.merges,
		SpawnRadius: in.spawnR,
	}
	for _, st := range in.strata {
		type cand struct {
			frame int
			d     float64
		}
		cands := make([]cand, len(st.res))
		for i, e := range st.res {
			cands[i] = cand{e.frame, in.dist2ToCentroid(e.vec, st, k)}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].d != cands[j].d {
				return cands[i].d < cands[j].d
			}
			return cands[i].frame < cands[j].frame
		})
		s := Stratum{Label: st.label, Count: st.count, Representative: cands[0].frame}
		for _, c := range cands[1:] {
			s.Alternates = append(s.Alternates, c.frame)
		}
		sel.Strata = append(sel.Strata, s)
	}
	sort.Slice(sel.Strata, func(i, j int) bool { return sel.Strata[i].Label < sel.Strata[j].Label })
	return sel, nil
}

// Representatives returns the frames to simulate, ascending.
func (s *Selection) Representatives() []int {
	out := make([]int, 0, len(s.Strata))
	for _, st := range s.Strata {
		out = append(out, st.Representative)
	}
	sort.Ints(out)
	return out
}

// NumStrata returns the stratum count.
func (s *Selection) NumStrata() int { return len(s.Strata) }

// ReductionFactor returns frames / representatives — the Table III
// headline metric, streaming edition.
func (s *Selection) ReductionFactor() float64 {
	if len(s.Strata) == 0 {
		return 0
	}
	return float64(s.Frames) / float64(len(s.Strata))
}

// Plan maps each stratum to the frame that should stand for it given a
// quarantine set: the representative when healthy, else the first
// non-quarantined alternate, else -1 (stratum lost). The ladder order
// is the centroid-distance ranking, mirroring the batch degradation's
// next-closest-in-cluster substitution.
func (s *Selection) Plan(quarantined map[int]bool) []int {
	plan := make([]int, len(s.Strata))
	for i, st := range s.Strata {
		plan[i] = -1
		if !quarantined[st.Representative] {
			plan[i] = st.Representative
			continue
		}
		for _, alt := range st.Alternates {
			if !quarantined[alt] {
				plan[i] = alt
				break
			}
		}
	}
	return plan
}

// Degradation reports how a streaming estimate deviated from the
// healthy plan: substituted representatives and lost strata.
type Degradation struct {
	// Substitutions lists strata whose representative was replaced by
	// an alternate, in stratum order.
	Substitutions []StreamSubstitution `json:"substitutions,omitempty"`
	// LostStrata lists strata (indices into Selection.Strata) whose
	// whole reservoir was quarantined; their weight was rescaled onto
	// the surviving strata.
	LostStrata []int `json:"lostStrata,omitempty"`
	// CoveredFrames is the member count of the surviving strata.
	CoveredFrames int `json:"coveredFrames"`
}

// StreamSubstitution records one representative substitution.
type StreamSubstitution struct {
	Stratum int `json:"stratum"`
	From    int `json:"from"`
	To      int `json:"to"`
}

// Degraded reports whether any substitution or loss happened.
func (d *Degradation) Degraded() bool {
	return d != nil && (len(d.Substitutions) > 0 || len(d.LostStrata) > 0)
}

// Estimate extrapolates full-stream statistics from simulated
// representatives, exactly as the batch Estimate does: each stratum's
// stats scale by its member count and sum (Section III-E).
func (s *Selection) Estimate(repStats map[int]tbr.FrameStats) (tbr.FrameStats, error) {
	est, deg, err := s.EstimateWith(s.Plan(nil), repStats)
	if err != nil {
		return tbr.FrameStats{}, err
	}
	if deg.Degraded() {
		return tbr.FrameStats{}, fmt.Errorf("stream: healthy estimate degraded (internal error)")
	}
	return est, nil
}

// EstimateWith extrapolates from an explicit per-stratum plan (see
// Plan): substituted frames stand in with the stratum's full weight,
// and lost strata rescale the surviving estimate by
// frames/coveredFrames — the same weight-rescale rule the batch
// degradation applies to lost clusters.
func (s *Selection) EstimateWith(plan []int, repStats map[int]tbr.FrameStats) (tbr.FrameStats, *Degradation, error) {
	if len(plan) != len(s.Strata) {
		return tbr.FrameStats{}, nil, fmt.Errorf("stream: plan has %d entries for %d strata", len(plan), len(s.Strata))
	}
	deg := &Degradation{}
	var total tbr.FrameStats
	for i, st := range s.Strata {
		f := plan[i]
		if f < 0 {
			deg.LostStrata = append(deg.LostStrata, i)
			continue
		}
		stat, ok := repStats[f]
		if !ok {
			return tbr.FrameStats{}, nil, fmt.Errorf("stream: missing simulated stats for frame %d (stratum %d)", f, i)
		}
		if f != st.Representative {
			deg.Substitutions = append(deg.Substitutions, StreamSubstitution{Stratum: i, From: st.Representative, To: f})
		}
		deg.CoveredFrames += st.Count
		scaled := stat.Scale(uint64(st.Count))
		total.Add(&scaled)
	}
	if deg.CoveredFrames == 0 {
		return tbr.FrameStats{}, deg, fmt.Errorf("stream: every stratum lost, nothing to estimate from")
	}
	if deg.CoveredFrames < s.Frames {
		total = total.ScaleF(float64(s.Frames) / float64(deg.CoveredFrames))
	}
	total.Frame = -1
	return total, deg, nil
}
